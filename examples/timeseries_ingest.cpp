// Time-series ingestion scenario (one of the paper's motivating LSM
// deployments): a metrics pipeline continuously appends samples while a
// dashboard scans the most recent window and an alerting service re-reads a
// handful of hot series.
//
// The workload shifts phase by phase — ingest-heavy, then scan-heavy, then
// mixed — and the example prints how AdCache re-partitions its cache and
// what that does to storage reads, next to a static block cache given the
// same budget.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/strategy.h"
#include "util/clock.h"
#include "util/env.h"
#include "util/random.h"

namespace {

constexpr int kNumSeries = 200;
constexpr int kSamplesPerSeries = 60;

// Keys sort by (series, timestamp) so one series' samples are adjacent.
std::string SampleKey(int series, int ts) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "metric%04d@%08d", series, ts);
  return buf;
}

struct PhaseOutcome {
  uint64_t storage_reads;
  double range_ratio;
};

PhaseOutcome RunScenario(adcache::core::KvStore* store, int phase,
                         int* clock_ts) {
  adcache::Random rng(1000 + static_cast<uint64_t>(phase));
  uint64_t reads_before = store->GetCacheStats().block_reads;

  for (int step = 0; step < 3000; step++) {
    int roll = static_cast<int>(rng.Uniform(100));
    // Phase 0: 80% ingest. Phase 1: 80% dashboard scans. Phase 2: mixed.
    int ingest_pct = phase == 0 ? 80 : (phase == 1 ? 10 : 40);
    int scan_pct = phase == 0 ? 10 : (phase == 1 ? 70 : 30);
    if (roll < ingest_pct) {
      int series = static_cast<int>(rng.Uniform(kNumSeries));
      store->Put(adcache::Slice(SampleKey(series, (*clock_ts)++)),
                 adcache::Slice("sample=" + std::to_string(step)));
    } else if (roll < ingest_pct + scan_pct) {
      // Dashboard: scan the last 16 samples of a (zipf-ish hot) series.
      int series = static_cast<int>(rng.Skewed(8)) % kNumSeries;
      std::vector<adcache::KvPair> window;
      store->Scan(adcache::Slice(SampleKey(series, 0)), 16, &window);
    } else {
      // Alerting: re-read a hot series' first sample.
      int series = static_cast<int>(rng.Uniform(10));
      std::string value;
      store->Get(adcache::Slice(SampleKey(series, 0)), &value);
    }
  }
  return PhaseOutcome{store->GetCacheStats().block_reads - reads_before,
                      store->GetCacheStats().range_ratio};
}

}  // namespace

int main() {
  adcache::SimClock clock;
  auto env = adcache::NewMemEnv(&clock);

  auto make_store = [&](const std::string& strategy) {
    adcache::core::StoreConfig config;
    config.lsm.env = env.get();
    config.lsm.memtable_size = 512 * 1024;
    config.lsm.table_file_size = 512 * 1024;
    config.lsm.level1_size_base = 2 * 1024 * 1024;
    config.dbname = "/ts_" + strategy;
    config.cache_budget = 2 * 1024 * 1024;
    adcache::Status s;
    auto store = adcache::core::CreateStore(strategy, config, &s);
    if (!s.ok()) {
      std::fprintf(stderr, "create failed: %s\n", s.ToString().c_str());
      std::abort();
    }
    // Backfill: historical samples for every series.
    for (int series = 0; series < kNumSeries; series++) {
      for (int ts = 0; ts < kSamplesPerSeries; ts++) {
        store->Put(adcache::Slice(SampleKey(series, ts)),
                   adcache::Slice("backfill"));
      }
    }
    return store;
  };

  auto adcache_store = make_store("adcache");
  auto block_store = make_store("block");

  const char* phase_names[] = {"ingest-heavy", "dashboard-scan-heavy",
                               "mixed"};
  std::printf("%-24s %20s %20s %18s\n", "phase", "adcache SST reads",
              "block-only SST reads", "adcache range%");
  int ts_a = kSamplesPerSeries;
  int ts_b = kSamplesPerSeries;
  for (int phase = 0; phase < 3; phase++) {
    PhaseOutcome a = RunScenario(adcache_store.get(), phase, &ts_a);
    PhaseOutcome b = RunScenario(block_store.get(), phase, &ts_b);
    std::printf("%-24s %20llu %20llu %17.0f%%\n", phase_names[phase],
                static_cast<unsigned long long>(a.storage_reads),
                static_cast<unsigned long long>(b.storage_reads),
                a.range_ratio * 100);
  }
  std::printf("\nAdCache shifts its range:block boundary as the pipeline "
              "moves between ingestion and scanning.\n");
  return 0;
}
