// Recommendation-serving scenario (another of the paper's motivating
// applications): a feature store answers skewed point lookups for user
// features, while batch jobs periodically sweep long ranges of item
// embeddings — exactly the "noisy long scan" traffic the paper's admission
// control is designed to absorb.
//
// The example contrasts a plain Range Cache (which lets each sweep evict
// the hot user features) with AdCache (whose partial admission caps the
// sweep's footprint), printing the hit statistics of the serving path.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/strategy.h"
#include "util/clock.h"
#include "util/env.h"
#include "util/random.h"
#include "workload/zipfian.h"

namespace {

std::string UserKey(uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "user%08llu",
                static_cast<unsigned long long>(id));
  return buf;
}

std::string ItemKey(uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "item%08llu",
                static_cast<unsigned long long>(id));
  return buf;
}

struct ServingStats {
  uint64_t lookups = 0;
  uint64_t storage_reads = 0;
};

ServingStats Serve(adcache::core::KvStore* store, uint64_t seed) {
  constexpr int kUsers = 4000;
  constexpr int kItems = 4000;
  adcache::workload::ScrambledZipfianGenerator hot_users(kUsers, 0.99, seed);
  adcache::Random rng(seed + 1);

  ServingStats stats;
  uint64_t reads_before = store->GetCacheStats().block_reads;
  std::string value;
  std::vector<adcache::KvPair> batch;
  for (int step = 0; step < 20000; step++) {
    if (step % 200 == 199) {
      // Batch job: sweep 64 consecutive item embeddings (cold traffic).
      uint64_t start = rng.Uniform(kItems - 64);
      store->Scan(adcache::Slice(ItemKey(start)), 64, &batch);
    } else {
      // Serving path: skewed user-feature lookups.
      store->Get(adcache::Slice(UserKey(hot_users.Next())), &value);
      stats.lookups++;
    }
  }
  stats.storage_reads = store->GetCacheStats().block_reads - reads_before;
  return stats;
}

}  // namespace

int main() {
  adcache::SimClock clock;
  auto env = adcache::NewMemEnv(&clock);

  auto run = [&](const std::string& strategy) {
    adcache::core::StoreConfig config;
    config.lsm.env = env.get();
    config.dbname = "/rec_" + strategy;
    config.cache_budget = 1 * 1024 * 1024;  // deliberately tight
    adcache::Status s;
    auto store = adcache::core::CreateStore(strategy, config, &s);
    if (!s.ok()) {
      std::fprintf(stderr, "create failed: %s\n", s.ToString().c_str());
      std::abort();
    }
    for (int i = 0; i < 4000; i++) {
      store->Put(adcache::Slice(UserKey(static_cast<uint64_t>(i))),
                 adcache::Slice(std::string(200, 'u')));
      store->Put(adcache::Slice(ItemKey(static_cast<uint64_t>(i))),
                 adcache::Slice(std::string(200, 'i')));
    }
    store->db()->FlushMemTable();
    return Serve(store.get(), 7);
  };

  std::printf("%-16s %12s %16s %22s\n", "strategy", "lookups",
              "storage reads", "reads per 1k lookups");
  for (const std::string strategy : {"range", "adcache"}) {
    ServingStats stats = run(strategy);
    std::printf("%-16s %12llu %16llu %22.1f\n", strategy.c_str(),
                static_cast<unsigned long long>(stats.lookups),
                static_cast<unsigned long long>(stats.storage_reads),
                1000.0 * static_cast<double>(stats.storage_reads) /
                    static_cast<double>(stats.lookups));
  }
  std::printf("\nPartial scan admission keeps batch sweeps from evicting "
              "the hot user features that the serving path depends on.\n");
  return 0;
}
