// A db_bench-style command-line harness: run any caching strategy against
// any workload mix with one command.
//
// Examples:
//   adcache_db_bench --strategy=adcache --workload=balanced --ops=20000
//   adcache_db_bench --strategy=block --workload=dynamic --ops=60000
//   adcache_db_bench --strategy=range_cacheus --get=25 --short_scan=25 \
//       --write=50 --skew=1.2 --cache_fraction=0.1
//
// Run with --help for the full flag list.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/strategy.h"
#include "util/clock.h"
#include "util/env.h"
#include "workload/runner.h"
#include "workload/workload_spec.h"

namespace {

struct Flags {
  std::string strategy = "adcache";
  std::string workload = "balanced";  // or "custom" via mix flags
  std::string db_path;                // empty = in-memory simulated disk
  uint64_t num_keys = 10000;
  size_t value_size = 1000;
  double cache_fraction = 0.25;
  uint64_t ops = 20000;
  double skew = 0.9;
  int threads = 1;
  uint64_t seed = 42;
  int get_pct = -1;
  int short_scan_pct = -1;
  int long_scan_pct = -1;
  int write_pct = -1;
};

void PrintHelp() {
  std::printf(
      "adcache_db_bench flags:\n"
      "  --strategy=NAME        one of: block block_leaper kv range\n"
      "                         range_lecar range_cacheus adcache\n"
      "                         adcache_admission_only adcache_partition_only\n"
      "  --workload=NAME        point | short_scan | balanced | long_scan |\n"
      "                         dynamic (Table-3 phases A-F) | custom\n"
      "  --get=N --short_scan=N --long_scan=N --write=N   custom mix (%%)\n"
      "  --num_keys=N           database size in keys (default 10000)\n"
      "  --value_size=N         value bytes (default 1000)\n"
      "  --cache_fraction=F     cache budget as fraction of DB (default .25)\n"
      "  --ops=N                operations (per phase for dynamic)\n"
      "  --skew=F               Zipfian skew (default 0.9; <=0 uniform)\n"
      "  --threads=N            client threads (default 1)\n"
      "  --seed=N               RNG seed (default 42)\n"
      "  --db=PATH              use a real directory instead of the\n"
      "                         in-memory simulated disk\n");
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  size_t len = strlen(name);
  if (strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; i++) {
    std::string v;
    if (strcmp(argv[i], "--help") == 0 || strcmp(argv[i], "-h") == 0) {
      PrintHelp();
      return false;
    } else if (ParseFlag(argv[i], "--strategy", &v)) {
      flags->strategy = v;
    } else if (ParseFlag(argv[i], "--workload", &v)) {
      flags->workload = v;
    } else if (ParseFlag(argv[i], "--db", &v)) {
      flags->db_path = v;
    } else if (ParseFlag(argv[i], "--num_keys", &v)) {
      flags->num_keys = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--value_size", &v)) {
      flags->value_size = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--cache_fraction", &v)) {
      flags->cache_fraction = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "--ops", &v)) {
      flags->ops = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--skew", &v)) {
      flags->skew = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "--threads", &v)) {
      flags->threads = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--seed", &v)) {
      flags->seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--get", &v)) {
      flags->get_pct = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--short_scan", &v)) {
      flags->short_scan_pct = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--long_scan", &v)) {
      flags->long_scan_pct = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "--write", &v)) {
      flags->write_pct = std::atoi(v.c_str());
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", argv[i]);
      return false;
    }
  }
  return true;
}

std::vector<adcache::workload::Phase> PhasesFor(const Flags& flags) {
  using namespace adcache::workload;
  if (flags.get_pct >= 0 || flags.short_scan_pct >= 0 ||
      flags.long_scan_pct >= 0 || flags.write_pct >= 0) {
    OpMix mix;
    mix.get_pct = std::max(0, flags.get_pct);
    mix.short_scan_pct = std::max(0, flags.short_scan_pct);
    mix.long_scan_pct = std::max(0, flags.long_scan_pct);
    mix.write_pct = std::max(0, flags.write_pct);
    int total = mix.get_pct + mix.short_scan_pct + mix.long_scan_pct +
                mix.write_pct;
    if (total != 100) {
      std::fprintf(stderr, "custom mix must sum to 100 (got %d)\n", total);
      std::exit(1);
    }
    return {Phase{"custom", mix, flags.ops, flags.skew}};
  }
  if (flags.workload == "point") {
    return {PointLookupWorkload(flags.ops)};
  }
  if (flags.workload == "short_scan") return {ShortScanWorkload(flags.ops)};
  if (flags.workload == "balanced") return {BalancedWorkload(flags.ops)};
  if (flags.workload == "long_scan") return {LongScanWorkload(flags.ops)};
  if (flags.workload == "dynamic") return Table3Phases(flags.ops);
  std::fprintf(stderr, "unknown workload %s\n", flags.workload.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 1;

  adcache::SimClock sim_clock;
  std::unique_ptr<adcache::Env> env;
  std::string dbname;
  if (flags.db_path.empty()) {
    env = adcache::NewMemEnv(&sim_clock);
    dbname = "/dbbench";
  } else {
    env = adcache::NewPosixEnv();
    dbname = flags.db_path;
  }

  adcache::core::StoreConfig config;
  config.lsm.env = env.get();
  config.lsm.enable_wal = !flags.db_path.empty();
  config.dbname = dbname;
  config.cache_budget = static_cast<size_t>(
      flags.cache_fraction *
      static_cast<double>(flags.num_keys * (24 + flags.value_size)));
  config.seed = flags.seed;
  adcache::Status s;
  auto store = adcache::core::CreateStore(flags.strategy, config, &s);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  adcache::workload::KeySpace keys;
  keys.num_keys = flags.num_keys;
  keys.value_size = flags.value_size;
  adcache::workload::Runner runner(store.get(), keys, env->clock());

  std::printf("loading %llu keys x %zu bytes (cache budget %.1f MB)...\n",
              static_cast<unsigned long long>(flags.num_keys),
              flags.value_size,
              static_cast<double>(config.cache_budget) / (1 << 20));
  s = runner.LoadDatabase();
  if (!s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }

  adcache::workload::PrintResultHeader();
  for (auto phase : PhasesFor(flags)) {
    phase.skew = flags.skew;
    adcache::workload::Runner::RunnerOptions opts;
    opts.seed = flags.seed + 17;
    opts.num_threads = flags.threads;
    adcache::workload::PhaseResult r = runner.RunPhase(phase, opts);
    adcache::workload::PrintResult(r);
  }

  adcache::core::CacheStatsSnapshot snap = store->GetCacheStats();
  std::printf("\nfinal cache state: usage %.1f/%.1f MB",
              static_cast<double>(snap.cache_usage) / (1 << 20),
              static_cast<double>(snap.cache_capacity) / (1 << 20));
  if (flags.strategy.rfind("adcache", 0) == 0) {
    std::printf(", range ratio %.2f, point thr %.5f, scan a=%.1f b=%.2f",
                snap.range_ratio, snap.point_threshold, snap.scan_a,
                snap.scan_b);
  }
  std::printf("\n");
  return 0;
}
