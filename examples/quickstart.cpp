// Quickstart: open an AdCache-backed LSM store, write, read, scan, and
// inspect the learned cache configuration.
//
//   ./build/examples/quickstart [db_dir]
//
// With no argument the example runs against an in-memory simulated disk.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/adcache_store.h"
#include "util/clock.h"
#include "util/env.h"

using adcache::NewMemEnv;
using adcache::NewPosixEnv;
using adcache::SimClock;
using adcache::Slice;
using adcache::Status;

int main(int argc, char** argv) {
  // 1. Pick an environment: a POSIX directory if given, else an in-memory
  //    simulated disk (deterministic, no cleanup needed).
  SimClock sim_clock;
  std::unique_ptr<adcache::Env> env;
  std::string dbname;
  if (argc > 1) {
    env = NewPosixEnv();
    dbname = argv[1];
  } else {
    env = NewMemEnv(&sim_clock);
    dbname = "/quickstart";
  }

  // 2. Configure the store: a 16 MB cache budget shared by the block and
  //    range caches, tuned online by the RL controller.
  adcache::lsm::Options lsm_options;
  lsm_options.env = env.get();

  adcache::core::AdCacheOptions options;
  options.cache_budget = 16 * 1024 * 1024;
  options.controller.window_size = 1000;  // retune every 1000 operations

  std::unique_ptr<adcache::core::AdCacheStore> store;
  Status s = adcache::core::AdCacheStore::Open(options, lsm_options, dbname,
                                               &store);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // 3. Write some data.
  for (int i = 0; i < 1000; i++) {
    char key[32];
    std::snprintf(key, sizeof(key), "user%06d", i);
    s = store->Put(Slice(key), Slice("profile-data-" + std::to_string(i)));
    if (!s.ok()) {
      std::fprintf(stderr, "put failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  // 4. Point lookups — repeated keys are served from the range cache.
  std::string value;
  for (int round = 0; round < 3; round++) {
    s = store->Get(Slice("user000042"), &value);
    if (!s.ok()) {
      std::fprintf(stderr, "get failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  std::printf("user000042 -> %s\n", value.c_str());

  // 5. A range scan: 10 consecutive users starting at user000100.
  std::vector<adcache::KvPair> results;
  s = store->Scan(Slice("user000100"), 10, &results);
  if (!s.ok()) {
    std::fprintf(stderr, "scan failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("scan from user000100:\n");
  for (const auto& kv : results) {
    std::printf("  %s -> %s\n", kv.key.c_str(), kv.value.c_str());
  }

  // 6. Inspect cache telemetry and the current learned configuration.
  adcache::core::CacheStatsSnapshot snap = store->GetCacheStats();
  std::printf("\ncache stats:\n");
  std::printf("  SST block reads : %llu\n",
              static_cast<unsigned long long>(snap.block_reads));
  std::printf("  range cache     : %llu hits / %llu misses\n",
              static_cast<unsigned long long>(snap.range_hits),
              static_cast<unsigned long long>(snap.range_misses));
  std::printf("  block cache     : %llu hits / %llu misses\n",
              static_cast<unsigned long long>(snap.block_cache_hits),
              static_cast<unsigned long long>(snap.block_cache_misses));
  std::printf("learned configuration:\n");
  std::printf("  range:block split   : %.0f%% : %.0f%%\n",
              snap.range_ratio * 100, (1 - snap.range_ratio) * 100);
  std::printf("  point admission thr : %.5f\n", snap.point_threshold);
  std::printf("  scan admission      : a=%.1f keys, b=%.2f\n", snap.scan_a,
              snap.scan_b);
  return 0;
}
