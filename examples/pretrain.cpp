// Pretraining workflow (paper §3.6): train the actor-critic policy offline
// — here on the built-in synthetic workload targets plus a short
// reinforcement phase over Table-3-style workload mixes — save the model to
// a file, and show a second store loading it and starting from the learned
// configuration with no warm-up.
//
//   ./build/examples/pretrain [model_path]

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/adcache_store.h"
#include "core/strategy.h"
#include "util/clock.h"
#include "util/env.h"
#include "workload/runner.h"
#include "workload/workload_spec.h"

namespace {

std::unique_ptr<adcache::core::KvStore> OpenStore(
    adcache::Env* env, const std::string& dbname,
    const std::string& pretrained_blob, bool heuristic_pretrain) {
  adcache::core::StoreConfig config;
  config.lsm.env = env;
  config.dbname = dbname;
  config.cache_budget = 8 * 1024 * 1024;
  config.adcache.pretrained_model = pretrained_blob;
  config.adcache.controller.pretrain_heuristic = heuristic_pretrain;
  adcache::Status s;
  auto store = adcache::core::CreateStore("adcache", config, &s);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    std::abort();
  }
  return store;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string model_path =
      argc > 1 ? argv[1] : "/tmp/adcache_pretrained.model";

  adcache::SimClock clock;
  auto env = adcache::NewMemEnv(&clock);

  // --- Phase 1: pretrain online against representative workloads. -------
  auto trainer = OpenStore(env.get(), "/pretrain", "", true);
  auto* trainer_store =
      static_cast<adcache::core::AdCacheStore*>(trainer.get());

  adcache::workload::KeySpace keys;
  keys.num_keys = 5000;
  keys.value_size = 500;
  adcache::workload::Runner runner(trainer.get(), keys, &clock);
  if (!runner.LoadDatabase().ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }
  std::printf("refining on representative workload phases...\n");
  for (const auto& phase : adcache::workload::Table3Phases(4000)) {
    adcache::workload::PhaseResult r = runner.RunPhase(phase, 11);
    std::printf("  phase %-2s hit_rate=%.3f range_ratio=%.2f\n",
                phase.name.c_str(), r.hit_rate,
                trainer_store->GetCacheStats().range_ratio);
  }

  // --- Phase 2: save the model. -----------------------------------------
  std::string blob;
  trainer_store->controller()->SaveModel(&blob);
  std::ofstream out(model_path, std::ios::binary);
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  out.close();
  std::printf("saved %zu-byte model to %s\n", blob.size(),
              model_path.c_str());

  // --- Phase 3: a fresh store loads the model and starts informed. ------
  std::ifstream in(model_path, std::ios::binary);
  std::string loaded((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  auto deployed = OpenStore(env.get(), "/deployed", loaded, false);
  auto* deployed_store =
      static_cast<adcache::core::AdCacheStore*>(deployed.get());

  adcache::workload::Runner deploy_runner(deployed.get(), keys, &clock);
  if (!deploy_runner.LoadDatabase().ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }
  adcache::workload::PhaseResult cold = deploy_runner.RunPhase(
      adcache::workload::PointLookupWorkload(5000), 21);
  std::printf("\ndeployed store (pretrained, no warm-up): hit_rate=%.3f "
              "range_ratio=%.2f\n",
              cold.hit_rate, deployed_store->GetCacheStats().range_ratio);
  return 0;
}
