// Minimal RESP client for the adcache_server front door: connects over
// loopback, runs the README example session (SET/GET/MGET/SCAN/STATS) and
// prints each raw reply. Start a server first:
//
//   ./build/src/server/adcache_server --port=6399 &
//   ./build/examples/server_client 6399
//
// The point of the example is the wire protocol: commands can be sent as
// plain inline lines (as here, telnet-style) or as RESP arrays — the reply
// grammar is the same either way, and the tiny ReadReply scanner below is
// all a client needs to speak it.

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace {

/// Returns true when buffer[0, len) starts with one complete RESP reply,
/// setting *consumed. Replies are lines (+ - :), bulk strings ($N payload,
/// $-1 nil) or arrays (*N of nested replies).
bool ScanReply(const char* data, size_t len, size_t* consumed) {
  if (len == 0) return false;
  const char* nl = static_cast<const char*>(memchr(data, '\n', len));
  if (nl == nullptr) return false;
  size_t line = static_cast<size_t>(nl - data) + 1;
  if (data[0] == '$') {
    long n = atol(data + 1);
    if (n < 0) {
      *consumed = line;
      return true;
    }
    if (len < line + static_cast<size_t>(n) + 2) return false;
    *consumed = line + static_cast<size_t>(n) + 2;
    return true;
  }
  if (data[0] == '*') {
    long n = atol(data + 1);
    size_t pos = line;
    for (long i = 0; i < n; i++) {
      size_t sub = 0;
      if (!ScanReply(data + pos, len - pos, &sub)) return false;
      pos += sub;
    }
    *consumed = pos;
    return true;
  }
  *consumed = line;  // +simple, -error, :integer
  return true;
}

std::string ReadReply(int fd, std::string* buffer) {
  while (true) {
    size_t consumed = 0;
    if (ScanReply(buffer->data(), buffer->size(), &consumed)) {
      std::string reply = buffer->substr(0, consumed);
      buffer->erase(0, consumed);
      return reply;
    }
    char chunk[4096];
    ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return "";
    buffer->append(chunk, static_cast<size_t>(n));
  }
}

void Command(int fd, std::string* buffer, const std::string& line) {
  std::string frame = line + "\r\n";
  if (send(fd, frame.data(), frame.size(), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(frame.size())) {
    std::fprintf(stderr, "send failed\n");
    std::exit(1);
  }
  std::string reply = ReadReply(fd, buffer);
  std::printf("> %s\n%s", line.c_str(), reply.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  int port = argc > 1 ? std::atoi(argv[1]) : 6399;
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    std::fprintf(stderr,
                 "connect to 127.0.0.1:%d failed — start adcache_server "
                 "first\n", port);
    return 1;
  }

  std::string buffer;
  Command(fd, &buffer, "PING");
  Command(fd, &buffer, "SET user42 hello");
  Command(fd, &buffer, "SET user43 world");
  Command(fd, &buffer, "GET user42");
  Command(fd, &buffer, "MGET user42 nosuch user43");
  Command(fd, &buffer, "SCAN user4 2");
  Command(fd, &buffer, "DEL user42");
  Command(fd, &buffer, "GET user42");
  Command(fd, &buffer, "STATS");
  Command(fd, &buffer, "QUIT");
  close(fd);
  return 0;
}
