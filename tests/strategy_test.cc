#include "core/strategy.h"

#include <gtest/gtest.h>

#include <memory>

#include "util/clock.h"
#include "util/env.h"

namespace adcache::core {
namespace {

class StrategyTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    env_ = NewMemEnv(&clock_);
    config_.lsm.env = env_.get();
    config_.lsm.block_size = 512;
    config_.lsm.table_file_size = 16 * 1024;
    config_.lsm.memtable_size = 32 * 1024;
    config_.lsm.level1_size_base = 64 * 1024;
    config_.cache_budget = 128 * 1024;
    config_.dbname = "/db_" + GetParam();
    config_.adcache.controller.agent.hidden_dim = 32;
    Status s;
    store_ = CreateStore(GetParam(), config_, &s);
    ASSERT_TRUE(s.ok()) << s.ToString();
    ASSERT_NE(store_, nullptr);
  }

  static std::string Key(int i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%06d", i);
    return buf;
  }

  SimClock clock_;
  std::unique_ptr<Env> env_;
  StoreConfig config_;
  std::unique_ptr<KvStore> store_;
};

TEST_P(StrategyTest, PutGetScanDeleteContract) {
  // Every strategy must satisfy the same functional contract; only the
  // performance profile differs.
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(
        store_->Put(Slice(Key(i)), Slice("v" + std::to_string(i))).ok());
  }
  ASSERT_TRUE(store_->db()->FlushMemTable().ok());

  std::string value;
  for (int round = 0; round < 3; round++) {
    for (int i = 0; i < 200; i += 7) {
      ASSERT_TRUE(store_->Get(Slice(Key(i)), &value).ok()) << Key(i);
      EXPECT_EQ(value, "v" + std::to_string(i));
    }
  }
  EXPECT_TRUE(store_->Get(Slice("nope"), &value).IsNotFound());

  std::vector<KvPair> results;
  for (int round = 0; round < 3; round++) {
    ASSERT_TRUE(store_->Scan(Slice(Key(50)), 16, &results).ok());
    ASSERT_EQ(results.size(), 16u);
    for (int i = 0; i < 16; i++) {
      EXPECT_EQ(results[static_cast<size_t>(i)].key, Key(50 + i));
      EXPECT_EQ(results[static_cast<size_t>(i)].value,
                "v" + std::to_string(50 + i));
    }
  }

  // Updates visible through any cache layer.
  ASSERT_TRUE(store_->Put(Slice(Key(50)), Slice("updated")).ok());
  ASSERT_TRUE(store_->Get(Slice(Key(50)), &value).ok());
  EXPECT_EQ(value, "updated");
  ASSERT_TRUE(store_->Scan(Slice(Key(50)), 4, &results).ok());
  EXPECT_EQ(results[0].value, "updated");

  // Deletes visible through any cache layer.
  ASSERT_TRUE(store_->Delete(Slice(Key(51))).ok());
  EXPECT_TRUE(store_->Get(Slice(Key(51)), &value).IsNotFound());
  ASSERT_TRUE(store_->Scan(Slice(Key(50)), 3, &results).ok());
  EXPECT_EQ(results[0].key, Key(50));
  EXPECT_EQ(results[1].key, Key(52));

  CacheStatsSnapshot snap = store_->GetCacheStats();
  EXPECT_GT(snap.block_reads, 0u);
}

TEST_P(StrategyTest, RepeatedAccessReducesBlockReads) {
  for (int i = 0; i < 300; i++) {
    ASSERT_TRUE(
        store_->Put(Slice(Key(i)), Slice(std::string(64, 'v'))).ok());
  }
  ASSERT_TRUE(store_->db()->FlushMemTable().ok());

  std::string value;
  // Warm: touch a small working set repeatedly.
  for (int round = 0; round < 5; round++) {
    for (int i = 0; i < 20; i++) store_->Get(Slice(Key(i)), &value);
  }
  uint64_t before = store_->GetCacheStats().block_reads;
  for (int i = 0; i < 20; i++) store_->Get(Slice(Key(i)), &value);
  uint64_t delta = store_->GetCacheStats().block_reads - before;
  // A warmed cache must serve most of the working set without storage I/O.
  EXPECT_LT(delta, 20u) << "strategy " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategyTest,
    ::testing::Values("block", "block_leaper", "kv", "range", "range_lecar",
                      "range_cacheus", "adcache", "adcache_admission_only",
                      "adcache_partition_only"));

TEST(StrategyFactoryTest, UnknownNameRejected) {
  StoreConfig config;
  Status s;
  auto store = CreateStore("no_such_strategy", config, &s);
  EXPECT_EQ(store, nullptr);
  EXPECT_TRUE(s.IsInvalidArgument());
}

TEST(StrategyFactoryTest, AllNamesInstantiable) {
  SimClock clock;
  auto env = NewMemEnv(&clock);
  for (const auto& name : AllStrategyNames()) {
    StoreConfig config;
    config.lsm.env = env.get();
    config.dbname = "/all_" + name;
    config.adcache.controller.agent.hidden_dim = 16;
    Status s;
    auto store = CreateStore(name, config, &s);
    EXPECT_TRUE(s.ok()) << name << ": " << s.ToString();
    EXPECT_NE(store, nullptr) << name;
  }
}

}  // namespace
}  // namespace adcache::core
