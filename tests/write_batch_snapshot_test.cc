#include <gtest/gtest.h>

#include <memory>

#include "cache/cache.h"
#include "lsm/db.h"
#include "util/clock.h"
#include "util/env.h"

namespace adcache::lsm {
namespace {

class WriteBatchSnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv(&clock_);
    options_.env = env_.get();
    options_.block_size = 512;
    options_.table_file_size = 8 * 1024;
    options_.memtable_size = 16 * 1024;
    options_.level1_size_base = 32 * 1024;
    Reopen();
  }

  void Reopen() {
    db_.reset();
    ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok());
  }

  std::string Get(const std::string& k, const Snapshot* snap = nullptr) {
    ReadOptions opts;
    opts.snapshot = snap;
    std::string value;
    Status s = db_->Get(opts, Slice(k), &value);
    return s.ok() ? value : "NOT_FOUND";
  }

  SimClock clock_;
  std::unique_ptr<Env> env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(WriteBatchSnapshotTest, BatchAppliesAllOps) {
  WriteBatch batch;
  batch.Put(Slice("a"), Slice("1"));
  batch.Put(Slice("b"), Slice("2"));
  batch.Delete(Slice("a"));
  batch.Put(Slice("c"), Slice("3"));
  ASSERT_TRUE(db_->Write(WriteOptions(), batch).ok());
  EXPECT_EQ(Get("a"), "NOT_FOUND");  // deleted within the batch
  EXPECT_EQ(Get("b"), "2");
  EXPECT_EQ(Get("c"), "3");
}

TEST_F(WriteBatchSnapshotTest, EmptyBatchIsNoOp) {
  WriteBatch batch;
  ASSERT_TRUE(db_->Write(WriteOptions(), batch).ok());
}

TEST_F(WriteBatchSnapshotTest, BatchCountAndSize) {
  WriteBatch batch;
  EXPECT_EQ(batch.Count(), 0u);
  batch.Put(Slice("key"), Slice("value"));
  batch.Delete(Slice("key2"));
  EXPECT_EQ(batch.Count(), 2u);
  EXPECT_GT(batch.ApproximateSize(), 10u);
  batch.Clear();
  EXPECT_EQ(batch.Count(), 0u);
}

TEST_F(WriteBatchSnapshotTest, BatchSurvivesRecoveryAtomically) {
  WriteBatch batch;
  for (int i = 0; i < 50; i++) {
    batch.Put(Slice("batch_key" + std::to_string(i)),
              Slice("v" + std::to_string(i)));
  }
  ASSERT_TRUE(db_->Write(WriteOptions(), batch).ok());
  Reopen();
  for (int i = 0; i < 50; i++) {
    EXPECT_EQ(Get("batch_key" + std::to_string(i)), "v" + std::to_string(i));
  }
}

TEST_F(WriteBatchSnapshotTest, SnapshotSeesFrozenState) {
  ASSERT_TRUE(db_->Put(WriteOptions(), Slice("k"), Slice("old")).ok());
  const Snapshot* snap = db_->GetSnapshot();
  ASSERT_TRUE(db_->Put(WriteOptions(), Slice("k"), Slice("new")).ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), Slice("added"), Slice("x")).ok());

  EXPECT_EQ(Get("k"), "new");
  EXPECT_EQ(Get("k", snap), "old");
  EXPECT_EQ(Get("added", snap), "NOT_FOUND");
  db_->ReleaseSnapshot(snap);
}

TEST_F(WriteBatchSnapshotTest, SnapshotSeesThroughDeletes) {
  ASSERT_TRUE(db_->Put(WriteOptions(), Slice("k"), Slice("v")).ok());
  const Snapshot* snap = db_->GetSnapshot();
  ASSERT_TRUE(db_->Delete(WriteOptions(), Slice("k")).ok());
  EXPECT_EQ(Get("k"), "NOT_FOUND");
  EXPECT_EQ(Get("k", snap), "v");
  db_->ReleaseSnapshot(snap);
}

TEST_F(WriteBatchSnapshotTest, SnapshotIteratorIsFrozen) {
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Slice("k" + std::to_string(i)),
                         Slice("v")).ok());
  }
  const Snapshot* snap = db_->GetSnapshot();
  ASSERT_TRUE(db_->Put(WriteOptions(), Slice("zlate"), Slice("v")).ok());

  ReadOptions opts;
  opts.snapshot = snap;
  std::unique_ptr<Iterator> it(db_->NewIterator(opts));
  int count = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) count++;
  EXPECT_EQ(count, 10);  // "zlate" invisible
  db_->ReleaseSnapshot(snap);
}

TEST_F(WriteBatchSnapshotTest, CompactionPreservesSnapshotVisibleEntries) {
  ASSERT_TRUE(db_->Put(WriteOptions(), Slice("pinned"), Slice("v_old")).ok());
  const Snapshot* snap = db_->GetSnapshot();
  // Overwrite many times and force flushes/compactions; the old version
  // must survive because the snapshot can still see it.
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(),
                         Slice("k" + std::to_string(i % 200)),
                         Slice(std::string(64, 'x'))).ok());
    if (i % 500 == 0) {
      ASSERT_TRUE(db_->Put(WriteOptions(), Slice("pinned"),
                           Slice("v" + std::to_string(i))).ok());
    }
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ASSERT_TRUE(db_->CompactAll().ok());
  EXPECT_GT(db_->GetLsmShape().compaction_count, 0u);
  EXPECT_EQ(Get("pinned", snap), "v_old");
  EXPECT_EQ(Get("pinned"), "v2500");
  db_->ReleaseSnapshot(snap);

  // With the snapshot gone, further compaction may drop old versions; the
  // latest value must of course remain.
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ASSERT_TRUE(db_->CompactAll().ok());
  EXPECT_EQ(Get("pinned"), "v2500");
}

TEST_F(WriteBatchSnapshotTest, SyncWriteSucceeds) {
  WriteOptions sync_options;
  sync_options.sync = true;
  ASSERT_TRUE(db_->Put(sync_options, Slice("durable"), Slice("yes")).ok());
  EXPECT_EQ(Get("durable"), "yes");
}

}  // namespace
}  // namespace adcache::lsm
