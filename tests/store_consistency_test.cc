// End-to-end consistency property: whatever the caching strategy, every Get
// and Scan must return exactly what a std::map model of the database
// returns, under a random interleaving of puts, deletes, point lookups and
// scans. This is the strongest guard against stale-cache bugs (missed
// invalidation, broken adjacency, wrong coverage).

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/strategy.h"
#include "util/clock.h"
#include "util/env.h"
#include "util/random.h"

namespace adcache::core {
namespace {

class StoreConsistencyTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    env_ = NewMemEnv(&clock_);
    config_.lsm.env = env_.get();
    config_.lsm.block_size = 512;
    config_.lsm.table_file_size = 8 * 1024;
    config_.lsm.memtable_size = 8 * 1024;   // heavy flush/compaction churn
    config_.lsm.level1_size_base = 16 * 1024;
    config_.cache_budget = 64 * 1024;       // heavy eviction churn
    config_.dbname = "/consistency_" + GetParam();
    config_.adcache.controller.agent.hidden_dim = 32;
    config_.adcache.controller.window_size = 200;
    Status s;
    store_ = CreateStore(GetParam(), config_, &s);
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  static std::string Key(uint64_t i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%05llu", static_cast<unsigned long long>(i));
    return buf;
  }

  SimClock clock_;
  std::unique_ptr<Env> env_;
  StoreConfig config_;
  std::unique_ptr<KvStore> store_;
};

TEST_P(StoreConsistencyTest, RandomOpsMatchModelExactly) {
  std::map<std::string, std::string> model;
  Random rng(777);
  uint64_t version = 0;

  for (int step = 0; step < 8000; step++) {
    uint64_t roll = rng.Uniform(100);
    std::string key = Key(rng.Uniform(600) * 3);  // sparse keyspace
    if (roll < 30) {
      std::string value = "v" + std::to_string(version++);
      ASSERT_TRUE(store_->Put(Slice(key), Slice(value)).ok());
      model[key] = value;
    } else if (roll < 40) {
      ASSERT_TRUE(store_->Delete(Slice(key)).ok());
      model.erase(key);
    } else if (roll < 75) {
      std::string value;
      Status s = store_->Get(Slice(key), &value);
      auto it = model.find(key);
      if (it == model.end()) {
        ASSERT_TRUE(s.IsNotFound())
            << GetParam() << " step " << step << " key " << key;
      } else {
        ASSERT_TRUE(s.ok()) << GetParam() << " step " << step;
        ASSERT_EQ(value, it->second)
            << GetParam() << " stale value, step " << step << " key " << key;
      }
    } else {
      // Scan of random length from a random (possibly absent) key.
      std::string start = Key(rng.Uniform(1800));
      size_t n = 1 + rng.Uniform(20);
      std::vector<KvPair> got;
      ASSERT_TRUE(store_->Scan(Slice(start), n, &got).ok());
      std::vector<KvPair> want;
      for (auto it = model.lower_bound(start);
           it != model.end() && want.size() < n; ++it) {
        want.push_back(KvPair{it->first, it->second});
      }
      ASSERT_EQ(got.size(), want.size())
          << GetParam() << " step " << step << " start " << start;
      for (size_t i = 0; i < want.size(); i++) {
        ASSERT_EQ(got[i].key, want[i].key)
            << GetParam() << " step " << step;
        ASSERT_EQ(got[i].value, want[i].value)
            << GetParam() << " stale scan value, step " << step;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StoreConsistencyTest,
    ::testing::Values("block", "block_leaper", "kv", "range", "range_lecar",
                      "range_cacheus", "adcache", "adcache_admission_only",
                      "adcache_partition_only"));

TEST(AdCacheStoreConcurrencyTest, ParallelClientsWithTuning) {
  SimClock clock;
  auto env = NewMemEnv(&clock);
  StoreConfig config;
  config.lsm.env = env.get();
  config.lsm.memtable_size = 64 * 1024;
  config.dbname = "/mt";
  config.cache_budget = 512 * 1024;
  config.adcache.controller.window_size = 250;
  config.adcache.controller.agent.hidden_dim = 32;
  Status s;
  auto store = CreateStore("adcache", config, &s);
  ASSERT_TRUE(s.ok());

  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(store
                    ->Put(Slice("key" + std::to_string(1000 + i)),
                          Slice(std::string(100, 'v')))
                    .ok());
  }

  std::atomic<int> errors{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 6; t++) {
    clients.emplace_back([&, t] {
      Random rng(static_cast<uint64_t>(t) + 1);
      std::string value;
      std::vector<KvPair> results;
      for (int i = 0; i < 2000; i++) {
        std::string key = "key" + std::to_string(1000 + rng.Uniform(500));
        uint64_t roll = rng.Uniform(10);
        if (roll < 5) {
          if (!store->Get(Slice(key), &value).ok()) errors++;
        } else if (roll < 8) {
          if (!store->Scan(Slice(key), 8, &results).ok()) errors++;
        } else {
          if (!store->Put(Slice(key), Slice(std::string(100, 'w'))).ok()) {
            errors++;
          }
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(errors.load(), 0);
  // Tuning ran concurrently with traffic.
  auto* adcache_store = static_cast<AdCacheStore*>(store.get());
  EXPECT_GT(adcache_store->controller()->windows_processed(), 10u);
}

}  // namespace
}  // namespace adcache::core
