#include "lsm/db.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <thread>

#include "cache/cache.h"
#include "util/clock.h"
#include "util/random.h"

namespace adcache::lsm {
namespace {

class LsmDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv(&clock_);
    options_.env = env_.get();
    // Small sizes force flushes and compactions quickly.
    options_.block_size = 512;
    options_.table_file_size = 8 * 1024;
    options_.memtable_size = 16 * 1024;
    options_.level1_size_base = 32 * 1024;
    options_.block_cache = NewLRUCache(1 << 20, 0);
    Reopen();
  }

  void Reopen() {
    db_.reset();
    ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok());
  }

  Status Put(const std::string& k, const std::string& v) {
    return db_->Put(WriteOptions(), Slice(k), Slice(v));
  }
  Status Del(const std::string& k) {
    return db_->Delete(WriteOptions(), Slice(k));
  }
  std::string Get(const std::string& k) {
    std::string value;
    Status s = db_->Get(ReadOptions(), Slice(k), &value);
    return s.ok() ? value : "NOT_FOUND";
  }

  static std::string Key(int i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%06d", i);
    return buf;
  }

  SimClock clock_;
  std::unique_ptr<Env> env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(LsmDbTest, PutGetFromMemtable) {
  ASSERT_TRUE(Put("a", "1").ok());
  EXPECT_EQ(Get("a"), "1");
  EXPECT_EQ(Get("b"), "NOT_FOUND");
}

TEST_F(LsmDbTest, OverwriteReturnsLatest) {
  ASSERT_TRUE(Put("k", "v1").ok());
  ASSERT_TRUE(Put("k", "v2").ok());
  EXPECT_EQ(Get("k"), "v2");
  ASSERT_TRUE(db_->FlushMemTable().ok());
  EXPECT_EQ(Get("k"), "v2");
  ASSERT_TRUE(Put("k", "v3").ok());
  EXPECT_EQ(Get("k"), "v3");
}

TEST_F(LsmDbTest, DeleteHidesKeyAcrossFlush) {
  ASSERT_TRUE(Put("k", "v").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ASSERT_TRUE(Del("k").ok());
  EXPECT_EQ(Get("k"), "NOT_FOUND");
  ASSERT_TRUE(db_->FlushMemTable().ok());
  EXPECT_EQ(Get("k"), "NOT_FOUND");
}

TEST_F(LsmDbTest, GetAfterFlushReadsFromSstables) {
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(Put(Key(i), "value" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  EXPECT_GE(db_->GetLsmShape().files_per_level[0] +
                db_->GetLsmShape().files_per_level[1],
            1);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(Get(Key(i)), "value" + std::to_string(i));
  }
}

TEST_F(LsmDbTest, ManyWritesTriggerCompactionAndStayReadable) {
  std::map<std::string, std::string> model;
  Random rng(42);
  for (int i = 0; i < 5000; i++) {
    std::string k = Key(static_cast<int>(rng.Uniform(800)));
    std::string v = "v" + std::to_string(i);
    ASSERT_TRUE(Put(k, v).ok());
    model[k] = v;
  }
  DB::LsmShape shape = db_->GetLsmShape();
  EXPECT_GT(shape.flush_count, 0u);
  EXPECT_GT(shape.compaction_count, 0u);
  for (const auto& [k, v] : model) {
    EXPECT_EQ(Get(k), v) << k;
  }
}

TEST_F(LsmDbTest, IteratorSeesLatestValuesOnly) {
  for (int i = 0; i < 50; i++) ASSERT_TRUE(Put(Key(i), "old").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  for (int i = 0; i < 50; i += 2) ASSERT_TRUE(Put(Key(i), "new").ok());
  ASSERT_TRUE(Del(Key(49)).ok());

  std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
  int count = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    int i = count;
    EXPECT_EQ(it->key().ToString(), Key(i));
    EXPECT_EQ(it->value().ToString(), (i % 2 == 0) ? "new" : "old");
    count++;
  }
  EXPECT_EQ(count, 49);  // key 49 deleted
}

TEST_F(LsmDbTest, IteratorSeekStartsMidRange) {
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(Put(Key(i), std::to_string(i)).ok());
  }
  std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
  it->Seek(Slice(Key(42)));
  for (int i = 42; i < 52; i++) {
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(it->key().ToString(), Key(i));
    it->Next();
  }
}

TEST_F(LsmDbTest, IteratorIsSnapshotConsistent) {
  ASSERT_TRUE(Put("a", "1").ok());
  std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
  ASSERT_TRUE(Put("b", "2").ok());
  ASSERT_TRUE(Put("a", "1b").ok());
  it->SeekToFirst();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key().ToString(), "a");
  EXPECT_EQ(it->value().ToString(), "1");  // pre-snapshot value
  it->Next();
  EXPECT_FALSE(it->Valid());  // "b" written after the snapshot
}

TEST_F(LsmDbTest, ScanSpansMemtableAndLevels) {
  // Interleave keys so the merged view must weave memtable + L0 + L1.
  for (int i = 0; i < 100; i += 3) ASSERT_TRUE(Put(Key(i), "a").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ASSERT_TRUE(db_->CompactAll().ok());
  for (int i = 1; i < 100; i += 3) ASSERT_TRUE(Put(Key(i), "b").ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  for (int i = 2; i < 100; i += 3) ASSERT_TRUE(Put(Key(i), "c").ok());

  std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
  int count = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    EXPECT_EQ(it->key().ToString(), Key(count));
    count++;
  }
  EXPECT_EQ(count, 100);
}

TEST_F(LsmDbTest, RecoveryFromWalRestoresUnflushedWrites) {
  ASSERT_TRUE(Put("persist1", "v1").ok());
  ASSERT_TRUE(Put("persist2", "v2").ok());
  Reopen();  // nothing flushed; WAL replay must recover both
  EXPECT_EQ(Get("persist1"), "v1");
  EXPECT_EQ(Get("persist2"), "v2");
}

TEST_F(LsmDbTest, RecoveryFromManifestRestoresSstables) {
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(Put(Key(i), "stable" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ASSERT_TRUE(Put("after_flush", "wal_only").ok());
  Reopen();
  for (int i = 0; i < 200; i++) {
    EXPECT_EQ(Get(Key(i)), "stable" + std::to_string(i));
  }
  EXPECT_EQ(Get("after_flush"), "wal_only");
}

TEST_F(LsmDbTest, SequenceOrderSurvivesRecovery) {
  ASSERT_TRUE(Put("k", "first").ok());
  ASSERT_TRUE(Put("k", "second").ok());
  Reopen();
  EXPECT_EQ(Get("k"), "second");
  ASSERT_TRUE(Put("k", "third").ok());
  EXPECT_EQ(Get("k"), "third");
}

TEST_F(LsmDbTest, CompactionRemovesObsoleteFiles) {
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(Put(Key(i % 100), std::string(100, 'x')).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ASSERT_TRUE(db_->CompactAll().ok());
  DB::LsmShape shape = db_->GetLsmShape();
  // After full compaction, L0 must be small (below trigger).
  EXPECT_LT(shape.l0_files, options_.l0_compaction_trigger);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(Get(Key(i)), std::string(100, 'x'));
  }
}

TEST_F(LsmDbTest, ShapeStatsReflectTreeStructure) {
  DB::LsmShape empty = db_->GetLsmShape();
  EXPECT_EQ(empty.sorted_runs, 0);
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(Put(Key(i), std::string(64, 'v')).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  DB::LsmShape shape = db_->GetLsmShape();
  EXPECT_GE(shape.sorted_runs, 1);
  EXPECT_GE(shape.num_levels_nonempty, 1);
  EXPECT_GT(shape.entries_per_block, 0);
}

TEST_F(LsmDbTest, ConcurrentReadersDuringWrites) {
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(Put(Key(i), "base").ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());

  std::atomic<bool> stop{false};
  std::atomic<int> read_errors{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; t++) {
    readers.emplace_back([&, t] {
      Random rng(static_cast<uint64_t>(t) + 1);
      std::string value;
      while (!stop.load()) {
        int i = static_cast<int>(rng.Uniform(500));
        Status s = db_->Get(ReadOptions(), Slice(Key(i)), &value);
        if (!s.ok()) read_errors.fetch_add(1);
      }
    });
  }
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(Put(Key(i % 500), "updated" + std::to_string(i)).ok());
  }
  stop.store(true);
  for (auto& r : readers) r.join();
  EXPECT_EQ(read_errors.load(), 0);
}

TEST_F(LsmDbTest, WalDisabledStillWorksInProcess) {
  options_.enable_wal = false;
  Reopen();
  ASSERT_TRUE(Put("x", "1").ok());
  EXPECT_EQ(Get("x"), "1");
}

TEST_F(LsmDbTest, DisableWalWritesAreReadableButNotRecovered) {
  WriteOptions wal_off;
  wal_off.disable_wal = true;
  // Interleave logged and unlogged writes so group commit has to split them.
  ASSERT_TRUE(db_->Put(wal_off, Slice("volatile1"), Slice("v1")).ok());
  ASSERT_TRUE(Put("logged1", "L1").ok());
  ASSERT_TRUE(db_->Put(wal_off, Slice("volatile2"), Slice("v2")).ok());
  ASSERT_TRUE(Put("logged2", "L2").ok());
  EXPECT_EQ(Get("volatile1"), "v1");
  EXPECT_EQ(Get("volatile2"), "v2");
  EXPECT_EQ(Get("logged1"), "L1");
  EXPECT_EQ(Get("logged2"), "L2");

  Reopen();  // memtable dropped; WAL replay restores only the logged keys
  EXPECT_EQ(Get("logged1"), "L1");
  EXPECT_EQ(Get("logged2"), "L2");
  EXPECT_EQ(Get("volatile1"), "NOT_FOUND");
  EXPECT_EQ(Get("volatile2"), "NOT_FOUND");
}

TEST_F(LsmDbTest, DisableWalWritesSurviveOnceFlushed) {
  WriteOptions wal_off;
  wal_off.disable_wal = true;
  // sync is implied off when the WAL is skipped; this must not error.
  wal_off.sync = true;
  ASSERT_TRUE(db_->Put(wal_off, Slice("durable"), Slice("v")).ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());
  Reopen();
  EXPECT_EQ(Get("durable"), "v");
}

TEST_F(LsmDbTest, MixedWalAndNoWalWritersRecoverLoggedKeys) {
  constexpr int kPerWriter = 200;
  std::thread logged([&] {
    for (int i = 0; i < kPerWriter; i++) {
      ASSERT_TRUE(Put("logged" + std::to_string(i), "L").ok());
    }
  });
  std::thread unlogged([&] {
    WriteOptions wal_off;
    wal_off.disable_wal = true;
    for (int i = 0; i < kPerWriter; i++) {
      ASSERT_TRUE(db_->Put(wal_off, Slice("volatile" + std::to_string(i)),
                           Slice("V"))
                      .ok());
    }
  });
  logged.join();
  unlogged.join();
  Reopen();
  // Every logged key must replay, regardless of how the write groups were
  // carved up around the unlogged writers.
  for (int i = 0; i < kPerWriter; i++) {
    EXPECT_EQ(Get("logged" + std::to_string(i)), "L");
  }
}

TEST_F(LsmDbTest, EmptyKeyAndValueSupported) {
  ASSERT_TRUE(Put("k", "").ok());
  EXPECT_EQ(Get("k"), "");
}

}  // namespace
}  // namespace adcache::lsm
