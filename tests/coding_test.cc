#include "util/coding.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

namespace adcache {
namespace {

TEST(CodingTest, Fixed32RoundTrip) {
  std::string s;
  for (uint32_t v : {0u, 1u, 255u, 256u, 0xdeadbeefu,
                     std::numeric_limits<uint32_t>::max()}) {
    s.clear();
    PutFixed32(&s, v);
    ASSERT_EQ(s.size(), 4u);
    EXPECT_EQ(DecodeFixed32(s.data()), v);
  }
}

TEST(CodingTest, Fixed64RoundTrip) {
  std::string s;
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{1} << 40,
                     std::numeric_limits<uint64_t>::max()}) {
    s.clear();
    PutFixed64(&s, v);
    ASSERT_EQ(s.size(), 8u);
    EXPECT_EQ(DecodeFixed64(s.data()), v);
  }
}

TEST(CodingTest, Varint32RoundTrip) {
  std::string s;
  std::vector<uint32_t> values;
  for (uint32_t i = 0; i < 32; i++) {
    values.push_back(i);
    values.push_back((1u << i) - 1);
    values.push_back(1u << i);
  }
  for (uint32_t v : values) PutVarint32(&s, v);
  Slice input(s);
  for (uint32_t expected : values) {
    uint32_t actual = 0;
    ASSERT_TRUE(GetVarint32(&input, &actual));
    EXPECT_EQ(actual, expected);
  }
  EXPECT_TRUE(input.empty());
}

TEST(CodingTest, Varint64RoundTrip) {
  std::string s;
  std::vector<uint64_t> values = {0, 127, 128, 16383, 16384,
                                  std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : values) PutVarint64(&s, v);
  Slice input(s);
  for (uint64_t expected : values) {
    uint64_t actual = 0;
    ASSERT_TRUE(GetVarint64(&input, &actual));
    EXPECT_EQ(actual, expected);
  }
  EXPECT_TRUE(input.empty());
}

TEST(CodingTest, VarintLengthMatchesEncoding) {
  for (uint64_t v : {uint64_t{0}, uint64_t{127}, uint64_t{128},
                     uint64_t{1} << 35, std::numeric_limits<uint64_t>::max()}) {
    std::string s;
    PutVarint64(&s, v);
    EXPECT_EQ(static_cast<int>(s.size()), VarintLength(v));
  }
}

TEST(CodingTest, TruncatedVarintFails) {
  std::string s;
  PutVarint32(&s, 1u << 30);
  Slice truncated(s.data(), s.size() - 1);
  uint32_t v = 0;
  EXPECT_FALSE(GetVarint32(&truncated, &v));
}

TEST(CodingTest, LengthPrefixedSliceRoundTrip) {
  std::string s;
  PutLengthPrefixedSlice(&s, Slice("hello"));
  PutLengthPrefixedSlice(&s, Slice(""));
  PutLengthPrefixedSlice(&s, Slice(std::string(1000, 'z')));
  Slice input(s);
  Slice out;
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &out));
  EXPECT_EQ(out.ToString(), "hello");
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &out));
  EXPECT_EQ(out.size(), 0u);
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &out));
  EXPECT_EQ(out.ToString(), std::string(1000, 'z'));
  EXPECT_FALSE(GetLengthPrefixedSlice(&input, &out));
}

TEST(SliceTest, CompareOrdersLexicographically) {
  EXPECT_LT(Slice("a").compare(Slice("b")), 0);
  EXPECT_GT(Slice("b").compare(Slice("a")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);
  EXPECT_TRUE(Slice("abc").starts_with(Slice("ab")));
  EXPECT_FALSE(Slice("abc").starts_with(Slice("b")));
}

}  // namespace
}  // namespace adcache
