#include "cache/kv_cache.h"

#include <gtest/gtest.h>

#include <string>

namespace adcache {
namespace {

TEST(KvCacheTest, PutGetRoundTrip) {
  KvCache cache(1 << 16);
  cache.Put(Slice("k"), Slice("v"));
  std::string value;
  EXPECT_TRUE(cache.Get(Slice("k"), &value));
  EXPECT_EQ(value, "v");
  EXPECT_FALSE(cache.Get(Slice("missing"), &value));
}

TEST(KvCacheTest, OverwriteReplaces) {
  KvCache cache(1 << 16);
  cache.Put(Slice("k"), Slice("v1"));
  cache.Put(Slice("k"), Slice("v2"));
  std::string value;
  EXPECT_TRUE(cache.Get(Slice("k"), &value));
  EXPECT_EQ(value, "v2");
}

TEST(KvCacheTest, EraseInvalidates) {
  KvCache cache(1 << 16);
  cache.Put(Slice("k"), Slice("v"));
  cache.Erase(Slice("k"));
  std::string value;
  EXPECT_FALSE(cache.Get(Slice("k"), &value));
}

TEST(KvCacheTest, CapacityBoundsUsage) {
  KvCache cache(4096);
  for (int i = 0; i < 200; i++) {
    cache.Put(Slice("key" + std::to_string(i)), Slice(std::string(100, 'v')));
  }
  EXPECT_LE(cache.GetUsage(), 4096u);
  // Recent entries survive, oldest are gone.
  std::string value;
  EXPECT_TRUE(cache.Get(Slice("key199"), &value));
  EXPECT_FALSE(cache.Get(Slice("key0"), &value));
}

TEST(KvCacheTest, HitMissCountersTrack) {
  KvCache cache(1 << 16);
  cache.Put(Slice("k"), Slice("v"));
  std::string value;
  cache.Get(Slice("k"), &value);
  cache.Get(Slice("nope"), &value);
  EXPECT_GE(cache.hits(), 1u);
  EXPECT_GE(cache.misses(), 1u);
}

TEST(KvCacheTest, SetCapacityShrinks) {
  KvCache cache(1 << 16);
  for (int i = 0; i < 50; i++) {
    cache.Put(Slice("key" + std::to_string(i)), Slice(std::string(100, 'v')));
  }
  cache.SetCapacity(1024);
  EXPECT_LE(cache.GetUsage(), 1024u);
}

}  // namespace
}  // namespace adcache
