#include "lsm/log_writer.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "util/clock.h"
#include "util/env.h"

namespace adcache::lsm {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { env_ = NewMemEnv(&clock_); }

  std::unique_ptr<LogWriter> NewWriter(const std::string& fname) {
    std::unique_ptr<WritableFile> file;
    EXPECT_TRUE(env_->NewWritableFile(fname, &file).ok());
    return std::make_unique<LogWriter>(std::move(file));
  }

  std::unique_ptr<LogReader> NewReader(const std::string& fname) {
    std::unique_ptr<SequentialFile> file;
    EXPECT_TRUE(env_->NewSequentialFile(fname, &file).ok());
    return std::make_unique<LogReader>(std::move(file));
  }

  SimClock clock_;
  std::unique_ptr<Env> env_;
};

TEST_F(LogTest, RoundTripMultipleRecords) {
  auto writer = NewWriter("/log");
  ASSERT_TRUE(writer->AddRecord(Slice("first")).ok());
  ASSERT_TRUE(writer->AddRecord(Slice("")).ok());
  ASSERT_TRUE(writer->AddRecord(Slice(std::string(10000, 'x'))).ok());

  auto reader = NewReader("/log");
  Slice record;
  std::string scratch;
  ASSERT_TRUE(reader->ReadRecord(&record, &scratch));
  EXPECT_EQ(record.ToString(), "first");
  ASSERT_TRUE(reader->ReadRecord(&record, &scratch));
  EXPECT_EQ(record.size(), 0u);
  ASSERT_TRUE(reader->ReadRecord(&record, &scratch));
  EXPECT_EQ(record.ToString(), std::string(10000, 'x'));
  EXPECT_FALSE(reader->ReadRecord(&record, &scratch));
}

TEST_F(LogTest, BinaryPayloadsSafe) {
  auto writer = NewWriter("/log");
  std::string payload;
  for (int i = 0; i < 256; i++) payload.push_back(static_cast<char>(i));
  ASSERT_TRUE(writer->AddRecord(Slice(payload)).ok());
  auto reader = NewReader("/log");
  Slice record;
  std::string scratch;
  ASSERT_TRUE(reader->ReadRecord(&record, &scratch));
  EXPECT_EQ(record.ToString(), payload);
}

TEST_F(LogTest, TruncatedTailIsEndOfLog) {
  auto writer = NewWriter("/log");
  ASSERT_TRUE(writer->AddRecord(Slice("complete")).ok());
  ASSERT_TRUE(writer->AddRecord(Slice("to-be-truncated-record")).ok());

  // Simulate a crash mid-append: copy a truncated prefix to a new file.
  uint64_t size = 0;
  ASSERT_TRUE(env_->GetFileSize("/log", &size).ok());
  std::unique_ptr<SequentialFile> src;
  ASSERT_TRUE(env_->NewSequentialFile("/log", &src).ok());
  std::string buf(size - 5, '\0');
  Slice data;
  ASSERT_TRUE(src->Read(size - 5, &data, buf.data()).ok());
  std::unique_ptr<WritableFile> dst;
  ASSERT_TRUE(env_->NewWritableFile("/trunc", &dst).ok());
  ASSERT_TRUE(dst->Append(data).ok());

  auto reader = NewReader("/trunc");
  Slice record;
  std::string scratch;
  ASSERT_TRUE(reader->ReadRecord(&record, &scratch));
  EXPECT_EQ(record.ToString(), "complete");
  EXPECT_FALSE(reader->ReadRecord(&record, &scratch));  // truncated -> stop
}

TEST_F(LogTest, CorruptChecksumStopsReplay) {
  auto writer = NewWriter("/log");
  ASSERT_TRUE(writer->AddRecord(Slice("good")).ok());
  ASSERT_TRUE(writer->AddRecord(Slice("soon-corrupt")).ok());

  // Flip a payload byte of the second record.
  uint64_t size = 0;
  ASSERT_TRUE(env_->GetFileSize("/log", &size).ok());
  std::unique_ptr<SequentialFile> src;
  ASSERT_TRUE(env_->NewSequentialFile("/log", &src).ok());
  std::string buf(size, '\0');
  Slice data;
  ASSERT_TRUE(src->Read(size, &data, buf.data()).ok());
  std::string copy = data.ToString();
  copy[copy.size() - 1] ^= 0x40;
  std::unique_ptr<WritableFile> dst;
  ASSERT_TRUE(env_->NewWritableFile("/corrupt", &dst).ok());
  ASSERT_TRUE(dst->Append(Slice(copy)).ok());

  auto reader = NewReader("/corrupt");
  Slice record;
  std::string scratch;
  ASSERT_TRUE(reader->ReadRecord(&record, &scratch));
  EXPECT_EQ(record.ToString(), "good");
  EXPECT_FALSE(reader->ReadRecord(&record, &scratch));
}

TEST_F(LogTest, FileSizeTracksAppends) {
  auto writer = NewWriter("/log");
  EXPECT_EQ(writer->FileSize(), 0u);
  ASSERT_TRUE(writer->AddRecord(Slice("12345")).ok());
  EXPECT_EQ(writer->FileSize(), 8u + 5u);  // header + payload
}

}  // namespace
}  // namespace adcache::lsm
