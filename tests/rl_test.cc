#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "rl/actor_critic.h"
#include "rl/mlp.h"

namespace adcache::rl {
namespace {

TEST(MlpTest, ParameterCountMatchesArchitecture) {
  Mlp mlp({4, 8, 2}, 1);
  // (4*8 + 8) + (8*2 + 2) = 58.
  EXPECT_EQ(mlp.ParameterCount(), 58u);
  EXPECT_EQ(mlp.ParameterBytes(), 58u * 4);
  EXPECT_EQ(mlp.OptimizerBytes(), 3u * 58u * 4);
}

TEST(MlpTest, PaperScaleModelIsRoughly550Kb) {
  // Paper §4.3: actor+critic, 2 hidden layers of 256, ~140k params, ~550 KB.
  Mlp actor({11, 256, 256, 4}, 1);
  Mlp critic({11, 256, 256, 1}, 2);
  size_t params = actor.ParameterCount() + critic.ParameterCount();
  EXPECT_GT(params, 130000u);
  EXPECT_LT(params, 160000u);
  size_t bytes = actor.ParameterBytes() + critic.ParameterBytes();
  EXPECT_GT(bytes, 500u * 1024);
  EXPECT_LT(bytes, 650u * 1024);
}

TEST(MlpTest, ForwardIsDeterministic) {
  Mlp mlp({3, 16, 2}, 99);
  std::vector<float> x = {0.1f, -0.5f, 0.9f};
  auto out1 = mlp.Forward(x);
  auto out2 = mlp.Forward(x);
  ASSERT_EQ(out1.size(), 2u);
  EXPECT_EQ(out1, out2);
}

TEST(MlpTest, GradientMatchesFiniteDifference) {
  // Numerically check dL/d(input) for L = sum(outputs).
  Mlp mlp({3, 8, 1}, 7);
  std::vector<float> x = {0.3f, -0.2f, 0.7f};
  float base = mlp.Forward(x)[0];
  auto grad_in = mlp.Backward({1.0f});
  const float eps = 1e-3f;
  for (size_t i = 0; i < x.size(); i++) {
    std::vector<float> xp = x;
    xp[i] += eps;
    float bumped = mlp.Forward(xp)[0];
    float numeric = (bumped - base) / eps;
    EXPECT_NEAR(grad_in[i], numeric, 0.05f) << "input " << i;
  }
}

TEST(MlpTest, LearnsLinearFunction) {
  // y = 2*x0 - x1; online SGD-with-Adam regression must cut the loss.
  Mlp mlp({2, 16, 1}, 3);
  Random rng(5);
  auto run_epoch = [&](bool train) {
    double loss = 0;
    Random data_rng(17);
    for (int i = 0; i < 200; i++) {
      float x0 = static_cast<float>(data_rng.NextDouble()) - 0.5f;
      float x1 = static_cast<float>(data_rng.NextDouble()) - 0.5f;
      float target = 2 * x0 - x1;
      float y = mlp.Forward({x0, x1})[0];
      float err = y - target;
      loss += err * err;
      if (train) {
        mlp.Backward({2 * err});
        mlp.AdamStep(1e-2f);
      }
    }
    return loss / 200;
  };
  double before = run_epoch(false);
  for (int epoch = 0; epoch < 30; epoch++) run_epoch(true);
  double after = run_epoch(false);
  EXPECT_LT(after, before * 0.1);
  (void)rng;
}

TEST(MlpTest, SaveLoadRoundTrip) {
  Mlp a({4, 8, 2}, 1);
  std::string blob;
  a.Save(&blob);
  Mlp b({4, 8, 2}, 999);  // different init
  std::vector<float> x = {0.1f, 0.2f, 0.3f, 0.4f};
  EXPECT_NE(a.Forward(x), b.Forward(x));
  ASSERT_TRUE(b.Load(Slice(blob)).ok());
  EXPECT_EQ(a.Forward(x), b.Forward(x));
}

TEST(MlpTest, LoadRejectsWrongArchitecture) {
  Mlp a({4, 8, 2}, 1);
  std::string blob;
  a.Save(&blob);
  Mlp b({4, 16, 2}, 1);
  EXPECT_FALSE(b.Load(Slice(blob)).ok());
  Mlp c({4, 8, 2}, 1);
  EXPECT_FALSE(c.Load(Slice(blob.data(), blob.size() / 2)).ok());
}

ActorCriticOptions SmallAgentOptions() {
  ActorCriticOptions opts;
  opts.state_dim = 2;
  opts.action_dim = 1;
  opts.hidden_dim = 32;
  opts.seed = 11;
  return opts;
}

TEST(ActorCriticTest, ActionsAreInUnitRange) {
  ActorCriticAgent agent(SmallAgentOptions());
  for (int i = 0; i < 50; i++) {
    auto a = agent.Act({static_cast<float>(i % 3) / 3.0f, 0.5f}, true);
    ASSERT_EQ(a.size(), 1u);
    EXPECT_GE(a[0], 0.0f);
    EXPECT_LE(a[0], 1.0f);
  }
}

TEST(ActorCriticTest, ActWithoutExplorationIsDeterministic) {
  ActorCriticAgent agent(SmallAgentOptions());
  auto a1 = agent.Act({0.1f, 0.9f}, false);
  auto a2 = agent.Act({0.1f, 0.9f}, false);
  EXPECT_EQ(a1, a2);
}

TEST(ActorCriticTest, LearnsBanditTowardHighRewardAction) {
  // Single-state continuous bandit: reward = 1 - |action - 0.8|.
  ActorCriticOptions opts = SmallAgentOptions();
  opts.actor_lr = 5e-3f;
  opts.adaptive_lr = false;
  opts.exploration_sigma = 0.15f;
  ActorCriticAgent agent(opts);
  std::vector<float> state = {0.5f, 0.5f};
  for (int i = 0; i < 3000; i++) {
    auto action = agent.Act(state, true);
    float reward = 1.0f - std::fabs(action[0] - 0.8f);
    agent.Observe(state, action, reward, state);
  }
  auto final_action = agent.Act(state, false);
  EXPECT_NEAR(final_action[0], 0.8f, 0.22f);
}

TEST(ActorCriticTest, AdaptiveLearningRateFollowsPaperRule) {
  ActorCriticOptions opts = SmallAgentOptions();
  opts.actor_lr = 1e-3f;
  ActorCriticAgent agent(opts);
  float lr0 = agent.actor_lr();
  agent.AdaptLearningRate(0.5f);  // positive reward -> lr shrinks
  EXPECT_LT(agent.actor_lr(), lr0);
  float lr1 = agent.actor_lr();
  agent.AdaptLearningRate(-0.5f);  // negative reward -> lr grows
  EXPECT_GT(agent.actor_lr(), lr1);
}

TEST(ActorCriticTest, PretrainingRegressesPolicyMean) {
  ActorCriticAgent agent(SmallAgentOptions());
  std::vector<float> state = {0.2f, 0.7f};
  std::vector<float> target = {0.9f};
  float first_loss = agent.PretrainStep(state, target);
  float loss = first_loss;
  for (int i = 0; i < 500; i++) loss = agent.PretrainStep(state, target);
  EXPECT_LT(loss, first_loss * 0.5f);
  EXPECT_NEAR(agent.Act(state, false)[0], 0.9f, 0.1f);
}

TEST(ActorCriticTest, MemoryFootprintMatchesPaperTable2) {
  // Paper Table 2: ~550 KB of weights, ~2 MB total with Adam + gradients.
  ActorCriticOptions opts;
  opts.state_dim = 11;
  opts.action_dim = 4;
  opts.hidden_dim = 256;
  ActorCriticAgent agent(opts);
  auto fp = agent.GetMemoryFootprint();
  EXPECT_GT(fp.parameter_bytes, 500u * 1024);
  EXPECT_LT(fp.parameter_bytes, 700u * 1024);
  EXPECT_GT(fp.total_bytes, 1800u * 1024);
  EXPECT_LT(fp.total_bytes, 3000u * 1024);
}

TEST(ActorCriticTest, SaveLoadPreservesPolicy) {
  ActorCriticAgent a(SmallAgentOptions());
  std::vector<float> state = {0.3f, 0.6f};
  for (int i = 0; i < 50; i++) {
    auto action = a.Act(state, true);
    a.Observe(state, action, 0.1f, state);
  }
  std::string blob;
  a.Save(&blob);

  ActorCriticOptions opts = SmallAgentOptions();
  opts.seed = 4242;
  ActorCriticAgent b(opts);
  ASSERT_TRUE(b.Load(Slice(blob)).ok());
  EXPECT_EQ(a.Act(state, false), b.Act(state, false));
  EXPECT_FLOAT_EQ(a.EstimateValue(state), b.EstimateValue(state));
}

}  // namespace
}  // namespace adcache::rl
