#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "lsm/block.h"
#include "lsm/block_builder.h"
#include "lsm/dbformat.h"
#include "lsm/version.h"
#include "util/random.h"

namespace adcache::lsm {
namespace {

// Builds a Block-backed iterator over the given (user_key -> value) pairs.
class RunFixture {
 public:
  explicit RunFixture(const std::map<std::string, std::string>& entries,
                      SequenceNumber seq) {
    BlockBuilder builder(4);
    for (const auto& [k, v] : entries) {
      builder.Add(Slice(MakeInternalKey(k, seq, kTypeValue)), Slice(v));
    }
    block_ = std::make_unique<Block>(builder.Finish().ToString());
  }

  Iterator* NewIterator() const { return block_->NewIterator(&cmp_); }

 private:
  std::unique_ptr<Block> block_;
  InternalKeyComparator cmp_;
};

TEST(MergeIteratorTest, InterleavesSortedRuns) {
  std::map<std::string, std::string> run1, run2, run3;
  for (int i = 0; i < 30; i += 3) run1["k" + std::to_string(100 + i)] = "a";
  for (int i = 1; i < 30; i += 3) run2["k" + std::to_string(100 + i)] = "b";
  for (int i = 2; i < 30; i += 3) run3["k" + std::to_string(100 + i)] = "c";
  RunFixture f1(run1, 1), f2(run2, 2), f3(run3, 3);

  InternalKeyComparator cmp;
  std::unique_ptr<Iterator> merged(NewMergingIterator(
      &cmp, {f1.NewIterator(), f2.NewIterator(), f3.NewIterator()}));

  int count = 0;
  std::string prev;
  for (merged->SeekToFirst(); merged->Valid(); merged->Next()) {
    std::string user_key = ExtractUserKey(merged->key()).ToString();
    EXPECT_LT(prev, user_key);
    prev = user_key;
    count++;
  }
  EXPECT_EQ(count, 30);
}

TEST(MergeIteratorTest, DuplicateUserKeysOrderedBySeqDesc) {
  std::map<std::string, std::string> old_run{{"k", "old"}};
  std::map<std::string, std::string> new_run{{"k", "new"}};
  RunFixture older(old_run, 5), newer(new_run, 9);

  InternalKeyComparator cmp;
  std::unique_ptr<Iterator> merged(
      NewMergingIterator(&cmp, {older.NewIterator(), newer.NewIterator()}));
  merged->SeekToFirst();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(merged->value().ToString(), "new");  // higher sequence first
  merged->Next();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(merged->value().ToString(), "old");
}

TEST(MergeIteratorTest, SeekPositionsAllChildren) {
  std::map<std::string, std::string> run1, run2;
  for (int i = 0; i < 20; i++) run1["a" + std::to_string(i)] = "1";
  for (int i = 0; i < 20; i++) run2["b" + std::to_string(i)] = "2";
  RunFixture f1(run1, 1), f2(run2, 2);

  InternalKeyComparator cmp;
  std::unique_ptr<Iterator> merged(
      NewMergingIterator(&cmp, {f1.NewIterator(), f2.NewIterator()}));
  merged->Seek(Slice(MakeLookupKey("b", kMaxSequenceNumber)));
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(ExtractUserKey(merged->key()).ToString(), "b0");
}

TEST(MergeIteratorTest, EmptyChildrenHandled) {
  InternalKeyComparator cmp;
  std::unique_ptr<Iterator> merged(NewMergingIterator(
      &cmp, {NewEmptyIterator(), NewEmptyIterator()}));
  merged->SeekToFirst();
  EXPECT_FALSE(merged->Valid());
  merged->Seek(Slice(MakeLookupKey("x", 1)));
  EXPECT_FALSE(merged->Valid());
}

TEST(MergeIteratorTest, RandomizedMatchesReferenceMerge) {
  Random rng(404);
  std::vector<std::map<std::string, std::string>> runs(5);
  std::map<std::string, std::string> reference;  // newest-wins
  // Assign ascending sequence per run; later runs shadow earlier ones.
  for (int r = 0; r < 5; r++) {
    for (int i = 0; i < 200; i++) {
      std::string key = "key" + std::to_string(rng.Uniform(500));
      std::string value = "r" + std::to_string(r) + "_" + std::to_string(i);
      runs[static_cast<size_t>(r)][key] = value;
    }
  }
  for (int r = 0; r < 5; r++) {
    for (const auto& [k, v] : runs[static_cast<size_t>(r)]) {
      reference[k] = v;  // higher r wins below via seq
    }
  }
  // Rebuild reference honouring "higher run index = newer".
  reference.clear();
  for (int r = 4; r >= 0; r--) {
    for (const auto& [k, v] : runs[static_cast<size_t>(r)]) {
      reference.emplace(k, v);  // emplace keeps the newest (first inserted)
    }
  }

  std::vector<std::unique_ptr<RunFixture>> fixtures;
  std::vector<Iterator*> children;
  for (int r = 0; r < 5; r++) {
    fixtures.push_back(std::make_unique<RunFixture>(
        runs[static_cast<size_t>(r)], static_cast<SequenceNumber>(r + 1)));
    children.push_back(fixtures.back()->NewIterator());
  }
  InternalKeyComparator cmp;
  std::unique_ptr<Iterator> merged(
      NewMergingIterator(&cmp, std::move(children)));

  // Walk the merge keeping only the first (newest) entry per user key.
  std::map<std::string, std::string> walked;
  for (merged->SeekToFirst(); merged->Valid(); merged->Next()) {
    std::string user_key = ExtractUserKey(merged->key()).ToString();
    walked.emplace(user_key, merged->value().ToString());
  }
  EXPECT_EQ(walked, reference);
}

}  // namespace
}  // namespace adcache::lsm
