#include "lsm/bloom.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

namespace adcache::lsm {
namespace {

std::string Key(int i) { return "key" + std::to_string(i); }

TEST(BloomTest, EmptyFilterRejectsNothingButIsTiny) {
  BloomFilterBuilder builder(10);
  std::string filter = builder.Finish();
  EXPECT_LT(filter.size(), 16u);
}

TEST(BloomTest, NoFalseNegatives) {
  BloomFilterBuilder builder(10);
  for (int i = 0; i < 5000; i++) builder.AddKey(Slice(Key(i)));
  std::string filter = builder.Finish();
  BloomFilterReader reader((Slice(filter)));
  for (int i = 0; i < 5000; i++) {
    EXPECT_TRUE(reader.KeyMayMatch(Slice(Key(i)))) << i;
  }
}

TEST(BloomTest, MalformedFilterFailsOpen) {
  BloomFilterReader empty((Slice("")));
  EXPECT_TRUE(empty.KeyMayMatch(Slice("anything")));
  BloomFilterReader one_byte((Slice("x")));
  EXPECT_TRUE(one_byte.KeyMayMatch(Slice("anything")));
}

class BloomFprTest : public ::testing::TestWithParam<int> {};

TEST_P(BloomFprTest, FalsePositiveRateWithinTheory) {
  const int bits_per_key = GetParam();
  BloomFilterBuilder builder(bits_per_key);
  const int n = 4000;
  for (int i = 0; i < n; i++) builder.AddKey(Slice(Key(i)));
  std::string filter = builder.Finish();
  BloomFilterReader reader((Slice(filter)));

  int false_positives = 0;
  const int probes = 10000;
  for (int i = 0; i < probes; i++) {
    if (reader.KeyMayMatch(Slice("absent" + std::to_string(i)))) {
      false_positives++;
    }
  }
  double fpr = static_cast<double>(false_positives) / probes;
  // Theoretical ~0.6185^bits; allow 3x slack for hash imperfection.
  double theory = std::pow(0.6185, bits_per_key);
  EXPECT_LT(fpr, theory * 3 + 0.005)
      << "bits=" << bits_per_key << " fpr=" << fpr;
}

INSTANTIATE_TEST_SUITE_P(BitsPerKey, BloomFprTest,
                         ::testing::Values(4, 8, 10, 16));

TEST(BloomTest, TenBitsPerKeyIsBelowTwoPercent) {
  // The paper's setting: 10 bits/key -> FPR ~1%.
  BloomFilterBuilder builder(10);
  for (int i = 0; i < 20000; i++) builder.AddKey(Slice(Key(i)));
  std::string filter = builder.Finish();
  BloomFilterReader reader((Slice(filter)));
  int fp = 0;
  for (int i = 0; i < 20000; i++) {
    if (reader.KeyMayMatch(Slice("no" + std::to_string(i)))) fp++;
  }
  EXPECT_LT(fp, 400);  // < 2%
}

}  // namespace
}  // namespace adcache::lsm
