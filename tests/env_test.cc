#include "util/env.h"

#include <gtest/gtest.h>

#include "util/clock.h"

namespace adcache {
namespace {

class MemEnvTest : public ::testing::Test {
 protected:
  void SetUp() override { env_ = NewMemEnv(&clock_); }

  SimClock clock_;
  std::unique_ptr<Env> env_;
};

TEST_F(MemEnvTest, WriteThenReadBack) {
  std::unique_ptr<WritableFile> wf;
  ASSERT_TRUE(env_->NewWritableFile("/db/f1", &wf).ok());
  ASSERT_TRUE(wf->Append(Slice("hello ")).ok());
  ASSERT_TRUE(wf->Append(Slice("world")).ok());
  ASSERT_TRUE(wf->Close().ok());

  std::unique_ptr<RandomAccessFile> rf;
  ASSERT_TRUE(env_->NewRandomAccessFile("/db/f1", &rf).ok());
  EXPECT_EQ(rf->Size(), 11u);
  char scratch[16];
  Slice result;
  ASSERT_TRUE(rf->Read(6, 5, &result, scratch).ok());
  EXPECT_EQ(result.ToString(), "world");
}

TEST_F(MemEnvTest, SequentialReadAndSkip) {
  std::unique_ptr<WritableFile> wf;
  ASSERT_TRUE(env_->NewWritableFile("/db/f2", &wf).ok());
  ASSERT_TRUE(wf->Append(Slice("0123456789")).ok());

  std::unique_ptr<SequentialFile> sf;
  ASSERT_TRUE(env_->NewSequentialFile("/db/f2", &sf).ok());
  char scratch[16];
  Slice result;
  ASSERT_TRUE(sf->Read(3, &result, scratch).ok());
  EXPECT_EQ(result.ToString(), "012");
  ASSERT_TRUE(sf->Skip(2).ok());
  ASSERT_TRUE(sf->Read(3, &result, scratch).ok());
  EXPECT_EQ(result.ToString(), "567");
}

TEST_F(MemEnvTest, MissingFileReturnsNotFound) {
  std::unique_ptr<RandomAccessFile> rf;
  EXPECT_TRUE(env_->NewRandomAccessFile("/db/nope", &rf).IsNotFound());
  EXPECT_FALSE(env_->FileExists("/db/nope"));
}

TEST_F(MemEnvTest, RemoveFile) {
  std::unique_ptr<WritableFile> wf;
  ASSERT_TRUE(env_->NewWritableFile("/db/f3", &wf).ok());
  EXPECT_TRUE(env_->FileExists("/db/f3"));
  ASSERT_TRUE(env_->RemoveFile("/db/f3").ok());
  EXPECT_FALSE(env_->FileExists("/db/f3"));
  EXPECT_TRUE(env_->RemoveFile("/db/f3").IsNotFound());
}

TEST_F(MemEnvTest, GetChildrenListsDirectoryEntriesOnly) {
  std::unique_ptr<WritableFile> wf;
  ASSERT_TRUE(env_->NewWritableFile("/db/a", &wf).ok());
  ASSERT_TRUE(env_->NewWritableFile("/db/b", &wf).ok());
  ASSERT_TRUE(env_->NewWritableFile("/db/sub/c", &wf).ok());
  ASSERT_TRUE(env_->NewWritableFile("/other/d", &wf).ok());
  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren("/db", &children).ok());
  EXPECT_EQ(children.size(), 2u);
}

TEST_F(MemEnvTest, ReadChargesSimulatedLatency) {
  MemEnvOptions opts;
  opts.read_latency_micros = 100;
  opts.write_latency_micros = 0;
  auto env = NewMemEnv(&clock_, opts);
  std::unique_ptr<WritableFile> wf;
  ASSERT_TRUE(env->NewWritableFile("/db/f", &wf).ok());
  ASSERT_TRUE(wf->Append(Slice("data")).ok());

  uint64_t before = clock_.NowMicros();
  std::unique_ptr<RandomAccessFile> rf;
  ASSERT_TRUE(env->NewRandomAccessFile("/db/f", &rf).ok());
  char scratch[8];
  Slice result;
  ASSERT_TRUE(rf->Read(0, 4, &result, scratch).ok());
  ASSERT_TRUE(rf->Read(0, 4, &result, scratch).ok());
  EXPECT_EQ(clock_.NowMicros() - before, 200u);
}

TEST_F(MemEnvTest, IoStatsCountReadsAndWrites) {
  std::unique_ptr<WritableFile> wf;
  ASSERT_TRUE(env_->NewWritableFile("/db/f", &wf).ok());
  ASSERT_TRUE(wf->Append(Slice("abcdef")).ok());
  std::unique_ptr<RandomAccessFile> rf;
  ASSERT_TRUE(env_->NewRandomAccessFile("/db/f", &rf).ok());
  char scratch[8];
  Slice result;
  ASSERT_TRUE(rf->Read(0, 6, &result, scratch).ok());
  EXPECT_EQ(env_->io_stats()->bytes_written.load(), 6u);
  EXPECT_EQ(env_->io_stats()->bytes_read.load(), 6u);
  EXPECT_EQ(env_->io_stats()->read_ops.load(), 1u);
  EXPECT_EQ(env_->io_stats()->write_ops.load(), 1u);
}

TEST(SimClockTest, ChargeAdvances) {
  SimClock clock;
  EXPECT_EQ(clock.NowMicros(), 0u);
  clock.Charge(50);
  clock.Charge(25);
  EXPECT_EQ(clock.NowMicros(), 75u);
  clock.Reset();
  EXPECT_EQ(clock.NowMicros(), 0u);
}

TEST(SystemClockTest, MonotonicallyAdvances) {
  auto* clock = SystemClock::Default();
  uint64_t a = clock->NowMicros();
  uint64_t b = clock->NowMicros();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace adcache
