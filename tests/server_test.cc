// Network front-door coverage: RESP frame parsing (torn, pipelined and
// oversized frames), loopback round trips for every verb against a real
// store, read-coalescer batch assembly (replies must land on the right
// connections in request order), the coalesce on/off ablation paths, and
// clean shutdown with requests in flight. Run with -DADCACHE_SANITIZE=thread
// or =address for the race/lifetime checks on the event loop.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/strategy.h"
#include "server/coalescer.h"
#include "server/resp.h"
#include "server/server.h"
#include "util/clock.h"
#include "util/env.h"

namespace adcache {
namespace {

using server::PendingReply;
using server::ReadCoalescer;
using server::RespCommand;
using server::RespLimits;
using server::RespParse;
using server::RespParser;

// ---------------------------------------------------------------------------
// Frame parser
// ---------------------------------------------------------------------------

TEST(RespParserTest, ParsesInlineCommand) {
  RespParser parser;
  RespCommand cmd;
  size_t consumed = 0;
  const char* frame = "SET  key1\tvalue1\r\n";
  ASSERT_EQ(RespParse::kCommand,
            parser.Parse(frame, strlen(frame), &consumed, &cmd));
  EXPECT_EQ(strlen(frame), consumed);
  ASSERT_EQ(3u, cmd.args.size());
  EXPECT_EQ("SET", cmd.args[0].ToString());
  EXPECT_EQ("key1", cmd.args[1].ToString());
  EXPECT_EQ("value1", cmd.args[2].ToString());
}

TEST(RespParserTest, ParsesArrayCommand) {
  RespParser parser;
  RespCommand cmd;
  size_t consumed = 0;
  std::string frame = "*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$5\r\nhello\r\n";
  ASSERT_EQ(RespParse::kCommand,
            parser.Parse(frame.data(), frame.size(), &consumed, &cmd));
  EXPECT_EQ(frame.size(), consumed);
  ASSERT_EQ(3u, cmd.args.size());
  EXPECT_EQ("SET", cmd.args[0].ToString());
  EXPECT_EQ("hello", cmd.args[2].ToString());
}

TEST(RespParserTest, TornFrameNeedsMoreAtEveryPrefix) {
  RespParser parser;
  std::string frame = "*2\r\n$3\r\nGET\r\n$4\r\nkey9\r\n";
  for (size_t cut = 0; cut < frame.size(); cut++) {
    RespCommand cmd;
    size_t consumed = 123;
    ASSERT_EQ(RespParse::kNeedMore,
              parser.Parse(frame.data(), cut, &consumed, &cmd))
        << "prefix length " << cut;
    EXPECT_EQ(0u, consumed);
  }
  RespCommand cmd;
  size_t consumed = 0;
  ASSERT_EQ(RespParse::kCommand,
            parser.Parse(frame.data(), frame.size(), &consumed, &cmd));
  EXPECT_EQ(frame.size(), consumed);
  EXPECT_EQ("key9", cmd.args[1].ToString());
}

TEST(RespParserTest, PipelinedFramesConsumeOneAtATime) {
  RespParser parser;
  std::string buffer =
      "*2\r\n$3\r\nGET\r\n$1\r\na\r\n"
      "SET b 2\r\n"
      "*1\r\n$4\r\nPING\r\n";
  std::vector<std::string> names;
  size_t pos = 0;
  while (pos < buffer.size()) {
    RespCommand cmd;
    size_t consumed = 0;
    ASSERT_EQ(RespParse::kCommand,
              parser.Parse(buffer.data() + pos, buffer.size() - pos,
                           &consumed, &cmd));
    ASSERT_GT(consumed, 0u);
    names.push_back(cmd.args[0].ToString());
    pos += consumed;
  }
  EXPECT_EQ(buffer.size(), pos);
  ASSERT_EQ(3u, names.size());
  EXPECT_EQ("GET", names[0]);
  EXPECT_EQ("SET", names[1]);
  EXPECT_EQ("PING", names[2]);
}

TEST(RespParserTest, RejectsOversizedArray) {
  RespLimits limits;
  limits.max_array_elements = 16;
  RespParser parser(limits);
  RespCommand cmd;
  size_t consumed = 0;
  std::string frame = "*17\r\n";
  EXPECT_EQ(RespParse::kError,
            parser.Parse(frame.data(), frame.size(), &consumed, &cmd));
  EXPECT_NE(std::string::npos, parser.error().find("multibulk"));
}

TEST(RespParserTest, RejectsOversizedBulk) {
  RespLimits limits;
  limits.max_bulk_bytes = 1024;
  RespParser parser(limits);
  RespCommand cmd;
  size_t consumed = 0;
  std::string frame = "*1\r\n$2048\r\n";
  EXPECT_EQ(RespParse::kError,
            parser.Parse(frame.data(), frame.size(), &consumed, &cmd));
  EXPECT_NE(std::string::npos, parser.error().find("bulk"));
}

TEST(RespParserTest, RejectsOversizedInlineLine) {
  RespLimits limits;
  limits.max_inline_bytes = 64;
  RespParser parser(limits);
  RespCommand cmd;
  size_t consumed = 0;
  // No newline yet, but already past the line limit: fail instead of
  // buffering forever.
  std::string frame(65, 'a');
  EXPECT_EQ(RespParse::kError,
            parser.Parse(frame.data(), frame.size(), &consumed, &cmd));
  // Same line but terminated: still over the limit.
  frame += "\r\n";
  EXPECT_EQ(RespParse::kError,
            parser.Parse(frame.data(), frame.size(), &consumed, &cmd));
}

TEST(RespParserTest, RejectsMalformedFrames) {
  RespParser parser;
  RespCommand cmd;
  size_t consumed = 0;
  std::string bad_count = "*abc\r\n";
  EXPECT_EQ(RespParse::kError,
            parser.Parse(bad_count.data(), bad_count.size(), &consumed, &cmd));
  std::string bad_type = "*1\r\n+OK\r\n";
  EXPECT_EQ(RespParse::kError,
            parser.Parse(bad_type.data(), bad_type.size(), &consumed, &cmd));
  std::string bad_term = "*1\r\n$2\r\nabXX";
  EXPECT_EQ(RespParse::kError,
            parser.Parse(bad_term.data(), bad_term.size(), &consumed, &cmd));
  std::string neg_bulk = "*1\r\n$-1\r\n";
  EXPECT_EQ(RespParse::kError,
            parser.Parse(neg_bulk.data(), neg_bulk.size(), &consumed, &cmd));
}

TEST(RespParserTest, EmptyInlineLineIsZeroArgCommand) {
  RespParser parser;
  RespCommand cmd;
  size_t consumed = 0;
  std::string frame = "\r\n";
  ASSERT_EQ(RespParse::kCommand,
            parser.Parse(frame.data(), frame.size(), &consumed, &cmd));
  EXPECT_EQ(2u, consumed);
  EXPECT_TRUE(cmd.args.empty());
}

// ---------------------------------------------------------------------------
// Shared store fixture
// ---------------------------------------------------------------------------

class ServerTestBase : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv(&clock_);
    core::StoreConfig config;
    config.lsm.env = env_.get();
    config.lsm.enable_wal = false;
    config.dbname = "/server_test";
    config.cache_budget = 8 * 1024 * 1024;
    // Tiny RL agent: the controller is incidental to network coverage.
    config.adcache.controller.agent.hidden_dim = 32;
    Status s;
    store_ = core::CreateStore("adcache", config, &s);
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  void StartServer(int threads, bool coalesce) {
    server::ServerOptions options;
    options.port = 0;
    options.threads = threads;
    options.coalesce = coalesce;
    Status s = server::Server::Start(store_.get(), options, &server_);
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  SimClock clock_;
  std::unique_ptr<Env> env_;
  std::unique_ptr<core::KvStore> store_;
  std::unique_ptr<server::Server> server_;
};

// ---------------------------------------------------------------------------
// Coalescer batch assembly (no sockets)
// ---------------------------------------------------------------------------

class CoalescerTest : public ServerTestBase {};

TEST_F(CoalescerTest, FillsSlotsInOrderAcrossConnections) {
  ASSERT_TRUE(store_->Put(Slice("ck1"), Slice("cv1")).ok());
  ASSERT_TRUE(store_->Put(Slice("ck2"), Slice("cv2")).ok());

  // Two simulated connections with interleaved enqueue order.
  std::deque<PendingReply> conn_a;
  std::deque<PendingReply> conn_b;
  conn_a.emplace_back();
  conn_b.emplace_back();
  conn_a.emplace_back();

  ReadCoalescer coalescer;
  EXPECT_EQ(0u, coalescer.epoch());
  coalescer.Enqueue(Slice("ck1"), &conn_a[0]);
  coalescer.Enqueue(Slice("missing"), &conn_b[0]);
  coalescer.Enqueue(Slice("ck2"), &conn_a[1]);
  EXPECT_EQ(3u, coalescer.pending());

  coalescer.Flush(store_.get(), lsm::ReadOptions());
  EXPECT_TRUE(coalescer.empty());
  EXPECT_EQ(1u, coalescer.epoch());

  ASSERT_TRUE(conn_a[0].ready);
  EXPECT_EQ("$3\r\ncv1\r\n", conn_a[0].data);
  ASSERT_TRUE(conn_a[1].ready);
  EXPECT_EQ("$3\r\ncv2\r\n", conn_a[1].data);
  ASSERT_TRUE(conn_b[0].ready);
  EXPECT_EQ("$-1\r\n", conn_b[0].data);

  EXPECT_EQ(1u, coalescer.stats().batches);
  EXPECT_EQ(3u, coalescer.stats().coalesced_gets);
  EXPECT_EQ(3u, coalescer.stats().max_batch);

  // An empty flush is a no-op and does not advance the epoch.
  coalescer.Flush(store_.get(), lsm::ReadOptions());
  EXPECT_EQ(1u, coalescer.epoch());
  EXPECT_EQ(1u, coalescer.stats().batches);
}

// ---------------------------------------------------------------------------
// Loopback client helper
// ---------------------------------------------------------------------------

/// Blocking test client with a tiny RESP reply scanner (arrays included).
class TestClient {
 public:
  explicit TestClient(int port) {
    fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    connected_ =
        connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
    timeval tv{10, 0};
    setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    int one = 1;
    setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  ~TestClient() {
    if (fd_ >= 0) close(fd_);
  }
  bool connected() const { return connected_; }

  void Send(const std::string& bytes) {
    ASSERT_EQ(static_cast<ssize_t>(bytes.size()),
              send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL));
  }

  /// Reads exactly one complete reply (raw RESP bytes) or "" on EOF/timeout.
  std::string ReadReply() {
    while (true) {
      size_t consumed = 0;
      if (ScanReply(buffer_.data(), buffer_.size(), &consumed)) {
        std::string reply = buffer_.substr(0, consumed);
        buffer_.erase(0, consumed);
        return reply;
      }
      char chunk[4096];
      ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  /// True when the peer has closed the connection (after draining input).
  bool ReadEof() {
    char chunk[4096];
    while (true) {
      ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
      if (n == 0) return true;
      if (n < 0) return false;
    }
  }

 private:
  /// Returns true when buffer[0, len) starts with one full reply.
  static bool ScanReply(const char* data, size_t len, size_t* consumed) {
    if (len == 0) return false;
    const char* nl = static_cast<const char*>(memchr(data, '\n', len));
    if (nl == nullptr) return false;
    size_t line = static_cast<size_t>(nl - data) + 1;
    switch (data[0]) {
      case '+':
      case '-':
      case ':': {
        *consumed = line;
        return true;
      }
      case '$': {
        long n = atol(data + 1);
        if (n < 0) {
          *consumed = line;
          return true;
        }
        size_t total = line + static_cast<size_t>(n) + 2;
        if (len < total) return false;
        *consumed = total;
        return true;
      }
      case '*': {
        long n = atol(data + 1);
        size_t pos = line;
        for (long i = 0; i < n; i++) {
          size_t sub = 0;
          if (!ScanReply(data + pos, len - pos, &sub)) return false;
          pos += sub;
        }
        *consumed = pos;
        return true;
      }
      default:
        return false;
    }
  }

  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

std::string Bulk(const std::string& s) {
  return "$" + std::to_string(s.size()) + "\r\n" + s + "\r\n";
}

// ---------------------------------------------------------------------------
// Loopback round trips
// ---------------------------------------------------------------------------

class ServerLoopbackTest : public ServerTestBase {};

TEST_F(ServerLoopbackTest, RoundTripsEveryVerb) {
  StartServer(/*threads=*/2, /*coalesce=*/true);
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());

  client.Send("SET alpha one\r\n");
  EXPECT_EQ("+OK\r\n", client.ReadReply());
  client.Send("GET alpha\r\n");
  EXPECT_EQ(Bulk("one"), client.ReadReply());
  client.Send("GET nosuchkey\r\n");
  EXPECT_EQ("$-1\r\n", client.ReadReply());
  client.Send("DEL alpha\r\n");
  EXPECT_EQ(":1\r\n", client.ReadReply());
  client.Send("GET alpha\r\n");
  EXPECT_EQ("$-1\r\n", client.ReadReply());
  client.Send("PING\r\n");
  EXPECT_EQ("+PONG\r\n", client.ReadReply());
  client.Send("PING hello\r\n");
  EXPECT_EQ(Bulk("hello"), client.ReadReply());
  client.Send("NOSUCHCMD a b\r\n");
  std::string reply = client.ReadReply();
  EXPECT_EQ('-', reply[0]) << reply;

  // STATS dumps the Statistics registry as JSON.
  client.Send("STATS\r\n");
  reply = client.ReadReply();
  ASSERT_EQ('$', reply[0]) << reply;
  EXPECT_NE(std::string::npos, reply.find('{'));

  client.Send("QUIT\r\n");
  EXPECT_EQ("+OK\r\n", client.ReadReply());
  EXPECT_TRUE(client.ReadEof());
}

TEST_F(ServerLoopbackTest, MgetAndScanOverArrays) {
  ASSERT_TRUE(store_->Put(Slice("mk1"), Slice("mv1")).ok());
  ASSERT_TRUE(store_->Put(Slice("mk2"), Slice("mv2")).ok());
  ASSERT_TRUE(store_->Put(Slice("mk3"), Slice("mv3")).ok());
  StartServer(/*threads=*/2, /*coalesce=*/true);
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());

  client.Send("*4\r\n" + Bulk("MGET") + Bulk("mk1") + Bulk("absent") +
              Bulk("mk3"));
  EXPECT_EQ("*3\r\n" + Bulk("mv1") + "$-1\r\n" + Bulk("mv3"),
            client.ReadReply());

  client.Send("SCAN mk1 2\r\n");
  EXPECT_EQ("*4\r\n" + Bulk("mk1") + Bulk("mv1") + Bulk("mk2") + Bulk("mv2"),
            client.ReadReply());
}

TEST_F(ServerLoopbackTest, PipelinedRepliesKeepProgramOrder) {
  StartServer(/*threads=*/1, /*coalesce=*/true);
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());

  // A read between two writes of the same key must observe the first write:
  // the loop flushes the coalescer before applying a same-connection SET.
  client.Send(
      "SET seq 1\r\n"
      "GET seq\r\n"
      "SET seq 2\r\n"
      "GET seq\r\n"
      "GET seq\r\n");
  EXPECT_EQ("+OK\r\n", client.ReadReply());
  EXPECT_EQ(Bulk("1"), client.ReadReply());
  EXPECT_EQ("+OK\r\n", client.ReadReply());
  EXPECT_EQ(Bulk("2"), client.ReadReply());
  EXPECT_EQ(Bulk("2"), client.ReadReply());
}

TEST_F(ServerLoopbackTest, ProtocolErrorRepliesThenCloses) {
  StartServer(/*threads=*/1, /*coalesce=*/true);
  {
    TestClient client(server_->port());
    ASSERT_TRUE(client.connected());
    client.Send("*abc\r\n");
    std::string reply = client.ReadReply();
    ASSERT_FALSE(reply.empty());
    EXPECT_EQ('-', reply[0]) << reply;
    EXPECT_TRUE(client.ReadEof());
  }
  {
    // Oversized frame: rejected before the payload is buffered.
    TestClient client(server_->port());
    ASSERT_TRUE(client.connected());
    client.Send("*100000\r\n");
    std::string reply = client.ReadReply();
    ASSERT_FALSE(reply.empty());
    EXPECT_EQ('-', reply[0]) << reply;
    EXPECT_TRUE(client.ReadEof());
  }
  // The server survives both and keeps serving.
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  client.Send("PING\r\n");
  EXPECT_EQ("+PONG\r\n", client.ReadReply());
}

// ---------------------------------------------------------------------------
// Coalescing across connections
// ---------------------------------------------------------------------------

TEST_F(ServerLoopbackTest, CoalescedRepliesLandOnTheRightConnections) {
  const int kClients = 8;
  const int kGetsPerClient = 16;
  for (int c = 0; c < kClients; c++) {
    for (int g = 0; g < kGetsPerClient; g++) {
      std::string key = "ck" + std::to_string(c) + "_" + std::to_string(g);
      std::string value = "cv" + std::to_string(c) + "_" + std::to_string(g);
      ASSERT_TRUE(store_->Put(Slice(key), Slice(value)).ok());
    }
  }
  // One worker so every connection shares one coalescer.
  StartServer(/*threads=*/1, /*coalesce=*/true);

  std::vector<std::unique_ptr<TestClient>> clients;
  for (int c = 0; c < kClients; c++) {
    clients.push_back(std::make_unique<TestClient>(server_->port()));
    ASSERT_TRUE(clients.back()->connected());
  }
  // Burst all pipelines first so iterations see many connections at once.
  for (int c = 0; c < kClients; c++) {
    std::string burst;
    for (int g = 0; g < kGetsPerClient; g++) {
      burst += "GET ck" + std::to_string(c) + "_" + std::to_string(g) + "\r\n";
    }
    clients[static_cast<size_t>(c)]->Send(burst);
  }
  // Every reply must match its own connection's keys, in request order.
  for (int c = 0; c < kClients; c++) {
    for (int g = 0; g < kGetsPerClient; g++) {
      std::string want = "cv" + std::to_string(c) + "_" + std::to_string(g);
      EXPECT_EQ(Bulk(want), clients[static_cast<size_t>(c)]->ReadReply())
          << "client " << c << " get " << g;
    }
  }

  server::Server::CoalesceStats stats = server_->GetCoalesceStats();
  EXPECT_EQ(static_cast<uint64_t>(kClients * kGetsPerClient),
            stats.coalesced_gets);
  EXPECT_EQ(0u, stats.immediate_gets);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_GE(stats.max_batch, 1u);
}

TEST_F(ServerLoopbackTest, CoalesceOffAnswersImmediately) {
  ASSERT_TRUE(store_->Put(Slice("ik"), Slice("iv")).ok());
  StartServer(/*threads=*/1, /*coalesce=*/false);
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  client.Send("GET ik\r\nGET absent\r\n");
  EXPECT_EQ(Bulk("iv"), client.ReadReply());
  EXPECT_EQ("$-1\r\n", client.ReadReply());

  server::Server::CoalesceStats stats = server_->GetCoalesceStats();
  EXPECT_EQ(0u, stats.coalesced_gets);
  EXPECT_EQ(0u, stats.batches);
  EXPECT_EQ(2u, stats.immediate_gets);
}

// ---------------------------------------------------------------------------
// Shutdown
// ---------------------------------------------------------------------------

TEST_F(ServerLoopbackTest, StopsCleanlyWithRequestsInFlight) {
  for (int i = 0; i < 64; i++) {
    std::string key = "sk" + std::to_string(i);
    ASSERT_TRUE(store_->Put(Slice(key), Slice("sv")).ok());
  }
  StartServer(/*threads=*/2, /*coalesce=*/true);
  std::vector<std::unique_ptr<TestClient>> clients;
  for (int c = 0; c < 6; c++) {
    clients.push_back(std::make_unique<TestClient>(server_->port()));
    ASSERT_TRUE(clients.back()->connected());
    std::string burst;
    for (int i = 0; i < 64; i++) {
      burst += "GET sk" + std::to_string(i) + "\r\n";
    }
    clients.back()->Send(burst);
  }
  // Stop without reading anything: the workers must complete the in-flight
  // iteration (coalescer flushed, no dangling slots) and join.
  server_->Stop();
  server_->Stop();  // idempotent
  server_.reset();
}

TEST_F(ServerLoopbackTest, StartFailsOnBusyPort) {
  StartServer(/*threads=*/1, /*coalesce=*/true);
  server::ServerOptions options;
  options.port = server_->port();
  options.threads = 1;
  std::unique_ptr<server::Server> second;
  Status s = server::Server::Start(store_.get(), options, &second);
  EXPECT_FALSE(s.ok());
}

}  // namespace
}  // namespace adcache
