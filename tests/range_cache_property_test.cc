// Property-based test: RangeCache must never serve a scan result that
// disagrees with the ground-truth database, no matter what interleaving of
// scans, point caches, writes, deletes and capacity changes occurs. The
// cache is exercised against a std::map model of the DB; every full scan
// hit is checked entry-by-entry against the model's answer.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cache/cacheus.h"
#include "cache/lecar.h"
#include "cache/range_cache.h"
#include "util/random.h"

namespace adcache {
namespace {

class Model {
 public:
  explicit Model(uint64_t seed) : rng_(seed) {
    // Seed the "database" with a sparse keyspace so inserts can land
    // between existing keys.
    for (int i = 0; i < 400; i++) {
      db_[KeyOf(i * 5)] = "v" + std::to_string(i);
    }
  }

  std::string KeyOf(int i) const {
    char buf[16];
    snprintf(buf, sizeof(buf), "k%06d", i);
    return buf;
  }

  std::string RandomKey() { return KeyOf(static_cast<int>(rng_.Uniform(2100))); }

  /// Ground-truth scan.
  std::vector<KvPair> Scan(const std::string& start, size_t n) const {
    std::vector<KvPair> out;
    for (auto it = db_.lower_bound(start); it != db_.end() && out.size() < n;
         ++it) {
      out.push_back(KvPair{it->first, it->second});
    }
    return out;
  }

  std::map<std::string, std::string> db_;
  Random rng_;
};

class RangeCachePropertyTest
    : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<EvictionPolicy> MakePolicy() {
    if (GetParam() == "lru") return NewLruPolicy();
    if (GetParam() == "lfu") return NewLfuPolicy();
    if (GetParam() == "lecar") return NewLeCaRPolicy(5);
    return NewCacheusPolicy(5);
  }
};

TEST_P(RangeCachePropertyTest, ScanHitsAlwaysMatchGroundTruth) {
  Model model(101);
  RangeCache cache(20000, MakePolicy());  // small: constant eviction churn
  Random rng(202);
  uint64_t version = 0;

  int hits = 0;
  for (int step = 0; step < 20000; step++) {
    int op = static_cast<int>(rng.Uniform(100));
    if (op < 40) {
      // Scan: check-then-fill.
      std::string start = model.RandomKey();
      size_t n = 1 + rng.Uniform(24);
      std::vector<KvPair> got;
      std::vector<KvPair> truth = model.Scan(start, n);
      if (cache.GetScan(Slice(start), n, &got)) {
        hits++;
        ASSERT_EQ(got.size(), truth.size()) << "step " << step;
        for (size_t i = 0; i < truth.size(); i++) {
          ASSERT_EQ(got[i].key, truth[i].key) << "step " << step;
          ASSERT_EQ(got[i].value, truth[i].value) << "step " << step;
        }
      } else if (!truth.empty()) {
        size_t admit = 1 + rng.Uniform(truth.size());
        cache.PutScan(Slice(start), truth, admit);
      }
    } else if (op < 60) {
      // Point lookup: check-then-fill.
      std::string key = model.RandomKey();
      std::string value;
      auto it = model.db_.find(key);
      if (cache.Get(Slice(key), &value)) {
        ASSERT_NE(it, model.db_.end()) << "phantom key " << key;
        ASSERT_EQ(value, it->second) << "step " << step;
      } else if (it != model.db_.end()) {
        cache.PutPoint(Slice(key), Slice(it->second));
      }
    } else if (op < 85) {
      // Write (insert or update).
      std::string key = model.RandomKey();
      std::string value = "w" + std::to_string(version++);
      model.db_[key] = value;
      cache.InvalidateWrite(Slice(key), Slice(value));
    } else if (op < 95) {
      // Delete.
      std::string key = model.RandomKey();
      model.db_.erase(key);
      cache.InvalidateDelete(Slice(key));
    } else {
      // Capacity churn.
      cache.SetCapacity(5000 + rng.Uniform(40000));
    }
  }
  // The test is only meaningful if the cache actually served scans.
  EXPECT_GT(hits, 50) << "cache never warmed up; property untested";
}

INSTANTIATE_TEST_SUITE_P(Policies, RangeCachePropertyTest,
                         ::testing::Values("lru", "lfu", "lecar", "cacheus"));

// The same property over the sharded facade: stitched cross-shard scans,
// writes/deletes landing in boundary gaps and per-shard capacity churn must
// never make a scan hit disagree with the ground truth. This is the
// regression guard for stale cross-boundary continuation claims (a write
// into a gap must break the next shard's reach-back covers_from).
TEST(ShardedRangeCachePropertyTest, StitchedScanHitsAlwaysMatchGroundTruth) {
  Model model(77);
  std::vector<std::string> boundaries = {model.KeyOf(500), model.KeyOf(1000),
                                         model.KeyOf(1500)};
  ShardedRangeCache cache(20000, boundaries,
                          [](uint64_t) { return NewLruPolicy(); });
  Random rng(404);
  uint64_t version = 0;

  int hits = 0;
  for (int step = 0; step < 20000; step++) {
    int op = static_cast<int>(rng.Uniform(100));
    if (op < 40) {
      std::string start = model.RandomKey();
      size_t n = 1 + rng.Uniform(24);
      std::vector<KvPair> got;
      std::vector<KvPair> truth = model.Scan(start, n);
      if (cache.GetScan(Slice(start), n, &got)) {
        hits++;
        ASSERT_EQ(got.size(), truth.size()) << "step " << step;
        for (size_t i = 0; i < truth.size(); i++) {
          ASSERT_EQ(got[i].key, truth[i].key) << "step " << step;
          ASSERT_EQ(got[i].value, truth[i].value) << "step " << step;
        }
      } else if (!truth.empty()) {
        size_t admit = 1 + rng.Uniform(truth.size());
        cache.PutScan(Slice(start), truth, admit);
      }
    } else if (op < 60) {
      std::string key = model.RandomKey();
      std::string value;
      auto it = model.db_.find(key);
      if (cache.Get(Slice(key), &value)) {
        ASSERT_NE(it, model.db_.end()) << "phantom key " << key;
        ASSERT_EQ(value, it->second) << "step " << step;
      } else if (it != model.db_.end()) {
        cache.PutPoint(Slice(key), Slice(it->second));
      }
    } else if (op < 85) {
      std::string key = model.RandomKey();
      std::string value = "w" + std::to_string(version++);
      model.db_[key] = value;
      cache.InvalidateWrite(Slice(key), Slice(value));
    } else if (op < 95) {
      std::string key = model.RandomKey();
      model.db_.erase(key);
      cache.InvalidateDelete(Slice(key));
    } else if (op < 98) {
      cache.SetCapacity(5000 + rng.Uniform(40000));
    } else {
      // Lease-style repartition: a random uneven split of a random budget.
      std::vector<size_t> caps(cache.num_shards());
      for (size_t i = 0; i < caps.size(); i++) {
        caps[i] = 1000 + rng.Uniform(15000);
      }
      cache.SetShardCapacities(caps);
    }
  }
  EXPECT_GT(hits, 50) << "cache never warmed up; property untested";
}

TEST(RangeCacheUsageInvariantTest, UsageNeverExceedsCapacityAfterOps) {
  RangeCache cache(8192, NewLruPolicy());
  Random rng(5);
  for (int step = 0; step < 5000; step++) {
    std::string key = "key" + std::to_string(rng.Uniform(500));
    if (rng.OneIn(3)) {
      std::vector<KvPair> run;
      for (int j = 0; j < 8; j++) {
        run.push_back(KvPair{"key" + std::to_string(rng.Uniform(500) + j),
                             std::string(32, 'v')});
      }
      std::sort(run.begin(), run.end(),
                [](const KvPair& a, const KvPair& b) { return a.key < b.key; });
      run.erase(std::unique(run.begin(), run.end(),
                            [](const KvPair& a, const KvPair& b) {
                              return a.key == b.key;
                            }),
                run.end());
      cache.PutScan(Slice(run.front().key), run, run.size());
    } else {
      cache.PutPoint(Slice(key), Slice(std::string(64, 'p')));
    }
    ASSERT_LE(cache.GetUsage(), 8192u);
  }
}

}  // namespace
}  // namespace adcache
