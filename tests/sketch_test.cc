#include <gtest/gtest.h>

#include <string>

#include "sketch/count_min_sketch.h"
#include "sketch/doorkeeper.h"

namespace adcache {
namespace {

TEST(CountMinSketchTest, CountsSingleKey) {
  CountMinSketch sketch;
  EXPECT_EQ(sketch.Estimate(Slice("k")), 0u);
  for (int i = 1; i <= 5; i++) {
    sketch.Increment(Slice("k"));
    EXPECT_EQ(sketch.Estimate(Slice("k")), static_cast<uint32_t>(i));
  }
  EXPECT_EQ(sketch.total(), 5u);
}

TEST(CountMinSketchTest, NeverUnderestimatesWithoutDecay) {
  CountMinSketch::Options opts;
  opts.saturation = 255;  // disable decay to test the pure CMS property
  CountMinSketch sketch(opts);
  for (int i = 0; i < 1000; i++) {
    sketch.Increment(Slice("key" + std::to_string(i % 100)));
  }
  for (int i = 0; i < 100; i++) {
    EXPECT_GE(sketch.Estimate(Slice("key" + std::to_string(i))), 10u);
  }
}

TEST(CountMinSketchTest, SaturationTriggersGlobalHalving) {
  CountMinSketch::Options opts;
  opts.saturation = 8;
  CountMinSketch sketch(opts);
  sketch.Increment(Slice("other"));
  for (int i = 0; i < 8; i++) sketch.Increment(Slice("hot"));
  EXPECT_EQ(sketch.decay_count(), 1u);
  // After halving, hot's count is 4 and the bystander's 0.
  EXPECT_EQ(sketch.Estimate(Slice("hot")), 4u);
  EXPECT_EQ(sketch.Estimate(Slice("other")), 0u);
  EXPECT_EQ(sketch.total(), 4u);
}

TEST(CountMinSketchTest, NormalizedFrequencySeparatesHotFromCold) {
  CountMinSketch sketch;
  for (int i = 0; i < 200; i++) {
    sketch.Increment(Slice("hot"));
    if (i % 40 == 0) sketch.Increment(Slice("cold" + std::to_string(i)));
  }
  EXPECT_GT(sketch.NormalizedFrequency(Slice("hot")),
            sketch.NormalizedFrequency(Slice("cold0")));
  EXPECT_EQ(sketch.NormalizedFrequency(Slice("never")), 0.0);
}

TEST(CountMinSketchTest, MemoryUsageMatchesConfiguration) {
  CountMinSketch::Options opts;
  opts.width = 1024;
  opts.depth = 4;
  CountMinSketch sketch(opts);
  EXPECT_EQ(sketch.MemoryUsage(), 4u * 1024u);
}

TEST(DoorkeeperTest, FirstInsertReturnsAbsent) {
  Doorkeeper dk;
  EXPECT_FALSE(dk.InsertIfAbsent(Slice("x")));
  EXPECT_TRUE(dk.InsertIfAbsent(Slice("x")));
  EXPECT_TRUE(dk.Contains(Slice("x")));
  EXPECT_FALSE(dk.Contains(Slice("y")));
}

TEST(DoorkeeperTest, ClearForgetsEverything) {
  Doorkeeper dk;
  dk.InsertIfAbsent(Slice("x"));
  dk.Clear();
  EXPECT_FALSE(dk.Contains(Slice("x")));
  EXPECT_FALSE(dk.InsertIfAbsent(Slice("x")));
}

TEST(DoorkeeperTest, LowFalsePositiveRateAtModestLoad) {
  Doorkeeper dk(1 << 16, 3);
  for (int i = 0; i < 1000; i++) {
    dk.InsertIfAbsent(Slice("member" + std::to_string(i)));
  }
  int false_positives = 0;
  for (int i = 0; i < 1000; i++) {
    if (dk.Contains(Slice("outsider" + std::to_string(i)))) {
      false_positives++;
    }
  }
  EXPECT_LT(false_positives, 50);  // well under 5%
}

}  // namespace
}  // namespace adcache
