#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <string>

#include "util/arena.h"
#include "util/hash.h"
#include "util/histogram.h"
#include "util/random.h"
#include "util/status.h"

namespace adcache {
namespace {

TEST(ArenaTest, SmallAllocationsPacked) {
  Arena arena;
  char* a = arena.Allocate(10);
  char* b = arena.Allocate(10);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  memset(a, 1, 10);
  memset(b, 2, 10);
  EXPECT_EQ(a[9], 1);
  EXPECT_EQ(b[0], 2);
}

TEST(ArenaTest, AlignedAllocationIsAligned) {
  Arena arena;
  arena.Allocate(1);  // misalign the bump pointer
  char* p = arena.AllocateAligned(64);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % sizeof(void*), 0u);
}

TEST(ArenaTest, LargeAllocationsWork) {
  Arena arena;
  char* p = arena.Allocate(100000);
  ASSERT_NE(p, nullptr);
  memset(p, 7, 100000);
  EXPECT_EQ(p[99999], 7);
  EXPECT_GE(arena.MemoryUsage(), 100000u);
}

TEST(ArenaTest, MemoryUsageMonotonic) {
  Arena arena;
  size_t prev = arena.MemoryUsage();
  for (int i = 0; i < 200; i++) {
    arena.Allocate(100);
    EXPECT_GE(arena.MemoryUsage(), prev);
    prev = arena.MemoryUsage();
  }
}

TEST(HashTest, DeterministicAndSeedSensitive) {
  const char* data = "some bytes";
  EXPECT_EQ(Hash(data, 10, 1), Hash(data, 10, 1));
  EXPECT_NE(Hash(data, 10, 1), Hash(data, 10, 2));
  EXPECT_EQ(Hash64(data, 10, 1), Hash64(data, 10, 1));
  EXPECT_NE(Hash64(data, 10, 1), Hash64(data, 10, 2));
}

TEST(HashTest, SpreadsAcrossBuckets) {
  std::set<uint32_t> buckets;
  for (int i = 0; i < 1000; i++) {
    std::string key = "key" + std::to_string(i);
    buckets.insert(HashSlice(Slice(key)) % 64);
  }
  EXPECT_EQ(buckets.size(), 64u);  // all buckets populated
}

TEST(RandomTest, DeterministicForSeed) {
  Random a(99), b(99);
  for (int i = 0; i < 100; i++) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RandomTest, UniformInRange) {
  Random rng(5);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(6);
  double sum = 0;
  for (int i = 0; i < 10000; i++) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.05);
}

TEST(RandomTest, ZeroSeedIsValid) {
  Random rng(0);
  EXPECT_NE(rng.Next64(), rng.Next64());
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; v++) h.Add(v);
  EXPECT_EQ(h.num(), 100u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_NEAR(h.Average(), 50.5, 0.01);
  EXPECT_NEAR(h.Percentile(50), 50, 15);
  EXPECT_GE(h.Percentile(99), h.Percentile(50));
}

TEST(HistogramTest, EmptyHistogramIsZero) {
  Histogram h;
  EXPECT_EQ(h.num(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Average(), 0.0);
  EXPECT_EQ(h.Percentile(99), 0.0);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Add(1);
  a.Add(2);
  b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(a.num(), 3u);
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.max(), 1000u);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.Add(42);
  h.Clear();
  EXPECT_EQ(h.num(), 0u);
}

TEST(HistogramTest, ToStringIsHumanReadable) {
  Histogram h;
  h.Add(10);
  std::string s = h.ToString();
  EXPECT_NE(s.find("count=1"), std::string::npos);
}

TEST(StatusTest, OkByDefaultAndToString) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");
  Status nf = Status::NotFound("missing key");
  EXPECT_TRUE(nf.IsNotFound());
  EXPECT_EQ(nf.ToString(), "NotFound: missing key");
  EXPECT_TRUE(Status::Corruption().IsCorruption());
  EXPECT_TRUE(Status::IOError("disk").IsIOError());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_TRUE(Status::NotSupported().IsNotSupported());
  EXPECT_TRUE(Status::Busy().IsBusy());
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::Corruption("bad block");
  Status t = s;
  EXPECT_TRUE(t.IsCorruption());
  EXPECT_EQ(t.ToString(), "Corruption: bad block");
}

}  // namespace
}  // namespace adcache
