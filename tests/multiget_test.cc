// Functional coverage for the batched point-lookup path: lsm::DB::MultiGet
// (duplicate keys, missing keys, keys spanning memtable + L0 + deeper
// levels, batches crossing block boundaries, snapshots) and the store-level
// KvStore::MultiGet contract for every caching strategy. Run with
// -DADCACHE_SANITIZE=thread or =address for the race/lifetime checks.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cache/cache.h"
#include "core/strategy.h"
#include "lsm/db.h"
#include "util/clock.h"
#include "util/env.h"
#include "util/pinnable_slice.h"

namespace adcache {
namespace {

std::string Key(int i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "key-%06d", i);
  return buf;
}

std::string Value(int i, int version) {
  char buf[96];
  snprintf(buf, sizeof(buf), "val-%06d-v%06d-%060d", i, version, 0);
  return buf;
}

class DbMultiGetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv(&clock_);
    options_.env = env_.get();
    // Small blocks so modest batches cross block (and file) boundaries.
    options_.block_size = 512;
    options_.table_file_size = 8 * 1024;
    options_.memtable_size = 32 * 1024;
    options_.level1_size_base = 32 * 1024;
    // Honors ADCACHE_BLOCK_CACHE_IMPL so check.sh can rerun this suite
    // against the clock backend.
    options_.block_cache = NewBlockCache(DefaultBlockCacheImpl(), 1024 * 1024);
    ASSERT_TRUE(lsm::DB::Open(options_, "/db", &db_).ok());
  }

  /// Issues one MultiGet over `key_strs` and returns statuses + values.
  void MultiGet(const std::vector<std::string>& key_strs,
                const lsm::ReadOptions& ro, std::vector<PinnableSlice>* values,
                std::vector<Status>* statuses) {
    std::vector<Slice> keys(key_strs.size());
    for (size_t i = 0; i < key_strs.size(); i++) keys[i] = Slice(key_strs[i]);
    values->clear();
    statuses->clear();
    values->resize(key_strs.size());
    statuses->resize(key_strs.size());
    db_->MultiGet(ro, keys.size(), keys.data(), values->data(),
                  statuses->data());
  }

  uint64_t BlockReads() const {
    return env_->io_stats()->block_reads.load();
  }

  SimClock clock_;
  std::unique_ptr<Env> env_;
  lsm::Options options_;
  std::unique_ptr<lsm::DB> db_;
};

TEST_F(DbMultiGetTest, MixedPresentAndMissingKeys) {
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(db_->Put(lsm::WriteOptions(), Key(i), Value(i, 0)).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());

  std::vector<std::string> batch = {Key(3),  "absent-a", Key(97), Key(0),
                                    "zzz-9", Key(42),    "aaa"};
  std::vector<PinnableSlice> values;
  std::vector<Status> statuses;
  MultiGet(batch, lsm::ReadOptions(), &values, &statuses);

  EXPECT_EQ(values[0].ToString(), Value(3, 0));
  EXPECT_TRUE(statuses[1].IsNotFound());
  EXPECT_EQ(values[2].ToString(), Value(97, 0));
  EXPECT_EQ(values[3].ToString(), Value(0, 0));
  EXPECT_TRUE(statuses[4].IsNotFound());
  EXPECT_EQ(values[5].ToString(), Value(42, 0));
  EXPECT_TRUE(statuses[6].IsNotFound());
  for (size_t i : {0u, 2u, 3u, 5u}) EXPECT_TRUE(statuses[i].ok());
  // Missing keys leave the output empty.
  EXPECT_TRUE(values[1].empty());
}

TEST_F(DbMultiGetTest, DuplicateKeysInBatch) {
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(db_->Put(lsm::WriteOptions(), Key(i), Value(i, 0)).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());

  // Adjacent and non-adjacent duplicates, plus a duplicated missing key.
  std::vector<std::string> batch = {Key(5), Key(5),   Key(9), "gone",
                                    Key(5), "gone",   Key(9)};
  std::vector<PinnableSlice> values;
  std::vector<Status> statuses;
  MultiGet(batch, lsm::ReadOptions(), &values, &statuses);

  for (size_t i : {0u, 1u, 4u}) {
    EXPECT_TRUE(statuses[i].ok()) << i;
    EXPECT_EQ(values[i].ToString(), Value(5, 0)) << i;
  }
  for (size_t i : {2u, 6u}) {
    EXPECT_TRUE(statuses[i].ok()) << i;
    EXPECT_EQ(values[i].ToString(), Value(9, 0)) << i;
  }
  EXPECT_TRUE(statuses[3].IsNotFound());
  EXPECT_TRUE(statuses[5].IsNotFound());
}

TEST_F(DbMultiGetTest, KeysSpanMemtableL0AndDeeperLevels) {
  // Layer 1: keys 0..59 settle into L1+ via full compaction.
  for (int i = 0; i < 60; i++) {
    ASSERT_TRUE(db_->Put(lsm::WriteOptions(), Key(i), Value(i, 1)).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ASSERT_TRUE(db_->CompactAll().ok());
  // Layer 2: overwrite 20..39 and flush -> L0 shadows the deeper level.
  for (int i = 20; i < 40; i++) {
    ASSERT_TRUE(db_->Put(lsm::WriteOptions(), Key(i), Value(i, 2)).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  // Layer 3: overwrite 30..49 in the memtable -> shadows L0 and L1.
  for (int i = 30; i < 50; i++) {
    ASSERT_TRUE(db_->Put(lsm::WriteOptions(), Key(i), Value(i, 3)).ok());
  }
  // And delete one key from each layer's range.
  ASSERT_TRUE(db_->Delete(lsm::WriteOptions(), Key(10)).ok());
  ASSERT_TRUE(db_->Delete(lsm::WriteOptions(), Key(25)).ok());
  ASSERT_TRUE(db_->Delete(lsm::WriteOptions(), Key(45)).ok());

  std::vector<std::string> batch;
  for (int i = 0; i < 60; i++) batch.push_back(Key(i));
  std::vector<PinnableSlice> values;
  std::vector<Status> statuses;
  MultiGet(batch, lsm::ReadOptions(), &values, &statuses);

  for (int i = 0; i < 60; i++) {
    if (i == 10 || i == 25 || i == 45) {
      EXPECT_TRUE(statuses[static_cast<size_t>(i)].IsNotFound()) << i;
      continue;
    }
    int version = i >= 30 && i < 50 ? 3 : (i >= 20 && i < 40 ? 2 : 1);
    ASSERT_TRUE(statuses[static_cast<size_t>(i)].ok()) << i;
    EXPECT_EQ(values[static_cast<size_t>(i)].ToString(), Value(i, version))
        << i;
  }
}

TEST_F(DbMultiGetTest, BatchesCrossBlockBoundaries) {
  // ~100-byte values in 512-byte blocks: a handful of keys per block, so
  // every non-trivial batch spans several blocks and several files.
  constexpr int kKeys = 200;
  for (int i = 0; i < kKeys; i++) {
    ASSERT_TRUE(db_->Put(lsm::WriteOptions(), Key(i), Value(i, 0)).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());

  for (size_t batch_size : {size_t{2}, size_t{7}, size_t{32}, size_t{200}}) {
    std::vector<std::string> batch;
    for (size_t i = 0; i < batch_size; i++) {
      batch.push_back(Key(static_cast<int>(
          (i * 37) % kKeys)));  // unsorted, scattered across blocks
    }
    std::vector<PinnableSlice> values;
    std::vector<Status> statuses;
    MultiGet(batch, lsm::ReadOptions(), &values, &statuses);
    for (size_t i = 0; i < batch_size; i++) {
      ASSERT_TRUE(statuses[i].ok()) << batch_size << ":" << i;
      EXPECT_EQ(values[i].ToString(),
                Value(static_cast<int>((i * 37) % kKeys), 0));
    }
  }

  // A warm repeat of the full batch is served from the block cache: no
  // additional storage reads.
  std::vector<std::string> all;
  for (int i = 0; i < kKeys; i++) all.push_back(Key(i));
  std::vector<PinnableSlice> values;
  std::vector<Status> statuses;
  MultiGet(all, lsm::ReadOptions(), &values, &statuses);
  uint64_t before = BlockReads();
  MultiGet(all, lsm::ReadOptions(), &values, &statuses);
  EXPECT_EQ(BlockReads(), before);
  for (int i = 0; i < kKeys; i++) {
    EXPECT_EQ(values[static_cast<size_t>(i)].ToString(), Value(i, 0));
  }
}

TEST_F(DbMultiGetTest, VeryLargeBatchesUseTheFallbackSortPath) {
  // Batches beyond 256 keys leave the packed-uint64 sort fast path; this
  // covers the struct-record path plus duplicate handling at that size.
  constexpr int kKeys = 180;
  for (int i = 0; i < kKeys; i++) {
    ASSERT_TRUE(db_->Put(lsm::WriteOptions(), Key(i), Value(i, 0)).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());

  constexpr size_t kBatch = 300;  // every key appears, some twice, plus gaps
  std::vector<std::string> batch;
  for (size_t i = 0; i < kBatch; i++) {
    int k = static_cast<int>((i * 53) % (kKeys + 20));  // some keys absent
    batch.push_back(Key(k));
  }
  std::vector<PinnableSlice> values;
  std::vector<Status> statuses;
  MultiGet(batch, lsm::ReadOptions(), &values, &statuses);
  for (size_t i = 0; i < kBatch; i++) {
    int k = static_cast<int>((i * 53) % (kKeys + 20));
    if (k < kKeys) {
      ASSERT_TRUE(statuses[i].ok()) << i;
      EXPECT_EQ(values[i].ToString(), Value(k, 0)) << i;
    } else {
      EXPECT_TRUE(statuses[i].IsNotFound()) << i;
    }
  }
}

TEST_F(DbMultiGetTest, SnapshotGivesRepeatableBatchReads) {
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(db_->Put(lsm::WriteOptions(), Key(i), Value(i, 1)).ok());
  }
  const lsm::Snapshot* snap = db_->GetSnapshot();
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(db_->Put(lsm::WriteOptions(), Key(i), Value(i, 2)).ok());
  }
  ASSERT_TRUE(db_->Delete(lsm::WriteOptions(), Key(4)).ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());

  std::vector<std::string> batch;
  for (int i = 0; i < 10; i++) batch.push_back(Key(i));
  std::vector<PinnableSlice> values;
  std::vector<Status> statuses;

  lsm::ReadOptions at_snap;
  at_snap.snapshot = snap;
  MultiGet(batch, at_snap, &values, &statuses);
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(statuses[static_cast<size_t>(i)].ok()) << i;
    EXPECT_EQ(values[static_cast<size_t>(i)].ToString(), Value(i, 1)) << i;
  }

  MultiGet(batch, lsm::ReadOptions(), &values, &statuses);
  for (int i = 0; i < 10; i++) {
    if (i == 4) {
      EXPECT_TRUE(statuses[4].IsNotFound());
    } else {
      EXPECT_EQ(values[static_cast<size_t>(i)].ToString(), Value(i, 2)) << i;
    }
  }
  db_->ReleaseSnapshot(snap);
}

TEST_F(DbMultiGetTest, EmptyBatchIsANoOp) {
  db_->MultiGet(lsm::ReadOptions(), 0, nullptr, nullptr, nullptr);
}

TEST_F(DbMultiGetTest, PinnedBatchResultsOutliveChurn) {
  for (int i = 0; i < 30; i++) {
    ASSERT_TRUE(db_->Put(lsm::WriteOptions(), Key(i), Value(i, 1)).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());

  std::vector<std::string> batch;
  for (int i = 0; i < 30; i++) batch.push_back(Key(i));
  std::vector<PinnableSlice> values;
  std::vector<Status> statuses;
  MultiGet(batch, lsm::ReadOptions(), &values, &statuses);

  // Retire the state the batch read from while the pins are live.
  for (int i = 0; i < 30; i++) {
    ASSERT_TRUE(db_->Put(lsm::WriteOptions(), Key(i), Value(i, 2)).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ASSERT_TRUE(db_->CompactAll().ok());

  for (int i = 0; i < 30; i++) {
    ASSERT_TRUE(statuses[static_cast<size_t>(i)].ok()) << i;
    EXPECT_EQ(values[static_cast<size_t>(i)].ToString(), Value(i, 1)) << i;
  }
}

// ---------------------------------------------------------------------------
// Store-level contract: every caching strategy serves the same batched
// results as a Get loop, including through its cache layers.
// ---------------------------------------------------------------------------

class StoreMultiGetTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    env_ = NewMemEnv(&clock_);
    config_.lsm.env = env_.get();
    config_.lsm.block_size = 512;
    config_.lsm.table_file_size = 16 * 1024;
    config_.lsm.memtable_size = 32 * 1024;
    config_.lsm.level1_size_base = 64 * 1024;
    config_.cache_budget = 128 * 1024;
    config_.dbname = "/db_" + GetParam();
    config_.adcache.controller.agent.hidden_dim = 32;
    Status s;
    store_ = core::CreateStore(GetParam(), config_, &s);
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  SimClock clock_;
  std::unique_ptr<Env> env_;
  core::StoreConfig config_;
  std::unique_ptr<core::KvStore> store_;
};

TEST_P(StoreMultiGetTest, BatchedReadsMatchGetLoop) {
  constexpr int kKeys = 120;
  for (int i = 0; i < kKeys; i++) {
    ASSERT_TRUE(store_->Put(Slice(Key(i)), Slice(Value(i, 0))).ok());
  }
  ASSERT_TRUE(store_->db()->FlushMemTable().ok());
  ASSERT_TRUE(store_->Delete(Slice(Key(60))).ok());

  std::vector<std::string> key_strs;
  for (int i = 0; i < kKeys; i += 3) key_strs.push_back(Key(i));
  key_strs.push_back("missing-key");
  key_strs.push_back(Key(0));  // duplicate
  std::vector<Slice> keys(key_strs.size());
  for (size_t i = 0; i < key_strs.size(); i++) keys[i] = Slice(key_strs[i]);

  // Two rounds: the second is (partially) served by the store's caches.
  for (int round = 0; round < 2; round++) {
    std::vector<PinnableSlice> values(keys.size());
    std::vector<Status> statuses(keys.size());
    store_->MultiGet(keys.size(), keys.data(), values.data(),
                     statuses.data());
    for (size_t i = 0; i < keys.size(); i++) {
      std::string expect;
      Status get_status = store_->Get(keys[i], &expect);
      EXPECT_EQ(statuses[i].ok(), get_status.ok()) << round << ":" << i;
      if (get_status.ok()) {
        EXPECT_EQ(values[i].ToString(), expect) << round << ":" << i;
      }
    }
  }

  // Writes through the store invalidate whatever the batch populated.
  ASSERT_TRUE(store_->Put(Slice(Key(3)), Slice("fresh")).ok());
  std::vector<PinnableSlice> values(2);
  std::vector<Status> statuses(2);
  std::vector<Slice> two = {Slice(key_strs[1]), Slice(key_strs[0])};
  store_->MultiGet(two.size(), two.data(), values.data(), statuses.data());
  ASSERT_TRUE(statuses[0].ok());
  EXPECT_EQ(values[0].ToString(), "fresh");
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StoreMultiGetTest,
                         ::testing::Values("block", "kv", "range", "adcache"),
                         [](const ::testing::TestParamInfo<std::string>& in) {
                           return in.param;
                         });

}  // namespace
}  // namespace adcache
