#include "core/adcache_store.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/dynamic_cache.h"
#include "core/strategy.h"
#include "util/clock.h"
#include "util/env.h"

namespace adcache::core {
namespace {

class AdCacheStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv(&clock_);
    lsm_options_.env = env_.get();
    lsm_options_.block_size = 512;
    lsm_options_.table_file_size = 16 * 1024;
    lsm_options_.memtable_size = 32 * 1024;
    lsm_options_.level1_size_base = 64 * 1024;

    AdCacheOptions options;
    options.cache_budget = 256 * 1024;
    options.controller.window_size = 100;
    options.controller.agent.hidden_dim = 32;  // fast tests
    ASSERT_TRUE(
        AdCacheStore::Open(options, lsm_options_, "/adc", &store_).ok());
  }

  static std::string Key(int i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%06d", i);
    return buf;
  }

  void Fill(int n) {
    for (int i = 0; i < n; i++) {
      ASSERT_TRUE(store_->Put(Slice(Key(i)), Slice("value" +
                                                   std::to_string(i)))
                      .ok());
    }
    ASSERT_TRUE(store_->db()->FlushMemTable().ok());
  }

  SimClock clock_;
  std::unique_ptr<Env> env_;
  lsm::Options lsm_options_;
  std::unique_ptr<AdCacheStore> store_;
};

TEST_F(AdCacheStoreTest, GetRoundTrip) {
  Fill(100);
  std::string value;
  ASSERT_TRUE(store_->Get(Slice(Key(7)), &value).ok());
  EXPECT_EQ(value, "value7");
  EXPECT_TRUE(store_->Get(Slice("missing"), &value).IsNotFound());
}

TEST_F(AdCacheStoreTest, RepeatedGetServedFromRangeCache) {
  Fill(100);
  std::string value;
  // Two misses feed the frequency sketch (doorkeeper absorbs the first);
  // the second admits, the third must be a range-cache hit.
  ASSERT_TRUE(store_->Get(Slice(Key(5)), &value).ok());
  ASSERT_TRUE(store_->Get(Slice(Key(5)), &value).ok());
  uint64_t hits_before = store_->GetCacheStats().range_hits;
  ASSERT_TRUE(store_->Get(Slice(Key(5)), &value).ok());
  EXPECT_EQ(value, "value5");
  EXPECT_EQ(store_->GetCacheStats().range_hits, hits_before + 1);
}

TEST_F(AdCacheStoreTest, ScanReturnsOrderedResults) {
  Fill(100);
  std::vector<KvPair> results;
  ASSERT_TRUE(store_->Scan(Slice(Key(10)), 16, &results).ok());
  ASSERT_EQ(results.size(), 16u);
  for (int i = 0; i < 16; i++) {
    EXPECT_EQ(results[static_cast<size_t>(i)].key, Key(10 + i));
  }
}

TEST_F(AdCacheStoreTest, RepeatedScanEventuallyServedFromCache) {
  Fill(200);
  // Fill closes tuning windows, so the controller may have moved the full-
  // admission cutoff `a` off its default by now (it hovers near 16). A
  // 12-entry scan stays comfortably under it and is admitted whole, making
  // the repeat a cache hit regardless of the agent's exact trajectory.
  std::vector<KvPair> results;
  ASSERT_TRUE(store_->Scan(Slice(Key(20)), 12, &results).ok());
  uint64_t hits_before = store_->GetCacheStats().range_hits;
  ASSERT_TRUE(store_->Scan(Slice(Key(20)), 12, &results).ok());
  EXPECT_EQ(results.size(), 12u);
  EXPECT_GT(store_->GetCacheStats().range_hits, hits_before);
}

TEST_F(AdCacheStoreTest, LongScanOnlyPartiallyAdmitted) {
  Fill(200);
  store_->scan_admission()->Set(16.0, 0.5);
  std::vector<KvPair> results;
  ASSERT_TRUE(store_->Scan(Slice(Key(0)), 64, &results).ok());
  EXPECT_EQ(results.size(), 64u);
  // 0.5 * (64 - 16) = 24 entries admitted, so an immediate repeat of the
  // full 64 cannot be served from cache.
  uint64_t hits_before = store_->GetCacheStats().range_hits;
  ASSERT_TRUE(store_->Scan(Slice(Key(0)), 64, &results).ok());
  EXPECT_EQ(store_->GetCacheStats().range_hits, hits_before);
}

TEST_F(AdCacheStoreTest, WriteInvalidatesStaleCachedValue) {
  Fill(100);
  std::string value;
  ASSERT_TRUE(store_->Get(Slice(Key(3)), &value).ok());
  ASSERT_TRUE(store_->Get(Slice(Key(3)), &value).ok());  // now cached
  ASSERT_TRUE(store_->Put(Slice(Key(3)), Slice("updated")).ok());
  ASSERT_TRUE(store_->Get(Slice(Key(3)), &value).ok());
  EXPECT_EQ(value, "updated");
}

TEST_F(AdCacheStoreTest, DeleteInvalidatesCachedValue) {
  Fill(100);
  std::string value;
  ASSERT_TRUE(store_->Get(Slice(Key(4)), &value).ok());
  ASSERT_TRUE(store_->Get(Slice(Key(4)), &value).ok());
  ASSERT_TRUE(store_->Delete(Slice(Key(4))).ok());
  EXPECT_TRUE(store_->Get(Slice(Key(4)), &value).IsNotFound());
}

TEST_F(AdCacheStoreTest, ScanAfterInsertSeesNewKey) {
  Fill(100);
  std::vector<KvPair> results;
  ASSERT_TRUE(store_->Scan(Slice(Key(10)), 4, &results).ok());
  // Insert a key inside the cached range; the next scan must include it.
  ASSERT_TRUE(store_->Put(Slice(Key(10) + "a"), Slice("wedge")).ok());
  ASSERT_TRUE(store_->Scan(Slice(Key(10)), 4, &results).ok());
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].key, Key(10));
  EXPECT_EQ(results[1].key, Key(10) + "a");
  EXPECT_EQ(results[1].value, "wedge");
}

TEST_F(AdCacheStoreTest, WindowTuningRunsEveryWindowSizeOps) {
  Fill(50);
  std::string value;
  EXPECT_EQ(store_->controller()->windows_processed(), 0u);
  for (int i = 0; i < 250; i++) {
    store_->Get(Slice(Key(i % 50)), &value);
  }
  // Fill(50) contributed 50 writes; 300 total ops / window 100 => >= 2.
  EXPECT_GE(store_->controller()->windows_processed(), 2u);
}

TEST_F(AdCacheStoreTest, TuningMovesCacheBoundaryWithinBudget) {
  Fill(100);
  std::string value;
  std::vector<KvPair> results;
  for (int i = 0; i < 1000; i++) {
    if (i % 3 == 0) {
      store_->Scan(Slice(Key(i % 80)), 16, &results);
    } else {
      store_->Get(Slice(Key(i % 80)), &value);
    }
  }
  CacheStatsSnapshot snap = store_->GetCacheStats();
  EXPECT_GE(snap.range_ratio, 0.0);
  EXPECT_LE(snap.range_ratio, 1.0);
  EXPECT_LE(snap.cache_usage,
            snap.cache_capacity + lsm_options_.block_size * 2);
}

TEST_F(AdCacheStoreTest, ForceWindowEndUpdatesController) {
  Fill(20);
  std::string value;
  store_->Get(Slice(Key(1)), &value);
  uint64_t before = store_->controller()->windows_processed();
  store_->ForceWindowEnd();
  EXPECT_EQ(store_->controller()->windows_processed(), before + 1);
}

TEST_F(AdCacheStoreTest, StatsSnapshotExposesControlState) {
  Fill(10);
  CacheStatsSnapshot snap = store_->GetCacheStats();
  EXPECT_EQ(snap.cache_capacity, 256u * 1024);
  EXPECT_GE(snap.scan_a, 0.0);
  EXPECT_LE(snap.scan_b, 1.0);
}

TEST(AdCacheSecondaryTest, SecondaryTierAbsorbsDramEvictions) {
  SimClock clock;
  std::unique_ptr<Env> env = NewMemEnv(&clock);
  lsm::Options lsm_options;
  lsm_options.env = env.get();
  lsm_options.block_size = 512;
  lsm_options.table_file_size = 16 * 1024;
  lsm_options.memtable_size = 32 * 1024;
  lsm_options.level1_size_base = 64 * 1024;

  AdCacheOptions options;
  options.cache_budget = 8 * 1024;        // DRAM holds ~16 blocks
  options.initial_range_ratio = 0.0;      // all point traffic through blocks
  options.controller.window_size = 1 << 20;  // no tuning mid-test
  options.controller.agent.hidden_dim = 32;
  options.secondary_cache_budget = 256 * 1024;

  std::unique_ptr<AdCacheStore> store;
  ASSERT_TRUE(
      AdCacheStore::Open(options, lsm_options, "/adc-sec", &store).ok());

  auto key = [](int i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%06d", i);
    return std::string(buf);
  };
  const std::string filler(100, 'v');
  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(store->Put(Slice(key(i)), Slice(filler)).ok());
  }
  ASSERT_TRUE(store->db()->FlushMemTable().ok());

  // The block working set (~200KB) dwarfs DRAM: evictions demote blocks to
  // the flash tier and the second pass finds them there instead of on disk.
  std::string value;
  for (int round = 0; round < 2; round++) {
    for (int i = 0; i < 1000; i++) {
      ASSERT_TRUE(store->Get(Slice(key(i)), &value).ok()) << key(i);
    }
  }
  CacheStatsSnapshot snap = store->GetCacheStats();
  EXPECT_EQ(snap.secondary_capacity, 256u * 1024);
  EXPECT_GT(snap.secondary_demotions, 0u);
  EXPECT_GT(snap.secondary_hits, 0u);
  EXPECT_GT(snap.secondary_usage, 0u);
}

TEST(DynamicCacheTest, RatioSplitsBudget) {
  DynamicCacheComponent cache(1000, 0.3, NewLruPolicy());
  EXPECT_EQ(cache.block_cache()->GetCapacity(), 700u);
  EXPECT_EQ(cache.range_cache()->GetCapacity(), 300u);
  cache.SetRangeRatio(0.9);
  EXPECT_EQ(cache.block_cache()->GetCapacity(), 100u);
  EXPECT_EQ(cache.range_cache()->GetCapacity(), 900u);
}

TEST(DynamicCacheTest, RatioClamped) {
  DynamicCacheComponent cache(1000, 0.5, NewLruPolicy());
  cache.SetRangeRatio(-1.0);
  EXPECT_EQ(cache.range_ratio(), 0.0);
  cache.SetRangeRatio(2.0);
  EXPECT_EQ(cache.range_ratio(), 1.0);
}

TEST(DynamicCacheTest, ShrinkEvictsExcess) {
  DynamicCacheComponent cache(10000, 1.0, NewLruPolicy());
  std::vector<KvPair> run;
  for (int i = 0; i < 50; i++) {
    run.push_back(KvPair{"key" + std::to_string(100 + i), "v"});
  }
  cache.range_cache()->PutScan(Slice(run.front().key), run, run.size());
  EXPECT_GT(cache.RangeUsage(), 0u);
  cache.SetRangeRatio(0.0);
  EXPECT_EQ(cache.RangeUsage(), 0u);
}

}  // namespace
}  // namespace adcache::core
