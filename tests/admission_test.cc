#include "core/admission.h"

#include <gtest/gtest.h>

#include <string>

namespace adcache::core {
namespace {

TEST(PointAdmissionTest, DoorkeeperBlocksOneOffKeys) {
  PointAdmissionController ctl;
  ctl.SetThreshold(0.0);
  // First sighting is absorbed by the doorkeeper.
  EXPECT_FALSE(ctl.RecordMissAndCheckAdmit(Slice("once")));
  // Second sighting passes with threshold 0.
  EXPECT_TRUE(ctl.RecordMissAndCheckAdmit(Slice("once")));
}

TEST(PointAdmissionTest, WithoutDoorkeeperThresholdZeroAdmitsAll) {
  PointAdmissionController::Options opts;
  opts.use_doorkeeper = false;
  PointAdmissionController ctl(opts);
  ctl.SetThreshold(0.0);
  EXPECT_TRUE(ctl.RecordMissAndCheckAdmit(Slice("anything")));
}

TEST(PointAdmissionTest, HighThresholdRejectsColdAdmitsHot) {
  PointAdmissionController::Options opts;
  opts.use_doorkeeper = false;
  PointAdmissionController ctl(opts);
  // Deterministic stream below the saturation point: hot seen 3x, 20 cold
  // keys once each -> total 23, hot score ~0.13, cold score ~0.04.
  for (int i = 0; i < 3; i++) ctl.RecordMissAndCheckAdmit(Slice("hot"));
  for (int i = 0; i < 20; i++) {
    ctl.RecordMissAndCheckAdmit(Slice("cold" + std::to_string(i)));
  }
  ctl.SetThreshold(0.1);
  EXPECT_TRUE(ctl.RecordMissAndCheckAdmit(Slice("hot")));
  EXPECT_FALSE(ctl.RecordMissAndCheckAdmit(Slice("coldNew")));
}

TEST(PointAdmissionTest, ThresholdAboveOneRejectsEverything) {
  // Normalised scores cannot exceed 1 (a lone key's score IS 1, so a
  // threshold of exactly 1 still admits a total monopolist).
  PointAdmissionController::Options opts;
  opts.use_doorkeeper = false;
  PointAdmissionController ctl(opts);
  ctl.SetThreshold(1.01);
  for (int i = 0; i < 20; i++) {
    EXPECT_FALSE(ctl.RecordMissAndCheckAdmit(Slice("k")));
  }
}

TEST(PointAdmissionTest, ActionMappingIsMonotoneAndFineNearZero) {
  EXPECT_DOUBLE_EQ(PointAdmissionController::ActionToThreshold(0.0), 0.0);
  double prev = -1;
  for (double a = 0; a <= 1.0; a += 0.1) {
    double t = PointAdmissionController::ActionToThreshold(a);
    EXPECT_GT(t, prev);
    prev = t;
  }
  EXPECT_LE(PointAdmissionController::ActionToThreshold(1.0), 0.51);
}

TEST(PointAdmissionTest, DecayKeepsRespondingToShiftingKeys) {
  PointAdmissionController::Options opts;
  opts.use_doorkeeper = false;
  opts.saturation = 8;
  PointAdmissionController ctl(opts);
  for (int i = 0; i < 100; i++) ctl.RecordMissAndCheckAdmit(Slice("old_hot"));
  EXPECT_GT(ctl.decay_count(), 0u);
  // A new hot key must be admittable after the shift.
  ctl.SetThreshold(0.002);
  bool admitted = false;
  for (int i = 0; i < 50; i++) {
    if (ctl.RecordMissAndCheckAdmit(Slice("new_hot"))) admitted = true;
  }
  EXPECT_TRUE(admitted);
}

TEST(ScanAdmissionTest, ShortScansFullyAdmitted) {
  ScanAdmissionController ctl;
  ctl.Set(16.0, 0.5);
  EXPECT_EQ(ctl.AdmitCount(10), 10u);
  EXPECT_EQ(ctl.AdmitCount(16), 16u);
}

TEST(ScanAdmissionTest, LongScansPartiallyAdmittedPerFormula) {
  ScanAdmissionController ctl;
  ctl.Set(16.0, 0.5);
  // b * (l - a) = 0.5 * (64 - 16) = 24.
  EXPECT_EQ(ctl.AdmitCount(64), 24u);
  ctl.Set(16.0, 0.25);
  EXPECT_EQ(ctl.AdmitCount(64), 12u);
}

TEST(ScanAdmissionTest, BZeroAdmitsNothingBeyondA) {
  ScanAdmissionController ctl;
  ctl.Set(16.0, 0.0);
  EXPECT_EQ(ctl.AdmitCount(64), 0u);
  EXPECT_EQ(ctl.AdmitCount(16), 16u);
}

TEST(ScanAdmissionTest, AdmitNeverExceedsScanLength) {
  ScanAdmissionController ctl;
  ctl.Set(0.0, 1.0);
  EXPECT_EQ(ctl.AdmitCount(64), 64u);
}

TEST(ScanAdmissionTest, ActionMappingScalesToMaxA) {
  ScanAdmissionController ctl(64.0);
  ctl.SetFromActions(0.25, 0.75);
  EXPECT_DOUBLE_EQ(ctl.a(), 16.0);
  EXPECT_DOUBLE_EQ(ctl.b(), 0.75);
}

}  // namespace
}  // namespace adcache::core
