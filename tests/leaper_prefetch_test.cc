#include <gtest/gtest.h>

#include <memory>

#include "cache/cache.h"
#include "lsm/db.h"
#include "util/clock.h"
#include "util/env.h"

namespace adcache::lsm {
namespace {

class LeaperPrefetchTest : public ::testing::Test {
 protected:
  void Open(bool leaper) {
    env_ = NewMemEnv(&clock_);
    options_ = Options();
    options_.env = env_.get();
    options_.block_size = 512;
    options_.table_file_size = 8 * 1024;
    options_.memtable_size = 8 * 1024;
    options_.level1_size_base = 16 * 1024;
    options_.leaper_prefetch = leaper;
    options_.block_cache = NewLRUCache(1 << 20, 0);
    ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok());
  }

  static std::string Key(int i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%06d", i);
    return buf;
  }

  // Warm the cache by reading a working set, then force compaction churn.
  void WarmThenChurn() {
    for (int i = 0; i < 400; i++) {
      ASSERT_TRUE(db_->Put(WriteOptions(), Slice(Key(i)),
                           Slice(std::string(64, 'v'))).ok());
    }
    ASSERT_TRUE(db_->FlushMemTable().ok());
    std::string value;
    for (int round = 0; round < 3; round++) {
      for (int i = 0; i < 50; i++) {
        db_->Get(ReadOptions(), Slice(Key(i)), &value);
      }
    }
    // Overwrite to force flushes + compactions that rewrite the hot files.
    for (int i = 0; i < 2000; i++) {
      ASSERT_TRUE(db_->Put(WriteOptions(), Slice(Key(i % 400)),
                           Slice(std::string(64, 'w'))).ok());
    }
    ASSERT_TRUE(db_->FlushMemTable().ok());
    ASSERT_TRUE(db_->CompactAll().ok());
  }

  SimClock clock_;
  std::unique_ptr<Env> env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(LeaperPrefetchTest, DisabledByDefaultDoesNothing) {
  Open(/*leaper=*/false);
  WarmThenChurn();
  EXPECT_EQ(db_->GetLsmShape().prefetched_blocks, 0u);
}

TEST_F(LeaperPrefetchTest, PrefetchesHotRangesAfterCompaction) {
  Open(/*leaper=*/true);
  WarmThenChurn();
  EXPECT_GT(db_->GetLsmShape().prefetched_blocks, 0u);
}

TEST_F(LeaperPrefetchTest, PrefetchReducesPostCompactionMisses) {
  // With Leaper, reads of the hot set right after compaction should hit
  // the (re-warmed) cache more than without it.
  uint64_t reads_with, reads_without;
  {
    Open(/*leaper=*/true);
    WarmThenChurn();
    std::string value;
    uint64_t before = env_->io_stats()->block_reads.load();
    for (int i = 0; i < 50; i++) {
      db_->Get(ReadOptions(), Slice(Key(i)), &value);
    }
    reads_with = env_->io_stats()->block_reads.load() - before;
  }
  {
    Open(/*leaper=*/false);
    WarmThenChurn();
    std::string value;
    uint64_t before = env_->io_stats()->block_reads.load();
    for (int i = 0; i < 50; i++) {
      db_->Get(ReadOptions(), Slice(Key(i)), &value);
    }
    reads_without = env_->io_stats()->block_reads.load() - before;
  }
  EXPECT_LE(reads_with, reads_without);
}

TEST_F(LeaperPrefetchTest, PrefetchDoesNotCountAsSstRead) {
  Open(/*leaper=*/true);
  for (int i = 0; i < 400; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Slice(Key(i)),
                         Slice(std::string(64, 'v'))).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  std::string value;
  for (int i = 0; i < 50; i++) db_->Get(ReadOptions(), Slice(Key(i)), &value);
  uint64_t reads_before_compaction = env_->io_stats()->block_reads.load();
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Slice(Key(i % 400)),
                         Slice(std::string(64, 'w'))).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  ASSERT_TRUE(db_->CompactAll().ok());
  // Compaction + prefetch I/O is background: the metric must not move.
  EXPECT_EQ(env_->io_stats()->block_reads.load(), reads_before_compaction);
}

}  // namespace
}  // namespace adcache::lsm
