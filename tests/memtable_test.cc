#include "lsm/memtable.h"

#include <gtest/gtest.h>

#include <memory>

namespace adcache::lsm {
namespace {

class MemTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mem_ = new MemTable();
    mem_->Ref();
  }
  void TearDown() override { mem_->Unref(); }

  MemTable* mem_;
};

TEST_F(MemTableTest, AddThenGet) {
  mem_->Add(1, kTypeValue, Slice("key"), Slice("value"));
  std::string value;
  bool deleted = false;
  ASSERT_TRUE(mem_->Get(Slice("key"), 10, &value, &deleted));
  EXPECT_FALSE(deleted);
  EXPECT_EQ(value, "value");
}

TEST_F(MemTableTest, MissingKeyNotFound) {
  mem_->Add(1, kTypeValue, Slice("key"), Slice("value"));
  std::string value;
  bool deleted = false;
  EXPECT_FALSE(mem_->Get(Slice("other"), 10, &value, &deleted));
  // Prefix of an existing key must not match.
  EXPECT_FALSE(mem_->Get(Slice("ke"), 10, &value, &deleted));
  // Extension of an existing key must not match.
  EXPECT_FALSE(mem_->Get(Slice("keyy"), 10, &value, &deleted));
}

TEST_F(MemTableTest, NewestVisibleVersionWins) {
  mem_->Add(1, kTypeValue, Slice("k"), Slice("v1"));
  mem_->Add(5, kTypeValue, Slice("k"), Slice("v5"));
  mem_->Add(9, kTypeValue, Slice("k"), Slice("v9"));
  std::string value;
  bool deleted = false;
  ASSERT_TRUE(mem_->Get(Slice("k"), 100, &value, &deleted));
  EXPECT_EQ(value, "v9");
  // A snapshot between versions sees the right one.
  ASSERT_TRUE(mem_->Get(Slice("k"), 6, &value, &deleted));
  EXPECT_EQ(value, "v5");
  ASSERT_TRUE(mem_->Get(Slice("k"), 1, &value, &deleted));
  EXPECT_EQ(value, "v1");
  // Before the first version: nothing visible.
  EXPECT_FALSE(mem_->Get(Slice("k"), 0, &value, &deleted));
}

TEST_F(MemTableTest, TombstoneReported) {
  mem_->Add(1, kTypeValue, Slice("k"), Slice("v"));
  mem_->Add(2, kTypeDeletion, Slice("k"), Slice(""));
  std::string value;
  bool deleted = false;
  ASSERT_TRUE(mem_->Get(Slice("k"), 10, &value, &deleted));
  EXPECT_TRUE(deleted);
  // The old version is still visible at the old snapshot.
  ASSERT_TRUE(mem_->Get(Slice("k"), 1, &value, &deleted));
  EXPECT_FALSE(deleted);
  EXPECT_EQ(value, "v");
}

TEST_F(MemTableTest, IteratorYieldsInternalKeyOrder) {
  mem_->Add(3, kTypeValue, Slice("b"), Slice("vb"));
  mem_->Add(1, kTypeValue, Slice("a"), Slice("va"));
  mem_->Add(2, kTypeValue, Slice("c"), Slice("vc"));
  std::unique_ptr<Iterator> iter(mem_->NewIterator());
  std::vector<std::string> user_keys;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    user_keys.push_back(ExtractUserKey(iter->key()).ToString());
  }
  EXPECT_EQ(user_keys, (std::vector<std::string>{"a", "b", "c"}));
}

TEST_F(MemTableTest, IteratorSeek) {
  for (int i = 0; i < 100; i++) {
    char key[8];
    snprintf(key, sizeof(key), "k%03d", i);
    mem_->Add(static_cast<SequenceNumber>(i + 1), kTypeValue, Slice(key),
              Slice("v"));
  }
  std::unique_ptr<Iterator> iter(mem_->NewIterator());
  iter->Seek(Slice(MakeLookupKey("k050", kMaxSequenceNumber)));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(ExtractUserKey(iter->key()).ToString(), "k050");
}

TEST_F(MemTableTest, IteratorPinsMemtable) {
  mem_->Add(1, kTypeValue, Slice("k"), Slice("v"));
  Iterator* iter = mem_->NewIterator();
  // Drop our reference; the iterator's reference must keep it alive.
  mem_->Ref();  // balance TearDown
  mem_->Unref();
  iter->SeekToFirst();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(ExtractUserKey(iter->key()).ToString(), "k");
  delete iter;
}

TEST_F(MemTableTest, MemoryUsageGrows) {
  size_t before = mem_->ApproximateMemoryUsage();
  for (int i = 0; i < 100; i++) {
    mem_->Add(static_cast<SequenceNumber>(i), kTypeValue,
              Slice("key" + std::to_string(i)), Slice(std::string(100, 'v')));
  }
  EXPECT_GT(mem_->ApproximateMemoryUsage(), before + 100 * 100);
  EXPECT_EQ(mem_->num_entries(), 100u);
}

TEST(InternalKeyTest, ComparatorOrdersUserKeyAscSeqDesc) {
  InternalKeyComparator cmp;
  std::string a1 = MakeInternalKey("a", 1, kTypeValue);
  std::string a9 = MakeInternalKey("a", 9, kTypeValue);
  std::string b1 = MakeInternalKey("b", 1, kTypeValue);
  EXPECT_LT(cmp.Compare(Slice(a9), Slice(a1)), 0);  // higher seq first
  EXPECT_LT(cmp.Compare(Slice(a1), Slice(b1)), 0);  // user key asc
  EXPECT_EQ(cmp.Compare(Slice(a1), Slice(a1)), 0);
}

TEST(InternalKeyTest, ParseRoundTrip) {
  std::string ik = MakeInternalKey("user_key", 12345, kTypeDeletion);
  ParsedInternalKey parsed;
  ASSERT_TRUE(ParseInternalKey(Slice(ik), &parsed));
  EXPECT_EQ(parsed.user_key.ToString(), "user_key");
  EXPECT_EQ(parsed.sequence, 12345u);
  EXPECT_EQ(parsed.type, kTypeDeletion);
}

TEST(InternalKeyTest, MalformedRejected) {
  ParsedInternalKey parsed;
  EXPECT_FALSE(ParseInternalKey(Slice("short"), &parsed));
  std::string bad_type = MakeInternalKey("k", 1, kTypeValue);
  bad_type[bad_type.size() - 8] = 0x7f;  // invalid type byte
  EXPECT_FALSE(ParseInternalKey(Slice(bad_type), &parsed));
}

}  // namespace
}  // namespace adcache::lsm
