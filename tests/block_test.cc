#include "lsm/block.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "lsm/block_builder.h"
#include "lsm/dbformat.h"
#include "util/random.h"

namespace adcache::lsm {
namespace {

std::string IKey(const std::string& user_key, SequenceNumber seq = 1,
                 ValueType t = kTypeValue) {
  return MakeInternalKey(user_key, seq, t);
}

class BlockTest : public ::testing::TestWithParam<int> {
 protected:
  // Builds a block with `n` keys k000000..k(n-1) using the restart interval
  // from the test parameter.
  std::unique_ptr<Block> BuildBlock(int n) {
    BlockBuilder builder(GetParam());
    for (int i = 0; i < n; i++) {
      char key[16], value[16];
      snprintf(key, sizeof(key), "k%06d", i);
      snprintf(value, sizeof(value), "v%d", i);
      builder.Add(Slice(IKey(key)), Slice(value));
    }
    return std::make_unique<Block>(builder.Finish().ToString());
  }

  InternalKeyComparator cmp_;
};

TEST_P(BlockTest, IterateForward) {
  auto block = BuildBlock(100);
  std::unique_ptr<Iterator> it(block->NewIterator(&cmp_));
  int count = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    char expected[16];
    snprintf(expected, sizeof(expected), "k%06d", count);
    EXPECT_EQ(ExtractUserKey(it->key()).ToString(), expected);
    count++;
  }
  EXPECT_EQ(count, 100);
  EXPECT_TRUE(it->status().ok());
}

TEST_P(BlockTest, SeekFindsExactAndSuccessor) {
  auto block = BuildBlock(50);
  std::unique_ptr<Iterator> it(block->NewIterator(&cmp_));

  it->Seek(Slice(IKey("k000017", kMaxSequenceNumber)));
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(ExtractUserKey(it->key()).ToString(), "k000017");

  // A key between k000017 and k000018 lands on k000018.
  it->Seek(Slice(IKey("k0000170", kMaxSequenceNumber)));
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(ExtractUserKey(it->key()).ToString(), "k000018");

  // Before the first key.
  it->Seek(Slice(IKey("a", kMaxSequenceNumber)));
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(ExtractUserKey(it->key()).ToString(), "k000000");

  // Past the last key.
  it->Seek(Slice(IKey("z", kMaxSequenceNumber)));
  EXPECT_FALSE(it->Valid());
}

TEST_P(BlockTest, SeekToLastAndPrev) {
  auto block = BuildBlock(37);
  std::unique_ptr<Iterator> it(block->NewIterator(&cmp_));
  it->SeekToLast();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(ExtractUserKey(it->key()).ToString(), "k000036");
  int count = 36;
  while (it->Valid()) {
    char expected[16];
    snprintf(expected, sizeof(expected), "k%06d", count);
    EXPECT_EQ(ExtractUserKey(it->key()).ToString(), expected);
    it->Prev();
    count--;
  }
  EXPECT_EQ(count, -1);
}

TEST_P(BlockTest, ValuesRoundTrip) {
  auto block = BuildBlock(64);
  std::unique_ptr<Iterator> it(block->NewIterator(&cmp_));
  it->Seek(Slice(IKey("k000042", kMaxSequenceNumber)));
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->value().ToString(), "v42");
}

TEST_P(BlockTest, EmptyBlock) {
  BlockBuilder builder(GetParam());
  Block block(builder.Finish().ToString());
  std::unique_ptr<Iterator> it(block.NewIterator(&cmp_));
  it->SeekToFirst();
  EXPECT_FALSE(it->Valid());
  it->Seek(Slice(IKey("a")));
  EXPECT_FALSE(it->Valid());
}

INSTANTIATE_TEST_SUITE_P(RestartIntervals, BlockTest,
                         ::testing::Values(1, 2, 16, 128));

TEST(BlockBuilderTest, SizeEstimateGrows) {
  BlockBuilder builder(16);
  size_t prev = builder.CurrentSizeEstimate();
  for (int i = 0; i < 20; i++) {
    char key[16];
    snprintf(key, sizeof(key), "k%06d", i);
    builder.Add(Slice(IKey(key)), Slice("value"));
    EXPECT_GT(builder.CurrentSizeEstimate(), prev);
    prev = builder.CurrentSizeEstimate();
  }
  Slice finished = builder.Finish();
  EXPECT_EQ(finished.size(), prev);
}

TEST(BlockBuilderTest, ResetClears) {
  BlockBuilder builder(16);
  builder.Add(Slice(IKey("a")), Slice("1"));
  builder.Reset();
  EXPECT_TRUE(builder.empty());
  builder.Add(Slice(IKey("b")), Slice("2"));
  Block block(builder.Finish().ToString());
  InternalKeyComparator cmp;
  std::unique_ptr<Iterator> it(block.NewIterator(&cmp));
  it->SeekToFirst();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(ExtractUserKey(it->key()).ToString(), "b");
}

TEST(BlockTest, MalformedBlockYieldsErrorIterator) {
  Block block("xy");  // too short for a restart trailer
  InternalKeyComparator cmp;
  std::unique_ptr<Iterator> it(block.NewIterator(&cmp));
  EXPECT_FALSE(it->Valid());
  EXPECT_FALSE(it->status().ok());
}

TEST(BlockTest, RandomizedSeekMatchesStdMap) {
  BlockBuilder builder(8);
  std::map<std::string, std::string> model;
  Random rng(301);
  std::string prev;
  for (int i = 0; i < 500; i++) {
    char key[24];
    snprintf(key, sizeof(key), "key%08llu",
             static_cast<unsigned long long>(i * 7 + rng.Uniform(3)));
    if (std::string(key) <= prev) continue;
    prev = key;
    std::string value = "v" + std::to_string(i);
    builder.Add(Slice(IKey(key)), Slice(value));
    model[key] = value;
  }
  Block block(builder.Finish().ToString());
  InternalKeyComparator cmp;
  std::unique_ptr<Iterator> it(block.NewIterator(&cmp));
  for (int trial = 0; trial < 200; trial++) {
    char target[24];
    snprintf(target, sizeof(target), "key%08llu",
             static_cast<unsigned long long>(rng.Uniform(4000)));
    it->Seek(Slice(IKey(target, kMaxSequenceNumber)));
    auto expected = model.lower_bound(target);
    if (expected == model.end()) {
      EXPECT_FALSE(it->Valid());
    } else {
      ASSERT_TRUE(it->Valid());
      EXPECT_EQ(ExtractUserKey(it->key()).ToString(), expected->first);
      EXPECT_EQ(it->value().ToString(), expected->second);
    }
  }
}

}  // namespace
}  // namespace adcache::lsm
