#include "core/policy_controller.h"

#include <gtest/gtest.h>

#include <memory>

#include "cache/eviction_policy.h"

namespace adcache::core {
namespace {

class PolicyControllerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cache_ = std::make_unique<DynamicCacheComponent>(1 << 20, 0.5,
                                                     NewLruPolicy());
    options_.agent.hidden_dim = 32;  // fast tests
    options_.agent.seed = 3;
    Rebuild();
  }

  void Rebuild() {
    controller_ = std::make_unique<PolicyController>(
        options_, cache_.get(), &point_admission_, &scan_admission_);
  }

  WindowStats ReadHeavyWindow(uint64_t block_reads) {
    WindowStats w;
    w.point_lookups = 900;
    w.scans = 50;
    w.scan_keys = 800;
    w.writes = 50;
    w.block_reads = block_reads;
    return w;
  }

  LsmShapeParams shape_;
  std::unique_ptr<DynamicCacheComponent> cache_;
  PointAdmissionController point_admission_;
  ScanAdmissionController scan_admission_;
  ControllerOptions options_;
  std::unique_ptr<PolicyController> controller_;
};

TEST_F(PolicyControllerTest, WindowEndAppliesActionWithinBounds) {
  controller_->OnWindowEnd(ReadHeavyWindow(100), shape_);
  EXPECT_EQ(controller_->windows_processed(), 1u);
  EXPECT_GE(cache_->range_ratio(), 0.0);
  EXPECT_LE(cache_->range_ratio(), 1.0);
  EXPECT_GE(scan_admission_.b(), 0.0);
  EXPECT_LE(scan_admission_.b(), 1.0);
  EXPECT_LE(scan_admission_.a(), scan_admission_.max_a());
}

TEST_F(PolicyControllerTest, RewardIsSmoothedDelta) {
  controller_->OnWindowEnd(ReadHeavyWindow(500), shape_);
  double h1 = controller_->smoothed_hit_rate();
  // A much better window: smoothed hit rate must rise, reward positive.
  controller_->OnWindowEnd(ReadHeavyWindow(10), shape_);
  EXPECT_GT(controller_->smoothed_hit_rate(), h1);
  EXPECT_GT(controller_->last_reward(), 0.0);
  // A much worse window: negative reward.
  controller_->OnWindowEnd(ReadHeavyWindow(2000), shape_);
  EXPECT_LT(controller_->last_reward(), 0.0);
}

TEST_F(PolicyControllerTest, AlphaControlsSmoothingSpeed) {
  options_.alpha = 0.9;
  Rebuild();
  controller_->OnWindowEnd(ReadHeavyWindow(900), shape_);
  controller_->OnWindowEnd(ReadHeavyWindow(0), shape_);
  double slow = controller_->smoothed_hit_rate();

  options_.alpha = 0.0;
  Rebuild();
  controller_->OnWindowEnd(ReadHeavyWindow(900), shape_);
  controller_->OnWindowEnd(ReadHeavyWindow(0), shape_);
  double fast = controller_->smoothed_hit_rate();
  // alpha=0 tracks the latest window exactly; alpha=0.9 lags behind.
  EXPECT_GT(fast, slow);
  EXPECT_NEAR(fast, 1.0, 0.05);
}

TEST_F(PolicyControllerTest, AblationFlagsFreezeControls) {
  options_.enable_partitioning = false;
  options_.enable_admission = false;
  Rebuild();
  double ratio_before = cache_->range_ratio();
  double a_before = scan_admission_.a();
  double thr_before = point_admission_.threshold();
  for (int i = 0; i < 5; i++) {
    controller_->OnWindowEnd(ReadHeavyWindow(100 + i * 50), shape_);
  }
  EXPECT_EQ(cache_->range_ratio(), ratio_before);
  EXPECT_EQ(scan_admission_.a(), a_before);
  EXPECT_EQ(point_admission_.threshold(), thr_before);
}

TEST_F(PolicyControllerTest, OfflineModeAppliesPolicyWithoutLearning) {
  options_.online_learning = false;
  Rebuild();
  controller_->PretrainHeuristic(500, 9);
  // With learning disabled the policy is a fixed function of the state;
  // repeated near-identical windows keep the configuration stable (the
  // state still evolves slightly through h_smoothed and the applied ratio,
  // so allow small drift but no policy-gradient wander).
  controller_->OnWindowEnd(ReadHeavyWindow(100), shape_);
  double r1 = cache_->range_ratio();
  for (int i = 0; i < 10; i++) {
    controller_->OnWindowEnd(ReadHeavyWindow(100), shape_);
  }
  double r2 = cache_->range_ratio();
  EXPECT_NEAR(r1, r2, 0.05);
}

TEST_F(PolicyControllerTest, SaveLoadRoundTripPreservesPolicy) {
  controller_->PretrainHeuristic(300, 4);
  std::string blob;
  controller_->SaveModel(&blob);
  EXPECT_GT(blob.size(), 1000u);

  options_.agent.seed = 999;
  Rebuild();
  ASSERT_TRUE(controller_->LoadModel(Slice(blob)).ok());
  // Deterministic behaviour after reload is covered by the agent test; here
  // we check the blob is architecture-validated.
  std::string corrupt = blob.substr(0, blob.size() / 2);
  EXPECT_FALSE(controller_->LoadModel(Slice(corrupt)).ok());
}

// 16-dim states: point, scan, write, scan_len, range_hit, h_est,
// h_smoothed, range_ratio, occupancy, maintenance, levels, secondary_hit,
// secondary_occupancy, stall_rate, flush_debt, bloom_fpr
// (PolicyController::kStateDim).
TEST(TargetActionTest, PointHeavyPrefersRangeCache) {
  std::vector<float> s = {0.95f, 0.02f, 0.03f, 0.25f, 0.5f, 0.5f,
                          0.5f,  0.5f,  0.5f,  0.1f,  0.3f, 0.0f,
                          0.2f,  0.0f,  0.1f,  0.1f};
  auto target = PolicyController::TargetActionFor(s);
  EXPECT_GT(target[0], 0.9f);
}

TEST(TargetActionTest, ShortScanReadMostlyPrefersBlockCache) {
  std::vector<float> s = {0.05f, 0.9f, 0.05f, 0.25f, 0.5f, 0.5f,
                          0.5f,  0.5f, 0.5f,  0.1f,  0.3f, 0.0f,
                          0.2f,  0.0f, 0.1f,  0.1f};
  auto target = PolicyController::TargetActionFor(s);
  EXPECT_LT(target[0], 0.1f);
}

TEST(TargetActionTest, WriteHeavyPrefersRangeCache) {
  std::vector<float> s = {0.25f, 0.25f, 0.5f, 0.25f, 0.5f, 0.5f,
                          0.5f,  0.5f,  0.5f, 0.4f,  0.3f, 0.0f,
                          0.2f,  0.2f,  0.3f, 0.1f};
  auto target = PolicyController::TargetActionFor(s);
  EXPECT_GT(target[0], 0.9f);
}

TEST(TargetActionTest, LongScanHeavyLeansBlockWithConservativeB) {
  std::vector<float> s = {0.02f, 0.96f, 0.02f, 1.0f, 0.5f, 0.5f,
                          0.5f,  0.5f,  0.5f,  0.1f, 0.3f, 0.0f,
                          0.2f,  0.0f,  0.1f,  0.1f};
  auto target = PolicyController::TargetActionFor(s);
  EXPECT_LT(target[0], 0.3f);
  EXPECT_LT(target[3], 0.5f);  // smaller b for long scans
}

TEST(TargetActionTest, SecondaryTargetsSelectiveWhenTierFullOrWriteHeavy) {
  // Read-mostly tier with headroom: keep the full flash budget online and
  // demote permissively.
  std::vector<float> roomy = {0.8f, 0.1f, 0.1f, 0.25f, 0.5f, 0.5f,
                              0.5f, 0.5f, 0.5f, 0.1f,  0.3f, 0.4f,
                              0.2f, 0.0f, 0.1f, 0.1f};
  auto target = PolicyController::TargetActionFor(roomy);
  ASSERT_EQ(target.size(),
            static_cast<size_t>(PolicyController::kActionDim));
  EXPECT_FLOAT_EQ(target[4], 1.0f);
  float permissive = target[5];

  // Same mix with the tier running full: the demotion gate must tighten.
  std::vector<float> full = roomy;
  full[12] = 0.95f;
  EXPECT_GT(PolicyController::TargetActionFor(full)[5], permissive);

  // Write-heavy mix: compaction invalidates demoted blocks, gate tightens.
  std::vector<float> writey = {0.2f, 0.2f, 0.6f, 0.25f, 0.5f, 0.5f,
                               0.5f, 0.5f, 0.5f, 0.4f,  0.3f, 0.1f,
                               0.2f, 0.2f, 0.3f, 0.1f};
  EXPECT_GT(PolicyController::TargetActionFor(writey)[5], permissive);
}

TEST(TargetActionTest, MemwallTargetsFollowWorkloadShape) {
  // Write-heavy (or stalling) windows grow the memtable share. Bloom stays
  // moderate: bits/key is sticky per-table state, so cutting it while
  // writing would poison the next read phase's lookups.
  std::vector<float> writey = {0.1f, 0.1f, 0.7f, 0.25f, 0.5f, 0.5f,
                               0.5f, 0.5f, 0.5f, 0.4f,  0.3f, 0.0f,
                               0.2f, 0.3f, 0.5f, 0.1f};
  auto write_target = PolicyController::TargetActionFor(writey);
  ASSERT_EQ(write_target.size(),
            static_cast<size_t>(PolicyController::kActionDim));
  EXPECT_GT(write_target[6], 0.7f);
  EXPECT_GE(write_target[7], 0.3f);

  // Scan-dominant with few point lookups: filters can't serve scans, so
  // the bloom share is the one place the rule does cut.
  std::vector<float> scanny = {0.1f, 0.8f, 0.1f, 1.0f, 0.5f, 0.5f,
                               0.5f, 0.5f, 0.5f, 0.2f, 0.4f, 0.0f,
                               0.2f, 0.0f, 0.1f, 0.2f};
  auto scan_target = PolicyController::TargetActionFor(scanny);
  EXPECT_LT(scan_target[7], 0.2f);

  // Point-read-heavy with a deep tree: shrink the write buffers, spend on
  // bloom bits to cut per-level probe I/O.
  std::vector<float> pointy = {0.9f, 0.05f, 0.05f, 0.25f, 0.5f, 0.5f,
                               0.5f, 0.5f,  0.5f,  0.1f,  0.6f, 0.0f,
                               0.2f, 0.0f,  0.0f,  0.3f};
  auto point_target = PolicyController::TargetActionFor(pointy);
  EXPECT_LT(point_target[6], 0.3f);
  EXPECT_GT(point_target[7], 0.7f);
}

TEST(TargetActionTest, DemotionThresholdMapIsMonotoneFromZero) {
  EXPECT_DOUBLE_EQ(PolicyController::ActionToDemotionThreshold(0.0f), 0.0);
  double prev = 0.0;
  for (float a = 0.1f; a <= 1.0f; a += 0.1f) {
    double t = PolicyController::ActionToDemotionThreshold(a);
    EXPECT_GT(t, prev);
    prev = t;
  }
  EXPECT_LE(PolicyController::ActionToDemotionThreshold(1.0f), 0.25 + 1e-9);
}

TEST(TargetActionTest, PretrainedAgentReproducesRuleTable) {
  DynamicCacheComponent cache(1 << 20, 0.5, NewLruPolicy());
  PointAdmissionController point;
  ScanAdmissionController scan;
  ControllerOptions options;
  options.agent.hidden_dim = 64;
  PolicyController controller(options, &cache, &point, &scan);
  controller.PretrainHeuristic(4000, 8);

  // The learned policy must map representative states near their targets.
  std::vector<std::vector<float>> states = {
      {0.95f, 0.02f, 0.03f, 0.25f, 0.5f, 0.5f, 0.5f, 0.5f, 0.5f, 0.1f, 0.3f,
       0.2f, 0.4f, 0.0f, 0.1f, 0.1f},
      {0.05f, 0.9f, 0.05f, 0.25f, 0.5f, 0.5f, 0.5f, 0.5f, 0.5f, 0.1f, 0.3f,
       0.2f, 0.4f, 0.0f, 0.1f, 0.1f},
      {0.25f, 0.25f, 0.5f, 0.25f, 0.5f, 0.5f, 0.5f, 0.5f, 0.5f, 0.4f, 0.3f,
       0.2f, 0.4f, 0.2f, 0.3f, 0.1f},
  };
  for (const auto& s : states) {
    auto action = controller.agent()->Act(s, false);
    auto target = PolicyController::TargetActionFor(s);
    EXPECT_NEAR(action[0], target[0], 0.25f);
  }
}

}  // namespace
}  // namespace adcache::core
