#include "cache/eviction_policy.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "cache/cacheus.h"
#include "cache/lecar.h"

namespace adcache {
namespace {

TEST(LruPolicyTest, VictimIsLeastRecentlyUsed) {
  LruPolicy lru;
  lru.OnInsert("a");
  lru.OnInsert("b");
  lru.OnInsert("c");
  lru.OnAccess("a");  // a becomes MRU
  std::string victim;
  ASSERT_TRUE(lru.Victim(&victim));
  EXPECT_EQ(victim, "b");
  ASSERT_TRUE(lru.Victim(&victim));
  EXPECT_EQ(victim, "c");
  ASSERT_TRUE(lru.Victim(&victim));
  EXPECT_EQ(victim, "a");
  EXPECT_FALSE(lru.Victim(&victim));
}

TEST(LruPolicyTest, EraseRemovesFromOrder) {
  LruPolicy lru;
  lru.OnInsert("a");
  lru.OnInsert("b");
  lru.OnErase("a");
  std::string victim;
  ASSERT_TRUE(lru.Victim(&victim));
  EXPECT_EQ(victim, "b");
  EXPECT_FALSE(lru.Victim(&victim));
}

TEST(LfuPolicyTest, VictimIsLeastFrequent) {
  LfuPolicy lfu;
  lfu.OnInsert("cold");
  lfu.OnInsert("hot");
  for (int i = 0; i < 5; i++) lfu.OnAccess("hot");
  std::string victim;
  ASSERT_TRUE(lfu.Victim(&victim));
  EXPECT_EQ(victim, "cold");
}

TEST(LfuPolicyTest, TieBrokenByInsertionOrder) {
  LfuPolicy lfu;
  lfu.OnInsert("first");
  lfu.OnInsert("second");
  std::string victim;
  ASSERT_TRUE(lfu.Victim(&victim));
  EXPECT_EQ(victim, "first");  // oldest within the min-freq bucket
}

TEST(LfuPolicyTest, VictimMruBreaksTiesNewestFirst) {
  LfuPolicy lfu;
  lfu.OnInsert("old");
  lfu.OnInsert("new");
  std::string victim;
  ASSERT_TRUE(lfu.PeekVictimMru(&victim));
  EXPECT_EQ(victim, "new");
  ASSERT_TRUE(lfu.VictimMru(&victim));
  EXPECT_EQ(victim, "new");
}

TEST(LfuPolicyTest, FrequencyRestoration) {
  LfuPolicy lfu;
  lfu.InsertWithFrequency("veteran", 10);
  lfu.OnInsert("rookie");
  EXPECT_EQ(lfu.FrequencyOf("veteran"), 10u);
  EXPECT_EQ(lfu.FrequencyOf("rookie"), 1u);
  std::string victim;
  ASSERT_TRUE(lfu.Victim(&victim));
  EXPECT_EQ(victim, "rookie");
}

TEST(LeCaRTest, StartsBalanced) {
  LeCaRPolicy lecar;
  EXPECT_DOUBLE_EQ(lecar.weight_lru(), 0.5);
  EXPECT_DOUBLE_EQ(lecar.weight_lfu(), 0.5);
}

TEST(LeCaRTest, GhostHitShiftsWeightAwayFromFaultyExpert) {
  LeCaRPolicy::Options opts;
  opts.seed = 1;
  LeCaRPolicy lecar(opts);
  // Make LRU and LFU victims diverge: "hot" is frequent, "cold" is not.
  lecar.OnInsert("hot");
  for (int i = 0; i < 8; i++) lecar.OnAccess("hot");
  lecar.OnInsert("cold");

  // Evict until an LRU-attributed eviction lands in the LRU ghost, then
  // request the evicted key: the LRU weight must drop.
  double before = lecar.weight_lru();
  std::string victim;
  ASSERT_TRUE(lecar.Victim(&victim));
  lecar.OnMiss(victim);
  double after = lecar.weight_lru();
  EXPECT_NE(before, after);  // some expert was penalised
}

TEST(LeCaRTest, VictimsCoverAllResidents) {
  LeCaRPolicy lecar;
  std::set<std::string> inserted;
  for (int i = 0; i < 20; i++) {
    std::string k = "k" + std::to_string(i);
    lecar.OnInsert(k);
    inserted.insert(k);
  }
  std::set<std::string> evicted;
  std::string victim;
  while (lecar.Victim(&victim)) {
    EXPECT_TRUE(inserted.count(victim)) << victim;
    EXPECT_FALSE(evicted.count(victim)) << "double eviction of " << victim;
    evicted.insert(victim);
  }
  EXPECT_EQ(evicted.size(), inserted.size());
}

TEST(LeCaRTest, EraseKeepsExpertsConsistent) {
  LeCaRPolicy lecar;
  lecar.OnInsert("a");
  lecar.OnInsert("b");
  lecar.OnErase("a");
  std::string victim;
  ASSERT_TRUE(lecar.Victim(&victim));
  EXPECT_EQ(victim, "b");
  EXPECT_FALSE(lecar.Victim(&victim));
}

TEST(CacheusTest, StartsBalancedWithConfiguredLr) {
  CacheusPolicy cacheus;
  EXPECT_DOUBLE_EQ(cacheus.weight_srlru(), 0.5);
  EXPECT_GT(cacheus.learning_rate(), 0.0);
}

TEST(CacheusTest, ScanResistance) {
  // A reused working set followed by a one-pass scan: victims should be
  // dominated by scan keys, not the working set.
  CacheusPolicy::Options opts;
  opts.seed = 3;
  CacheusPolicy cacheus(opts);
  for (int i = 0; i < 8; i++) {
    std::string k = "work" + std::to_string(i);
    cacheus.OnInsert(k);
    cacheus.OnAccess(k);
    cacheus.OnAccess(k);
  }
  for (int i = 0; i < 8; i++) {
    cacheus.OnInsert("scan" + std::to_string(i));
  }
  int working_set_evicted = 0;
  std::string victim;
  for (int i = 0; i < 8; i++) {
    ASSERT_TRUE(cacheus.Victim(&victim));
    if (victim.rfind("work", 0) == 0) working_set_evicted++;
  }
  EXPECT_LE(working_set_evicted, 2);
}

TEST(CacheusTest, ChurnResistanceRestoresFrequency) {
  CacheusPolicy::Options opts;
  opts.seed = 5;
  CacheusPolicy cacheus(opts);
  cacheus.OnInsert("vip");
  for (int i = 0; i < 10; i++) cacheus.OnAccess("vip");
  // Force vip out.
  cacheus.OnInsert("filler");
  std::string victim;
  std::set<std::string> evicted;
  while (cacheus.Victim(&victim)) evicted.insert(victim);
  ASSERT_TRUE(evicted.count("vip"));
  // Re-admission must restore vip's earned frequency so a fresh filler is
  // preferred as the next CR-LFU victim.
  cacheus.OnInsert("vip");
  cacheus.OnInsert("newbie");
  // Evict twice; vip should not be the first to go via CR-LFU.
  int vip_first = 0;
  ASSERT_TRUE(cacheus.Victim(&victim));
  if (victim == "vip") vip_first = 1;
  EXPECT_EQ(vip_first, 0);
}

TEST(CacheusTest, VictimsExhaustResidents) {
  CacheusPolicy cacheus;
  for (int i = 0; i < 30; i++) {
    cacheus.OnInsert("k" + std::to_string(i));
  }
  std::string victim;
  int count = 0;
  while (cacheus.Victim(&victim)) count++;
  EXPECT_EQ(count, 30);
}

TEST(CacheusTest, LearningRateAdapts) {
  CacheusPolicy::Options opts;
  opts.adaptation_window = 10;
  CacheusPolicy cacheus(opts);
  double initial = cacheus.learning_rate();
  // A stream of misses: hit rate 0 -> stable -> lr decays.
  for (int i = 0; i < 100; i++) {
    cacheus.OnMiss("m" + std::to_string(i));
  }
  EXPECT_LT(cacheus.learning_rate(), initial);
}

}  // namespace
}  // namespace adcache
