#include "lsm/table.h"

#include <gtest/gtest.h>

#include <memory>

#include "cache/cache.h"
#include "lsm/table_builder.h"
#include "util/clock.h"
#include "util/env.h"

namespace adcache::lsm {
namespace {

class TableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv(&clock_);
    options_.env = env_.get();
    options_.block_size = 256;  // small blocks -> multiple blocks per table
  }

  // Builds a table with n sequential keys and opens a reader for it.
  void BuildAndOpen(int n, std::shared_ptr<Cache> block_cache = nullptr) {
    options_.block_cache = block_cache;
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_->NewWritableFile("/t/1.sst", &file).ok());
    TableBuilder builder(options_, std::move(file));
    for (int i = 0; i < n; i++) {
      builder.Add(Slice(MakeInternalKey(KeyOf(i), 10, kTypeValue)),
                  Slice(ValueOf(i)));
    }
    ASSERT_TRUE(builder.Finish().ok());
    EXPECT_EQ(builder.NumEntries(), static_cast<uint64_t>(n));

    std::unique_ptr<RandomAccessFile> rfile;
    ASSERT_TRUE(env_->NewRandomAccessFile("/t/1.sst", &rfile).ok());
    ASSERT_TRUE(
        Table::Open(options_, std::move(rfile), 1, env_.get(), &table_).ok());
  }

  static std::string KeyOf(int i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%06d", i);
    return buf;
  }
  static std::string ValueOf(int i) { return "value" + std::to_string(i); }

  SimClock clock_;
  std::unique_ptr<Env> env_;
  Options options_;
  std::unique_ptr<Table> table_;
};

TEST_F(TableTest, PointLookupsFindEveryKey) {
  BuildAndOpen(200);
  for (int i = 0; i < 200; i++) {
    std::string value;
    auto r = table_->Get(ReadOptions(), Slice(KeyOf(i)), 100, &value, nullptr);
    ASSERT_EQ(r, Table::LookupResult::kFound) << "key " << i;
    EXPECT_EQ(value, ValueOf(i));
  }
}

TEST_F(TableTest, MissingKeysNotFound) {
  BuildAndOpen(100);
  std::string value;
  EXPECT_EQ(table_->Get(ReadOptions(), Slice("absent"), 100, &value, nullptr),
            Table::LookupResult::kNotFound);
  EXPECT_EQ(table_->Get(ReadOptions(), Slice("zzz"), 100, &value, nullptr),
            Table::LookupResult::kNotFound);
}

TEST_F(TableTest, SnapshotHidesNewerEntries) {
  BuildAndOpen(10);
  std::string value;
  // Entries were written at sequence 10; a snapshot at 5 must not see them.
  EXPECT_EQ(table_->Get(ReadOptions(), Slice(KeyOf(3)), 5, &value, nullptr),
            Table::LookupResult::kNotFound);
  EXPECT_EQ(table_->Get(ReadOptions(), Slice(KeyOf(3)), 10, &value, nullptr),
            Table::LookupResult::kFound);
}

TEST_F(TableTest, TombstoneReported) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_->NewWritableFile("/t/1.sst", &file).ok());
  TableBuilder builder(options_, std::move(file));
  builder.Add(Slice(MakeInternalKey("dead", 5, kTypeDeletion)), Slice(""));
  builder.Add(Slice(MakeInternalKey("live", 5, kTypeValue)), Slice("v"));
  ASSERT_TRUE(builder.Finish().ok());
  std::unique_ptr<RandomAccessFile> rfile;
  ASSERT_TRUE(env_->NewRandomAccessFile("/t/1.sst", &rfile).ok());
  ASSERT_TRUE(
      Table::Open(options_, std::move(rfile), 1, env_.get(), &table_).ok());

  std::string value;
  EXPECT_EQ(table_->Get(ReadOptions(), Slice("dead"), 100, &value, nullptr),
            Table::LookupResult::kDeleted);
  EXPECT_EQ(table_->Get(ReadOptions(), Slice("live"), 100, &value, nullptr),
            Table::LookupResult::kFound);
}

TEST_F(TableTest, IteratorScansAllKeysInOrder) {
  BuildAndOpen(300);
  std::unique_ptr<Iterator> it(table_->NewIterator(ReadOptions()));
  int count = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    EXPECT_EQ(ExtractUserKey(it->key()).ToString(), KeyOf(count));
    EXPECT_EQ(it->value().ToString(), ValueOf(count));
    count++;
  }
  EXPECT_EQ(count, 300);
}

TEST_F(TableTest, IteratorSeeksAcrossBlockBoundaries) {
  BuildAndOpen(300);
  std::unique_ptr<Iterator> it(table_->NewIterator(ReadOptions()));
  for (int target : {0, 1, 57, 123, 299}) {
    it->Seek(Slice(MakeInternalKey(KeyOf(target), kMaxSequenceNumber,
                                   kTypeValue)));
    ASSERT_TRUE(it->Valid()) << target;
    EXPECT_EQ(ExtractUserKey(it->key()).ToString(), KeyOf(target));
  }
}

TEST_F(TableTest, BlockCacheAvoidsRepeatReads) {
  auto cache = NewBlockCache(DefaultBlockCacheImpl(), 1 << 20);
  BuildAndOpen(200, cache);
  std::string value;
  ASSERT_EQ(table_->Get(ReadOptions(), Slice(KeyOf(5)), 100, &value, nullptr),
            Table::LookupResult::kFound);
  uint64_t reads_after_first = env_->io_stats()->block_reads.load();
  EXPECT_GE(reads_after_first, 1u);
  // Same block again: no new storage reads.
  ASSERT_EQ(table_->Get(ReadOptions(), Slice(KeyOf(5)), 100, &value, nullptr),
            Table::LookupResult::kFound);
  EXPECT_EQ(env_->io_stats()->block_reads.load(), reads_after_first);
  EXPECT_GE(cache->hits(), 1u);
}

TEST_F(TableTest, FillBlockCacheFalseSkipsInsertion) {
  auto cache = NewBlockCache(DefaultBlockCacheImpl(), 1 << 20);
  BuildAndOpen(200, cache);
  ReadOptions no_fill;
  no_fill.fill_block_cache = false;
  std::string value;
  ASSERT_EQ(table_->Get(no_fill, Slice(KeyOf(5)), 100, &value, nullptr),
            Table::LookupResult::kFound);
  EXPECT_EQ(cache->GetUsage(), 0u);
  uint64_t reads = env_->io_stats()->block_reads.load();
  ASSERT_EQ(table_->Get(no_fill, Slice(KeyOf(5)), 100, &value, nullptr),
            Table::LookupResult::kFound);
  EXPECT_EQ(env_->io_stats()->block_reads.load(), reads + 1);
}

TEST_F(TableTest, CountBlockReadsFalseSkipsMetric) {
  BuildAndOpen(50);
  ReadOptions opts;
  opts.count_block_reads = false;
  std::string value;
  uint64_t before = env_->io_stats()->block_reads.load();
  ASSERT_EQ(table_->Get(opts, Slice(KeyOf(1)), 100, &value, nullptr),
            Table::LookupResult::kFound);
  EXPECT_EQ(env_->io_stats()->block_reads.load(), before);
}

TEST_F(TableTest, BloomFilterSkipsAbsentKeysWithoutIo) {
  BuildAndOpen(500);
  uint64_t before = env_->io_stats()->block_reads.load();
  std::string value;
  int false_positives = 0;
  for (int i = 0; i < 500; i++) {
    std::string absent = "zzz" + std::to_string(i);
    if (table_->Get(ReadOptions(), Slice(absent), 100, &value, nullptr) !=
        Table::LookupResult::kNotFound) {
      false_positives++;
    }
  }
  EXPECT_EQ(false_positives, 0);
  uint64_t reads = env_->io_stats()->block_reads.load() - before;
  // With 10 bits/key the vast majority of absent probes must be filtered.
  EXPECT_LT(reads, 25u);
}

TEST_F(TableTest, CacheKeyDistinguishesFilesAndOffsets) {
  EXPECT_NE(Table::CacheKey(1, 0), Table::CacheKey(2, 0));
  EXPECT_NE(Table::CacheKey(1, 0), Table::CacheKey(1, 4096));
  EXPECT_EQ(Table::CacheKey(7, 42), Table::CacheKey(7, 42));
}

TEST_F(TableTest, CacheFileIdDistinguishesShards) {
  // Shards number their SSTs independently; a shared block cache must not
  // collide file 1 of shard 0 with file 1 of shard 2.
  EXPECT_NE(Table::CacheFileId(0, 1), Table::CacheFileId(2, 1));
  EXPECT_EQ(Table::CacheFileId(0, 7), 7u);  // unsharded keys are unchanged
  EXPECT_NE(Table::CacheKey(Table::CacheFileId(0, 1), 0),
            Table::CacheKey(Table::CacheFileId(1, 1), 0));
}

TEST_F(TableTest, CorruptFooterRejected) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_->NewWritableFile("/t/bad.sst", &file).ok());
  ASSERT_TRUE(file->Append(Slice(std::string(100, 'q'))).ok());
  std::unique_ptr<RandomAccessFile> rfile;
  ASSERT_TRUE(env_->NewRandomAccessFile("/t/bad.sst", &rfile).ok());
  std::unique_ptr<Table> table;
  EXPECT_TRUE(Table::Open(options_, std::move(rfile), 9, env_.get(), &table)
                  .IsCorruption());
}

}  // namespace
}  // namespace adcache::lsm
