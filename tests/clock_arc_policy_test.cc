#include <gtest/gtest.h>

#include <set>
#include <string>

#include "cache/arc_policy.h"
#include "cache/clock_policy.h"

namespace adcache {
namespace {

TEST(ClockPolicyTest, EvictsUnreferencedFirst) {
  ClockPolicy clock;
  clock.OnInsert("a");
  clock.OnInsert("b");
  clock.OnInsert("c");
  clock.OnAccess("a");  // reference bit set
  std::string victim;
  ASSERT_TRUE(clock.Victim(&victim));
  // "a" has a second chance; the victim is one of the unreferenced keys.
  EXPECT_NE(victim, "a");
}

TEST(ClockPolicyTest, SecondChanceExpires) {
  ClockPolicy clock;
  clock.OnInsert("a");
  clock.OnInsert("b");
  clock.OnAccess("a");
  clock.OnAccess("b");
  // All referenced: the sweep clears bits then evicts someone.
  std::string victim;
  ASSERT_TRUE(clock.Victim(&victim));
  ASSERT_TRUE(clock.Victim(&victim));
  EXPECT_FALSE(clock.Victim(&victim));
}

TEST(ClockPolicyTest, EraseKeepsRingConsistent) {
  ClockPolicy clock;
  for (int i = 0; i < 10; i++) clock.OnInsert("k" + std::to_string(i));
  clock.OnErase("k0");
  clock.OnErase("k5");
  clock.OnErase("missing");  // no-op
  std::set<std::string> evicted;
  std::string victim;
  while (clock.Victim(&victim)) {
    EXPECT_TRUE(evicted.insert(victim).second) << "double evict " << victim;
  }
  EXPECT_EQ(evicted.size(), 8u);
  EXPECT_FALSE(evicted.count("k0"));
  EXPECT_FALSE(evicted.count("k5"));
}

TEST(ClockPolicyTest, VictimsExhaust) {
  ClockPolicy clock;
  for (int i = 0; i < 100; i++) clock.OnInsert("k" + std::to_string(i));
  std::string victim;
  int count = 0;
  while (clock.Victim(&victim)) count++;
  EXPECT_EQ(count, 100);
  EXPECT_EQ(clock.size(), 0u);
}

TEST(ArcPolicyTest, ReusedEntriesPromoteToT2) {
  ArcPolicy arc;
  arc.OnInsert("once");
  arc.OnInsert("twice");
  arc.OnAccess("twice");
  EXPECT_EQ(arc.t1_size(), 1u);
  EXPECT_EQ(arc.t2_size(), 1u);
  // Victim should come from T1 (recency side) first here.
  std::string victim;
  ASSERT_TRUE(arc.Victim(&victim));
  EXPECT_EQ(victim, "once");
}

TEST(ArcPolicyTest, GhostHitGrowsRecencyTarget) {
  ArcPolicy arc;
  arc.OnInsert("x");
  std::string victim;
  ASSERT_TRUE(arc.Victim(&victim));  // x -> B1 ghost
  EXPECT_EQ(victim, "x");
  double p_before = arc.target_t1();
  arc.OnInsert("x");  // B1 ghost hit
  EXPECT_GT(arc.target_t1(), p_before);
  // Re-admitted with reuse: lives in T2.
  EXPECT_EQ(arc.t2_size(), 1u);
}

TEST(ArcPolicyTest, FrequencyGhostShrinksTarget) {
  ArcPolicy arc;
  arc.OnInsert("f");
  arc.OnAccess("f");  // T2
  std::string victim;
  ASSERT_TRUE(arc.Victim(&victim));  // f -> B2 ghost
  arc.OnInsert("bump");
  ASSERT_TRUE(arc.Victim(&victim));  // grow B1 side too
  double p_before = arc.target_t1();
  arc.OnInsert("f");  // B2 ghost hit
  EXPECT_LE(arc.target_t1(), p_before);
}

TEST(ArcPolicyTest, EraseRemovesEverywhere) {
  ArcPolicy arc;
  arc.OnInsert("a");
  arc.OnInsert("b");
  arc.OnErase("a");
  std::string victim;
  ASSERT_TRUE(arc.Victim(&victim));
  EXPECT_EQ(victim, "b");
  EXPECT_FALSE(arc.Victim(&victim));
}

TEST(ArcPolicyTest, VictimsExhaustMixedWorkload) {
  ArcPolicy arc;
  for (int i = 0; i < 50; i++) {
    arc.OnInsert("k" + std::to_string(i));
    if (i % 3 == 0) arc.OnAccess("k" + std::to_string(i));
  }
  std::set<std::string> evicted;
  std::string victim;
  while (arc.Victim(&victim)) {
    EXPECT_TRUE(evicted.insert(victim).second);
  }
  EXPECT_EQ(evicted.size(), 50u);
}

TEST(ArcPolicyTest, ScanDoesNotFlushFrequentSet) {
  ArcPolicy arc;
  // Build a frequent working set.
  for (int i = 0; i < 10; i++) {
    std::string k = "hot" + std::to_string(i);
    arc.OnInsert(k);
    arc.OnAccess(k);
  }
  // One-pass scan through 10 cold keys with interleaved evictions (fixed
  // capacity of 10 entries).
  for (int i = 0; i < 10; i++) {
    arc.OnInsert("scan" + std::to_string(i));
    std::string victim;
    ASSERT_TRUE(arc.Victim(&victim));
  }
  // Most survivors should be hot keys (scans churn through T1).
  EXPECT_GE(arc.t2_size(), 6u);
}

}  // namespace
}  // namespace adcache
