#include "util/fault_injection_env.h"

#include <gtest/gtest.h>

#include <memory>

#include "cache/cache.h"
#include "lsm/db.h"
#include "util/clock.h"

namespace adcache {
namespace {

using lsm::DB;
using lsm::Options;
using lsm::ReadOptions;
using lsm::WriteOptions;

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_env_ = NewMemEnv(&clock_);
    env_ = std::make_unique<FaultInjectionEnv>(base_env_.get());
    options_.env = env_.get();
    options_.block_size = 512;
    options_.table_file_size = 8 * 1024;
    options_.memtable_size = 8 * 1024;
    options_.block_cache = nullptr;  // force every read to storage
    ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok());
  }

  SimClock clock_;
  std::unique_ptr<Env> base_env_;
  std::unique_ptr<FaultInjectionEnv> env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(FaultInjectionTest, EnvInjectsReadFaults) {
  std::unique_ptr<WritableFile> wf;
  ASSERT_TRUE(env_->NewWritableFile("/f", &wf).ok());
  ASSERT_TRUE(wf->Append(Slice("data")).ok());

  env_->FailNthRead(2);
  std::unique_ptr<RandomAccessFile> rf;
  ASSERT_TRUE(env_->NewRandomAccessFile("/f", &rf).ok());
  char scratch[8];
  Slice result;
  EXPECT_TRUE(rf->Read(0, 4, &result, scratch).ok());     // 1st read ok
  EXPECT_TRUE(rf->Read(0, 4, &result, scratch).IsIOError());  // 2nd fails
  EXPECT_TRUE(rf->Read(0, 4, &result, scratch).ok());     // disarmed again
  EXPECT_EQ(env_->injected_failures(), 1u);
}

TEST_F(FaultInjectionTest, WalAppendFailureSurfacesToPut) {
  env_->FailNthWrite(1);
  Status s = db_->Put(WriteOptions(), Slice("k"), Slice("v"));
  EXPECT_TRUE(s.IsIOError());
  // The DB remains usable afterwards.
  EXPECT_TRUE(db_->Put(WriteOptions(), Slice("k"), Slice("v2")).ok());
  std::string value;
  EXPECT_TRUE(db_->Get(ReadOptions(), Slice("k"), &value).ok());
  EXPECT_EQ(value, "v2");
}

TEST_F(FaultInjectionTest, SstReadFailureSurfacesToGetWithoutCrashing) {
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Slice("key" + std::to_string(i)),
                         Slice(std::string(64, 'v'))).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());

  env_->SetFailAll(true);
  std::string value;
  Status s = db_->Get(ReadOptions(), Slice("key50"), &value);
  // The lookup cannot succeed; it must degrade to a clean non-OK outcome
  // (NotFound via an aborted search or an explicit error), never a crash.
  EXPECT_FALSE(s.ok());
  env_->SetFailAll(false);
  EXPECT_TRUE(db_->Get(ReadOptions(), Slice("key50"), &value).ok());
}

TEST_F(FaultInjectionTest, FlushFailurePropagatesAndDbSurvives) {
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Slice("k" + std::to_string(i)),
                         Slice("v")).ok());
  }
  env_->SetFailFileCreation(true);
  Status s = db_->FlushMemTable();
  EXPECT_TRUE(s.IsIOError());
  env_->SetFailFileCreation(false);
  // Data is still in the memtable; flush succeeds when storage recovers.
  EXPECT_TRUE(db_->FlushMemTable().ok());
  std::string value;
  EXPECT_TRUE(db_->Get(ReadOptions(), Slice("k1"), &value).ok());
}

TEST_F(FaultInjectionTest, IteratorReportsErrorStatus) {
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Slice("key" + std::to_string(i)),
                         Slice(std::string(32, 'v'))).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  env_->FailNthRead(3);
  std::unique_ptr<lsm::Iterator> it(db_->NewIterator(ReadOptions()));
  int visited = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) visited++;
  // Either the iterator stopped early with an error, or the fault landed on
  // a non-critical path; in all cases no crash and status is reported.
  if (visited < 200) {
    EXPECT_FALSE(it->status().ok());
  }
}

}  // namespace
}  // namespace adcache
