// Key-range sharding behind the ShardedDB facade: routing, the shared
// background pool cap, cross-shard MultiGet ordering, shard-boundary scans,
// kill-after-partial-flush recovery across shards (multi-WAL replay, in the
// style of background_maintenance_test.cc), and the per-shard observability
// and budget-lease surfaces. Run with -DADCACHE_SANITIZE=thread / address.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/adcache_store.h"
#include "core/statistics.h"
#include "lsm/sharded_db.h"
#include "util/clock.h"

namespace adcache::lsm {
namespace {

std::string Key(int i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "key%06d", i);
  return buf;
}

std::string Value(int i) {
  char buf[64];
  snprintf(buf, sizeof(buf), "value-%06d-%020d", i, i);
  return buf;
}

class ShardedStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv(&clock_);
    options_.env = env_.get();
    // Small sizes keep flush/compaction churn cheap and frequent.
    options_.block_size = 512;
    options_.table_file_size = 8 * 1024;
    options_.memtable_size = 8 * 1024;
    options_.level1_size_base = 32 * 1024;
    // Four shards at fixed split points over the Key() space.
    options_.shard_boundaries = {Key(250), Key(500), Key(750)};
  }

  void Open() {
    ASSERT_TRUE(ShardedDB::Open(options_, "/sharded", &db_).ok());
  }

  SimClock clock_;
  std::unique_ptr<Env> env_;
  Options options_;
  std::unique_ptr<ShardedDB> db_;
};

// Satellite: `max_background_jobs` is a global cap. Every shard must
// schedule onto ONE pool of exactly that many threads — never N shards x
// private pools.
TEST_F(ShardedStoreTest, BackgroundPoolSharedAcrossShardsAtGlobalCap) {
  options_.max_background_jobs = 3;
  Open();
  ASSERT_EQ(db_->shard_count(), 4);
  util::ThreadPool* pool = db_->background_pool();
  ASSERT_NE(pool, nullptr);
  // Total background threads == the configured cap, not shards x anything.
  EXPECT_EQ(pool->num_threads(), 3);
  for (int i = 0; i < db_->shard_count(); i++) {
    EXPECT_EQ(db_->shard(i)->background_pool(), pool)
        << "shard " << i << " runs its own pool";
  }
}

TEST_F(ShardedStoreTest, RoutesKeysToOwningShardIncludingBoundaries) {
  Open();
  // A split point belongs to the shard it opens (upper_bound semantics).
  EXPECT_EQ(db_->ShardFor(Slice(Key(0))), 0);
  EXPECT_EQ(db_->ShardFor(Slice(Key(249))), 0);
  EXPECT_EQ(db_->ShardFor(Slice(Key(250))), 1);
  EXPECT_EQ(db_->ShardFor(Slice(Key(499))), 1);
  EXPECT_EQ(db_->ShardFor(Slice(Key(500))), 2);
  EXPECT_EQ(db_->ShardFor(Slice(Key(750))), 3);
  EXPECT_EQ(db_->ShardFor(Slice(Key(999))), 3);

  for (int i = 0; i < 1000; i += 7) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Slice(Key(i)), Slice(Value(i))).ok());
  }
  // Each key is readable through the facade AND present in exactly the
  // owning shard (routing at read matches routing at write).
  for (int i = 0; i < 1000; i += 7) {
    std::string value;
    ASSERT_TRUE(db_->Get(ReadOptions(), Slice(Key(i)), &value).ok()) << Key(i);
    EXPECT_EQ(value, Value(i));
    int owner = db_->ShardFor(Slice(Key(i)));
    for (int s = 0; s < db_->shard_count(); s++) {
      std::string v;
      Status st = db_->shard(s)->Get(ReadOptions(), Slice(Key(i)), &v);
      if (s == owner) {
        EXPECT_TRUE(st.ok()) << "shard " << s << " missing " << Key(i);
      } else {
        EXPECT_TRUE(st.IsNotFound()) << "shard " << s << " leaked " << Key(i);
      }
    }
  }
}

// A WriteBatch spanning shards lands every op in its owning shard.
TEST_F(ShardedStoreTest, CrossShardWriteBatchAppliesEverywhere) {
  Open();
  WriteBatch batch;
  for (int i = 0; i < 1000; i += 100) batch.Put(Slice(Key(i)), Slice(Value(i)));
  batch.Delete(Slice(Key(300)));  // delete of a key the same batch wrote
  ASSERT_TRUE(db_->Write(WriteOptions(), batch).ok());
  for (int i = 0; i < 1000; i += 100) {
    std::string value;
    Status s = db_->Get(ReadOptions(), Slice(Key(i)), &value);
    if (i == 300) {
      EXPECT_TRUE(s.IsNotFound());
    } else {
      ASSERT_TRUE(s.ok()) << Key(i);
      EXPECT_EQ(value, Value(i));
    }
  }
}

// Satellite: MultiGet across shards returns results in the caller's
// original key order, with interleaved and duplicate keys sitting exactly
// on shard boundaries.
TEST_F(ShardedStoreTest, MultiGetPreservesCallerOrderAcrossShards) {
  Open();
  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Slice(Key(i)), Slice(Value(i))).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());

  // Interleave shards 3,0,2,1; duplicate the boundary keys 250/500/750 and
  // their predecessors; sprinkle misses.
  std::vector<int> present = {900, 3,   500, 250, 750, 249, 250, 499,
                              500, 750, 0,   999, 250, 749, 750, 1};
  std::vector<std::string> key_storage;
  std::vector<bool> expect_found;
  for (int i : present) {
    key_storage.push_back(Key(i));
    expect_found.push_back(true);
  }
  key_storage.push_back("zzz-missing");       // past every shard
  expect_found.push_back(false);
  key_storage.push_back(Key(250) + "-miss");  // boundary-adjacent miss
  expect_found.push_back(false);
  key_storage.push_back("");                  // below every key, shard 0
  expect_found.push_back(false);

  std::vector<Slice> keys;
  for (const auto& k : key_storage) keys.emplace_back(k);
  std::vector<PinnableSlice> values(keys.size());
  std::vector<Status> statuses(keys.size());
  db_->MultiGet(ReadOptions(), keys.size(), keys.data(), values.data(),
                statuses.data());

  for (size_t i = 0; i < keys.size(); i++) {
    if (!expect_found[i]) {
      EXPECT_TRUE(statuses[i].IsNotFound()) << key_storage[i];
      continue;
    }
    ASSERT_TRUE(statuses[i].ok()) << key_storage[i];
    EXPECT_EQ(values[i].slice().ToString(), Value(present[i]))
        << "slot " << i << " key " << key_storage[i];
  }
}

// Satellite: scans straddling split points. The concatenated iterator must
// walk forward across shard boundaries as if the store were one DB,
// including Seek landing in a later shard when the owning shard has nothing
// at or after the target. Backward iteration reports NotSupported, exactly
// like the single-DB iterator.
TEST_F(ShardedStoreTest, ScansStitchAcrossShardBoundaries) {
  Open();
  for (int i = 0; i < 1000; i += 2) {  // even keys only
    ASSERT_TRUE(db_->Put(WriteOptions(), Slice(Key(i)), Slice(Value(i))).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());

  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));

  // Forward sweep over a boundary: 244..256 crosses the shard 0/1 split.
  iter->Seek(Slice(Key(244)));
  for (int i = 244; i < 256; i += 2) {
    ASSERT_TRUE(iter->Valid()) << i;
    EXPECT_EQ(iter->key().ToString(), Key(i));
    EXPECT_EQ(iter->value().ToString(), Value(i));
    iter->Next();
  }
  // Seek to an absent odd key just below a boundary: lands on the boundary
  // key in the NEXT shard.
  iter->Seek(Slice(Key(499)));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), Key(500));

  // Full forward sweep sees every key exactly once, in order.
  int count = 0;
  int expect = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    ASSERT_EQ(iter->key().ToString(), Key(expect));
    expect += 2;
    count++;
  }
  EXPECT_EQ(count, 500);
  ASSERT_TRUE(iter->status().ok());

  // Backward iteration keeps the engine's forward-only contract (sticky
  // NotSupported, same as DBIter), rather than silently misbehaving.
  iter->SeekToLast();
  EXPECT_FALSE(iter->Valid());
  EXPECT_TRUE(iter->status().IsNotSupported());
  std::unique_ptr<Iterator> iter2(db_->NewIterator(ReadOptions()));
  iter2->SeekToFirst();
  ASSERT_TRUE(iter2->Valid());
  iter2->Prev();
  EXPECT_FALSE(iter2->Valid());
  EXPECT_TRUE(iter2->status().IsNotSupported());
}

// Empty shards (no keys in their range) are skipped transparently by
// iteration and MultiGet.
TEST_F(ShardedStoreTest, EmptyShardsAreTransparent) {
  Open();
  // Only shards 0 and 3 get data; 1 and 2 stay empty.
  for (int i = 0; i < 200; i += 4) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Slice(Key(i)), Slice(Value(i))).ok());
  }
  for (int i = 800; i < 1000; i += 4) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Slice(Key(i)), Slice(Value(i))).ok());
  }
  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  iter->Seek(Slice(Key(196)));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), Key(196));
  iter->Next();  // hops over two empty shards
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), Key(800));

  iter->Seek(Slice(Key(300)));  // seek into an empty shard
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), Key(800));

  std::vector<std::string> key_storage = {Key(400), Key(0), Key(996)};
  std::vector<Slice> keys(key_storage.begin(), key_storage.end());
  std::vector<PinnableSlice> values(keys.size());
  std::vector<Status> statuses(keys.size());
  db_->MultiGet(ReadOptions(), keys.size(), keys.data(), values.data(),
                statuses.data());
  EXPECT_TRUE(statuses[0].IsNotFound());
  EXPECT_TRUE(statuses[1].ok());
  EXPECT_TRUE(statuses[2].ok());
}

// Satellite: kill-after-partial-flush recovery. Some shards have flushed
// their memtables to L0, others still hold WAL-only tails when the process
// "dies"; a reopen over the same (persistent MemEnv) files must replay
// every shard's WALs and lose nothing.
TEST_F(ShardedStoreTest, PartialFlushThenReopenRecoversEveryShard) {
  Open();
  // Round 1: keys in every shard.
  for (int i = 0; i < 1000; i += 5) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Slice(Key(i)), Slice(Value(i))).ok());
  }
  // Flush ONLY shards 0 and 2 — shards 1 and 3 keep memtable+WAL state.
  ASSERT_TRUE(db_->shard(0)->FlushMemTable().ok());
  ASSERT_TRUE(db_->shard(2)->FlushMemTable().ok());
  // Round 2: WAL tails on top of the flushed shards too.
  for (int i = 1; i < 1000; i += 5) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Slice(Key(i)), Slice(Value(i))).ok());
  }
  // "Kill": drop the handle. Close() drains maintenance but flushes nothing
  // extra; the unflushed updates exist only in the per-shard WALs, so the
  // reopen below exercises multi-WAL replay in all four shards.
  db_.reset();

  Open();
  for (int i = 0; i < 1000; i += 5) {
    std::string value;
    ASSERT_TRUE(db_->Get(ReadOptions(), Slice(Key(i)), &value).ok()) << Key(i);
    EXPECT_EQ(value, Value(i));
  }
  for (int i = 1; i < 1000; i += 5) {
    std::string value;
    ASSERT_TRUE(db_->Get(ReadOptions(), Slice(Key(i)), &value).ok()) << Key(i);
    EXPECT_EQ(value, Value(i));
  }
}

// Boundaries must be stable across reopens; with N=1 (no boundaries) the
// on-disk layout is exactly the single-DB layout, so a store created
// unsharded keeps working when reopened unsharded after sharded stores
// existed elsewhere in the process.
TEST_F(ShardedStoreTest, SingleShardKeepsUnshardedLayout) {
  Options single = options_;
  single.shard_boundaries.clear();
  std::unique_ptr<ShardedDB> db;
  ASSERT_TRUE(ShardedDB::Open(single, "/plain", &db).ok());
  ASSERT_EQ(db->shard_count(), 1);
  ASSERT_TRUE(db->Put(WriteOptions(), Slice("a"), Slice("1")).ok());
  ASSERT_TRUE(db->Close().ok());
  db.reset();

  // The files live directly under /plain (no shard-000 subdir), so a plain
  // lsm::DB can open the same directory.
  std::unique_ptr<DB> raw;
  ASSERT_TRUE(DB::Open(single, "/plain", &raw).ok());
  std::string value;
  ASSERT_TRUE(raw->Get(ReadOptions(), Slice("a"), &value).ok());
  EXPECT_EQ(value, "1");
}

// The resolved topology of an N>1 store is pinned in a SHARDS file at first
// open: reopening with different boundaries (or unsharded) must fail loudly
// instead of silently opening fresh empty shard dirs / mis-routing keys.
TEST_F(ShardedStoreTest, ReopenWithChangedTopologyFails) {
  Open();
  ASSERT_TRUE(
      db_->Put(WriteOptions(), Slice(Key(100)), Slice(Value(100))).ok());
  ASSERT_TRUE(db_->Close().ok());
  db_.reset();

  // Different split points.
  Options changed = options_;
  changed.shard_boundaries = {Key(300), Key(600)};
  std::unique_ptr<ShardedDB> reopened;
  Status s = ShardedDB::Open(changed, "/sharded", &reopened);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();

  // Same count, different values.
  changed.shard_boundaries = {Key(200), Key(400), Key(600)};
  s = ShardedDB::Open(changed, "/sharded", &reopened);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();

  // Matching topology reopens fine and still sees the data.
  ASSERT_TRUE(ShardedDB::Open(options_, "/sharded", &reopened).ok());
  std::string value;
  ASSERT_TRUE(reopened->Get(ReadOptions(), Slice(Key(100)), &value).ok());
  EXPECT_EQ(value, Value(100));
}

TEST_F(ShardedStoreTest, ReopenShardedStoreUnshardedFails) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), Slice(Key(1)), Slice(Value(1))).ok());
  ASSERT_TRUE(db_->Close().ok());
  db_.reset();

  // An unsharded reopen would route every key to a fresh empty DB at the
  // store root — the SHARDS file turns that into an explicit error.
  Options unsharded = options_;
  unsharded.shard_boundaries.clear();
  std::unique_ptr<ShardedDB> reopened;
  Status s = ShardedDB::Open(unsharded, "/sharded", &reopened);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

TEST_F(ShardedStoreTest, ReopenUnshardedStoreWithShardsFails) {
  Options unsharded = options_;
  unsharded.shard_boundaries.clear();
  // A raw lsm::DB never consults the shard env fallbacks, so this store is
  // genuinely unsharded whatever environment the suite runs under.
  std::unique_ptr<DB> plain;
  ASSERT_TRUE(DB::Open(unsharded, "/was-plain", &plain).ok());
  ASSERT_TRUE(
      plain->Put(WriteOptions(), Slice(Key(1)), Slice(Value(1))).ok());
  ASSERT_TRUE(plain->Close().ok());
  plain.reset();

  // The DB left a MANIFEST at the root; a sharded open must refuse rather
  // than bury the data behind empty shard-NNN subdirs.
  std::unique_ptr<ShardedDB> sharded;
  Status s = ShardedDB::Open(options_, "/was-plain", &sharded);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

TEST_F(ShardedStoreTest, AggregatedShapeAndMaintenanceStats) {
  Open();
  for (int i = 0; i < 1000; i += 2) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Slice(Key(i)), Slice(Value(i))).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  DB::LsmShape shape = db_->GetLsmShape();
  EXPECT_GT(shape.flush_count, 0u);
  EXPECT_GT(shape.sorted_runs, 0);
  DB::MaintenanceStats maint = db_->GetMaintenanceStats();
  EXPECT_GT(maint.flushes, 0u);
  // Every shard contributed writes, so grouped writes cover all puts.
  EXPECT_GE(maint.grouped_writes, 500u);
}

// ---------------------------------------------------------------------------
// Store-level: per-shard observability and budget leases
// ---------------------------------------------------------------------------

class ShardedAdCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv(&clock_);
    lsm_options_.env = env_.get();
    lsm_options_.block_size = 512;
    lsm_options_.table_file_size = 8 * 1024;
    lsm_options_.memtable_size = 8 * 1024;
    lsm_options_.level1_size_base = 32 * 1024;
    lsm_options_.shard_boundaries = {Key(250), Key(500), Key(750)};
    store_options_.cache_budget = 256 * 1024;
    store_options_.controller.window_size = 200;
    store_options_.controller.pretrain_heuristic = false;
  }

  void Open() {
    ASSERT_TRUE(core::AdCacheStore::Open(store_options_, lsm_options_,
                                         "/adcache-sharded", &store_)
                    .ok());
  }

  SimClock clock_;
  std::unique_ptr<Env> env_;
  lsm::Options lsm_options_;
  core::AdCacheOptions store_options_;
  std::unique_ptr<core::AdCacheStore> store_;
};

// Satellite: kGaugeShardCount + per-shard flush tickers, attributed via the
// shard_id the DB stamps into flush events, and surfaced in the JSON dump.
TEST_F(ShardedAdCacheTest, PerShardFlushAttributionInStatistics) {
  Open();
  core::Statistics* stats = store_->statistics();
  EXPECT_EQ(stats->GetGauge(core::kGaugeShardCount), 4.0);
  ASSERT_EQ(store_->db()->shard_count(), 4);

  // Data only in shards 0 and 2; flush only those shards.
  for (int i = 0; i < 240; i += 2) {
    ASSERT_TRUE(store_->Put(Slice(Key(i)), Slice(Value(i))).ok());
  }
  for (int i = 510; i < 740; i += 2) {
    ASSERT_TRUE(store_->Put(Slice(Key(i)), Slice(Value(i))).ok());
  }
  ASSERT_TRUE(store_->db()->shard(0)->FlushMemTable().ok());
  ASSERT_TRUE(store_->db()->shard(2)->FlushMemTable().ok());

  EXPECT_GT(stats->GetShardTickerCount(0, core::kShardFlushes), 0u);
  EXPECT_GT(stats->GetShardTickerCount(2, core::kShardFlushes), 0u);
  EXPECT_EQ(stats->GetShardTickerCount(1, core::kShardFlushes), 0u);
  EXPECT_EQ(stats->GetShardTickerCount(3, core::kShardFlushes), 0u);
  // Per-shard ticks are attribution of the global ticker, not extra events.
  uint64_t per_shard_total = 0;
  for (int s = 0; s < 4; s++) {
    per_shard_total += stats->GetShardTickerCount(s, core::kShardFlushes);
  }
  EXPECT_EQ(per_shard_total, stats->GetTickerCount(core::kTickerFlushes));

  std::string json = stats->ToJson();
  EXPECT_NE(json.find("\"shards\":[{\"shard\":0"), std::string::npos) << json;
  EXPECT_NE(json.find("adcache.gauge.shard_count"), std::string::npos);
}

// Satellite (tentpole rider): per-shard budget leases. Concentrating misses
// on one shard's key range must earn that shard a larger slice of the range
// cache than an idle shard after a few tuning windows.
TEST_F(ShardedAdCacheTest, LeasesShiftRangeCacheBudgetTowardBusyShards) {
  store_options_.controller.online_learning = false;  // freeze the agent
  // Only ForceWindowEnd closes windows: an automatic window end colliding
  // with the forced one would hand the lease update an empty delta.
  store_options_.controller.window_size = 1 << 20;
  Open();
  // The range cache was aligned to the DB's 4 shards automatically.
  auto* range_cache = store_->dynamic_cache()->range_cache();
  ASSERT_EQ(range_cache->num_shards(), 4u);

  for (int i = 500; i < 750; i++) {
    ASSERT_TRUE(store_->Put(Slice(Key(i)), Slice(Value(i))).ok());
  }
  // Hammer shard 2 (range [500,750)) with point lookups; every first read
  // is a range-cache miss, so shard 2 accumulates traffic and unmet demand.
  for (int round = 0; round < 3; round++) {
    for (int i = 500; i < 750; i++) {
      std::string value;
      ASSERT_TRUE(store_->Get(Slice(Key(i)), &value).ok());
    }
    store_->ForceWindowEnd();
  }
  std::vector<double> leases = store_->dynamic_cache()->range_leases();
  ASSERT_EQ(leases.size(), 4u);
  // Shard 2 out-earns the idle shards by traffic weighting.
  EXPECT_GT(leases[2], leases[0]);
  EXPECT_GT(leases[2], leases[1]);
  EXPECT_GT(leases[2], leases[3]);
  // And the lease physically repartitioned the range cache's capacity.
  if (range_cache->GetCapacity() > 0) {
    EXPECT_GT(range_cache->shard(2)->GetCapacity(),
              range_cache->shard(1)->GetCapacity());
  }
}

// Scans through the store cross DB-shard and range-cache-shard boundaries
// consistently (cache fill happens per range-cache shard segment).
TEST_F(ShardedAdCacheTest, StoreScansCrossShardBoundaries) {
  Open();
  for (int i = 240; i < 520; i++) {
    ASSERT_TRUE(store_->Put(Slice(Key(i)), Slice(Value(i))).ok());
  }
  ASSERT_TRUE(store_->db()->FlushMemTable().ok());
  std::vector<KvPair> results;
  // 245..514 spans shards 0,1,2.
  ASSERT_TRUE(store_->Scan(Slice(Key(245)), 270, &results).ok());
  ASSERT_EQ(results.size(), 270u);
  for (size_t j = 0; j < results.size(); j++) {
    EXPECT_EQ(results[j].key, Key(245 + static_cast<int>(j)));
    EXPECT_EQ(results[j].value, Value(245 + static_cast<int>(j)));
  }
  // Second scan may be served from the range cache; results must match.
  std::vector<KvPair> again;
  ASSERT_TRUE(store_->Scan(Slice(Key(245)), 270, &again).ok());
  ASSERT_EQ(again.size(), 270u);
  EXPECT_EQ(again.front().key, results.front().key);
  EXPECT_EQ(again.back().key, results.back().key);
}

}  // namespace
}  // namespace adcache::lsm
