#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/strategy.h"
#include "util/clock.h"
#include "util/env.h"
#include "workload/generator.h"
#include "workload/runner.h"
#include "workload/workload_spec.h"
#include "workload/zipfian.h"

namespace adcache::workload {
namespace {

TEST(ZipfianTest, RanksWithinBounds) {
  ZipfianGenerator gen(1000, 0.9, 1);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(gen.Next(), 1000u);
  }
}

TEST(ZipfianTest, LowRanksDominate) {
  ZipfianGenerator gen(10000, 0.99, 2);
  uint64_t top10 = 0;
  const int n = 20000;
  for (int i = 0; i < n; i++) {
    if (gen.Next() < 10) top10++;
  }
  // With theta=0.99, the top-10 ranks draw a large share of accesses.
  EXPECT_GT(top10, static_cast<uint64_t>(n / 10));
}

TEST(ZipfianTest, HigherSkewConcentratesMore) {
  auto mass_on_top = [](double theta) {
    ZipfianGenerator gen(10000, theta, 3);
    uint64_t top = 0;
    for (int i = 0; i < 20000; i++) {
      if (gen.Next() < 100) top++;
    }
    return top;
  };
  EXPECT_GT(mass_on_top(1.2), mass_on_top(0.6));
}

TEST(ScrambledZipfianTest, HotKeysScattered) {
  ScrambledZipfianGenerator gen(10000, 0.99, 4);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; i++) counts[gen.Next()]++;
  // Find the hottest key; it should NOT be key 0 region specifically —
  // check the two hottest keys are far apart (scattering).
  uint64_t hottest = 0, second = 0;
  int best = 0, second_best = 0;
  for (auto& [k, c] : counts) {
    if (c > best) {
      second = hottest;
      second_best = best;
      hottest = k;
      best = c;
    } else if (c > second_best) {
      second = k;
      second_best = c;
    }
  }
  uint64_t gap = hottest > second ? hottest - second : second - hottest;
  EXPECT_GT(gap, 10u);
}

TEST(ZipfianTest, SkewAtAndAboveOneIsWellFormed) {
  // Regression: the closed-form YCSB sampler breaks at theta == 1; the
  // inverse-CDF sampler must stay skewed-but-sane there (paper sweeps
  // skewness up to 1.2).
  for (double theta : {1.0, 1.2}) {
    ZipfianGenerator gen(1000, theta, 11);
    std::map<uint64_t, int> counts;
    for (int i = 0; i < 5000; i++) counts[gen.Next()]++;
    EXPECT_GT(counts.size(), 10u) << "degenerate distribution at " << theta;
    EXPECT_GT(counts[0], counts.size() > 500 ? 5 : 50);
  }
}

TEST(ZipfianTest, DeterministicForSeed) {
  ZipfianGenerator a(1000, 0.9, 7);
  ZipfianGenerator b(1000, 0.9, 7);
  for (int i = 0; i < 100; i++) EXPECT_EQ(a.Next(), b.Next());
}

TEST(KeySpaceTest, KeysAreFixedWidthAndOrdered) {
  KeySpace keys;
  keys.key_size = 24;
  EXPECT_EQ(keys.KeyAt(0).size(), 24u);
  EXPECT_EQ(keys.KeyAt(123456).size(), 24u);
  EXPECT_LT(keys.KeyAt(9), keys.KeyAt(10));
  EXPECT_LT(keys.KeyAt(99), keys.KeyAt(100));
}

TEST(KeySpaceTest, ValuesStampedWithIndex) {
  KeySpace keys;
  keys.value_size = 100;
  std::string v = keys.ValueFor(42);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v.substr(0, 4), "v42|");
}

TEST(OperationGeneratorTest, MixProportionsRespected) {
  KeySpace keys;
  keys.num_keys = 1000;
  Phase phase{"test", OpMix{50, 30, 0, 20}, 0, 0.9};
  OperationGenerator gen(phase, keys, 5);
  int gets = 0, scans = 0, writes = 0;
  const int n = 10000;
  for (int i = 0; i < n; i++) {
    Operation op = gen.Next();
    switch (op.type) {
      case Operation::Type::kGet:
        gets++;
        break;
      case Operation::Type::kScan:
        scans++;
        EXPECT_EQ(op.scan_length, kShortScanLength);
        break;
      case Operation::Type::kWrite:
        writes++;
        break;
    }
  }
  EXPECT_NEAR(gets, n * 0.5, n * 0.05);
  EXPECT_NEAR(scans, n * 0.3, n * 0.05);
  EXPECT_NEAR(writes, n * 0.2, n * 0.05);
}

TEST(OperationGeneratorTest, LongScanLengthUsed) {
  KeySpace keys;
  Phase phase{"long", OpMix{0, 0, 100, 0}, 0, 0.9};
  OperationGenerator gen(phase, keys, 6);
  for (int i = 0; i < 100; i++) {
    Operation op = gen.Next();
    ASSERT_EQ(op.type, Operation::Type::kScan);
    EXPECT_EQ(op.scan_length, kLongScanLength);
  }
}

TEST(WorkloadSpecTest, Table3PhasesMatchPaper) {
  auto phases = Table3Phases(1000);
  ASSERT_EQ(phases.size(), 6u);
  EXPECT_EQ(phases[0].name, "A");
  EXPECT_EQ(phases[0].mix.long_scan_pct, 97);
  EXPECT_EQ(phases[3].mix.write_pct, 49);
  EXPECT_EQ(phases[5].mix.write_pct, 75);
  for (const auto& p : phases) {
    EXPECT_EQ(p.mix.get_pct + p.mix.short_scan_pct + p.mix.long_scan_pct +
                  p.mix.write_pct,
              100)
        << p.name;
  }
}

class RunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv(&clock_);
    config_.lsm.env = env_.get();
    config_.lsm.block_size = 512;
    config_.lsm.table_file_size = 16 * 1024;
    config_.lsm.memtable_size = 32 * 1024;
    config_.lsm.level1_size_base = 64 * 1024;
    config_.cache_budget = 64 * 1024;
    config_.dbname = "/runner_db";
    keys_.num_keys = 300;
    keys_.value_size = 64;
    Status s;
    store_ = core::CreateStore("block", config_, &s);
    ASSERT_TRUE(s.ok());
  }

  SimClock clock_;
  std::unique_ptr<Env> env_;
  core::StoreConfig config_;
  KeySpace keys_;
  std::unique_ptr<core::KvStore> store_;
};

TEST_F(RunnerTest, LoadThenRunProducesConsistentCounts) {
  Runner runner(store_.get(), keys_, &clock_);
  ASSERT_TRUE(runner.LoadDatabase().ok());

  Phase phase = BalancedWorkload(2000);
  PhaseResult r = runner.RunPhase(phase, 42);
  EXPECT_EQ(r.ops, 2000u);
  EXPECT_EQ(r.ops, r.point_ops + r.scan_ops + r.write_ops);
  EXPECT_GT(r.point_ops, 0u);
  EXPECT_GT(r.scan_ops, 0u);
  EXPECT_GT(r.write_ops, 0u);
  EXPECT_GT(r.qps, 0.0);
  EXPECT_GE(r.hit_rate, 0.0);
  EXPECT_LE(r.hit_rate, 1.0);
  EXPECT_GT(r.elapsed_sim_micros, 0u);
}

TEST_F(RunnerTest, SecondIdenticalPhaseHasHigherHitRate) {
  Runner runner(store_.get(), keys_, &clock_);
  ASSERT_TRUE(runner.LoadDatabase().ok());
  Phase phase = PointLookupWorkload(3000);
  PhaseResult cold = runner.RunPhase(phase, 7);
  PhaseResult warm = runner.RunPhase(phase, 8);
  EXPECT_GE(warm.hit_rate, cold.hit_rate);
  EXPECT_LE(warm.block_reads, cold.block_reads);
}

TEST_F(RunnerTest, MultiThreadedRunCompletes) {
  Runner runner(store_.get(), keys_, &clock_);
  ASSERT_TRUE(runner.LoadDatabase().ok());
  Runner::RunnerOptions opts;
  opts.num_threads = 4;
  opts.seed = 13;
  Phase phase = PointLookupWorkload(2000);
  PhaseResult r = runner.RunPhase(phase, opts);
  EXPECT_EQ(r.ops, 2000u);
}

}  // namespace
}  // namespace adcache::workload
