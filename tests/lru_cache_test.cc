#include "cache/lru_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace adcache {
namespace {

int g_deleted_count = 0;

void CountingDeleter(const Slice& /*key*/, void* value) {
  g_deleted_count++;
  delete static_cast<int*>(value);
}

class LruCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_deleted_count = 0;
    cache_ = NewLRUCache(1000, 0);  // single shard for determinism
  }

  // Inserts key -> value with charge `charge`.
  void Insert(const std::string& key, int value, size_t charge = 1) {
    Cache::Handle* h =
        cache_->Insert(Slice(key), new int(value), charge, &CountingDeleter);
    cache_->Release(h);
  }

  // Returns -1 on miss.
  int Lookup(const std::string& key) {
    Cache::Handle* h = cache_->Lookup(Slice(key));
    if (h == nullptr) return -1;
    int r = *static_cast<int*>(cache_->Value(h));
    cache_->Release(h);
    return r;
  }

  std::shared_ptr<Cache> cache_;
};

TEST_F(LruCacheTest, InsertAndLookup) {
  Insert("a", 1);
  Insert("b", 2);
  EXPECT_EQ(Lookup("a"), 1);
  EXPECT_EQ(Lookup("b"), 2);
  EXPECT_EQ(Lookup("c"), -1);
}

TEST_F(LruCacheTest, HitMissCounters) {
  Insert("a", 1);
  Lookup("a");
  Lookup("a");
  Lookup("missing");
  EXPECT_EQ(cache_->hits(), 2u);
  EXPECT_EQ(cache_->misses(), 1u);
}

TEST_F(LruCacheTest, OverwriteReplacesValue) {
  Insert("k", 1);
  Insert("k", 2);
  EXPECT_EQ(Lookup("k"), 2);
  EXPECT_EQ(g_deleted_count, 1);  // first value freed
}

TEST_F(LruCacheTest, EvictsLeastRecentlyUsed) {
  for (int i = 0; i < 10; i++) {
    Insert("k" + std::to_string(i), i, 100);  // fills capacity exactly
  }
  // Touch k0 so k1 becomes the LRU victim.
  EXPECT_EQ(Lookup("k0"), 0);
  Insert("new", 99, 100);
  EXPECT_EQ(Lookup("k0"), 0);
  EXPECT_EQ(Lookup("k1"), -1);
  EXPECT_EQ(Lookup("new"), 99);
}

TEST_F(LruCacheTest, UsageTracksCharges) {
  Insert("a", 1, 300);
  Insert("b", 2, 400);
  EXPECT_EQ(cache_->GetUsage(), 700u);
  cache_->Erase(Slice("a"));
  EXPECT_EQ(cache_->GetUsage(), 400u);
}

TEST_F(LruCacheTest, PinnedEntriesSurviveEviction) {
  Cache::Handle* pinned =
      cache_->Insert(Slice("pinned"), new int(7), 600, &CountingDeleter);
  // This would evict "pinned" if it were unpinned; it must survive.
  Insert("big", 8, 600);
  EXPECT_EQ(*static_cast<int*>(cache_->Value(pinned)), 7);
  // Usage can exceed capacity while entries are pinned.
  EXPECT_GE(cache_->GetUsage(), 600u);
  cache_->Release(pinned);
  // After release, inserting more evicts it normally.
  Insert("more", 9, 600);
  EXPECT_EQ(Lookup("pinned"), -1);
}

TEST_F(LruCacheTest, EraseRemovesEntry) {
  Insert("a", 1);
  cache_->Erase(Slice("a"));
  EXPECT_EQ(Lookup("a"), -1);
  EXPECT_EQ(g_deleted_count, 1);
  cache_->Erase(Slice("a"));  // idempotent
}

TEST_F(LruCacheTest, PruneDropsEverythingUnpinned) {
  Insert("a", 1);
  Insert("b", 2);
  Cache::Handle* pinned =
      cache_->Insert(Slice("c"), new int(3), 1, &CountingDeleter);
  cache_->Prune();
  EXPECT_EQ(Lookup("a"), -1);
  EXPECT_EQ(Lookup("b"), -1);
  EXPECT_EQ(*static_cast<int*>(cache_->Value(pinned)), 3);
  cache_->Release(pinned);
}

TEST_F(LruCacheTest, SetCapacityShrinkEvicts) {
  for (int i = 0; i < 5; i++) Insert("k" + std::to_string(i), i, 200);
  cache_->SetCapacity(400);
  EXPECT_LE(cache_->GetUsage(), 400u);
  EXPECT_EQ(Lookup("k4"), 4);  // most recent survives
}

TEST_F(LruCacheTest, ZeroCapacityHoldsNothing) {
  cache_->SetCapacity(0);
  Insert("a", 1, 10);
  EXPECT_EQ(Lookup("a"), -1);
}

TEST_F(LruCacheTest, EntryLargerThanCapacityEvictedImmediately) {
  Insert("huge", 1, 5000);
  EXPECT_EQ(Lookup("huge"), -1);
  EXPECT_EQ(cache_->GetUsage(), 0u);
}

TEST(ShardedLruCacheTest, WorksAcrossShards) {
  auto cache = NewLRUCache(1 << 16, 4);  // 16 shards
  for (int i = 0; i < 1000; i++) {
    std::string key = "key" + std::to_string(i);
    Cache::Handle* h = cache->Insert(
        Slice(key), new int(i), 16,
        [](const Slice&, void* v) { delete static_cast<int*>(v); });
    cache->Release(h);
  }
  int found = 0;
  for (int i = 0; i < 1000; i++) {
    std::string key = "key" + std::to_string(i);
    Cache::Handle* h = cache->Lookup(Slice(key));
    if (h != nullptr) {
      EXPECT_EQ(*static_cast<int*>(cache->Value(h)), i);
      cache->Release(h);
      found++;
    }
  }
  EXPECT_EQ(found, 1000);
}

TEST(ShardedLruCacheTest, MultiLookupAndMultiReleaseAcrossShards) {
  auto cache = NewLRUCache(1 << 16, 4);  // 16 shards
  std::vector<std::string> keys;
  for (int i = 0; i < 64; i++) {
    keys.push_back("key" + std::to_string(i));
    Cache::Handle* h = cache->Insert(
        Slice(keys.back()), new int(i), 16,
        [](const Slice&, void* v) { delete static_cast<int*>(v); });
    cache->Release(h);
  }

  std::vector<Slice> slices;
  slices.reserve(keys.size());
  slices.emplace_back("absent-0");
  for (const auto& k : keys) slices.emplace_back(k);
  slices.emplace_back("absent-1");
  std::vector<Cache::Handle*> handles(slices.size(), nullptr);
  cache->MultiLookup(slices.size(), slices.data(), handles.data());

  EXPECT_EQ(handles.front(), nullptr);
  EXPECT_EQ(handles.back(), nullptr);
  for (int i = 0; i < 64; i++) {
    ASSERT_NE(handles[static_cast<size_t>(i) + 1], nullptr) << i;
    EXPECT_EQ(*static_cast<int*>(
                  cache->Value(handles[static_cast<size_t>(i) + 1])),
              i);
  }

  // MultiRelease drops every pin (skipping the nulls); the entries become
  // evictable again, shown by shrinking the budget to zero.
  cache->MultiRelease(handles.size(), handles.data());
  cache->SetCapacity(0);
  EXPECT_EQ(cache->GetUsage(), 0u);
}

TEST(ShardedLruCacheTest, ConcurrentMixedOperations) {
  auto cache = NewLRUCache(64 * 1024, 3);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; t++) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 2000; i++) {
        std::string key = "key" + std::to_string((t * 31 + i) % 500);
        Cache::Handle* h = cache->Lookup(Slice(key));
        if (h != nullptr) {
          cache->Release(h);
        } else {
          h = cache->Insert(
              Slice(key), new int(i), 64,
              [](const Slice&, void* v) { delete static_cast<int*>(v); });
          cache->Release(h);
        }
        if (i % 97 == 0) cache->Erase(Slice(key));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(cache->GetUsage(), cache->GetCapacity() + 8 * 64);
}

}  // namespace
}  // namespace adcache
