#include "cache/range_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace adcache {
namespace {

std::vector<KvPair> MakeRun(int start, int count) {
  std::vector<KvPair> run;
  for (int i = 0; i < count; i++) {
    char key[16];
    snprintf(key, sizeof(key), "k%04d", start + i);
    run.push_back(KvPair{key, "v" + std::to_string(start + i)});
  }
  return run;
}

std::string K(int i) {
  char key[16];
  snprintf(key, sizeof(key), "k%04d", i);
  return key;
}

class RangeCacheTest : public ::testing::Test {
 protected:
  RangeCacheTest() : cache_(1 << 20, NewLruPolicy()) {}

  RangeCache cache_;
};

TEST_F(RangeCacheTest, PointRoundTrip) {
  cache_.PutPoint(Slice("a"), Slice("1"));
  std::string value;
  EXPECT_TRUE(cache_.Get(Slice("a"), &value));
  EXPECT_EQ(value, "1");
  EXPECT_FALSE(cache_.Get(Slice("b"), &value));
  EXPECT_EQ(cache_.hits(), 1u);
  EXPECT_EQ(cache_.misses(), 1u);
}

TEST_F(RangeCacheTest, FullScanHitAfterPutScan) {
  auto run = MakeRun(10, 8);
  cache_.PutScan(Slice(K(10)), run, run.size());
  std::vector<KvPair> out;
  EXPECT_TRUE(cache_.GetScan(Slice(K(10)), 8, &out));
  ASSERT_EQ(out.size(), 8u);
  for (int i = 0; i < 8; i++) {
    EXPECT_EQ(out[static_cast<size_t>(i)].key, K(10 + i));
    EXPECT_EQ(out[static_cast<size_t>(i)].value,
              "v" + std::to_string(10 + i));
  }
}

TEST_F(RangeCacheTest, PrefixOfCachedScanHits) {
  cache_.PutScan(Slice(K(10)), MakeRun(10, 8), 8);
  std::vector<KvPair> out;
  EXPECT_TRUE(cache_.GetScan(Slice(K(10)), 4, &out));
  EXPECT_EQ(out.size(), 4u);
}

TEST_F(RangeCacheTest, LongerThanCachedScanMisses) {
  cache_.PutScan(Slice(K(10)), MakeRun(10, 8), 8);
  std::vector<KvPair> out;
  EXPECT_FALSE(cache_.GetScan(Slice(K(10)), 9, &out));
  EXPECT_TRUE(out.empty());
}

TEST_F(RangeCacheTest, SeekBeforeCoveredRangeMisses) {
  // Scan was seeded at k0010; a seek at k0005 cannot assume k0010 is the
  // first DB result.
  cache_.PutScan(Slice(K(10)), MakeRun(10, 8), 8);
  std::vector<KvPair> out;
  EXPECT_FALSE(cache_.GetScan(Slice(K(5)), 4, &out));
}

TEST_F(RangeCacheTest, SeekInsideCoveredRangeHits) {
  cache_.PutScan(Slice(K(10)), MakeRun(10, 8), 8);
  std::vector<KvPair> out;
  // k0013 is itself cached and chained: a scan from it is covered.
  EXPECT_TRUE(cache_.GetScan(Slice(K(13)), 5, &out));
  EXPECT_EQ(out.front().key, K(13));
}

TEST_F(RangeCacheTest, SeekBetweenKeysCoveredByCoversFrom) {
  cache_.PutScan(Slice(K(10)), MakeRun(10, 8), 8);
  std::vector<KvPair> out;
  // The insert recorded coverage from exactly K(10); a seek at K(10)+"x"
  // lands on k0011 which only covers from its own key, so: covered.
  EXPECT_TRUE(cache_.GetScan(Slice(K(10) + "x"), 3, &out));
  EXPECT_EQ(out.front().key, K(11));
}

TEST_F(RangeCacheTest, PointLookupsDoNotFormChains) {
  cache_.PutPoint(Slice(K(1)), Slice("a"));
  cache_.PutPoint(Slice(K(2)), Slice("b"));
  std::vector<KvPair> out;
  // Both keys cached but never observed adjacent: a scan of 2 must miss.
  EXPECT_FALSE(cache_.GetScan(Slice(K(1)), 2, &out));
  EXPECT_TRUE(cache_.GetScan(Slice(K(1)), 1, &out));
}

TEST_F(RangeCacheTest, PartialAdmissionLimitsNewEntries) {
  cache_.PutScan(Slice(K(0)), MakeRun(0, 64), 10);
  EXPECT_EQ(cache_.EntryCount(), 10u);
  std::vector<KvPair> out;
  EXPECT_TRUE(cache_.GetScan(Slice(K(0)), 10, &out));
  EXPECT_FALSE(cache_.GetScan(Slice(K(0)), 11, &out));
}

TEST_F(RangeCacheTest, OverlappingScansExtendCoverage) {
  // Two partial admissions of the same scan gradually cache the range
  // (paper: "overlapping scans naturally accelerate this process").
  auto run = MakeRun(0, 20);
  cache_.PutScan(Slice(K(0)), run, 10);
  EXPECT_EQ(cache_.EntryCount(), 10u);
  cache_.PutScan(Slice(K(0)), run, 10);
  EXPECT_EQ(cache_.EntryCount(), 20u);
  std::vector<KvPair> out;
  EXPECT_TRUE(cache_.GetScan(Slice(K(0)), 20, &out));
}

TEST_F(RangeCacheTest, WriteToCachedKeyRefreshesValue) {
  cache_.PutScan(Slice(K(0)), MakeRun(0, 4), 4);
  cache_.InvalidateWrite(Slice(K(2)), Slice("fresh"));
  std::vector<KvPair> out;
  ASSERT_TRUE(cache_.GetScan(Slice(K(0)), 4, &out));
  EXPECT_EQ(out[2].value, "fresh");
}

TEST_F(RangeCacheTest, NewKeyBreaksAdjacency) {
  cache_.PutScan(Slice(K(0)), MakeRun(0, 4), 4);  // k0000..k0003 chained
  // A brand-new DB key between k0001 and k0002 falsifies the chain.
  cache_.InvalidateWrite(Slice(K(1) + "x"), Slice("new"));
  std::vector<KvPair> out;
  EXPECT_FALSE(cache_.GetScan(Slice(K(0)), 4, &out));
  // The prefix before the break still serves.
  EXPECT_TRUE(cache_.GetScan(Slice(K(0)), 2, &out));
}

TEST_F(RangeCacheTest, NewKeyTightensCoverage) {
  cache_.PutScan(Slice(K(10)), MakeRun(10, 4), 4);
  cache_.InvalidateWrite(Slice(K(9) + "zz"), Slice("new"));
  std::vector<KvPair> out;
  // A seek at the exact old coverage start must now miss (the new key
  // should be the first result).
  EXPECT_FALSE(cache_.GetScan(Slice(K(9) + "z"), 2, &out));
  // Seeks at the first cached key itself still hit.
  EXPECT_TRUE(cache_.GetScan(Slice(K(10)), 2, &out));
}

TEST_F(RangeCacheTest, DeleteOfChainedKeyPreservesOuterChain) {
  cache_.PutScan(Slice(K(0)), MakeRun(0, 4), 4);
  cache_.InvalidateDelete(Slice(K(1)));
  std::vector<KvPair> out;
  // After deleting k0001 from the DB, k0000's successor is k0002, and both
  // remain cached and chained: a 3-entry scan hits.
  ASSERT_TRUE(cache_.GetScan(Slice(K(0)), 3, &out));
  EXPECT_EQ(out[0].key, K(0));
  EXPECT_EQ(out[1].key, K(2));
  EXPECT_EQ(out[2].key, K(3));
}

TEST_F(RangeCacheTest, DeleteRemovesPointEntry) {
  cache_.PutPoint(Slice("a"), Slice("1"));
  cache_.InvalidateDelete(Slice("a"));
  std::string value;
  EXPECT_FALSE(cache_.Get(Slice("a"), &value));
}

TEST_F(RangeCacheTest, EvictionBreaksChainsSafely) {
  RangeCache small(600, NewLruPolicy());  // fits ~6 small entries
  small.PutScan(Slice(K(0)), MakeRun(0, 16), 16);
  EXPECT_LE(small.GetUsage(), 600u);
  EXPECT_LT(small.EntryCount(), 16u);
  // Whatever survived must never produce an inconsistent scan result.
  std::vector<KvPair> out;
  if (small.GetScan(Slice(K(0)), 2, &out)) {
    EXPECT_EQ(out[0].key, K(0));
    EXPECT_EQ(out[1].key, K(1));
  }
}

TEST_F(RangeCacheTest, SetCapacityShrinksUsage) {
  cache_.PutScan(Slice(K(0)), MakeRun(0, 100), 100);
  size_t before = cache_.EntryCount();
  cache_.SetCapacity(1024);
  EXPECT_LE(cache_.GetUsage(), 1024u);
  EXPECT_LT(cache_.EntryCount(), before);
}

TEST_F(RangeCacheTest, ZeroCapacityHoldsNothing) {
  RangeCache zero(0, NewLruPolicy());
  zero.PutPoint(Slice("a"), Slice("1"));
  EXPECT_EQ(zero.EntryCount(), 0u);
  std::string value;
  EXPECT_FALSE(zero.Get(Slice("a"), &value));
}

TEST_F(RangeCacheTest, ClearEmptiesEverything) {
  cache_.PutScan(Slice(K(0)), MakeRun(0, 10), 10);
  cache_.Clear();
  EXPECT_EQ(cache_.EntryCount(), 0u);
  EXPECT_EQ(cache_.GetUsage(), 0u);
  std::vector<KvPair> out;
  EXPECT_FALSE(cache_.GetScan(Slice(K(0)), 1, &out));
}

TEST_F(RangeCacheTest, GetScanZeroLengthTriviallyHits) {
  std::vector<KvPair> out;
  EXPECT_TRUE(cache_.GetScan(Slice("anything"), 0, &out));
  EXPECT_TRUE(out.empty());
}

TEST_F(RangeCacheTest, ConcurrentMixedAccess) {
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([this, t] {
      std::string value;
      std::vector<KvPair> out;
      for (int i = 0; i < 500; i++) {
        int base = (t * 13 + i) % 100;
        cache_.PutScan(Slice(K(base)), MakeRun(base, 8), 8);
        cache_.GetScan(Slice(K(base)), 4, &out);
        cache_.Get(Slice(K(base)), &value);
        if (i % 10 == 0) cache_.InvalidateWrite(Slice(K(base)), Slice("w"));
        if (i % 23 == 0) cache_.InvalidateDelete(Slice(K(base + 1)));
      }
    });
  }
  for (auto& t : threads) t.join();
  SUCCEED();
}

TEST(ShardedRangeCacheTest, RoutesByKeyRange) {
  std::vector<std::string> boundaries = {K(100), K(200)};
  ShardedRangeCache cache(3 << 20, boundaries,
                          [](uint64_t) { return NewLruPolicy(); });
  EXPECT_EQ(cache.num_shards(), 3u);
  cache.PutPoint(Slice(K(50)), Slice("s0"));
  cache.PutPoint(Slice(K(150)), Slice("s1"));
  cache.PutPoint(Slice(K(250)), Slice("s2"));
  std::string value;
  EXPECT_TRUE(cache.Get(Slice(K(50)), &value));
  EXPECT_EQ(value, "s0");
  EXPECT_TRUE(cache.Get(Slice(K(150)), &value));
  EXPECT_EQ(value, "s1");
  EXPECT_TRUE(cache.Get(Slice(K(250)), &value));
  EXPECT_EQ(value, "s2");
}

TEST(ShardedRangeCacheTest, ScanWithinOneShardHits) {
  std::vector<std::string> boundaries = {K(100)};
  ShardedRangeCache cache(2 << 20, boundaries,
                          [](uint64_t) { return NewLruPolicy(); });
  cache.PutScan(Slice(K(10)), MakeRun(10, 8), 8);
  std::vector<KvPair> out;
  EXPECT_TRUE(cache.GetScan(Slice(K(10)), 8, &out));
  EXPECT_EQ(out.size(), 8u);
}

TEST(ShardedRangeCacheTest, ScanCrossingBoundaryIsStitched) {
  std::vector<std::string> boundaries = {K(100)};
  ShardedRangeCache cache(2 << 20, boundaries,
                          [](uint64_t) { return NewLruPolicy(); });
  // Run spans the boundary: k0096..k0103, split into per-shard chains.
  cache.PutScan(Slice(K(96)), MakeRun(96, 8), 8);
  std::vector<KvPair> out;
  // Within the first shard: fine.
  EXPECT_TRUE(cache.GetScan(Slice(K(96)), 4, &out));
  // Crossing the boundary: served by stitching the per-shard chains (the
  // continuation segment's coverage claim spans the boundary gap).
  EXPECT_TRUE(cache.GetScan(Slice(K(96)), 8, &out));
  ASSERT_EQ(out.size(), 8u);
  for (int i = 0; i < 8; i++) EXPECT_EQ(out[static_cast<size_t>(i)].key, K(96 + i));
  // The second shard serves its own segment directly.
  EXPECT_TRUE(cache.GetScan(Slice(K(100)), 4, &out));
  // But a seek below the recorded run still misses: nothing proves coverage
  // of [k0090, k0096).
  EXPECT_FALSE(cache.GetScan(Slice(K(90)), 4, &out));
}

// Regression: a stitched PutScan records a cross-boundary continuation
// claim (the next shard's leading covers_from reaches back into the
// previous shard's key range). A write landing in that gap has no cached
// entry at/after it in its own shard, so the repair must propagate to the
// next shard — otherwise a later stitched scan serves the next shard's
// entry and silently skips the new key.
TEST(ShardedRangeCacheTest, WriteIntoCrossShardGapBreaksStitchedClaim) {
  std::vector<std::string> boundaries = {K(100)};
  ShardedRangeCache cache(2 << 20, boundaries,
                          [](uint64_t) { return NewLruPolicy(); });
  // DB scan observed k0090 and k0110 back to back; shard 1's k0110 carries
  // a claim spanning the boundary gap (k0090, k0110).
  cache.PutScan(Slice(K(90)), {{K(90), "a"}, {K(110), "b"}}, 2);
  std::vector<KvPair> out;
  ASSERT_TRUE(cache.GetScan(Slice(K(90)), 2, &out));

  // New DB key in the gap: shard 0 holds nothing at/after it.
  cache.InvalidateWrite(Slice(K(95)), Slice("new"));

  // A seek into the gap must now miss — serving k0110 would skip k0095.
  EXPECT_FALSE(cache.GetScan(Slice(K(92)), 1, &out));
  // The stitched claim is clipped, not destroyed: from just past the new
  // key the continuation is still provably the next DB result.
  EXPECT_TRUE(cache.GetScan(Slice(K(96)), 1, &out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].key, K(110));
}

// Same gap-write scenario with an entirely-empty shard between writer and
// claim holder: the repair walks forward to the first non-empty shard.
TEST(ShardedRangeCacheTest, GapWriteRepairSkipsEmptyShards) {
  std::vector<std::string> boundaries = {K(100), K(200)};
  ShardedRangeCache cache(3 << 20, boundaries,
                          [](uint64_t) { return NewLruPolicy(); });
  // Run jumps from shard 0 straight to shard 2; shard 1 stays empty and
  // shard 2's k0210 claims coverage all the way back to k0090.
  cache.PutScan(Slice(K(90)), {{K(90), "a"}, {K(210), "b"}}, 2);
  std::vector<KvPair> out;
  ASSERT_TRUE(cache.GetScan(Slice(K(90)), 2, &out));

  cache.InvalidateWrite(Slice(K(95)), Slice("new"));
  EXPECT_FALSE(cache.GetScan(Slice(K(92)), 1, &out));

  // A write inside the empty middle shard's range must break the claim too.
  cache.InvalidateWrite(Slice(K(150)), Slice("new"));
  EXPECT_FALSE(cache.GetScan(Slice(K(96)), 1, &out));
}

// PutPoint's defensive repair also crosses the boundary when the admitted
// key becomes its shard's largest entry.
TEST(ShardedRangeCacheTest, TailPointAdmitClipsNextShardClaim) {
  std::vector<std::string> boundaries = {K(100)};
  ShardedRangeCache cache(2 << 20, boundaries,
                          [](uint64_t) { return NewLruPolicy(); });
  cache.PutScan(Slice(K(90)), {{K(90), "a"}, {K(110), "b"}}, 2);
  // k0095 is a real DB key (point-lookup result) sitting in the gap.
  cache.PutPoint(Slice(K(95)), Slice("p"));
  std::vector<KvPair> out;
  // Nothing proves [k0092, k0095) is empty anymore.
  EXPECT_FALSE(cache.GetScan(Slice(K(92)), 2, &out));
  // From the admitted key itself the clipped claim still stitches.
  EXPECT_TRUE(cache.GetScan(Slice(K(95)), 2, &out));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].key, K(95));
  EXPECT_EQ(out[1].key, K(110));
}

// A stitched scan is ONE logical lookup: it must settle exactly one hit
// (credited to the shard owning the seek) however many shards contribute,
// so the aggregate hit rate feeding the controller's h_est matches the N=1
// accounting.
TEST(ShardedRangeCacheTest, StitchedScanSettlesOneHit) {
  std::vector<std::string> boundaries = {K(100)};
  ShardedRangeCache cache(2 << 20, boundaries,
                          [](uint64_t) { return NewLruPolicy(); });
  cache.PutScan(Slice(K(96)), MakeRun(96, 8), 8);
  EXPECT_EQ(cache.hits(), 0u);
  std::vector<KvPair> out;
  // Spans both shards: one hit total, on the seek's owner shard.
  ASSERT_TRUE(cache.GetScan(Slice(K(96)), 8, &out));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.shard(0)->hits(), 1u);
  EXPECT_EQ(cache.shard(1)->hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  // A stitched miss stays one miss, on the shard owning the failing seek.
  EXPECT_FALSE(cache.GetScan(Slice(K(90)), 4, &out));
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(ShardedRangeCacheTest, ConcurrentClients) {
  std::vector<std::string> boundaries = {K(250), K(500), K(750)};
  ShardedRangeCache cache(4 << 20, boundaries,
                          [](uint64_t) { return NewLruPolicy(); });
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; t++) {
    threads.emplace_back([&cache, t] {
      std::vector<KvPair> out;
      std::string value;
      for (int i = 0; i < 300; i++) {
        int base = (t * 137 + i * 7) % 900;
        cache.PutScan(Slice(K(base)), MakeRun(base, 8), 8);
        cache.GetScan(Slice(K(base)), 8, &out);
        cache.Get(Slice(K(base + 3)), &value);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GT(cache.hits() + cache.misses(), 0u);
}

}  // namespace
}  // namespace adcache
