#include "util/options_env.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

namespace adcache::util {
namespace {

/// Sets an env var for the duration of one scope, restoring the prior
/// value (or unsetting) on exit so tests can't leak into each other.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* prev = std::getenv(name);
    if (prev != nullptr) {
      had_prev_ = true;
      prev_ = prev;
    }
    if (value != nullptr) {
      setenv(name, value, 1);
    } else {
      unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_prev_) {
      setenv(name_.c_str(), prev_.c_str(), 1);
    } else {
      unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  bool had_prev_ = false;
  std::string prev_;
};

constexpr const char* kVar = "ADCACHE_OPTIONS_ENV_TEST_VAR";

TEST(OptionsEnvTest, StringUnsetAndEmptyAreNullopt) {
  ScopedEnv unset(kVar, nullptr);
  EXPECT_FALSE(OptionsFromEnv::String(kVar).has_value());
  ScopedEnv empty(kVar, "");
  EXPECT_FALSE(OptionsFromEnv::String(kVar).has_value());
}

TEST(OptionsEnvTest, StringReturnsRawValue) {
  ScopedEnv set(kVar, "clock");
  auto v = OptionsFromEnv::String(kVar);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "clock");
}

TEST(OptionsEnvTest, IntParsesAndFallsBack) {
  {
    ScopedEnv set(kVar, "12");
    EXPECT_EQ(OptionsFromEnv::Int(kVar, 4), 12);
  }
  {
    ScopedEnv set(kVar, "-3");
    EXPECT_EQ(OptionsFromEnv::Int(kVar, 4), -3);
  }
  {
    ScopedEnv set(kVar, "twelve");
    EXPECT_EQ(OptionsFromEnv::Int(kVar, 4), 4);
  }
  {
    ScopedEnv unset(kVar, nullptr);
    EXPECT_EQ(OptionsFromEnv::Int(kVar, 4), 4);
  }
}

TEST(OptionsEnvTest, FlagAcceptsCommonSpellings) {
  for (const char* t : {"1", "true", "TRUE", "on", "On", "yes"}) {
    ScopedEnv set(kVar, t);
    EXPECT_TRUE(OptionsFromEnv::Flag(kVar, false)) << t;
  }
  for (const char* f : {"0", "false", "off", "OFF", "no"}) {
    ScopedEnv set(kVar, f);
    EXPECT_FALSE(OptionsFromEnv::Flag(kVar, true)) << f;
  }
  {
    ScopedEnv set(kVar, "maybe");
    EXPECT_TRUE(OptionsFromEnv::Flag(kVar, true));
    EXPECT_FALSE(OptionsFromEnv::Flag(kVar, false));
  }
}

TEST(OptionsEnvTest, BytesParsesSuffixes) {
  {
    ScopedEnv set(kVar, "8388608");
    EXPECT_EQ(OptionsFromEnv::Bytes(kVar, 1), 8388608u);
  }
  {
    ScopedEnv set(kVar, "8m");
    EXPECT_EQ(OptionsFromEnv::Bytes(kVar, 1), 8ull << 20);
  }
  {
    ScopedEnv set(kVar, "512K");
    EXPECT_EQ(OptionsFromEnv::Bytes(kVar, 1), 512ull << 10);
  }
  {
    ScopedEnv set(kVar, "2g");
    EXPECT_EQ(OptionsFromEnv::Bytes(kVar, 1), 2ull << 30);
  }
  {
    ScopedEnv set(kVar, "0");
    EXPECT_EQ(OptionsFromEnv::Bytes(kVar, 7), 0u);
  }
  {
    ScopedEnv set(kVar, "garbage");
    EXPECT_EQ(OptionsFromEnv::Bytes(kVar, 7), 7u);
  }
  {
    ScopedEnv unset(kVar, nullptr);
    EXPECT_EQ(OptionsFromEnv::Bytes(kVar, 7), 7u);
  }
}

TEST(OptionsEnvTest, ParseBytesGrammar) {
  EXPECT_EQ(OptionsFromEnv::ParseBytes("64"), std::optional<uint64_t>(64));
  EXPECT_EQ(OptionsFromEnv::ParseBytes("4k"),
            std::optional<uint64_t>(4ull << 10));
  EXPECT_EQ(OptionsFromEnv::ParseBytes("32M"),
            std::optional<uint64_t>(32ull << 20));
  EXPECT_EQ(OptionsFromEnv::ParseBytes("1G"),
            std::optional<uint64_t>(1ull << 30));
  EXPECT_FALSE(OptionsFromEnv::ParseBytes("").has_value());
  EXPECT_FALSE(OptionsFromEnv::ParseBytes("m").has_value());
  EXPECT_FALSE(OptionsFromEnv::ParseBytes("12q").has_value());
  EXPECT_FALSE(OptionsFromEnv::ParseBytes("-5").has_value());
}

TEST(OptionsEnvTest, CsvSplitsAndDropsEmptySegments) {
  {
    ScopedEnv set(kVar, "a,b,c");
    auto v = OptionsFromEnv::Csv(kVar);
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], "a");
    EXPECT_EQ(v[2], "c");
  }
  {
    ScopedEnv set(kVar, ",key1,,key2,");
    auto v = OptionsFromEnv::Csv(kVar);
    ASSERT_EQ(v.size(), 2u);
    EXPECT_EQ(v[0], "key1");
    EXPECT_EQ(v[1], "key2");
  }
  {
    ScopedEnv unset(kVar, nullptr);
    EXPECT_TRUE(OptionsFromEnv::Csv(kVar).empty());
  }
}

}  // namespace
}  // namespace adcache::util
