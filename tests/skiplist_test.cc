#include "lsm/skiplist.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "util/arena.h"
#include "util/random.h"

namespace adcache::lsm {
namespace {

struct IntComparator {
  int operator()(uint64_t a, uint64_t b) const {
    if (a < b) return -1;
    if (a > b) return +1;
    return 0;
  }
};

using IntSkipList = SkipList<uint64_t, IntComparator>;

TEST(SkipListTest, EmptyList) {
  Arena arena;
  IntSkipList list(IntComparator(), &arena);
  EXPECT_FALSE(list.Contains(10));
  IntSkipList::Iterator iter(&list);
  EXPECT_FALSE(iter.Valid());
  iter.SeekToFirst();
  EXPECT_FALSE(iter.Valid());
  iter.Seek(100);
  EXPECT_FALSE(iter.Valid());
  iter.SeekToLast();
  EXPECT_FALSE(iter.Valid());
}

TEST(SkipListTest, InsertAndContains) {
  Arena arena;
  IntSkipList list(IntComparator(), &arena);
  std::set<uint64_t> keys;
  Random rng(2024);
  for (int i = 0; i < 2000; i++) {
    uint64_t key = rng.Uniform(5000);
    if (keys.insert(key).second) list.Insert(key);
  }
  for (uint64_t k = 0; k < 5000; k++) {
    EXPECT_EQ(list.Contains(k), keys.count(k) > 0) << k;
  }
}

TEST(SkipListTest, IterationMatchesSortedOrder) {
  Arena arena;
  IntSkipList list(IntComparator(), &arena);
  std::set<uint64_t> keys;
  Random rng(7);
  for (int i = 0; i < 1000; i++) {
    uint64_t key = rng.Uniform(100000);
    if (keys.insert(key).second) list.Insert(key);
  }
  IntSkipList::Iterator iter(&list);
  auto expected = keys.begin();
  for (iter.SeekToFirst(); iter.Valid(); iter.Next()) {
    ASSERT_NE(expected, keys.end());
    EXPECT_EQ(iter.key(), *expected);
    ++expected;
  }
  EXPECT_EQ(expected, keys.end());
}

TEST(SkipListTest, SeekLandsOnLowerBound) {
  Arena arena;
  IntSkipList list(IntComparator(), &arena);
  for (uint64_t k = 0; k < 1000; k += 10) list.Insert(k);
  IntSkipList::Iterator iter(&list);
  iter.Seek(55);
  ASSERT_TRUE(iter.Valid());
  EXPECT_EQ(iter.key(), 60u);
  iter.Seek(60);
  ASSERT_TRUE(iter.Valid());
  EXPECT_EQ(iter.key(), 60u);
  iter.Seek(991);
  EXPECT_FALSE(iter.Valid());
}

TEST(SkipListTest, PrevAndSeekToLast) {
  Arena arena;
  IntSkipList list(IntComparator(), &arena);
  for (uint64_t k = 1; k <= 100; k++) list.Insert(k);
  IntSkipList::Iterator iter(&list);
  iter.SeekToLast();
  ASSERT_TRUE(iter.Valid());
  EXPECT_EQ(iter.key(), 100u);
  for (uint64_t expected = 99; expected >= 1; expected--) {
    iter.Prev();
    ASSERT_TRUE(iter.Valid());
    EXPECT_EQ(iter.key(), expected);
  }
  iter.Prev();
  EXPECT_FALSE(iter.Valid());
}

TEST(SkipListTest, ConcurrentReadersWithSingleWriter) {
  Arena arena;
  IntSkipList list(IntComparator(), &arena);
  std::atomic<uint64_t> published{0};
  std::atomic<bool> failed{false};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; t++) {
    readers.emplace_back([&] {
      while (published.load(std::memory_order_acquire) < 5000) {
        uint64_t upto = published.load(std::memory_order_acquire);
        // Every key <= published must be visible.
        for (uint64_t k = 1; k <= upto; k += 97) {
          if (!list.Contains(k)) {
            failed.store(true);
            return;
          }
        }
      }
    });
  }
  for (uint64_t k = 1; k <= 5000; k++) {
    list.Insert(k);
    published.store(k, std::memory_order_release);
  }
  for (auto& r : readers) r.join();
  EXPECT_FALSE(failed.load());
}

}  // namespace
}  // namespace adcache::lsm
