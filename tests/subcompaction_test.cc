// Tests for parallel subcompactions: output equivalence against the serial
// path under live snapshots, atomic abort on mid-job failures, overlapped
// flush/compaction with reopen recovery, and writer/CompactAll races.
// Run with -DADCACHE_SANITIZE=thread to check the locking discipline.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "lsm/db.h"
#include "util/clock.h"

namespace adcache::lsm {
namespace {

std::string TestKey(int i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "key-%06d", i);
  return buf;
}

std::string TestValue(int i, int round) {
  char buf[64];
  snprintf(buf, sizeof(buf), "val-%06d-r%04d-%030d", i, round, 0);
  return buf;
}

/// Full logical content of the DB as key -> value (via an iterator dump).
std::map<std::string, std::string> Dump(DB* db) {
  std::map<std::string, std::string> out;
  std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    out[it->key().ToString()] = it->value().ToString();
  }
  return out;
}

std::set<std::string> ListSstFiles(Env* env, const std::string& dbname) {
  std::vector<std::string> children;
  EXPECT_TRUE(env->GetChildren(dbname, &children).ok());
  std::set<std::string> ssts;
  for (const auto& f : children) {
    if (f.size() > 4 && f.compare(f.size() - 4, 4, ".sst") == 0) {
      ssts.insert(f);
    }
  }
  return ssts;
}

class SubcompactionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv(&clock_);
    options_.env = env_.get();
    // Small sizes force flush/compaction churn and multi-block tables so
    // the boundary picker has index anchors to split on.
    options_.block_size = 512;
    options_.table_file_size = 8 * 1024;
    options_.memtable_size = 8 * 1024;
    options_.level1_size_base = 32 * 1024;
  }

  SimClock clock_;
  std::unique_ptr<Env> env_;
  Options options_;
};

// The same deterministic workload (overwrites + deletes, one snapshot held
// live across compactions) must produce identical logical content whether
// compactions run serially or split into 4 subcompactions — both at the
// latest sequence and through the live snapshot.
TEST_F(SubcompactionTest, ParallelOutputMatchesSerialUnderLiveSnapshot) {
  constexpr int kKeys = 120;
  constexpr int kRounds = 8;
  constexpr int kSnapshotRound = 3;

  struct Run {
    std::unique_ptr<DB> db;
    const Snapshot* snap = nullptr;
  };
  auto run_workload = [&](const std::string& name, int subcompactions,
                          Run* run) {
    Options o = options_;
    o.max_subcompactions = subcompactions;
    ASSERT_TRUE(DB::Open(o, name, &run->db).ok());
    for (int round = 0; round < kRounds; round++) {
      for (int i = 0; i < kKeys; i++) {
        if (round > 0 && (i + round) % 7 == 0) {
          ASSERT_TRUE(
              run->db->Delete(WriteOptions(), Slice(TestKey(i))).ok());
        } else {
          ASSERT_TRUE(run->db
                          ->Put(WriteOptions(), Slice(TestKey(i)),
                                Slice(TestValue(i, round)))
                          .ok());
        }
      }
      if (round == kSnapshotRound) run->snap = run->db->GetSnapshot();
    }
    ASSERT_TRUE(run->db->FlushMemTable().ok());
    ASSERT_TRUE(run->db->CompactAll().ok());
  };

  Run serial, parallel;
  run_workload("/db-serial", 1, &serial);
  run_workload("/db-parallel", 4, &parallel);

  // Identical write sequences allocate identical sequence numbers, so the
  // two snapshots see the same point in time.
  EXPECT_EQ(Dump(serial.db.get()), Dump(parallel.db.get()));
  ReadOptions at_serial_snap, at_parallel_snap;
  at_serial_snap.snapshot = serial.snap;
  at_parallel_snap.snapshot = parallel.snap;
  for (int i = 0; i < kKeys; i++) {
    std::string sv = "<absent>", pv = "<absent>";
    Status ss = serial.db->Get(at_serial_snap, Slice(TestKey(i)), &sv);
    Status ps = parallel.db->Get(at_parallel_snap, Slice(TestKey(i)), &pv);
    EXPECT_EQ(ss.ok(), ps.ok()) << TestKey(i);
    EXPECT_EQ(sv, pv) << TestKey(i);
  }

  // The serial run must not fan out; the parallel run must have actually
  // split at least one compaction.
  DB::MaintenanceStats serial_stats = serial.db->GetMaintenanceStats();
  DB::MaintenanceStats parallel_stats = parallel.db->GetMaintenanceStats();
  ASSERT_GT(serial_stats.compactions, 0u);
  EXPECT_EQ(serial_stats.subcompactions, serial_stats.compactions);
  ASSERT_GT(parallel_stats.compactions, 0u);
  EXPECT_GT(parallel_stats.subcompactions, parallel_stats.compactions);
  EXPECT_GT(parallel_stats.compact_read_bytes, 0u);
  EXPECT_GT(parallel_stats.compact_write_bytes, 0u);

  serial.db->ReleaseSnapshot(serial.snap);
  parallel.db->ReleaseSnapshot(parallel.snap);
}

/// Counts .sst creations after Arm(allow): the first `allow` succeed, the
/// rest fail. Lets a flush through while compaction outputs fail mid-job.
class SstFailEnv : public Env {
 public:
  explicit SstFailEnv(Env* base) : Env(base->clock()), base_(base) {}

  void Arm(int allow) {
    std::lock_guard<std::mutex> l(mu_);
    armed_ = true;
    allow_ = allow;
  }
  void Disarm() {
    std::lock_guard<std::mutex> l(mu_);
    armed_ = false;
  }
  int failures() {
    std::lock_guard<std::mutex> l(mu_);
    return failures_;
  }

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    if (fname.size() > 4 && fname.compare(fname.size() - 4, 4, ".sst") == 0) {
      std::lock_guard<std::mutex> l(mu_);
      if (armed_ && allow_-- <= 0) {
        failures_++;
        return Status::IOError("injected sst creation failure");
      }
    }
    return base_->NewWritableFile(fname, result);
  }
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    return base_->NewSequentialFile(fname, result);
  }
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    return base_->NewRandomAccessFile(fname, result);
  }
  Status RemoveFile(const std::string& fname) override {
    return base_->RemoveFile(fname);
  }
  Status CreateDirIfMissing(const std::string& dirname) override {
    return base_->CreateDirIfMissing(dirname);
  }
  Status GetChildren(const std::string& dirname,
                     std::vector<std::string>* result) override {
    return base_->GetChildren(dirname, result);
  }
  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }

 private:
  Env* base_;
  std::mutex mu_;
  bool armed_ = false;
  int allow_ = 0;
  int failures_ = 0;
};

// A subcompaction that fails mid-job must abort the whole compaction
// atomically: no partial outputs installed, no orphaned temp SSTs left on
// disk, inputs untouched — and the job must succeed once the fault clears.
TEST_F(SubcompactionTest, MidJobFailureAbortsWithoutPartialOutputs) {
  SstFailEnv fail_env(env_.get());
  options_.env = &fail_env;
  options_.max_subcompactions = 4;
  options_.l0_compaction_trigger = 6;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options_, "/db", &db).ok());

  // Five L0 files: one short of the compaction trigger.
  constexpr int kKeysPerFile = 30;
  for (int file = 0; file < 5; file++) {
    for (int i = 0; i < kKeysPerFile; i++) {
      ASSERT_TRUE(db->Put(WriteOptions(), Slice(TestKey(i)),
                          Slice(TestValue(i, file)))
                      .ok());
    }
    ASSERT_TRUE(db->FlushMemTable().ok());
  }
  ASSERT_EQ(db->GetLsmShape().l0_files, 5);
  const std::set<std::string> before = ListSstFiles(&fail_env, "/db");

  // Allow the sixth flush's SST plus one compaction output, then fail:
  // the job dies with one subrange's partial output already on disk.
  fail_env.Arm(/*allow=*/2);
  for (int i = 0; i < kKeysPerFile; i++) {
    ASSERT_TRUE(
        db->Put(WriteOptions(), Slice(TestKey(i)), Slice(TestValue(i, 5)))
            .ok());
  }
  Status s = db->FlushMemTable();  // drives flush + the failing compaction
  EXPECT_FALSE(s.ok());
  EXPECT_GT(fail_env.failures(), 0);

  // The aborted job deleted everything it created: exactly the one new
  // flush file appeared, all six inputs still in place.
  const std::set<std::string> after = ListSstFiles(&fail_env, "/db");
  EXPECT_EQ(after.size(), before.size() + 1);
  for (const auto& f : before) EXPECT_TRUE(after.count(f)) << f;
  EXPECT_EQ(db->GetLsmShape().l0_files, 6);

  // Clearing the fault lets the retried compaction succeed with no loss.
  fail_env.Disarm();
  ASSERT_TRUE(db->CompactAll().ok());
  for (int i = 0; i < kKeysPerFile; i++) {
    std::string value;
    ASSERT_TRUE(db->Get(ReadOptions(), Slice(TestKey(i)), &value).ok())
        << TestKey(i);
    EXPECT_EQ(value, TestValue(i, 5));
  }
  db.reset();  // before the stack-allocated SstFailEnv
}

// Flushes landing while compactions are in flight (overlap on, the default)
// must never lose recency: after heavy overwrite churn, Close, and a
// reopen from the manifest + WALs, every key reads its last written value.
TEST_F(SubcompactionTest, FlushDuringCompactionSurvivesReopen) {
  options_.max_subcompactions = 4;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options_, "/db", &db).ok());

  constexpr int kKeys = 50;
  constexpr int kWrites = 2000;
  std::vector<int> last_round(kKeys, -1);
  for (int w = 0; w < kWrites; w++) {
    int i = w % kKeys;
    int round = w / kKeys;
    ASSERT_TRUE(db->Put(WriteOptions(), Slice(TestKey(i)),
                        Slice(TestValue(i, round)))
                    .ok());
    last_round[static_cast<size_t>(i)] = round;
  }
  DB::MaintenanceStats stats = db->GetMaintenanceStats();
  EXPECT_GT(stats.flushes, 0u);
  ASSERT_TRUE(db->Close().ok());

  db.reset();
  ASSERT_TRUE(DB::Open(options_, "/db", &db).ok());
  for (int i = 0; i < kKeys; i++) {
    std::string value;
    ASSERT_TRUE(db->Get(ReadOptions(), Slice(TestKey(i)), &value).ok())
        << TestKey(i);
    EXPECT_EQ(value, TestValue(i, last_round[static_cast<size_t>(i)]));
  }
}

// Same reopen-recency check under universal compaction, whose install
// splices the merged run back at the inputs' position: runs flushed while
// the compaction ran must stay newer than the merged output.
TEST_F(SubcompactionTest, UniversalOverlapSurvivesReopen) {
  options_.compaction_style = CompactionStyle::kUniversal;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options_, "/db", &db).ok());

  constexpr int kKeys = 50;
  constexpr int kWrites = 2000;
  for (int w = 0; w < kWrites; w++) {
    int i = w % kKeys;
    ASSERT_TRUE(db->Put(WriteOptions(), Slice(TestKey(i)),
                        Slice(TestValue(i, w / kKeys)))
                    .ok());
  }
  ASSERT_TRUE(db->Close().ok());

  db.reset();
  ASSERT_TRUE(DB::Open(options_, "/db", &db).ok());
  const int final_round = kWrites / kKeys - 1;
  for (int i = 0; i < kKeys; i++) {
    std::string value;
    ASSERT_TRUE(db->Get(ReadOptions(), Slice(TestKey(i)), &value).ok())
        << TestKey(i);
    EXPECT_EQ(value, TestValue(i, final_round));
  }
}

// Eight writer threads racing repeated CompactAll calls: every acknowledged
// write stays readable through constant parallel compaction, and the DB
// settles into a compacted shape.
TEST_F(SubcompactionTest, ConcurrentWritersRaceCompactAll) {
  options_.max_subcompactions = 4;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options_, "/db", &db).ok());

  constexpr int kWriters = 8;
  constexpr int kKeysPerWriter = 250;
  std::atomic<bool> writers_done{false};
  std::atomic<int> errors{0};
  auto writer_key = [](int t, int i) {
    char buf[32];
    snprintf(buf, sizeof(buf), "w%d-%05d", t, i);
    return std::string(buf);
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kKeysPerWriter; i++) {
        if (!db->Put(WriteOptions(), Slice(writer_key(t, i)),
                     Slice(TestValue(i, t)))
                 .ok()) {
          errors.fetch_add(1);
          return;
        }
      }
    });
  }
  std::thread compactor([&] {
    while (!writers_done.load(std::memory_order_acquire)) {
      if (!db->CompactAll().ok()) errors.fetch_add(1);
    }
  });
  for (auto& t : threads) t.join();
  writers_done.store(true, std::memory_order_release);
  compactor.join();
  ASSERT_EQ(errors.load(), 0);

  ASSERT_TRUE(db->FlushMemTable().ok());
  ASSERT_TRUE(db->CompactAll().ok());
  for (int t = 0; t < kWriters; t++) {
    for (int i = 0; i < kKeysPerWriter; i++) {
      std::string value;
      ASSERT_TRUE(
          db->Get(ReadOptions(), Slice(writer_key(t, i)), &value).ok())
          << writer_key(t, i);
      EXPECT_EQ(value, TestValue(i, t));
    }
  }
  DB::MaintenanceStats stats = db->GetMaintenanceStats();
  EXPECT_GT(stats.compactions, 0u);
  EXPECT_GE(stats.subcompactions, stats.compactions);
}

}  // namespace
}  // namespace adcache::lsm
