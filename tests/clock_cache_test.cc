#include "cache/clock_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "util/perf_context.h"

namespace adcache {
namespace {

std::atomic<int> g_deleted_count{0};

void CountingDeleter(const Slice& /*key*/, void* value) {
  g_deleted_count.fetch_add(1, std::memory_order_relaxed);
  delete static_cast<int*>(value);
}

class ClockCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_deleted_count.store(0);
    // charge estimate 1 => plenty of slots for a byte-budget of 1000.
    cache_ = std::make_shared<ClockCache>(1000, /*estimated_entry_charge=*/1);
  }

  void Insert(const std::string& key, int value, size_t charge = 1) {
    Cache::Handle* h =
        cache_->Insert(Slice(key), new int(value), charge, &CountingDeleter);
    cache_->Release(h);
  }

  // Returns -1 on miss.
  int Lookup(const std::string& key) {
    Cache::Handle* h = cache_->Lookup(Slice(key));
    if (h == nullptr) return -1;
    int r = *static_cast<int*>(cache_->Value(h));
    cache_->Release(h);
    return r;
  }

  std::shared_ptr<ClockCache> cache_;
};

TEST_F(ClockCacheTest, InsertAndLookup) {
  Insert("a", 1);
  Insert("b", 2);
  EXPECT_EQ(Lookup("a"), 1);
  EXPECT_EQ(Lookup("b"), 2);
  EXPECT_EQ(Lookup("c"), -1);
}

TEST_F(ClockCacheTest, HitMissCounters) {
  Insert("a", 1);
  Lookup("a");
  Lookup("a");
  Lookup("missing");
  EXPECT_EQ(cache_->hits(), 2u);
  EXPECT_EQ(cache_->misses(), 1u);
}

TEST_F(ClockCacheTest, OverwriteReplacesValue) {
  Insert("k", 1);
  Insert("k", 2);
  EXPECT_EQ(Lookup("k"), 2);
  EXPECT_EQ(g_deleted_count.load(), 1);  // first value freed
  cache_->Erase(Slice("k"));
  EXPECT_EQ(Lookup("k"), -1);
  EXPECT_EQ(g_deleted_count.load(), 2);
}

TEST_F(ClockCacheTest, UsageTracksChargesAndErase) {
  Insert("a", 1, 100);
  Insert("b", 2, 250);
  EXPECT_EQ(cache_->GetUsage(), 350u);
  cache_->Erase(Slice("a"));
  EXPECT_EQ(cache_->GetUsage(), 250u);
  cache_->Erase(Slice("missing"));  // no-op
  EXPECT_EQ(cache_->GetUsage(), 250u);
}

TEST_F(ClockCacheTest, ErasedButPinnedEntryStaysUsableUntilRelease) {
  Cache::Handle* h =
      cache_->Insert(Slice("k"), new int(7), 10, &CountingDeleter);
  cache_->Erase(Slice("k"));
  // Gone for new lookups, but our pin keeps the value (and charge) alive.
  EXPECT_EQ(Lookup("k"), -1);
  EXPECT_EQ(*static_cast<int*>(cache_->Value(h)), 7);
  EXPECT_EQ(g_deleted_count.load(), 0);
  EXPECT_EQ(cache_->GetUsage(), 10u);
  cache_->Release(h);
  EXPECT_EQ(g_deleted_count.load(), 1);
  EXPECT_EQ(cache_->GetUsage(), 0u);
}

TEST_F(ClockCacheTest, PinnedEntriesSurviveSweep) {
  Cache::Handle* pinned =
      cache_->Insert(Slice("pinned"), new int(42), 500, &CountingDeleter);
  for (int i = 0; i < 50; i++) {
    Insert("filler" + std::to_string(i), i, 50);  // forces continuous sweeps
  }
  EXPECT_EQ(*static_cast<int*>(cache_->Value(pinned)), 42);
  EXPECT_EQ(Lookup("pinned"), 42);
  // Prune ignores the clock counter but must still skip pinned entries.
  cache_->Prune();
  EXPECT_EQ(Lookup("pinned"), 42);
  cache_->Release(pinned);
  cache_->Prune();
  EXPECT_EQ(Lookup("pinned"), -1);
}

TEST_F(ClockCacheTest, InsertOverFullEvictsOnlyUnreferenced) {
  std::vector<Cache::Handle*> pins;
  for (int i = 0; i < 8; i++) {
    pins.push_back(cache_->Insert(Slice("pin" + std::to_string(i)),
                                  new int(i), 100, &CountingDeleter));
  }
  // Budget is fully pinned; these inserts cannot evict anything resident.
  for (int i = 0; i < 20; i++) {
    Insert("over" + std::to_string(i), i, 100);
  }
  for (int i = 0; i < 8; i++) {
    EXPECT_EQ(*static_cast<int*>(cache_->Value(pins[i])), i);
  }
  EXPECT_GE(cache_->GetUsage(), 800u);  // pinned charges never leave
  for (Cache::Handle* h : pins) cache_->Release(h);
  // With the pins gone, pressure from new inserts reclaims the excess.
  // Eviction is amortized (bounded sweep per insert), so allow transient
  // overshoot of a couple of in-flight charges over the 1000 budget.
  for (int i = 0; i < 30; i++) {
    Insert("post" + std::to_string(i), i, 100);
  }
  EXPECT_LE(cache_->GetUsage(), 1200u);
}

TEST_F(ClockCacheTest, SetCapacityShrinkConverges) {
  // Entry-sized charge estimate => a 32-slot table where every bounded
  // sweep is a full clock pass, making convergence steps deterministic.
  auto c = std::make_shared<ClockCache>(1000, /*estimated_entry_charge=*/100);
  auto insert = [&](const std::string& key, size_t charge) {
    Cache::Handle* h =
        c->Insert(Slice(key), new int(0), charge, &CountingDeleter);
    c->Release(h);
  };
  for (int i = 0; i < 10; i++) insert("k" + std::to_string(i), 100);
  EXPECT_EQ(c->GetUsage(), 1000u);
  c->SetCapacity(300);
  EXPECT_EQ(c->GetCapacity(), 300u);
  // The SetCapacity call itself only runs one bounded sweep (a fresh
  // entry's clock counter survives one decrement), so the shrink finishes
  // on the amortized path: subsequent inserts converge usage to the new
  // budget and keep it there, modulo one in-flight charge of overshoot.
  for (int i = 0; i < 20; i++) {
    insert("n" + std::to_string(i), 10);
    EXPECT_LE(c->GetUsage(), 300u + 110u) << i;
  }
  for (int i = 0; i < 5; i++) insert("z" + std::to_string(i), 1);
  EXPECT_LE(c->GetUsage(), 300u);
  c->SetCapacity(1000);
  for (int i = 0; i < 5; i++) insert("g" + std::to_string(i), 100);
  EXPECT_GT(c->GetUsage(), 300u);  // room to grow again
}

TEST_F(ClockCacheTest, SetCapacityChurnNeverStallsReaders) {
  // Mimics the RL controller retargeting the boundary while reads proceed.
  for (int i = 0; i < 10; i++) {
    Insert("k" + std::to_string(i), i, 50);
  }
  for (int step = 0; step < 100; step++) {
    cache_->SetCapacity(step % 2 == 0 ? 200 : 1000);
    Insert("churn" + std::to_string(step), step, 50);
    Lookup("k" + std::to_string(step % 10));  // hit or clean miss, no hang
  }
  EXPECT_LE(cache_->GetUsage(), 1000u);
}

TEST_F(ClockCacheTest, OversizedInsertReturnsUsableStandaloneHandle) {
  Cache::Handle* h =
      cache_->Insert(Slice("huge"), new int(9), 5000, &CountingDeleter);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(*static_cast<int*>(cache_->Value(h)), 9);
  EXPECT_EQ(Lookup("huge"), -1);  // never findable
  EXPECT_EQ(cache_->GetUsage(), 5000u);  // but charged while pinned
  Cache::Handle* extra = cache_->Ref(h);
  cache_->Release(h);
  EXPECT_EQ(g_deleted_count.load(), 0);
  cache_->Release(extra);
  EXPECT_EQ(g_deleted_count.load(), 1);
  EXPECT_EQ(cache_->GetUsage(), 0u);
}

TEST_F(ClockCacheTest, TableFullFallsBackToStandalone) {
  auto tiny = std::make_shared<ClockCache>(1 << 20, /*estimated_entry_charge=*/
                                           1 << 17);  // 16 slots
  std::vector<Cache::Handle*> pins;
  // Pin far more entries than the table has slots: the overflow must come
  // back as usable standalone handles, not nullptr.
  for (int i = 0; i < 64; i++) {
    Cache::Handle* h = tiny->Insert(Slice("k" + std::to_string(i)),
                                    new int(i), 1, &CountingDeleter);
    ASSERT_NE(h, nullptr) << i;
    EXPECT_EQ(*static_cast<int*>(tiny->Value(h)), i);
    pins.push_back(h);
  }
  EXPECT_LE(tiny->occupancy(), tiny->table_size());
  for (Cache::Handle* h : pins) tiny->Release(h);
  EXPECT_EQ(g_deleted_count.load(), 64 - static_cast<int>(tiny->occupancy()));
}

TEST_F(ClockCacheTest, MultiLookupAndMultiRelease) {
  Insert("a", 1);
  Insert("b", 2);
  Insert("c", 3);
  std::vector<Slice> keys = {Slice("a"), Slice("missing"), Slice("c")};
  std::vector<Cache::Handle*> handles(3);
  cache_->MultiLookup(3, keys.data(), handles.data());
  ASSERT_NE(handles[0], nullptr);
  EXPECT_EQ(handles[1], nullptr);
  ASSERT_NE(handles[2], nullptr);
  EXPECT_EQ(*static_cast<int*>(cache_->Value(handles[0])), 1);
  EXPECT_EQ(*static_cast<int*>(cache_->Value(handles[2])), 3);
  EXPECT_EQ(cache_->hits(), 2u);
  EXPECT_EQ(cache_->misses(), 1u);
  cache_->MultiRelease(3, handles.data());
}

TEST_F(ClockCacheTest, ContainsIsAdvisoryAndCountsPerf) {
  Insert("a", 1);
  util::SetPerfLevel(util::PerfLevel::kEnableCount);
  util::GetPerfContext()->Reset();
  EXPECT_TRUE(cache_->Contains(Slice("a")));
  EXPECT_FALSE(cache_->Contains(Slice("missing")));
  EXPECT_EQ(util::GetPerfContext()->block_cache_contains_count, 2u);
  util::SetPerfLevel(util::PerfLevel::kDisable);
  // Contains never perturbs hit/miss telemetry.
  EXPECT_EQ(cache_->hits(), 0u);
  EXPECT_EQ(cache_->misses(), 0u);
}

TEST_F(ClockCacheTest, SlotOccupancyGauge) {
  EXPECT_DOUBLE_EQ(cache_->slot_occupancy(), 0.0);
  Insert("a", 1);
  Insert("b", 2);
  EXPECT_DOUBLE_EQ(
      cache_->slot_occupancy(),
      2.0 / static_cast<double>(cache_->table_size()));
  cache_->Prune();
  EXPECT_DOUBLE_EQ(cache_->slot_occupancy(), 0.0);
}

TEST_F(ClockCacheTest, EraseDuringConcurrentLookupNeverDangles) {
  // One eraser + re-inserter races several readers on a single hot key.
  // Every handle a reader obtains must stay valid until its Release.
  constexpr int kReaders = 4;
  constexpr int kIterations = 4000;
  std::atomic<bool> stop{false};
  std::atomic<int> value_mismatches{0};
  Insert("hot", 1234);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; t++) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        Cache::Handle* h = cache_->Lookup(Slice("hot"));
        if (h != nullptr) {
          if (*static_cast<int*>(cache_->Value(h)) != 1234) {
            value_mismatches.fetch_add(1);
          }
          cache_->Release(h);
        }
      }
    });
  }
  for (int i = 0; i < kIterations; i++) {
    cache_->Erase(Slice("hot"));
    Cache::Handle* h =
        cache_->Insert(Slice("hot"), new int(1234), 1, &CountingDeleter);
    cache_->Release(h);
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(value_mismatches.load(), 0);
}

TEST_F(ClockCacheTest, EightThreadMixedStress) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 8000;
  constexpr int kKeySpace = 64;
  auto stress =
      std::make_shared<ClockCache>(2000, /*estimated_entry_charge=*/25);
  std::atomic<int> bad_values{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      unsigned int seed = 0x9e3779b9u * static_cast<unsigned int>(t + 1);
      auto next = [&seed] {
        seed = seed * 1664525u + 1013904223u;
        return seed >> 8;
      };
      for (int i = 0; i < kOpsPerThread; i++) {
        int k = static_cast<int>(next() % kKeySpace);
        std::string key = "key" + std::to_string(k);
        unsigned int op = next() % 100;
        if (op < 50) {
          Cache::Handle* h = stress->Lookup(Slice(key));
          if (h != nullptr) {
            if (*static_cast<int*>(stress->Value(h)) != k) {
              bad_values.fetch_add(1);
            }
            stress->Release(h);
          }
        } else if (op < 75) {
          Cache::Handle* h = stress->Insert(Slice(key), new int(k),
                                            1 + next() % 50, &CountingDeleter);
          if (*static_cast<int*>(stress->Value(h)) != k) {
            bad_values.fetch_add(1);
          }
          stress->Release(h);
        } else if (op < 85) {
          stress->Erase(Slice(key));
        } else if (op < 95) {
          std::string k2 = "key" + std::to_string((k + 1) % kKeySpace);
          Slice keys[2] = {Slice(key), Slice(k2)};
          Cache::Handle* handles[2];
          stress->MultiLookup(2, keys, handles);
          stress->MultiRelease(2, handles);
        } else {
          stress->SetCapacity(1000 + (next() % 3) * 1000);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(bad_values.load(), 0);
  stress->SetCapacity(2000);
  // Quiesced: counters must balance and usage must respect the budget
  // after one more round of amortized eviction.
  for (int i = 0; i < 100; i++) {
    Cache::Handle* h =
        stress->Insert(Slice("drain"), new int(0), 1, &CountingDeleter);
    stress->Release(h);
  }
  EXPECT_LE(stress->GetUsage(), 2000u);
  // Destructor (on scope exit) asserts every entry is unreferenced.
}

}  // namespace
}  // namespace adcache
