#include "core/memory_budget.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "core/adcache_store.h"
#include "core/event_listener.h"
#include "util/clock.h"
#include "util/env.h"

namespace adcache::core {
namespace {

// ---------------------------------------------------------------------------
// Registry-level tests (no store).
// ---------------------------------------------------------------------------

// A self-counting DRAM consumer backed by one shared "transient sum" so a
// test can observe the total DRAM footprint at every intermediate point of
// a plan, not just after it completes.
class CountingConsumer : public MemoryConsumer {
 public:
  CountingConsumer(size_t initial, std::atomic<size_t>* transient_sum,
                   std::atomic<size_t>* transient_max, size_t min = 0)
      : capacity_(initial),
        min_(min),
        transient_sum_(transient_sum),
        transient_max_(transient_max) {
    transient_sum_->fetch_add(initial);
  }

  size_t capacity() const override { return capacity_.load(); }
  size_t usage() const override { return capacity_.load(); }
  size_t min_capacity() const override { return min_; }
  void SetCapacity(size_t bytes) override {
    size_t old = capacity_.exchange(bytes);
    size_t now;
    if (bytes >= old) {
      now = transient_sum_->fetch_add(bytes - old) + (bytes - old);
    } else {
      now = transient_sum_->fetch_sub(old - bytes) - (old - bytes);
    }
    size_t seen = transient_max_->load();
    while (now > seen && !transient_max_->compare_exchange_weak(seen, now)) {
    }
  }

 private:
  std::atomic<size_t> capacity_;
  size_t min_;
  std::atomic<size_t>* transient_sum_;
  std::atomic<size_t>* transient_max_;
};

TEST(MemoryBudgetTest, SumInvariantHoldsUnderConcurrentResize) {
  constexpr size_t kTotal = 1 << 20;
  MemoryBudget budget(kTotal);
  std::atomic<size_t> sum{0}, peak{0};
  const char* names[] = {kBudgetBlockCache, kBudgetRangeCache,
                         kBudgetMemtable, kBudgetBloom,
                         kBudgetSecondaryDramIndex};
  for (const char* name : names) {
    budget.Register(name, std::make_shared<CountingConsumer>(kTotal / 5,
                                                             &sum, &peak));
  }
  // Hammer the registry with conflicting full-wall plans from 4 threads.
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; i++) {
        size_t a = static_cast<size_t>((t * 37 + i * 13) % 90 + 5);
        budget.ApplyDramPlan({{names[(t + i) % 5], a * (kTotal / 100)},
                              {names[(t + i + 1) % 5], kTotal / 10},
                              {names[(t + i + 2) % 5], kTotal / 10},
                              {names[(t + i + 3) % 5], kTotal / 10},
                              {names[(t + i + 4) % 5], kTotal / 10}});
        // Every plan leaves the DRAM domain summing exactly to the wall.
        EXPECT_EQ(budget.DramCapacitySum(), kTotal);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(budget.DramCapacitySum(), kTotal);
  EXPECT_EQ(sum.load(), kTotal);
}

TEST(MemoryBudgetTest, ShrinksBeforeGrowsSoTransientSumStaysBounded) {
  constexpr size_t kTotal = 1 << 20;
  MemoryBudget budget(kTotal);
  std::atomic<size_t> sum{0}, peak{0};
  budget.Register("a", std::make_shared<CountingConsumer>(kTotal / 2, &sum,
                                                          &peak));
  budget.Register("b", std::make_shared<CountingConsumer>(kTotal / 2, &sum,
                                                          &peak));
  peak.store(sum.load());
  // Swap the split back and forth; had grows run first, the transient sum
  // would overshoot the wall by the moved amount.
  for (int i = 0; i < 50; i++) {
    bool flip = (i % 2) == 0;
    budget.ApplyDramPlan({{"a", flip ? kTotal / 10 : kTotal * 9 / 10},
                          {"b", flip ? kTotal * 9 / 10 : kTotal / 10}});
    EXPECT_EQ(budget.DramCapacitySum(), kTotal);
  }
  EXPECT_LE(peak.load(), kTotal);
}

TEST(MemoryBudgetTest, PlanRespectsFloorsAndScalesOverbookedTargets) {
  MemoryBudget budget(1000);
  std::atomic<size_t> sum{0}, peak{0};
  budget.Register(
      "a", std::make_shared<CountingConsumer>(500, &sum, &peak, /*min=*/200));
  budget.Register("b", std::make_shared<CountingConsumer>(500, &sum, &peak));
  // A plan asking for 4x the wall is scaled into it, not applied verbatim.
  budget.ApplyDramPlan({{"a", 1000}, {"b", 3000}});
  EXPECT_EQ(budget.DramCapacitySum(), 1000u);
  EXPECT_GE(budget.CapacityOf("a"), 200u);
  // Untargeted consumers keep their bytes; the plan fits in what is left.
  budget.ApplyDramPlan({{"b", 123}});
  EXPECT_EQ(budget.CapacityOf("b"), 1000u - budget.CapacityOf("a"));
}

TEST(MemoryBudgetTest, FromEnvOverridesTotal) {
  ::setenv("ADCACHE_MEMORY_BUDGET", "4m", 1);
  MemoryBudgetOptions options = MemoryBudgetOptions::FromEnv();
  EXPECT_EQ(options.total_memory_budget, 4u * 1024 * 1024);
  ::unsetenv("ADCACHE_MEMORY_BUDGET");
  MemoryBudgetOptions defaults;
  defaults.total_memory_budget = 123;
  EXPECT_EQ(MemoryBudgetOptions::FromEnv(defaults).total_memory_budget, 123u);
}

// ---------------------------------------------------------------------------
// Store-level tests: the unified wall wired through AdCacheStore.
// ---------------------------------------------------------------------------

class MemoryWallStoreTest : public ::testing::Test {
 protected:
  void Open(size_t total_wall, size_t secondary_budget = 0) {
    env_ = NewMemEnv(&clock_);
    lsm_options_.env = env_.get();
    lsm_options_.block_size = 512;
    lsm_options_.table_file_size = 16 * 1024;
    lsm_options_.memtable_size = 32 * 1024;
    lsm_options_.level1_size_base = 64 * 1024;

    AdCacheOptions options;
    options.memory.total_memory_budget = total_wall;
    options.memory.secondary_cache_budget = secondary_budget;
    // Huge window so the controller never re-carves mid-test; steps run
    // only where a test calls ForceWindowEnd.
    options.controller.window_size = 1 << 30;
    options.controller.agent.hidden_dim = 32;  // fast tests
    options.listeners.push_back(listener_);
    ASSERT_TRUE(
        AdCacheStore::Open(options, lsm_options_, "/memwall", &store_).ok());
  }

  static std::string Key(int i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%06d", i);
    return buf;
  }

  void Fill(int begin, int end) {
    for (int i = begin; i < end; i++) {
      ASSERT_TRUE(
          store_->Put(Slice(Key(i)), Slice(std::string(100, 'v'))).ok());
    }
  }

  struct CaptureListener : public EventListener {
    void OnRlAction(const RlActionInfo& info) override { last = info; }
    RlActionInfo last;
  };

  SimClock clock_;
  std::unique_ptr<Env> env_;
  lsm::Options lsm_options_;
  std::shared_ptr<CaptureListener> listener_ =
      std::make_shared<CaptureListener>();
  std::unique_ptr<AdCacheStore> store_;
};

TEST_F(MemoryWallStoreTest, MemtableRotatesEarlyOnBudgetCut) {
  Open(1 << 20);
  ASSERT_TRUE(store_->unified_memory_wall());
  Fill(0, 100);  // ~11 KB in the memtable, well under the 64 KB buffer
  size_t used = store_->db()->WriteBufferUsage();
  ASSERT_GT(used, 4u * 1024);
  uint64_t flushes_before = store_->db()->GetMaintenanceStats().flushes;
  // Cut the memtable budget below current usage: the store must rotate the
  // oversized memtable out rather than wait for it to fill.
  store_->memory_budget()->SetConsumerCapacity(kBudgetMemtable, 64 << 10);
  ASSERT_TRUE(store_->db()->FlushMemTable().ok());  // drain the rotation
  lsm::DB::LsmShape shape = store_->db()->GetLsmShape();
  EXPECT_GT(store_->db()->GetMaintenanceStats().flushes + shape.imm_memtables,
            flushes_before);
  EXPECT_LT(store_->db()->WriteBufferUsage(), used);
}

TEST_F(MemoryWallStoreTest, BloomBudgetRetargetsBitsForNewTables) {
  Open(1 << 20);
  Fill(0, 500);
  ASSERT_TRUE(store_->db()->FlushMemTable().ok());
  lsm::DB::LsmShape shape = store_->db()->GetLsmShape();
  ASSERT_GT(shape.live_entries, 0u);
  ASSERT_NEAR(shape.avg_bloom_bits_per_key,
              lsm_options_.bloom_bits_per_key, 0.5);
  // Registry speaks bytes: entries * 2 bytes/key == 16 bits/key.
  store_->memory_budget()->SetConsumerCapacity(
      kBudgetBloom, static_cast<size_t>(shape.live_entries) * 2);
  EXPECT_EQ(store_->db()->bloom_bits_per_key(), 16);
  // Tables built before the change keep their filters; new ones pick up
  // the new threshold, moving the live entry-weighted average.
  Fill(500, 1000);
  ASSERT_TRUE(store_->db()->FlushMemTable().ok());
  shape = store_->db()->GetLsmShape();
  EXPECT_GT(shape.avg_bloom_bits_per_key,
            static_cast<double>(lsm_options_.bloom_bits_per_key) + 0.5);
}

TEST_F(MemoryWallStoreTest, ControllerStepRecarvesAllFiveConsumers) {
  Open(1 << 20, /*secondary_budget=*/256 << 10);
  MemoryBudget* budget = store_->memory_budget();
  for (const char* name :
       {kBudgetBlockCache, kBudgetRangeCache, kBudgetMemtable, kBudgetBloom,
        kBudgetSecondaryDramIndex, kBudgetSecondaryFlash}) {
    EXPECT_TRUE(budget->IsRegistered(name)) << name;
  }
  Fill(0, 200);
  ASSERT_TRUE(store_->db()->FlushMemTable().ok());
  std::string value;
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(store_->Get(Slice(Key(i % 200)), &value).ok());
  }
  store_->ForceWindowEnd();
  // One controller step drives one full DRAM plan: every wall consumer is
  // retargeted and the domain sums exactly to the wall again.
  EXPECT_EQ(budget->DramCapacitySum(), budget->total());
  EXPECT_EQ(budget->total(), static_cast<size_t>(1 << 20));
  // The action payload reports the full named budget vector (schema v2)
  // with every DRAM consumer present and capacities matching the registry.
  EXPECT_EQ(listener_->last.schema_version, 2);
  EXPECT_TRUE(listener_->last.memwall_controlled);
  ASSERT_GE(listener_->last.budget.size(), 5u);
  int seen = 0;
  for (const auto& delta : listener_->last.budget) {
    if (delta.name == kBudgetSecondaryFlash) continue;
    EXPECT_EQ(delta.new_capacity_bytes, budget->CapacityOf(delta.name))
        << delta.name;
    seen++;
  }
  EXPECT_EQ(seen, 5);
  EXPECT_GT(store_->db()->write_buffer_size(), 0u);
  EXPECT_GT(budget->CapacityOf(kBudgetBlockCache), 0u);
  EXPECT_GT(budget->CapacityOf(kBudgetRangeCache), 0u);
}

TEST_F(MemoryWallStoreTest, LegacyModeTracksConsumersWithoutMovingThem) {
  Open(/*total_wall=*/0);
  ASSERT_FALSE(store_->unified_memory_wall());
  // Consumers appear in snapshots for telemetry but are exempt from the
  // wall: a controller step may only move the block/range boundary.
  size_t wb_before = store_->db()->write_buffer_size();
  int bits_before = store_->db()->bloom_bits_per_key();
  Fill(0, 100);
  std::string value;
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(store_->Get(Slice(Key(i)), &value).ok());
  }
  store_->ForceWindowEnd();
  EXPECT_FALSE(listener_->last.memwall_controlled);
  EXPECT_EQ(store_->db()->write_buffer_size(), wb_before);
  EXPECT_EQ(store_->db()->bloom_bits_per_key(), bits_before);
  EXPECT_EQ(store_->memory_budget()->total(),
            store_->dynamic_cache()->total_budget());
}

}  // namespace
}  // namespace adcache::core
