#include "cache/secondary_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "util/clock.h"
#include "util/coding.h"
#include "util/env.h"

namespace adcache {
namespace {

class SecondaryCacheTest : public ::testing::Test {
 protected:
  void SetUp() override { env_ = NewMemEnv(&clock_); }

  /// Opens (or reopens) a slab cache under `dir` with small slabs so tests
  /// can force sealing and GC with little data. Reopening over the same
  /// directory exercises recovery; pass a fresh dir for a clean slate.
  void Open(size_t capacity = 64 * 1024, size_t slab_size = 4 * 1024,
            bool salvage = true, double admission_threshold = 0.0,
            const std::string& dir = "/sec") {
    SlabSecondaryCacheOptions options;
    options.capacity = capacity;
    options.slab_size = slab_size;
    options.salvage_hot_entries = salvage;
    options.admission_threshold = admission_threshold;
    cache_.reset();
    ASSERT_TRUE(
        NewSlabSecondaryCache(env_.get(), dir, options, &cache_).ok());
  }

  static std::string Key(int i) {
    char buf[32];
    snprintf(buf, sizeof(buf), "block%05d", i);
    return buf;
  }

  static std::string Value(int i, size_t len = 256) {
    std::string v = "payload" + std::to_string(i) + ":";
    while (v.size() < len) v.push_back(static_cast<char>('a' + i % 26));
    return v;
  }

  SimClock clock_;
  std::unique_ptr<Env> env_;
  std::shared_ptr<SecondaryCache> cache_;
};

TEST_F(SecondaryCacheTest, DemoteLookupRoundTrip) {
  Open();
  cache_->Demote(Slice(Key(1)), Slice(Value(1)));
  std::string out;
  ASSERT_TRUE(cache_->Lookup(Slice(Key(1)), &out));
  EXPECT_EQ(out, Value(1));
  EXPECT_FALSE(cache_->Lookup(Slice(Key(2)), &out));
  EXPECT_EQ(cache_->hits(), 1u);
  EXPECT_GE(cache_->misses(), 1u);
  EXPECT_EQ(cache_->demotions(), 1u);
}

TEST_F(SecondaryCacheTest, SealedSlabsServeLookups) {
  Open(/*capacity=*/1 << 20, /*slab_size=*/2 * 1024);
  // ~300B records into 2KB slabs: entry i=0..19 spans several sealed slabs
  // plus the active one.
  for (int i = 0; i < 20; i++) {
    cache_->Demote(Slice(Key(i)), Slice(Value(i)));
  }
  std::string out;
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(cache_->Lookup(Slice(Key(i)), &out)) << Key(i);
    EXPECT_EQ(out, Value(i));
  }
}

TEST_F(SecondaryCacheTest, ReadLatencySinkFiresForSealedReads) {
  Open(/*capacity=*/1 << 20, /*slab_size=*/2 * 1024);
  std::atomic<int> samples{0};
  cache_->SetReadLatencySink([&samples](uint64_t) { samples++; });
  for (int i = 0; i < 20; i++) {
    cache_->Demote(Slice(Key(i)), Slice(Value(i)));
  }
  std::string out;
  // Key(0) long since sealed: its lookup preads a slab file.
  ASSERT_TRUE(cache_->Lookup(Slice(Key(0)), &out));
  EXPECT_GE(samples.load(), 1);
}

TEST_F(SecondaryCacheTest, DuplicateDemoteIsNoop) {
  Open();
  cache_->Demote(Slice(Key(1)), Slice(Value(1)));
  size_t usage = cache_->GetUsage();
  cache_->Demote(Slice(Key(1)), Slice(Value(1)));
  EXPECT_EQ(cache_->GetUsage(), usage);
  EXPECT_EQ(cache_->demotions(), 1u);
  EXPECT_EQ(cache_->demotion_rejects(), 0u);
}

TEST_F(SecondaryCacheTest, OversizeValueRejected) {
  Open(/*capacity=*/64 * 1024, /*slab_size=*/1024);
  cache_->Demote(Slice(Key(1)), Slice(std::string(2048, 'x')));
  EXPECT_EQ(cache_->demotions(), 0u);
  EXPECT_EQ(cache_->demotion_rejects(), 1u);
  std::string out;
  EXPECT_FALSE(cache_->Lookup(Slice(Key(1)), &out));
}

TEST_F(SecondaryCacheTest, EraseDropsEntry) {
  Open();
  cache_->Demote(Slice(Key(1)), Slice(Value(1)));
  cache_->Erase(Slice(Key(1)));
  std::string out;
  EXPECT_FALSE(cache_->Lookup(Slice(Key(1)), &out));
}

TEST_F(SecondaryCacheTest, WatermarkGcReclaimsColdSlabs) {
  // 16KB budget, 2KB slabs; high watermark at ~14.4KB. Salvage off so the
  // GC drops victims wholesale.
  Open(/*capacity=*/16 * 1024, /*slab_size=*/2 * 1024, /*salvage=*/false);
  for (int i = 0; i < 200; i++) {
    cache_->Demote(Slice(Key(i)), Slice(Value(i)));
  }
  EXPECT_GT(cache_->gc_runs(), 0u);
  EXPECT_GT(cache_->gc_reclaimed_bytes(), 0u);
  // Usage ends under the high watermark (GC drains to the low watermark,
  // then refills until the next trigger).
  EXPECT_LE(cache_->GetUsage(),
            static_cast<size_t>(16 * 1024 * 0.90) + 2 * 1024);
  // The earliest keys were in the coldest slabs and must be gone; the
  // newest are still resident.
  std::string out;
  EXPECT_FALSE(cache_->Lookup(Slice(Key(0)), &out));
  EXPECT_TRUE(cache_->Lookup(Slice(Key(199)), &out));
}

TEST_F(SecondaryCacheTest, SalvageKeepsHotEntriesAcrossGc) {
  // ~278B records in 2KB slabs: 7 per slab. 30 demotes seal four slabs
  // (keys 0-27) and leave 28-29 in the active buffer.
  Open(/*capacity=*/64 * 1024, /*slab_size=*/2 * 1024, /*salvage=*/true);
  for (int i = 0; i < 30; i++) {
    cache_->Demote(Slice(Key(i)), Slice(Value(i)));
  }
  std::string out;
  // Heat keys 0..2 (all in the oldest sealed slab).
  for (int i = 0; i < 3; i++) {
    ASSERT_TRUE(cache_->Lookup(Slice(Key(i)), &out));
  }
  // Shrink far below usage: GC must victimize EVERY sealed slab, including
  // the hot one — whose hit entries get salvaged into the active slab.
  cache_->SetCapacity(2 * 1024);
  EXPECT_GT(cache_->gc_runs(), 0u);
  for (int i = 0; i < 3; i++) {
    ASSERT_TRUE(cache_->Lookup(Slice(Key(i)), &out)) << Key(i);
    EXPECT_EQ(out, Value(i));
  }
  // Never-hit entries from the victim slabs died wholesale.
  for (int i = 3; i < 28; i++) {
    EXPECT_FALSE(cache_->Lookup(Slice(Key(i)), &out)) << Key(i);
  }

  // Same sequence with salvage off (fresh dir): hot entries die with their
  // slab exactly like cold ones.
  Open(/*capacity=*/64 * 1024, /*slab_size=*/2 * 1024, /*salvage=*/false,
       /*admission_threshold=*/0.0, "/sec-nosalvage");
  for (int i = 0; i < 30; i++) {
    cache_->Demote(Slice(Key(i)), Slice(Value(i)));
  }
  for (int i = 0; i < 3; i++) {
    ASSERT_TRUE(cache_->Lookup(Slice(Key(i)), &out));
  }
  cache_->SetCapacity(2 * 1024);
  for (int i = 0; i < 28; i++) {
    EXPECT_FALSE(cache_->Lookup(Slice(Key(i)), &out)) << Key(i);
  }
}

TEST_F(SecondaryCacheTest, SetCapacityShrinkTriggersGc) {
  Open(/*capacity=*/64 * 1024, /*slab_size=*/2 * 1024, /*salvage=*/false);
  for (int i = 0; i < 100; i++) {
    cache_->Demote(Slice(Key(i)), Slice(Value(i)));
  }
  size_t usage_before = cache_->GetUsage();
  ASSERT_GT(usage_before, static_cast<size_t>(8 * 1024));
  cache_->SetCapacity(8 * 1024);
  EXPECT_EQ(cache_->GetCapacity(), static_cast<size_t>(8 * 1024));
  EXPECT_LT(cache_->GetUsage(), usage_before);
  EXPECT_LE(cache_->GetUsage(), static_cast<size_t>(8 * 1024));
  EXPECT_GT(cache_->gc_runs(), 0u);
}

TEST_F(SecondaryCacheTest, ZeroCapacityRejectsDemotions) {
  Open(/*capacity=*/64 * 1024);
  cache_->SetCapacity(0);
  cache_->Demote(Slice(Key(1)), Slice(Value(1)));
  EXPECT_EQ(cache_->demotions(), 0u);
  EXPECT_EQ(cache_->demotion_rejects(), 1u);
}

TEST_F(SecondaryCacheTest, AdmissionThresholdGatesDemotions) {
  // Threshold 0.5: only keys holding at least half the sketch's decayed
  // total pass. A parade of one-off keys is absorbed by the doorkeeper
  // (frequency 0) and rejected wholesale.
  Open(/*capacity=*/64 * 1024, /*slab_size=*/4 * 1024, /*salvage=*/true,
       /*admission_threshold=*/0.5);
  for (int i = 0; i < 20; i++) {
    cache_->Demote(Slice(Key(i)), Slice(Value(i)));
  }
  EXPECT_EQ(cache_->demotions(), 0u);
  EXPECT_EQ(cache_->demotion_rejects(), 20u);

  // A key repeatedly probed while absent accumulates frequency and earns
  // its demotion (it dominates the sketch: every other key was doorkeeper-
  // absorbed).
  std::string out;
  for (int probes = 0; probes < 4; probes++) {
    EXPECT_FALSE(cache_->Lookup(Slice(Key(42)), &out));
  }
  cache_->Demote(Slice(Key(42)), Slice(Value(42)));
  EXPECT_EQ(cache_->demotions(), 1u);
  ASSERT_TRUE(cache_->Lookup(Slice(Key(42)), &out));
  EXPECT_EQ(out, Value(42));

  // Threshold 0 = demote-everything.
  cache_->SetAdmissionThreshold(0.0);
  cache_->Demote(Slice(Key(77)), Slice(Value(77)));
  EXPECT_EQ(cache_->demotions(), 2u);
}

TEST_F(SecondaryCacheTest, ReopenRecoversSealedSlabs) {
  Open(/*capacity=*/1 << 20, /*slab_size=*/2 * 1024);
  for (int i = 0; i < 20; i++) {
    cache_->Demote(Slice(Key(i)), Slice(Value(i)));
  }
  // Reopen over the same directory: sealed slabs rebuild the index. The
  // active (in-memory) slab at close time is lost by design — only assert
  // on keys old enough to have been sealed.
  Open(/*capacity=*/1 << 20, /*slab_size=*/2 * 1024);
  std::string out;
  int recovered = 0;
  for (int i = 0; i < 20; i++) {
    if (cache_->Lookup(Slice(Key(i)), &out)) {
      EXPECT_EQ(out, Value(i));
      recovered++;
    }
  }
  EXPECT_GE(recovered, 10);
  EXPECT_GT(cache_->GetUsage(), static_cast<size_t>(0));
}

TEST_F(SecondaryCacheTest, NewerSlabWinsDuplicateKeysAtRecovery) {
  Open(/*capacity=*/1 << 20, /*slab_size=*/2 * 1024);
  // First-generation value sealed, then erase + re-demote a fresh value
  // into a later slab, sealed too.
  for (int i = 0; i < 10; i++) {
    cache_->Demote(Slice(Key(i)), Slice(Value(i)));
  }
  cache_->Erase(Slice(Key(1)));
  cache_->Demote(Slice(Key(1)), Slice(Value(1000)));
  for (int i = 20; i < 30; i++) {
    cache_->Demote(Slice(Key(i)), Slice(Value(i)));  // forces more seals
  }
  Open(/*capacity=*/1 << 20, /*slab_size=*/2 * 1024);
  std::string out;
  if (cache_->Lookup(Slice(Key(1)), &out)) {
    EXPECT_EQ(out, Value(1000));  // ascending-seq replay: newest wins
  }
}

TEST_F(SecondaryCacheTest, TornSlabFileDiscardedAtOpen) {
  Open(/*capacity=*/1 << 20, /*slab_size=*/2 * 1024);
  for (int i = 0; i < 20; i++) {
    cache_->Demote(Slice(Key(i)), Slice(Value(i)));
  }
  cache_.reset();
  // A torn slab: valid header for seq 500 followed by an entry whose
  // declared lengths run past end-of-file (a crash mid-write).
  std::string torn;
  torn.append("ADC2SLAB", 8);
  PutFixed32(&torn, 1);    // version
  PutFixed64(&torn, 500);  // seq matches the file name
  PutFixed32(&torn, 0xdeadbeefu);  // crc (never checked: lengths are torn)
  PutFixed32(&torn, 8);            // key_len
  PutFixed32(&torn, 4096);         // val_len, but the file ends here
  torn.append("torn-key");
  {
    std::unique_ptr<WritableFile> f;
    ASSERT_TRUE(env_->NewWritableFile("/sec/secondary.slab-500", &f).ok());
    ASSERT_TRUE(f->Append(Slice(torn)).ok());
    ASSERT_TRUE(f->Close().ok());
  }
  // Full-garbage file under a well-formed slab name.
  {
    std::unique_ptr<WritableFile> f;
    ASSERT_TRUE(env_->NewWritableFile("/sec/secondary.slab-501", &f).ok());
    ASSERT_TRUE(f->Append(Slice(std::string(512, '\xa5'))).ok());
    ASSERT_TRUE(f->Close().ok());
  }
  // Garbage name sharing the slab prefix.
  {
    std::unique_ptr<WritableFile> f;
    ASSERT_TRUE(env_->NewWritableFile("/sec/secondary.slab-junk", &f).ok());
    ASSERT_TRUE(f->Append(Slice("noise")).ok());
    ASSERT_TRUE(f->Close().ok());
  }

  Open(/*capacity=*/1 << 20, /*slab_size=*/2 * 1024);
  // The corrupt files were deleted wholesale and never serve a byte...
  EXPECT_FALSE(env_->FileExists("/sec/secondary.slab-500"));
  EXPECT_FALSE(env_->FileExists("/sec/secondary.slab-501"));
  EXPECT_FALSE(env_->FileExists("/sec/secondary.slab-junk"));
  std::string out;
  EXPECT_FALSE(cache_->Lookup(Slice("torn-key"), &out));
  // ...while intact slabs from the first generation still serve hits.
  int recovered = 0;
  for (int i = 0; i < 20; i++) {
    if (cache_->Lookup(Slice(Key(i)), &out)) recovered++;
  }
  EXPECT_GE(recovered, 10);
}

TEST_F(SecondaryCacheTest, BitFlippedEntryCaughtAtOpen) {
  // A slab whose header is fine but whose single entry fails its crc must
  // be discarded wholesale (open-time scan validates every record).
  std::string slab;
  slab.append("ADC2SLAB", 8);
  PutFixed32(&slab, 1);
  PutFixed64(&slab, 7);
  std::string key = "somekey", value = "somevalue";
  PutFixed32(&slab, 0x12345678u);  // wrong crc for the payload below
  PutFixed32(&slab, static_cast<uint32_t>(key.size()));
  PutFixed32(&slab, static_cast<uint32_t>(value.size()));
  slab += key;
  slab += value;
  {
    std::unique_ptr<WritableFile> f;
    ASSERT_TRUE(env_->NewWritableFile("/sec/secondary.slab-7", &f).ok());
    ASSERT_TRUE(f->Append(Slice(slab)).ok());
    ASSERT_TRUE(f->Close().ok());
  }
  Open();
  EXPECT_FALSE(env_->FileExists("/sec/secondary.slab-7"));
  std::string out;
  EXPECT_FALSE(cache_->Lookup(Slice(key), &out));
}

TEST_F(SecondaryCacheTest, ConcurrentDemotePromoteGcStress) {
  // Small budget + small slabs: GC churns constantly while demoters,
  // readers and erasers race. Run under TSan/ASan via scripts/check.sh.
  Open(/*capacity=*/32 * 1024, /*slab_size=*/2 * 1024, /*salvage=*/true);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2000;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([this, t, &failed] {
      std::string out;
      for (int i = 0; i < kOpsPerThread; i++) {
        int k = (t * 131 + i * 7) % 512;
        switch (i % 4) {
          case 0:
            cache_->Demote(Slice(Key(k)), Slice(Value(k)));
            break;
          case 1:
          case 2:
            if (cache_->Lookup(Slice(Key(k)), &out) && out != Value(k)) {
              failed.store(true);  // stale or corrupt bytes served
            }
            break;
          default:
            if (i % 64 == 3) {
              cache_->Erase(Slice(Key(k)));
            } else if (i % 128 == 7) {
              cache_->SetCapacity(16 * 1024 + (k % 3) * 8 * 1024);
            } else {
              cache_->Lookup(Slice(Key(k)), &out);
            }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
  EXPECT_GT(cache_->gc_runs(), 0u);
  // Usage must have tracked appends and reclaims consistently: it can sit
  // above the smallest capacity transiently but never runs away.
  EXPECT_LE(cache_->GetUsage(), static_cast<size_t>(64 * 1024));
}

}  // namespace
}  // namespace adcache
