// Stress tests for the lock-free read path: SuperVersion installation on
// memtable switch / flush / compaction, the per-thread cached copy with
// generation-based invalidation, pinned (zero-copy) Get results, and the
// mutex-snapshot baseline. Run with -DADCACHE_SANITIZE=thread to check the
// acquisition protocol.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "lsm/db.h"
#include "util/clock.h"
#include "util/pinnable_slice.h"
#include "util/thread_local_ptr.h"

namespace adcache::lsm {
namespace {

std::string Key(int i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "key-%06d", i);
  return buf;
}

std::string Value(int i, int version) {
  char buf[64];
  snprintf(buf, sizeof(buf), "val-%06d-v%06d-%030d", i, version, 0);
  return buf;
}

class SuperVersionTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    env_ = NewMemEnv(&clock_);
    options_.env = env_.get();
    // Small sizes force constant memtable switches and flushes, so readers
    // race SuperVersion installs continuously.
    options_.block_size = 512;
    options_.table_file_size = 8 * 1024;
    options_.memtable_size = 8 * 1024;
    options_.level1_size_base = 32 * 1024;
    options_.mutex_read_snapshot = GetParam();
  }

  void Open() { ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok()); }

  SimClock clock_;
  std::unique_ptr<Env> env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

// Readers hammer a fixed key set while a writer overwrites it with
// monotonically increasing versions, forcing memtable switches, flushes and
// compactions underneath them. Every read must return a complete value the
// writer actually wrote (no torn, stale-beyond-ack, or freed data).
TEST_P(SuperVersionTest, ReadersRaceSwitchFlushCompaction) {
  Open();
  constexpr int kKeys = 50;
  constexpr int kRounds = 60;
  constexpr int kReaders = 4;

  for (int i = 0; i < kKeys; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Key(i), Value(i, 0)).ok());
  }

  std::atomic<int> min_version{0};
  std::atomic<bool> done{false};
  std::atomic<int> errors{0};
  std::mutex diag_mu;
  std::string diag;

  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; t++) {
    readers.emplace_back([&, t] {
      int i = t;
      while (!done.load(std::memory_order_relaxed)) {
        int floor_version = min_version.load(std::memory_order_acquire);
        std::string value;
        Status s = db_->Get(ReadOptions(), Key(i % kKeys), &value);
        if (!s.ok()) {
          errors++;
          std::lock_guard<std::mutex> l(diag_mu);
          diag += "status=" + s.ToString() + " key=" + Key(i % kKeys) + "\n";
          continue;
        }
        // Parse "val-<key>-v<version>-..." and validate shape + freshness.
        int got_key = -1, got_version = -1;
        if (sscanf(value.c_str(), "val-%d-v%d", &got_key, &got_version) != 2 ||
            got_key != i % kKeys || got_version < floor_version ||
            value != Value(got_key, got_version)) {
          errors++;
          std::lock_guard<std::mutex> l(diag_mu);
          diag += "key=" + Key(i % kKeys) + " floor=" +
                  std::to_string(floor_version) + " value=" + value + "\n";
        }
        i++;
      }
    });
  }

  for (int round = 1; round <= kRounds; round++) {
    for (int i = 0; i < kKeys; i++) {
      ASSERT_TRUE(db_->Put(WriteOptions(), Key(i), Value(i, round)).ok());
    }
    // All keys are at `round` now; readers must never see anything older.
    min_version.store(round, std::memory_order_release);
  }
  done = true;
  for (auto& t : readers) t.join();
  EXPECT_EQ(errors.load(), 0) << diag;
}

// MultiGet batches race the same churn: one batch shares a single
// SuperVersion acquisition, so every key in it must satisfy the freshness
// floor read before the call, duplicates must agree with their primary,
// and the always-absent key must stay NotFound throughout.
TEST_P(SuperVersionTest, MultiGetRacesSwitchFlushCompaction) {
  Open();
  constexpr int kKeys = 50;
  constexpr int kRounds = 60;
  constexpr int kReaders = 4;
  constexpr size_t kBatch = 12;

  for (int i = 0; i < kKeys; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Key(i), Value(i, 0)).ok());
  }

  std::atomic<int> min_version{0};
  std::atomic<bool> done{false};
  std::atomic<int> errors{0};
  std::mutex diag_mu;
  std::string diag;

  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; t++) {
    readers.emplace_back([&, t] {
      int i = t;
      std::vector<std::string> key_strs(kBatch);
      std::vector<Slice> keys(kBatch);
      std::vector<PinnableSlice> values(kBatch);
      std::vector<Status> statuses(kBatch);
      while (!done.load(std::memory_order_relaxed)) {
        // The floor is read BEFORE the batch is issued: the batch's shared
        // snapshot must be at least this fresh for every key in it.
        int floor_version = min_version.load(std::memory_order_acquire);
        for (size_t j = 0; j + 2 < kBatch; j++) {
          key_strs[j] = Key((i + static_cast<int>(j)) % kKeys);
        }
        key_strs[kBatch - 2] = key_strs[0];  // duplicate of the first key
        key_strs[kBatch - 1] = "zz-absent";  // never written
        for (size_t j = 0; j < kBatch; j++) keys[j] = Slice(key_strs[j]);
        db_->MultiGet(ReadOptions(), kBatch, keys.data(), values.data(),
                      statuses.data());
        for (size_t j = 0; j + 1 < kBatch; j++) {
          if (!statuses[j].ok()) {
            errors++;
            std::lock_guard<std::mutex> l(diag_mu);
            diag += "status=" + statuses[j].ToString() +
                    " key=" + key_strs[j] + "\n";
            continue;
          }
          std::string value = values[j].ToString();
          int want_key = (i + static_cast<int>(j)) % kKeys;
          if (j == kBatch - 2) want_key = i % kKeys;
          int got_key = -1, got_version = -1;
          if (sscanf(value.c_str(), "val-%d-v%d", &got_key, &got_version) !=
                  2 ||
              got_key != want_key || got_version < floor_version ||
              value != Value(got_key, got_version)) {
            errors++;
            std::lock_guard<std::mutex> l(diag_mu);
            diag += "key=" + key_strs[j] + " floor=" +
                    std::to_string(floor_version) + " value=" + value + "\n";
          }
        }
        // The duplicate shares the primary's snapshot: identical bytes.
        if (statuses[kBatch - 2].ok() && statuses[0].ok() &&
            values[kBatch - 2].ToString() != values[0].ToString()) {
          errors++;
          std::lock_guard<std::mutex> l(diag_mu);
          diag += "dup mismatch: " + values[0].ToString() + " vs " +
                  values[kBatch - 2].ToString() + "\n";
        }
        if (!statuses[kBatch - 1].IsNotFound()) {
          errors++;
          std::lock_guard<std::mutex> l(diag_mu);
          diag += "absent key status=" + statuses[kBatch - 1].ToString() +
                  "\n";
        }
        for (auto& v : values) v.Reset();
        i++;
      }
    });
  }

  for (int round = 1; round <= kRounds; round++) {
    for (int i = 0; i < kKeys; i++) {
      ASSERT_TRUE(db_->Put(WriteOptions(), Key(i), Value(i, round)).ok());
    }
    min_version.store(round, std::memory_order_release);
  }
  done = true;
  for (auto& t : readers) t.join();
  EXPECT_EQ(errors.load(), 0) << diag;
}

// A thread's cached SuperVersion must be refreshed across a memtable
// switch: write, flush (installs a new SuperVersion), then read on the
// same thread — the stale cached copy may not serve the read.
TEST_P(SuperVersionTest, ThreadLocalCacheRefreshesAcrossSwitch) {
  Open();
  for (int round = 0; round < 5; round++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Key(1), Value(1, round)).ok());
    std::string value;
    ASSERT_TRUE(db_->Get(ReadOptions(), Key(1), &value).ok());  // warm cache
    EXPECT_EQ(value, Value(1, round));
    ASSERT_TRUE(db_->FlushMemTable().ok());  // new SuperVersion installed
    ASSERT_TRUE(db_->Get(ReadOptions(), Key(1), &value).ok());
    EXPECT_EQ(value, Value(1, round));
    // And a write after the flush is visible immediately on this thread.
    ASSERT_TRUE(db_->Put(WriteOptions(), Key(2), Value(2, round)).ok());
    ASSERT_TRUE(db_->Get(ReadOptions(), Key(2), &value).ok());
    EXPECT_EQ(value, Value(2, round));
  }
}

// Iterators pin the SuperVersion they were created against: data written
// (and flushed) after creation must not appear, and the iterator stays
// valid while maintenance retires its memtables and files.
TEST_P(SuperVersionTest, IteratorSnapshotSurvivesChurn) {
  Open();
  constexpr int kKeys = 40;
  for (int i = 0; i < kKeys; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Key(i), Value(i, 0)).ok());
  }
  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));

  // Churn: overwrite everything twice with flushes in between.
  for (int round = 1; round <= 2; round++) {
    for (int i = 0; i < kKeys; i++) {
      ASSERT_TRUE(db_->Put(WriteOptions(), Key(i), Value(i, round)).ok());
    }
    ASSERT_TRUE(db_->FlushMemTable().ok());
  }
  ASSERT_TRUE(db_->CompactAll().ok());

  int n = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    EXPECT_EQ(iter->key().ToString(), Key(n));
    EXPECT_EQ(iter->value().ToString(), Value(n, 0));  // pre-churn values
    n++;
  }
  EXPECT_TRUE(iter->status().ok());
  EXPECT_EQ(n, kKeys);
}

// An explicit snapshot gives repeatable reads across flush/compaction.
TEST_P(SuperVersionTest, SnapshotRepeatableReadAcrossFlush) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), Key(7), Value(7, 1)).ok());
  const Snapshot* snap = db_->GetSnapshot();
  ASSERT_TRUE(db_->Put(WriteOptions(), Key(7), Value(7, 2)).ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());

  ReadOptions at_snap;
  at_snap.snapshot = snap;
  std::string value;
  ASSERT_TRUE(db_->Get(at_snap, Key(7), &value).ok());
  EXPECT_EQ(value, Value(7, 1));
  ASSERT_TRUE(db_->Get(ReadOptions(), Key(7), &value).ok());
  EXPECT_EQ(value, Value(7, 2));
  db_->ReleaseSnapshot(snap);
}

// A pinned Get result must stay readable after the read state it came from
// is retired (memtable flushed, files compacted): the pin holds the
// SuperVersion / block alive, not the DB's current state.
TEST_P(SuperVersionTest, PinnedValueOutlivesReadStateChurn) {
  Open();
  ASSERT_TRUE(db_->Put(WriteOptions(), Key(3), Value(3, 1)).ok());

  // Pin a memtable-resident value.
  PinnableSlice from_mem;
  ASSERT_TRUE(db_->Get(ReadOptions(), Key(3), &from_mem).ok());

  // Retire that memtable and rewrite the key.
  ASSERT_TRUE(db_->Put(WriteOptions(), Key(3), Value(3, 2)).ok());
  ASSERT_TRUE(db_->FlushMemTable().ok());

  // Pin an SSTable-resident value (block-cache or owned block).
  PinnableSlice from_sst;
  ASSERT_TRUE(db_->Get(ReadOptions(), Key(3), &from_sst).ok());
  ASSERT_TRUE(db_->CompactAll().ok());

  EXPECT_EQ(from_mem.ToString(), Value(3, 1));
  EXPECT_EQ(from_sst.ToString(), Value(3, 2));
}

// Threads that exit with a parked cached SuperVersion must release their
// reference (thread-exit handler), and reopening DBs must recycle
// thread-local slots without crosstalk between instances.
TEST_P(SuperVersionTest, ThreadExitAndReopenReclaimCachedCopies) {
  for (int round = 0; round < 3; round++) {
    Open();
    ASSERT_TRUE(db_->Put(WriteOptions(), Key(0), Value(0, round)).ok());
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; t++) {
      threads.emplace_back([&] {
        std::string value;
        for (int i = 0; i < 10; i++) {
          ASSERT_TRUE(db_->Get(ReadOptions(), Key(0), &value).ok());
          EXPECT_EQ(value, Value(0, round));
        }
        // Thread exits here with a SuperVersion parked in its slot.
      });
    }
    for (auto& t : threads) t.join();
    ASSERT_TRUE(db_->FlushMemTable().ok());  // scrapes exited threads' slots
    std::string value;
    ASSERT_TRUE(db_->Get(ReadOptions(), Key(0), &value).ok());
    EXPECT_EQ(value, Value(0, round));
    db_.reset();  // destructor reclaims the remaining references
  }
}

// DBIter may be handed to (and destroyed on) a different thread than the
// one that created it; the SuperVersion reference it carries is a plain
// ref, so this must be safe.
TEST_P(SuperVersionTest, IteratorDestroyedOnOtherThread) {
  Open();
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Key(i), Value(i, 0)).ok());
  }
  Iterator* iter = db_->NewIterator(ReadOptions());
  iter->SeekToFirst();
  ASSERT_TRUE(iter->Valid());
  std::thread consumer([iter] {
    int n = 0;
    for (Iterator* it = iter; it->Valid(); it->Next()) n++;
    EXPECT_EQ(n, 20);
    delete iter;
  });
  consumer.join();
  // The DB is still fully usable afterwards.
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), Key(5), &value).ok());
  EXPECT_EQ(value, Value(5, 0));
}

INSTANTIATE_TEST_SUITE_P(LockFreeAndMutexBaseline, SuperVersionTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "MutexBaseline" : "LockFree";
                         });

// ThreadLocalPtr unit coverage: per-instance slots, swap/CAS protocol,
// scrape-based invalidation, and thread-exit handlers.
TEST(ThreadLocalPtrTest, SwapAndCompareAndSwapPerInstance) {
  util::ThreadLocalPtr a;
  util::ThreadLocalPtr b;
  int x = 0, y = 0;
  EXPECT_EQ(a.Swap(&x), nullptr);
  EXPECT_EQ(b.Swap(&y), nullptr);  // instances don't share slots
  EXPECT_EQ(a.Swap(nullptr), &x);
  EXPECT_EQ(b.Swap(nullptr), &y);
  EXPECT_TRUE(a.CompareAndSwap(nullptr, &x));
  EXPECT_FALSE(a.CompareAndSwap(&y, &y));
  EXPECT_EQ(a.Swap(nullptr), &x);
}

TEST(ThreadLocalPtrTest, ScrapeCollectsAllThreads) {
  util::ThreadLocalPtr tls;
  int values[4];
  std::vector<std::thread> threads;
  std::atomic<int> parked{0};
  std::atomic<bool> release{false};
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([&, t] {
      tls.Swap(&values[t]);
      parked++;
      while (!release.load()) std::this_thread::yield();
    });
  }
  while (parked.load() < 4) std::this_thread::yield();
  int marker = 0;
  std::vector<void*> collected;
  tls.Scrape(&collected, &marker);
  EXPECT_EQ(collected.size(), 4u);
  release = true;
  for (auto& t : threads) t.join();
}

TEST(ThreadLocalPtrTest, UnrefHandlerRunsAtThreadExit) {
  static std::atomic<int> unrefs{0};
  unrefs = 0;
  util::ThreadLocalPtr tls(+[](void* /*ptr*/) { unrefs++; });
  int value = 0;
  std::thread t([&] { tls.Swap(&value); });
  t.join();
  EXPECT_EQ(unrefs.load(), 1);
  // The slot was cleared at exit: a scrape finds nothing.
  std::vector<void*> collected;
  tls.Scrape(&collected, nullptr);
  EXPECT_TRUE(collected.empty());
}

}  // namespace
}  // namespace adcache::lsm
