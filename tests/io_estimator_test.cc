#include "core/io_estimator.h"

#include <gtest/gtest.h>

#include "core/stats_collector.h"

namespace adcache::core {
namespace {

TEST(IoEstimatorTest, BloomFprDropsWithBits) {
  EXPECT_DOUBLE_EQ(IoEstimator::BloomFprForBitsPerKey(0), 1.0);
  double fpr10 = IoEstimator::BloomFprForBitsPerKey(10);
  EXPECT_GT(fpr10, 0.0);
  EXPECT_LT(fpr10, 0.02);  // paper: ~1% at 10 bits/key
  EXPECT_LT(IoEstimator::BloomFprForBitsPerKey(20), fpr10);
}

TEST(IoEstimatorTest, PointOnlyMatchesPaperFormula) {
  WindowStats w;
  w.point_lookups = 1000;
  LsmShapeParams shape;
  shape.bloom_fpr = 0.01;
  // IO_estimate = p * (1 + FPR).
  EXPECT_NEAR(IoEstimator::EstimateIo(w, shape), 1000 * 1.01, 1e-9);
}

TEST(IoEstimatorTest, ScanCostIncludesSeekAndDataBlocks) {
  WindowStats w;
  w.scans = 100;
  w.scan_keys = 100 * 16;  // l = 16
  LsmShapeParams shape;
  shape.num_levels = 4;
  shape.l0_max_runs = 8;
  shape.entries_per_block = 4;
  shape.bloom_fpr = 0;
  // Per scan: l/B + (L + r0max/2 - 1) = 4 + (4 + 4 - 1) = 11.
  EXPECT_NEAR(IoEstimator::EstimateIo(w, shape), 100 * 11.0, 1e-9);
}

TEST(IoEstimatorTest, HitRateZeroWhenMissesMatchEstimate) {
  WindowStats w;
  w.point_lookups = 100;
  LsmShapeParams shape;
  shape.bloom_fpr = 0;
  w.block_reads = 100;
  EXPECT_NEAR(IoEstimator::EstimateHitRate(w, shape), 0.0, 1e-9);
}

TEST(IoEstimatorTest, HitRateOneWithNoMisses) {
  WindowStats w;
  w.point_lookups = 100;
  w.block_reads = 0;
  LsmShapeParams shape;
  EXPECT_NEAR(IoEstimator::EstimateHitRate(w, shape), 1.0, 0.02);
}

TEST(IoEstimatorTest, HitRateClampedToUnitInterval) {
  WindowStats w;
  w.point_lookups = 10;
  w.block_reads = 10000;  // more misses than the estimate (e.g. L0 pileup)
  LsmShapeParams shape;
  EXPECT_EQ(IoEstimator::EstimateHitRate(w, shape), 0.0);
}

TEST(IoEstimatorTest, EmptyWindowYieldsZero) {
  WindowStats w;
  LsmShapeParams shape;
  EXPECT_EQ(IoEstimator::EstimateHitRate(w, shape), 0.0);
}

TEST(StatsCollectorTest, HarvestReturnsWindowDeltas) {
  StatsCollector stats;
  stats.RecordPointLookup(true);
  stats.RecordPointLookup(false);
  stats.RecordScan(16, false);
  stats.RecordWrite();
  StatsCollector::MaintenanceSample m1;
  m1.compactions = 2;
  m1.flushes = 3;
  m1.stall_micros = 500;
  m1.write_groups = 4;
  WindowStats w1 = stats.Harvest(50, m1);
  EXPECT_EQ(w1.point_lookups, 2u);
  EXPECT_EQ(w1.scans, 1u);
  EXPECT_EQ(w1.writes, 1u);
  EXPECT_EQ(w1.scan_keys, 16u);
  EXPECT_EQ(w1.range_point_hits, 1u);
  EXPECT_EQ(w1.block_reads, 50u);
  EXPECT_EQ(w1.compactions, 2u);
  EXPECT_EQ(w1.flushes, 3u);
  EXPECT_EQ(w1.stall_micros, 500u);
  EXPECT_EQ(w1.write_groups, 4u);

  stats.RecordScan(8, true);
  StatsCollector::MaintenanceSample m2 = m1;
  m2.flushes = 4;
  m2.stall_micros = 750;
  m2.write_groups = 9;
  WindowStats w2 = stats.Harvest(70, m2);
  EXPECT_EQ(w2.point_lookups, 0u);
  EXPECT_EQ(w2.scans, 1u);
  EXPECT_EQ(w2.range_scan_hits, 1u);
  EXPECT_EQ(w2.block_reads, 20u);
  EXPECT_EQ(w2.compactions, 0u);
  EXPECT_EQ(w2.flushes, 1u);
  EXPECT_EQ(w2.stall_micros, 250u);
  EXPECT_EQ(w2.write_groups, 5u);
}

TEST(StatsCollectorTest, RatiosAndAverages) {
  WindowStats w;
  w.point_lookups = 50;
  w.scans = 25;
  w.writes = 25;
  w.scan_keys = 400;
  EXPECT_DOUBLE_EQ(w.PointRatio(), 0.5);
  EXPECT_DOUBLE_EQ(w.ScanRatio(), 0.25);
  EXPECT_DOUBLE_EQ(w.WriteRatio(), 0.25);
  EXPECT_DOUBLE_EQ(w.AvgScanLength(), 16.0);
  WindowStats empty;
  EXPECT_DOUBLE_EQ(empty.PointRatio(), 0.0);
  EXPECT_DOUBLE_EQ(empty.AvgScanLength(), 0.0);
}

}  // namespace
}  // namespace adcache::core
