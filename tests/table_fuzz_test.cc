// Randomised round-trip properties for the storage format: arbitrary binary
// keys and values (including embedded NULs, 0xFF runs, empty values, long
// keys) must survive the block and table formats bit-exactly, and seeks
// must agree with a std::map reference.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "lsm/block.h"
#include "lsm/block_builder.h"
#include "lsm/dbformat.h"
#include "lsm/table.h"
#include "lsm/table_builder.h"
#include "util/clock.h"
#include "util/env.h"
#include "util/random.h"

namespace adcache::lsm {
namespace {

std::string RandomBytes(Random* rng, size_t min_len, size_t max_len) {
  size_t len = min_len + rng->Uniform(max_len - min_len + 1);
  std::string s(len, '\0');
  for (auto& c : s) c = static_cast<char>(rng->Uniform(256));
  return s;
}

class TableFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TableFuzzTest, BinaryKeyValueRoundTripThroughBlock) {
  Random rng(GetParam());
  std::map<std::string, std::string> model;
  for (int i = 0; i < 300; i++) {
    model[RandomBytes(&rng, 1, 64)] = RandomBytes(&rng, 0, 256);
  }
  BlockBuilder builder(1 + static_cast<int>(rng.Uniform(32)));
  for (const auto& [k, v] : model) {
    builder.Add(Slice(MakeInternalKey(k, 7, kTypeValue)), Slice(v));
  }
  Block block(builder.Finish().ToString());
  InternalKeyComparator cmp;
  std::unique_ptr<Iterator> it(block.NewIterator(&cmp));

  // Full forward walk matches the model exactly.
  auto expected = model.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next(), ++expected) {
    ASSERT_NE(expected, model.end());
    EXPECT_EQ(ExtractUserKey(it->key()).ToString(), expected->first);
    EXPECT_EQ(it->value().ToString(), expected->second);
  }
  EXPECT_EQ(expected, model.end());

  // Random seeks agree with lower_bound.
  for (int i = 0; i < 100; i++) {
    std::string probe = RandomBytes(&rng, 1, 64);
    it->Seek(Slice(MakeInternalKey(probe, kMaxSequenceNumber, kTypeValue)));
    auto want = model.lower_bound(probe);
    if (want == model.end()) {
      EXPECT_FALSE(it->Valid());
    } else {
      ASSERT_TRUE(it->Valid());
      EXPECT_EQ(ExtractUserKey(it->key()).ToString(), want->first);
    }
  }
}

TEST_P(TableFuzzTest, BinaryKeyValueRoundTripThroughTable) {
  Random rng(GetParam() * 31 + 5);
  SimClock clock;
  auto env = NewMemEnv(&clock);
  Options options;
  options.env = env.get();
  options.block_size = 256 + rng.Uniform(2048);

  std::map<std::string, std::string> model;
  for (int i = 0; i < 500; i++) {
    model[RandomBytes(&rng, 1, 48)] = RandomBytes(&rng, 0, 128);
  }
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env->NewWritableFile("/fuzz.sst", &file).ok());
  TableBuilder builder(options, std::move(file));
  for (const auto& [k, v] : model) {
    builder.Add(Slice(MakeInternalKey(k, 3, kTypeValue)), Slice(v));
  }
  ASSERT_TRUE(builder.Finish().ok());

  std::unique_ptr<RandomAccessFile> rfile;
  ASSERT_TRUE(env->NewRandomAccessFile("/fuzz.sst", &rfile).ok());
  std::unique_ptr<Table> table;
  ASSERT_TRUE(
      Table::Open(options, std::move(rfile), 1, env.get(), &table).ok());
  EXPECT_EQ(table->num_entries(), model.size());

  // Every stored key is found with its exact value.
  for (const auto& [k, v] : model) {
    std::string value;
    ASSERT_EQ(table->Get(ReadOptions(), Slice(k), 10, &value, nullptr),
              Table::LookupResult::kFound);
    EXPECT_EQ(value, v);
  }
  // Random absent probes are rejected (bloom may pass, lookup must not).
  for (int i = 0; i < 200; i++) {
    std::string probe = RandomBytes(&rng, 1, 48);
    if (model.count(probe)) continue;
    std::string value;
    EXPECT_EQ(table->Get(ReadOptions(), Slice(probe), 10, &value, nullptr),
              Table::LookupResult::kNotFound);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TableFuzzTest,
                         ::testing::Values(1, 17, 99, 2026));

}  // namespace
}  // namespace adcache::lsm
