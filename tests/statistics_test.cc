// The observability stack: Statistics registry (tickers / histograms /
// gauges / StatsLevel gating), thread-local PerfContext, EventListener
// payloads for flush / compaction / RL actions, and the periodic dumper.
// Run with -DADCACHE_SANITIZE=thread to check the concurrent-recorder paths.

#include "core/statistics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/adcache_store.h"
#include "lsm/db.h"
#include "util/clock.h"
#include "util/env.h"
#include "util/perf_context.h"

namespace adcache::core {
namespace {

// ---------------------------------------------------------------------------
// Statistics registry
// ---------------------------------------------------------------------------

TEST(StatisticsTest, TickersAccumulateAndReset) {
  Statistics stats;
  EXPECT_EQ(stats.GetTickerCount(kTickerPointLookups), 0u);
  stats.RecordTick(kTickerPointLookups);
  stats.RecordTick(kTickerPointLookups, 41);
  stats.RecordTick(kTickerScans, 7);
  EXPECT_EQ(stats.GetTickerCount(kTickerPointLookups), 42u);
  EXPECT_EQ(stats.GetTickerCount(kTickerScans), 7u);

  stats.SetGauge(kGaugeRangeRatio, 0.75);
  stats.Reset();
  EXPECT_EQ(stats.GetTickerCount(kTickerPointLookups), 0u);
  EXPECT_EQ(stats.GetTickerCount(kTickerScans), 0u);
  // Gauges keep their last value across Reset.
  EXPECT_DOUBLE_EQ(stats.GetGauge(kGaugeRangeRatio), 0.75);
}

TEST(StatisticsTest, StatsLevelGatesRecording) {
  Statistics stats;
  stats.SetStatsLevel(StatsLevel::kDisabled);
  stats.RecordTick(kTickerWrites, 100);
  stats.RecordLatency(kHistPutMicros, 10);
  EXPECT_EQ(stats.GetTickerCount(kTickerWrites), 0u);
  EXPECT_EQ(stats.GetHistogram(kHistPutMicros).count, 0u);

  // Default level: tickers yes, LatencyTimer no.
  stats.SetStatsLevel(StatsLevel::kExceptTimers);
  EXPECT_FALSE(stats.TimersEnabled());
  stats.RecordTick(kTickerWrites, 5);
  { LatencyTimer timer(&stats, kHistPutMicros); }
  EXPECT_EQ(stats.GetTickerCount(kTickerWrites), 5u);
  EXPECT_EQ(stats.GetHistogram(kHistPutMicros).count, 0u);

  stats.SetStatsLevel(StatsLevel::kAll);
  EXPECT_TRUE(stats.TimersEnabled());
  { LatencyTimer timer(&stats, kHistPutMicros); }
  EXPECT_EQ(stats.GetHistogram(kHistPutMicros).count, 1u);

  // A null registry is always safe.
  { LatencyTimer timer(nullptr, kHistPutMicros); }
}

TEST(StatisticsTest, HistogramPercentilesAreOrderedAndPlausible) {
  Statistics stats;
  // Uniform 1..1000us. The histogram is log-bucketed with intra-bucket
  // interpolation, so percentiles are approximate but must land near the
  // true quantiles and in order.
  for (uint64_t v = 1; v <= 1000; v++) {
    stats.RecordLatency(kHistGetMicros, v);
  }
  HistogramSnapshot s = stats.GetHistogram(kHistGetMicros);
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 1000u);
  EXPECT_NEAR(s.average, 500.5, 1.0);
  EXPECT_NEAR(s.p50, 500.0, 150.0);
  EXPECT_NEAR(s.p95, 950.0, 150.0);
  EXPECT_NEAR(s.p99, 990.0, 150.0);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, static_cast<double>(s.max) + 1e-9);
}

TEST(StatisticsTest, ConcurrentRecordersMergeCleanly) {
  Statistics stats;
  stats.SetStatsLevel(StatsLevel::kAll);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;

  std::atomic<bool> stop_reader{false};
  // A racing reader exercises Histogram::Merge against live recorders; the
  // snapshots it sees must be internally sane at every instant.
  std::thread reader([&] {
    while (!stop_reader.load(std::memory_order_relaxed)) {
      HistogramSnapshot s = stats.GetHistogram(kHistGetMicros);
      EXPECT_LE(s.p50, s.p95 + 1e-9);
      EXPECT_LE(s.p95, s.p99 + 1e-9);
      stats.GetTickerCount(kTickerPointLookups);
      stats.ToJson();
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; t++) {
    writers.emplace_back([&stats, t] {
      for (int i = 0; i < kPerThread; i++) {
        stats.RecordTick(kTickerPointLookups);
        stats.RecordLatency(kHistGetMicros,
                            static_cast<uint64_t>(t * kPerThread + i) % 997);
        stats.SetGauge(kGaugeSmoothedHitRate, 0.5);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop_reader.store(true);
  reader.join();

  EXPECT_EQ(stats.GetTickerCount(kTickerPointLookups),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(stats.GetHistogram(kHistGetMicros).count,
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(stats.GetGauge(kGaugeSmoothedHitRate), 0.5);
}

TEST(StatisticsTest, NamesAndJsonExposeEveryMetric) {
  Statistics stats;
  stats.RecordTick(kTickerBlockReads, 3);
  stats.RecordLatency(kHistScanMicros, 25);
  stats.SetGauge(kGaugeScanA, 16.0);
  std::string json = stats.ToJson();
  for (uint32_t t = 0; t < kTickerCount; t++) {
    EXPECT_NE(json.find(Statistics::TickerName(static_cast<Ticker>(t))),
              std::string::npos);
  }
  for (uint32_t h = 0; h < kHistCount; h++) {
    EXPECT_NE(
        json.find(Statistics::HistogramName(static_cast<HistogramKind>(h))),
        std::string::npos);
  }
  for (uint32_t g = 0; g < kGaugeCount; g++) {
    EXPECT_NE(json.find(Statistics::GaugeName(static_cast<Gauge>(g))),
              std::string::npos);
  }
  EXPECT_NE(json.find("\"adcache.block.reads\":3"), std::string::npos);
  std::string text = stats.ToString();
  EXPECT_NE(text.find("adcache.block.reads COUNT : 3"), std::string::npos);
}

TEST(StatisticsTest, PeriodicDumperEmitsAtLeastOnce) {
  Statistics stats;
  stats.RecordTick(kTickerFlushes);
  std::atomic<int> dumps{0};
  std::string last;
  {
    PeriodicStatsDumper dumper(&stats, 5, [&](const std::string& json) {
      dumps.fetch_add(1, std::memory_order_relaxed);
      last = json;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }  // destructor stops after a final dump
  EXPECT_GE(dumps.load(), 1);
  EXPECT_NE(last.find("\"adcache.flushes\":1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// PerfContext
// ---------------------------------------------------------------------------

TEST(PerfContextTest, CountersAreLevelGatedAndThreadLocal) {
  util::SetPerfLevel(util::PerfLevel::kDisable);
  util::GetPerfContext()->Reset();
  ADCACHE_PERF_COUNTER_ADD(block_read_count, 1);
  EXPECT_EQ(util::GetPerfContext()->block_read_count, 0u);

  util::SetPerfLevel(util::PerfLevel::kEnableCount);
  ADCACHE_PERF_COUNTER_ADD(block_read_count, 2);
  EXPECT_EQ(util::GetPerfContext()->block_read_count, 2u);

  std::thread t([] {
    // Each thread starts at the default level with a zeroed context.
    EXPECT_EQ(util::GetPerfLevel(), util::PerfLevel::kDisable);
    ADCACHE_PERF_COUNTER_ADD(block_read_count, 100);
    EXPECT_EQ(util::GetPerfContext()->block_read_count, 0u);
    util::SetPerfLevel(util::PerfLevel::kEnableCount);
    ADCACHE_PERF_COUNTER_ADD(block_read_count, 5);
    EXPECT_EQ(util::GetPerfContext()->block_read_count, 5u);
  });
  t.join();
  // The other thread's activity never leaks into this context.
  EXPECT_EQ(util::GetPerfContext()->block_read_count, 2u);
  util::SetPerfLevel(util::PerfLevel::kDisable);
}

TEST(PerfContextTest, TimersOnlyRunAtEnableTime) {
  util::GetPerfContext()->Reset();
  util::SetPerfLevel(util::PerfLevel::kEnableCount);
  {
    ADCACHE_PERF_TIMER_GUARD(wal_sync_micros);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(util::GetPerfContext()->wal_sync_micros, 0u);

  util::SetPerfLevel(util::PerfLevel::kEnableTime);
  {
    ADCACHE_PERF_TIMER_GUARD(wal_sync_micros);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(util::GetPerfContext()->wal_sync_micros, 0u);
  util::SetPerfLevel(util::PerfLevel::kDisable);
}

TEST(PerfContextTest, ToStringSkipsZeroCountersByDefault) {
  util::PerfContext ctx;
  ctx.block_read_count = 3;
  std::string s = ctx.ToString();
  EXPECT_NE(s.find("block_read_count = 3"), std::string::npos);
  EXPECT_EQ(s.find("wal_sync_count"), std::string::npos);
  EXPECT_NE(ctx.ToString(false).find("wal_sync_count"), std::string::npos);
}

// ---------------------------------------------------------------------------
// EventListener payloads
// ---------------------------------------------------------------------------

class RecordingListener : public EventListener {
 public:
  void OnFlushBegin(const FlushJobInfo&) override { flush_begins++; }
  void OnFlushCompleted(const FlushJobInfo& info) override {
    flush_completions++;
    last_flush = info;
  }
  void OnCompactionBegin(const CompactionJobInfo&) override {
    compaction_begins++;
  }
  void OnCompactionCompleted(const CompactionJobInfo& info) override {
    compaction_completions++;
    last_compaction = info;
  }
  void OnRlAction(const RlActionInfo& info) override {
    rl_actions++;
    last_action = info;
  }
  void OnCacheBoundaryMove(const CacheBoundaryMoveInfo& info) override {
    boundary_moves++;
    last_move = info;
  }

  std::atomic<int> flush_begins{0}, flush_completions{0};
  std::atomic<int> compaction_begins{0}, compaction_completions{0};
  std::atomic<int> rl_actions{0}, boundary_moves{0};
  FlushJobInfo last_flush;
  CompactionJobInfo last_compaction;
  RlActionInfo last_action;
  CacheBoundaryMoveInfo last_move;
};

TEST(EventListenerTest, FlushAndCompactionPayloadsAreSane) {
  SimClock clock;
  std::unique_ptr<Env> env = NewMemEnv(&clock);
  auto listener = std::make_shared<RecordingListener>();
  lsm::Options options;
  options.env = env.get();
  options.block_size = 512;
  options.table_file_size = 4 * 1024;
  options.memtable_size = 4 * 1024;
  options.level1_size_base = 16 * 1024;
  options.listeners.push_back(listener);

  std::unique_ptr<lsm::DB> db;
  ASSERT_TRUE(lsm::DB::Open(options, "/events", &db).ok());
  std::string value(256, 'v');
  for (int i = 0; i < 400; i++) {
    char key[16];
    snprintf(key, sizeof(key), "key%06d", i);
    ASSERT_TRUE(db->Put(lsm::WriteOptions(), Slice(key), Slice(value)).ok());
  }
  ASSERT_TRUE(db->FlushMemTable().ok());
  // Compactions run on the maintenance thread; give them bounded time.
  for (int spin = 0; spin < 5000 && listener->compaction_completions == 0;
       spin++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  db.reset();  // drains background work; completions can't outrun begins

  ASSERT_GE(listener->flush_completions.load(), 1);
  EXPECT_EQ(listener->flush_begins.load(), listener->flush_completions.load());
  EXPECT_GT(listener->last_flush.file_number, 0u);
  EXPECT_GT(listener->last_flush.num_entries, 0u);
  EXPECT_GT(listener->last_flush.file_size, 0u);
  EXPECT_GE(listener->last_flush.num_imm_remaining, 0);

  ASSERT_GE(listener->compaction_completions.load(), 1);
  EXPECT_EQ(listener->compaction_begins.load(),
            listener->compaction_completions.load());
  EXPECT_GT(listener->last_compaction.num_input_files, 0);
  EXPECT_GT(listener->last_compaction.input_bytes, 0u);
  EXPECT_GE(listener->last_compaction.output_level,
            listener->last_compaction.input_level);
}

TEST(EventListenerTest, RlActionEventsCarryTheAppliedControlState) {
  SimClock clock;
  std::unique_ptr<Env> env = NewMemEnv(&clock);
  lsm::Options lsm_options;
  lsm_options.env = env.get();
  lsm_options.block_size = 512;
  lsm_options.table_file_size = 16 * 1024;
  lsm_options.memtable_size = 32 * 1024;
  lsm_options.level1_size_base = 64 * 1024;

  auto listener = std::make_shared<RecordingListener>();
  AdCacheOptions options;
  options.cache_budget = 256 * 1024;
  options.controller.window_size = 100;
  options.controller.agent.hidden_dim = 32;
  options.listeners.push_back(listener);
  std::unique_ptr<AdCacheStore> store;
  ASSERT_TRUE(AdCacheStore::Open(options, lsm_options, "/rl", &store).ok());

  std::string value;
  for (int i = 0; i < 150; i++) {
    char key[16];
    snprintf(key, sizeof(key), "key%06d", i);
    ASSERT_TRUE(store->Put(Slice(key), Slice("value")).ok());
  }
  for (int i = 0; i < 150; i++) {
    char key[16];
    snprintf(key, sizeof(key), "key%06d", i % 50);
    store->Get(Slice(key), &value);
  }
  store->ForceWindowEnd();

  ASSERT_GE(listener->rl_actions.load(), 1);
  const RlActionInfo& a = listener->last_action;
  EXPECT_GE(a.window_index, 1u);
  EXPECT_GE(a.reward, -1.0);
  EXPECT_LE(a.reward, 1.0);
  EXPECT_GE(a.new_range_ratio, 0.0);
  EXPECT_LE(a.new_range_ratio, 1.0);
  EXPECT_GE(a.new_point_threshold, 0.0);
  EXPECT_GT(a.new_scan_a, 0.0);
  EXPECT_GE(a.new_scan_b, 0.0);
  EXPECT_LE(a.new_scan_b, 1.0);

  // The registry's gauges and the snapshot view both show the applied state.
  Statistics* stats = store->statistics();
  EXPECT_GE(stats->GetTickerCount(kTickerRlActions),
            static_cast<uint64_t>(listener->rl_actions.load()));
  EXPECT_DOUBLE_EQ(stats->GetGauge(kGaugeRangeRatio), a.new_range_ratio);
  EXPECT_DOUBLE_EQ(stats->GetGauge(kGaugePointThreshold),
                   a.new_point_threshold);
  CacheStatsSnapshot snap = store->GetCacheStats();
  EXPECT_DOUBLE_EQ(snap.range_ratio, a.new_range_ratio);
  EXPECT_DOUBLE_EQ(snap.scan_a, a.new_scan_a);

  if (listener->boundary_moves.load() > 0) {
    const CacheBoundaryMoveInfo& m = listener->last_move;
    EXPECT_EQ(m.total_budget_bytes, options.cache_budget);
    EXPECT_NE(m.new_range_ratio, m.old_range_ratio);
    EXPECT_LE(m.new_range_capacity_bytes, m.total_budget_bytes);
  }
}

TEST(EventListenerTest, StoreOpTickersTrackTheApiBoundary) {
  SimClock clock;
  std::unique_ptr<Env> env = NewMemEnv(&clock);
  lsm::Options lsm_options;
  lsm_options.env = env.get();
  lsm_options.block_size = 512;
  lsm_options.table_file_size = 16 * 1024;
  lsm_options.memtable_size = 32 * 1024;
  lsm_options.level1_size_base = 64 * 1024;

  AdCacheOptions options;
  options.cache_budget = 256 * 1024;
  options.controller.window_size = 1000;
  options.controller.agent.hidden_dim = 32;
  std::unique_ptr<AdCacheStore> store;
  ASSERT_TRUE(AdCacheStore::Open(options, lsm_options, "/ops", &store).ok());

  for (int i = 0; i < 100; i++) {
    char key[16];
    snprintf(key, sizeof(key), "key%06d", i);
    ASSERT_TRUE(store->Put(Slice(key), Slice("value")).ok());
  }
  ASSERT_TRUE(store->db()->FlushMemTable().ok());
  std::string value;
  for (int i = 0; i < 10; i++) {
    char key[16];
    snprintf(key, sizeof(key), "key%06d", i);
    ASSERT_TRUE(store->Get(Slice(key), &value).ok());
  }
  std::vector<KvPair> results;
  ASSERT_TRUE(store->Scan(Slice("key"), 20, &results).ok());

  Statistics* stats = store->statistics();
  EXPECT_EQ(stats->GetTickerCount(kTickerWrites), 100u);
  EXPECT_EQ(stats->GetTickerCount(kTickerPointLookups), 10u);
  EXPECT_EQ(stats->GetTickerCount(kTickerScans), 1u);
  EXPECT_EQ(stats->GetTickerCount(kTickerScanKeysRead), 20u);

  // GetCacheStats folds the component counters into the registry tickers;
  // the snapshot and the registry must agree afterwards.
  CacheStatsSnapshot snap = store->GetCacheStats();
  EXPECT_EQ(snap.block_reads, stats->GetTickerCount(kTickerBlockReads));
  EXPECT_EQ(snap.range_hits, stats->GetTickerCount(kTickerRangeCacheHits));
  EXPECT_EQ(snap.range_misses,
            stats->GetTickerCount(kTickerRangeCacheMisses));
  EXPECT_GT(snap.block_reads, 0u);
}

}  // namespace
}  // namespace adcache::core
