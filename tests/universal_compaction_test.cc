#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "cache/cache.h"
#include "lsm/db.h"
#include "util/clock.h"
#include "util/env.h"
#include "util/random.h"

namespace adcache::lsm {
namespace {

class UniversalCompactionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv(&clock_);
    options_.env = env_.get();
    options_.compaction_style = CompactionStyle::kUniversal;
    options_.universal_run_trigger = 4;
    options_.block_size = 512;
    options_.memtable_size = 8 * 1024;
    Reopen();
  }

  void Reopen() {
    db_.reset();
    ASSERT_TRUE(DB::Open(options_, "/udb", &db_).ok());
  }

  static std::string Key(int i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%06d", i);
    return buf;
  }

  std::string Get(const std::string& k) {
    std::string value;
    Status s = db_->Get(ReadOptions(), Slice(k), &value);
    return s.ok() ? value : "NOT_FOUND";
  }

  SimClock clock_;
  std::unique_ptr<Env> env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

TEST_F(UniversalCompactionTest, AllDataStaysInLevelZero) {
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Slice(Key(i % 300)),
                         Slice(std::string(64, 'v'))).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  DB::LsmShape shape = db_->GetLsmShape();
  EXPECT_GT(shape.compaction_count, 0u);
  for (size_t lvl = 1; lvl < shape.files_per_level.size(); lvl++) {
    EXPECT_EQ(shape.files_per_level[lvl], 0) << "level " << lvl;
  }
  EXPECT_EQ(shape.num_levels_nonempty, 1);
}

TEST_F(UniversalCompactionTest, RunCountStaysBounded) {
  for (int i = 0; i < 8000; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Slice(Key(i % 500)),
                         Slice(std::string(64, 'v'))).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  // Compactions keep the run count in the vicinity of the trigger.
  EXPECT_LE(db_->GetLsmShape().l0_files,
            options_.universal_run_trigger + 2);
}

TEST_F(UniversalCompactionTest, ReadsCorrectAcrossMerges) {
  std::map<std::string, std::string> model;
  Random rng(9);
  for (int i = 0; i < 6000; i++) {
    std::string k = Key(static_cast<int>(rng.Uniform(400)));
    std::string v = "v" + std::to_string(i);
    ASSERT_TRUE(db_->Put(WriteOptions(), Slice(k), Slice(v)).ok());
    model[k] = v;
    if (i % 500 == 499) {
      std::string probe = Key(static_cast<int>(rng.Uniform(400)));
      auto it = model.find(probe);
      EXPECT_EQ(Get(probe), it == model.end() ? "NOT_FOUND" : it->second);
    }
  }
  for (const auto& [k, v] : model) EXPECT_EQ(Get(k), v);
}

TEST_F(UniversalCompactionTest, DeletesRespectedAcrossMerges) {
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Slice(Key(i)), Slice("v")).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  for (int i = 0; i < 200; i += 2) {
    ASSERT_TRUE(db_->Delete(WriteOptions(), Slice(Key(i))).ok());
  }
  // Churn enough to force several universal merges over the tombstones.
  for (int i = 1000; i < 4000; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Slice(Key(i)),
                         Slice(std::string(64, 'x'))).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  for (int i = 0; i < 200; i++) {
    EXPECT_EQ(Get(Key(i)), (i % 2 == 0) ? "NOT_FOUND" : "v") << i;
  }
}

TEST_F(UniversalCompactionTest, ScansSeeMergedView) {
  for (int round = 0; round < 5; round++) {
    for (int i = round; i < 100; i += 5) {
      ASSERT_TRUE(db_->Put(WriteOptions(), Slice(Key(i)),
                           Slice("r" + std::to_string(round))).ok());
    }
    ASSERT_TRUE(db_->FlushMemTable().ok());
  }
  std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
  int count = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) count++;
  EXPECT_EQ(count, 100);
}

TEST_F(UniversalCompactionTest, RecoverySeesUniversalLayout) {
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Slice(Key(i % 250)),
                         Slice("v" + std::to_string(i))).ok());
  }
  ASSERT_TRUE(db_->FlushMemTable().ok());
  Reopen();
  // Newest values win after recovery.
  for (int i = 1750; i < 2000; i++) {
    EXPECT_EQ(Get(Key(i % 250)), "v" + std::to_string(i));
  }
}

}  // namespace
}  // namespace adcache::lsm
