// Stress tests for the asynchronous write path: group commit, the
// immutable-memtable flush pipeline, write stalls, and Close() draining.
// Run with -DADCACHE_SANITIZE=thread to check the locking discipline.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "lsm/db.h"
#include "util/clock.h"
#include "util/fault_injection_env.h"

namespace adcache::lsm {
namespace {

std::string WriterKey(int writer, int i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "w%d-k%06d", writer, i);
  return buf;
}

std::string WriterValue(int writer, int i) {
  char buf[64];
  snprintf(buf, sizeof(buf), "val-%d-%06d-%040d", writer, i, 0);
  return buf;
}

class BackgroundMaintenanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv(&clock_);
    options_.env = env_.get();
    // Small sizes force constant flush/compaction churn under the writers.
    options_.block_size = 512;
    options_.table_file_size = 8 * 1024;
    options_.memtable_size = 8 * 1024;
    options_.level1_size_base = 32 * 1024;
  }

  void Open() { ASSERT_TRUE(DB::Open(options_, "/db", &db_).ok()); }

  SimClock clock_;
  std::unique_ptr<Env> env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

// N writers + M readers over flush/compaction churn: every acknowledged
// write must be readable with its exact value, while maintenance constantly
// retires memtables and rewrites files underneath the readers.
TEST_F(BackgroundMaintenanceTest, AckedWritesReadableUnderChurn) {
  Open();
  constexpr int kWriters = 4;
  constexpr int kReaders = 2;
  constexpr int kKeysPerWriter = 300;

  std::atomic<int> acked[kWriters];
  for (auto& a : acked) a.store(-1);
  std::atomic<bool> writers_done{false};
  std::atomic<int> errors{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kKeysPerWriter; i++) {
        Status s = db_->Put(WriteOptions(), Slice(WriterKey(t, i)),
                            Slice(WriterValue(t, i)));
        if (!s.ok()) {
          errors.fetch_add(1);
          return;
        }
        acked[t].store(i, std::memory_order_release);
      }
    });
  }
  for (int r = 0; r < kReaders; r++) {
    threads.emplace_back([&, r] {
      uint32_t state = 0x9e3779b9u + static_cast<uint32_t>(r);
      while (!writers_done.load(std::memory_order_acquire)) {
        state = state * 1664525u + 1013904223u;
        int t = static_cast<int>(state >> 16) % kWriters;
        int hi = acked[t].load(std::memory_order_acquire);
        if (hi < 0) continue;
        int i = static_cast<int>(state >> 4) % (hi + 1);
        std::string value;
        Status s = db_->Get(ReadOptions(), Slice(WriterKey(t, i)), &value);
        if (!s.ok() || value != WriterValue(t, i)) errors.fetch_add(1);
      }
    });
  }
  for (size_t i = 0; i < kWriters; i++) threads[i].join();
  writers_done.store(true, std::memory_order_release);
  for (size_t i = kWriters; i < threads.size(); i++) threads[i].join();

  EXPECT_EQ(errors.load(), 0);
  // Final sweep: everything acked is still there after maintenance settles.
  ASSERT_TRUE(db_->FlushMemTable().ok());
  for (int t = 0; t < kWriters; t++) {
    ASSERT_EQ(acked[t].load(), kKeysPerWriter - 1);
    for (int i = 0; i < kKeysPerWriter; i++) {
      std::string value;
      ASSERT_TRUE(db_->Get(ReadOptions(), Slice(WriterKey(t, i)), &value).ok())
          << WriterKey(t, i);
      EXPECT_EQ(value, WriterValue(t, i));
    }
  }
  DB::MaintenanceStats stats = db_->GetMaintenanceStats();
  EXPECT_GT(stats.flushes, 0u);
  EXPECT_GT(stats.write_groups, 0u);
  EXPECT_GE(stats.grouped_writes, stats.write_groups);
}

// A writer atomically updates a set of keys per round (one WriteBatch);
// concurrent snapshot readers and iterators must never observe a torn
// round, even while group commit batches rounds together and flushes churn.
TEST_F(BackgroundMaintenanceTest, SnapshotsAndIteratorsNeverSeeTornBatches) {
  Open();
  constexpr int kKeys = 20;
  constexpr int kRounds = 150;
  auto key = [](int i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "s-k%02d", i);
    return std::string(buf);
  };
  auto value = [](int round) {
    char buf[48];
    snprintf(buf, sizeof(buf), "round-%06d-%020d", round, 0);
    return std::string(buf);
  };

  std::atomic<bool> done{false};
  std::atomic<int> errors{0};

  std::thread writer([&] {
    for (int round = 0; round < kRounds; round++) {
      WriteBatch batch;
      for (int i = 0; i < kKeys; i++) {
        batch.Put(Slice(key(i)), Slice(value(round)));
      }
      if (!db_->Write(WriteOptions(), batch).ok()) {
        errors.fetch_add(1);
        return;
      }
    }
    done.store(true, std::memory_order_release);
  });

  std::thread snapshot_reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const Snapshot* snap = db_->GetSnapshot();
      ReadOptions ro;
      ro.snapshot = snap;
      std::string first;
      bool have_first = false;
      for (int i = 0; i < kKeys; i++) {
        std::string v;
        Status s = db_->Get(ro, Slice(key(i)), &v);
        if (!s.ok()) v = "NOT_FOUND";
        if (!have_first) {
          first = v;
          have_first = true;
        } else if (v != first) {
          errors.fetch_add(1);  // torn batch visible through the snapshot
        }
      }
      db_->ReleaseSnapshot(snap);
    }
  });

  std::thread iter_reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
      std::string first;
      int seen = 0;
      for (it->Seek(Slice("s-k")); it->Valid() && seen < kKeys; it->Next()) {
        if (seen == 0) {
          first = it->value().ToString();
        } else if (it->value().ToString() != first) {
          errors.fetch_add(1);
        }
        seen++;
      }
      if (seen != 0 && seen != kKeys) errors.fetch_add(1);
    }
  });

  writer.join();
  snapshot_reader.join();
  iter_reader.join();
  EXPECT_EQ(errors.load(), 0);
  std::string v;
  ASSERT_TRUE(db_->Get(ReadOptions(), Slice(key(0)), &v).ok());
  EXPECT_EQ(v, value(kRounds - 1));
}

// Close() drains in-flight background work; unflushed (but WAL-logged)
// writes survive a reopen through multi-WAL replay, and writes after Close
// fail cleanly.
TEST_F(BackgroundMaintenanceTest, CloseDrainsAndReopenRecoversEverything) {
  Open();
  constexpr int kKeys = 800;
  for (int i = 0; i < kKeys; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Slice(WriterKey(0, i)),
                         Slice(WriterValue(0, i)))
                    .ok());
  }
  ASSERT_TRUE(db_->Close().ok());
  EXPECT_FALSE(db_->Put(WriteOptions(), Slice("after"), Slice("x")).ok());
  ASSERT_TRUE(db_->Close().ok());  // idempotent

  db_.reset();
  Open();
  for (int i = 0; i < kKeys; i++) {
    std::string value;
    ASSERT_TRUE(db_->Get(ReadOptions(), Slice(WriterKey(0, i)), &value).ok())
        << WriterKey(0, i);
    EXPECT_EQ(value, WriterValue(0, i));
  }
}

/// Blocks SSTable creation until the gate opens, so a test can hold the
/// flush pipeline deterministically and force a write stall.
class GateEnv : public Env {
 public:
  explicit GateEnv(Env* base) : Env(base->clock()), base_(base) {}

  void OpenGate() {
    std::lock_guard<std::mutex> l(mu_);
    open_ = true;
    cv_.notify_all();
  }
  bool HasWaiter() {
    std::lock_guard<std::mutex> l(mu_);
    return waiting_ > 0;
  }

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    if (fname.size() > 4 && fname.compare(fname.size() - 4, 4, ".sst") == 0) {
      std::unique_lock<std::mutex> l(mu_);
      waiting_++;
      cv_.wait(l, [&] { return open_; });
      waiting_--;
    }
    return base_->NewWritableFile(fname, result);
  }
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    return base_->NewSequentialFile(fname, result);
  }
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    return base_->NewRandomAccessFile(fname, result);
  }
  Status RemoveFile(const std::string& fname) override {
    return base_->RemoveFile(fname);
  }
  Status CreateDirIfMissing(const std::string& dirname) override {
    return base_->CreateDirIfMissing(dirname);
  }
  Status GetChildren(const std::string& dirname,
                     std::vector<std::string>* result) override {
    return base_->GetChildren(dirname, result);
  }
  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }

 private:
  Env* base_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
  int waiting_ = 0;
};

// With the flush pipeline held shut and the immutable list full, writers
// must stall (not fail, not lose data) until a flush completes, and the
// stall must be accounted in stall_micros.
TEST_F(BackgroundMaintenanceTest, FullImmutableListStallsWritersThenResolves) {
  GateEnv gate(env_.get());
  options_.env = &gate;
  options_.max_write_buffer_number = 2;  // one active + one immutable
  Open();

  constexpr int kKeys = 500;  // ~60 KB, far beyond the two memtables
  std::atomic<int> progress{0};
  std::atomic<bool> writer_done{false};
  Status writer_status;
  std::thread writer([&] {
    for (int i = 0; i < kKeys; i++) {
      writer_status = db_->Put(WriteOptions(), Slice(WriterKey(0, i)),
                               Slice(WriterValue(0, i)));
      if (!writer_status.ok()) break;
      progress.fetch_add(1, std::memory_order_release);
    }
    writer_done.store(true, std::memory_order_release);
  });

  // The writer must wedge: the flush is blocked on the gate, so once the
  // immutable list and the active memtable are full it can only stall.
  // "Wedged" = no progress for 100 ms while the gate holds a waiter.
  int stable = 0;
  int prev = -1;
  while (!writer_done.load(std::memory_order_acquire) && stable < 20) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    int cur = progress.load(std::memory_order_acquire);
    if (cur == prev && gate.HasWaiter()) {
      stable++;
    } else {
      stable = 0;
      prev = cur;
    }
  }
  ASSERT_FALSE(writer_done.load()) << "writer finished without stalling";
  EXPECT_GT(db_->GetLsmShape().imm_memtables, 0);

  gate.OpenGate();
  writer.join();
  ASSERT_TRUE(writer_status.ok());
  EXPECT_EQ(progress.load(), kKeys);

  DB::MaintenanceStats stats = db_->GetMaintenanceStats();
  EXPECT_GT(stats.stall_micros, 0u);
  EXPECT_GT(stats.flushes, 0u);
  for (int i = 0; i < kKeys; i += 97) {
    std::string value;
    ASSERT_TRUE(db_->Get(ReadOptions(), Slice(WriterKey(0, i)), &value).ok());
    EXPECT_EQ(value, WriterValue(0, i));
  }
  db_.reset();  // before the stack-allocated GateEnv it points at
}

// Concurrent sync writers with a realized sync latency must be batched into
// commit groups: fewer WAL syncs than batches.
TEST_F(BackgroundMaintenanceTest, ConcurrentSyncWritersGroupCommit) {
  MemEnvOptions env_opts;
  env_opts.sync_latency_micros = 2000;
  env_opts.realize_latency = true;
  env_ = NewMemEnv(&clock_, env_opts);
  options_.env = env_.get();
  options_.memtable_size = 1 << 20;  // keep maintenance out of the picture
  Open();

  constexpr int kThreads = 8;
  constexpr int kWritesPerThread = 25;
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  WriteOptions sync_write;
  sync_write.sync = true;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kWritesPerThread; i++) {
        if (!db_->Put(sync_write, Slice(WriterKey(t, i)),
                      Slice(WriterValue(t, i)))
                 .ok()) {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(errors.load(), 0);

  DB::MaintenanceStats stats = db_->GetMaintenanceStats();
  EXPECT_EQ(stats.grouped_writes,
            static_cast<uint64_t>(kThreads * kWritesPerThread));
  // With a 2 ms realized sync, followers pile up behind every leader: at
  // least one group must have carried more than one batch.
  EXPECT_LT(stats.write_groups, stats.grouped_writes);
  EXPECT_LE(stats.wal_syncs, stats.write_groups);
}

// enable_group_commit=false (the benchmark baseline) must degrade to one
// WAL record and one sync per batch.
TEST_F(BackgroundMaintenanceTest, DisabledGroupCommitWritesOneRecordPerBatch) {
  options_.enable_group_commit = false;
  options_.memtable_size = 1 << 20;
  Open();

  constexpr int kThreads = 4;
  constexpr int kWritesPerThread = 10;
  std::vector<std::thread> threads;
  WriteOptions sync_write;
  sync_write.sync = true;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kWritesPerThread; i++) {
        ASSERT_TRUE(db_->Put(sync_write, Slice(WriterKey(t, i)),
                             Slice(WriterValue(t, i)))
                        .ok());
      }
    });
  }
  for (auto& t : threads) t.join();

  DB::MaintenanceStats stats = db_->GetMaintenanceStats();
  EXPECT_EQ(stats.write_groups,
            static_cast<uint64_t>(kThreads * kWritesPerThread));
  EXPECT_EQ(stats.grouped_writes, stats.write_groups);
  EXPECT_EQ(stats.wal_syncs, stats.write_groups);
}

// A background flush failure surfaces to a writer (retryable, not fatal):
// after the fault clears, the flush retries and every acked write survives.
TEST_F(BackgroundMaintenanceTest, BackgroundFlushFailureSurfacesAndRecovers) {
  FaultInjectionEnv fault(env_.get());
  options_.env = &fault;
  Open();

  fault.SetFailFileCreation(true);
  // Writes keep succeeding into memtables until backpressure surfaces the
  // background error; both outcomes (stall-then-error or direct error) are
  // acceptable as long as nothing acked is lost.
  int last_acked = -1;
  for (int i = 0; i < 400; i++) {
    Status s = db_->Put(WriteOptions(), Slice(WriterKey(0, i)),
                        Slice(WriterValue(0, i)));
    if (!s.ok()) break;
    last_acked = i;
  }
  EXPECT_GT(fault.injected_failures(), 0u);

  fault.SetFailFileCreation(false);
  Status s = db_->FlushMemTable();
  for (int retry = 0; !s.ok() && retry < 5; retry++) {
    s = db_->FlushMemTable();
  }
  ASSERT_TRUE(s.ok());
  ASSERT_GE(last_acked, 0);
  for (int i = 0; i <= last_acked; i++) {
    std::string value;
    ASSERT_TRUE(db_->Get(ReadOptions(), Slice(WriterKey(0, i)), &value).ok())
        << WriterKey(0, i);
    EXPECT_EQ(value, WriterValue(0, i));
  }
  EXPECT_GT(db_->GetMaintenanceStats().flushes, 0u);
  db_.reset();  // before the stack-allocated FaultInjectionEnv
}

// The writer/reader churn scenario again, this time under a fault-injection
// Env that periodically kills writes: unacked writes may vanish, but every
// acked write must stay readable.
TEST_F(BackgroundMaintenanceTest, ChurnWithInjectedWriteFaults) {
  FaultInjectionEnv fault(env_.get());
  options_.env = &fault;
  Open();

  constexpr int kWriters = 3;
  constexpr int kKeysPerWriter = 200;
  std::vector<std::vector<int>> acked(kWriters);
  std::atomic<bool> done{false};
  std::mutex acked_mu;

  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; t++) {
    threads.emplace_back([&, t] {
      std::vector<int> mine;
      for (int i = 0; i < kKeysPerWriter; i++) {
        Status s = db_->Put(WriteOptions(), Slice(WriterKey(t, i)),
                            Slice(WriterValue(t, i)));
        if (s.ok()) mine.push_back(i);
      }
      std::lock_guard<std::mutex> l(acked_mu);
      acked[t] = std::move(mine);
    });
  }
  std::thread saboteur([&] {
    for (int round = 0; round < 20 && !done.load(); round++) {
      fault.FailNthWrite(25);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  for (auto& t : threads) t.join();
  done.store(true);
  saboteur.join();
  fault.FailNthWrite(0);  // disarm

  Status s = db_->FlushMemTable();
  for (int retry = 0; !s.ok() && retry < 5; retry++) {
    s = db_->FlushMemTable();
  }
  ASSERT_TRUE(s.ok());
  size_t total_acked = 0;
  for (int t = 0; t < kWriters; t++) {
    total_acked += acked[t].size();
    for (int i : acked[t]) {
      std::string value;
      ASSERT_TRUE(db_->Get(ReadOptions(), Slice(WriterKey(t, i)), &value).ok())
          << WriterKey(t, i);
      EXPECT_EQ(value, WriterValue(t, i));
    }
  }
  EXPECT_GT(total_acked, 0u);
  db_.reset();  // before the stack-allocated FaultInjectionEnv
}

}  // namespace
}  // namespace adcache::lsm
