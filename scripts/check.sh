#!/usr/bin/env bash
# Full verification: tier-1 build+tests, the ThreadSanitizer concurrency
# suite (read path + background maintenance + batched reads), and an
# AddressSanitizer pass over the cache + MultiGet lifetime-heavy tests.
#
# Usage: scripts/check.sh [--tsan-only|--asan-only|--tier1-only]
set -euo pipefail

cd "$(dirname "$0")/.."

run_tier1=1
run_tsan=1
run_asan=1
case "${1:-}" in
  --tsan-only) run_tier1=0; run_asan=0 ;;
  --asan-only) run_tier1=0; run_tsan=0 ;;
  --tier1-only) run_tsan=0; run_asan=0 ;;
  "") ;;
  *) echo "usage: $0 [--tsan-only|--asan-only|--tier1-only]" >&2; exit 2 ;;
esac

if [[ $run_tier1 -eq 1 ]]; then
  echo "== tier-1: build + full test suite =="
  cmake -B build -S . >/dev/null
  cmake --build build -j
  ctest --test-dir build --output-on-failure -j
fi

if [[ $run_tsan -eq 1 ]]; then
  echo "== tsan: concurrency suite =="
  cmake -B build-tsan -S . -DADCACHE_SANITIZE=thread \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build build-tsan -j --target \
        superversion_test background_maintenance_test multiget_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/superversion_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/background_maintenance_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/multiget_test
fi

if [[ $run_asan -eq 1 ]]; then
  echo "== asan: cache + batched-read lifetime suite =="
  cmake -B build-asan -S . -DADCACHE_SANITIZE=address \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build build-asan -j --target \
        lru_cache_test range_cache_test kv_cache_test \
        multiget_test superversion_test
  for t in lru_cache_test range_cache_test kv_cache_test \
           multiget_test superversion_test; do
    ASAN_OPTIONS="halt_on_error=1" "./build-asan/tests/$t"
  done
fi

echo "== all checks passed =="
