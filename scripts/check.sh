#!/usr/bin/env bash
# Full verification: tier-1 build+tests, a second tier-1 pass with the
# lock-free clock block cache selected (ADCACHE_BLOCK_CACHE_IMPL=clock), the
# ThreadSanitizer concurrency suite (read path + background maintenance +
# batched reads + statistics + clock cache), an AddressSanitizer pass over
# the cache + MultiGet lifetime-heavy tests, and an observability smoke test
# (bench_micro --stats-smoke JSON dump).
#
# Usage: scripts/check.sh [--tsan-only|--asan-only|--tier1-only|--stats-only|--cache-impl=clock|--shards=N|--secondary|--memwall|--subcompaction]
set -euo pipefail

cd "$(dirname "$0")/.."

run_tier1=1
run_clock=1
run_shards=1
run_secondary=1
run_memwall=1
run_subcompaction=1
run_tsan=1
run_asan=1
run_stats=1
run_server=1
nshards=4
case "${1:-}" in
  --tsan-only) run_tier1=0; run_clock=0; run_shards=0; run_secondary=0; run_memwall=0; run_subcompaction=0; run_asan=0; run_stats=0; run_server=0 ;;
  --asan-only) run_tier1=0; run_clock=0; run_shards=0; run_secondary=0; run_memwall=0; run_subcompaction=0; run_tsan=0; run_stats=0; run_server=0 ;;
  --tier1-only) run_clock=0; run_shards=0; run_secondary=0; run_memwall=0; run_subcompaction=0; run_tsan=0; run_asan=0; run_stats=0; run_server=0 ;;
  --stats-only) run_tier1=0; run_clock=0; run_shards=0; run_secondary=0; run_memwall=0; run_subcompaction=0; run_tsan=0; run_asan=0; run_server=0 ;;
  --cache-impl=clock) run_tier1=0; run_shards=0; run_secondary=0; run_memwall=0; run_subcompaction=0; run_tsan=0; run_asan=0; run_stats=0; run_server=0 ;;
  --shards=*) run_tier1=0; run_clock=0; run_secondary=0; run_memwall=0; run_subcompaction=0; run_tsan=0; run_asan=0; run_stats=0; run_server=0
              nshards="${1#--shards=}" ;;
  --secondary) run_tier1=0; run_clock=0; run_shards=0; run_memwall=0; run_subcompaction=0; run_tsan=0; run_asan=0; run_stats=0; run_server=0 ;;
  --memwall) run_tier1=0; run_clock=0; run_shards=0; run_secondary=0; run_subcompaction=0; run_tsan=0; run_asan=0; run_stats=0; run_server=0 ;;
  --subcompaction) run_tier1=0; run_clock=0; run_shards=0; run_secondary=0; run_memwall=0; run_tsan=0; run_asan=0; run_stats=0; run_server=0 ;;
  --server) run_tier1=0; run_clock=0; run_shards=0; run_secondary=0; run_memwall=0; run_subcompaction=0; run_tsan=0; run_asan=0; run_stats=0 ;;
  "") ;;
  *) echo "usage: $0 [--tsan-only|--asan-only|--tier1-only|--stats-only|--cache-impl=clock|--shards=N|--secondary|--memwall|--subcompaction|--server]" >&2
     exit 2 ;;
esac

if [[ $run_tier1 -eq 1 ]]; then
  echo "== tier-1: build + full test suite =="
  cmake -B build -S . >/dev/null
  cmake --build build -j
  ctest --test-dir build --output-on-failure -j
fi

if [[ $run_clock -eq 1 ]]; then
  echo "== clock pass: cache-sensitive tests with block_cache_impl=kClock =="
  cmake -B build -S . >/dev/null
  cmake --build build -j --target multiget_test table_test adcache_store_test
  for t in multiget_test table_test adcache_store_test; do
    ADCACHE_BLOCK_CACHE_IMPL=clock "./build/tests/$t"
  done
fi

if [[ $run_shards -eq 1 ]]; then
  echo "== sharded pass: store/multiget/recovery suites with $nshards key-range shards =="
  cmake -B build -S . >/dev/null
  cmake --build build -j --target \
        adcache_store_test multiget_test sharded_store_test
  # Each suite gets split points matching its own key format so data really
  # spreads across shards; the ADCACHE_SHARDS run exercises the interpolated
  # boundaries (and thus the mostly-empty-shard paths) instead. Both cache
  # backends: the shards share ONE block cache, whichever backend is picked.
  for impl in lru clock; do
    ADCACHE_BLOCK_CACHE_IMPL=$impl \
        ADCACHE_SHARD_BOUNDARIES="key000025,key000050,key000075" \
        ./build/tests/adcache_store_test
    ADCACHE_BLOCK_CACHE_IMPL=$impl \
        ADCACHE_SHARD_BOUNDARIES="key-000025,key-000050,key-000075" \
        ./build/tests/multiget_test
    ADCACHE_BLOCK_CACHE_IMPL=$impl ADCACHE_SHARDS="$nshards" \
        ./build/tests/adcache_store_test
    ADCACHE_BLOCK_CACHE_IMPL=$impl ./build/tests/sharded_store_test
  done
fi

if [[ $run_secondary -eq 1 ]]; then
  echo "== secondary pass: flash-tier fallback wired via ADCACHE_SECONDARY_CACHE =="
  cmake -B build -S . >/dev/null
  cmake --build build -j --target \
        adcache_store_test multiget_test sharded_store_test secondary_cache_test
  ./build/tests/secondary_cache_test
  # Every store open adopts a 32 MiB slab tier under <dbname>/secondary; the
  # suites must behave identically with demotion + flash probes active, on
  # both block-cache backends.
  for impl in lru clock; do
    ADCACHE_SECONDARY_CACHE=32m ADCACHE_BLOCK_CACHE_IMPL=$impl \
        ./build/tests/adcache_store_test
    ADCACHE_SECONDARY_CACHE=32m ADCACHE_BLOCK_CACHE_IMPL=$impl \
        ./build/tests/multiget_test
    ADCACHE_SECONDARY_CACHE=32m ADCACHE_BLOCK_CACHE_IMPL=$impl \
        ./build/tests/sharded_store_test
  done
fi

if [[ $run_memwall -eq 1 ]]; then
  echo "== memwall pass: unified memory wall active at a low total =="
  cmake -B build -S . >/dev/null
  cmake --build build -j --target \
        memory_budget_test adcache_store_test multiget_test \
        sharded_store_test store_consistency_test
  ./build/tests/memory_budget_test
  # ADCACHE_MEMORY_BUDGET switches every store open to the unified wall:
  # the controller re-carves block/range/memtable/bloom inside one low
  # total while the suites run. Tests pinning exact legacy capacities or
  # forcing DRAM pressure through a tiny cache_budget are scoped out (the
  # wall replaces those budgets by design); everything else must behave
  # identically on both block-cache backends.
  for impl in lru clock; do
    ADCACHE_MEMORY_BUDGET=1m ADCACHE_BLOCK_CACHE_IMPL=$impl \
        ./build/tests/adcache_store_test --gtest_filter=-AdCacheStoreTest.StatsSnapshotExposesControlState:AdCacheSecondaryTest.*
    ADCACHE_MEMORY_BUDGET=1m ADCACHE_BLOCK_CACHE_IMPL=$impl \
        ./build/tests/multiget_test
    ADCACHE_MEMORY_BUDGET=1m ADCACHE_BLOCK_CACHE_IMPL=$impl \
        ./build/tests/sharded_store_test
    ADCACHE_MEMORY_BUDGET=2m ADCACHE_BLOCK_CACHE_IMPL=$impl \
        ./build/tests/store_consistency_test
  done
fi

if [[ $run_subcompaction -eq 1 ]]; then
  echo "== subcompaction pass: parallel compaction forced on via ADCACHE_SUBCOMPACTIONS=4 =="
  cmake -B build -S . >/dev/null
  cmake --build build -j --target \
        adcache_store_test multiget_test sharded_store_test subcompaction_test
  ./build/tests/subcompaction_test
  # Every compaction in these suites fans out to 4 subranges; behaviour must
  # be identical on both block-cache backends, single-store and sharded.
  for impl in lru clock; do
    ADCACHE_SUBCOMPACTIONS=4 ADCACHE_BLOCK_CACHE_IMPL=$impl \
        ./build/tests/adcache_store_test
    ADCACHE_SUBCOMPACTIONS=4 ADCACHE_BLOCK_CACHE_IMPL=$impl \
        ./build/tests/multiget_test
    ADCACHE_SUBCOMPACTIONS=4 ADCACHE_BLOCK_CACHE_IMPL=$impl \
        ./build/tests/sharded_store_test
  done
fi

if [[ $run_tsan -eq 1 ]]; then
  echo "== tsan: concurrency suite =="
  cmake -B build-tsan -S . -DADCACHE_SANITIZE=thread \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build build-tsan -j --target \
        superversion_test background_maintenance_test multiget_test \
        statistics_test clock_cache_test sharded_store_test \
        secondary_cache_test server_test memory_budget_test \
        subcompaction_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/memory_budget_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/secondary_cache_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/superversion_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/background_maintenance_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/subcompaction_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/multiget_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/statistics_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/clock_cache_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/sharded_store_test
  # Front door: event loops, coalescer slots and shutdown under TSan.
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/server_test
  # The batched read path drives MultiLookup/MultiRelease against whichever
  # backend the env selects; rerun it on the lock-free table.
  ADCACHE_BLOCK_CACHE_IMPL=clock TSAN_OPTIONS="halt_on_error=1" \
      ./build-tsan/tests/multiget_test
fi

if [[ $run_asan -eq 1 ]]; then
  echo "== asan: cache + batched-read lifetime suite =="
  cmake -B build-asan -S . -DADCACHE_SANITIZE=address \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build build-asan -j --target \
        lru_cache_test range_cache_test kv_cache_test \
        multiget_test superversion_test clock_cache_test sharded_store_test \
        secondary_cache_test server_test memory_budget_test \
        subcompaction_test
  for t in lru_cache_test range_cache_test kv_cache_test \
           multiget_test superversion_test clock_cache_test \
           sharded_store_test secondary_cache_test server_test \
           memory_budget_test subcompaction_test; do
    ASAN_OPTIONS="halt_on_error=1" "./build-asan/tests/$t"
  done
  ADCACHE_BLOCK_CACHE_IMPL=clock ASAN_OPTIONS="halt_on_error=1" \
      ./build-asan/tests/multiget_test
fi

if [[ $run_stats -eq 1 ]]; then
  echo "== stats: observability smoke (bench_micro --stats-smoke) =="
  cmake -B build -S . >/dev/null
  cmake --build build -j --target bench_micro
  ./build/bench/bench_micro --stats-smoke 2>/dev/null > /tmp/stats_smoke.json
  python3 - <<'EOF'
import json

with open("/tmp/stats_smoke.json") as f:
    d = json.load(f)

t = d["stats"]["tickers"]
for key in ("adcache.point.lookups", "adcache.scans", "adcache.writes",
            "adcache.block.reads", "adcache.flushes"):
    assert t[key] > 0, f"ticker {key} is zero"
assert t["adcache.rl.actions"] >= 1, "no RL actions recorded"
# Compaction bandwidth + write-stall observability (parallel subcompactions).
assert t["adcache.compaction.bytes.read"] > 0, "no compaction read bytes"
assert t["adcache.compaction.bytes.written"] > 0, "no compaction written bytes"
assert t["adcache.write.stall.micros"] >= 0
stall_hist = d["stats"]["histograms"]["adcache.write.stall.duration.micros"]
assert stall_hist["count"] == t["adcache.write.stalls"], \
    "stall histogram count disagrees with stall ticker"
assert "adcache.gauge.compaction_parallelism" in d["stats"]["gauges"], \
    "compaction parallelism gauge missing"
# Secondary (flash) tier: the smoke config caps DRAM and enables an 8 MiB
# slab tier, so demotions and flash probes must both fire and the RL
# boundary gauges must be live.
assert t["adcache.secondary.demotions"] > 0, "no demotions to the flash tier"
assert t["adcache.secondary.hits"] > 0, "secondary tier never hit"
assert t["adcache.secondary.misses"] > 0, "secondary tier never probed past"
g = d["stats"]["gauges"]
assert g["adcache.gauge.secondary_capacity_bytes"] > 0, \
    "secondary capacity gauge unset"
assert g["adcache.gauge.secondary_usage_bytes"] > 0, \
    "secondary usage gauge unset"
sec_hist = d["stats"]["histograms"]["adcache.secondary.read.micros"]
assert sec_hist["count"] > 0, "no secondary read latencies recorded"
assert d["rl_action_events"] >= 1, "EventListener saw no RL actions"
assert d["stats_dumps"] >= 1, "periodic stats dumper never fired"
# PerfContext is thread-local to the workload thread; the ticker also sees
# background compaction reads, so it can only be >=.
assert 0 < d["perf_block_reads"] <= t["adcache.block.reads"], \
    "PerfContext block reads inconsistent with ticker"

for hist in ("adcache.get.micros", "adcache.scan.micros",
             "adcache.put.micros"):
    h = d["stats"]["histograms"][hist]
    assert h["count"] > 0, f"{hist} empty"
    assert 0 <= h["p50"] <= h["p95"] <= h["p99"], f"{hist} percentiles"

lat = d["phase"]["latency_micros"]
for op in ("point", "scan", "write"):
    assert lat[op]["count"] > 0, f"phase {op} latency empty"
    assert lat[op]["p99"] >= lat[op]["p50"] >= 0, f"phase {op} percentiles"

print("stats smoke OK:",
      f"{t['adcache.rl.actions']} RL actions,",
      f"{d['stats_dumps']} dumps,",
      f"get p99 = {d['stats']['histograms']['adcache.get.micros']['p99']:.1f}us")
EOF
fi

if [[ $run_server -eq 1 ]]; then
  echo "== server: front-door loopback smoke + connection-sweep contract =="
  cmake -B build -S . >/dev/null
  cmake --build build -j --target adcache_server bench_connections
  # Loopback smoke against both cache backends and a key-range-sharded
  # store: the front door must serve identically whatever the env selects.
  for cfg in "ADCACHE_BLOCK_CACHE_IMPL=lru" "ADCACHE_BLOCK_CACHE_IMPL=clock" \
             "ADCACHE_SHARDS=4"; do
    db="$(mktemp -d)"
    log=/tmp/adcache_server_smoke.log
    env "$cfg" ADCACHE_SERVER_THREADS=2 \
        ./build/src/server/adcache_server --port=0 --db="$db/db" \
        >"$log" 2>&1 &
    server_pid=$!
    port=""
    for _ in $(seq 1 150); do
      port=$(sed -n 's/.*port=\([0-9]*\).*/\1/p' "$log" | head -1)
      [[ -n "$port" ]] && break
      sleep 0.2
    done
    if [[ -z "$port" ]]; then
      echo "adcache_server failed to start ($cfg):" >&2
      cat "$log" >&2
      exit 1
    fi
    python3 - "$port" "$cfg" <<'EOF'
import socket, sys

port, cfg = int(sys.argv[1]), sys.argv[2]
s = socket.create_connection(("127.0.0.1", port), timeout=10)
s.settimeout(10)

def bulk(x):
    b = x.encode()
    return b"$%d\r\n%s\r\n" % (len(b), b)

request = (
    b"SET smoke1 one\r\n"
    b"SET smoke2 two\r\n"
    b"GET smoke1\r\n"
    b"*4\r\n" + bulk("MGET") + bulk("smoke1") + bulk("absent") + bulk("smoke2") +
    b"SCAN smoke1 2\r\n"
    b"DEL smoke1\r\n"
    b"GET smoke1\r\n"
    b"PING\r\n"
    b"STATS\r\n"
    b"QUIT\r\n")
s.sendall(request)
data = b""
while True:
    chunk = s.recv(65536)
    if not chunk:
        break
    data += chunk

expected_prefix = (
    b"+OK\r\n+OK\r\n" + bulk("one") +
    b"*3\r\n" + bulk("one") + b"$-1\r\n" + bulk("two") +
    b"*4\r\n" + bulk("smoke1") + bulk("one") + bulk("smoke2") + bulk("two") +
    b":1\r\n$-1\r\n+PONG\r\n$")
assert data.startswith(expected_prefix), (cfg, data[:200])
assert b"{" in data, (cfg, "STATS did not return JSON")
assert data.endswith(b"+OK\r\n"), (cfg, data[-40:])
print(f"server smoke OK ({cfg}): {len(data)} reply bytes")
EOF
    kill -INT "$server_pid"
    wait "$server_pid"
    rm -rf "$db"
  done

  # Connection-sweep smoke: the JSON contract bench_connections promises.
  ./build/bench/bench_connections --smoke 2>/dev/null \
      > /tmp/bench_connections_smoke.json
  python3 - <<'EOF'
import json

with open("/tmp/bench_connections_smoke.json") as f:
    d = json.load(f)

cells = d["cells"]
assert len(cells) == 4, f"expected 4 smoke cells, got {len(cells)}"
for c in cells:
    assert c["errors"] == 0, c
    assert c["ops"] > 0 and c["throughput_ops_s"] > 0, c
    assert 0 <= c["p50_us"] <= c["p95_us"] <= c["p99_us"], c
    if c["coalesce"]:
        assert c["coalesced_gets"] > 0 and c["batches"] >= 1, c
        assert c["immediate_gets"] == 0, c
    else:
        assert c["batches"] == 0 and c["coalesced_gets"] == 0, c
        assert c["immediate_gets"] > 0, c
coalesced = [c for c in cells if c["coalesce"]]
print("connection smoke OK:",
      f"{len(cells)} cells,",
      f"max batch = {max(c['max_batch'] for c in coalesced)}")
EOF
fi

echo "== all checks passed =="
