#!/usr/bin/env bash
# Full verification: tier-1 build+tests, a second tier-1 pass with the
# lock-free clock block cache selected (ADCACHE_BLOCK_CACHE_IMPL=clock), the
# ThreadSanitizer concurrency suite (read path + background maintenance +
# batched reads + statistics + clock cache), an AddressSanitizer pass over
# the cache + MultiGet lifetime-heavy tests, and an observability smoke test
# (bench_micro --stats-smoke JSON dump).
#
# Usage: scripts/check.sh [--tsan-only|--asan-only|--tier1-only|--stats-only|--cache-impl=clock|--shards=N|--secondary]
set -euo pipefail

cd "$(dirname "$0")/.."

run_tier1=1
run_clock=1
run_shards=1
run_secondary=1
run_tsan=1
run_asan=1
run_stats=1
nshards=4
case "${1:-}" in
  --tsan-only) run_tier1=0; run_clock=0; run_shards=0; run_secondary=0; run_asan=0; run_stats=0 ;;
  --asan-only) run_tier1=0; run_clock=0; run_shards=0; run_secondary=0; run_tsan=0; run_stats=0 ;;
  --tier1-only) run_clock=0; run_shards=0; run_secondary=0; run_tsan=0; run_asan=0; run_stats=0 ;;
  --stats-only) run_tier1=0; run_clock=0; run_shards=0; run_secondary=0; run_tsan=0; run_asan=0 ;;
  --cache-impl=clock) run_tier1=0; run_shards=0; run_secondary=0; run_tsan=0; run_asan=0; run_stats=0 ;;
  --shards=*) run_tier1=0; run_clock=0; run_secondary=0; run_tsan=0; run_asan=0; run_stats=0
              nshards="${1#--shards=}" ;;
  --secondary) run_tier1=0; run_clock=0; run_shards=0; run_tsan=0; run_asan=0; run_stats=0 ;;
  "") ;;
  *) echo "usage: $0 [--tsan-only|--asan-only|--tier1-only|--stats-only|--cache-impl=clock|--shards=N|--secondary]" >&2
     exit 2 ;;
esac

if [[ $run_tier1 -eq 1 ]]; then
  echo "== tier-1: build + full test suite =="
  cmake -B build -S . >/dev/null
  cmake --build build -j
  ctest --test-dir build --output-on-failure -j
fi

if [[ $run_clock -eq 1 ]]; then
  echo "== clock pass: cache-sensitive tests with block_cache_impl=kClock =="
  cmake -B build -S . >/dev/null
  cmake --build build -j --target multiget_test table_test adcache_store_test
  for t in multiget_test table_test adcache_store_test; do
    ADCACHE_BLOCK_CACHE_IMPL=clock "./build/tests/$t"
  done
fi

if [[ $run_shards -eq 1 ]]; then
  echo "== sharded pass: store/multiget/recovery suites with $nshards key-range shards =="
  cmake -B build -S . >/dev/null
  cmake --build build -j --target \
        adcache_store_test multiget_test sharded_store_test
  # Each suite gets split points matching its own key format so data really
  # spreads across shards; the ADCACHE_SHARDS run exercises the interpolated
  # boundaries (and thus the mostly-empty-shard paths) instead. Both cache
  # backends: the shards share ONE block cache, whichever backend is picked.
  for impl in lru clock; do
    ADCACHE_BLOCK_CACHE_IMPL=$impl \
        ADCACHE_SHARD_BOUNDARIES="key000025,key000050,key000075" \
        ./build/tests/adcache_store_test
    ADCACHE_BLOCK_CACHE_IMPL=$impl \
        ADCACHE_SHARD_BOUNDARIES="key-000025,key-000050,key-000075" \
        ./build/tests/multiget_test
    ADCACHE_BLOCK_CACHE_IMPL=$impl ADCACHE_SHARDS="$nshards" \
        ./build/tests/adcache_store_test
    ADCACHE_BLOCK_CACHE_IMPL=$impl ./build/tests/sharded_store_test
  done
fi

if [[ $run_secondary -eq 1 ]]; then
  echo "== secondary pass: flash-tier fallback wired via ADCACHE_SECONDARY_CACHE =="
  cmake -B build -S . >/dev/null
  cmake --build build -j --target \
        adcache_store_test multiget_test sharded_store_test secondary_cache_test
  ./build/tests/secondary_cache_test
  # Every store open adopts a 32 MiB slab tier under <dbname>/secondary; the
  # suites must behave identically with demotion + flash probes active, on
  # both block-cache backends.
  for impl in lru clock; do
    ADCACHE_SECONDARY_CACHE=32m ADCACHE_BLOCK_CACHE_IMPL=$impl \
        ./build/tests/adcache_store_test
    ADCACHE_SECONDARY_CACHE=32m ADCACHE_BLOCK_CACHE_IMPL=$impl \
        ./build/tests/multiget_test
    ADCACHE_SECONDARY_CACHE=32m ADCACHE_BLOCK_CACHE_IMPL=$impl \
        ./build/tests/sharded_store_test
  done
fi

if [[ $run_tsan -eq 1 ]]; then
  echo "== tsan: concurrency suite =="
  cmake -B build-tsan -S . -DADCACHE_SANITIZE=thread \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build build-tsan -j --target \
        superversion_test background_maintenance_test multiget_test \
        statistics_test clock_cache_test sharded_store_test \
        secondary_cache_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/secondary_cache_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/superversion_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/background_maintenance_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/multiget_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/statistics_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/clock_cache_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/sharded_store_test
  # The batched read path drives MultiLookup/MultiRelease against whichever
  # backend the env selects; rerun it on the lock-free table.
  ADCACHE_BLOCK_CACHE_IMPL=clock TSAN_OPTIONS="halt_on_error=1" \
      ./build-tsan/tests/multiget_test
fi

if [[ $run_asan -eq 1 ]]; then
  echo "== asan: cache + batched-read lifetime suite =="
  cmake -B build-asan -S . -DADCACHE_SANITIZE=address \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build build-asan -j --target \
        lru_cache_test range_cache_test kv_cache_test \
        multiget_test superversion_test clock_cache_test sharded_store_test \
        secondary_cache_test
  for t in lru_cache_test range_cache_test kv_cache_test \
           multiget_test superversion_test clock_cache_test \
           sharded_store_test secondary_cache_test; do
    ASAN_OPTIONS="halt_on_error=1" "./build-asan/tests/$t"
  done
  ADCACHE_BLOCK_CACHE_IMPL=clock ASAN_OPTIONS="halt_on_error=1" \
      ./build-asan/tests/multiget_test
fi

if [[ $run_stats -eq 1 ]]; then
  echo "== stats: observability smoke (bench_micro --stats-smoke) =="
  cmake -B build -S . >/dev/null
  cmake --build build -j --target bench_micro
  ./build/bench/bench_micro --stats-smoke 2>/dev/null > /tmp/stats_smoke.json
  python3 - <<'EOF'
import json

with open("/tmp/stats_smoke.json") as f:
    d = json.load(f)

t = d["stats"]["tickers"]
for key in ("adcache.point.lookups", "adcache.scans", "adcache.writes",
            "adcache.block.reads", "adcache.flushes"):
    assert t[key] > 0, f"ticker {key} is zero"
assert t["adcache.rl.actions"] >= 1, "no RL actions recorded"
# Secondary (flash) tier: the smoke config caps DRAM and enables an 8 MiB
# slab tier, so demotions and flash probes must both fire and the RL
# boundary gauges must be live.
assert t["adcache.secondary.demotions"] > 0, "no demotions to the flash tier"
assert t["adcache.secondary.hits"] > 0, "secondary tier never hit"
assert t["adcache.secondary.misses"] > 0, "secondary tier never probed past"
g = d["stats"]["gauges"]
assert g["adcache.gauge.secondary_capacity_bytes"] > 0, \
    "secondary capacity gauge unset"
assert g["adcache.gauge.secondary_usage_bytes"] > 0, \
    "secondary usage gauge unset"
sec_hist = d["stats"]["histograms"]["adcache.secondary.read.micros"]
assert sec_hist["count"] > 0, "no secondary read latencies recorded"
assert d["rl_action_events"] >= 1, "EventListener saw no RL actions"
assert d["stats_dumps"] >= 1, "periodic stats dumper never fired"
# PerfContext is thread-local to the workload thread; the ticker also sees
# background compaction reads, so it can only be >=.
assert 0 < d["perf_block_reads"] <= t["adcache.block.reads"], \
    "PerfContext block reads inconsistent with ticker"

for hist in ("adcache.get.micros", "adcache.scan.micros",
             "adcache.put.micros"):
    h = d["stats"]["histograms"][hist]
    assert h["count"] > 0, f"{hist} empty"
    assert 0 <= h["p50"] <= h["p95"] <= h["p99"], f"{hist} percentiles"

lat = d["phase"]["latency_micros"]
for op in ("point", "scan", "write"):
    assert lat[op]["count"] > 0, f"phase {op} latency empty"
    assert lat[op]["p99"] >= lat[op]["p50"] >= 0, f"phase {op} percentiles"

print("stats smoke OK:",
      f"{t['adcache.rl.actions']} RL actions,",
      f"{d['stats_dumps']} dumps,",
      f"get p99 = {d['stats']['histograms']['adcache.get.micros']['p99']:.1f}us")
EOF
fi

echo "== all checks passed =="
