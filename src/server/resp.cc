#include "server/resp.h"

#include <cstdio>

namespace adcache::server {

namespace {

/// Finds "\r\n" starting at `pos`; returns the index of '\r' or npos.
size_t FindCrlf(const char* data, size_t len, size_t pos) {
  for (size_t i = pos; i + 1 < len; i++) {
    if (data[i] == '\r' && data[i + 1] == '\n') return i;
  }
  return std::string::npos;
}

/// Parses a non-negative decimal (or -1, RESP's nil length) from
/// data[begin, end). Returns false on empty/garbage/overflow.
bool ParseLength(const char* data, size_t begin, size_t end, long long* out) {
  if (begin >= end) return false;
  bool negative = false;
  size_t i = begin;
  if (data[i] == '-') {
    negative = true;
    i++;
  }
  if (i >= end) return false;
  long long value = 0;
  for (; i < end; i++) {
    char c = data[i];
    if (c < '0' || c > '9') return false;
    if (value > (1LL << 40)) return false;  // absurd; avoid overflow
    value = value * 10 + (c - '0');
  }
  *out = negative ? -value : value;
  return true;
}

}  // namespace

RespParse RespParser::Parse(const char* data, size_t len, size_t* consumed,
                            RespCommand* cmd) {
  *consumed = 0;
  cmd->args.clear();
  if (len == 0) return RespParse::kNeedMore;
  if (data[0] == '*') return ParseArray(data, len, consumed, cmd);
  return ParseInline(data, len, consumed, cmd);
}

RespParse RespParser::ParseArray(const char* data, size_t len,
                                 size_t* consumed, RespCommand* cmd) {
  size_t crlf = FindCrlf(data, len, 0);
  if (crlf == std::string::npos) {
    // The header alone can't legitimately exceed ~16 digits.
    if (len > 32) return Fail("ERR Protocol error: invalid multibulk length");
    return RespParse::kNeedMore;
  }
  long long count = 0;
  if (!ParseLength(data, 1, crlf, &count) || count < 0) {
    return Fail("ERR Protocol error: invalid multibulk length");
  }
  if (static_cast<size_t>(count) > limits_.max_array_elements) {
    return Fail("ERR Protocol error: multibulk length exceeds limit");
  }
  size_t pos = crlf + 2;
  cmd->args.reserve(static_cast<size_t>(count));
  for (long long i = 0; i < count; i++) {
    if (pos >= len) return RespParse::kNeedMore;
    if (data[pos] != '$') {
      return Fail("ERR Protocol error: expected '$', got '" +
                  std::string(1, data[pos]) + "'");
    }
    size_t hdr_end = FindCrlf(data, len, pos);
    if (hdr_end == std::string::npos) {
      if (len - pos > 32) {
        return Fail("ERR Protocol error: invalid bulk length");
      }
      return RespParse::kNeedMore;
    }
    long long bulk_len = 0;
    if (!ParseLength(data, pos + 1, hdr_end, &bulk_len) || bulk_len < 0) {
      return Fail("ERR Protocol error: invalid bulk length");
    }
    if (static_cast<size_t>(bulk_len) > limits_.max_bulk_bytes) {
      return Fail("ERR Protocol error: bulk length exceeds limit");
    }
    size_t payload = hdr_end + 2;
    size_t end = payload + static_cast<size_t>(bulk_len);
    if (end + 2 > len) return RespParse::kNeedMore;
    if (data[end] != '\r' || data[end + 1] != '\n') {
      return Fail("ERR Protocol error: bulk string missing terminator");
    }
    cmd->args.emplace_back(data + payload, static_cast<size_t>(bulk_len));
    pos = end + 2;
  }
  *consumed = pos;
  return RespParse::kCommand;
}

RespParse RespParser::ParseInline(const char* data, size_t len,
                                  size_t* consumed, RespCommand* cmd) {
  // Inline commands terminate on '\n' (with an optional preceding '\r').
  size_t newline = std::string::npos;
  for (size_t i = 0; i < len; i++) {
    if (data[i] == '\n') {
      newline = i;
      break;
    }
  }
  if (newline == std::string::npos) {
    if (len > limits_.max_inline_bytes) {
      return Fail("ERR Protocol error: too big inline request");
    }
    return RespParse::kNeedMore;
  }
  size_t line_end = newline;
  if (line_end > 0 && data[line_end - 1] == '\r') line_end--;
  if (line_end > limits_.max_inline_bytes) {
    return Fail("ERR Protocol error: too big inline request");
  }
  size_t i = 0;
  while (i < line_end) {
    while (i < line_end && (data[i] == ' ' || data[i] == '\t')) i++;
    size_t start = i;
    while (i < line_end && data[i] != ' ' && data[i] != '\t') i++;
    if (i > start) cmd->args.emplace_back(data + start, i - start);
  }
  *consumed = newline + 1;
  // An empty line is a no-op frame (redis-cli keepalive style): report it
  // as a zero-arg command; the dispatcher ignores it.
  return RespParse::kCommand;
}

void AppendSimpleString(std::string* out, const Slice& s) {
  out->push_back('+');
  out->append(s.data(), s.size());
  out->append("\r\n");
}

void AppendError(std::string* out, const Slice& message) {
  out->push_back('-');
  out->append(message.data(), message.size());
  out->append("\r\n");
}

void AppendInteger(std::string* out, long long value) {
  char buf[32];
  int n = std::snprintf(buf, sizeof(buf), ":%lld\r\n", value);
  out->append(buf, static_cast<size_t>(n));
}

void AppendBulkString(std::string* out, const Slice& s) {
  char buf[32];
  int n = std::snprintf(buf, sizeof(buf), "$%zu\r\n", s.size());
  out->append(buf, static_cast<size_t>(n));
  out->append(s.data(), s.size());
  out->append("\r\n");
}

void AppendNil(std::string* out) { out->append("$-1\r\n"); }

void AppendArrayHeader(std::string* out, size_t n) {
  char buf[32];
  int written = std::snprintf(buf, sizeof(buf), "*%zu\r\n", n);
  out->append(buf, static_cast<size_t>(written));
}

}  // namespace adcache::server
