#ifndef ADCACHE_SERVER_SERVER_H_
#define ADCACHE_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/kv_store.h"
#include "server/resp.h"
#include "util/status.h"

namespace adcache::server {

struct PendingReply;  // coalescer.h

/// Network front-door configuration. The environment knobs route through
/// util::OptionsFromEnv (see FromEnv); programmatic options win when both
/// are given, matching every other ADCACHE_* fallback in the tree.
struct ServerOptions {
  /// TCP listen port; 0 asks the OS for an ephemeral port (tests — read it
  /// back via Server::port()).
  int port = 6399;
  /// Worker event loops. Each worker owns its own epoll set, connections
  /// and read coalescer; accepted connections are dealt round-robin.
  int threads = 4;
  /// Batch concurrent in-flight point GETs into one KvStore::MultiGet per
  /// event-loop iteration (the ablation knob bench_connections sweeps).
  bool coalesce = true;
  /// Listen backlog passed to listen(2).
  int backlog = 1024;
  /// Per-frame parser bounds (oversized frames fail the connection).
  RespLimits limits;
  /// Disconnect a connection whose unparsed input backlog exceeds this.
  size_t max_input_buffer = 32 * 1024 * 1024;
  /// ReadOptions applied to every server-side read.
  lsm::ReadOptions read_options;

  /// Applies ADCACHE_SERVER_PORT / ADCACHE_SERVER_THREADS /
  /// ADCACHE_SERVER_COALESCE on top of the built-in defaults.
  static ServerOptions FromEnv();
};

/// A single-listener, level-triggered epoll TCP server speaking the RESP
/// subset GET / SET / DEL / MGET / SCAN / PING / STATS / QUIT over a
/// KvStore. Worker 0's event loop also owns the listener; accepted
/// connections are handed round-robin to all workers through wake-eventfd
/// queues. Per-connection input is parsed incrementally (pipelining falls
/// out naturally), point GETs are deferred to a per-worker ReadCoalescer
/// and answered by one MultiGet per loop iteration, and responses are
/// delivered strictly in per-connection request order via reply-slot
/// queues.
///
/// Consistency contract: writes are shard-atomic only (they inherit
/// ShardedDB's contract — a cross-shard batch is split per shard), and
/// ordering is guaranteed per connection, never across connections:
/// coalescing may execute a GET after a *different* connection's
/// concurrently-in-flight SET, exactly as any interleaving of concurrent
/// clients may. A GET never reorders past a write from its OWN connection
/// (the loop flushes the coalescer first).
class Server {
 public:
  /// Binds, listens and spawns the worker threads. The store must outlive
  /// the server.
  static Status Start(core::KvStore* store, const ServerOptions& options,
                      std::unique_ptr<Server>* server);

  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (resolves option port 0 to the OS-assigned one).
  int port() const { return port_; }

  /// Stops accepting, completes the in-flight iteration on every worker
  /// (coalescer flushed, pending output written best-effort), closes all
  /// connections and joins the workers. Idempotent.
  void Stop();

  /// Aggregated coalescer counters across workers (see ReadCoalescer).
  struct CoalesceStats {
    uint64_t batches = 0;
    uint64_t coalesced_gets = 0;
    uint64_t max_batch = 0;
    uint64_t immediate_gets = 0;  // GETs answered outside the coalescer
  };
  CoalesceStats GetCoalesceStats() const;

 private:
  struct Worker;
  struct Conn;

  Server(core::KvStore* store, const ServerOptions& options);

  Status Listen();
  void WorkerLoop(Worker* worker);
  void AcceptNew(Worker* worker);
  void HandleReadable(Worker* worker, Conn* conn);
  void DispatchCommand(Worker* worker, Conn* conn, const RespCommand& cmd);
  void ExecuteGetNow(Conn* conn, const Slice& key, PendingReply* slot);
  void PumpReplies(Conn* conn);
  void FlushOutput(Worker* worker, Conn* conn);
  void CloseConn(Worker* worker, Conn* conn);

  core::KvStore* store_;
  ServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> next_worker_{0};
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<uint64_t> immediate_gets_{0};
};

}  // namespace adcache::server

#endif  // ADCACHE_SERVER_SERVER_H_
