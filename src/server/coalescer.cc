#include "server/coalescer.h"

#include <algorithm>

namespace adcache::server {

void ReadCoalescer::Flush(core::KvStore* store,
                          const lsm::ReadOptions& options) {
  if (slots_.empty()) return;
  store->MultiGet(options, &batch_);
  for (size_t i = 0; i < slots_.size(); i++) {
    PendingReply* slot = slots_[i];
    if (batch_.status(i).ok()) {
      AppendBulkString(&slot->data, batch_.value(i).slice());
    } else if (batch_.status(i).IsNotFound()) {
      AppendNil(&slot->data);
    } else {
      AppendError(&slot->data, Slice("ERR " + batch_.status(i).ToString()));
    }
    slot->ready = true;
  }
  stats_.batches++;
  stats_.coalesced_gets += slots_.size();
  stats_.max_batch = std::max<uint64_t>(stats_.max_batch, slots_.size());
  batch_.Clear();
  slots_.clear();
  epoch_++;
}

}  // namespace adcache::server
