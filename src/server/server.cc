#include "server/server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "server/coalescer.h"
#include "util/options_env.h"

namespace adcache::server {

namespace {

/// Uppercases an ASCII command name into a stack buffer for dispatch.
/// Returns false when the name is longer than any command we speak.
bool CommandName(const Slice& arg, char out[8]) {
  if (arg.size() >= 8) return false;
  for (size_t i = 0; i < arg.size(); i++) {
    char c = arg.data()[i];
    out[i] = (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
  }
  out[arg.size()] = '\0';
  return true;
}

bool ParseCount(const Slice& arg, size_t* out) {
  if (arg.empty() || arg.size() > 10) return false;
  size_t value = 0;
  for (size_t i = 0; i < arg.size(); i++) {
    char c = arg.data()[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<size_t>(c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Connection / worker state
// ---------------------------------------------------------------------------

struct Server::Conn {
  int fd = -1;
  Worker* worker = nullptr;
  /// Buffered input. [consumed, size) is unparsed; the consumed prefix is
  /// erased only after the iteration's coalescer flush, because deferred
  /// GET keys are slices into this buffer.
  std::string in;
  size_t consumed = 0;
  /// Serialized responses awaiting write(2).
  std::string out;
  /// In-order reply slots (deque: element addresses are push-stable, which
  /// the coalescer relies on).
  std::deque<PendingReply> replies;
  /// Coalescer epoch of this connection's most recent deferred GET; when it
  /// equals the coalescer's current epoch, a write must flush first to stay
  /// in per-connection program order.
  uint64_t enqueue_epoch = ~0ULL;
  bool want_write = false;  // EPOLLOUT currently registered
  bool in_touched = false;  // already queued for this iteration's post-pass
  bool closing = false;     // close once replies and output drain (QUIT/EOF)
  bool dead = false;        // close as soon as the post-pass runs
};

struct Server::Worker {
  int id = 0;
  int epfd = -1;
  int wakefd = -1;
  std::thread thread;
  ReadCoalescer coalescer;
  RespParser parser;
  std::unordered_map<int, std::unique_ptr<Conn>> conns;
  /// Accepted fds handed over by the acceptor (worker 0), drained on wake.
  std::mutex mu;
  std::vector<int> incoming;
  /// Connections that produced work this iteration; replies are pumped and
  /// buffers compacted for exactly these after the coalescer flush.
  std::vector<Conn*> touched;
};

// ---------------------------------------------------------------------------
// Options / lifecycle
// ---------------------------------------------------------------------------

ServerOptions ServerOptions::FromEnv() {
  ServerOptions options;
  options.port = util::OptionsFromEnv::Int("ADCACHE_SERVER_PORT", options.port);
  options.threads =
      util::OptionsFromEnv::Int("ADCACHE_SERVER_THREADS", options.threads);
  options.coalesce =
      util::OptionsFromEnv::Flag("ADCACHE_SERVER_COALESCE", options.coalesce);
  return options;
}

Server::Server(core::KvStore* store, const ServerOptions& options)
    : store_(store), options_(options) {
  if (options_.threads < 1) options_.threads = 1;
}

Status Server::Start(core::KvStore* store, const ServerOptions& options,
                     std::unique_ptr<Server>* server) {
  auto s = std::unique_ptr<Server>(new Server(store, options));
  Status st = s->Listen();
  if (!st.ok()) return st;
  for (int i = 0; i < s->options_.threads; i++) {
    auto worker = std::make_unique<Worker>();
    worker->id = i;
    worker->parser = RespParser(s->options_.limits);
    worker->epfd = epoll_create1(EPOLL_CLOEXEC);
    worker->wakefd = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (worker->epfd < 0 || worker->wakefd < 0) {
      if (worker->epfd >= 0) close(worker->epfd);
      if (worker->wakefd >= 0) close(worker->wakefd);
      return Status::IOError("epoll_create1/eventfd failed");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = worker.get();  // wake tag: the worker itself
    epoll_ctl(worker->epfd, EPOLL_CTL_ADD, worker->wakefd, &ev);
    s->workers_.push_back(std::move(worker));
  }
  // The listener lives in worker 0's epoll, tagged with the Server pointer.
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = s.get();
  epoll_ctl(s->workers_[0]->epfd, EPOLL_CTL_ADD, s->listen_fd_, &ev);
  for (auto& worker : s->workers_) {
    Worker* w = worker.get();
    w->thread = std::thread([s_ptr = s.get(), w] { s_ptr->WorkerLoop(w); });
  }
  *server = std::move(s);
  return Status::OK();
}

Status Server::Listen() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Status::IOError("socket() failed");
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return Status::IOError(std::string("bind failed: ") +
                           std::strerror(errno));
  }
  if (listen(listen_fd_, options_.backlog) < 0) {
    return Status::IOError(std::string("listen failed: ") +
                           std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  return Status::OK();
}

Server::~Server() { Stop(); }

void Server::Stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    // Already stopping; just make sure the joins completed.
    for (auto& worker : workers_) {
      if (worker->thread.joinable()) worker->thread.join();
    }
    return;
  }
  uint64_t one = 1;
  for (auto& worker : workers_) {
    [[maybe_unused]] ssize_t r =
        write(worker->wakefd, &one, sizeof(one));
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  for (auto& worker : workers_) {
    if (worker->epfd >= 0) close(worker->epfd);
    if (worker->wakefd >= 0) close(worker->wakefd);
    worker->epfd = worker->wakefd = -1;
  }
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

Server::CoalesceStats Server::GetCoalesceStats() const {
  CoalesceStats total;
  for (const auto& worker : workers_) {
    const ReadCoalescer::Stats& s = worker->coalescer.stats();
    total.batches += s.batches;
    total.coalesced_gets += s.coalesced_gets;
    if (s.max_batch > total.max_batch) total.max_batch = s.max_batch;
  }
  total.immediate_gets = immediate_gets_.load(std::memory_order_relaxed);
  return total;
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

void Server::WorkerLoop(Worker* worker) {
  // Sized to admit a full many-connection wave in one iteration: the
  // coalescer's batch is bounded by how many ready connections one
  // epoll_wait can report, so a small event buffer would silently cap the
  // amortisation at high connection counts.
  std::vector<epoll_event> events(4096);
  auto touch = [worker](Conn* conn) {
    if (!conn->in_touched) {
      conn->in_touched = true;
      worker->touched.push_back(conn);
    }
  };
  for (;;) {
    int n = epoll_wait(worker->epfd, events.data(),
                       static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; i++) {
      void* tag = events[i].data.ptr;
      if (tag == this) {
        AcceptNew(worker);
        continue;
      }
      if (tag == worker) {
        uint64_t drained;
        while (read(worker->wakefd, &drained, sizeof(drained)) > 0) {
        }
        std::vector<int> incoming;
        {
          std::lock_guard<std::mutex> lock(worker->mu);
          incoming.swap(worker->incoming);
        }
        for (int fd : incoming) {
          auto conn = std::make_unique<Conn>();
          conn->fd = fd;
          conn->worker = worker;
          epoll_event ev{};
          ev.events = EPOLLIN;
          ev.data.ptr = conn.get();
          if (epoll_ctl(worker->epfd, EPOLL_CTL_ADD, fd, &ev) == 0) {
            worker->conns.emplace(fd, std::move(conn));
          } else {
            close(fd);
          }
        }
        continue;
      }
      Conn* conn = static_cast<Conn*>(tag);
      if (conn->dead) continue;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        conn->dead = true;
        touch(conn);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) {
        HandleReadable(worker, conn);
        touch(conn);
      }
      if ((events[i].events & EPOLLOUT) != 0 && !conn->dead) {
        FlushOutput(worker, conn);
        touch(conn);
      }
    }
    // The headline mechanism: every point GET parsed this iteration — from
    // however many connections — executes as ONE MultiGet batch.
    worker->coalescer.Flush(store_, options_.read_options);
    for (Conn* conn : worker->touched) {
      conn->in_touched = false;
      if (!conn->dead) {
        PumpReplies(conn);
        FlushOutput(worker, conn);
        if (conn->closing && conn->out.empty() && conn->replies.empty()) {
          conn->dead = true;
        }
      }
      if (conn->dead) CloseConn(worker, conn);
    }
    worker->touched.clear();
    if (stopping_.load(std::memory_order_acquire)) break;
  }
  // Shutdown: the iteration above already flushed the coalescer and wrote
  // what the sockets would take; drop every remaining connection.
  for (auto& entry : worker->conns) {
    close(entry.second->fd);
  }
  worker->conns.clear();
}

void Server::AcceptNew(Worker* worker) {
  for (;;) {
    int fd = accept4(listen_fd_, nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN (drained) or a transient accept error
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    size_t target =
        next_worker_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
    Worker* dest = workers_[target].get();
    if (dest == worker) {
      auto conn = std::make_unique<Conn>();
      conn->fd = fd;
      conn->worker = worker;
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.ptr = conn.get();
      if (epoll_ctl(worker->epfd, EPOLL_CTL_ADD, fd, &ev) == 0) {
        worker->conns.emplace(fd, std::move(conn));
      } else {
        close(fd);
      }
    } else {
      {
        std::lock_guard<std::mutex> lock(dest->mu);
        dest->incoming.push_back(fd);
      }
      uint64_t one_wake = 1;
      [[maybe_unused]] ssize_t r =
          write(dest->wakefd, &one_wake, sizeof(one_wake));
    }
  }
}

void Server::HandleReadable(Worker* worker, Conn* conn) {
  // Read everything the socket has (level-triggered, but draining now means
  // this iteration's coalescer batch sees the whole burst), THEN parse: the
  // buffer never reallocates between a key being enqueued and the flush.
  for (;;) {
    size_t old_size = conn->in.size();
    conn->in.resize(old_size + 16384);
    ssize_t r = read(conn->fd, conn->in.data() + old_size, 16384);
    if (r > 0) {
      conn->in.resize(old_size + static_cast<size_t>(r));
      if (conn->in.size() > options_.max_input_buffer) {
        AppendError(&conn->out, Slice("ERR input buffer exceeded"));
        conn->dead = true;
        return;
      }
      continue;
    }
    conn->in.resize(old_size);
    if (r == 0) {
      // Peer sent FIN: parse what arrived, answer it, then close.
      conn->closing = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    conn->dead = true;
    return;
  }
  const bool closing_at_entry = conn->closing;  // EOF: drain, then close
  while (conn->consumed < conn->in.size()) {
    RespCommand cmd;
    size_t frame = 0;
    RespParse result =
        worker->parser.Parse(conn->in.data() + conn->consumed,
                             conn->in.size() - conn->consumed, &frame, &cmd);
    if (result == RespParse::kNeedMore) break;
    if (result == RespParse::kError) {
      // The error takes a reply slot like any response (slots already
      // reserved — possibly awaiting the coalescer — drain first), then
      // the connection closes: no resynchronisation inside a broken stream.
      conn->replies.emplace_back();
      PendingReply* slot = &conn->replies.back();
      AppendError(&slot->data, Slice(worker->parser.error()));
      slot->ready = true;
      conn->closing = true;
      break;
    }
    conn->consumed += frame;
    DispatchCommand(worker, conn, cmd);
    if (conn->dead) break;
    if (conn->closing && !closing_at_entry) break;  // QUIT: drop the rest
  }
}

void Server::DispatchCommand(Worker* worker, Conn* conn,
                             const RespCommand& cmd) {
  if (cmd.args.empty()) return;  // blank inline line: ignore
  char name[8];
  if (!CommandName(cmd.args[0], name)) {
    conn->replies.emplace_back();
    PendingReply* slot = &conn->replies.back();
    AppendError(&slot->data, Slice("ERR unknown command"));
    slot->ready = true;
    return;
  }
  auto arity_error = [conn](const char* command) {
    conn->replies.emplace_back();
    PendingReply* slot = &conn->replies.back();
    AppendError(&slot->data, Slice(std::string(
                                 "ERR wrong number of arguments for '") +
                             command + "' command"));
    slot->ready = true;
  };
  // A write may not overtake this connection's own un-executed coalesced
  // GETs; flushing the worker batch first preserves program order (reads
  // from other connections in the batch are unaffected — cross-connection
  // order was never promised).
  auto order_writes = [worker, conn, this]() {
    if (!worker->coalescer.empty() &&
        conn->enqueue_epoch == worker->coalescer.epoch()) {
      worker->coalescer.Flush(store_, options_.read_options);
    }
  };
  if (std::strcmp(name, "GET") == 0) {
    if (cmd.args.size() != 2) return arity_error("get");
    conn->replies.emplace_back();
    PendingReply* slot = &conn->replies.back();
    if (options_.coalesce) {
      worker->coalescer.Enqueue(cmd.args[1], slot);
      conn->enqueue_epoch = worker->coalescer.epoch();
    } else {
      ExecuteGetNow(conn, cmd.args[1], slot);
    }
    return;
  }
  if (std::strcmp(name, "MGET") == 0) {
    if (cmd.args.size() < 2) return arity_error("mget");
    conn->replies.emplace_back();
    PendingReply* slot = &conn->replies.back();
    // A client-built batch is already the shape MultiGet wants: pass it
    // through natively instead of splitting it into coalescer entries.
    core::MultiGetBatch batch;
    batch.Reserve(cmd.args.size() - 1);
    for (size_t i = 1; i < cmd.args.size(); i++) batch.Add(cmd.args[i]);
    store_->MultiGet(options_.read_options, &batch);
    AppendArrayHeader(&slot->data, batch.size());
    for (size_t i = 0; i < batch.size(); i++) {
      if (batch.status(i).ok()) {
        AppendBulkString(&slot->data, batch.value(i).slice());
      } else {
        AppendNil(&slot->data);
      }
    }
    slot->ready = true;
    return;
  }
  if (std::strcmp(name, "SET") == 0) {
    if (cmd.args.size() != 3) return arity_error("set");
    order_writes();
    conn->replies.emplace_back();
    PendingReply* slot = &conn->replies.back();
    Status s = store_->Put(lsm::WriteOptions(), cmd.args[1], cmd.args[2]);
    if (s.ok()) {
      AppendSimpleString(&slot->data, Slice("OK"));
    } else {
      AppendError(&slot->data, Slice("ERR " + s.ToString()));
    }
    slot->ready = true;
    return;
  }
  if (std::strcmp(name, "DEL") == 0) {
    if (cmd.args.size() != 2) return arity_error("del");
    order_writes();
    conn->replies.emplace_back();
    PendingReply* slot = &conn->replies.back();
    Status s = store_->Delete(lsm::WriteOptions(), cmd.args[1]);
    if (s.ok()) {
      // The LSM write path doesn't report prior existence; DEL acknowledges
      // the tombstone (always :1), documented in README.
      AppendInteger(&slot->data, 1);
    } else {
      AppendError(&slot->data, Slice("ERR " + s.ToString()));
    }
    slot->ready = true;
    return;
  }
  if (std::strcmp(name, "SCAN") == 0) {
    if (cmd.args.size() != 3) return arity_error("scan");
    size_t count = 0;
    conn->replies.emplace_back();
    PendingReply* slot = &conn->replies.back();
    if (!ParseCount(cmd.args[2], &count) || count > 65536) {
      AppendError(&slot->data, Slice("ERR invalid scan count"));
      slot->ready = true;
      return;
    }
    std::vector<KvPair> results;
    Status s = store_->Scan(options_.read_options, cmd.args[1], count,
                            &results);
    if (s.ok()) {
      AppendArrayHeader(&slot->data, results.size() * 2);
      for (const KvPair& kv : results) {
        AppendBulkString(&slot->data, Slice(kv.key));
        AppendBulkString(&slot->data, Slice(kv.value));
      }
    } else {
      AppendError(&slot->data, Slice("ERR " + s.ToString()));
    }
    slot->ready = true;
    return;
  }
  if (std::strcmp(name, "PING") == 0) {
    conn->replies.emplace_back();
    PendingReply* slot = &conn->replies.back();
    if (cmd.args.size() > 1) {
      AppendBulkString(&slot->data, cmd.args[1]);
    } else {
      AppendSimpleString(&slot->data, Slice("PONG"));
    }
    slot->ready = true;
    return;
  }
  if (std::strcmp(name, "STATS") == 0) {
    conn->replies.emplace_back();
    PendingReply* slot = &conn->replies.back();
    AppendBulkString(&slot->data, Slice(store_->statistics()->ToJson()));
    slot->ready = true;
    return;
  }
  if (std::strcmp(name, "QUIT") == 0) {
    conn->replies.emplace_back();
    PendingReply* slot = &conn->replies.back();
    AppendSimpleString(&slot->data, Slice("OK"));
    slot->ready = true;
    conn->closing = true;
    return;
  }
  conn->replies.emplace_back();
  PendingReply* slot = &conn->replies.back();
  AppendError(&slot->data,
              Slice("ERR unknown command '" + cmd.args[0].ToString() + "'"));
  slot->ready = true;
}

void Server::ExecuteGetNow(Conn* conn, const Slice& key, PendingReply* slot) {
  immediate_gets_.fetch_add(1, std::memory_order_relaxed);
  PinnableSlice value;
  Status s = store_->Get(options_.read_options, key, &value);
  if (s.ok()) {
    AppendBulkString(&slot->data, value.slice());
  } else if (s.IsNotFound()) {
    AppendNil(&slot->data);
  } else {
    AppendError(&slot->data, Slice("ERR " + s.ToString()));
  }
  slot->ready = true;
  (void)conn;
}

void Server::PumpReplies(Conn* conn) {
  // Responses leave strictly in request order: stop at the first slot still
  // waiting on a later batch.
  while (!conn->replies.empty() && conn->replies.front().ready) {
    conn->out += conn->replies.front().data;
    conn->replies.pop_front();
  }
  // All of this iteration's deferred keys are resolved; the parsed prefix
  // of the input buffer can finally go.
  if (conn->consumed > 0) {
    conn->in.erase(0, conn->consumed);
    conn->consumed = 0;
  }
}

void Server::FlushOutput(Worker* worker, Conn* conn) {
  size_t sent = 0;
  while (sent < conn->out.size()) {
    ssize_t r = send(conn->fd, conn->out.data() + sent,
                     conn->out.size() - sent, MSG_NOSIGNAL);
    if (r > 0) {
      sent += static_cast<size_t>(r);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    conn->dead = true;
    return;
  }
  conn->out.erase(0, sent);
  bool want_write = !conn->out.empty();
  if (want_write != conn->want_write) {
    conn->want_write = want_write;
    epoll_event ev{};
    ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
    ev.data.ptr = conn;
    epoll_ctl(worker->epfd, EPOLL_CTL_MOD, conn->fd, &ev);
  }
}

void Server::CloseConn(Worker* worker, Conn* conn) {
  epoll_ctl(worker->epfd, EPOLL_CTL_DEL, conn->fd, nullptr);
  close(conn->fd);
  worker->conns.erase(conn->fd);  // frees conn
}

}  // namespace adcache::server
