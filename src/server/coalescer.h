#ifndef ADCACHE_SERVER_COALESCER_H_
#define ADCACHE_SERVER_COALESCER_H_

#include <cstdint>
#include <vector>

#include "core/kv_store.h"
#include "server/resp.h"

namespace adcache::server {

/// One reply slot in a connection's in-order response queue. A slot is
/// reserved the moment its request is parsed (preserving pipelined response
/// order) and filled either immediately (writes, scans, MGET) or by the
/// coalescer at batch-flush time (deferred point GETs). Output is sent only
/// up to the first unfilled slot.
struct PendingReply {
  std::string data;   // serialized RESP bytes
  bool ready = false;
};

/// The server-side analogue of group commit, for reads: concurrent in-flight
/// point GETs — across independent connections — accumulate here during one
/// event-loop iteration and execute as ONE KvStore::MultiGet at the end of
/// the iteration, so the whole wave shares a SuperVersion acquisition, one
/// bloom pass and one index iterator per touched SST, batched cache lookups
/// and batched admission (DESIGN.md "Batched reads"). Each worker event loop
/// owns one coalescer; no locking anywhere.
///
/// Key lifetime: enqueued Slices point into connection input buffers, which
/// the event loop keeps unmutated until after Flush() (buffers are compacted
/// only when an iteration's replies are pumped out).
class ReadCoalescer {
 public:
  struct Stats {
    uint64_t batches = 0;         // MultiGet calls issued
    uint64_t coalesced_gets = 0;  // GETs answered through those batches
    uint64_t max_batch = 0;       // largest single batch
  };

  /// Defers one point GET: the looked-up value (bulk string, or nil on
  /// NotFound) will be serialized into `slot` at the next Flush. The slot
  /// pointer must stay valid until then (reply queues are deques, whose
  /// element addresses are push-stable).
  void Enqueue(const Slice& key, PendingReply* slot) {
    batch_.Add(key);
    slots_.push_back(slot);
  }

  bool empty() const { return slots_.empty(); }
  size_t pending() const { return slots_.size(); }

  /// Monotone flush counter. A connection that enqueued at epoch E has
  /// un-executed reads exactly while epoch() == E; the event loop uses this
  /// to flush before applying a write from the same connection, keeping
  /// per-connection program order observable.
  uint64_t epoch() const { return epoch_; }

  /// Executes every deferred GET through one KvStore::MultiGet and fills
  /// the reply slots. No-op on an empty batch.
  void Flush(core::KvStore* store, const lsm::ReadOptions& options);

  const Stats& stats() const { return stats_; }

 private:
  core::MultiGetBatch batch_;
  std::vector<PendingReply*> slots_;
  Stats stats_;
  uint64_t epoch_ = 0;
};

}  // namespace adcache::server

#endif  // ADCACHE_SERVER_COALESCER_H_
