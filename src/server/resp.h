#ifndef ADCACHE_SERVER_RESP_H_
#define ADCACHE_SERVER_RESP_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/slice.h"

namespace adcache::server {

/// Per-frame bounds. A frame exceeding any of them is a protocol error: the
/// server replies -ERR and drops the connection rather than buffering an
/// attacker-sized allocation.
struct RespLimits {
  /// Max elements in one *N array frame (also caps MGET fan-out).
  size_t max_array_elements = 4096;
  /// Max payload of one $N bulk string.
  size_t max_bulk_bytes = 8 * 1024 * 1024;
  /// Max length of one inline-command line (bytes before the newline).
  size_t max_inline_bytes = 64 * 1024;
};

/// One parsed request: command name in args[0], arguments after. The slices
/// point into the caller's parse buffer and stay valid only until that
/// buffer is mutated or compacted.
struct RespCommand {
  std::vector<Slice> args;
};

enum class RespParse {
  kCommand,   // one complete command extracted
  kNeedMore,  // buffer holds only a frame prefix; read more bytes
  kError,     // malformed / oversized frame; see RespParser::error()
};

/// Incremental parser for the RESP subset the server speaks: `*N\r\n` arrays
/// of `$len\r\n<bytes>\r\n` bulk strings (what every client library sends),
/// plus newline-terminated inline commands split on spaces (telnet / netcat
/// friendliness). Stateless across frames: a torn frame is simply re-scanned
/// from its start on the next feed, which keeps the state machine trivially
/// restartable — frames are small, so the re-scan cost is noise.
class RespParser {
 public:
  RespParser() = default;
  explicit RespParser(const RespLimits& limits) : limits_(limits) {}

  /// Tries to extract one complete command from data[0, len). On kCommand,
  /// *consumed is the frame's byte length and cmd->args views into `data`.
  /// On kNeedMore, *consumed is 0. On kError, error() describes the fault;
  /// the connection should be failed (no resynchronisation is attempted).
  RespParse Parse(const char* data, size_t len, size_t* consumed,
                  RespCommand* cmd);

  const std::string& error() const { return error_; }
  const RespLimits& limits() const { return limits_; }

 private:
  RespParse Fail(const std::string& message) {
    error_ = message;
    return RespParse::kError;
  }
  RespParse ParseArray(const char* data, size_t len, size_t* consumed,
                       RespCommand* cmd);
  RespParse ParseInline(const char* data, size_t len, size_t* consumed,
                        RespCommand* cmd);

  RespLimits limits_;
  std::string error_;
};

// ---- reply serialisation (appends RESP to an output buffer) ----

void AppendSimpleString(std::string* out, const Slice& s);   // +s\r\n
void AppendError(std::string* out, const Slice& message);    // -message\r\n
void AppendInteger(std::string* out, long long value);       // :value\r\n
void AppendBulkString(std::string* out, const Slice& s);     // $len\r\n..\r\n
void AppendNil(std::string* out);                            // $-1\r\n
void AppendArrayHeader(std::string* out, size_t n);          // *n\r\n

}  // namespace adcache::server

#endif  // ADCACHE_SERVER_RESP_H_
