// adcache_server: the network front door. Opens a store (any strategy from
// core::CreateStore) and serves the RESP subset over loopback TCP:
//
//   adcache_server [--port=N] [--threads=N] [--coalesce=0|1]
//                  [--strategy=adcache] [--db=/tmp/adcache_server_db]
//                  [--cache-budget=BYTES[k|m|g]]
//
// Defaults come from ADCACHE_SERVER_PORT / ADCACHE_SERVER_THREADS /
// ADCACHE_SERVER_COALESCE (see README "Environment variables"); flags win.
// Try it with redis-cli -p 6399 or: printf 'SET k v\r\nGET k\r\n' | nc ...

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/strategy.h"
#include "server/server.h"
#include "util/options_env.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

bool FlagValue(const char* arg, const char* name, const char** value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adcache;

  server::ServerOptions server_options = server::ServerOptions::FromEnv();
  std::string strategy = "adcache";
  std::string dbname = "/tmp/adcache_server_db";
  uint64_t cache_budget = 64 * 1024 * 1024;

  for (int i = 1; i < argc; i++) {
    const char* value = nullptr;
    if (FlagValue(argv[i], "--port", &value)) {
      server_options.port = std::atoi(value);
    } else if (FlagValue(argv[i], "--threads", &value)) {
      server_options.threads = std::atoi(value);
    } else if (FlagValue(argv[i], "--coalesce", &value)) {
      server_options.coalesce = std::atoi(value) != 0;
    } else if (FlagValue(argv[i], "--strategy", &value)) {
      strategy = value;
    } else if (FlagValue(argv[i], "--db", &value)) {
      dbname = value;
    } else if (FlagValue(argv[i], "--cache-budget", &value)) {
      auto parsed = util::OptionsFromEnv::ParseBytes(value);
      if (!parsed.has_value()) {
        std::fprintf(stderr, "bad --cache-budget value '%s'\n", value);
        return 2;
      }
      cache_budget = *parsed;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port=N] [--threads=N] [--coalesce=0|1]\n"
                   "          [--strategy=NAME] [--db=PATH] "
                   "[--cache-budget=BYTES]\n",
                   argv[0]);
      return 2;
    }
  }

  core::StoreConfig config;
  config.dbname = dbname;
  config.cache_budget = cache_budget;
  Status status;
  std::unique_ptr<core::KvStore> store =
      core::CreateStore(strategy, config, &status);
  if (store == nullptr) {
    std::fprintf(stderr, "open %s store at %s failed: %s\n", strategy.c_str(),
                 dbname.c_str(), status.ToString().c_str());
    return 1;
  }

  std::unique_ptr<server::Server> srv;
  status = server::Server::Start(store.get(), server_options, &srv);
  if (!status.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("adcache_server: strategy=%s db=%s port=%d threads=%d "
              "coalesce=%d\n",
              strategy.c_str(), dbname.c_str(), srv->port(),
              server_options.threads, server_options.coalesce ? 1 : 0);
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) {
    struct timespec ts = {0, 100 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }

  srv->Stop();
  server::Server::CoalesceStats stats = srv->GetCoalesceStats();
  std::printf("shutdown: %llu coalesced gets in %llu batches "
              "(max batch %llu), %llu immediate gets\n",
              static_cast<unsigned long long>(stats.coalesced_gets),
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.max_batch),
              static_cast<unsigned long long>(stats.immediate_gets));
  return 0;
}
