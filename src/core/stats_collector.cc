#include "core/stats_collector.h"

namespace adcache::core {

WindowStats StatsCollector::Harvest(uint64_t block_reads_now,
                                    const MaintenanceSample& maintenance_now,
                                    uint64_t secondary_hits_now,
                                    uint64_t secondary_misses_now) {
  WindowStats cumulative;
  cumulative.point_lookups = point_lookups_.Load();
  cumulative.scans = scans_.Load();
  cumulative.writes = writes_.Load();
  cumulative.scan_keys = scan_keys_.Load();
  cumulative.range_point_hits = range_point_hits_.Load();
  cumulative.range_scan_hits = range_scan_hits_.Load();
  cumulative.point_admits = point_admits_.Load();
  cumulative.scan_keys_admitted = scan_keys_admitted_.Load();

  WindowStats delta;
  delta.point_lookups = cumulative.point_lookups - last_harvest_.point_lookups;
  delta.scans = cumulative.scans - last_harvest_.scans;
  delta.writes = cumulative.writes - last_harvest_.writes;
  delta.scan_keys = cumulative.scan_keys - last_harvest_.scan_keys;
  delta.range_point_hits =
      cumulative.range_point_hits - last_harvest_.range_point_hits;
  delta.range_scan_hits =
      cumulative.range_scan_hits - last_harvest_.range_scan_hits;
  delta.point_admits = cumulative.point_admits - last_harvest_.point_admits;
  delta.scan_keys_admitted =
      cumulative.scan_keys_admitted - last_harvest_.scan_keys_admitted;
  delta.block_reads = block_reads_now - last_block_reads_;
  delta.secondary_hits = secondary_hits_now - last_secondary_hits_;
  delta.secondary_misses = secondary_misses_now - last_secondary_misses_;
  delta.compactions = maintenance_now.compactions - last_maintenance_.compactions;
  delta.flushes = maintenance_now.flushes - last_maintenance_.flushes;
  delta.stall_micros =
      maintenance_now.stall_micros - last_maintenance_.stall_micros;
  delta.write_groups =
      maintenance_now.write_groups - last_maintenance_.write_groups;

  last_harvest_ = cumulative;
  last_block_reads_ = block_reads_now;
  last_secondary_hits_ = secondary_hits_now;
  last_secondary_misses_ = secondary_misses_now;
  last_maintenance_ = maintenance_now;
  return delta;
}

}  // namespace adcache::core
