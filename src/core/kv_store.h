#ifndef ADCACHE_CORE_KV_STORE_H_
#define ADCACHE_CORE_KV_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cache/range_cache.h"
#include "lsm/db.h"
#include "util/slice.h"
#include "util/status.h"

namespace adcache::core {

/// Point-in-time cache/IO telemetry for a store. Counters are cumulative;
/// benchmark harnesses diff successive snapshots.
struct CacheStatsSnapshot {
  uint64_t block_reads = 0;  // SST block reads that hit storage (IO_miss)
  uint64_t range_hits = 0;
  uint64_t range_misses = 0;
  uint64_t block_cache_hits = 0;
  uint64_t block_cache_misses = 0;
  uint64_t kv_hits = 0;
  uint64_t kv_misses = 0;
  size_t cache_usage = 0;
  size_t cache_capacity = 0;
  // AdCache control state (identity values for baselines).
  double range_ratio = 0;
  double point_threshold = 0;
  double scan_a = 0;
  double scan_b = 0;
  double smoothed_hit_rate = 0;
};

/// The benchmarkable key-value store interface: an LSM engine fronted by
/// some caching strategy. One implementation per evaluated scheme (paper
/// §5.1): RocksDB block cache, KV cache, Range Cache (LRU / LeCaR /
/// Cacheus) and AdCache.
class KvStore {
 public:
  virtual ~KvStore() = default;

  virtual Status Put(const Slice& key, const Slice& value) = 0;
  virtual Status Delete(const Slice& key) = 0;
  /// NotFound if absent.
  virtual Status Get(const Slice& key, std::string* value) = 0;
  /// Collects up to `n` consecutive entries starting at the first key
  /// >= start.
  virtual Status Scan(const Slice& start, size_t n,
                      std::vector<KvPair>* results) = 0;

  virtual CacheStatsSnapshot GetCacheStats() const = 0;
  virtual lsm::DB* db() = 0;
  virtual const char* Name() const = 0;
};

/// Reads up to `n` user-visible entries from the DB starting at `start`.
Status ScanFromDb(lsm::DB* db, const lsm::ReadOptions& read_options,
                  const Slice& start, size_t n, std::vector<KvPair>* results);

}  // namespace adcache::core

#endif  // ADCACHE_CORE_KV_STORE_H_
