#ifndef ADCACHE_CORE_KV_STORE_H_
#define ADCACHE_CORE_KV_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/range_cache.h"
#include "core/multiget_batch.h"
#include "core/statistics.h"
#include "lsm/sharded_db.h"
#include "util/pinnable_slice.h"
#include "util/slice.h"
#include "util/status.h"

namespace adcache::core {

/// Point-in-time cache/IO telemetry for a store. Counters are cumulative;
/// benchmark harnesses diff successive snapshots.
///
/// This struct is a *compatibility view*: the authoritative registry is the
/// store's Statistics object (tickers for the counters, named gauges for
/// the control state — see core/statistics.h), and GetCacheStats() is free
/// to assemble the snapshot from either the registry or the underlying
/// components.
///
/// Consistency contract (THE torn-read contract — referenced by Statistics
/// and the component counters alike): every counter is individually
/// monotonic, but a snapshot is gathered field by field — across sharded
/// per-thread counters — with no global lock while worker threads keep
/// running. Fields are therefore NOT mutually consistent: a lookup racing
/// the snapshot may have bumped block_cache_misses while its block_reads
/// increment is not yet visible, and a sharded counter read mid-batch can
/// lag a sibling field by a whole batch. The control-state doubles are
/// last-value-wins gauge reads and may reflect a window boundary that the
/// counters have not caught up with. Consumers must difference successive
/// snapshots per field (use CounterDelta below, which tolerates such torn
/// reads) and treat cross-field ratios within one snapshot as approximate.
struct CacheStatsSnapshot {
  uint64_t block_reads = 0;  // SST block reads that hit storage (IO_miss)
  uint64_t range_hits = 0;
  uint64_t range_misses = 0;
  uint64_t block_cache_hits = 0;
  uint64_t block_cache_misses = 0;
  uint64_t kv_hits = 0;
  uint64_t kv_misses = 0;
  /// Secondary (flash) tier counters; all 0 when the tier is disabled.
  uint64_t secondary_hits = 0;
  uint64_t secondary_misses = 0;
  uint64_t secondary_demotions = 0;
  size_t secondary_usage = 0;
  size_t secondary_capacity = 0;
  size_t cache_usage = 0;
  size_t cache_capacity = 0;
  // AdCache control state, mirrored from the Statistics gauges
  // (kGaugeRangeRatio etc.). Identity values for baselines.
  double range_ratio = 0;
  double point_threshold = 0;
  double scan_a = 0;
  double scan_b = 0;
  double smoothed_hit_rate = 0;
};

/// Differences two reads of one monotonic snapshot counter. Clamps to zero
/// instead of wrapping when the reads are torn (the "earlier" snapshot's
/// field was gathered after the "later" one's advanced past it).
inline uint64_t CounterDelta(uint64_t later, uint64_t earlier) {
  return later >= earlier ? later - earlier : 0;
}

/// The benchmarkable key-value store interface: an LSM engine fronted by
/// some caching strategy. One implementation per evaluated scheme (paper
/// §5.1): RocksDB block cache, KV cache, Range Cache (LRU / LeCaR /
/// Cacheus) and AdCache.
///
/// Reads take a ReadOptions (snapshot / cache-fill / checksum knobs) and
/// writes a WriteOptions (sync / disable_wal), both shared with the lsm
/// layer, and reads return values through PinnableSlice, so a block-cache
/// or memtable hit hands the caller a pinned pointer instead of a copy.
///
/// The public surface is NON-virtual: one options-taking method per op plus
/// thin copying / default-options convenience overloads, all defined here
/// once. Implementations override the protected *Impl hooks and never worry
/// about overload visibility (the old `using KvStore::Get;` re-export that
/// every store had to repeat — and silently break reads when forgotten — is
/// gone because derived classes no longer declare any public `Get`).
///
/// Batched point lookups go through MultiGetBatch (core/multiget_batch.h),
/// the span-style request/response view that incremental builders — the
/// server's read coalescer, the workload runner, benches — fill key by key.
/// The raw parallel-array overload wraps its arguments in a view batch and
/// delegates, so pre-batch call sites compile and behave unchanged.
///
/// Every store owns a Statistics registry (statistics()): op tickers and
/// latency histograms recorded at this API boundary, maintenance events fed
/// through the listener bridge, and the AdCache control-state gauges.
class KvStore {
 public:
  using ReadOptions = lsm::ReadOptions;
  using WriteOptions = lsm::WriteOptions;

  virtual ~KvStore() = default;

  Status Put(const WriteOptions& options, const Slice& key,
             const Slice& value) {
    return PutImpl(options, key, value);
  }
  Status Delete(const WriteOptions& options, const Slice& key) {
    return DeleteImpl(options, key);
  }
  /// NotFound if absent. On OK, `value` pins the bytes' owner (block-cache
  /// handle, memtable SuperVersion, or an internal copy).
  Status Get(const ReadOptions& options, const Slice& key,
             PinnableSlice* value) {
    return GetImpl(options, key, value);
  }
  /// Collects up to `n` consecutive entries starting at the first key
  /// >= start.
  Status Scan(const ReadOptions& options, const Slice& start, size_t n,
              std::vector<KvPair>* results) {
    return ScanImpl(options, start, n, results);
  }
  /// Batched point lookups — the primary batch entry point: for each
  /// batch->key(i) sets batch->statuses()[i] (OK / NotFound) and fills
  /// batch->values()[i] on OK. One admission / telemetry / window-accounting
  /// pass covers the whole batch, and the underlying lsm::DB::MultiGet
  /// shares one SuperVersion acquisition and coalesces per-file and
  /// per-block work (see DESIGN.md "Batched reads").
  void MultiGet(const ReadOptions& options, MultiGetBatch* batch) {
    MultiGetImpl(options, batch);
  }
  /// Parallel-array compatibility form: wraps the arrays in a view batch
  /// and delegates to the batch entry point above.
  void MultiGet(const ReadOptions& options, size_t n, const Slice* keys,
                PinnableSlice* values, Status* statuses) {
    MultiGetBatch batch(n, keys, values, statuses);
    MultiGetImpl(options, &batch);
  }

  // ---- thin convenience overloads (copying / default options) ----
  Status Put(const Slice& key, const Slice& value) {
    return Put(WriteOptions(), key, value);
  }
  Status Delete(const Slice& key) { return Delete(WriteOptions(), key); }
  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value) {
    PinnableSlice pinned;
    Status s = Get(options, key, &pinned);
    if (s.ok()) value->assign(pinned.data(), pinned.size());
    return s;
  }
  Status Get(const Slice& key, std::string* value) {
    return Get(ReadOptions(), key, value);
  }
  Status Get(const Slice& key, PinnableSlice* value) {
    return Get(ReadOptions(), key, value);
  }
  Status Scan(const Slice& start, size_t n, std::vector<KvPair>* results) {
    return Scan(ReadOptions(), start, n, results);
  }
  void MultiGet(MultiGetBatch* batch) { MultiGet(ReadOptions(), batch); }
  void MultiGet(size_t n, const Slice* keys, PinnableSlice* values,
                Status* statuses) {
    MultiGet(ReadOptions(), n, keys, values, statuses);
  }

  virtual CacheStatsSnapshot GetCacheStats() const = 0;
  /// The underlying engine: one-or-more key-range shards behind the
  /// DB-shaped ShardedDB facade (shard_count() == 1 unless sharded).
  virtual lsm::ShardedDB* db() = 0;
  virtual const char* Name() const = 0;

  /// The store's metrics registry. Never null; stays valid for the store's
  /// lifetime. Level defaults to StatsLevel::kExceptTimers (tickers on,
  /// latency timers off).
  Statistics* statistics() const { return stats_.get(); }

 protected:
  // ---- the virtual core: one hook per public op ----
  virtual Status PutImpl(const WriteOptions& options, const Slice& key,
                         const Slice& value) = 0;
  virtual Status DeleteImpl(const WriteOptions& options, const Slice& key) = 0;
  virtual Status GetImpl(const ReadOptions& options, const Slice& key,
                         PinnableSlice* value) = 0;
  virtual Status ScanImpl(const ReadOptions& options, const Slice& start,
                          size_t n, std::vector<KvPair>* results) = 0;
  virtual void MultiGetImpl(const ReadOptions& options,
                            MultiGetBatch* batch) = 0;

  std::shared_ptr<Statistics> stats_ = std::make_shared<Statistics>();
};

/// Reads up to `n` user-visible entries from the DB starting at `start`.
/// Shared implementation behind every store's Scan override.
Status ScanThroughDb(lsm::ShardedDB* db, const lsm::ReadOptions& read_options,
                     const Slice& start, size_t n,
                     std::vector<KvPair>* results);

}  // namespace adcache::core

#endif  // ADCACHE_CORE_KV_STORE_H_
