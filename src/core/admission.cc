#include "core/admission.h"

namespace adcache::core {

namespace {

CountMinSketch::Options SketchOptions(
    const PointAdmissionController::Options& o) {
  CountMinSketch::Options so;
  so.width = o.sketch_width;
  so.depth = o.sketch_depth;
  so.saturation = o.saturation;
  return so;
}

}  // namespace

PointAdmissionController::PointAdmissionController()
    : PointAdmissionController(Options()) {}

PointAdmissionController::PointAdmissionController(const Options& options)
    : options_(options),
      sketch_(SketchOptions(options)),
      doorkeeper_(options.doorkeeper_bits) {}

bool PointAdmissionController::RecordMissAndCheckAdmit(const Slice& key) {
  std::lock_guard<std::mutex> l(mu_);
  return RecordMissAndCheckAdmitLocked(key);
}

void PointAdmissionController::RecordMissBatchAndCheckAdmit(size_t n,
                                                            const Slice* keys,
                                                            bool* admit) {
  if (n == 0) return;
  std::lock_guard<std::mutex> l(mu_);
  for (size_t i = 0; i < n; i++) {
    admit[i] = RecordMissAndCheckAdmitLocked(keys[i]);
  }
}

bool PointAdmissionController::RecordMissAndCheckAdmitLocked(const Slice& key) {
  if (options_.use_doorkeeper) {
    if (!doorkeeper_.InsertIfAbsent(key)) {
      // First sighting: remember it in the doorkeeper only.
      return false;
    }
  }
  sketch_.Increment(key);
  if (sketch_.decay_count() != last_decay_count_) {
    // The sketch aged; reset the doorkeeper so it tracks the new epoch.
    last_decay_count_ = sketch_.decay_count();
    doorkeeper_.Clear();
  }
  double score = sketch_.NormalizedFrequency(key);
  return score >= threshold_.load(std::memory_order_relaxed);
}

uint64_t PointAdmissionController::decay_count() const {
  std::lock_guard<std::mutex> l(mu_);
  return sketch_.decay_count();
}

size_t PointAdmissionController::MemoryUsage() const {
  std::lock_guard<std::mutex> l(mu_);
  return sketch_.MemoryUsage() + doorkeeper_.MemoryUsage();
}

}  // namespace adcache::core
