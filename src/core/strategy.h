#ifndef ADCACHE_CORE_STRATEGY_H_
#define ADCACHE_CORE_STRATEGY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/adcache_store.h"
#include "core/kv_store.h"
#include "lsm/options.h"

namespace adcache::core {

/// Everything needed to instantiate one caching strategy over a fresh DB.
struct StoreConfig {
  lsm::Options lsm;
  std::string dbname = "/tmp/adcache_db";
  size_t cache_budget = 16 * 1024 * 1024;
  uint64_t seed = 42;
  /// AdCache-specific knobs (ignored by baselines).
  AdCacheOptions adcache;
};

/// Strategy names understood by CreateStore, matching the paper's §5.1
/// evaluation lineup plus the §5.4 ablations:
///   "block"                    RocksDB default block cache
///   "kv"                       KV (row) cache
///   "range"                    Range Cache with LRU
///   "range_lecar"              Range Cache with LeCaR
///   "range_cacheus"            Range Cache with Cacheus
///   "adcache"                  full AdCache
///   "adcache_admission_only"   ablation: admission control only
///   "adcache_partition_only"   ablation: adaptive partitioning only
const std::vector<std::string>& AllStrategyNames();

/// Instantiates the named strategy. Returns nullptr and sets *status on
/// failure (including unknown names).
std::unique_ptr<KvStore> CreateStore(const std::string& strategy,
                                     const StoreConfig& config,
                                     Status* status);

}  // namespace adcache::core

#endif  // ADCACHE_CORE_STRATEGY_H_
