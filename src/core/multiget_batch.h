#ifndef ADCACHE_CORE_MULTIGET_BATCH_H_
#define ADCACHE_CORE_MULTIGET_BATCH_H_

#include <cassert>
#include <cstddef>
#include <vector>

#include "util/pinnable_slice.h"
#include "util/slice.h"
#include "util/status.h"

namespace adcache::core {

/// A batched point-lookup request/response: parallel `keys` / `values` /
/// `statuses` arrays of length `size()`. This is the primary argument to
/// KvStore::MultiGet — implementations read keys() and fill values() /
/// statuses() by index.
///
/// Two modes, fixed at construction:
///
///  - **View** (pointer constructor): the batch borrows caller-owned arrays.
///    Zero-copy adapter for callers that already hold parallel arrays — the
///    raw-pointer KvStore::MultiGet overload wraps its arguments in one of
///    these, so pre-batch call sites compile and behave unchanged.
///
///  - **Owned** (default constructor + Add): the batch grows its own
///    storage. Incremental builders — the server's read coalescer stacking
///    up in-flight GETs from independent connections, the workload runner
///    buffering consecutive point ops, benches — Add() keys one at a time,
///    hand the batch to MultiGet, then read results back by index. Clear()
///    resets for reuse without releasing capacity (values are Reset so
///    block-cache / memtable pins drop eagerly).
///
/// In both modes the batch holds Slices, not copies: every key must stay
/// valid (and unmoved) until MultiGet returns. Incremental builders
/// appending to a growable buffer between Add() and the call must either
/// reserve up front or Add() only after the buffer has settled.
class MultiGetBatch {
 public:
  /// Owned mode: an empty batch; build it up with Add().
  MultiGetBatch() = default;

  /// View mode: borrow caller-owned parallel arrays of length `n`. The
  /// arrays must outlive every use of the batch; Add() is forbidden.
  MultiGetBatch(size_t n, const Slice* keys, PinnableSlice* values,
                Status* statuses)
      : view_keys_(keys),
        view_values_(values),
        view_statuses_(statuses),
        n_(n) {}

  MultiGetBatch(const MultiGetBatch&) = delete;
  MultiGetBatch& operator=(const MultiGetBatch&) = delete;

  bool is_view() const { return view_keys_ != nullptr; }
  size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }

  /// Owned mode only: appends a key slot (value defaulted, status OK) and
  /// returns its index, stable across later Adds.
  size_t Add(const Slice& key) {
    assert(!is_view());
    owned_keys_.push_back(key);
    owned_values_.emplace_back();
    owned_statuses_.emplace_back();
    return n_++;
  }

  void Reserve(size_t n) {
    assert(!is_view());
    owned_keys_.reserve(n);
    owned_values_.reserve(n);
    owned_statuses_.reserve(n);
  }

  /// Owned mode only: empties the batch for reuse, dropping value pins
  /// (capacity is kept).
  void Clear() {
    assert(!is_view());
    owned_keys_.clear();
    owned_values_.clear();  // ~PinnableSlice releases pins
    owned_statuses_.clear();
    n_ = 0;
  }

  const Slice* keys() const {
    return is_view() ? view_keys_ : owned_keys_.data();
  }
  PinnableSlice* values() {
    return is_view() ? view_values_ : owned_values_.data();
  }
  Status* statuses() {
    return is_view() ? view_statuses_ : owned_statuses_.data();
  }

  const Slice& key(size_t i) const {
    assert(i < n_);
    return keys()[i];
  }
  PinnableSlice& value(size_t i) {
    assert(i < n_);
    return values()[i];
  }
  const Status& status(size_t i) const {
    assert(i < n_);
    return (is_view() ? view_statuses_ : owned_statuses_.data())[i];
  }

 private:
  // View mode borrows these; owned mode leaves them null and uses the
  // vectors below.
  const Slice* view_keys_ = nullptr;
  PinnableSlice* view_values_ = nullptr;
  Status* view_statuses_ = nullptr;

  std::vector<Slice> owned_keys_;
  std::vector<PinnableSlice> owned_values_;
  std::vector<Status> owned_statuses_;
  size_t n_ = 0;
};

}  // namespace adcache::core

#endif  // ADCACHE_CORE_MULTIGET_BATCH_H_
