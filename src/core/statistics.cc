#include "core/statistics.h"

#include <sstream>

#include "core/memory_budget.h"

namespace adcache::core {

namespace {

const char* const kTickerNames[kTickerCount] = {
    "adcache.point.lookups",        // kTickerPointLookups
    "adcache.multiget.keys",        // kTickerMultiGetKeys
    "adcache.scans",                // kTickerScans
    "adcache.scan.keys.read",       // kTickerScanKeysRead
    "adcache.writes",               // kTickerWrites
    "adcache.rangecache.hits",      // kTickerRangeCacheHits
    "adcache.rangecache.misses",    // kTickerRangeCacheMisses
    "adcache.blockcache.hits",      // kTickerBlockCacheHits
    "adcache.blockcache.misses",    // kTickerBlockCacheMisses
    "adcache.block.reads",          // kTickerBlockReads
    "adcache.admission.point.admits",   // kTickerPointAdmits
    "adcache.admission.point.rejects",  // kTickerPointRejects
    "adcache.admission.scan.admits",    // kTickerScanAdmits
    "adcache.flushes",              // kTickerFlushes
    "adcache.compactions",          // kTickerCompactions
    "adcache.wal.syncs",            // kTickerWalSyncs
    "adcache.write.stalls",         // kTickerWriteStalls
    "adcache.write.stall.micros",   // kTickerStallMicros
    "adcache.rl.actions",           // kTickerRlActions
    "adcache.cache.boundary.moves", // kTickerCacheBoundaryMoves
    "adcache.secondary.hits",       // kTickerSecondaryCacheHits
    "adcache.secondary.misses",     // kTickerSecondaryCacheMisses
    "adcache.secondary.demotions",  // kTickerSecondaryDemotions
    "adcache.secondary.demotion.rejects",  // kTickerSecondaryDemotionRejects
    "adcache.secondary.gc.runs",    // kTickerSecondaryGcRuns
    "adcache.secondary.gc.reclaimed.bytes",  // kTickerSecondaryGcReclaimedBytes
    "adcache.compaction.bytes.read",     // kTickerCompactionBytesRead
    "adcache.compaction.bytes.written",  // kTickerCompactionBytesWritten
};

const char* const kHistogramNames[kHistCount] = {
    "adcache.get.micros",        // kHistGetMicros
    "adcache.multiget.micros",   // kHistMultiGetMicros
    "adcache.scan.micros",       // kHistScanMicros
    "adcache.put.micros",        // kHistPutMicros
    "adcache.flush.micros",      // kHistFlushMicros
    "adcache.compaction.micros", // kHistCompactionMicros
    "adcache.secondary.read.micros",  // kHistSecondaryReadMicros
    "adcache.write.stall.duration.micros",  // kHistWriteStallMicros
};

const char* const kGaugeNames[kGaugeCount] = {
    "adcache.gauge.range_ratio",       // kGaugeRangeRatio
    "adcache.gauge.point_threshold",   // kGaugePointThreshold
    "adcache.gauge.scan_a",            // kGaugeScanA
    "adcache.gauge.scan_b",            // kGaugeScanB
    "adcache.gauge.smoothed_hit_rate", // kGaugeSmoothedHitRate
    "adcache.gauge.block_cache_slot_occupancy",  // kGaugeBlockCacheSlotOccupancy
    "adcache.gauge.shard_count",       // kGaugeShardCount
    "adcache.gauge.secondary_capacity_bytes",  // kGaugeSecondaryCapacityBytes
    "adcache.gauge.secondary_usage_bytes",     // kGaugeSecondaryUsageBytes
    "adcache.gauge.secondary_demotion_threshold",  // kGaugeSecondaryDemotionThreshold
    "adcache.gauge.block_cache_capacity_bytes",  // kGaugeBlockCacheCapacityBytes
    "adcache.gauge.range_cache_capacity_bytes",  // kGaugeRangeCacheCapacityBytes
    "adcache.gauge.memtable_capacity_bytes",   // kGaugeMemtableCapacityBytes
    "adcache.gauge.bloom_capacity_bytes",      // kGaugeBloomCapacityBytes
    "adcache.gauge.secondary_index_capacity_bytes",  // kGaugeSecondaryIndexCapacityBytes
    "adcache.gauge.bloom_bits_per_key",        // kGaugeBloomBitsPerKey
    "adcache.gauge.compaction_parallelism",    // kGaugeCompactionParallelism
};

const char* const kShardTickerNames[kShardTickerCount] = {
    "flushes",       // kShardFlushes
    "compactions",   // kShardCompactions
    "write_stalls",  // kShardWriteStalls
};

void AppendJsonNumber(std::ostringstream& out, double v) {
  // JSON has no inf/nan; clamp to null.
  if (v != v || v > 1e300 || v < -1e300) {
    out << "null";
    return;
  }
  out << v;
}

}  // namespace

void Statistics::RecordLatency(HistogramKind kind, uint64_t micros) {
  if (level_.load(std::memory_order_relaxed) <=
      static_cast<int>(StatsLevel::kDisabled)) {
    return;
  }
  HistShard& shard = histograms_[kind][ThreadHistShard()];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.histogram.Add(micros);
}

HistogramSnapshot MakeHistogramSnapshot(const Histogram& histogram) {
  HistogramSnapshot snap;
  snap.count = histogram.num();
  snap.min = histogram.min();
  snap.max = histogram.max();
  snap.average = histogram.Average();
  snap.p50 = histogram.Percentile(50.0);
  snap.p95 = histogram.Percentile(95.0);
  snap.p99 = histogram.Percentile(99.0);
  return snap;
}

HistogramSnapshot Statistics::GetHistogram(HistogramKind kind) const {
  Histogram merged;
  for (size_t s = 0; s < kHistShards; ++s) {
    const HistShard& shard = histograms_[kind][s];
    std::lock_guard<std::mutex> lock(shard.mu);
    merged.Merge(shard.histogram);
  }
  return MakeHistogramSnapshot(merged);
}

void Statistics::Reset() {
  for (uint32_t t = 0; t < kTickerCount; ++t) {
    tickers_[t].Reset();
  }
  for (size_t sh = 0; sh < kMaxStatShards; ++sh) {
    for (uint32_t t = 0; t < kShardTickerCount; ++t) {
      shard_tickers_[sh][t].store(0, std::memory_order_relaxed);
    }
  }
  for (uint32_t h = 0; h < kHistCount; ++h) {
    for (size_t s = 0; s < kHistShards; ++s) {
      HistShard& shard = histograms_[h][s];
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.histogram.Clear();
    }
  }
}

std::string Statistics::ToString() const {
  std::ostringstream out;
  for (uint32_t t = 0; t < kTickerCount; ++t) {
    uint64_t v = GetTickerCount(static_cast<Ticker>(t));
    if (v != 0) out << kTickerNames[t] << " COUNT : " << v << "\n";
  }
  for (uint32_t h = 0; h < kHistCount; ++h) {
    HistogramSnapshot s = GetHistogram(static_cast<HistogramKind>(h));
    if (s.count == 0) continue;
    out << kHistogramNames[h] << " COUNT : " << s.count
        << " AVG : " << s.average << " P50 : " << s.p50 << " P95 : " << s.p95
        << " P99 : " << s.p99 << " MAX : " << s.max << "\n";
  }
  for (uint32_t g = 0; g < kGaugeCount; ++g) {
    out << kGaugeNames[g] << " : " << GetGauge(static_cast<Gauge>(g)) << "\n";
  }
  for (int sh = 0; sh < shard_count(); ++sh) {
    out << "adcache.shard." << sh;
    for (uint32_t t = 0; t < kShardTickerCount; ++t) {
      out << " " << kShardTickerNames[t] << " : "
          << GetShardTickerCount(sh, static_cast<ShardTicker>(t));
    }
    out << "\n";
  }
  return out.str();
}

std::string Statistics::ToJson() const {
  std::ostringstream out;
  out << "{\"tickers\":{";
  for (uint32_t t = 0; t < kTickerCount; ++t) {
    if (t != 0) out << ",";
    out << "\"" << kTickerNames[t]
        << "\":" << GetTickerCount(static_cast<Ticker>(t));
  }
  out << "},\"histograms\":{";
  for (uint32_t h = 0; h < kHistCount; ++h) {
    HistogramSnapshot s = GetHistogram(static_cast<HistogramKind>(h));
    if (h != 0) out << ",";
    out << "\"" << kHistogramNames[h] << "\":{\"count\":" << s.count
        << ",\"min\":" << s.min << ",\"max\":" << s.max << ",\"avg\":";
    AppendJsonNumber(out, s.average);
    out << ",\"p50\":";
    AppendJsonNumber(out, s.p50);
    out << ",\"p95\":";
    AppendJsonNumber(out, s.p95);
    out << ",\"p99\":";
    AppendJsonNumber(out, s.p99);
    out << "}";
  }
  out << "},\"gauges\":{";
  for (uint32_t g = 0; g < kGaugeCount; ++g) {
    if (g != 0) out << ",";
    out << "\"" << kGaugeNames[g] << "\":";
    AppendJsonNumber(out, GetGauge(static_cast<Gauge>(g)));
  }
  out << "},\"shards\":[";
  for (int sh = 0; sh < shard_count(); ++sh) {
    if (sh != 0) out << ",";
    out << "{\"shard\":" << sh;
    for (uint32_t t = 0; t < kShardTickerCount; ++t) {
      out << ",\"" << kShardTickerNames[t] << "\":"
          << GetShardTickerCount(sh, static_cast<ShardTicker>(t));
    }
    out << "}";
  }
  out << "]}";
  return out.str();
}

void StatisticsEventListener::OnRlAction(const RlActionInfo& info) {
  stats_->RecordTick(kTickerRlActions);
  stats_->SetGauge(kGaugeRangeRatio, info.new_range_ratio);
  stats_->SetGauge(kGaugePointThreshold, info.new_point_threshold);
  stats_->SetGauge(kGaugeScanA, info.new_scan_a);
  stats_->SetGauge(kGaugeScanB, info.new_scan_b);
  stats_->SetGauge(kGaugeSmoothedHitRate, info.smoothed_hit_rate);
  if (info.secondary_controlled) {
    stats_->SetGauge(kGaugeSecondaryCapacityBytes,
                     static_cast<double>(info.new_secondary_capacity_bytes));
    stats_->SetGauge(kGaugeSecondaryDemotionThreshold,
                     info.new_demotion_threshold);
  }
  if (info.memwall_controlled) {
    stats_->SetGauge(kGaugeBloomBitsPerKey, info.new_bloom_bits_per_key);
  }
  // Schema v2: the named budget vector is authoritative for capacities.
  for (const BudgetConsumerDelta& d : info.budget) {
    double cap = static_cast<double>(d.new_capacity_bytes);
    if (d.name == kBudgetBlockCache) {
      stats_->SetGauge(kGaugeBlockCacheCapacityBytes, cap);
    } else if (d.name == kBudgetRangeCache) {
      stats_->SetGauge(kGaugeRangeCacheCapacityBytes, cap);
    } else if (d.name == kBudgetMemtable) {
      stats_->SetGauge(kGaugeMemtableCapacityBytes, cap);
    } else if (d.name == kBudgetBloom) {
      stats_->SetGauge(kGaugeBloomCapacityBytes, cap);
    } else if (d.name == kBudgetSecondaryDramIndex) {
      stats_->SetGauge(kGaugeSecondaryIndexCapacityBytes, cap);
    } else if (d.name == kBudgetSecondaryFlash) {
      stats_->SetGauge(kGaugeSecondaryCapacityBytes, cap);
      stats_->SetGauge(kGaugeSecondaryUsageBytes,
                       static_cast<double>(d.usage_bytes));
    }
  }
}

const char* Statistics::TickerName(Ticker ticker) {
  return kTickerNames[ticker];
}
const char* Statistics::HistogramName(HistogramKind kind) {
  return kHistogramNames[kind];
}
const char* Statistics::GaugeName(Gauge gauge) { return kGaugeNames[gauge]; }
const char* Statistics::ShardTickerName(ShardTicker ticker) {
  return kShardTickerNames[ticker];
}

PeriodicStatsDumper::PeriodicStatsDumper(Statistics* stats,
                                         uint64_t interval_millis, Sink sink)
    : stats_(stats),
      interval_millis_(interval_millis == 0 ? 1 : interval_millis),
      sink_(std::move(sink)) {
  thread_ = std::thread([this] { Run(); });
}

PeriodicStatsDumper::~PeriodicStatsDumper() { Stop(); }

void PeriodicStatsDumper::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void PeriodicStatsDumper::Run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::milliseconds(interval_millis_),
                 [this] { return stop_; });
    // One dump per wakeup, including the final one on Stop(), so short-lived
    // dumpers still emit at least one snapshot.
    lock.unlock();
    sink_(stats_->ToJson());
    lock.lock();
  }
}

}  // namespace adcache::core
