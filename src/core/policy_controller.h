#ifndef ADCACHE_CORE_POLICY_CONTROLLER_H_
#define ADCACHE_CORE_POLICY_CONTROLLER_H_

#include <algorithm>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/admission.h"
#include "core/dynamic_cache.h"
#include "core/event_listener.h"
#include "core/io_estimator.h"
#include "core/statistics.h"
#include "core/stats_collector.h"
#include "rl/actor_critic.h"

namespace adcache::core {

/// Configuration of the Policy Decision Controller (paper §3.5, §4.2).
struct ControllerOptions {
  /// Operations per tuning window (paper default 10^3).
  uint64_t window_size = 1000;
  /// Reward smoothing factor alpha (paper default 0.9).
  double alpha = 0.9;
  /// Ablation switches (paper Fig. 11b).
  bool enable_partitioning = true;
  bool enable_admission = true;
  /// Let the agent manage the flash-backed secondary tier (capacity within
  /// its flash budget + demotion-admission threshold, action dims 4 and 5).
  /// Ignored — actions computed but not applied — when no secondary cache
  /// is attached to the DynamicCacheComponent.
  bool enable_secondary_control = true;
  /// Cost of one flash read relative to one storage read, used to extend
  /// the h_est reward: a secondary hit counts as this fraction of a miss
  /// (see IoEstimator::EstimateHitRate).
  double secondary_flash_cost = 0.2;
  /// Unified memory wall: let the agent re-carve the whole DRAM budget —
  /// memtable, bloom and secondary-index consumers alongside the block and
  /// range caches — through one MemoryBudget DRAM plan per window (action
  /// dims 6 and 7). Requires those consumers to be registered as DRAM
  /// consumers on the component's registry (AdCacheStore does this when
  /// MemoryBudgetOptions::total_memory_budget is set); off (the default,
  /// legacy mode) the agent only moves the block/range boundary and the
  /// extra action dims are computed but not applied.
  bool enable_memwall_control = false;
  /// With memwall control on, these pick which write-side consumers the
  /// agent may move. A frozen consumer is left out of the DRAM plan: it
  /// keeps its carve-time capacity, which still counts against the wall
  /// (MemoryBudget subtracts untargeted DRAM capacities from the share the
  /// plan distributes). Mirrors MemoryBudgetOptions::adaptive_*.
  bool control_write_buffer = true;
  bool control_bloom = true;
  /// Bounds of the memtable's share of the wall (action 6 maps into
  /// [min, max]); bloom's share maps into [0, max_bloom_fraction].
  double min_memtable_fraction = 0.05;
  double max_memtable_fraction = 0.5;
  double max_bloom_fraction = 0.08;
  /// Weight of the window's flush/compaction/stall I/O in the h_est reward
  /// (IoEstimator::EstimateHitRate's write_cost_weight). 0 keeps the
  /// paper's read-only reward; AdCacheStore raises it under the unified
  /// wall so the agent feels memtable/bloom decisions.
  double write_cost_weight = 0.0;
  /// When false the (pretrained) policy is applied without online updates.
  bool online_learning = true;
  /// Apportion the range-cache budget across its key-range shards by
  /// per-shard budget leases refreshed every window (traffic x unmet-demand
  /// weighted, from per-shard hit/miss tickers) instead of the even split.
  /// Only takes effect when the range cache is sharded. The global-vs-lease
  /// comparison lives in EXPERIMENTS.md.
  bool enable_shard_leases = true;
  /// Supervised pretraining on synthetic workload states before deployment
  /// (paper §3.6: "representative workloads ... manually crafted"). Skipped
  /// when an explicit pretrained model is loaded.
  bool pretrain_heuristic = true;
  int pretrain_steps = 3000;
  rl::ActorCriticOptions agent;
};

/// The RL glue: at every window boundary it converts window statistics into
/// a state vector, computes the smoothed estimated-hit-rate reward, performs
/// one actor-critic update, and applies the new action to the cache boundary
/// and admission thresholds.
class PolicyController {
 public:
  /// 11 workload/cache features + 2 secondary-tier features (hit rate and
  /// occupancy; zero when no flash tier is attached) + 3 write-side
  /// features (write-stall rate, flush debt, bloom FPR estimate).
  static constexpr int kStateDim = 16;
  /// range ratio, point threshold, scan a/b, secondary capacity fraction,
  /// demotion-admission threshold, memtable share, bloom share.
  static constexpr int kActionDim = 8;

  PolicyController(const ControllerOptions& options,
                   DynamicCacheComponent* cache,
                   PointAdmissionController* point_admission,
                   ScanAdmissionController* scan_admission);

  PolicyController(const PolicyController&) = delete;
  PolicyController& operator=(const PolicyController&) = delete;

  /// Runs one tuning step. Thread-safe (serialised internally).
  void OnWindowEnd(const WindowStats& window, const LsmShapeParams& shape);

  /// Registers a listener for OnRlAction / OnCacheBoundaryMove. Callbacks
  /// fire synchronously inside OnWindowEnd (controller mutex held); see the
  /// contract in core/event_listener.h. Not thread-safe against concurrent
  /// OnWindowEnd — register before serving traffic.
  void AddListener(std::shared_ptr<EventListener> listener) {
    listeners_.push_back(std::move(listener));
  }
  /// Registry receiving the control-state gauges and the RL-action ticker
  /// (in addition to any StatisticsEventListener bridge). May be null.
  void SetStatistics(Statistics* statistics) { statistics_ = statistics; }

  /// Telemetry probe for the live bloom bits/key threshold (installed by
  /// the store under the unified wall; the registry only carries bytes).
  /// Feeds RlActionInfo::old/new_bloom_bits_per_key and the gauge. Install
  /// before traffic — not synchronised against OnWindowEnd.
  void SetBloomBitsProbe(std::function<int()> probe) {
    bloom_bits_probe_ = std::move(probe);
  }

  double smoothed_hit_rate() const { return h_smoothed_; }
  double last_reward() const { return last_reward_; }
  uint64_t windows_processed() const { return windows_; }
  rl::ActorCriticAgent* agent() { return agent_.get(); }

  /// Pretrained-model round trip (paper §3.6).
  void SaveModel(std::string* dst) const;
  Status LoadModel(const Slice& input);

  /// Runs `steps` supervised pretraining iterations on synthetic workload
  /// states labelled by TargetActionFor (paper §3.6's controlled-experiment
  /// targets). Returns the final mean-squared loss.
  float PretrainHeuristic(int steps, uint64_t seed = 1234);

  /// The rule table behind heuristic pretraining, exposed for tests: maps a
  /// state vector to the configuration the paper's static experiments found
  /// best (e.g. short-scan-heavy -> block cache; write-heavy -> range
  /// cache; long scans -> partial admission).
  static std::vector<float> TargetActionFor(const std::vector<float>& state);

  /// Maps the agent's [0,1] demotion action to a TinyLFU normalized-
  /// frequency threshold. Quadratic so most of the action range maps to
  /// small thresholds; 0 means demote-everything.
  static double ActionToDemotionThreshold(float action) {
    double a = std::clamp(static_cast<double>(action), 0.0, 1.0);
    return a * a * 0.25;
  }

  const ControllerOptions& options() const { return options_; }

 private:
  std::vector<float> BuildState(const WindowStats& w,
                                const LsmShapeParams& shape,
                                double h_est) const;
  void ApplyAction(const std::vector<float>& action);
  /// True when the unified-wall action path is live: memwall control is
  /// enabled AND the memtable consumer is registered as a DRAM consumer.
  bool MemwallControlled() const;
  /// Requires mu_. Differences the per-shard range-cache hit/miss tickers
  /// since the previous window, folds them into per-shard h_est EWMAs, and
  /// installs the resulting lease weights on the cache component.
  void UpdateShardLeasesLocked();

  ControllerOptions options_;
  DynamicCacheComponent* cache_;
  PointAdmissionController* point_admission_;
  ScanAdmissionController* scan_admission_;
  std::unique_ptr<rl::ActorCriticAgent> agent_;
  std::vector<std::shared_ptr<EventListener>> listeners_;
  Statistics* statistics_ = nullptr;
  std::function<int()> bloom_bits_probe_;

  mutable std::mutex mu_;
  bool have_prev_ = false;
  std::vector<float> prev_state_;
  std::vector<float> prev_action_;
  double h_smoothed_ = 0;
  bool h_initialised_ = false;
  double last_reward_ = 0;
  uint64_t windows_ = 0;

  // Per-shard lease state (guarded by mu_), indexed by range-cache shard.
  std::vector<double> shard_h_est_;
  std::vector<uint64_t> shard_prev_hits_;
  std::vector<uint64_t> shard_prev_lookups_;
};

}  // namespace adcache::core

#endif  // ADCACHE_CORE_POLICY_CONTROLLER_H_
