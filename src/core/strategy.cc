#include "core/strategy.h"

#include "cache/cacheus.h"
#include "cache/lecar.h"
#include "core/baseline_stores.h"

namespace adcache::core {

const std::vector<std::string>& AllStrategyNames() {
  static const std::vector<std::string>& names = *new std::vector<std::string>{
      "block",   "block_leaper", "kv",      "range",
      "range_lecar", "range_cacheus", "adcache",
      "adcache_admission_only", "adcache_partition_only"};
  return names;
}

std::unique_ptr<KvStore> CreateStore(const std::string& strategy,
                                     const StoreConfig& config,
                                     Status* status) {
  *status = Status::OK();
  if (strategy == "block") {
    std::unique_ptr<BlockOnlyStore> store;
    *status = BlockOnlyStore::Open(config.cache_budget, config.lsm,
                                   config.dbname, &store);
    return store;
  }
  if (strategy == "block_leaper") {
    lsm::Options lsm_options = config.lsm;
    lsm_options.leaper_prefetch = true;
    std::unique_ptr<BlockOnlyStore> store;
    *status = BlockOnlyStore::Open(config.cache_budget, lsm_options,
                                   config.dbname, &store, "block_leaper");
    return store;
  }
  if (strategy == "kv") {
    std::unique_ptr<KvCacheStore> store;
    *status = KvCacheStore::Open(config.cache_budget, config.lsm,
                                 config.dbname, &store);
    return store;
  }
  if (strategy == "range" || strategy == "range_lecar" ||
      strategy == "range_cacheus") {
    std::unique_ptr<EvictionPolicy> policy;
    const char* name;
    if (strategy == "range") {
      policy = NewLruPolicy();
      name = "range";
    } else if (strategy == "range_lecar") {
      policy = NewLeCaRPolicy(config.seed);
      name = "range_lecar";
    } else {
      policy = NewCacheusPolicy(config.seed);
      name = "range_cacheus";
    }
    std::unique_ptr<RangeCacheStore> store;
    *status = RangeCacheStore::Open(config.cache_budget, std::move(policy),
                                    name, config.lsm, config.dbname, &store);
    return store;
  }
  if (strategy == "adcache" || strategy == "adcache_admission_only" ||
      strategy == "adcache_partition_only") {
    AdCacheOptions options = config.adcache;
    options.cache_budget = config.cache_budget;
    options.controller.agent.seed = config.seed;
    if (strategy == "adcache_admission_only") {
      options.controller.enable_partitioning = false;
      // The paper's admission-only ablation runs over a pure range cache.
      options.initial_range_ratio = 1.0;
    } else if (strategy == "adcache_partition_only") {
      options.controller.enable_admission = false;
    }
    std::unique_ptr<AdCacheStore> store;
    *status = AdCacheStore::Open(options, config.lsm, config.dbname, &store);
    return store;
  }
  *status = Status::InvalidArgument("unknown strategy: " + strategy);
  return nullptr;
}

}  // namespace adcache::core
