#ifndef ADCACHE_CORE_ADMISSION_H_
#define ADCACHE_CORE_ADMISSION_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include "sketch/count_min_sketch.h"
#include "sketch/doorkeeper.h"
#include "util/slice.h"

namespace adcache::core {

/// Frequency-based admission for point lookups (paper §3.4). On every range
/// cache miss the key's Count-Min counter is incremented; the key is admitted
/// only if its normalised frequency (count / decayed total) clears a
/// threshold set by the RL agent. A TinyLFU-style doorkeeper absorbs the very
/// first occurrence of each key so one-off keys never pollute the sketch.
/// Thread-safe.
class PointAdmissionController {
 public:
  struct Options {
    size_t sketch_width = 1 << 14;
    size_t sketch_depth = 4;
    uint8_t saturation = 8;  // paper: halve all counts at 8
    bool use_doorkeeper = true;
    size_t doorkeeper_bits = 1 << 16;
  };

  PointAdmissionController();
  explicit PointAdmissionController(const Options& options);

  /// Records a miss for `key` and decides admission under the current
  /// threshold.
  bool RecordMissAndCheckAdmit(const Slice& key);

  /// Batched form: records all `n` keys and decides admission for each
  /// under ONE sketch lock instead of n (MultiGet's per-batch admission).
  void RecordMissBatchAndCheckAdmit(size_t n, const Slice* keys, bool* admit);

  /// Sets the normalised-frequency threshold directly (in [0, 1]).
  void SetThreshold(double threshold) {
    threshold_.store(threshold, std::memory_order_relaxed);
  }
  double threshold() const {
    return threshold_.load(std::memory_order_relaxed);
  }

  /// Maps an RL action in [0,1] to a threshold in [0, 0.5]. Quadratic so
  /// most of the action range has fine resolution near zero, where
  /// permissive thresholds live; the upper end still reaches scores only a
  /// dominating hot key can hold (the decayed total keeps normalised
  /// frequencies of hot keys roughly in [0.1, 1]).
  static double ActionToThreshold(double action) {
    return action * action * 0.5;
  }

  uint64_t decay_count() const;
  size_t MemoryUsage() const;

 private:
  /// Shared body of the single and batched forms. Requires mu_.
  bool RecordMissAndCheckAdmitLocked(const Slice& key);

  Options options_;
  mutable std::mutex mu_;
  CountMinSketch sketch_;
  Doorkeeper doorkeeper_;
  std::atomic<double> threshold_{0.0};
  uint64_t last_decay_count_ = 0;
};

/// Partial admission for range scans (paper §3.4): a scan of length l admits
/// all l results if l <= a, else floor(b * (l - a)) results. a and b are set
/// by the RL agent. Thread-safe (plain atomics).
class ScanAdmissionController {
 public:
  /// Upper bound of the learnable `a` (keys); actions map linearly onto
  /// [0, max_a].
  explicit ScanAdmissionController(double max_a = 64.0)
      : max_a_(max_a), a_(16.0), b_(0.5) {}

  uint64_t AdmitCount(uint64_t scan_length) const {
    double a = a_.load(std::memory_order_relaxed);
    double b = b_.load(std::memory_order_relaxed);
    if (static_cast<double>(scan_length) <= a) return scan_length;
    double admit = b * (static_cast<double>(scan_length) - a);
    if (admit < 0) admit = 0;
    if (admit > static_cast<double>(scan_length)) {
      admit = static_cast<double>(scan_length);
    }
    return static_cast<uint64_t>(admit);
  }

  void SetFromActions(double action_a, double action_b) {
    a_.store(action_a * max_a_, std::memory_order_relaxed);
    b_.store(action_b, std::memory_order_relaxed);
  }
  void Set(double a, double b) {
    a_.store(a, std::memory_order_relaxed);
    b_.store(b, std::memory_order_relaxed);
  }

  double a() const { return a_.load(std::memory_order_relaxed); }
  double b() const { return b_.load(std::memory_order_relaxed); }
  double max_a() const { return max_a_; }

  /// The effective scan length below which a scan is fully admitted; used
  /// as telemetry (paper Fig. 10's "scan threshold").
  double EffectiveThreshold() const { return a(); }

 private:
  double max_a_;
  std::atomic<double> a_;
  std::atomic<double> b_;
};

}  // namespace adcache::core

#endif  // ADCACHE_CORE_ADMISSION_H_
