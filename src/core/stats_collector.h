#ifndef ADCACHE_CORE_STATS_COLLECTOR_H_
#define ADCACHE_CORE_STATS_COLLECTOR_H_

#include <cstdint>

#include "util/sharded_counter.h"

namespace adcache::core {

/// Aggregated workload + cache statistics for one tuning window
/// (paper §4.2: the Stats Collector input to the Policy Decision Controller).
struct WindowStats {
  uint64_t point_lookups = 0;
  uint64_t scans = 0;
  uint64_t writes = 0;
  uint64_t scan_keys = 0;  // sum of returned scan lengths

  uint64_t range_point_hits = 0;
  uint64_t range_scan_hits = 0;
  uint64_t point_admits = 0;
  uint64_t scan_keys_admitted = 0;

  uint64_t block_reads = 0;  // SST block reads that hit storage (IO_miss)
  /// Secondary (flash) tier lookups this window: hits avoided a storage
  /// read at a fraction of its cost (see IoEstimator's flash_read_cost).
  /// Both stay 0 when no secondary cache is attached.
  uint64_t secondary_hits = 0;
  uint64_t secondary_misses = 0;
  uint64_t compactions = 0;
  uint64_t flushes = 0;
  /// Microseconds writers spent blocked on write stalls this window.
  uint64_t stall_micros = 0;
  /// Group commits the write path performed this window.
  uint64_t write_groups = 0;

  uint64_t ops() const { return point_lookups + scans + writes; }
  double AvgScanLength() const {
    return scans == 0 ? 0.0
                      : static_cast<double>(scan_keys) /
                            static_cast<double>(scans);
  }
  double PointRatio() const {
    uint64_t n = ops();
    return n == 0 ? 0.0
                  : static_cast<double>(point_lookups) /
                        static_cast<double>(n);
  }
  double ScanRatio() const {
    uint64_t n = ops();
    return n == 0 ? 0.0
                  : static_cast<double>(scans) / static_cast<double>(n);
  }
  double WriteRatio() const {
    uint64_t n = ops();
    return n == 0 ? 0.0
                  : static_cast<double>(writes) / static_cast<double>(n);
  }
};

/// Thread-safe accumulator. Queries record their type and outcomes; the
/// controller harvests a consistent snapshot (relative to the harvest
/// counters) at each window boundary. Counters are sharded per thread so
/// concurrent readers on the lock-free read path don't serialize on one
/// cacheline.
class StatsCollector {
 public:
  void RecordPointLookup(bool range_cache_hit) {
    point_lookups_.Inc();
    if (range_cache_hit) range_point_hits_.Inc();
  }

  /// Batched form for MultiGet: one sharded-counter add per counter for the
  /// whole batch instead of one per key.
  void RecordPointLookups(uint64_t lookups, uint64_t range_cache_hits) {
    point_lookups_.Add(lookups);
    if (range_cache_hits > 0) range_point_hits_.Add(range_cache_hits);
  }

  void RecordScan(uint64_t returned_keys, bool range_cache_hit) {
    scans_.Inc();
    scan_keys_.Add(returned_keys);
    if (range_cache_hit) range_scan_hits_.Inc();
  }

  void RecordWrite() { writes_.Inc(); }
  void RecordPointAdmit() { point_admits_.Inc(); }
  void RecordPointAdmits(uint64_t n) {
    if (n > 0) point_admits_.Add(n);
  }
  void RecordScanAdmit(uint64_t keys) { scan_keys_admitted_.Add(keys); }

  /// Total operations recorded so far (drives window boundaries).
  uint64_t TotalOps() const {
    return point_lookups_.Load() + scans_.Load() + writes_.Load();
  }

  /// Monotonic maintenance counters sampled from the storage engine at a
  /// window boundary (see lsm::DB::GetMaintenanceStats).
  struct MaintenanceSample {
    uint64_t compactions = 0;
    uint64_t flushes = 0;
    uint64_t stall_micros = 0;
    uint64_t write_groups = 0;
  };

  /// Returns the delta since the previous Harvest. `block_reads_now`,
  /// `maintenance_now` and the secondary-cache counters are externally
  /// sampled monotonic values (the secondary pair defaults to 0 for stores
  /// without a flash tier).
  WindowStats Harvest(uint64_t block_reads_now,
                      const MaintenanceSample& maintenance_now,
                      uint64_t secondary_hits_now = 0,
                      uint64_t secondary_misses_now = 0);

 private:
  util::ShardedCounter point_lookups_;
  util::ShardedCounter scans_;
  util::ShardedCounter writes_;
  util::ShardedCounter scan_keys_;
  util::ShardedCounter range_point_hits_;
  util::ShardedCounter range_scan_hits_;
  util::ShardedCounter point_admits_;
  util::ShardedCounter scan_keys_admitted_;

  WindowStats last_harvest_;
  uint64_t last_block_reads_ = 0;
  uint64_t last_secondary_hits_ = 0;
  uint64_t last_secondary_misses_ = 0;
  MaintenanceSample last_maintenance_;
};

}  // namespace adcache::core

#endif  // ADCACHE_CORE_STATS_COLLECTOR_H_
