#ifndef ADCACHE_CORE_STATS_COLLECTOR_H_
#define ADCACHE_CORE_STATS_COLLECTOR_H_

#include <atomic>
#include <cstdint>

namespace adcache::core {

/// Aggregated workload + cache statistics for one tuning window
/// (paper §4.2: the Stats Collector input to the Policy Decision Controller).
struct WindowStats {
  uint64_t point_lookups = 0;
  uint64_t scans = 0;
  uint64_t writes = 0;
  uint64_t scan_keys = 0;  // sum of returned scan lengths

  uint64_t range_point_hits = 0;
  uint64_t range_scan_hits = 0;
  uint64_t point_admits = 0;
  uint64_t scan_keys_admitted = 0;

  uint64_t block_reads = 0;  // SST block reads that hit storage (IO_miss)
  uint64_t compactions = 0;
  uint64_t flushes = 0;
  /// Microseconds writers spent blocked on write stalls this window.
  uint64_t stall_micros = 0;
  /// Group commits the write path performed this window.
  uint64_t write_groups = 0;

  uint64_t ops() const { return point_lookups + scans + writes; }
  double AvgScanLength() const {
    return scans == 0 ? 0.0
                      : static_cast<double>(scan_keys) /
                            static_cast<double>(scans);
  }
  double PointRatio() const {
    uint64_t n = ops();
    return n == 0 ? 0.0
                  : static_cast<double>(point_lookups) /
                        static_cast<double>(n);
  }
  double ScanRatio() const {
    uint64_t n = ops();
    return n == 0 ? 0.0
                  : static_cast<double>(scans) / static_cast<double>(n);
  }
  double WriteRatio() const {
    uint64_t n = ops();
    return n == 0 ? 0.0
                  : static_cast<double>(writes) / static_cast<double>(n);
  }
};

/// Thread-safe accumulator. Queries record their type and outcomes; the
/// controller harvests a consistent snapshot (relative to the harvest
/// counters) at each window boundary.
class StatsCollector {
 public:
  void RecordPointLookup(bool range_cache_hit) {
    point_lookups_.fetch_add(1, std::memory_order_relaxed);
    if (range_cache_hit) {
      range_point_hits_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void RecordScan(uint64_t returned_keys, bool range_cache_hit) {
    scans_.fetch_add(1, std::memory_order_relaxed);
    scan_keys_.fetch_add(returned_keys, std::memory_order_relaxed);
    if (range_cache_hit) {
      range_scan_hits_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void RecordWrite() { writes_.fetch_add(1, std::memory_order_relaxed); }
  void RecordPointAdmit() {
    point_admits_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordScanAdmit(uint64_t keys) {
    scan_keys_admitted_.fetch_add(keys, std::memory_order_relaxed);
  }

  /// Total operations recorded so far (drives window boundaries).
  uint64_t TotalOps() const {
    return point_lookups_.load(std::memory_order_relaxed) +
           scans_.load(std::memory_order_relaxed) +
           writes_.load(std::memory_order_relaxed);
  }

  /// Monotonic maintenance counters sampled from the storage engine at a
  /// window boundary (see lsm::DB::GetMaintenanceStats).
  struct MaintenanceSample {
    uint64_t compactions = 0;
    uint64_t flushes = 0;
    uint64_t stall_micros = 0;
    uint64_t write_groups = 0;
  };

  /// Returns the delta since the previous Harvest. `block_reads_now` and
  /// `maintenance_now` are externally sampled monotonic counters.
  WindowStats Harvest(uint64_t block_reads_now,
                      const MaintenanceSample& maintenance_now);

 private:
  std::atomic<uint64_t> point_lookups_{0};
  std::atomic<uint64_t> scans_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> scan_keys_{0};
  std::atomic<uint64_t> range_point_hits_{0};
  std::atomic<uint64_t> range_scan_hits_{0};
  std::atomic<uint64_t> point_admits_{0};
  std::atomic<uint64_t> scan_keys_admitted_{0};

  WindowStats last_harvest_;
  uint64_t last_block_reads_ = 0;
  MaintenanceSample last_maintenance_;
};

}  // namespace adcache::core

#endif  // ADCACHE_CORE_STATS_COLLECTOR_H_
