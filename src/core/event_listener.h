#ifndef ADCACHE_CORE_EVENT_LISTENER_H_
#define ADCACHE_CORE_EVENT_LISTENER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace adcache::core {

/// Payload for flush begin/end callbacks.
struct FlushJobInfo {
  uint64_t file_number = 0;    // L0 file produced (0 at begin time)
  uint64_t num_entries = 0;    // entries in the immutable memtable
  uint64_t file_size = 0;      // bytes written (0 at begin time)
  uint64_t duration_micros = 0;  // wall time of the job (0 at begin time)
  int num_imm_remaining = 0;   // immutable memtables still queued after
  int shard_id = 0;            // which key-range shard flushed (0 unsharded)
};

/// Payload for compaction begin/end callbacks.
struct CompactionJobInfo {
  int input_level = 0;
  int output_level = 0;
  int num_input_files = 0;
  int num_output_files = 0;     // 0 at begin time
  uint64_t input_bytes = 0;
  uint64_t output_bytes = 0;    // 0 at begin time
  uint64_t duration_micros = 0;  // 0 at begin time
  int shard_id = 0;             // which key-range shard compacted
  /// How many parallel subrange merges the job was split into (1 = serial).
  int num_subcompactions = 1;
};

/// Payload for one subrange merge inside a parallel compaction — the
/// per-subcompaction begin/end breadcrumb. `subcompaction_index` is the
/// subrange's position in key order within its parent compaction.
struct SubcompactionJobInfo {
  int shard_id = 0;
  int subcompaction_index = 0;
  int num_subcompactions = 1;    // the parent job's subrange count
  int output_level = 0;
  int num_output_files = 0;      // 0 at begin time
  uint64_t bytes_read = 0;       // input key+value bytes merged (0 at begin)
  uint64_t bytes_written = 0;    // output file bytes (0 at begin time)
  uint64_t duration_micros = 0;  // 0 at begin time
};

/// Write-throttling state of the DB write path.
enum class WriteStallCondition : int {
  kNormal = 0,    // writes proceed unthrottled
  kDelayed = 1,   // L0 slowdown trigger reached; writes take a one-shot delay
  kStopped = 2,   // hard limit reached; writes block until flush/compaction
};

struct WriteStallInfo {
  WriteStallCondition condition = WriteStallCondition::kNormal;
  WriteStallCondition prev_condition = WriteStallCondition::kNormal;
  int shard_id = 0;  // which key-range shard's write path throttled
  /// OnWriteStalled only: wall microseconds one writer just spent delayed
  /// (kDelayed) or blocked (kStopped). Always 0 for OnWriteStallChange.
  uint64_t duration_micros = 0;
};

/// Payload for a block/range cache boundary move (paper §4.4: the dynamic
/// partition between the block cache and the range cache).
struct CacheBoundaryMoveInfo {
  double old_range_ratio = 0.0;
  double new_range_ratio = 0.0;
  uint64_t total_budget_bytes = 0;
  uint64_t new_range_capacity_bytes = 0;
  uint64_t new_block_capacity_bytes = 0;
};

/// One named consumer's before/after capacities across an RL step — the
/// schema-v2 budget vector entry. Names are the core::MemoryBudget registry
/// names (block_cache, range_cache, memtable, bloom, secondary_dram_index,
/// secondary_flash); the string form keeps this header free of core
/// includes and lets listeners survive future consumer additions.
struct BudgetConsumerDelta {
  std::string name;
  uint64_t old_capacity_bytes = 0;
  uint64_t new_capacity_bytes = 0;
  uint64_t usage_bytes = 0;  // after the action was applied
};

/// Payload for one RL agent decision at a window boundary: the full
/// old -> new control state plus the reward that drove it. One of these per
/// PolicyController::OnWindowEnd makes the agent's trajectory inspectable.
///
/// Schema v2 adds `budget`, the full named capacity vector from the
/// MemoryBudget registry, superseding the hand-listed per-consumer fields
/// below (kept populated for old listeners). Check `schema_version` before
/// relying on `budget` being filled.
struct RlActionInfo {
  int schema_version = 2;
  /// Named budget vector (registry snapshot before/after ApplyAction),
  /// DRAM consumers first. Empty on schema v1 producers.
  std::vector<BudgetConsumerDelta> budget;
  uint64_t window_index = 0;      // how many windows the controller has seen
  double reward = 0.0;            // reward fed to the agent for this step
  double smoothed_hit_rate = 0.0; // EWMA h_est after this window
  double old_range_ratio = 0.0;
  double new_range_ratio = 0.0;
  double old_point_threshold = 0.0;
  double new_point_threshold = 0.0;
  double old_scan_a = 0.0;
  double new_scan_a = 0.0;
  double old_scan_b = 0.0;
  double new_scan_b = 0.0;
  /// Secondary (flash) tier control. Only meaningful when
  /// `secondary_controlled` is true (a secondary cache is attached and the
  /// controller's secondary action dimensions are enabled).
  bool secondary_controlled = false;
  uint64_t old_secondary_capacity_bytes = 0;
  uint64_t new_secondary_capacity_bytes = 0;
  double old_demotion_threshold = 0.0;
  double new_demotion_threshold = 0.0;
  /// Unified-wall dimensions (schema v2). Only meaningful when
  /// `memwall_controlled` is true (memtable/bloom consumers are on the wall
  /// and the controller's write-side action dimensions are enabled).
  bool memwall_controlled = false;
  int old_bloom_bits_per_key = 0;
  int new_bloom_bits_per_key = 0;
};

/// Callback interface for store/DB lifecycle events, modeled on RocksDB's
/// EventListener. Register listeners via lsm::Options::listeners (DB-level
/// events) or core::AdCacheOptions::listeners (DB events plus RL/cache
/// events).
///
/// Threading contract: callbacks fire synchronously on whichever thread
/// produced the event — background maintenance threads for flush/compaction,
/// a writer thread for stall transitions (sometimes with internal locks
/// held), the window-closing reader/writer thread for RL actions. Callbacks
/// must therefore be fast, must not block, and must never call back into the
/// DB or store that fired them.
///
/// This header is intentionally self-contained (no lsm/core includes) so the
/// lsm layer can fire events without linking against core.
class EventListener {
 public:
  virtual ~EventListener() = default;

  virtual void OnFlushBegin(const FlushJobInfo& /*info*/) {}
  virtual void OnFlushCompleted(const FlushJobInfo& /*info*/) {}

  virtual void OnCompactionBegin(const CompactionJobInfo& /*info*/) {}
  virtual void OnCompactionCompleted(const CompactionJobInfo& /*info*/) {}

  /// Per-subrange breadcrumbs inside one compaction. Fired from the thread
  /// running that subrange's merge, so callbacks from sibling subcompactions
  /// of the same job can arrive concurrently.
  virtual void OnSubcompactionBegin(const SubcompactionJobInfo& /*info*/) {}
  virtual void OnSubcompactionCompleted(const SubcompactionJobInfo& /*info*/) {
  }

  /// Fired on every write-throttling state change (kNormal <-> kDelayed
  /// <-> kStopped). May be invoked with the DB mutex held.
  virtual void OnWriteStallChange(const WriteStallInfo& /*info*/) {}

  /// Fired once per completed stall episode on the stalled writer's thread
  /// — after each one-shot slowdown delay and after each wait on the stop
  /// trigger — with `duration_micros` set. May be invoked with the DB mutex
  /// held.
  virtual void OnWriteStalled(const WriteStallInfo& /*info*/) {}

  /// Fired when the block/range cache boundary actually moves.
  virtual void OnCacheBoundaryMove(const CacheBoundaryMoveInfo& /*info*/) {}

  /// Fired once per controller window, after the action was applied.
  virtual void OnRlAction(const RlActionInfo& /*info*/) {}
};

}  // namespace adcache::core

#endif  // ADCACHE_CORE_EVENT_LISTENER_H_
