#ifndef ADCACHE_CORE_ADCACHE_STORE_H_
#define ADCACHE_CORE_ADCACHE_STORE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/admission.h"
#include "core/dynamic_cache.h"
#include "core/kv_store.h"
#include "core/memory_budget.h"
#include "core/policy_controller.h"
#include "core/stats_collector.h"
#include "lsm/sharded_db.h"

namespace adcache::core {

/// Configuration for an AdCacheStore.
struct AdCacheOptions {
  /// The unified memory wall (core/memory_budget.h): one documented home
  /// for every byte-budget knob. memory.total_memory_budget == 0 (the
  /// default) keeps the legacy per-knob budgets below; > 0 switches the
  /// store to one DRAM wall covering block cache, range cache, memtables,
  /// bloom filters and the secondary tier's DRAM index, re-carved online
  /// by the RL controller (actions 6 and 7). Open applies the
  /// ADCACHE_MEMORY_BUDGET env override on top of this.
  MemoryBudgetOptions memory;
  /// DEPRECATED alias: budget shared by block + range cache only. Under
  /// the unified wall (memory.total_memory_budget > 0) this knob is
  /// ignored — the caches get the wall minus the memtable/bloom/index
  /// carve.
  size_t cache_budget = 16 * 1024 * 1024;
  /// Where the boundary starts before the agent moves it.
  double initial_range_ratio = 0.5;
  /// Sorted lower bounds partitioning the range cache into independently
  /// locked key-range shards (empty keeps the paper's single instance).
  /// Multi-client scan workloads set these to stop range-cache probes from
  /// serializing on one mutex; see ShardedRangeCache.
  std::vector<std::string> range_shard_boundaries;
  /// DEPRECATED alias for memory.secondary_cache_budget (forwards with a
  /// one-time warning when only the alias is set).
  /// Flash budget for the secondary (slab-log) cache tier below the block
  /// cache. When > 0 and the lsm::Options passed to Open carry no
  /// secondary_cache, Open builds a slab cache under `<dbname>/secondary`
  /// and wires it in (demotion hook + read-miss probe). 0 leaves the tier
  /// to the lsm layer: an explicitly provided lsm::Options::secondary_cache
  /// or the ADCACHE_SECONDARY_CACHE env fallback is adopted either way, and
  /// the RL agent then manages the tier's capacity within this (or the
  /// adopted tier's) budget plus its demotion-admission threshold when
  /// controller.enable_secondary_control is set.
  size_t secondary_cache_budget = 0;
  /// Initial demotion-admission threshold for a tier built by Open (the
  /// agent moves it afterwards; <= 0 demotes everything).
  double secondary_admission_threshold = 0.0;
  ControllerOptions controller;
  PointAdmissionController::Options point_admission;
  /// Upper bound for the learnable scan-admission `a`.
  double scan_admission_max_a = 64.0;
  /// Optional serialised agent (from PolicyController::SaveModel).
  std::string pretrained_model;
  /// How much the store's Statistics registry records (tickers default on,
  /// op-latency timers default off; see core/statistics.h).
  StatsLevel stats_level = StatsLevel::kExceptTimers;
  /// Listeners receiving both DB events (flush/compaction/stall) and
  /// controller events (RL action, cache boundary move). Appended to any
  /// lsm::Options::listeners passed to Open.
  std::vector<std::shared_ptr<EventListener>> listeners;
};

/// AdCache: the paper's full system. An LSM-tree KV store whose cache layer
/// is a dynamically partitioned block+range cache with learned admission
/// control, tuned online by an actor-critic agent every `window_size`
/// operations (query path per paper Fig. 5; tuning loop per §4.2).
class AdCacheStore : public KvStore {
 public:
  /// Opens the underlying DB at `dbname`. `lsm_options.block_cache` is
  /// overridden with the dynamic component's block cache.
  static Status Open(const AdCacheOptions& options,
                     const lsm::Options& lsm_options,
                     const std::string& dbname,
                     std::unique_ptr<AdCacheStore>* store);

  CacheStatsSnapshot GetCacheStats() const override;
  lsm::ShardedDB* db() override { return db_.get(); }
  const char* Name() const override { return "adcache"; }

  PolicyController* controller() { return controller_.get(); }
  DynamicCacheComponent* dynamic_cache() { return cache_.get(); }
  /// The unified memory wall registry (owned by the dynamic component).
  MemoryBudget* memory_budget() { return cache_->memory_budget(); }
  const MemoryBudget* memory_budget() const { return cache_->memory_budget(); }
  /// True when memory.total_memory_budget put the store in unified mode.
  bool unified_memory_wall() const { return unified_; }
  ScanAdmissionController* scan_admission() { return &scan_admission_; }
  PointAdmissionController* point_admission() { return &point_admission_; }

  /// Immediately closes the current window and runs one tuning step
  /// (used by tests and the pretraining example).
  void ForceWindowEnd();

 protected:
  Status PutImpl(const WriteOptions& options, const Slice& key,
                 const Slice& value) override;
  Status DeleteImpl(const WriteOptions& options, const Slice& key) override;
  Status GetImpl(const ReadOptions& options, const Slice& key,
                 PinnableSlice* value) override;
  Status ScanImpl(const ReadOptions& options, const Slice& start, size_t n,
                  std::vector<KvPair>* results) override;
  /// Query handling path per key batch: range-cache probe per key, one
  /// lsm::DB::MultiGet for the misses, then ONE sketch lock for the batched
  /// admission decisions and one sharded-counter add per stats counter.
  void MultiGetImpl(const ReadOptions& options, MultiGetBatch* batch) override;

 private:
  /// `block_cache_impl` comes from lsm::Options at Open time (the dynamic
  /// component owns the cache, but the DB options select the backend).
  AdCacheStore(const AdCacheOptions& options, BlockCacheImpl block_cache_impl);

  void MaybeEndWindow();
  /// Registers the memtable / bloom / secondary-DRAM-index consumers on the
  /// wall after the DB is open (DRAM consumers in unified mode, tracked
  /// telemetry entries in legacy mode) and seeds the capacity gauges.
  void RegisterWallConsumers();
  LsmShapeParams CurrentShape() const;
  StatsCollector::MaintenanceSample SampleMaintenance() const;
  /// Folds the component-owned counters (block/range cache hit-miss, env
  /// block reads) into the Statistics registry as deltas since the last
  /// sync, so registry tickers stay authoritative without touching the
  /// components' hot paths twice. Cold path (snapshot/dump time only).
  void SyncComponentTickers() const;

  AdCacheOptions options_;
  std::unique_ptr<DynamicCacheComponent> cache_;
  PointAdmissionController point_admission_;
  ScanAdmissionController scan_admission_;
  std::unique_ptr<PolicyController> controller_;
  std::unique_ptr<lsm::ShardedDB> db_;
  /// Per-window RL state collector (distinct from the base-class stats_
  /// registry, which is the long-lived telemetry surface).
  StatsCollector window_stats_;
  /// Folds DB maintenance events into stats_; installed on the DB only —
  /// the controller feeds the registry directly via SetStatistics, so
  /// wiring the bridge there too would double-count RL actions.
  std::shared_ptr<StatisticsEventListener> stats_bridge_;
  std::atomic<uint64_t> next_window_at_;
  std::mutex window_mu_;
  /// Unified-wall mode flag plus the registry-facing capacities that have
  /// no natural byte counter in their subsystem: the bloom consumer's
  /// byte target (converted to bits/key on SetCapacity) and the secondary
  /// tier's DRAM index budget. Written only under the registry mutex.
  bool unified_ = false;
  std::atomic<size_t> bloom_capacity_bytes_{0};
  std::atomic<size_t> secondary_index_capacity_{0};

  /// Last component-counter values already folded into the registry
  /// (SyncComponentTickers); relaxed atomics, monotone.
  struct MirrorBase {
    std::atomic<uint64_t> block_reads{0};
    std::atomic<uint64_t> block_cache_hits{0};
    std::atomic<uint64_t> block_cache_misses{0};
    std::atomic<uint64_t> range_hits{0};
    std::atomic<uint64_t> range_misses{0};
    std::atomic<uint64_t> secondary_hits{0};
    std::atomic<uint64_t> secondary_misses{0};
    std::atomic<uint64_t> secondary_demotions{0};
    std::atomic<uint64_t> secondary_demotion_rejects{0};
    std::atomic<uint64_t> secondary_gc_runs{0};
    std::atomic<uint64_t> secondary_gc_reclaimed{0};
  };
  mutable MirrorBase mirror_;
};

}  // namespace adcache::core

#endif  // ADCACHE_CORE_ADCACHE_STORE_H_
