#ifndef ADCACHE_CORE_STATISTICS_H_
#define ADCACHE_CORE_STATISTICS_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "core/event_listener.h"
#include "util/histogram.h"
#include "util/perf_context.h"
#include "util/sharded_counter.h"

namespace adcache::core {

/// Named process-wide tickers. Cumulative, monotone, contention-free to
/// record (one ShardedCounter each).
enum Ticker : uint32_t {
  kTickerPointLookups = 0,     // KvStore::Get calls
  kTickerMultiGetKeys,         // keys looked up through MultiGet
  kTickerScans,                // KvStore::Scan calls
  kTickerScanKeysRead,         // keys returned by scans
  kTickerWrites,               // KvStore::Put/Delete calls
  kTickerRangeCacheHits,       // range-cache probes answered from cache
  kTickerRangeCacheMisses,
  kTickerBlockCacheHits,       // block-cache lookups that hit
  kTickerBlockCacheMisses,
  kTickerBlockReads,           // data blocks fetched from storage
  kTickerPointAdmits,          // point misses admitted into the range cache
  kTickerPointRejects,         // point misses rejected by admission control
  kTickerScanAdmits,           // scans admitted into the range cache
  kTickerFlushes,              // memtable flush jobs completed
  kTickerCompactions,          // compaction jobs completed
  kTickerWalSyncs,             // WAL fsync batches (one per sync write group)
  kTickerWriteStalls,          // transitions into kDelayed or kStopped
  kTickerStallMicros,          // wall micros writers spent delayed/stopped
  kTickerRlActions,            // RL agent decisions applied
  kTickerCacheBoundaryMoves,   // block/range boundary actually moved
  kTickerSecondaryCacheHits,   // secondary-tier probes answered from flash
  kTickerSecondaryCacheMisses,
  kTickerSecondaryDemotions,   // evicted blocks appended to the slab log
  kTickerSecondaryDemotionRejects,  // demote offers refused by admission
  kTickerSecondaryGcRuns,      // watermark-triggered slab GC passes
  kTickerSecondaryGcReclaimedBytes, // slab bytes reclaimed by GC
  kTickerCompactionBytesRead,  // input bytes consumed by compactions
  kTickerCompactionBytesWritten, // output bytes produced by compactions
  kTickerCount
};

/// Latency histograms (values in microseconds).
enum HistogramKind : uint32_t {
  kHistGetMicros = 0,
  kHistMultiGetMicros,  // one sample per batch
  kHistScanMicros,
  kHistPutMicros,
  kHistFlushMicros,
  kHistCompactionMicros,
  kHistSecondaryReadMicros,  // flash (slab pread) latency on secondary hits
  kHistWriteStallMicros,     // one sample per completed stall episode
  kHistCount
};

/// Last-value-wins control-state gauges. These are the authoritative home
/// of the AdCache control state exported to telemetry; CacheStatsSnapshot
/// mirrors them as a compatibility view.
enum Gauge : uint32_t {
  kGaugeRangeRatio = 0,
  kGaugePointThreshold,
  kGaugeScanA,
  kGaugeScanB,
  kGaugeSmoothedHitRate,
  /// Fraction of the block cache's fixed slot table in use (CLOCK backend
  /// only; 0 for LRU, which has no slot table). Refreshed at snapshot time.
  kGaugeBlockCacheSlotOccupancy,
  /// Number of key-range shards behind the store's ShardedDB facade (1 for
  /// an unsharded store). Set by Statistics::ConfigureShards.
  kGaugeShardCount,
  /// Secondary (flash) tier control state; all 0 when the tier is disabled.
  kGaugeSecondaryCapacityBytes,
  kGaugeSecondaryUsageBytes,
  kGaugeSecondaryDemotionThreshold,
  /// Unified memory wall: per-consumer capacities from the MemoryBudget
  /// registry, refreshed from the RlActionInfo budget vector on every
  /// controller step (and seeded at store open).
  kGaugeBlockCacheCapacityBytes,
  kGaugeRangeCacheCapacityBytes,
  kGaugeMemtableCapacityBytes,
  kGaugeBloomCapacityBytes,
  kGaugeSecondaryIndexCapacityBytes,
  /// Live bloom bits/key threshold applied to newly built tables.
  kGaugeBloomBitsPerKey,
  /// Subcompaction merges currently running across all shards (last value
  /// wins; a live snapshot of compaction parallelism, 0 when idle).
  kGaugeCompactionParallelism,
  kGaugeCount
};

/// Per-key-range-shard maintenance tickers, recorded alongside the global
/// Ticker aggregates so the JSON dump can attribute flushes, compactions
/// and write stalls to individual shards. Fed by StatisticsEventListener
/// from the shard_id stamped into the event payloads.
enum ShardTicker : uint32_t {
  kShardFlushes = 0,
  kShardCompactions,
  kShardWriteStalls,
  kShardTickerCount
};

/// How much the registry records.
enum class StatsLevel : int {
  kDisabled = 0,     // every Record* is a no-op
  kExceptTimers = 1, // tickers + gauges on; latency timers skipped (default)
  kAll = 2,          // everything, including clock reads for op latencies
};

struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  double average = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Computes count/min/max/avg/p50/p95/p99 from a histogram. Shared by the
/// registry and the workload runner's per-phase latency stats.
HistogramSnapshot MakeHistogramSnapshot(const Histogram& histogram);

/// Process/store-wide metrics registry: tickers (ShardedCounter-backed, so
/// steady-state recording never bounces a shared cacheline), latency
/// histograms (util::Histogram shards under short mutexes, merged on read),
/// and control-state gauges (atomic doubles).
///
/// All Record* methods are thread-safe. Reads (GetTickerCount, histogram
/// snapshots, ToJson) are racy-but-monotone the same way ShardedCounter is;
/// see the torn-read contract on CacheStatsSnapshot in core/kv_store.h.
class Statistics {
 public:
  Statistics() = default;
  Statistics(const Statistics&) = delete;
  Statistics& operator=(const Statistics&) = delete;

  void SetStatsLevel(StatsLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  StatsLevel stats_level() const {
    return static_cast<StatsLevel>(level_.load(std::memory_order_relaxed));
  }
  /// True when op-latency timers should read the clock and record.
  bool TimersEnabled() const {
    return level_.load(std::memory_order_relaxed) >=
           static_cast<int>(StatsLevel::kAll);
  }

  void RecordTick(Ticker ticker, uint64_t count = 1) {
    if (level_.load(std::memory_order_relaxed) >
        static_cast<int>(StatsLevel::kDisabled)) {
      tickers_[ticker].Add(count);
    }
  }
  uint64_t GetTickerCount(Ticker ticker) const {
    return tickers_[ticker].Load();
  }

  /// Records one latency sample. Gated only on kDisabled: cold-path callers
  /// (flush/compaction jobs, the event-listener bridge) record directly;
  /// hot-path callers go through LatencyTimer, which already refuses to
  /// read the clock below kAll.
  void RecordLatency(HistogramKind kind, uint64_t micros);
  HistogramSnapshot GetHistogram(HistogramKind kind) const;

  void SetGauge(Gauge gauge, double value) {
    gauges_[gauge].store(PackDouble(value), std::memory_order_relaxed);
  }
  double GetGauge(Gauge gauge) const {
    return UnpackDouble(gauges_[gauge].load(std::memory_order_relaxed));
  }

  /// Declares how many key-range shards record per-shard ticks (clamped to
  /// kMaxStatShards) and sets kGaugeShardCount. Call before shard events
  /// fire; ticks for shards at or past the configured count are dropped.
  void ConfigureShards(int shard_count) {
    if (shard_count < 0) shard_count = 0;
    if (shard_count > static_cast<int>(kMaxStatShards)) {
      shard_count = static_cast<int>(kMaxStatShards);
    }
    shard_count_.store(shard_count, std::memory_order_relaxed);
    SetGauge(kGaugeShardCount, shard_count);
  }
  int shard_count() const {
    return shard_count_.load(std::memory_order_relaxed);
  }

  /// Bounds-checked per-shard tick: drops the sample when `shard` is outside
  /// the configured range (e.g. events firing before ConfigureShards).
  void RecordShardTick(int shard, ShardTicker ticker, uint64_t count = 1) {
    if (shard < 0 || shard >= shard_count()) return;
    if (level_.load(std::memory_order_relaxed) >
        static_cast<int>(StatsLevel::kDisabled)) {
      shard_tickers_[shard][ticker].fetch_add(count,
                                              std::memory_order_relaxed);
    }
  }
  uint64_t GetShardTickerCount(int shard, ShardTicker ticker) const {
    if (shard < 0 || shard >= static_cast<int>(kMaxStatShards)) return 0;
    return shard_tickers_[shard][ticker].load(std::memory_order_relaxed);
  }

  /// Zeroes tickers and histograms (gauges keep their last value). Test
  /// helper; concurrent recorders make the zero approximate.
  void Reset();

  /// Human-readable multi-line dump of nonzero tickers, histograms, gauges.
  std::string ToString() const;
  /// JSON object: {"tickers": {...}, "histograms": {...}, "gauges": {...}}.
  std::string ToJson() const;

  static const char* TickerName(Ticker ticker);
  static const char* HistogramName(HistogramKind kind);
  static const char* GaugeName(Gauge gauge);
  static const char* ShardTickerName(ShardTicker ticker);

  /// Upper bound on shards with per-shard tickers (plain atomics, no
  /// allocation after construction, so recording never races Configure).
  static constexpr size_t kMaxStatShards = 64;

 private:
  static uint64_t PackDouble(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    return bits;
  }
  static double UnpackDouble(uint64_t bits) {
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }

  // Histogram shards mirror ShardedCounter's thread->slot assignment so
  // concurrent recorders rarely share a mutex; readers merge all shards.
  static constexpr size_t kHistShards = 4;
  struct alignas(64) HistShard {
    mutable std::mutex mu;
    Histogram histogram;
  };
  static size_t ThreadHistShard() {
    static std::atomic<size_t> next{0};
    thread_local size_t shard =
        next.fetch_add(1, std::memory_order_relaxed) & (kHistShards - 1);
    return shard;
  }

  std::atomic<int> level_{static_cast<int>(StatsLevel::kExceptTimers)};
  util::ShardedCounter tickers_[kTickerCount];
  HistShard histograms_[kHistCount][kHistShards];
  std::atomic<uint64_t> gauges_[kGaugeCount] = {};
  std::atomic<int> shard_count_{0};
  std::atomic<uint64_t> shard_tickers_[kMaxStatShards][kShardTickerCount] = {};
};

/// RAII op-latency timer. Reads the clock only when `stats` is non-null and
/// at StatsLevel::kAll — at the default level the constructor is a relaxed
/// load and a branch.
class LatencyTimer {
 public:
  LatencyTimer(Statistics* stats, HistogramKind kind)
      : stats_(stats != nullptr && stats->TimersEnabled() ? stats : nullptr),
        kind_(kind),
        start_(stats_ != nullptr ? util::PerfNowMicros() : 0) {}
  ~LatencyTimer() {
    if (stats_ != nullptr) {
      stats_->RecordLatency(kind_, util::PerfNowMicros() - start_);
    }
  }
  LatencyTimer(const LatencyTimer&) = delete;
  LatencyTimer& operator=(const LatencyTimer&) = delete;

 private:
  Statistics* stats_;
  HistogramKind kind_;
  uint64_t start_;
};

/// EventListener that folds DB/controller events into a Statistics registry:
/// flush/compaction tickers + duration histograms, stall transitions, RL
/// actions, and the control-state gauges. AdCacheStore installs one
/// automatically so the registry sees maintenance activity without the lsm
/// layer linking against core.
class StatisticsEventListener : public EventListener {
 public:
  explicit StatisticsEventListener(Statistics* stats) : stats_(stats) {}

  void OnFlushCompleted(const FlushJobInfo& info) override {
    stats_->RecordTick(kTickerFlushes);
    stats_->RecordShardTick(info.shard_id, kShardFlushes);
    stats_->RecordLatency(kHistFlushMicros, info.duration_micros);
  }
  void OnCompactionCompleted(const CompactionJobInfo& info) override {
    stats_->RecordTick(kTickerCompactions);
    stats_->RecordTick(kTickerCompactionBytesRead, info.input_bytes);
    stats_->RecordTick(kTickerCompactionBytesWritten, info.output_bytes);
    stats_->RecordShardTick(info.shard_id, kShardCompactions);
    stats_->RecordLatency(kHistCompactionMicros, info.duration_micros);
  }
  void OnSubcompactionBegin(const SubcompactionJobInfo& /*info*/) override {
    int active =
        active_subcompactions_.fetch_add(1, std::memory_order_relaxed) + 1;
    stats_->SetGauge(kGaugeCompactionParallelism, active);
  }
  void OnSubcompactionCompleted(const SubcompactionJobInfo& /*info*/) override {
    int active =
        active_subcompactions_.fetch_sub(1, std::memory_order_relaxed) - 1;
    stats_->SetGauge(kGaugeCompactionParallelism, active < 0 ? 0 : active);
  }
  void OnWriteStallChange(const WriteStallInfo& info) override {
    if (info.condition != WriteStallCondition::kNormal) {
      stats_->RecordTick(kTickerWriteStalls);
      stats_->RecordShardTick(info.shard_id, kShardWriteStalls);
    }
  }
  void OnWriteStalled(const WriteStallInfo& info) override {
    stats_->RecordTick(kTickerStallMicros, info.duration_micros);
    stats_->RecordLatency(kHistWriteStallMicros, info.duration_micros);
  }
  void OnCacheBoundaryMove(const CacheBoundaryMoveInfo& info) override {
    stats_->RecordTick(kTickerCacheBoundaryMoves);
    stats_->SetGauge(kGaugeRangeRatio, info.new_range_ratio);
  }
  void OnRlAction(const RlActionInfo& info) override;

 private:
  Statistics* stats_;
  /// Live subcompaction merges feeding kGaugeCompactionParallelism. Shared
  /// across shards when one listener instance serves a ShardedDB.
  std::atomic<int> active_subcompactions_{0};
};

/// Background thread that invokes `sink` with Statistics::ToJson() every
/// `interval_millis` until destroyed (or Stop()). The default sink appends
/// lines to the file at `path` passed to the convenience constructor.
class PeriodicStatsDumper {
 public:
  using Sink = std::function<void(const std::string& json)>;

  PeriodicStatsDumper(Statistics* stats, uint64_t interval_millis, Sink sink);
  ~PeriodicStatsDumper();
  PeriodicStatsDumper(const PeriodicStatsDumper&) = delete;
  PeriodicStatsDumper& operator=(const PeriodicStatsDumper&) = delete;

  /// Joins the thread after one final dump. Idempotent.
  void Stop();

 private:
  void Run();

  Statistics* stats_;
  uint64_t interval_millis_;
  Sink sink_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace adcache::core

#endif  // ADCACHE_CORE_STATISTICS_H_
