#ifndef ADCACHE_CORE_IO_ESTIMATOR_H_
#define ADCACHE_CORE_IO_ESTIMATOR_H_

#include <cmath>
#include <cstdint>

#include "core/stats_collector.h"

namespace adcache::core {

/// Static LSM-tree shape parameters used by the estimator (paper Table 1).
struct LsmShapeParams {
  int num_levels = 1;         // L: non-empty levels
  int l0_max_runs = 8;        // r0^max (write-stop trigger)
  double entries_per_block = 4;  // B
  double bloom_fpr = 0.01;    // FPR
  int l0_files = 0;           // current L0 run count (flush-debt signal)
  int imm_memtables = 0;      // immutable memtables waiting to flush
};

/// Implements the paper's no-cache I/O model (§3.5):
///
///   IO_point    = 1 + FPR
///   IO_scan     = l/B + (L + r0max/2 - 1)
///   IO_estimate = p * IO_point + s * IO_scan
///   h_estimate  = 1 - IO_miss / IO_estimate
///
/// This makes hit rates comparable between block-based and result-based
/// caches, since the range cache has no notion of physical block hits.
class IoEstimator {
 public:
  static double BloomFprForBitsPerKey(int bits_per_key) {
    return BloomFprForBits(static_cast<double>(bits_per_key));
  }

  /// Fractional-bits overload for live per-table averages (the tree holds
  /// tables built under different thresholds once bits become dynamic).
  static double BloomFprForBits(double bits_per_key) {
    if (bits_per_key <= 0) return 1.0;
    // Standard bloom approximation with k = 0.69 * bits/key probes.
    return std::pow(0.6185, bits_per_key);
  }

  /// Write-side I/O charged to the window: every flush writes roughly one
  /// table's worth of blocks and every compaction reads + rewrites one, and
  /// time spent stalled behind L0 is converted at one block-read per 100us
  /// (the model's storage-read latency unit). Used to extend h_est with a
  /// write-cost term so the agent feels memtable/bloom decisions.
  static double EstimateWriteIo(const WindowStats& w,
                                double blocks_per_job = 64.0) {
    double jobs = static_cast<double>(w.flushes) +
                  2.0 * static_cast<double>(w.compactions);
    return jobs * blocks_per_job +
           static_cast<double>(w.stall_micros) / 100.0;
  }

  static double EstimateIo(const WindowStats& w, const LsmShapeParams& shape) {
    double p = static_cast<double>(w.point_lookups);
    double s = static_cast<double>(w.scans);
    double l = w.AvgScanLength();
    double b = shape.entries_per_block > 0 ? shape.entries_per_block : 1.0;
    double seek_ios = static_cast<double>(shape.num_levels) +
                      static_cast<double>(shape.l0_max_runs) / 2.0 - 1.0;
    if (seek_ios < 1.0) seek_ios = 1.0;
    return p * (1.0 + shape.bloom_fpr) + s * (l / b) + s * seek_ios;
  }

  /// Estimated hit rate in [0, 1]. Returns 0 when the window had no reads.
  ///
  /// `flash_read_cost` extends the model to a flash-backed secondary tier:
  /// a secondary-cache hit still avoided a storage read, but it was not
  /// free — it cost one flash pread, which the model charges as that
  /// fraction of a storage read. Effective misses are therefore
  /// block_reads + flash_read_cost * secondary_hits; with the default 0 (or
  /// no secondary tier, where secondary_hits == 0) this reduces to the
  /// paper's original h_estimate.
  /// `write_cost_weight` further extends the model with the window's
  /// write-side I/O (EstimateWriteIo): both the numerator (cost actually
  /// paid) and the denominator (cost a cache cannot avoid) gain
  /// weight * write_io, so h stays in [0, 1] and degrades as flush /
  /// compaction traffic or write stalls grow. The default 0 reduces to the
  /// read-only h_estimate.
  static double EstimateHitRate(const WindowStats& w,
                                const LsmShapeParams& shape,
                                double flash_read_cost = 0.0,
                                double write_cost_weight = 0.0) {
    double io_estimate = EstimateIo(w, shape);
    double write_io =
        write_cost_weight > 0 ? write_cost_weight * EstimateWriteIo(w) : 0.0;
    if (io_estimate + write_io <= 0) return 0.0;
    double effective_misses =
        static_cast<double>(w.block_reads) +
        flash_read_cost * static_cast<double>(w.secondary_hits) + write_io;
    double h = 1.0 - effective_misses / (io_estimate + write_io);
    if (h < 0) h = 0;
    if (h > 1) h = 1;
    return h;
  }
};

}  // namespace adcache::core

#endif  // ADCACHE_CORE_IO_ESTIMATOR_H_
