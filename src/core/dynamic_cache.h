#ifndef ADCACHE_CORE_DYNAMIC_CACHE_H_
#define ADCACHE_CORE_DYNAMIC_CACHE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cache/cache.h"
#include "cache/range_cache.h"
#include "cache/secondary_cache.h"
#include "core/memory_budget.h"

namespace adcache::core {

/// Component-level knobs that do not move at runtime (the boundary does).
struct DynamicCacheOptions {
  /// Block-cache implementation (lock-free CLOCK or mutex-per-shard LRU).
  /// The CLOCK table is sized for the *whole* budget so SetRangeRatio can
  /// later hand the block cache any share without resizing.
  BlockCacheImpl block_cache_impl = BlockCacheImpl::kLRU;
  /// Sorted lower bounds splitting the range cache into independent
  /// key-range shards (empty = one shard, the paper's single skip list).
  /// Shard 0 uses the caller-supplied policy; extra shards get LRU.
  std::vector<std::string> range_shard_boundaries;
  /// The whole unified memory wall the owned MemoryBudget registry
  /// enforces. 0 (legacy) makes the wall exactly the block+range budget;
  /// a larger value leaves headroom for the memtable/bloom/secondary-index
  /// consumers AdCacheStore registers after the DB opens.
  size_t total_memory_budget = 0;
};

/// The Dynamic Cache Component (paper §3.3): one memory budget shared by a
/// physical block cache and a logical range cache, split by a movable
/// boundary. The component owns the system-wide MemoryBudget registry; the
/// block and range caches are its first two DRAM consumers, and every
/// boundary move — whether through the legacy SetRangeRatio shim or a full
/// controller DRAM plan — flows through the registry.
class DynamicCacheComponent {
 public:
  /// `policy` seeds the range cache's eviction policy (LRU for AdCache).
  DynamicCacheComponent(size_t total_budget_bytes, double initial_range_ratio,
                        std::unique_ptr<EvictionPolicy> policy,
                        DynamicCacheOptions options = {});

  DynamicCacheComponent(const DynamicCacheComponent&) = delete;
  DynamicCacheComponent& operator=(const DynamicCacheComponent&) = delete;

  /// The registry all budget mutations flow through. Consumers beyond
  /// block/range (memtable, bloom, secondary DRAM index) are registered by
  /// the store once the DB is open.
  MemoryBudget* memory_budget() { return budget_.get(); }
  const MemoryBudget* memory_budget() const { return budget_.get(); }

  /// Legacy shim: moves the boundary by submitting a two-consumer DRAM plan
  /// to the registry — range cache gets `ratio` of the block+range share,
  /// block cache the rest. Clamped to [0, 1]. With leases installed
  /// (SetRangeLeases) the range share is apportioned across the range-cache
  /// shards by lease weight instead of evenly.
  void SetRangeRatio(double ratio);
  double range_ratio() const {
    return range_ratio_.load(std::memory_order_relaxed);
  }
  /// Recomputes the cached ratio from the registry's current block/range
  /// capacities (after a controller-submitted DRAM plan resized both).
  void SyncRangeRatioFromCapacities();

  /// Installs per-shard budget lease weights for the range cache and
  /// immediately reapplies the current boundary so the new split takes
  /// effect. `weights` are normalised internally; the size must equal
  /// range_cache()->num_shards() (anything else — including empty, which
  /// restores the even split — clears the leases). Thread-safe.
  void SetRangeLeases(std::vector<double> weights);
  std::vector<double> range_leases() const;

  /// Block cache to hand to lsm::Options::block_cache.
  const std::shared_ptr<Cache>& block_cache() const { return block_cache_; }
  ShardedRangeCache* range_cache() { return range_cache_.get(); }
  const ShardedRangeCache* range_cache() const { return range_cache_.get(); }

  /// The block+range share of the wall. In legacy mode this is the
  /// construction-time budget forever; under a unified wall it moves as the
  /// controller re-carves cache share against memtable/bloom.
  size_t total_budget() const {
    return block_cache_->GetCapacity() + range_cache_->GetCapacity();
  }
  size_t BlockUsage() const { return block_cache_->GetUsage(); }
  size_t RangeUsage() const { return range_cache_->GetUsage(); }

  /// Attaches the flash-backed secondary tier under RL control, registering
  /// it with the registry as the (sole) flash-domain consumer. The tier's
  /// *flash* budget is separate from the DRAM wall — the agent scales the
  /// tier's capacity within [kMinSecondaryRatio, 1] of `flash_budget_bytes`
  /// via SetSecondaryRatio. Call once, before traffic.
  void SetSecondaryCache(std::shared_ptr<SecondaryCache> secondary,
                         size_t flash_budget_bytes);
  SecondaryCache* secondary_cache() const { return secondary_cache_.get(); }
  size_t secondary_budget() const { return secondary_budget_; }

  /// Legacy shim: retargets the secondary tier's capacity to `ratio` of its
  /// flash budget (clamped to [kMinSecondaryRatio, 1] so the tier never
  /// collapses to zero and GC always has room to operate) through the
  /// registry's flash-domain entry. No-op without a tier.
  void SetSecondaryRatio(double ratio);
  double secondary_ratio() const {
    return secondary_ratio_.load(std::memory_order_relaxed);
  }
  size_t SecondaryUsage() const {
    return secondary_cache_ != nullptr ? secondary_cache_->GetUsage() : 0;
  }

  static constexpr double kMinSecondaryRatio = 0.1;

 private:
  /// Splits `range_budget` over the range-cache shards per the installed
  /// leases (even when none). Cold path (window boundaries only); runs as
  /// the range consumer's SetCapacity body under the registry mutex.
  void ApplyRangeBudget(size_t range_budget);

  std::unique_ptr<MemoryBudget> budget_;
  std::atomic<double> range_ratio_;
  std::shared_ptr<Cache> block_cache_;
  std::unique_ptr<ShardedRangeCache> range_cache_;
  std::shared_ptr<SecondaryCache> secondary_cache_;
  size_t secondary_budget_ = 0;
  std::atomic<double> secondary_ratio_{1.0};
  mutable std::mutex lease_mu_;
  std::vector<double> lease_weights_;  // guarded by lease_mu_
};

}  // namespace adcache::core

#endif  // ADCACHE_CORE_DYNAMIC_CACHE_H_
