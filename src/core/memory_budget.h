#ifndef ADCACHE_CORE_MEMORY_BUDGET_H_
#define ADCACHE_CORE_MEMORY_BUDGET_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace adcache::core {

/// Canonical consumer names registered by the AdCache stack. Every budget
/// mutation anywhere in the system targets one of these registry entries.
inline constexpr const char* kBudgetBlockCache = "block_cache";
inline constexpr const char* kBudgetRangeCache = "range_cache";
inline constexpr const char* kBudgetMemtable = "memtable";
inline constexpr const char* kBudgetBloom = "bloom";
inline constexpr const char* kBudgetSecondaryDramIndex = "secondary_dram_index";
/// Flash domain (not under the DRAM sum invariant): the slab tier's bytes
/// on flash, still resized through the same registry interface.
inline constexpr const char* kBudgetSecondaryFlash = "secondary_flash";

/// One named, resizable memory consumer behind the MemoryBudget registry.
/// Implementations translate SetCapacity into whatever their subsystem
/// understands (cache eviction, memtable rotation, bloom bits/key).
///
/// Threading: capacity()/usage() may be called concurrently from any
/// thread; SetCapacity is only invoked by the registry, which serialises
/// all mutations under its own mutex.
class MemoryConsumer {
 public:
  virtual ~MemoryConsumer() = default;

  virtual size_t capacity() const = 0;
  virtual size_t usage() const = 0;
  virtual void SetCapacity(size_t bytes) = 0;
  /// Floor the registry never shrinks this consumer below (e.g. one
  /// minimal memtable per shard).
  virtual size_t min_capacity() const { return 0; }
};

/// Lambda-backed consumer so call sites can register existing subsystems
/// without defining a class each. Any of the functions may be null: null
/// usage reads 0, null set is a no-op, null min is 0.
class FunctionMemoryConsumer : public MemoryConsumer {
 public:
  FunctionMemoryConsumer(std::function<size_t()> capacity,
                         std::function<size_t()> usage,
                         std::function<void(size_t)> set_capacity,
                         size_t min_capacity = 0)
      : capacity_(std::move(capacity)),
        usage_(std::move(usage)),
        set_capacity_(std::move(set_capacity)),
        min_capacity_(min_capacity) {}

  size_t capacity() const override {
    return capacity_ != nullptr ? capacity_() : 0;
  }
  size_t usage() const override { return usage_ != nullptr ? usage_() : 0; }
  void SetCapacity(size_t bytes) override {
    if (set_capacity_ != nullptr) set_capacity_(bytes);
  }
  size_t min_capacity() const override { return min_capacity_; }

 private:
  std::function<size_t()> capacity_;
  std::function<size_t()> usage_;
  std::function<void(size_t)> set_capacity_;
  size_t min_capacity_;
};

/// The unified memory wall (paper §3.3 generalised): a single registry of
/// named, resizable memory consumers. All budget mutations in the system
/// flow through here — the RL controller retargets whole DRAM plans, legacy
/// entry points (SetRangeRatio, SetSecondaryRatio) are thin shims over it.
///
/// Domains:
///  - kDram consumers share the wall: the registry keeps their capacities
///    summing to total() on every ApplyDramPlan.
///  - kFlash consumers are resized individually (flash bytes are not DRAM).
///  - kTracked consumers appear in snapshots but are exempt from the sum
///    invariant (legacy mode: the memtable exists but is not on the wall).
///
/// Threading: Register before traffic (not synchronised against concurrent
/// mutations); ApplyDramPlan/SetConsumerCapacity serialise under one mutex,
/// so concurrent resizers see consistent shrink-before-grow ordering;
/// Snapshot/DramCapacitySum take the same mutex.
class MemoryBudget {
 public:
  enum class Domain { kDram, kFlash, kTracked };

  struct Entry {
    std::string name;
    Domain domain = Domain::kDram;
    uint64_t capacity_bytes = 0;
    uint64_t usage_bytes = 0;
  };

  explicit MemoryBudget(size_t total_bytes) : total_(total_bytes) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// The DRAM wall every kDram consumer lives under.
  size_t total() const { return total_; }

  /// Registers `consumer` under `name`. Re-registering a name replaces the
  /// entry (e.g. legacy->unified promotion re-registers with a new domain).
  void Register(const std::string& name, std::shared_ptr<MemoryConsumer> consumer,
                Domain domain = Domain::kDram);
  bool IsRegistered(const std::string& name) const;
  /// Moves an existing consumer to `domain`, keeping its capacity.
  void SetDomain(const std::string& name, Domain domain);

  /// Current capacity/usage of one named consumer (0 when unknown).
  size_t CapacityOf(const std::string& name) const;
  size_t UsageOf(const std::string& name) const;

  /// Retargets the named DRAM consumers in one transaction. The targets are
  /// normalised so that, together with the untargeted DRAM consumers'
  /// current capacities, the DRAM domain sums exactly to total(): targets
  /// are scaled proportionally into the available share, each consumer's
  /// min_capacity() is respected, and the LAST named consumer absorbs the
  /// rounding remainder. Shrinks are applied before grows so transient
  /// total usage never exceeds the wall.
  void ApplyDramPlan(
      const std::vector<std::pair<std::string, size_t>>& targets);

  /// Resizes one consumer directly (flash/tracked consumers, or a DRAM
  /// consumer whose counterpart shim rebalances the rest itself). DRAM
  /// callers should prefer ApplyDramPlan.
  void SetConsumerCapacity(const std::string& name, size_t bytes);

  /// Sum of the DRAM consumers' current capacities (== total() after any
  /// ApplyDramPlan; may differ transiently before the first plan).
  size_t DramCapacitySum() const;

  /// Named capacity/usage vector in registration order, DRAM first.
  std::vector<Entry> Snapshot() const;

 private:
  struct Slot {
    std::string name;
    std::shared_ptr<MemoryConsumer> consumer;
    Domain domain;
  };

  /// Requires mu_. Index into slots_ or -1.
  int FindLocked(const std::string& name) const;

  size_t total_;
  mutable std::mutex mu_;
  std::vector<Slot> slots_;  // guarded by mu_
};

/// One documented home for every byte-budget knob, collapsing the formerly
/// scattered AdCacheOptions::cache_budget / secondary_cache_budget and
/// lsm::Options::memtable_size (the engine's write_buffer_size). With
/// total_memory_budget == 0 (the default) the store runs in LEGACY mode:
/// the wall covers only the block+range caches and the other consumers are
/// tracked but frozen — byte-compatible with earlier releases. A nonzero
/// total switches on the UNIFIED wall: one budget covering block cache,
/// range cache, memtable(s), bloom filters and the secondary tier's DRAM
/// index, carved up and re-carved online by the RL controller.
struct MemoryBudgetOptions {
  /// The whole DRAM wall in bytes; 0 keeps legacy per-knob budgets.
  size_t total_memory_budget = 0;
  /// Initial write-buffer target; 0 adopts lsm::Options::memtable_size.
  size_t write_buffer_size = 0;
  /// Initial bloom bits/key; < 0 adopts lsm::Options::bloom_bits_per_key.
  int bloom_bits_per_key = -1;
  /// Flash budget for the secondary tier (the deprecated
  /// AdCacheOptions::secondary_cache_budget forwards here).
  size_t secondary_cache_budget = 0;
  /// Unified mode: let the controller move the memtable / bloom budgets
  /// (actions 6 and 7). Off freezes them at their initial carve.
  bool adaptive_write_buffer = true;
  bool adaptive_bloom = true;
  /// Bounds of the memtable's share of the wall (action 6 maps into
  /// [min, max]); bloom's share maps into [0, max_bloom_fraction].
  double min_memtable_fraction = 0.05;
  double max_memtable_fraction = 0.5;
  /// Bloom's ceiling is deliberately tight: filter bytes are a few bits per
  /// live entry, so a sliver of the wall already buys the 32-bits/key clamp
  /// and anything beyond sits as stranded capacity the caches can't use.
  double max_bloom_fraction = 0.08;

  /// Applies the ADCACHE_MEMORY_BUDGET env var (byte count, k/m/g
  /// suffixes; util::OptionsFromEnv::Bytes grammar) on top of `defaults`
  /// (default-constructed options for the argument-free overload).
  static MemoryBudgetOptions FromEnv(MemoryBudgetOptions defaults);
  static MemoryBudgetOptions FromEnv();
};

}  // namespace adcache::core

#endif  // ADCACHE_CORE_MEMORY_BUDGET_H_
