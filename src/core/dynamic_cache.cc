#include "core/dynamic_cache.h"

#include <algorithm>
#include <utility>

namespace adcache::core {

DynamicCacheComponent::DynamicCacheComponent(
    size_t total_budget_bytes, double initial_range_ratio,
    std::unique_ptr<EvictionPolicy> policy, DynamicCacheOptions options)
    : range_ratio_(std::clamp(initial_range_ratio, 0.0, 1.0)) {
  double r = range_ratio_.load();
  auto range_budget = static_cast<size_t>(r * total_budget_bytes);
  // The table hint is the whole budget: the boundary can later give the
  // block cache up to 100% of it, and the CLOCK slot table never resizes.
  // Under a unified wall the hint covers the whole wall, since cache share
  // can grow into freed memtable/bloom budget.
  size_t table_hint =
      std::max(options.total_memory_budget, total_budget_bytes);
  block_cache_ =
      NewBlockCache(options.block_cache_impl,
                    total_budget_bytes - range_budget,
                    /*table_capacity_hint=*/table_hint);
  std::vector<std::unique_ptr<EvictionPolicy>> policies;
  policies.push_back(std::move(policy));
  for (size_t i = 0; i < options.range_shard_boundaries.size(); i++) {
    policies.push_back(NewLruPolicy());
  }
  range_cache_ = std::make_unique<ShardedRangeCache>(
      range_budget, std::move(options.range_shard_boundaries),
      std::move(policies));

  budget_ = std::make_unique<MemoryBudget>(
      std::max(options.total_memory_budget, total_budget_bytes));
  budget_->Register(
      kBudgetRangeCache,
      std::make_shared<FunctionMemoryConsumer>(
          [this] { return range_cache_->GetCapacity(); },
          [this] { return range_cache_->GetUsage(); },
          [this](size_t bytes) { ApplyRangeBudget(bytes); }));
  budget_->Register(
      kBudgetBlockCache,
      std::make_shared<FunctionMemoryConsumer>(
          [this] { return block_cache_->GetCapacity(); },
          [this] { return block_cache_->GetUsage(); },
          [this](size_t bytes) { block_cache_->SetCapacity(bytes); }));
}

void DynamicCacheComponent::SetRangeRatio(double ratio) {
  ratio = std::clamp(ratio, 0.0, 1.0);
  range_ratio_.store(ratio, std::memory_order_relaxed);
  // The boundary splits the block+range share of the wall (== the whole
  // wall in legacy mode). Submitting both targets as one plan keeps the
  // registry invariant intact and preserves shrink-before-grow.
  size_t share = total_budget();
  auto range_budget = static_cast<size_t>(ratio * static_cast<double>(share));
  budget_->ApplyDramPlan({{kBudgetRangeCache, range_budget},
                          {kBudgetBlockCache, share - range_budget}});
}

void DynamicCacheComponent::SyncRangeRatioFromCapacities() {
  size_t range = range_cache_->GetCapacity();
  size_t share = range + block_cache_->GetCapacity();
  if (share == 0) return;
  range_ratio_.store(
      static_cast<double>(range) / static_cast<double>(share),
      std::memory_order_relaxed);
}

void DynamicCacheComponent::ApplyRangeBudget(size_t range_budget) {
  std::vector<double> weights = range_leases();
  size_t num_shards = range_cache_->num_shards();
  if (weights.size() == num_shards && num_shards > 1) {
    double sum = 0;
    for (double w : weights) sum += std::max(w, 0.0);
    if (sum > 0) {
      std::vector<size_t> capacities(num_shards);
      for (size_t i = 0; i < num_shards; i++) {
        capacities[i] = static_cast<size_t>(
            static_cast<double>(range_budget) * std::max(weights[i], 0.0) /
            sum);
      }
      range_cache_->SetShardCapacities(capacities);
      return;
    }
  }
  range_cache_->SetCapacity(range_budget);
}

void DynamicCacheComponent::SetRangeLeases(std::vector<double> weights) {
  {
    std::lock_guard<std::mutex> l(lease_mu_);
    if (weights.size() == range_cache_->num_shards()) {
      lease_weights_ = std::move(weights);
    } else {
      lease_weights_.clear();
    }
  }
  // Reapply the current boundary so the new lease split takes effect now,
  // not at the next ratio move.
  SetRangeRatio(range_ratio());
}

std::vector<double> DynamicCacheComponent::range_leases() const {
  std::lock_guard<std::mutex> l(lease_mu_);
  return lease_weights_;
}

void DynamicCacheComponent::SetSecondaryCache(
    std::shared_ptr<SecondaryCache> secondary, size_t flash_budget_bytes) {
  secondary_cache_ = std::move(secondary);
  secondary_budget_ = flash_budget_bytes;
  if (secondary_cache_ != nullptr && secondary_budget_ == 0) {
    secondary_budget_ = secondary_cache_->GetCapacity();
  }
  if (secondary_cache_ != nullptr && secondary_budget_ > 0) {
    double r = static_cast<double>(secondary_cache_->GetCapacity()) /
               static_cast<double>(secondary_budget_);
    secondary_ratio_.store(std::clamp(r, kMinSecondaryRatio, 1.0),
                           std::memory_order_relaxed);
  }
  if (secondary_cache_ != nullptr) {
    budget_->Register(
        kBudgetSecondaryFlash,
        std::make_shared<FunctionMemoryConsumer>(
            [this] { return secondary_cache_->GetCapacity(); },
            [this] { return secondary_cache_->GetUsage(); },
            [this](size_t bytes) { secondary_cache_->SetCapacity(bytes); }),
        MemoryBudget::Domain::kFlash);
  }
}

void DynamicCacheComponent::SetSecondaryRatio(double ratio) {
  if (secondary_cache_ == nullptr || secondary_budget_ == 0) return;
  ratio = std::clamp(ratio, kMinSecondaryRatio, 1.0);
  secondary_ratio_.store(ratio, std::memory_order_relaxed);
  budget_->SetConsumerCapacity(
      kBudgetSecondaryFlash,
      static_cast<size_t>(ratio * static_cast<double>(secondary_budget_)));
}

}  // namespace adcache::core
