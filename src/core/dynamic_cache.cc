#include "core/dynamic_cache.h"

#include <algorithm>
#include <utility>

namespace adcache::core {

DynamicCacheComponent::DynamicCacheComponent(
    size_t total_budget_bytes, double initial_range_ratio,
    std::unique_ptr<EvictionPolicy> policy, DynamicCacheOptions options)
    : total_budget_(total_budget_bytes),
      range_ratio_(std::clamp(initial_range_ratio, 0.0, 1.0)) {
  double r = range_ratio_.load();
  // The table hint is the whole budget: the boundary can later give the
  // block cache up to 100% of it, and the CLOCK slot table never resizes.
  block_cache_ = NewBlockCache(
      options.block_cache_impl,
      static_cast<size_t>((1.0 - r) * total_budget_bytes),
      /*table_capacity_hint=*/total_budget_bytes);
  std::vector<std::unique_ptr<EvictionPolicy>> policies;
  policies.push_back(std::move(policy));
  for (size_t i = 0; i < options.range_shard_boundaries.size(); i++) {
    policies.push_back(NewLruPolicy());
  }
  range_cache_ = std::make_unique<ShardedRangeCache>(
      static_cast<size_t>(r * total_budget_bytes),
      std::move(options.range_shard_boundaries), std::move(policies));
}

void DynamicCacheComponent::SetRangeRatio(double ratio) {
  ratio = std::clamp(ratio, 0.0, 1.0);
  range_ratio_.store(ratio, std::memory_order_relaxed);
  auto range_budget = static_cast<size_t>(ratio * total_budget_);
  auto block_budget = total_budget_ - range_budget;
  // Shrink first, then grow, so transient total usage never exceeds budget.
  if (range_budget < range_cache_->GetCapacity()) {
    ApplyRangeBudget(range_budget);
    block_cache_->SetCapacity(block_budget);
  } else {
    block_cache_->SetCapacity(block_budget);
    ApplyRangeBudget(range_budget);
  }
}

void DynamicCacheComponent::ApplyRangeBudget(size_t range_budget) {
  std::vector<double> weights = range_leases();
  size_t num_shards = range_cache_->num_shards();
  if (weights.size() == num_shards && num_shards > 1) {
    double sum = 0;
    for (double w : weights) sum += std::max(w, 0.0);
    if (sum > 0) {
      std::vector<size_t> capacities(num_shards);
      for (size_t i = 0; i < num_shards; i++) {
        capacities[i] = static_cast<size_t>(
            static_cast<double>(range_budget) * std::max(weights[i], 0.0) /
            sum);
      }
      range_cache_->SetShardCapacities(capacities);
      return;
    }
  }
  range_cache_->SetCapacity(range_budget);
}

void DynamicCacheComponent::SetRangeLeases(std::vector<double> weights) {
  {
    std::lock_guard<std::mutex> l(lease_mu_);
    if (weights.size() == range_cache_->num_shards()) {
      lease_weights_ = std::move(weights);
    } else {
      lease_weights_.clear();
    }
  }
  // Reapply the current boundary so the new lease split takes effect now,
  // not at the next ratio move.
  SetRangeRatio(range_ratio());
}

std::vector<double> DynamicCacheComponent::range_leases() const {
  std::lock_guard<std::mutex> l(lease_mu_);
  return lease_weights_;
}

void DynamicCacheComponent::SetSecondaryCache(
    std::shared_ptr<SecondaryCache> secondary, size_t flash_budget_bytes) {
  secondary_cache_ = std::move(secondary);
  secondary_budget_ = flash_budget_bytes;
  if (secondary_cache_ != nullptr && secondary_budget_ == 0) {
    secondary_budget_ = secondary_cache_->GetCapacity();
  }
  if (secondary_cache_ != nullptr && secondary_budget_ > 0) {
    double r = static_cast<double>(secondary_cache_->GetCapacity()) /
               static_cast<double>(secondary_budget_);
    secondary_ratio_.store(std::clamp(r, kMinSecondaryRatio, 1.0),
                           std::memory_order_relaxed);
  }
}

void DynamicCacheComponent::SetSecondaryRatio(double ratio) {
  if (secondary_cache_ == nullptr || secondary_budget_ == 0) return;
  ratio = std::clamp(ratio, kMinSecondaryRatio, 1.0);
  secondary_ratio_.store(ratio, std::memory_order_relaxed);
  secondary_cache_->SetCapacity(
      static_cast<size_t>(ratio * static_cast<double>(secondary_budget_)));
}

}  // namespace adcache::core
