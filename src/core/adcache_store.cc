#include "core/adcache_store.h"

#include <algorithm>

namespace adcache::core {

// ---------------------------------------------------------------------------
// Shared helper
// ---------------------------------------------------------------------------

Status ScanFromDb(lsm::DB* db, const lsm::ReadOptions& read_options,
                  const Slice& start, size_t n,
                  std::vector<KvPair>* results) {
  results->clear();
  std::unique_ptr<lsm::Iterator> iter(db->NewIterator(read_options));
  for (iter->Seek(start); iter->Valid() && results->size() < n;
       iter->Next()) {
    results->push_back(
        KvPair{iter->key().ToString(), iter->value().ToString()});
  }
  return iter->status();
}

// ---------------------------------------------------------------------------
// AdCacheStore
// ---------------------------------------------------------------------------

AdCacheStore::AdCacheStore(const AdCacheOptions& options)
    : options_(options),
      point_admission_(options.point_admission),
      scan_admission_(options.scan_admission_max_a),
      next_window_at_(options.controller.window_size) {
  cache_ = std::make_unique<DynamicCacheComponent>(
      options.cache_budget, options.initial_range_ratio, NewLruPolicy());
  controller_ = std::make_unique<PolicyController>(
      options.controller, cache_.get(), &point_admission_, &scan_admission_);
}

Status AdCacheStore::Open(const AdCacheOptions& options,
                          const lsm::Options& lsm_options,
                          const std::string& dbname,
                          std::unique_ptr<AdCacheStore>* store) {
  auto s = std::unique_ptr<AdCacheStore>(new AdCacheStore(options));
  if (!options.pretrained_model.empty()) {
    Status st = s->controller_->LoadModel(Slice(options.pretrained_model));
    if (!st.ok()) return st;
  } else if (options.controller.pretrain_heuristic) {
    s->controller_->PretrainHeuristic(options.controller.pretrain_steps,
                                      options.controller.agent.seed + 77);
  }
  lsm::Options db_options = lsm_options;
  db_options.block_cache = s->cache_->block_cache();
  Status st = lsm::DB::Open(db_options, dbname, &s->db_);
  if (!st.ok()) return st;
  *store = std::move(s);
  return Status::OK();
}

LsmShapeParams AdCacheStore::CurrentShape() const {
  lsm::DB::LsmShape raw = db_->GetLsmShape();
  LsmShapeParams shape;
  shape.num_levels = std::max(1, raw.num_levels_nonempty);
  shape.l0_max_runs = db_->options().l0_stop_trigger;
  shape.entries_per_block =
      raw.entries_per_block > 0 ? raw.entries_per_block : 4.0;
  shape.bloom_fpr =
      IoEstimator::BloomFprForBitsPerKey(db_->options().bloom_bits_per_key);
  return shape;
}

void AdCacheStore::MaybeEndWindow() {
  uint64_t total = stats_.TotalOps();
  uint64_t target = next_window_at_.load(std::memory_order_relaxed);
  if (total < target) return;
  std::lock_guard<std::mutex> l(window_mu_);
  target = next_window_at_.load(std::memory_order_relaxed);
  if (stats_.TotalOps() < target) return;  // another thread handled it
  next_window_at_.store(target + options_.controller.window_size,
                        std::memory_order_relaxed);
  WindowStats window = stats_.Harvest(
      db_->env()->io_stats()->block_reads.load(), SampleMaintenance());
  controller_->OnWindowEnd(window, CurrentShape());
}

void AdCacheStore::ForceWindowEnd() {
  std::lock_guard<std::mutex> l(window_mu_);
  WindowStats window = stats_.Harvest(
      db_->env()->io_stats()->block_reads.load(), SampleMaintenance());
  controller_->OnWindowEnd(window, CurrentShape());
}

StatsCollector::MaintenanceSample AdCacheStore::SampleMaintenance() const {
  lsm::DB::MaintenanceStats raw = db_->GetMaintenanceStats();
  StatsCollector::MaintenanceSample sample;
  sample.compactions = raw.compactions;
  sample.flushes = raw.flushes;
  sample.stall_micros = raw.stall_micros;
  sample.write_groups = raw.write_groups;
  return sample;
}

Status AdCacheStore::Put(const Slice& key, const Slice& value) {
  Status s = db_->Put(lsm::WriteOptions(), key, value);
  if (s.ok()) cache_->range_cache()->InvalidateWrite(key, value);
  stats_.RecordWrite();
  MaybeEndWindow();
  return s;
}

Status AdCacheStore::Delete(const Slice& key) {
  Status s = db_->Delete(lsm::WriteOptions(), key);
  if (s.ok()) cache_->range_cache()->InvalidateDelete(key);
  stats_.RecordWrite();
  MaybeEndWindow();
  return s;
}

Status AdCacheStore::Get(const Slice& key, std::string* value) {
  // Query handling path (paper Fig. 5): range cache -> memtable -> block
  // cache -> disk; the last three live inside lsm::DB::Get.
  if (cache_->range_cache()->Get(key, value)) {
    stats_.RecordPointLookup(/*range_cache_hit=*/true);
    MaybeEndWindow();
    return Status::OK();
  }
  // Read through the LSM with a pinned result (block-cache / memtable hits
  // avoid an intermediate copy); the single copy below serves both the
  // caller and the range-cache fill.
  PinnableSlice pinned;
  Status s = db_->Get(lsm::ReadOptions(), key, &pinned);
  if (s.ok()) {
    value->assign(pinned.data(), pinned.size());
    pinned.Reset();  // release the block/memtable pin before cache fills
    // Cache fill path: frequency-gated admission into the range cache.
    // Admission control exists to prevent evictions of valuable entries;
    // while the range cache still has headroom there is nothing to evict,
    // so admission is free (the sketch is still updated for later).
    bool admit = true;
    if (options_.controller.enable_admission) {
      bool frequent = point_admission_.RecordMissAndCheckAdmit(key);
      bool has_headroom =
          cache_->RangeUsage() + key.size() + value->size() + 128 <=
          cache_->range_cache()->GetCapacity();
      admit = frequent || has_headroom;
    }
    if (admit) {
      cache_->range_cache()->PutPoint(key, *value);
      stats_.RecordPointAdmit();
    }
  }
  stats_.RecordPointLookup(/*range_cache_hit=*/false);
  MaybeEndWindow();
  return s;
}

Status AdCacheStore::Scan(const Slice& start, size_t n,
                          std::vector<KvPair>* results) {
  if (cache_->range_cache()->GetScan(start, n, results)) {
    stats_.RecordScan(results->size(), /*range_cache_hit=*/true);
    MaybeEndWindow();
    return Status::OK();
  }
  // Partial admission also throttles block-cache fill for long scans
  // (paper §3.4): a scan past the threshold may only admit a commensurate
  // number of blocks, protecting hot blocks from one-off scan traffic.
  lsm::ReadOptions read_options;
  uint32_t block_budget = 0;
  if (options_.controller.enable_admission &&
      static_cast<double>(n) > scan_admission_.a()) {
    double epb = std::max(1.0, CurrentShape().entries_per_block);
    block_budget = static_cast<uint32_t>(
        static_cast<double>(scan_admission_.AdmitCount(n)) / epb) + 2;
    read_options.fill_block_budget = &block_budget;
  }
  Status s = ScanFromDb(db_.get(), read_options, start, n, results);
  if (s.ok() && !results->empty()) {
    uint64_t admit =
        options_.controller.enable_admission
            ? scan_admission_.AdmitCount(results->size())
            : results->size();
    if (admit > 0) {
      cache_->range_cache()->PutScan(start, *results, admit);
      stats_.RecordScanAdmit(admit);
    }
  }
  stats_.RecordScan(results->size(), /*range_cache_hit=*/false);
  MaybeEndWindow();
  return s;
}

CacheStatsSnapshot AdCacheStore::GetCacheStats() const {
  CacheStatsSnapshot snap;
  snap.block_reads = db_->env()->io_stats()->block_reads.load();
  snap.range_hits = cache_->range_cache()->hits();
  snap.range_misses = cache_->range_cache()->misses();
  snap.block_cache_hits = cache_->block_cache()->hits();
  snap.block_cache_misses = cache_->block_cache()->misses();
  snap.cache_usage = cache_->RangeUsage() + cache_->BlockUsage();
  snap.cache_capacity = cache_->total_budget();
  snap.range_ratio = cache_->range_ratio();
  snap.point_threshold = point_admission_.threshold();
  snap.scan_a = scan_admission_.a();
  snap.scan_b = scan_admission_.b();
  snap.smoothed_hit_rate = controller_->smoothed_hit_rate();
  return snap;
}

}  // namespace adcache::core
