#include "core/adcache_store.h"

#include <algorithm>
#include <cstdio>
#include <mutex>

#include "util/perf_context.h"

namespace adcache::core {

// ---------------------------------------------------------------------------
// Shared helper
// ---------------------------------------------------------------------------

Status ScanThroughDb(lsm::ShardedDB* db, const lsm::ReadOptions& read_options,
                     const Slice& start, size_t n,
                     std::vector<KvPair>* results) {
  results->clear();
  std::unique_ptr<lsm::Iterator> iter(db->NewIterator(read_options));
  for (iter->Seek(start); iter->Valid() && results->size() < n;
       iter->Next()) {
    results->push_back(
        KvPair{iter->key().ToString(), iter->value().ToString()});
  }
  return iter->status();
}

// ---------------------------------------------------------------------------
// AdCacheStore
// ---------------------------------------------------------------------------

AdCacheStore::AdCacheStore(const AdCacheOptions& options,
                           BlockCacheImpl block_cache_impl)
    : options_(options),
      point_admission_(options.point_admission),
      scan_admission_(options.scan_admission_max_a),
      next_window_at_(options.controller.window_size) {
  unified_ = options.memory.total_memory_budget > 0;
  DynamicCacheOptions cache_options;
  cache_options.block_cache_impl = block_cache_impl;
  cache_options.range_shard_boundaries = options.range_shard_boundaries;
  cache_options.total_memory_budget = options.memory.total_memory_budget;
  cache_ = std::make_unique<DynamicCacheComponent>(
      options.cache_budget, options.initial_range_ratio, NewLruPolicy(),
      std::move(cache_options));
  controller_ = std::make_unique<PolicyController>(
      options.controller, cache_.get(), &point_admission_, &scan_admission_);
  stats_->SetStatsLevel(options.stats_level);
  stats_bridge_ = std::make_shared<StatisticsEventListener>(stats_.get());
  controller_->SetStatistics(stats_.get());
  for (const auto& listener : options_.listeners) {
    controller_->AddListener(listener);
  }
  // Seed the control-state gauges so snapshots read sane values before the
  // first tuning window closes.
  stats_->SetGauge(kGaugeRangeRatio, cache_->range_ratio());
  stats_->SetGauge(kGaugePointThreshold, point_admission_.threshold());
  stats_->SetGauge(kGaugeScanA, scan_admission_.a());
  stats_->SetGauge(kGaugeScanB, scan_admission_.b());
  stats_->SetGauge(kGaugeSmoothedHitRate, 0.0);
}

Status AdCacheStore::Open(const AdCacheOptions& options,
                          const lsm::Options& lsm_options,
                          const std::string& dbname,
                          std::unique_ptr<AdCacheStore>* store) {
  AdCacheOptions store_options = options;
  store_options.memory = MemoryBudgetOptions::FromEnv(store_options.memory);
  // Deprecated alias: a flash budget named only through the old knob
  // forwards into the unified options (one-time warning).
  if (store_options.secondary_cache_budget > 0 &&
      store_options.memory.secondary_cache_budget == 0) {
    static std::once_flag deprecation_warned;
    std::call_once(deprecation_warned, [] {
      std::fprintf(stderr,
                   "adcache: AdCacheOptions::secondary_cache_budget is "
                   "deprecated; set "
                   "AdCacheOptions::memory.secondary_cache_budget\n");
    });
    store_options.memory.secondary_cache_budget =
        store_options.secondary_cache_budget;
  }
  const size_t secondary_budget = store_options.memory.secondary_cache_budget;
  // Align the range cache's shards with the DB's key-range shards when the
  // engine is sharded and the caller didn't pick boundaries: per-shard
  // budget leases then physically repartition the range cache per DB shard,
  // and per-shard hit/miss tickers line up with shard traffic.
  if (store_options.range_shard_boundaries.empty()) {
    store_options.range_shard_boundaries =
        lsm::ShardedDB::ResolveBoundaries(lsm_options);
  }
  // Unified wall: carve the total into an initial split — write buffers
  // sized from the engine option (clamped to the memtable-fraction bounds),
  // ~5% for bloom filters, a small slice for the secondary tier's DRAM
  // index when a flash tier is budgeted — and hand the caches the rest.
  // The controller re-carves all of it every window from here on.
  const MemoryBudgetOptions& memory = store_options.memory;
  const size_t total_wall = memory.total_memory_budget;
  const size_t num_shards =
      lsm::ShardedDB::ResolveBoundaries(lsm_options).size() + 1;
  size_t write_buffer_total = 0;
  if (total_wall > 0) {
    write_buffer_total = memory.write_buffer_size > 0
                             ? memory.write_buffer_size
                             : lsm_options.memtable_size * num_shards;
    write_buffer_total = std::clamp(
        write_buffer_total,
        static_cast<size_t>(memory.min_memtable_fraction *
                            static_cast<double>(total_wall)),
        static_cast<size_t>(memory.max_memtable_fraction *
                            static_cast<double>(total_wall)));
    size_t bloom_bytes =
        std::min(total_wall / 20,
                 static_cast<size_t>(memory.max_bloom_fraction *
                                     static_cast<double>(total_wall)));
    size_t index_bytes =
        secondary_budget > 0
            ? std::min(secondary_budget / 40, total_wall / 20)
            : 0;
    size_t fixed = write_buffer_total + bloom_bytes + index_bytes;
    store_options.cache_budget =
        total_wall > fixed ? total_wall - fixed : total_wall / 2;
    store_options.controller.enable_memwall_control =
        memory.adaptive_write_buffer || memory.adaptive_bloom;
    store_options.controller.control_write_buffer =
        memory.adaptive_write_buffer;
    store_options.controller.control_bloom = memory.adaptive_bloom;
    store_options.controller.min_memtable_fraction =
        memory.min_memtable_fraction;
    store_options.controller.max_memtable_fraction =
        memory.max_memtable_fraction;
    store_options.controller.max_bloom_fraction = memory.max_bloom_fraction;
    // The agent must feel memtable/bloom decisions: give the window's
    // flush/stall I/O weight in h_est unless the caller chose one.
    if (store_options.controller.write_cost_weight == 0.0) {
      store_options.controller.write_cost_weight = 0.5;
    }
  }
  auto s = std::unique_ptr<AdCacheStore>(
      new AdCacheStore(store_options, lsm_options.block_cache_impl));
  if (total_wall > 0) {
    size_t bloom_bytes =
        std::min(total_wall / 20,
                 static_cast<size_t>(memory.max_bloom_fraction *
                                     static_cast<double>(total_wall)));
    s->bloom_capacity_bytes_.store(bloom_bytes, std::memory_order_relaxed);
  }
  if (!options.pretrained_model.empty()) {
    Status st = s->controller_->LoadModel(Slice(options.pretrained_model));
    if (!st.ok()) return st;
  } else if (options.controller.pretrain_heuristic) {
    s->controller_->PretrainHeuristic(options.controller.pretrain_steps,
                                      options.controller.agent.seed + 77);
  }
  lsm::Options db_options = lsm_options;
  // Under the unified wall the engine's write buffers start at the carve's
  // share (split evenly across shards; the DB resizes them dynamically from
  // then on) and the bloom threshold may be overridden by the unified knob.
  if (total_wall > 0) {
    db_options.memtable_size = std::max<size_t>(
        64 << 10, write_buffer_total / num_shards);
  }
  if (memory.bloom_bits_per_key >= 0) {
    db_options.bloom_bits_per_key = memory.bloom_bits_per_key;
  }
  db_options.block_cache = s->cache_->block_cache();
  db_options.listeners.push_back(s->stats_bridge_);
  for (const auto& listener : options.listeners) {
    db_options.listeners.push_back(listener);
  }
  // Secondary (flash) tier: an explicitly provided lsm cache wins; else a
  // nonzero budget builds a slab cache here. Either way ShardedDB::Open
  // sees a pre-set tier and skips its own ADCACHE_SECONDARY_CACHE fallback
  // (which still applies when neither is set — adopted below after Open).
  if (db_options.secondary_cache == nullptr && secondary_budget > 0) {
    Env* env =
        db_options.env != nullptr ? db_options.env : lsm::DefaultDbEnv();
    Status st = env->CreateDirIfMissing(dbname);
    if (!st.ok()) return st;
    SlabSecondaryCacheOptions secondary_options;
    secondary_options.capacity = secondary_budget;
    secondary_options.admission_threshold =
        store_options.secondary_admission_threshold;
    std::shared_ptr<SecondaryCache> secondary;
    st = NewSlabSecondaryCache(env, dbname + "/secondary", secondary_options,
                               &secondary);
    if (!st.ok()) return st;
    lsm::InstallSecondaryCache(&db_options, std::move(secondary));
  }
  // Size the per-shard ticker table before Open so maintenance events fired
  // during recovery are already attributable.
  s->stats_->ConfigureShards(
      static_cast<int>(lsm::ShardedDB::ResolveBoundaries(db_options).size()) +
      1);
  Status st = lsm::ShardedDB::Open(db_options, dbname, &s->db_);
  if (!st.ok()) return st;
  // Adopt whichever tier ended up wired (caller's, ours, or the env
  // fallback inside Open) so the RL controller can manage its boundary and
  // the registry folds its counters. The tier's current capacity defines
  // its flash budget unless the store options name a larger one.
  if (const std::shared_ptr<SecondaryCache>& secondary =
          s->db_->options().secondary_cache;
      secondary != nullptr) {
    size_t budget = std::max(secondary_budget, secondary->GetCapacity());
    s->cache_->SetSecondaryCache(secondary, budget);
    Statistics* stats = s->stats_.get();
    secondary->SetReadLatencySink([stats](uint64_t micros) {
      stats->RecordLatency(kHistSecondaryReadMicros, micros);
    });
    s->stats_->SetGauge(kGaugeSecondaryCapacityBytes,
                        static_cast<double>(secondary->GetCapacity()));
    s->stats_->SetGauge(kGaugeSecondaryDemotionThreshold,
                        secondary->admission_threshold());
  }
  s->RegisterWallConsumers();
  *store = std::move(s);
  return Status::OK();
}

void AdCacheStore::RegisterWallConsumers() {
  MemoryBudget* budget = cache_->memory_budget();
  lsm::ShardedDB* db = db_.get();
  using Domain = MemoryBudget::Domain;
  // Domain rule: under a unified wall every consumer is kDram so its bytes
  // count against the wall even when its adaptive flag is off — the
  // controller freezes a consumer by leaving it out of the DRAM plan (an
  // untargeted kDram consumer keeps its capacity and shrinks the share the
  // named ones split). kTracked is for legacy mode only, where the wall
  // covers just the caches and everything else is snapshot telemetry.

  // Write buffers: capacity is the aggregate write-buffer target across
  // shards, usage the live memtable bytes; shrinking rotates oversized
  // memtables early (lsm::DB::SetWriteBufferSize). Floor: one minimal
  // memtable per shard.
  budget->Register(
      kBudgetMemtable,
      std::make_shared<FunctionMemoryConsumer>(
          [db] { return db->write_buffer_size(); },
          [db] { return db->WriteBufferUsage(); },
          [db](size_t bytes) { db->SetWriteBufferSize(bytes); },
          /*min_capacity=*/static_cast<size_t>(64 << 10) *
              static_cast<size_t>(db->shard_count())),
      unified_ ? Domain::kDram : Domain::kTracked);

  // Bloom filters: the registry speaks bytes, the engine bits/key. The
  // consumer converts through the live tree (bits = bytes / entries) and
  // retargets newly built tables; existing filters are only replaced as
  // flush/compaction rewrites them, so usage converges on capacity.
  budget->Register(
      kBudgetBloom,
      std::make_shared<FunctionMemoryConsumer>(
          [this] {
            return bloom_capacity_bytes_.load(std::memory_order_relaxed);
          },
          [db] {
            return static_cast<size_t>(db->GetLsmShape().filter_bytes);
          },
          [this, db](size_t bytes) {
            bloom_capacity_bytes_.store(bytes, std::memory_order_relaxed);
            lsm::DB::LsmShape shape = db->GetLsmShape();
            if (shape.live_entries == 0) return;  // no basis for bits yet
            uint64_t bits = bytes * 8 / shape.live_entries;
            db->SetBloomBitsPerKey(
                static_cast<int>(std::min<uint64_t>(bits, 32)));
          }),
      unified_ ? Domain::kDram : Domain::kTracked);

  // Secondary tier's DRAM index: budgeted bytes trigger slab drops in the
  // tier when its key index outgrows them. Only meaningful with a tier.
  if (SecondaryCache* secondary = cache_->secondary_cache();
      secondary != nullptr) {
    if (unified_) {
      size_t index_bytes =
          std::min(cache_->secondary_budget() / 40, budget->total() / 20);
      secondary_index_capacity_.store(index_bytes, std::memory_order_relaxed);
      secondary->SetIndexMemoryBudget(index_bytes);
    }
    budget->Register(
        kBudgetSecondaryDramIndex,
        std::make_shared<FunctionMemoryConsumer>(
            [this] {
              return secondary_index_capacity_.load(std::memory_order_relaxed);
            },
            [secondary] { return secondary->IndexMemoryUsage(); },
            [this, secondary](size_t bytes) {
              secondary_index_capacity_.store(bytes,
                                              std::memory_order_relaxed);
              secondary->SetIndexMemoryBudget(bytes);
            }),
        unified_ ? Domain::kDram : Domain::kTracked);
  }

  // Telemetry: the probe feeds the live bits/key into RlActionInfo and the
  // gauges seed sane capacity readings before the first window closes.
  controller_->SetBloomBitsProbe([db] { return db->bloom_bits_per_key(); });
  stats_->SetGauge(kGaugeBlockCacheCapacityBytes,
                   static_cast<double>(cache_->block_cache()->GetCapacity()));
  stats_->SetGauge(kGaugeRangeCacheCapacityBytes,
                   static_cast<double>(cache_->range_cache()->GetCapacity()));
  stats_->SetGauge(kGaugeMemtableCapacityBytes,
                   static_cast<double>(db->write_buffer_size()));
  stats_->SetGauge(
      kGaugeBloomCapacityBytes,
      static_cast<double>(bloom_capacity_bytes_.load(std::memory_order_relaxed)));
  stats_->SetGauge(kGaugeSecondaryIndexCapacityBytes,
                   static_cast<double>(secondary_index_capacity_.load(
                       std::memory_order_relaxed)));
  stats_->SetGauge(kGaugeBloomBitsPerKey,
                   static_cast<double>(db->bloom_bits_per_key()));
}

LsmShapeParams AdCacheStore::CurrentShape() const {
  lsm::DB::LsmShape raw = db_->GetLsmShape();
  LsmShapeParams shape;
  shape.num_levels = std::max(1, raw.num_levels_nonempty);
  shape.l0_max_runs = db_->options().l0_stop_trigger;
  shape.l0_files = raw.l0_files;
  shape.imm_memtables = raw.imm_memtables;
  shape.entries_per_block =
      raw.entries_per_block > 0 ? raw.entries_per_block : 4.0;
  // Live filter telemetry: the tree mixes bits/key thresholds once the
  // wall moves them, so the FPR comes from the entry-weighted average over
  // live tables; the (dynamic) threshold only stands in for an empty tree.
  double bits = raw.live_entries > 0
                    ? raw.avg_bloom_bits_per_key
                    : static_cast<double>(db_->bloom_bits_per_key());
  shape.bloom_fpr = IoEstimator::BloomFprForBits(bits);
  return shape;
}

void AdCacheStore::MaybeEndWindow() {
  uint64_t total = window_stats_.TotalOps();
  uint64_t target = next_window_at_.load(std::memory_order_relaxed);
  if (total < target) return;
  std::lock_guard<std::mutex> l(window_mu_);
  target = next_window_at_.load(std::memory_order_relaxed);
  if (window_stats_.TotalOps() < target) return;  // another thread handled it
  next_window_at_.store(target + options_.controller.window_size,
                        std::memory_order_relaxed);
  const SecondaryCache* secondary = cache_->secondary_cache();
  WindowStats window = window_stats_.Harvest(
      db_->env()->io_stats()->block_reads.load(), SampleMaintenance(),
      secondary != nullptr ? secondary->hits() : 0,
      secondary != nullptr ? secondary->misses() : 0);
  controller_->OnWindowEnd(window, CurrentShape());
}

void AdCacheStore::ForceWindowEnd() {
  std::lock_guard<std::mutex> l(window_mu_);
  const SecondaryCache* secondary = cache_->secondary_cache();
  WindowStats window = window_stats_.Harvest(
      db_->env()->io_stats()->block_reads.load(), SampleMaintenance(),
      secondary != nullptr ? secondary->hits() : 0,
      secondary != nullptr ? secondary->misses() : 0);
  controller_->OnWindowEnd(window, CurrentShape());
}

StatsCollector::MaintenanceSample AdCacheStore::SampleMaintenance() const {
  lsm::DB::MaintenanceStats raw = db_->GetMaintenanceStats();
  StatsCollector::MaintenanceSample sample;
  sample.compactions = raw.compactions;
  sample.flushes = raw.flushes;
  sample.stall_micros = raw.stall_micros;
  sample.write_groups = raw.write_groups;
  return sample;
}

Status AdCacheStore::PutImpl(const WriteOptions& options, const Slice& key,
                         const Slice& value) {
  LatencyTimer timer(stats_.get(), kHistPutMicros);
  Status s = db_->Put(options, key, value);
  if (s.ok()) cache_->range_cache()->InvalidateWrite(key, value);
  window_stats_.RecordWrite();
  stats_->RecordTick(kTickerWrites);
  MaybeEndWindow();
  return s;
}

Status AdCacheStore::DeleteImpl(const WriteOptions& options, const Slice& key) {
  LatencyTimer timer(stats_.get(), kHistPutMicros);
  Status s = db_->Delete(options, key);
  if (s.ok()) cache_->range_cache()->InvalidateDelete(key);
  window_stats_.RecordWrite();
  stats_->RecordTick(kTickerWrites);
  MaybeEndWindow();
  return s;
}

Status AdCacheStore::GetImpl(const ReadOptions& options, const Slice& key,
                         PinnableSlice* value) {
  LatencyTimer timer(stats_.get(), kHistGetMicros);
  stats_->RecordTick(kTickerPointLookups);
  // Query handling path (paper Fig. 5): range cache -> memtable -> block
  // cache -> disk; the last three live inside lsm::DB::Get.
  std::string cached;
  if (cache_->range_cache()->Get(key, &cached)) {
    value->PinSelf(Slice(cached));
    window_stats_.RecordPointLookup(/*range_cache_hit=*/true);
    MaybeEndWindow();
    return Status::OK();
  }
  // Read through the LSM with a pinned result; block-cache / memtable hits
  // reach the caller without an intermediate copy. The range-cache fill
  // copies from the pin (PutPoint copies internally).
  Status s = db_->Get(options, key, value);
  if (s.ok()) {
    // Cache fill path: frequency-gated admission into the range cache.
    // Admission control exists to prevent evictions of valuable entries;
    // while the range cache still has headroom there is nothing to evict,
    // so admission is free (the sketch is still updated for later).
    bool admit = true;
    if (options_.controller.enable_admission) {
      ADCACHE_PERF_COUNTER_ADD(admission_check_count, 1);
      bool frequent = point_admission_.RecordMissAndCheckAdmit(key);
      bool has_headroom =
          cache_->RangeUsage() + key.size() + value->size() + 128 <=
          cache_->range_cache()->GetCapacity();
      admit = frequent || has_headroom;
    }
    if (admit) {
      ADCACHE_PERF_COUNTER_ADD(admission_admit_count, 1);
      cache_->range_cache()->PutPoint(key, value->slice());
      window_stats_.RecordPointAdmit();
      stats_->RecordTick(kTickerPointAdmits);
    } else {
      stats_->RecordTick(kTickerPointRejects);
    }
  }
  window_stats_.RecordPointLookup(/*range_cache_hit=*/false);
  MaybeEndWindow();
  return s;
}

void AdCacheStore::MultiGetImpl(const ReadOptions& options,
                                MultiGetBatch* batch) {
  const size_t n = batch->size();
  if (n == 0) return;
  const Slice* keys = batch->keys();
  PinnableSlice* values = batch->values();
  Status* statuses = batch->statuses();
  LatencyTimer timer(stats_.get(), kHistMultiGetMicros);
  stats_->RecordTick(kTickerMultiGetKeys, n);
  // Stage 1: range-cache probe per key; only misses go to the LSM.
  std::vector<size_t> miss_idx;
  miss_idx.reserve(n);
  std::string cached;
  for (size_t i = 0; i < n; i++) {
    if (cache_->range_cache()->Get(keys[i], &cached)) {
      values[i].PinSelf(Slice(cached));
      statuses[i] = Status::OK();
    } else {
      miss_idx.push_back(i);
    }
  }
  uint64_t range_hits = n - miss_idx.size();
  uint64_t admits = 0;
  if (!miss_idx.empty()) {
    // Stage 2: one batched LSM read for all misses (one SuperVersion, keys
    // grouped by SST file and block inside lsm::DB::MultiGet).
    std::vector<Slice> miss_keys(miss_idx.size());
    std::vector<PinnableSlice> miss_values(miss_idx.size());
    std::vector<Status> miss_statuses(miss_idx.size());
    for (size_t j = 0; j < miss_idx.size(); j++) {
      miss_keys[j] = keys[miss_idx[j]];
    }
    db_->MultiGet(options, miss_keys.size(), miss_keys.data(),
                  miss_values.data(), miss_statuses.data());
    // Stage 3: batched admission over the found misses — the whole batch
    // touches the sketch + doorkeeper under ONE lock. Only found keys feed
    // the sketch, matching the single-key Get path.
    std::vector<size_t> found;
    found.reserve(miss_idx.size());
    for (size_t j = 0; j < miss_idx.size(); j++) {
      if (miss_statuses[j].ok()) found.push_back(j);
    }
    if (!found.empty()) {
      std::vector<Slice> found_keys(found.size());
      for (size_t k = 0; k < found.size(); k++) {
        found_keys[k] = miss_keys[found[k]];
      }
      std::unique_ptr<bool[]> frequent(new bool[found.size()]());
      if (options_.controller.enable_admission) {
        ADCACHE_PERF_COUNTER_ADD(admission_check_count, found.size());
        point_admission_.RecordMissBatchAndCheckAdmit(
            found.size(), found_keys.data(), frequent.get());
      }
      for (size_t k = 0; k < found.size(); k++) {
        size_t j = found[k];
        bool admit = true;
        if (options_.controller.enable_admission) {
          // Headroom is rechecked per fill: earlier admits in this batch
          // consume range-cache space.
          bool has_headroom = cache_->RangeUsage() + found_keys[k].size() +
                                  miss_values[j].size() + 128 <=
                              cache_->range_cache()->GetCapacity();
          admit = frequent[k] || has_headroom;
        }
        if (admit) {
          cache_->range_cache()->PutPoint(found_keys[k],
                                          miss_values[j].slice());
          admits++;
        }
      }
      ADCACHE_PERF_COUNTER_ADD(admission_admit_count, admits);
      stats_->RecordTick(kTickerPointAdmits, admits);
      stats_->RecordTick(kTickerPointRejects, found.size() - admits);
    }
    // Stage 4: scatter results back to the caller's arrays.
    for (size_t j = 0; j < miss_idx.size(); j++) {
      size_t i = miss_idx[j];
      statuses[i] = miss_statuses[j];
      if (statuses[i].ok()) values[i] = std::move(miss_values[j]);
    }
  }
  // One sharded-counter add per counter for the whole batch.
  window_stats_.RecordPointLookups(n, range_hits);
  window_stats_.RecordPointAdmits(admits);
  MaybeEndWindow();
}

Status AdCacheStore::ScanImpl(const ReadOptions& options, const Slice& start,
                          size_t n, std::vector<KvPair>* results) {
  LatencyTimer timer(stats_.get(), kHistScanMicros);
  stats_->RecordTick(kTickerScans);
  if (cache_->range_cache()->GetScan(start, n, results)) {
    stats_->RecordTick(kTickerScanKeysRead, results->size());
    window_stats_.RecordScan(results->size(), /*range_cache_hit=*/true);
    MaybeEndWindow();
    return Status::OK();
  }
  // Partial admission also throttles block-cache fill for long scans
  // (paper §3.4): a scan past the threshold may only admit a commensurate
  // number of blocks, protecting hot blocks from one-off scan traffic.
  // A caller-supplied fill budget takes precedence.
  lsm::ReadOptions read_options = options;
  uint32_t block_budget = 0;
  if (read_options.fill_block_budget == nullptr &&
      options_.controller.enable_admission &&
      static_cast<double>(n) > scan_admission_.a()) {
    double epb = std::max(1.0, CurrentShape().entries_per_block);
    block_budget = static_cast<uint32_t>(
        static_cast<double>(scan_admission_.AdmitCount(n)) / epb) + 2;
    read_options.fill_block_budget = &block_budget;
  }
  Status s = ScanThroughDb(db_.get(), read_options, start, n, results);
  if (s.ok() && !results->empty()) {
    uint64_t admit =
        options_.controller.enable_admission
            ? scan_admission_.AdmitCount(results->size())
            : results->size();
    if (admit > 0) {
      cache_->range_cache()->PutScan(start, *results, admit);
      window_stats_.RecordScanAdmit(admit);
      stats_->RecordTick(kTickerScanAdmits, admit);
    }
  }
  stats_->RecordTick(kTickerScanKeysRead, results->size());
  window_stats_.RecordScan(results->size(), /*range_cache_hit=*/false);
  MaybeEndWindow();
  return s;
}

void AdCacheStore::SyncComponentTickers() const {
  // At kDisabled every RecordTick is dropped; leave the bases untouched so
  // the deltas are folded in once the registry is re-enabled.
  if (stats_->stats_level() == StatsLevel::kDisabled) return;
  Statistics* stats = stats_.get();
  auto fold = [stats](std::atomic<uint64_t>& base, uint64_t current,
                      Ticker ticker) {
    // exchange() serialises concurrent folders: each sees a distinct
    // [prev, current) interval, so the deltas sum to the source counter.
    uint64_t prev = base.exchange(current, std::memory_order_relaxed);
    if (current > prev) stats->RecordTick(ticker, current - prev);
  };
  fold(mirror_.block_reads, db_->env()->io_stats()->block_reads.load(),
       kTickerBlockReads);
  fold(mirror_.block_cache_hits, cache_->block_cache()->hits(),
       kTickerBlockCacheHits);
  fold(mirror_.block_cache_misses, cache_->block_cache()->misses(),
       kTickerBlockCacheMisses);
  fold(mirror_.range_hits, cache_->range_cache()->hits(),
       kTickerRangeCacheHits);
  fold(mirror_.range_misses, cache_->range_cache()->misses(),
       kTickerRangeCacheMisses);
  if (const SecondaryCache* secondary = cache_->secondary_cache();
      secondary != nullptr) {
    fold(mirror_.secondary_hits, secondary->hits(),
         kTickerSecondaryCacheHits);
    fold(mirror_.secondary_misses, secondary->misses(),
         kTickerSecondaryCacheMisses);
    fold(mirror_.secondary_demotions, secondary->demotions(),
         kTickerSecondaryDemotions);
    fold(mirror_.secondary_demotion_rejects, secondary->demotion_rejects(),
         kTickerSecondaryDemotionRejects);
    fold(mirror_.secondary_gc_runs, secondary->gc_runs(),
         kTickerSecondaryGcRuns);
    fold(mirror_.secondary_gc_reclaimed, secondary->gc_reclaimed_bytes(),
         kTickerSecondaryGcReclaimedBytes);
    stats->SetGauge(kGaugeSecondaryCapacityBytes,
                    static_cast<double>(secondary->GetCapacity()));
    stats->SetGauge(kGaugeSecondaryUsageBytes,
                    static_cast<double>(secondary->GetUsage()));
    stats->SetGauge(kGaugeSecondaryDemotionThreshold,
                    secondary->admission_threshold());
  }
  // Slot-table pressure for the CLOCK backend (0 for LRU): distinguishes
  // "byte budget full" from "slot table full" when tuning entry estimates.
  stats->SetGauge(kGaugeBlockCacheSlotOccupancy,
                  cache_->block_cache()->slot_occupancy());
}

CacheStatsSnapshot AdCacheStore::GetCacheStats() const {
  // Thin view over the Statistics registry (see the contract on the struct):
  // component counters are folded into their registry tickers first, then
  // everything is read back out of the registry.
  SyncComponentTickers();
  CacheStatsSnapshot snap;
  snap.block_reads = stats_->GetTickerCount(kTickerBlockReads);
  snap.range_hits = stats_->GetTickerCount(kTickerRangeCacheHits);
  snap.range_misses = stats_->GetTickerCount(kTickerRangeCacheMisses);
  snap.block_cache_hits = stats_->GetTickerCount(kTickerBlockCacheHits);
  snap.block_cache_misses = stats_->GetTickerCount(kTickerBlockCacheMisses);
  snap.secondary_hits = stats_->GetTickerCount(kTickerSecondaryCacheHits);
  snap.secondary_misses = stats_->GetTickerCount(kTickerSecondaryCacheMisses);
  snap.secondary_demotions =
      stats_->GetTickerCount(kTickerSecondaryDemotions);
  if (const SecondaryCache* secondary = cache_->secondary_cache();
      secondary != nullptr) {
    snap.secondary_usage = secondary->GetUsage();
    snap.secondary_capacity = secondary->GetCapacity();
  }
  snap.cache_usage = cache_->RangeUsage() + cache_->BlockUsage();
  snap.cache_capacity = cache_->total_budget();
  snap.range_ratio = stats_->GetGauge(kGaugeRangeRatio);
  snap.point_threshold = stats_->GetGauge(kGaugePointThreshold);
  snap.scan_a = stats_->GetGauge(kGaugeScanA);
  snap.scan_b = stats_->GetGauge(kGaugeScanB);
  snap.smoothed_hit_rate = stats_->GetGauge(kGaugeSmoothedHitRate);
  return snap;
}

}  // namespace adcache::core
