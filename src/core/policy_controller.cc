#include "core/policy_controller.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"

namespace adcache::core {

PolicyController::PolicyController(const ControllerOptions& options,
                                   DynamicCacheComponent* cache,
                                   PointAdmissionController* point_admission,
                                   ScanAdmissionController* scan_admission)
    : options_(options),
      cache_(cache),
      point_admission_(point_admission),
      scan_admission_(scan_admission) {
  rl::ActorCriticOptions agent_options = options.agent;
  agent_options.state_dim = kStateDim;
  agent_options.action_dim = kActionDim;
  agent_ = std::make_unique<rl::ActorCriticAgent>(agent_options);
}

std::vector<float> PolicyController::BuildState(const WindowStats& w,
                                                const LsmShapeParams& shape,
                                                double h_est) const {
  auto clamp01 = [](double v) {
    return static_cast<float>(std::clamp(v, 0.0, 1.0));
  };
  uint64_t reads = w.point_lookups + w.scans;
  double range_hit_rate =
      reads == 0 ? 0.0
                 : static_cast<double>(w.range_point_hits +
                                       w.range_scan_hits) /
                       static_cast<double>(reads);
  double occupancy =
      cache_->total_budget() == 0
          ? 0.0
          : static_cast<double>(cache_->RangeUsage() + cache_->BlockUsage()) /
                static_cast<double>(cache_->total_budget());
  uint64_t secondary_lookups = w.secondary_hits + w.secondary_misses;
  double secondary_hit_rate =
      secondary_lookups == 0
          ? 0.0
          : static_cast<double>(w.secondary_hits) /
                static_cast<double>(secondary_lookups);
  double secondary_occupancy =
      cache_->secondary_budget() == 0
          ? 0.0
          : static_cast<double>(cache_->SecondaryUsage()) /
                static_cast<double>(cache_->secondary_budget());
  // Write-side features (unified wall): time writers spent stalled per op
  // (normalised at 100us — one storage read — per op), how far the flush
  // pipeline is backed up relative to the write-stop trigger, and the
  // live tree's bloom FPR (x10 so the useful 0..10% range fills [0,1]).
  uint64_t ops = w.ops();
  double stall_rate = static_cast<double>(w.stall_micros) /
                      (100.0 * static_cast<double>(std::max<uint64_t>(1, ops)));
  double flush_debt =
      static_cast<double>(shape.l0_files + shape.imm_memtables) /
      static_cast<double>(std::max(1, shape.l0_max_runs));
  return {
      clamp01(w.PointRatio()),
      clamp01(w.ScanRatio()),
      clamp01(w.WriteRatio()),
      clamp01(w.AvgScanLength() / scan_admission_->max_a()),
      clamp01(range_hit_rate),
      clamp01(h_est),
      clamp01(h_smoothed_),
      clamp01(cache_->range_ratio()),
      clamp01(occupancy),
      clamp01(static_cast<double>(w.compactions + w.flushes) / 8.0),
      clamp01(static_cast<double>(shape.num_levels) / 7.0),
      clamp01(secondary_hit_rate),
      clamp01(secondary_occupancy),
      clamp01(stall_rate),
      clamp01(flush_debt),
      clamp01(shape.bloom_fpr * 10.0),
  };
}

bool PolicyController::MemwallControlled() const {
  const MemoryBudget* budget = cache_->memory_budget();
  return options_.enable_memwall_control && budget != nullptr &&
         budget->IsRegistered(kBudgetMemtable);
}

void PolicyController::ApplyAction(const std::vector<float>& action) {
  if (MemwallControlled()) {
    // Unified wall: one DRAM plan re-carving the whole budget. The write-
    // side consumers take their action-mapped shares first; the block/range
    // caches split what remains by action[0], with the block cache last so
    // it absorbs the rounding remainder (keeping the sum invariant exact).
    MemoryBudget* budget = cache_->memory_budget();
    double total = static_cast<double>(budget->total());
    std::vector<std::pair<std::string, size_t>> plan;
    // A consumer with its control flag off is frozen by omission: left out
    // of the plan it keeps its carve-time capacity, which the registry
    // subtracts (as untargeted DRAM) from the share the plan distributes.
    size_t frozen = 0;
    size_t memtable = 0;
    if (options_.control_write_buffer) {
      double mem_frac =
          options_.min_memtable_fraction +
          std::clamp(static_cast<double>(action[6]), 0.0, 1.0) *
              (options_.max_memtable_fraction -
               options_.min_memtable_fraction);
      // Halfway step from the current capacity, not a jump: a shrink
      // force-rotates memtables into L0, so acting on every exploration
      // dip churns flushes. The blend still converges on the action's
      // target within a few windows but damps single-window noise.
      memtable = static_cast<size_t>(
          0.5 * (mem_frac * total +
                 static_cast<double>(budget->CapacityOf(kBudgetMemtable))));
      plan.emplace_back(kBudgetMemtable, memtable);
    } else {
      frozen += budget->CapacityOf(kBudgetMemtable);
    }
    size_t bloom = 0;
    if (options_.control_bloom) {
      bloom = static_cast<size_t>(
          std::clamp(static_cast<double>(action[7]), 0.0, 1.0) *
          options_.max_bloom_fraction * total);
      plan.emplace_back(kBudgetBloom, bloom);
    } else {
      frozen += budget->CapacityOf(kBudgetBloom);
    }
    // The secondary tier's DRAM index scales with its flash target: slab
    // records average a few KB, so the index runs ~2.5% of the flash bytes
    // it maps (kIndexBytesPerEntry / typical record size).
    size_t sec_index = 0;
    if (budget->IsRegistered(kBudgetSecondaryDramIndex) &&
        cache_->secondary_cache() != nullptr) {
      double flash_target =
          std::clamp(static_cast<double>(action[4]),
                     DynamicCacheComponent::kMinSecondaryRatio, 1.0) *
          static_cast<double>(cache_->secondary_budget());
      sec_index = static_cast<size_t>(flash_target / 40.0);
      plan.emplace_back(kBudgetSecondaryDramIndex, sec_index);
    }
    size_t fixed = memtable + bloom + sec_index + frozen;
    size_t cache_share =
        budget->total() > fixed ? budget->total() - fixed : 0;
    double ratio = options_.enable_partitioning
                       ? std::clamp(static_cast<double>(action[0]), 0.0, 1.0)
                       : cache_->range_ratio();
    auto range = static_cast<size_t>(ratio * static_cast<double>(cache_share));
    plan.emplace_back(kBudgetRangeCache, range);
    plan.emplace_back(kBudgetBlockCache, cache_share - range);
    budget->ApplyDramPlan(plan);
    cache_->SyncRangeRatioFromCapacities();
  } else if (options_.enable_partitioning) {
    cache_->SetRangeRatio(action[0]);
  }
  if (options_.enable_admission) {
    point_admission_->SetThreshold(
        PointAdmissionController::ActionToThreshold(action[1]));
    scan_admission_->SetFromActions(action[2], action[3]);
  }
  if (options_.enable_secondary_control &&
      cache_->secondary_cache() != nullptr) {
    // action[4]: tier capacity as a fraction of its flash budget (the
    // component clamps to [kMinSecondaryRatio, 1] and shrinks
    // incrementally via SetCapacity -> watermark GC).
    cache_->SetSecondaryRatio(action[4]);
    // action[5]: demotion-admission threshold on the TinyLFU normalized
    // frequency. The quadratic map concentrates resolution near zero,
    // where useful thresholds live (cf. the point-admission trajectory in
    // paper Fig. 10); the agent can still reach "demote everything" (0).
    cache_->secondary_cache()->SetAdmissionThreshold(
        ActionToDemotionThreshold(action[5]));
  }
}

void PolicyController::OnWindowEnd(const WindowStats& window,
                                   const LsmShapeParams& shape) {
  std::lock_guard<std::mutex> l(mu_);
  windows_++;

  double h_est =
      IoEstimator::EstimateHitRate(window, shape, options_.secondary_flash_cost,
                                   options_.write_cost_weight);
  if (!h_initialised_) {
    h_smoothed_ = h_est;
    h_initialised_ = true;
  }
  double prev_smoothed = h_smoothed_;
  h_smoothed_ = options_.alpha * h_smoothed_ + (1.0 - options_.alpha) * h_est;
  // reward = delta h_smoothed / h_smoothed (paper §3.5), guarded near zero.
  double denom = std::max(h_smoothed_, 1e-3);
  last_reward_ =
      std::clamp((h_smoothed_ - prev_smoothed) / denom, -1.0, 1.0);

  std::vector<float> state = BuildState(window, shape, h_est);

  // Refresh per-shard budget leases before the action is applied so the
  // boundary move that follows repartitions with this window's weights.
  if (options_.enable_shard_leases) UpdateShardLeasesLocked();

  if (options_.online_learning && have_prev_) {
    agent_->Observe(prev_state_, prev_action_,
                    static_cast<float>(last_reward_), state);
    agent_->AdaptLearningRate(static_cast<float>(last_reward_));
  }

  // The action computed now governs the *next* window (paper §4.2: control
  // is one window behind the latest statistics).
  std::vector<float> action = agent_->Act(state, options_.online_learning);

  RlActionInfo info;
  info.window_index = windows_;
  info.reward = last_reward_;
  info.smoothed_hit_rate = h_smoothed_;
  info.old_range_ratio = cache_->range_ratio();
  info.old_point_threshold = point_admission_->threshold();
  info.old_scan_a = scan_admission_->a();
  info.old_scan_b = scan_admission_->b();
  SecondaryCache* secondary = cache_->secondary_cache();
  info.secondary_controlled =
      options_.enable_secondary_control && secondary != nullptr;
  if (info.secondary_controlled) {
    info.old_secondary_capacity_bytes = secondary->GetCapacity();
    info.old_demotion_threshold = secondary->admission_threshold();
  }
  info.memwall_controlled = MemwallControlled();
  if (bloom_bits_probe_ != nullptr) {
    info.old_bloom_bits_per_key = bloom_bits_probe_();
  }
  // Schema v2: snapshot the registry before and after the action so the
  // payload carries the full named budget vector.
  std::vector<MemoryBudget::Entry> before;
  if (cache_->memory_budget() != nullptr) {
    before = cache_->memory_budget()->Snapshot();
  }

  ApplyAction(action);

  if (cache_->memory_budget() != nullptr) {
    for (const MemoryBudget::Entry& e : cache_->memory_budget()->Snapshot()) {
      BudgetConsumerDelta d;
      d.name = e.name;
      d.new_capacity_bytes = e.capacity_bytes;
      d.usage_bytes = e.usage_bytes;
      for (const MemoryBudget::Entry& b : before) {
        if (b.name == e.name) {
          d.old_capacity_bytes = b.capacity_bytes;
          break;
        }
      }
      info.budget.push_back(std::move(d));
    }
  }

  info.new_range_ratio = cache_->range_ratio();
  info.new_point_threshold = point_admission_->threshold();
  info.new_scan_a = scan_admission_->a();
  info.new_scan_b = scan_admission_->b();
  if (info.secondary_controlled) {
    info.new_secondary_capacity_bytes = secondary->GetCapacity();
    info.new_demotion_threshold = secondary->admission_threshold();
  }
  if (bloom_bits_probe_ != nullptr) {
    info.new_bloom_bits_per_key = bloom_bits_probe_();
  }

  if (statistics_ != nullptr) {
    statistics_->RecordTick(kTickerRlActions);
    statistics_->SetGauge(kGaugeRangeRatio, info.new_range_ratio);
    statistics_->SetGauge(kGaugePointThreshold, info.new_point_threshold);
    statistics_->SetGauge(kGaugeScanA, info.new_scan_a);
    statistics_->SetGauge(kGaugeScanB, info.new_scan_b);
    statistics_->SetGauge(kGaugeSmoothedHitRate, info.smoothed_hit_rate);
    if (info.secondary_controlled) {
      statistics_->SetGauge(
          kGaugeSecondaryCapacityBytes,
          static_cast<double>(info.new_secondary_capacity_bytes));
      statistics_->SetGauge(kGaugeSecondaryDemotionThreshold,
                            info.new_demotion_threshold);
    }
    for (const BudgetConsumerDelta& d : info.budget) {
      double cap = static_cast<double>(d.new_capacity_bytes);
      if (d.name == kBudgetBlockCache) {
        statistics_->SetGauge(kGaugeBlockCacheCapacityBytes, cap);
      } else if (d.name == kBudgetRangeCache) {
        statistics_->SetGauge(kGaugeRangeCacheCapacityBytes, cap);
      } else if (d.name == kBudgetMemtable) {
        statistics_->SetGauge(kGaugeMemtableCapacityBytes, cap);
      } else if (d.name == kBudgetBloom) {
        statistics_->SetGauge(kGaugeBloomCapacityBytes, cap);
      } else if (d.name == kBudgetSecondaryDramIndex) {
        statistics_->SetGauge(kGaugeSecondaryIndexCapacityBytes, cap);
      }
    }
    if (info.memwall_controlled && bloom_bits_probe_ != nullptr) {
      statistics_->SetGauge(kGaugeBloomBitsPerKey,
                            info.new_bloom_bits_per_key);
    }
  }
  // Listeners run with mu_ held: the trace stays ordered by window and the
  // payload matches the state that was just applied.
  for (const auto& listener : listeners_) {
    listener->OnRlAction(info);
  }
  if (info.new_range_ratio != info.old_range_ratio) {
    CacheBoundaryMoveInfo move;
    move.old_range_ratio = info.old_range_ratio;
    move.new_range_ratio = info.new_range_ratio;
    move.total_budget_bytes = cache_->total_budget();
    move.new_range_capacity_bytes = cache_->range_cache()->GetCapacity();
    move.new_block_capacity_bytes = cache_->block_cache()->GetCapacity();
    if (statistics_ != nullptr) {
      statistics_->RecordTick(kTickerCacheBoundaryMoves);
    }
    for (const auto& listener : listeners_) {
      listener->OnCacheBoundaryMove(move);
    }
  }

  prev_state_ = std::move(state);
  prev_action_ = std::move(action);
  have_prev_ = true;
}

void PolicyController::UpdateShardLeasesLocked() {
  ShardedRangeCache* range_cache = cache_->range_cache();
  size_t num_shards = range_cache->num_shards();
  if (num_shards <= 1) return;
  shard_h_est_.resize(num_shards, 0.5);
  shard_prev_hits_.resize(num_shards, 0);
  shard_prev_lookups_.resize(num_shards, 0);
  std::vector<double> weights(num_shards);
  for (size_t i = 0; i < num_shards; i++) {
    const RangeCache* shard = range_cache->shard(i);
    uint64_t hits = shard->hits();
    uint64_t lookups = hits + shard->misses();
    uint64_t delta_hits = hits - std::min(hits, shard_prev_hits_[i]);
    uint64_t delta_lookups =
        lookups - std::min(lookups, shard_prev_lookups_[i]);
    shard_prev_hits_[i] = hits;
    shard_prev_lookups_[i] = lookups;
    if (delta_lookups > 0) {
      double h = static_cast<double>(delta_hits) /
                 static_cast<double>(delta_lookups);
      shard_h_est_[i] =
          options_.alpha * shard_h_est_[i] + (1.0 - options_.alpha) * h;
    }
    // Lease weight = traffic share x unmet demand: a busy shard that still
    // misses earns budget; the +1 and the 0.05 floor keep idle or
    // fully-served shards from starving to zero (they must be able to win
    // budget back when the workload shifts onto them).
    weights[i] = (static_cast<double>(delta_lookups) + 1.0) *
                 (1.0 - shard_h_est_[i] + 0.05);
  }
  cache_->SetRangeLeases(std::move(weights));
}

std::vector<float> PolicyController::TargetActionFor(
    const std::vector<float>& state) {
  const float point_ratio = state[0];
  const float scan_ratio = state[1];
  const float write_ratio = state[2];
  const float scan_len = state[3];  // avg scan length / max_a

  // Range-ratio target, following the paper's static-workload findings
  // (Fig. 7) and its dynamic-phase narrative (§5.3):
  //  - point-dominant: result caching wins (range cache as a KV cache);
  //  - short-scan-dominant with few writes: block cache wins outright;
  //  - long-scan-dominant: block-leaning split, partial admission handles
  //    the scans;
  //  - write-heavy: range cache, which survives compaction invalidation.
  float range_ratio = 0.5f;
  if (write_ratio >= 0.4f) {
    // Write-heavy: compaction invalidation punishes the block cache — the
    // controlled experiments behind these targets found the result cache
    // should take essentially the whole budget here.
    range_ratio = 1.0f;
  } else if (scan_ratio >= 0.3f && scan_len <= 0.4f && write_ratio < 0.2f) {
    // Short-scan read-mostly traffic (the paper's Fig. 7b and phase C):
    // convert the range cache into a block cache.
    range_ratio = 0.02f;
  } else if (point_ratio >= 0.6f) {
    range_ratio = 0.95f;
  } else if (scan_ratio >= 0.6f) {
    range_ratio = 0.15f;  // long scans: mostly block + partial admission
  } else if (point_ratio >= scan_ratio) {
    range_ratio = 0.7f;
  } else {
    range_ratio = 0.3f;
  }

  // Admission targets: permissive frequency threshold (Fig. 10 shows it
  // hovering near zero), a ~= short-scan length, b moderate and smaller
  // when long scans dominate.
  float threshold_action = 0.02f;
  float a_action = 0.25f;  // 16 of max 64
  float b_action = (scan_ratio >= 0.6f && scan_len > 0.4f) ? 0.3f : 0.5f;

  // Secondary-tier targets. Flash is cheap relative to storage reads, so
  // the heuristic keeps the whole flash budget online; the demotion
  // threshold stays permissive while the tier has headroom and turns
  // selective once it runs full (state[12]: secondary occupancy) — at that
  // point every demote evicts a slab's worth of earlier demotions, so only
  // re-referenced blocks should earn flash writes. Write-heavy mixes also
  // demote selectively: compaction invalidates demoted blocks before they
  // pay off.
  float secondary_frac = 1.0f;
  float secondary_occupancy = state.size() > 12 ? state[12] : 0.0f;
  float demote_action =
      (secondary_occupancy >= 0.7f || write_ratio >= 0.4f) ? 0.4f : 0.15f;

  // Unified-wall targets (actions 6 and 7), per "Breaking Down Memory
  // Walls": a write-heavy or stalling workload buys flush relief with a
  // bigger write buffer; read-dominant mixes shrink it back into cache.
  // Bloom bits pay off for point lookups over a deep tree (every level
  // skipped saves a read) and are wasted on scan-dominant mixes (scans
  // can't use filters). Write-heavy mixes deliberately do NOT cut bloom:
  // bits/key is sticky state — the tables built during a write burst carry
  // their filters until compaction rewrites them, so starving bloom while
  // writing poisons the next read phase for a ~5%-of-wall saving.
  float stall_rate = state.size() > 13 ? state[13] : 0.0f;
  float level_depth = state.size() > 10 ? state[10] : 0.0f;
  // The read-phase shrink stays moderate (0.25, ~16% of the wall): cutting
  // harder would force-rotate the memtable's write-hot entries to L0,
  // trading free memtable hits for disk reads until the grown cache warms.
  // Write bursts saturate the action: 1.0 maps to max_memtable_fraction,
  // matching the biggest buffer a static carve could ship — anything less
  // runs a smaller buffer than the baseline right at the stall boundary.
  float memtable_action = 0.4f;
  if (write_ratio >= 0.4f || stall_rate >= 0.3f) {
    memtable_action = 1.0f;
  } else if (write_ratio < 0.1f) {
    memtable_action = 0.25f;
  }
  float bloom_action = 0.5f;
  if (scan_ratio >= 0.6f && point_ratio < 0.2f) {
    bloom_action = 0.1f;
  } else if (point_ratio >= 0.6f && level_depth >= 0.4f) {
    bloom_action = 0.8f;
  }
  return {range_ratio,   threshold_action, a_action,        b_action,
          secondary_frac, demote_action,   memtable_action, bloom_action};
}

float PolicyController::PretrainHeuristic(int steps, uint64_t seed) {
  std::lock_guard<std::mutex> l(mu_);
  Random rng(seed);
  float loss = 0;
  for (int i = 0; i < steps; i++) {
    // Sample a plausible workload mix (normalised 3-way split) plus
    // auxiliary features.
    float a = static_cast<float>(rng.NextDouble());
    float b = static_cast<float>(rng.NextDouble());
    float lo = std::min(a, b);
    float hi = std::max(a, b);
    float point_ratio = lo;
    float scan_ratio = hi - lo;
    float write_ratio = 1.0f - hi;
    float scan_len = rng.OneIn(2) ? 0.25f : 1.0f;  // short=16 or long=64
    std::vector<float> state = {
        point_ratio,
        scan_ratio,
        write_ratio,
        scan_ratio > 0 ? scan_len : 0.0f,
        static_cast<float>(rng.NextDouble()),       // range hit rate
        static_cast<float>(rng.NextDouble()),       // h_est
        static_cast<float>(rng.NextDouble()),       // h_smoothed
        static_cast<float>(rng.NextDouble()),       // current range ratio
        static_cast<float>(rng.NextDouble()),       // occupancy
        static_cast<float>(rng.NextDouble() * 0.5), // compaction activity
        static_cast<float>(rng.NextDouble()),       // level depth
        static_cast<float>(rng.NextDouble()),       // secondary hit rate
        static_cast<float>(rng.NextDouble()),       // secondary occupancy
        // Write stalls track the write share of the mix.
        write_ratio * static_cast<float>(rng.NextDouble()),
        static_cast<float>(rng.NextDouble() * 0.5), // flush debt
        static_cast<float>(rng.NextDouble() * 0.3), // bloom FPR estimate
    };
    loss = agent_->PretrainStep(state, TargetActionFor(state));
  }
  return loss;
}

void PolicyController::SaveModel(std::string* dst) const {
  std::lock_guard<std::mutex> l(mu_);
  agent_->Save(dst);
}

Status PolicyController::LoadModel(const Slice& input) {
  std::lock_guard<std::mutex> l(mu_);
  return agent_->Load(input);
}

}  // namespace adcache::core
