#include "core/memory_budget.h"

#include <algorithm>

#include "util/options_env.h"

namespace adcache::core {

void MemoryBudget::Register(const std::string& name,
                            std::shared_ptr<MemoryConsumer> consumer,
                            Domain domain) {
  std::lock_guard<std::mutex> l(mu_);
  int idx = FindLocked(name);
  if (idx >= 0) {
    slots_[static_cast<size_t>(idx)].consumer = std::move(consumer);
    slots_[static_cast<size_t>(idx)].domain = domain;
    return;
  }
  slots_.push_back(Slot{name, std::move(consumer), domain});
}

bool MemoryBudget::IsRegistered(const std::string& name) const {
  std::lock_guard<std::mutex> l(mu_);
  return FindLocked(name) >= 0;
}

void MemoryBudget::SetDomain(const std::string& name, Domain domain) {
  std::lock_guard<std::mutex> l(mu_);
  int idx = FindLocked(name);
  if (idx >= 0) slots_[static_cast<size_t>(idx)].domain = domain;
}

size_t MemoryBudget::CapacityOf(const std::string& name) const {
  std::lock_guard<std::mutex> l(mu_);
  int idx = FindLocked(name);
  return idx >= 0 ? slots_[static_cast<size_t>(idx)].consumer->capacity() : 0;
}

size_t MemoryBudget::UsageOf(const std::string& name) const {
  std::lock_guard<std::mutex> l(mu_);
  int idx = FindLocked(name);
  return idx >= 0 ? slots_[static_cast<size_t>(idx)].consumer->usage() : 0;
}

int MemoryBudget::FindLocked(const std::string& name) const {
  for (size_t i = 0; i < slots_.size(); i++) {
    if (slots_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

void MemoryBudget::ApplyDramPlan(
    const std::vector<std::pair<std::string, size_t>>& targets) {
  std::lock_guard<std::mutex> l(mu_);

  // Resolve the named consumers and the share they must fit into: the wall
  // minus whatever the untargeted DRAM consumers currently hold.
  std::vector<MemoryConsumer*> named;
  named.reserve(targets.size());
  size_t untargeted = 0;
  for (const Slot& slot : slots_) {
    if (slot.domain != Domain::kDram) continue;
    bool is_named = false;
    for (const auto& [name, bytes] : targets) {
      if (slot.name == name) {
        is_named = true;
        break;
      }
    }
    if (!is_named) untargeted += slot.consumer->capacity();
  }
  for (const auto& [name, bytes] : targets) {
    int idx = FindLocked(name);
    if (idx < 0 || slots_[static_cast<size_t>(idx)].domain != Domain::kDram) {
      named.push_back(nullptr);
      continue;
    }
    named.push_back(slots_[static_cast<size_t>(idx)].consumer.get());
  }
  size_t available = total_ > untargeted ? total_ - untargeted : 0;

  // Normalise: scale the requested targets proportionally into the
  // available share (a plan that already sums to it passes through
  // unchanged), then clamp to floors and give the rounding remainder to
  // the last named consumer so the DRAM domain sums to total() exactly.
  uint64_t requested = 0;
  size_t last = targets.size();
  for (size_t i = 0; i < targets.size(); i++) {
    if (named[i] == nullptr) continue;
    requested += targets[i].second;
    last = i;
  }
  if (last == targets.size()) return;  // nothing resolvable to move
  std::vector<size_t> plan(targets.size(), 0);
  double scale = requested == 0
                     ? 0.0
                     : static_cast<double>(available) /
                           static_cast<double>(requested);
  size_t assigned = 0;
  for (size_t i = 0; i < targets.size(); i++) {
    if (named[i] == nullptr) continue;
    size_t want = requested == 0
                      ? available / std::max<size_t>(1, targets.size())
                      : static_cast<size_t>(
                            static_cast<double>(targets[i].second) * scale);
    if (i != last) {
      want = std::max(want, named[i]->min_capacity());
      want = std::min(want, available - std::min(available, assigned));
      plan[i] = want;
      assigned += want;
    } else {
      plan[i] = available > assigned ? available - assigned : 0;
      plan[i] = std::max(plan[i], named[i]->min_capacity());
    }
  }

  // Shrink-before-grow: transient DRAM usage never exceeds the wall.
  for (size_t i = 0; i < targets.size(); i++) {
    if (named[i] != nullptr && plan[i] < named[i]->capacity()) {
      named[i]->SetCapacity(plan[i]);
    }
  }
  for (size_t i = 0; i < targets.size(); i++) {
    if (named[i] != nullptr && plan[i] >= named[i]->capacity()) {
      named[i]->SetCapacity(plan[i]);
    }
  }
}

void MemoryBudget::SetConsumerCapacity(const std::string& name, size_t bytes) {
  std::lock_guard<std::mutex> l(mu_);
  int idx = FindLocked(name);
  if (idx < 0) return;
  MemoryConsumer* consumer = slots_[static_cast<size_t>(idx)].consumer.get();
  consumer->SetCapacity(std::max(bytes, consumer->min_capacity()));
}

size_t MemoryBudget::DramCapacitySum() const {
  std::lock_guard<std::mutex> l(mu_);
  size_t sum = 0;
  for (const Slot& slot : slots_) {
    if (slot.domain == Domain::kDram) sum += slot.consumer->capacity();
  }
  return sum;
}

std::vector<MemoryBudget::Entry> MemoryBudget::Snapshot() const {
  std::lock_guard<std::mutex> l(mu_);
  std::vector<Entry> entries;
  entries.reserve(slots_.size());
  for (int pass = 0; pass < 2; pass++) {
    for (const Slot& slot : slots_) {
      bool dram = slot.domain == Domain::kDram;
      if ((pass == 0) != dram) continue;
      Entry e;
      e.name = slot.name;
      e.domain = slot.domain;
      e.capacity_bytes = slot.consumer->capacity();
      e.usage_bytes = slot.consumer->usage();
      entries.push_back(std::move(e));
    }
  }
  return entries;
}

MemoryBudgetOptions MemoryBudgetOptions::FromEnv(MemoryBudgetOptions defaults) {
  defaults.total_memory_budget = static_cast<size_t>(util::OptionsFromEnv::Bytes(
      "ADCACHE_MEMORY_BUDGET", defaults.total_memory_budget));
  return defaults;
}

MemoryBudgetOptions MemoryBudgetOptions::FromEnv() {
  return FromEnv(MemoryBudgetOptions{});
}

}  // namespace adcache::core
