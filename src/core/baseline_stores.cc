#include "core/baseline_stores.h"

namespace adcache::core {

// ---------------------------------------------------------------------------
// BlockOnlyStore
// ---------------------------------------------------------------------------

Status BlockOnlyStore::Open(size_t cache_budget,
                            const lsm::Options& lsm_options,
                            const std::string& dbname,
                            std::unique_ptr<BlockOnlyStore>* store,
                            const char* name) {
  auto s = std::unique_ptr<BlockOnlyStore>(new BlockOnlyStore(name));
  s->block_cache_ =
      NewBlockCache(lsm_options.block_cache_impl, cache_budget);
  lsm::Options db_options = lsm_options;
  db_options.block_cache = s->block_cache_;
  Status st = lsm::ShardedDB::Open(db_options, dbname, &s->db_);
  if (!st.ok()) return st;
  s->stats_->ConfigureShards(s->db_->shard_count());
  *store = std::move(s);
  return Status::OK();
}

Status BlockOnlyStore::PutImpl(const WriteOptions& options, const Slice& key,
                           const Slice& value) {
  return db_->Put(options, key, value);
}

Status BlockOnlyStore::DeleteImpl(const WriteOptions& options, const Slice& key) {
  return db_->Delete(options, key);
}

Status BlockOnlyStore::GetImpl(const ReadOptions& options, const Slice& key,
                           PinnableSlice* value) {
  return db_->Get(options, key, value);
}

Status BlockOnlyStore::ScanImpl(const ReadOptions& options, const Slice& start,
                            size_t n, std::vector<KvPair>* results) {
  return ScanThroughDb(db_.get(), options, start, n, results);
}

void BlockOnlyStore::MultiGetImpl(const ReadOptions& options,
                                  MultiGetBatch* batch) {
  db_->MultiGet(options, batch->size(), batch->keys(), batch->values(),
                batch->statuses());
}

CacheStatsSnapshot BlockOnlyStore::GetCacheStats() const {
  CacheStatsSnapshot snap;
  snap.block_reads = db_->env()->io_stats()->block_reads.load();
  snap.block_cache_hits = block_cache_->hits();
  snap.block_cache_misses = block_cache_->misses();
  snap.cache_usage = block_cache_->GetUsage();
  snap.cache_capacity = block_cache_->GetCapacity();
  return snap;
}

// ---------------------------------------------------------------------------
// KvCacheStore
// ---------------------------------------------------------------------------

Status KvCacheStore::Open(size_t cache_budget, const lsm::Options& lsm_options,
                          const std::string& dbname,
                          std::unique_ptr<KvCacheStore>* store) {
  auto s = std::unique_ptr<KvCacheStore>(new KvCacheStore(cache_budget));
  lsm::Options db_options = lsm_options;
  db_options.block_cache = nullptr;  // the whole budget is the row cache
  Status st = lsm::ShardedDB::Open(db_options, dbname, &s->db_);
  if (!st.ok()) return st;
  s->stats_->ConfigureShards(s->db_->shard_count());
  *store = std::move(s);
  return Status::OK();
}

Status KvCacheStore::PutImpl(const WriteOptions& options, const Slice& key,
                         const Slice& value) {
  Status s = db_->Put(options, key, value);
  if (s.ok()) kv_cache_.Erase(key);  // invalidate stale row
  return s;
}

Status KvCacheStore::DeleteImpl(const WriteOptions& options, const Slice& key) {
  Status s = db_->Delete(options, key);
  if (s.ok()) kv_cache_.Erase(key);
  return s;
}

Status KvCacheStore::GetImpl(const ReadOptions& options, const Slice& key,
                         PinnableSlice* value) {
  std::string cached;
  if (kv_cache_.Get(key, &cached)) {
    value->PinSelf(Slice(cached));
    return Status::OK();
  }
  Status s = db_->Get(options, key, value);
  if (s.ok()) kv_cache_.Put(key, value->slice());
  return s;
}

Status KvCacheStore::ScanImpl(const ReadOptions& options, const Slice& start,
                          size_t n, std::vector<KvPair>* results) {
  // Scans bypass the row cache entirely.
  return ScanThroughDb(db_.get(), options, start, n, results);
}

void KvCacheStore::MultiGetImpl(const ReadOptions& options,
                                MultiGetBatch* batch) {
  const size_t n = batch->size();
  const Slice* keys = batch->keys();
  PinnableSlice* values = batch->values();
  Status* statuses = batch->statuses();
  std::vector<size_t> miss_idx;
  miss_idx.reserve(n);
  std::string cached;
  for (size_t i = 0; i < n; i++) {
    if (kv_cache_.Get(keys[i], &cached)) {
      values[i].PinSelf(Slice(cached));
      statuses[i] = Status::OK();
    } else {
      miss_idx.push_back(i);
    }
  }
  if (miss_idx.empty()) return;
  std::vector<Slice> miss_keys(miss_idx.size());
  std::vector<PinnableSlice> miss_values(miss_idx.size());
  std::vector<Status> miss_statuses(miss_idx.size());
  for (size_t j = 0; j < miss_idx.size(); j++) {
    miss_keys[j] = keys[miss_idx[j]];
  }
  db_->MultiGet(options, miss_keys.size(), miss_keys.data(),
                miss_values.data(), miss_statuses.data());
  for (size_t j = 0; j < miss_idx.size(); j++) {
    size_t i = miss_idx[j];
    statuses[i] = miss_statuses[j];
    if (statuses[i].ok()) {
      kv_cache_.Put(keys[i], miss_values[j].slice());
      values[i] = std::move(miss_values[j]);
    }
  }
}

CacheStatsSnapshot KvCacheStore::GetCacheStats() const {
  CacheStatsSnapshot snap;
  snap.block_reads = db_->env()->io_stats()->block_reads.load();
  snap.kv_hits = kv_cache_.hits();
  snap.kv_misses = kv_cache_.misses();
  snap.cache_usage = kv_cache_.GetUsage();
  snap.cache_capacity = kv_cache_.GetCapacity();
  return snap;
}

// ---------------------------------------------------------------------------
// RangeCacheStore
// ---------------------------------------------------------------------------

Status RangeCacheStore::Open(size_t cache_budget,
                             std::unique_ptr<EvictionPolicy> policy,
                             const char* name, const lsm::Options& lsm_options,
                             const std::string& dbname,
                             std::unique_ptr<RangeCacheStore>* store) {
  auto s = std::unique_ptr<RangeCacheStore>(
      new RangeCacheStore(cache_budget, std::move(policy), name));
  lsm::Options db_options = lsm_options;
  db_options.block_cache = nullptr;  // the whole budget is the range cache
  Status st = lsm::ShardedDB::Open(db_options, dbname, &s->db_);
  if (!st.ok()) return st;
  s->stats_->ConfigureShards(s->db_->shard_count());
  *store = std::move(s);
  return Status::OK();
}

Status RangeCacheStore::PutImpl(const WriteOptions& options, const Slice& key,
                            const Slice& value) {
  Status s = db_->Put(options, key, value);
  if (s.ok()) range_cache_.InvalidateWrite(key, value);
  return s;
}

Status RangeCacheStore::DeleteImpl(const WriteOptions& options, const Slice& key) {
  Status s = db_->Delete(options, key);
  if (s.ok()) range_cache_.InvalidateDelete(key);
  return s;
}

Status RangeCacheStore::GetImpl(const ReadOptions& options, const Slice& key,
                            PinnableSlice* value) {
  std::string cached;
  if (range_cache_.Get(key, &cached)) {
    value->PinSelf(Slice(cached));
    return Status::OK();
  }
  Status s = db_->Get(options, key, value);
  if (s.ok()) range_cache_.PutPoint(key, value->slice());  // admit everything
  return s;
}

Status RangeCacheStore::ScanImpl(const ReadOptions& options, const Slice& start,
                             size_t n, std::vector<KvPair>* results) {
  if (range_cache_.GetScan(start, n, results)) return Status::OK();
  Status s = ScanThroughDb(db_.get(), options, start, n, results);
  if (s.ok() && !results->empty()) {
    range_cache_.PutScan(start, *results, results->size());  // all-or-nothing
  }
  return s;
}

void RangeCacheStore::MultiGetImpl(const ReadOptions& options,
                                   MultiGetBatch* batch) {
  const size_t n = batch->size();
  const Slice* keys = batch->keys();
  PinnableSlice* values = batch->values();
  Status* statuses = batch->statuses();
  std::vector<size_t> miss_idx;
  miss_idx.reserve(n);
  std::string cached;
  for (size_t i = 0; i < n; i++) {
    if (range_cache_.Get(keys[i], &cached)) {
      values[i].PinSelf(Slice(cached));
      statuses[i] = Status::OK();
    } else {
      miss_idx.push_back(i);
    }
  }
  if (miss_idx.empty()) return;
  std::vector<Slice> miss_keys(miss_idx.size());
  std::vector<PinnableSlice> miss_values(miss_idx.size());
  std::vector<Status> miss_statuses(miss_idx.size());
  for (size_t j = 0; j < miss_idx.size(); j++) {
    miss_keys[j] = keys[miss_idx[j]];
  }
  db_->MultiGet(options, miss_keys.size(), miss_keys.data(),
                miss_values.data(), miss_statuses.data());
  for (size_t j = 0; j < miss_idx.size(); j++) {
    size_t i = miss_idx[j];
    statuses[i] = miss_statuses[j];
    if (statuses[i].ok()) {
      range_cache_.PutPoint(keys[i], miss_values[j].slice());
      values[i] = std::move(miss_values[j]);
    }
  }
}

CacheStatsSnapshot RangeCacheStore::GetCacheStats() const {
  CacheStatsSnapshot snap;
  snap.block_reads = db_->env()->io_stats()->block_reads.load();
  snap.range_hits = range_cache_.hits();
  snap.range_misses = range_cache_.misses();
  snap.cache_usage = range_cache_.GetUsage();
  snap.cache_capacity = range_cache_.GetCapacity();
  return snap;
}

}  // namespace adcache::core
