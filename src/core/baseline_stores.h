#ifndef ADCACHE_CORE_BASELINE_STORES_H_
#define ADCACHE_CORE_BASELINE_STORES_H_

#include <memory>
#include <string>
#include <vector>

#include "cache/kv_cache.h"
#include "cache/range_cache.h"
#include "core/kv_store.h"
#include "lsm/sharded_db.h"

namespace adcache::core {

/// RocksDB's default strategy: the whole budget is a block cache
/// (paper baseline "RocksDB (Block Cache)").
class BlockOnlyStore : public KvStore {
 public:
  static Status Open(size_t cache_budget, const lsm::Options& lsm_options,
                     const std::string& dbname,
                     std::unique_ptr<BlockOnlyStore>* store,
                     const char* name = "block");

  CacheStatsSnapshot GetCacheStats() const override;
  lsm::ShardedDB* db() override { return db_.get(); }
  const char* Name() const override { return name_; }

 protected:
  Status PutImpl(const WriteOptions& options, const Slice& key,
                 const Slice& value) override;
  Status DeleteImpl(const WriteOptions& options, const Slice& key) override;
  Status GetImpl(const ReadOptions& options, const Slice& key,
                 PinnableSlice* value) override;
  Status ScanImpl(const ReadOptions& options, const Slice& start, size_t n,
                  std::vector<KvPair>* results) override;
  void MultiGetImpl(const ReadOptions& options, MultiGetBatch* batch) override;

 private:
  explicit BlockOnlyStore(const char* name) : name_(name) {}

  const char* name_;
  std::shared_ptr<Cache> block_cache_;
  std::unique_ptr<lsm::ShardedDB> db_;
};

/// Row-cache baseline: the budget is a key-value cache serving point
/// lookups only; scans bypass it and there is no block cache
/// (paper baseline "KV Cache").
class KvCacheStore : public KvStore {
 public:
  static Status Open(size_t cache_budget, const lsm::Options& lsm_options,
                     const std::string& dbname,
                     std::unique_ptr<KvCacheStore>* store);

  CacheStatsSnapshot GetCacheStats() const override;
  lsm::ShardedDB* db() override { return db_.get(); }
  const char* Name() const override { return "kv"; }

 protected:
  Status PutImpl(const WriteOptions& options, const Slice& key,
                 const Slice& value) override;
  Status DeleteImpl(const WriteOptions& options, const Slice& key) override;
  Status GetImpl(const ReadOptions& options, const Slice& key,
                 PinnableSlice* value) override;
  Status ScanImpl(const ReadOptions& options, const Slice& start, size_t n,
                  std::vector<KvPair>* results) override;
  void MultiGetImpl(const ReadOptions& options, MultiGetBatch* batch) override;

 private:
  explicit KvCacheStore(size_t cache_budget) : kv_cache_(cache_budget) {}

  KvCache kv_cache_;
  std::unique_ptr<lsm::ShardedDB> db_;
};

/// Result-based baseline: the budget is a Range Cache with a pluggable
/// eviction policy; every point and scan result is admitted in full
/// (paper baselines "Range Cache", "+LeCaR", "+Cacheus").
class RangeCacheStore : public KvStore {
 public:
  static Status Open(size_t cache_budget,
                     std::unique_ptr<EvictionPolicy> policy,
                     const char* name, const lsm::Options& lsm_options,
                     const std::string& dbname,
                     std::unique_ptr<RangeCacheStore>* store);

  CacheStatsSnapshot GetCacheStats() const override;
  lsm::ShardedDB* db() override { return db_.get(); }
  const char* Name() const override { return name_; }

  RangeCache* range_cache() { return &range_cache_; }

 protected:
  Status PutImpl(const WriteOptions& options, const Slice& key,
                 const Slice& value) override;
  Status DeleteImpl(const WriteOptions& options, const Slice& key) override;
  Status GetImpl(const ReadOptions& options, const Slice& key,
                 PinnableSlice* value) override;
  Status ScanImpl(const ReadOptions& options, const Slice& start, size_t n,
                  std::vector<KvPair>* results) override;
  void MultiGetImpl(const ReadOptions& options, MultiGetBatch* batch) override;

 private:
  RangeCacheStore(size_t cache_budget, std::unique_ptr<EvictionPolicy> policy,
                  const char* name)
      : range_cache_(cache_budget, std::move(policy)), name_(name) {}

  RangeCache range_cache_;
  const char* name_;
  std::unique_ptr<lsm::ShardedDB> db_;
};

}  // namespace adcache::core

#endif  // ADCACHE_CORE_BASELINE_STORES_H_
