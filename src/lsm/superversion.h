#ifndef ADCACHE_LSM_SUPERVERSION_H_
#define ADCACHE_LSM_SUPERVERSION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "lsm/memtable.h"
#include "lsm/version.h"

namespace adcache::lsm {

/// An immutable bundle of the DB's entire read state — the active memtable,
/// the immutable memtables awaiting flush, and the current SSTable Version —
/// behind ONE reference count (RocksDB-style). A reader pins the whole view
/// with a single atomic increment instead of taking the DB mutex and
/// ref-ing each memtable individually; flushes/compactions install a fresh
/// SuperVersion and the old one dies when its last reader releases it.
///
/// Lifetime: created and installed by the DB under its mutex; Ref/Unref and
/// Cleanup are safe from any thread without the mutex (memtable refcounts
/// are atomic and self-deleting, the Version is a shared_ptr), which is what
/// lets thread-exit handlers and iterators release a SuperVersion wherever
/// they happen to run.
struct SuperVersion {
  /// Live memtables, newest first: the active memtable, then immutables in
  /// reverse flush order. Each holds a reference taken by Init.
  std::vector<MemTable*> mems;
  std::shared_ptr<const Version> version;
  /// Generation stamp: equals DB::super_version_number_ while this is the
  /// currently installed SuperVersion; readers use it to detect stale
  /// thread-local copies without locking.
  uint64_t version_number = 0;

  SuperVersion() = default;
  SuperVersion(const SuperVersion&) = delete;
  SuperVersion& operator=(const SuperVersion&) = delete;

  /// Captures (and references) the read state. `imm` is the DB's immutable
  /// list, oldest first — stored here newest first so readers scan in
  /// recency order. Caller holds the DB mutex.
  void Init(MemTable* mem, const std::vector<MemTable*>& imm,
            std::shared_ptr<const Version> v) {
    mems.clear();
    mems.reserve(imm.size() + 1);
    mems.push_back(mem);
    for (auto it = imm.rbegin(); it != imm.rend(); ++it) mems.push_back(*it);
    for (MemTable* m : mems) m->Ref();
    version = std::move(v);
  }

  SuperVersion* Ref() {
    refs_.fetch_add(1, std::memory_order_relaxed);
    return this;
  }

  /// Drops one reference; returns true if it was the last, in which case
  /// the caller must Cleanup() and delete.
  bool Unref() { return refs_.fetch_sub(1, std::memory_order_acq_rel) == 1; }

  /// Releases the referenced memtables and version. Only after Unref()
  /// returned true; safe without the DB mutex.
  void Cleanup() {
    for (MemTable* m : mems) m->Unref();
    mems.clear();
    version.reset();
  }

  /// Thread-local slot markers (see DB::GetAndRefSuperVersion): the slot is
  /// being borrowed by an in-flight read / was invalidated by an install.
  static void* const kSVInUse;
  static void* const kSVObsolete;

 private:
  std::atomic<uint32_t> refs_{0};
};

/// Drops a plain reference, destroying the SuperVersion if it was the last.
inline void UnrefSuperVersion(SuperVersion* sv) {
  if (sv != nullptr && sv->Unref()) {
    sv->Cleanup();
    delete sv;
  }
}

}  // namespace adcache::lsm

#endif  // ADCACHE_LSM_SUPERVERSION_H_
