#include "lsm/bloom.h"

#include <algorithm>

#include "util/hash.h"

namespace adcache::lsm {

namespace {
uint32_t BloomHash(const Slice& key) {
  return Hash(key.data(), key.size(), 0xbc9f1d34);
}
}  // namespace

BloomFilterBuilder::BloomFilterBuilder(int bits_per_key)
    : bits_per_key_(bits_per_key) {
  // k = ln(2) * bits/key rounded, clamped to [1, 30].
  num_probes_ = static_cast<int>(bits_per_key * 0.69);
  num_probes_ = std::clamp(num_probes_, 1, 30);
}

void BloomFilterBuilder::AddKey(const Slice& key) {
  key_hashes_.push_back(BloomHash(key));
}

std::string BloomFilterBuilder::Finish() {
  size_t n = key_hashes_.size();
  size_t bits = std::max<size_t>(64, n * static_cast<size_t>(bits_per_key_));
  size_t bytes = (bits + 7) / 8;
  bits = bytes * 8;

  std::string result(bytes, '\0');
  result.push_back(static_cast<char>(num_probes_));
  char* array = result.data();
  for (uint32_t h : key_hashes_) {
    const uint32_t delta = (h >> 17) | (h << 15);  // double hashing
    for (int j = 0; j < num_probes_; j++) {
      const uint32_t bitpos = h % static_cast<uint32_t>(bits);
      array[bitpos / 8] |= static_cast<char>(1 << (bitpos % 8));
      h += delta;
    }
  }
  key_hashes_.clear();
  return result;
}

bool BloomFilterReader::KeyMayMatch(const Slice& key) const {
  if (data_.size() < 2) return true;  // malformed: err on the safe side
  const size_t bits = (data_.size() - 1) * 8;
  const int k = data_[data_.size() - 1];
  if (k > 30 || k < 1) return true;

  uint32_t h = BloomHash(key);
  const uint32_t delta = (h >> 17) | (h << 15);
  for (int j = 0; j < k; j++) {
    const uint32_t bitpos = h % static_cast<uint32_t>(bits);
    if ((data_[bitpos / 8] & (1 << (bitpos % 8))) == 0) return false;
    h += delta;
  }
  return true;
}

void BloomFilterReader::KeyMayMatch(size_t n, const Slice* keys,
                                    bool* may_match) const {
  if (data_.size() < 2) {
    std::fill(may_match, may_match + n, true);
    return;
  }
  const size_t bits = (data_.size() - 1) * 8;
  const int k = data_[data_.size() - 1];
  if (k > 30 || k < 1) {
    std::fill(may_match, may_match + n, true);
    return;
  }
  for (size_t i = 0; i < n; i++) {
    uint32_t h = BloomHash(keys[i]);
    const uint32_t delta = (h >> 17) | (h << 15);
    bool match = true;
    for (int j = 0; j < k; j++) {
      const uint32_t bitpos = h % static_cast<uint32_t>(bits);
      if ((data_[bitpos / 8] & (1 << (bitpos % 8))) == 0) {
        match = false;
        break;
      }
      h += delta;
    }
    may_match[i] = match;
  }
}

}  // namespace adcache::lsm
