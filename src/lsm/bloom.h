#ifndef ADCACHE_LSM_BLOOM_H_
#define ADCACHE_LSM_BLOOM_H_

#include <string>
#include <vector>

#include "util/slice.h"

namespace adcache::lsm {

/// Double-hashing bloom filter over user keys, one filter per SSTable.
/// With 10 bits/key (the paper's setting) the false-positive rate is ~1%.
class BloomFilterBuilder {
 public:
  explicit BloomFilterBuilder(int bits_per_key);

  void AddKey(const Slice& key);
  /// Serialises the filter for `keys added so far` and resets the builder.
  std::string Finish();

 private:
  int bits_per_key_;
  int num_probes_;
  std::vector<uint32_t> key_hashes_;
};

/// Reader over a serialised filter (zero-copy; `data` must outlive it).
class BloomFilterReader {
 public:
  explicit BloomFilterReader(const Slice& data) : data_(data) {}

  bool KeyMayMatch(const Slice& key) const;

  /// Batched probe: may_match[i] = KeyMayMatch(keys[i]). Decodes the filter
  /// layout once for the whole batch (MultiGet probes every batch key
  /// against a table's filter before touching its index).
  void KeyMayMatch(size_t n, const Slice* keys, bool* may_match) const;

 private:
  Slice data_;
};

}  // namespace adcache::lsm

#endif  // ADCACHE_LSM_BLOOM_H_
