#ifndef ADCACHE_LSM_DB_H_
#define ADCACHE_LSM_DB_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "lsm/dbformat.h"
#include "lsm/iterator.h"
#include "lsm/log_writer.h"
#include "lsm/memtable.h"
#include "lsm/options.h"
#include "lsm/version.h"
#include "lsm/write_batch.h"
#include "util/env.h"

namespace adcache::lsm {

/// An opaque read snapshot: reads through it see exactly the writes that
/// were committed when it was taken. Obtain via DB::GetSnapshot.
class Snapshot {
 public:
  SequenceNumber sequence() const { return sequence_; }

 private:
  friend class DB;
  explicit Snapshot(SequenceNumber sequence) : sequence_(sequence) {}
  SequenceNumber sequence_;
};

/// A leveled LSM-tree key-value store: memtable + WAL + leveled SSTables
/// with synchronous flush/compaction in the writer's thread. Reads (Get and
/// iterators) are safe from any number of threads concurrently with a
/// writer; writers serialise among themselves internally.
///
/// Iterators returned by NewIterator expose *user* keys, deduplicated and
/// tombstone-free, at the snapshot taken when the iterator was created.
class DB {
 public:
  /// Shape statistics consumed by AdCache's I/O estimator (paper Table 1).
  struct LsmShape {
    int num_levels_nonempty = 0;  // L
    int l0_files = 0;             // current r0
    int sorted_runs = 0;          // r
    uint64_t compaction_count = 0;
    uint64_t flush_count = 0;
    /// Blocks re-read into the block cache by Leaper-style prefetching.
    uint64_t prefetched_blocks = 0;
    std::vector<int> files_per_level;
    /// Average entries per data block (paper's B), from table metadata.
    double entries_per_block = 0;
  };

  static Status Open(const Options& options, const std::string& dbname,
                     std::unique_ptr<DB>* dbptr);

  DB(const DB&) = delete;
  DB& operator=(const DB&) = delete;
  ~DB();

  Status Put(const WriteOptions& write_options, const Slice& key,
             const Slice& value);
  Status Delete(const WriteOptions& write_options, const Slice& key);
  /// Applies all updates in `batch` atomically (one WAL record).
  Status Write(const WriteOptions& write_options, const WriteBatch& batch);
  Status Get(const ReadOptions& read_options, const Slice& key,
             std::string* value);

  /// Pins the current state for repeatable reads; release when done.
  /// Compactions preserve entries visible to any live snapshot.
  const Snapshot* GetSnapshot();
  void ReleaseSnapshot(const Snapshot* snapshot);

  /// Caller deletes. See class comment for semantics.
  Iterator* NewIterator(const ReadOptions& read_options);

  LsmShape GetLsmShape() const;
  Env* env() const { return env_; }
  const Options& options() const { return options_; }

  /// Forces a memtable flush (testing / benchmarks).
  Status FlushMemTable();
  /// Runs compactions until no level is over threshold (testing).
  Status CompactAll();

 private:
  DB(const Options& options, std::string dbname, Env* env);

  Status Recover();
  Status WriteManifestSnapshot();
  Status ReplayWal(uint64_t wal_number);
  Status NewWal();
  /// Oldest sequence any live snapshot can see (last_sequence_ if none).
  SequenceNumber SmallestLiveSnapshot() const;
  Status FlushMemTableLocked();  // requires write_mutex_
  Status OpenTable(uint64_t number, uint64_t* file_size,
                   std::shared_ptr<Table>* table);
  /// Runs one compaction if any level is over threshold; true if ran.
  bool MaybeCompactOnce(Status* s);
  /// Universal-style merge of similar-sized L0 runs; true if ran.
  bool UniversalCompactOnce(Status* s);
  uint64_t MaxBytesForLevel(int level) const;
  bool IsBaseLevelForKey(const Version& v, int output_level,
                         const Slice& user_key) const;

  Options options_;
  std::string dbname_;
  Env* env_;

  /// Serialises writers (Put/Delete/flush/compaction).
  std::mutex write_mutex_;
  /// Protects the fields below (held briefly).
  mutable std::mutex mutex_;
  MemTable* mem_ = nullptr;  // guarded by mutex_ for pointer swap
  std::shared_ptr<const Version> current_;
  std::atomic<SequenceNumber> last_sequence_{0};
  uint64_t next_file_number_ = 1;
  uint64_t wal_number_ = 0;

  std::multiset<SequenceNumber> snapshots_;  // guarded by mutex_

  std::unique_ptr<LogWriter> wal_;
  std::atomic<uint64_t> compaction_count_{0};
  std::atomic<uint64_t> flush_count_{0};
  std::atomic<uint64_t> prefetched_blocks_{0};
  std::vector<size_t> compact_pointer_;  // round-robin pick per level

  // Aggregate table-format telemetry for entries_per_block.
  std::atomic<uint64_t> total_table_entries_{0};
  std::atomic<uint64_t> total_table_blocks_{0};
};

}  // namespace adcache::lsm

#endif  // ADCACHE_LSM_DB_H_
