#ifndef ADCACHE_LSM_DB_H_
#define ADCACHE_LSM_DB_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "lsm/dbformat.h"
#include "lsm/iterator.h"
#include "lsm/log_writer.h"
#include "lsm/memtable.h"
#include "lsm/options.h"
#include "lsm/superversion.h"
#include "lsm/version.h"
#include "lsm/write_batch.h"
#include "util/env.h"
#include "util/pinnable_slice.h"
#include "util/thread_local_ptr.h"
#include "util/thread_pool.h"

namespace adcache::lsm {

/// An opaque read snapshot: reads through it see exactly the writes that
/// were committed when it was taken. Obtain via DB::GetSnapshot.
class Snapshot {
 public:
  SequenceNumber sequence() const { return sequence_; }

 private:
  friend class DB;
  explicit Snapshot(SequenceNumber sequence) : sequence_(sequence) {}
  SequenceNumber sequence_;
};

/// A leveled LSM-tree key-value store: memtable + WAL + leveled SSTables
/// with an asynchronous, RocksDB-style write path. Writers group-commit
/// (the queue leader writes one combined WAL record and syncs once for the
/// whole group); a full memtable is swapped for a fresh one and flushed by
/// a background thread pool, which also runs compactions. Writers apply
/// bounded backpressure (slowdown, then stop) instead of performing
/// maintenance inline. See DESIGN.md "Threading model".
///
/// Reads (Get and iterators) are safe from any number of threads
/// concurrently with writers and background maintenance, and acquire their
/// view without touching mutex_: the whole read state (active memtable,
/// immutable memtables, current Version) lives in a refcounted SuperVersion
/// installed atomically on every state change, and each thread caches a
/// referenced copy in a thread-local slot (see DESIGN.md "Read path").
///
/// Iterators returned by NewIterator expose *user* keys, deduplicated and
/// tombstone-free, at the snapshot taken when the iterator was created.
/// The process-wide POSIX env used whenever Options::env is null.
Env* DefaultDbEnv();

class DB {
 public:
  /// Shape statistics consumed by AdCache's I/O estimator (paper Table 1).
  struct LsmShape {
    int num_levels_nonempty = 0;  // L
    int l0_files = 0;             // current r0
    int sorted_runs = 0;          // r
    int imm_memtables = 0;        // immutable memtables awaiting flush
    uint64_t compaction_count = 0;
    uint64_t flush_count = 0;
    /// Blocks re-read into the block cache by Leaper-style prefetching.
    uint64_t prefetched_blocks = 0;
    std::vector<int> files_per_level;
    /// Average entries per data block (paper's B), from table metadata.
    double entries_per_block = 0;
    /// Live-tree bloom telemetry, aggregated over the current version's
    /// tables: total entries, total pinned filter bytes, and the
    /// entry-weighted average bits/key the filters were built with (the
    /// tree mixes thresholds once bits become dynamic). 0 when empty.
    uint64_t live_entries = 0;
    uint64_t filter_bytes = 0;
    double avg_bloom_bits_per_key = 0;
  };

  /// Cumulative background-maintenance and write-path counters. All fields
  /// are monotonic; consumers (StatsCollector) difference them per window.
  struct MaintenanceStats {
    uint64_t flushes = 0;
    uint64_t compactions = 0;
    /// Leader-led commits (each wrote one WAL record for >= 1 batches).
    uint64_t write_groups = 0;
    /// Batches committed through those groups.
    uint64_t grouped_writes = 0;
    uint64_t wal_syncs = 0;
    /// Wall microseconds writers spent blocked on stop-stalls.
    uint64_t stall_micros = 0;
    /// Writes delayed once by the L0 slowdown trigger.
    uint64_t slowdown_writes = 0;
    /// Subrange merge jobs run by compactions (== compactions when serial;
    /// up to max_subcompactions times larger when parallel).
    uint64_t subcompactions = 0;
    /// Input bytes consumed / output bytes produced by compactions, for
    /// drain-throughput accounting without a Statistics registry.
    uint64_t compact_read_bytes = 0;
    uint64_t compact_write_bytes = 0;
  };

  static Status Open(const Options& options, const std::string& dbname,
                     std::unique_ptr<DB>* dbptr);

  DB(const DB&) = delete;
  DB& operator=(const DB&) = delete;
  ~DB();

  /// Drains in-flight background maintenance and stops the pool. Further
  /// writes fail; reads of already-committed data keep working. Idempotent;
  /// the destructor calls it. Returns any pending background error.
  Status Close();

  Status Put(const WriteOptions& write_options, const Slice& key,
             const Slice& value);
  Status Delete(const WriteOptions& write_options, const Slice& key);
  /// Applies all updates in `batch` atomically (one WAL record; the record
  /// may carry additional concurrently queued batches — group commit).
  Status Write(const WriteOptions& write_options, const WriteBatch& batch);
  Status Get(const ReadOptions& read_options, const Slice& key,
             std::string* value);
  /// Zero-copy variant: on a block-cache or memtable hit, `value` pins the
  /// underlying bytes (cache handle / SuperVersion) instead of copying them.
  Status Get(const ReadOptions& read_options, const Slice& key,
             PinnableSlice* value);
  /// Batched point lookups (RocksDB-style MultiGet): for each keys[i] sets
  /// statuses[i] to OK or NotFound and, on OK, fills values[i] with the
  /// same pinning semantics as the pinnable Get. The whole batch shares ONE
  /// SuperVersion acquisition and one snapshot; keys are sorted internally
  /// so duplicate keys resolve once, each SST file is consulted once for
  /// its run of keys, and keys in the same data block share one block-cache
  /// lookup or storage read. See DESIGN.md "Batched reads".
  void MultiGet(const ReadOptions& read_options, size_t n, const Slice* keys,
                PinnableSlice* values, Status* statuses);

  /// Pins the current state for repeatable reads; release when done.
  /// Compactions preserve entries visible to any live snapshot.
  const Snapshot* GetSnapshot();
  void ReleaseSnapshot(const Snapshot* snapshot);

  /// Caller deletes. See class comment for semantics.
  Iterator* NewIterator(const ReadOptions& read_options);

  LsmShape GetLsmShape() const;
  MaintenanceStats GetMaintenanceStats() const;
  Env* env() const { return env_; }
  const Options& options() const { return options_; }

  /// Retargets the write-buffer (memtable) budget at runtime. Shrinking
  /// below the active memtable's current fill queues an early rotation
  /// through the writer queue (group-commit safe) so the budget takes
  /// effect now rather than at the next natural switch; the rotation is
  /// skipped while the immutable list is full (it would stall the caller —
  /// typically the RL controller thread). Floored at 64 KiB.
  void SetWriteBufferSize(size_t bytes);
  size_t write_buffer_size() const {
    return write_buffer_size_.load(std::memory_order_relaxed);
  }
  /// Bytes currently held by the active + immutable memtables.
  size_t WriteBufferUsage() const;

  /// Retargets the bloom bits/key applied to tables built by future
  /// flushes/compactions. Existing tables keep their filters (each table
  /// records its own bits; see table_format.h). Clamped to [0, 32].
  void SetBloomBitsPerKey(int bits_per_key);
  int bloom_bits_per_key() const {
    return bloom_bits_per_key_.load(std::memory_order_relaxed);
  }

  /// Forces a memtable flush and waits for background maintenance
  /// (flushes + cascading compactions) to quiesce (testing / benchmarks).
  Status FlushMemTable();
  /// Waits until no level is over its compaction threshold (testing).
  Status CompactAll();

  /// The maintenance pool this DB schedules on: the injected
  /// Options::background_pool when sharded, else its private pool.
  util::ThreadPool* background_pool() const { return bg_pool_.get(); }

 private:
  /// One queued write. The queue leader commits a whole group and signals
  /// the followers; see DB::WriteImpl.
  struct Writer {
    Writer(const WriteBatch* b, bool s, bool dw)
        : batch(b), sync(s), disable_wal(dw) {}
    const WriteBatch* batch;  // nullptr => memtable-switch request
    bool sync;
    bool disable_wal;
    bool done = false;
    Status status;
    std::condition_variable cv;
  };

  DB(const Options& options, std::string dbname, Env* env);

  Status Recover();
  Status WriteManifestSnapshot();
  Status ReplayWal(uint64_t wal_number);
  /// Opens a fresh WAL file and records it as live. Requires mutex_.
  Status NewWalLocked();

  /// Oldest sequence any live snapshot can see (last_sequence_ if none).
  SequenceNumber SmallestLiveSnapshot() const;
  Status OpenTable(uint64_t number, uint64_t* file_size,
                   std::shared_ptr<Table>* table);

  // --- write path (leader/follower group commit) ---------------------------
  /// batch == nullptr forces a memtable switch (used by FlushMemTable).
  Status WriteImpl(const WriteOptions& write_options, const WriteBatch* batch);
  /// Requires mutex_ (leader only). Stalls / switches memtables until the
  /// active memtable can accept a write. `force` switches regardless of fill.
  Status MakeRoomForWrite(std::unique_lock<std::mutex>* l, bool force);
  /// Requires mutex_ (leader only). Moves mem_ to the immutable list, opens
  /// a fresh WAL and memtable, and schedules a background flush.
  Status SwitchMemTableLocked();
  /// Requires mutex_. Gathers the leader's group from the writer queue.
  std::vector<Writer*> BuildWriteGroup(Writer* leader);

  // --- background maintenance ----------------------------------------------
  /// Requires mutex_. Schedules flush and/or compaction jobs if work is
  /// pending. With Options::overlap_flush_compaction, flush and compaction
  /// are scheduled independently (flush on the pool's high-priority queue)
  /// and may run concurrently in this DB; otherwise one legacy single-flight
  /// job runs flush OR compaction.
  void MaybeScheduleMaintenance();
  /// Legacy single-flight job: flush if possible, else one compaction.
  void BackgroundCall();
  /// Overlapped-mode jobs: one drains the oldest immutable memtable, the
  /// other runs one compaction; each re-schedules itself while work remains.
  void BackgroundFlushCall();
  void BackgroundCompactCall();
  /// True while any background job (flush or compaction) is in flight.
  /// Requires mutex_.
  bool BackgroundWorkScheduled() const {
    return bg_flush_scheduled_ || bg_compact_scheduled_;
  }
  /// Flushes the oldest immutable memtable to a new L0 file. Called on the
  /// background thread with mutex_ held; drops it during I/O.
  Status FlushOldestImm(std::unique_lock<std::mutex>* l);
  /// True if `v` is over any compaction trigger.
  bool VersionNeedsCompaction(const Version& v) const;
  /// Runs one compaction if any level is over threshold; true if ran.
  bool MaybeCompactOnce(Status* s);
  /// Universal-style merge of similar-sized L0 runs; true if ran.
  bool UniversalCompactOnce(Status* s);

  // --- parallel subcompactions ---------------------------------------------
  /// Shared state of one compaction's subrange merges (defined in db.cc).
  struct CompactionMergeJob;
  /// Merges `job`'s inputs into output files, splitting the key range into
  /// job->ranges and running subranges concurrently on bg_pool_ (the calling
  /// thread claims subranges too, so progress never depends on pool
  /// capacity). On success fills job->results; on any failure deletes every
  /// temp SST the job created and returns the first error with no version
  /// edit performed.
  Status RunCompactionMerge(const std::shared_ptr<CompactionMergeJob>& job);
  /// Claims and runs subranges from `job` until none remain or a sibling
  /// failed.
  void ProcessSubcompactions(CompactionMergeJob* job);
  /// Runs one subrange merge -> build, recording its outputs in
  /// job->results[index].
  Status RunOneSubcompaction(CompactionMergeJob* job, size_t index);

  /// Deletes WAL files strictly older than every live memtable's WAL.
  void RemoveObsoleteWals();

  uint64_t MaxBytesForLevel(int level) const;
  bool IsBaseLevelForKey(const Version& v, int output_level,
                         const Slice& user_key) const;

  /// Invokes `fn(listener)` for every registered Options::listeners entry.
  /// Listeners run synchronously on the calling thread; see the threading
  /// contract in core/event_listener.h.
  template <typename Fn>
  void NotifyListeners(Fn&& fn) {
    for (const auto& listener : options_.listeners) {
      fn(listener.get());
    }
  }
  /// Requires mutex_. Fires OnWriteStallChange when the write-throttling
  /// state actually changes (listeners run with mutex_ held).
  void SetStallConditionLocked(core::WriteStallCondition condition);

  // --- read state (SuperVersion) -------------------------------------------
  /// Requires mutex_. Captures {mem_, imm_, current_} into a fresh
  /// SuperVersion, publishes it as super_version_, bumps the generation
  /// counter, and invalidates every thread-local cached copy. Called on
  /// every read-state change: open, memtable switch, flush, compaction.
  void InstallSuperVersionLocked();
  /// Lock-free acquisition of the current read state: reuses this thread's
  /// cached SuperVersion when its generation is current, otherwise refreshes
  /// under mutex_. Never returns nullptr. Balance with
  /// ReturnAndCleanupSuperVersion.
  SuperVersion* GetAndRefSuperVersion();
  /// Returns a SuperVersion from GetAndRefSuperVersion: re-parks it in the
  /// thread-local slot when still current, else drops the reference.
  void ReturnAndCleanupSuperVersion(SuperVersion* sv);
  /// Read-path entry points honoring Options::mutex_read_snapshot (the
  /// benchmark baseline that reproduces the old mutex + per-memtable-ref
  /// snapshot); the default routes to the lock-free pair above.
  SuperVersion* AcquireReadState(SequenceNumber* seq);
  void ReleaseReadState(SuperVersion* sv);
  /// Thread-exit handler for local_sv_: drops the ref parked in the slot.
  static void SuperVersionUnrefHandler(void* ptr);
  /// Shared lookup body for both Get overloads: runs against an acquired
  /// SuperVersion; takes an extra sv->Ref() for memtable-pinned results.
  /// `snapshot` must have been read before `sv` was acquired (see DB::Get).
  Status GetImpl(const ReadOptions& read_options, const Slice& key,
                 SequenceNumber snapshot, SuperVersion* sv,
                 PinnableSlice* value);

  Options options_;
  std::string dbname_;
  Env* env_;

  /// Protects all mutable DB state below: the writer queue, memtable
  /// pointers, the current version, file/WAL numbering, snapshots, and
  /// background-scheduling flags. Held briefly; never across file I/O.
  /// Lock hierarchy: mutex_ is a leaf — no other DB lock is acquired while
  /// holding it (the thread pool has its own internal mutex).
  mutable std::mutex mutex_;

  std::deque<Writer*> writers_;  // guarded by mutex_; front is the leader
  MemTable* mem_ = nullptr;      // guarded by mutex_ for pointer swap
  /// Immutable memtables awaiting flush, oldest first. Guarded by mutex_.
  std::vector<MemTable*> imm_;
  std::shared_ptr<const Version> current_;

  /// The installed read state; the DB holds one reference. Written only
  /// under mutex_ (InstallSuperVersionLocked); readers reach it through
  /// their thread-local cache or, on a miss, under mutex_.
  SuperVersion* super_version_ = nullptr;
  /// Generation of super_version_. A reader whose cached SuperVersion
  /// carries this number can use it without any locking; release-stored by
  /// the installer, acquire-loaded by readers.
  std::atomic<uint64_t> super_version_number_{0};
  /// Per-thread cached SuperVersion* (holds one reference while parked).
  /// Slot protocol: a real pointer = parked cached copy; kSVInUse = this
  /// thread's read is borrowing it; kSVObsolete/nullptr = no usable copy.
  std::unique_ptr<util::ThreadLocalPtr> local_sv_;
  std::atomic<SequenceNumber> last_sequence_{0};
  std::atomic<uint64_t> next_file_number_{1};
  uint64_t wal_number_ = 0;            // guarded by mutex_
  std::set<uint64_t> live_wal_files_;  // guarded by mutex_

  std::multiset<SequenceNumber> snapshots_;  // guarded by mutex_

  /// Written only by the current queue leader (a single thread at a time),
  /// swapped under mutex_ by SwitchMemTableLocked.
  std::unique_ptr<LogWriter> wal_;

  // Background maintenance state, guarded by mutex_.
  /// Shared with sibling shards when Options::background_pool was injected
  /// (then Close only drops the reference after draining this DB's job; the
  /// facade joins the pool once every shard is closed); privately owned —
  /// and joined by the reset in Close — otherwise.
  std::shared_ptr<util::ThreadPool> bg_pool_;
  std::condition_variable bg_work_done_cv_;
  /// Flush and compaction are scheduled (and tracked) independently so they
  /// can overlap in one DB; each is individually single-flight. In legacy
  /// (non-overlap) mode only bg_flush_scheduled_ is used, covering the
  /// combined flush-or-compact job.
  bool bg_flush_scheduled_ = false;
  bool bg_compact_scheduled_ = false;
  bool shutting_down_ = false;
  bool closed_ = false;
  /// Serializes manifest rewrites: with flush and compaction overlapped,
  /// both install versions and then write a manifest snapshot. Lock order:
  /// manifest_mutex_ before mutex_, never the reverse.
  std::mutex manifest_mutex_;
  /// Resolved subcompaction fan-out (>= 1) from Options::max_subcompactions
  /// / ADCACHE_SUBCOMPACTIONS / pool size; fixed at Open.
  int max_subcompactions_ = 1;
  /// First error from a background flush/compaction. Surfaced to (and
  /// cleared by) the next writer or manual flush so retries are possible.
  Status bg_error_;

  struct MaintenanceCounters {
    std::atomic<uint64_t> flushes{0};
    std::atomic<uint64_t> compactions{0};
    std::atomic<uint64_t> write_groups{0};
    std::atomic<uint64_t> grouped_writes{0};
    std::atomic<uint64_t> wal_syncs{0};
    std::atomic<uint64_t> stall_micros{0};
    std::atomic<uint64_t> slowdown_writes{0};
    std::atomic<uint64_t> subcompactions{0};
    std::atomic<uint64_t> compact_read_bytes{0};
    std::atomic<uint64_t> compact_write_bytes{0};
  };
  MaintenanceCounters maint_;

  /// Current write-throttling state; guarded by mutex_.
  core::WriteStallCondition stall_condition_ =
      core::WriteStallCondition::kNormal;

  std::atomic<uint64_t> prefetched_blocks_{0};
  /// Round-robin pick per level; touched only by the (single-flight)
  /// compaction job — compactions stay one-at-a-time per DB even when
  /// overlapped with flushes and split into subcompactions.
  std::vector<size_t> compact_pointer_;

  // Aggregate table-format telemetry for entries_per_block.
  std::atomic<uint64_t> total_table_entries_{0};
  std::atomic<uint64_t> total_table_blocks_{0};

  /// Dynamic budgets (unified memory wall). Seeded from options_ at open;
  /// retargeted by SetWriteBufferSize / SetBloomBitsPerKey. Read with
  /// relaxed loads on the write path / in flush+compaction jobs.
  std::atomic<size_t> write_buffer_size_;
  std::atomic<int> bloom_bits_per_key_;
};

}  // namespace adcache::lsm

#endif  // ADCACHE_LSM_DB_H_
