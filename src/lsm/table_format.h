#ifndef ADCACHE_LSM_TABLE_FORMAT_H_
#define ADCACHE_LSM_TABLE_FORMAT_H_

#include <cstdint>
#include <string>

#include "util/coding.h"
#include "util/slice.h"
#include "util/status.h"

namespace adcache::lsm {

/// Location of a block inside an SSTable file.
struct BlockHandle {
  uint64_t offset = 0;
  uint64_t size = 0;

  void EncodeTo(std::string* dst) const {
    PutVarint64(dst, offset);
    PutVarint64(dst, size);
  }

  Status DecodeFrom(Slice* input) {
    if (GetVarint64(input, &offset) && GetVarint64(input, &size)) {
      return Status::OK();
    }
    return Status::Corruption("bad block handle");
  }
};

/// Fixed-size footer at the end of every SSTable.
///
/// v2 (current writer):
///   filter handle offset/size (fixed64 x2), index handle offset/size
///   (fixed64 x2), entry count (fixed64), bloom bits/key (fixed64),
///   magic v2 (fixed64).
/// v1 (legacy, still readable):
///   same without the bloom-bits field, terminated by the v1 magic.
///
/// The bloom filter block itself is self-describing (the probe count is
/// encoded in the block), so the recorded bits/key is telemetry: it lets
/// the store aggregate a live entry-weighted bloom-bits average across the
/// tree once bits become a dynamic, per-table decision.
struct Footer {
  BlockHandle filter_handle;
  BlockHandle index_handle;
  uint64_t num_entries = 0;
  /// Bits/key threshold this table's filter was built with (0 = none).
  /// Tables written before v2 report 10 when a filter is present.
  uint64_t bloom_bits_per_key = 0;

  static constexpr size_t kEncodedLength = 7 * 8;
  static constexpr size_t kLegacyEncodedLength = 6 * 8;
  static constexpr uint64_t kMagic = 0xadcac4e5517ab1e5ULL;
  static constexpr uint64_t kMagicV2 = 0xadcac4e5517ab1e6ULL;

  void EncodeTo(std::string* dst) const {
    PutFixed64(dst, filter_handle.offset);
    PutFixed64(dst, filter_handle.size);
    PutFixed64(dst, index_handle.offset);
    PutFixed64(dst, index_handle.size);
    PutFixed64(dst, num_entries);
    PutFixed64(dst, bloom_bits_per_key);
    PutFixed64(dst, kMagicV2);
  }

  /// Decodes from the *tail* of `input` (the magic in the last 8 bytes
  /// selects the layout), so callers can pass the last kEncodedLength bytes
  /// of any table regardless of which version wrote it.
  Status DecodeFrom(const Slice& input) {
    if (input.size() < kLegacyEncodedLength) {
      return Status::Corruption("footer too short");
    }
    uint64_t magic = DecodeFixed64(input.data() + input.size() - 8);
    size_t length = 0;
    if (magic == kMagicV2) {
      if (input.size() < kEncodedLength) {
        return Status::Corruption("footer too short");
      }
      length = kEncodedLength;
    } else if (magic == kMagic) {
      length = kLegacyEncodedLength;
    } else {
      return Status::Corruption("bad table magic");
    }
    const char* p = input.data() + input.size() - length;
    filter_handle.offset = DecodeFixed64(p);
    filter_handle.size = DecodeFixed64(p + 8);
    index_handle.offset = DecodeFixed64(p + 16);
    index_handle.size = DecodeFixed64(p + 24);
    num_entries = DecodeFixed64(p + 32);
    bloom_bits_per_key = magic == kMagicV2
                             ? DecodeFixed64(p + 40)
                             : (filter_handle.size > 0 ? 10 : 0);
    return Status::OK();
  }
};

}  // namespace adcache::lsm

#endif  // ADCACHE_LSM_TABLE_FORMAT_H_
