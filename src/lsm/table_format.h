#ifndef ADCACHE_LSM_TABLE_FORMAT_H_
#define ADCACHE_LSM_TABLE_FORMAT_H_

#include <cstdint>
#include <string>

#include "util/coding.h"
#include "util/slice.h"
#include "util/status.h"

namespace adcache::lsm {

/// Location of a block inside an SSTable file.
struct BlockHandle {
  uint64_t offset = 0;
  uint64_t size = 0;

  void EncodeTo(std::string* dst) const {
    PutVarint64(dst, offset);
    PutVarint64(dst, size);
  }

  Status DecodeFrom(Slice* input) {
    if (GetVarint64(input, &offset) && GetVarint64(input, &size)) {
      return Status::OK();
    }
    return Status::Corruption("bad block handle");
  }
};

/// Fixed-size footer at the end of every SSTable:
///   filter handle offset/size (fixed64 x2), index handle offset/size
///   (fixed64 x2), entry count (fixed64), magic (fixed64).
struct Footer {
  BlockHandle filter_handle;
  BlockHandle index_handle;
  uint64_t num_entries = 0;

  static constexpr size_t kEncodedLength = 6 * 8;
  static constexpr uint64_t kMagic = 0xadcac4e5517ab1e5ULL;

  void EncodeTo(std::string* dst) const {
    PutFixed64(dst, filter_handle.offset);
    PutFixed64(dst, filter_handle.size);
    PutFixed64(dst, index_handle.offset);
    PutFixed64(dst, index_handle.size);
    PutFixed64(dst, num_entries);
    PutFixed64(dst, kMagic);
  }

  Status DecodeFrom(const Slice& input) {
    if (input.size() < kEncodedLength) {
      return Status::Corruption("footer too short");
    }
    const char* p = input.data();
    filter_handle.offset = DecodeFixed64(p);
    filter_handle.size = DecodeFixed64(p + 8);
    index_handle.offset = DecodeFixed64(p + 16);
    index_handle.size = DecodeFixed64(p + 24);
    num_entries = DecodeFixed64(p + 32);
    if (DecodeFixed64(p + 40) != kMagic) {
      return Status::Corruption("bad table magic");
    }
    return Status::OK();
  }
};

}  // namespace adcache::lsm

#endif  // ADCACHE_LSM_TABLE_FORMAT_H_
