#include "lsm/table.h"

#include <cassert>

#include "util/coding.h"

namespace adcache::lsm {

namespace {

void DeleteCachedBlock(const Slice& /*key*/, void* value) {
  delete static_cast<Block*>(value);
}

// PinnableSlice cleanups for values pointing into a pinned data block.
void ReleaseCacheHandle(void* arg1, void* arg2) {
  static_cast<Cache*>(arg1)->Release(static_cast<Cache::Handle*>(arg2));
}

void DeleteOwnedBlock(void* arg1, void* /*arg2*/) {
  delete static_cast<Block*>(arg1);
}

// Approximate per-entry block cache bookkeeping cost.
constexpr size_t kBlockCacheEntryOverhead = 64;

}  // namespace

Table::BlockRef& Table::BlockRef::operator=(BlockRef&& o) noexcept {
  if (this != &o) {
    Reset();
    block = o.block;
    cache = o.cache;
    handle = o.handle;
    owned = o.owned;
    status = o.status;
    o.block = nullptr;
    o.cache = nullptr;
    o.handle = nullptr;
    o.owned = nullptr;
  }
  return *this;
}

void Table::BlockRef::Reset() {
  if (cache != nullptr && handle != nullptr) {
    cache->Release(handle);
  }
  delete owned;
  cache = nullptr;
  handle = nullptr;
  block = nullptr;
  owned = nullptr;
}

std::string Table::CacheKey(uint64_t file_number, uint64_t offset) {
  std::string key;
  key.reserve(16);
  PutFixed64(&key, file_number);
  PutFixed64(&key, offset);
  return key;
}

Table::Table(const Options& options, std::unique_ptr<RandomAccessFile> file,
             uint64_t file_number, Env* env)
    : options_(options),
      file_(std::move(file)),
      file_number_(file_number),
      env_(env) {}

Status Table::Open(const Options& options,
                   std::unique_ptr<RandomAccessFile> file,
                   uint64_t file_number, Env* env,
                   std::unique_ptr<Table>* table) {
  uint64_t size = file->Size();
  if (size < Footer::kEncodedLength) {
    return Status::Corruption("file too short to be an sstable");
  }
  std::string footer_space(Footer::kEncodedLength, '\0');
  Slice footer_input;
  Status s = file->Read(size - Footer::kEncodedLength, Footer::kEncodedLength,
                        &footer_input, footer_space.data());
  if (!s.ok()) return s;
  env->io_stats()->meta_block_reads++;

  Footer footer;
  s = footer.DecodeFrom(footer_input);
  if (!s.ok()) return s;

  auto t = std::unique_ptr<Table>(
      new Table(options, std::move(file), file_number, env));
  t->footer_ = footer;

  // Pin the index block.
  std::string index_space(footer.index_handle.size, '\0');
  Slice index_input;
  s = t->file_->Read(footer.index_handle.offset, footer.index_handle.size,
                     &index_input, index_space.data());
  if (!s.ok()) return s;
  if (index_input.size() != footer.index_handle.size) {
    return Status::Corruption("truncated index block");
  }
  env->io_stats()->meta_block_reads++;
  t->index_block_ = std::make_unique<Block>(index_input.ToString());

  // Pin the bloom filter.
  if (footer.filter_handle.size > 0) {
    std::string filter_space(footer.filter_handle.size, '\0');
    Slice filter_input;
    s = t->file_->Read(footer.filter_handle.offset, footer.filter_handle.size,
                       &filter_input, filter_space.data());
    if (!s.ok()) return s;
    env->io_stats()->meta_block_reads++;
    t->filter_data_ = filter_input.ToString();
    t->filter_ = std::make_unique<BloomFilterReader>(Slice(t->filter_data_));
  }

  *table = std::move(t);
  return Status::OK();
}

Table::BlockRef Table::ReadBlock(const ReadOptions& read_options,
                                 const BlockHandle& handle) const {
  BlockRef ref;
  Cache* cache = options_.block_cache.get();
  std::string cache_key;
  if (cache != nullptr) {
    cache_key = CacheKey(file_number_, handle.offset);
    Cache::Handle* h = cache->Lookup(Slice(cache_key));
    if (h != nullptr) {
      ref.cache = cache;
      ref.handle = h;
      ref.block = static_cast<const Block*>(cache->Value(h));
      return ref;
    }
  }

  // Cache miss: read from storage. This is the paper's "SST read".
  std::string contents(handle.size, '\0');
  Slice input;
  Status s = file_->Read(handle.offset, handle.size, &input, contents.data());
  if (read_options.count_block_reads) env_->io_stats()->block_reads++;
  if (!s.ok()) {
    ref.status = s;
    return ref;
  }
  if (input.size() != handle.size) {
    ref.status = Status::Corruption("truncated data block");
    return ref;
  }
  // When the env read into our scratch buffer, hand the bytes to the Block
  // by move; a zero-copy env (mmap-style) returns its own pointer, in which
  // case one copy is unavoidable.
  auto* block = input.data() == contents.data()
                    ? new Block(std::move(contents))
                    : new Block(input.ToString());
  bool may_fill = read_options.fill_block_cache;
  if (may_fill && read_options.fill_block_budget != nullptr) {
    if (*read_options.fill_block_budget == 0) {
      may_fill = false;
    } else {
      (*read_options.fill_block_budget)--;
    }
  }
  if (cache != nullptr && may_fill) {
    Cache::Handle* h =
        cache->Insert(Slice(cache_key), block,
                      block->size() + kBlockCacheEntryOverhead,
                      &DeleteCachedBlock);
    if (h != nullptr) {
      ref.cache = cache;
      ref.handle = h;
      ref.block = block;
      return ref;
    }
  }
  ref.owned = block;
  ref.block = block;
  return ref;
}

Table::LookupResult Table::Get(const ReadOptions& read_options,
                               const Slice& user_key, SequenceNumber snapshot,
                               PinnableSlice* value,
                               SequenceNumber* entry_seq) {
  if (filter_ != nullptr && !filter_->KeyMayMatch(user_key)) {
    return LookupResult::kNotFound;
  }

  std::string lookup_key = MakeLookupKey(user_key, snapshot);
  std::unique_ptr<Iterator> index_iter(index_block_->NewIterator(&icmp_));
  index_iter->Seek(Slice(lookup_key));
  if (!index_iter->Valid()) return LookupResult::kNotFound;

  Slice handle_value = index_iter->value();
  BlockHandle handle;
  if (!handle.DecodeFrom(&handle_value).ok()) return LookupResult::kNotFound;

  BlockRef ref = ReadBlock(read_options, handle);
  if (ref.block == nullptr) return LookupResult::kNotFound;

  std::unique_ptr<Iterator> block_iter(ref.block->NewIterator(&icmp_));
  block_iter->Seek(Slice(lookup_key));
  while (block_iter->Valid()) {
    ParsedInternalKey parsed;
    if (!ParseInternalKey(block_iter->key(), &parsed)) {
      return LookupResult::kNotFound;
    }
    if (parsed.user_key != user_key) return LookupResult::kNotFound;
    if (parsed.sequence <= snapshot) {
      if (entry_seq != nullptr) *entry_seq = parsed.sequence;
      if (parsed.type == kTypeDeletion) return LookupResult::kDeleted;
      // The value bytes live inside the pinned block: detach the pin into
      // the result instead of copying them out.
      Slice v = block_iter->value();
      if (ref.cache != nullptr) {
        value->PinSlice(v, &ReleaseCacheHandle, ref.cache, ref.handle);
        ref.cache = nullptr;
        ref.handle = nullptr;
        ref.block = nullptr;
      } else if (ref.owned != nullptr) {
        value->PinSlice(v, &DeleteOwnedBlock, ref.owned, nullptr);
        ref.owned = nullptr;
        ref.block = nullptr;
      } else {
        value->PinSelf(v);
      }
      return LookupResult::kFound;
    }
    block_iter->Next();  // entry too new for this snapshot; keep looking
  }
  return LookupResult::kNotFound;
}

// ---------------------------------------------------------------------------
// Two-level iterator: index block -> data blocks.
// ---------------------------------------------------------------------------

class Table::Iter : public Iterator {
 public:
  Iter(const Table* table, const ReadOptions& read_options)
      : table_(table),
        read_options_(read_options),
        index_iter_(table->index_block_->NewIterator(&table->icmp_)) {}

  bool Valid() const override {
    return data_iter_ != nullptr && data_iter_->Valid();
  }

  void SeekToFirst() override {
    index_iter_->SeekToFirst();
    InitDataBlock();
    if (data_iter_ != nullptr) data_iter_->SeekToFirst();
    SkipEmptyBlocksForward();
  }

  void SeekToLast() override {
    index_iter_->SeekToLast();
    InitDataBlock();
    if (data_iter_ != nullptr) data_iter_->SeekToLast();
    SkipEmptyBlocksBackward();
  }

  void Seek(const Slice& target) override {
    index_iter_->Seek(target);
    InitDataBlock();
    if (data_iter_ != nullptr) data_iter_->Seek(target);
    SkipEmptyBlocksForward();
  }

  void Next() override {
    assert(Valid());
    data_iter_->Next();
    SkipEmptyBlocksForward();
  }

  void Prev() override {
    assert(Valid());
    data_iter_->Prev();
    SkipEmptyBlocksBackward();
  }

  Slice key() const override { return data_iter_->key(); }
  Slice value() const override { return data_iter_->value(); }
  Status status() const override {
    if (!status_.ok()) return status_;
    if (data_iter_ != nullptr && !data_iter_->status().ok()) {
      return data_iter_->status();
    }
    return index_iter_->status();
  }

 private:
  void InitDataBlock() {
    data_iter_.reset();
    block_ref_.Reset();
    if (!index_iter_->Valid()) return;
    Slice handle_value = index_iter_->value();
    BlockHandle handle;
    Status s = handle.DecodeFrom(&handle_value);
    if (!s.ok()) {
      status_ = s;
      return;
    }
    block_ref_ = table_->ReadBlock(read_options_, handle);
    if (block_ref_.block == nullptr) {
      status_ = block_ref_.status;
      return;
    }
    data_iter_.reset(block_ref_.block->NewIterator(&table_->icmp_));
  }

  void SkipEmptyBlocksForward() {
    while (data_iter_ == nullptr || !data_iter_->Valid()) {
      if (!index_iter_->Valid()) {
        data_iter_.reset();
        return;
      }
      index_iter_->Next();
      InitDataBlock();
      if (data_iter_ != nullptr) data_iter_->SeekToFirst();
    }
  }

  void SkipEmptyBlocksBackward() {
    while (data_iter_ == nullptr || !data_iter_->Valid()) {
      if (!index_iter_->Valid()) {
        data_iter_.reset();
        return;
      }
      index_iter_->Prev();
      InitDataBlock();
      if (data_iter_ != nullptr) data_iter_->SeekToLast();
    }
  }

  const Table* table_;
  ReadOptions read_options_;
  std::unique_ptr<Iterator> index_iter_;
  std::unique_ptr<Iterator> data_iter_;
  BlockRef block_ref_;
  Status status_;
};

Iterator* Table::NewIterator(const ReadOptions& read_options) const {
  return new Iter(this, read_options);
}

std::vector<Table::BlockInfo> Table::GetBlockInfos() const {
  std::vector<BlockInfo> infos;
  std::unique_ptr<Iterator> index_iter(index_block_->NewIterator(&icmp_));
  for (index_iter->SeekToFirst(); index_iter->Valid(); index_iter->Next()) {
    Slice handle_value = index_iter->value();
    BlockHandle handle;
    if (!handle.DecodeFrom(&handle_value).ok()) continue;
    infos.push_back(BlockInfo{index_iter->key().ToString(), handle});
  }
  return infos;
}

bool Table::IsBlockCached(const BlockHandle& handle) const {
  Cache* cache = options_.block_cache.get();
  if (cache == nullptr) return false;
  return cache->Contains(Slice(CacheKey(file_number_, handle.offset)));
}

Status Table::PrefetchBlock(const BlockHandle& handle) {
  ReadOptions prefetch_options;
  prefetch_options.fill_block_cache = true;
  prefetch_options.count_block_reads = false;  // background I/O
  BlockRef ref = ReadBlock(prefetch_options, handle);
  return ref.block != nullptr ? Status::OK() : ref.status;
}

}  // namespace adcache::lsm
