#include "lsm/table.h"

#include <algorithm>
#include <cassert>
#include <optional>

#include "util/coding.h"
#include "util/inline_buffer.h"
#include "util/options_env.h"
#include "util/perf_context.h"

namespace adcache::lsm {

namespace {

void DeleteCachedBlock(const Slice& /*key*/, void* value) {
  delete static_cast<Block*>(value);
}

// PinnableSlice cleanups for values pointing into a pinned data block.
void ReleaseCacheHandle(void* arg1, void* arg2) {
  static_cast<Cache*>(arg1)->Release(static_cast<Cache::Handle*>(arg2));
}

void DeleteOwnedBlock(void* arg1, void* /*arg2*/) {
  delete static_cast<Block*>(arg1);
}

// Approximate per-entry block cache bookkeeping cost.
constexpr size_t kBlockCacheEntryOverhead = 64;

}  // namespace

Table::BlockRef& Table::BlockRef::operator=(BlockRef&& o) noexcept {
  if (this != &o) {
    Reset();
    block = o.block;
    cache = o.cache;
    handle = o.handle;
    owned = o.owned;
    status = o.status;
    o.block = nullptr;
    o.cache = nullptr;
    o.handle = nullptr;
    o.owned = nullptr;
  }
  return *this;
}

void Table::BlockRef::Reset() {
  if (cache != nullptr && handle != nullptr) {
    cache->Release(handle);
  }
  delete owned;
  cache = nullptr;
  handle = nullptr;
  block = nullptr;
  owned = nullptr;
}

std::string Table::CacheKey(uint64_t file_number, uint64_t offset) {
  char buf[kCacheKeySize];
  EncodeCacheKey(file_number, offset, buf);
  return std::string(buf, sizeof(buf));
}

void Table::EncodeCacheKey(uint64_t file_number, uint64_t offset,
                           char (&buf)[kCacheKeySize]) {
  EncodeFixed64(buf, file_number);
  EncodeFixed64(buf + 8, offset);
}

Table::Table(const Options& options, std::unique_ptr<RandomAccessFile> file,
             uint64_t file_number, Env* env)
    : options_(options),
      file_(std::move(file)),
      file_number_(file_number),
      cache_file_id_(CacheFileId(options.shard_id, file_number)),
      env_(env) {}

Status Table::Open(const Options& options,
                   std::unique_ptr<RandomAccessFile> file,
                   uint64_t file_number, Env* env,
                   std::unique_ptr<Table>* table) {
  uint64_t size = file->Size();
  if (size < Footer::kLegacyEncodedLength) {
    return Status::Corruption("file too short to be an sstable");
  }
  // Read enough tail bytes for the larger (v2) footer; DecodeFrom picks the
  // layout from the magic in the last 8 bytes, so short v1 files work too.
  uint64_t footer_len = std::min<uint64_t>(size, Footer::kEncodedLength);
  std::string footer_space(footer_len, '\0');
  Slice footer_input;
  Status s = file->Read(size - footer_len, footer_len, &footer_input,
                        footer_space.data());
  if (!s.ok()) return s;
  env->io_stats()->meta_block_reads++;

  Footer footer;
  s = footer.DecodeFrom(footer_input);
  if (!s.ok()) return s;

  auto t = std::unique_ptr<Table>(
      new Table(options, std::move(file), file_number, env));
  t->footer_ = footer;

  // Pin the index block.
  std::string index_space(footer.index_handle.size, '\0');
  Slice index_input;
  s = t->file_->Read(footer.index_handle.offset, footer.index_handle.size,
                     &index_input, index_space.data());
  if (!s.ok()) return s;
  if (index_input.size() != footer.index_handle.size) {
    return Status::Corruption("truncated index block");
  }
  env->io_stats()->meta_block_reads++;
  t->index_block_ = std::make_unique<Block>(index_input.ToString());

  // Pin the bloom filter.
  if (footer.filter_handle.size > 0) {
    std::string filter_space(footer.filter_handle.size, '\0');
    Slice filter_input;
    s = t->file_->Read(footer.filter_handle.offset, footer.filter_handle.size,
                       &filter_input, filter_space.data());
    if (!s.ok()) return s;
    env->io_stats()->meta_block_reads++;
    t->filter_data_ = filter_input.ToString();
    t->filter_ = std::make_unique<BloomFilterReader>(Slice(t->filter_data_));
  }

  *table = std::move(t);
  return Status::OK();
}

Table::BlockRef Table::ReadBlock(const ReadOptions& read_options,
                                 const BlockHandle& handle) const {
  Cache* cache = options_.block_cache.get();
  char key_buf[kCacheKeySize];
  Slice cache_key;
  if (cache != nullptr) {
    EncodeCacheKey(cache_file_id_, handle.offset, key_buf);
    cache_key = Slice(key_buf, sizeof(key_buf));
    Cache::Handle* h = cache->Lookup(cache_key);
    if (h != nullptr) {
      ADCACHE_PERF_COUNTER_ADD(block_cache_hit_count, 1);
      BlockRef ref;
      ref.cache = cache;
      ref.handle = h;
      ref.block = static_cast<const Block*>(cache->Value(h));
      return ref;
    }
    ADCACHE_PERF_COUNTER_ADD(block_cache_miss_count, 1);
  }
  return ReadBlockMiss(read_options, handle, cache_key);
}

Table::BlockRef Table::ReadBlockMiss(const ReadOptions& read_options,
                                     const BlockHandle& handle,
                                     Slice cache_key) const {
  BlockRef ref;
  Cache* cache = options_.block_cache.get();

  // DRAM missed; probe the flash-backed secondary tier before storage. A
  // hit skips the SST read entirely (and the block_reads tick — the
  // h_est reward accounts for secondary hits separately at flash cost)
  // and is promoted back into the DRAM cache below.
  Block* block = nullptr;
  if (options_.secondary_cache != nullptr && !cache_key.empty()) {
    std::string bytes;
    if (options_.secondary_cache->Lookup(cache_key, &bytes)) {
      ADCACHE_PERF_COUNTER_ADD(secondary_cache_hit_count, 1);
      block = new Block(std::move(bytes));
    }
  }

  if (block == nullptr) {
    // Secondary miss too: read from storage. This is the paper's "SST
    // read".
    std::string contents(handle.size, '\0');
    Slice input;
    Status s =
        file_->Read(handle.offset, handle.size, &input, contents.data());
    if (read_options.count_block_reads) env_->io_stats()->block_reads++;
    ADCACHE_PERF_COUNTER_ADD(block_read_count, 1);
    ADCACHE_PERF_COUNTER_ADD(block_read_byte, handle.size);
    if (!s.ok()) {
      ref.status = s;
      return ref;
    }
    if (input.size() != handle.size) {
      ref.status = Status::Corruption("truncated data block");
      return ref;
    }
    // When the env read into our scratch buffer, hand the bytes to the
    // Block by move; a zero-copy env (mmap-style) returns its own pointer,
    // in which case one copy is unavoidable.
    block = input.data() == contents.data() ? new Block(std::move(contents))
                                            : new Block(input.ToString());
  }
  bool may_fill = read_options.fill_block_cache;
  if (may_fill && read_options.fill_block_budget != nullptr) {
    if (*read_options.fill_block_budget == 0) {
      may_fill = false;
    } else {
      (*read_options.fill_block_budget)--;
    }
  }
  if (cache != nullptr && may_fill) {
    Cache::Handle* h =
        cache->Insert(cache_key, block,
                      block->size() + kBlockCacheEntryOverhead,
                      &DeleteCachedBlock);
    if (h != nullptr) {
      ref.cache = cache;
      ref.handle = h;
      ref.block = block;
      return ref;
    }
  }
  ref.owned = block;
  ref.block = block;
  return ref;
}

Table::LookupResult Table::Get(const ReadOptions& read_options,
                               const Slice& user_key, SequenceNumber snapshot,
                               PinnableSlice* value,
                               SequenceNumber* entry_seq) {
  if (filter_ != nullptr) {
    ADCACHE_PERF_COUNTER_ADD(bloom_sst_checked_count, 1);
    if (!filter_->KeyMayMatch(user_key)) {
      ADCACHE_PERF_COUNTER_ADD(bloom_sst_negative_count, 1);
      return LookupResult::kNotFound;
    }
  }

  std::string lookup_key = MakeLookupKey(user_key, snapshot);
  std::unique_ptr<Iterator> index_iter(index_block_->NewIterator(&icmp_));
  index_iter->Seek(Slice(lookup_key));
  if (!index_iter->Valid()) return LookupResult::kNotFound;

  Slice handle_value = index_iter->value();
  BlockHandle handle;
  if (!handle.DecodeFrom(&handle_value).ok()) return LookupResult::kNotFound;

  BlockRef ref = ReadBlock(read_options, handle);
  if (ref.block == nullptr) return LookupResult::kNotFound;

  std::unique_ptr<Iterator> block_iter(ref.block->NewIterator(&icmp_));
  block_iter->Seek(Slice(lookup_key));
  while (block_iter->Valid()) {
    ParsedInternalKey parsed;
    if (!ParseInternalKey(block_iter->key(), &parsed)) {
      return LookupResult::kNotFound;
    }
    if (parsed.user_key != user_key) return LookupResult::kNotFound;
    if (parsed.sequence <= snapshot) {
      if (entry_seq != nullptr) *entry_seq = parsed.sequence;
      if (parsed.type == kTypeDeletion) return LookupResult::kDeleted;
      // The value bytes live inside the pinned block: detach the pin into
      // the result instead of copying them out.
      Slice v = block_iter->value();
      if (ref.cache != nullptr) {
        value->PinSlice(v, &ReleaseCacheHandle, ref.cache, ref.handle);
        ref.cache = nullptr;
        ref.handle = nullptr;
        ref.block = nullptr;
      } else if (ref.owned != nullptr) {
        value->PinSlice(v, &DeleteOwnedBlock, ref.owned, nullptr);
        ref.owned = nullptr;
        ref.block = nullptr;
      } else {
        value->PinSelf(v);
      }
      return LookupResult::kFound;
    }
    block_iter->Next();  // entry too new for this snapshot; keep looking
  }
  return LookupResult::kNotFound;
}

void Table::MultiGet(const ReadOptions& read_options,
                     MultiGetState* const* keys, size_t n) {
  if (n == 0) return;

  // All per-batch scratch is stack-resident up to kInlineBatch states
  // (heap beyond that): a typical batch allocates only block iterators.
  constexpr size_t kInlineBatch = 128;

  // Stage 1: probe the bloom filter for the whole batch before touching the
  // index; most absent keys die here without an index seek.
  util::InlineBuffer<MultiGetState*, kInlineBatch> candidates(n);
  size_t num_candidates = 0;
  if (filter_ != nullptr) {
    util::InlineBuffer<Slice, kInlineBatch> user_keys(n);
    util::InlineBuffer<bool, kInlineBatch> may_match(n);
    for (size_t i = 0; i < n; i++) user_keys[i] = keys[i]->user_key;
    filter_->KeyMayMatch(n, user_keys.data(), may_match.data());
    for (size_t i = 0; i < n; i++) {
      if (may_match[i]) candidates[num_candidates++] = keys[i];
    }
    ADCACHE_PERF_COUNTER_ADD(bloom_sst_checked_count, n);
    ADCACHE_PERF_COUNTER_ADD(bloom_sst_negative_count, n - num_candidates);
  } else {
    for (size_t i = 0; i < n; i++) candidates[num_candidates++] = keys[i];
  }
  if (num_candidates == 0) return;

  // Stage 2: one shared index iterator walked forward over the sorted
  // keys; runs of keys whose index entries name the same data block are
  // grouped so the block is resolved once. A key no bigger than the current
  // entry's separator belongs to the same block as its predecessor (the
  // entry is the first with separator >= the previous, smaller, key), so
  // same-block runs cost ONE index binary search, not one per key.
  Block::Iter index_iter(index_block_.get(), &icmp_);  // stack, no alloc
  util::InlineBuffer<std::pair<BlockHandle, MultiGetState*>, kInlineBatch>
      located(num_candidates);
  size_t num_located = 0;
  bool index_positioned = false;
  BlockHandle handle;
  bool handle_ok = false;
  for (size_t c = 0; c < num_candidates; c++) {
    MultiGetState* s = candidates[c];
    if (!index_positioned ||
        icmp_.Compare(s->internal_key, index_iter.key()) > 0) {
      // Sorted batches usually land a few index entries ahead (clustered
      // keys): walk forward briefly before paying a full restart binary
      // search — a step costs one entry parse, a Seek costs a dozen.
      bool stepped = false;
      if (index_positioned) {
        for (int steps = 0; steps < 4 && index_iter.Valid(); steps++) {
          index_iter.Next();
          if (index_iter.Valid() &&
              icmp_.Compare(s->internal_key, index_iter.key()) <= 0) {
            stepped = true;
            break;
          }
        }
      }
      if (!stepped) {
        index_iter.Seek(s->internal_key);
        if (!index_iter.Valid()) break;  // sorted: later keys past EOF too
      }
      index_positioned = true;
      handle_ok = false;  // new index entry: decode its handle once below
    }
    if (!handle_ok) {
      Slice handle_value = index_iter.value();
      if (!handle.DecodeFrom(&handle_value).ok()) continue;
      handle_ok = true;
    }
    located[num_located++] = {handle, s};
  }
  if (num_located == 0) return;

  struct BlockWork {
    size_t begin, end;  // half-open range into `located`
    BlockRef ref;
    char cache_key[kCacheKeySize];
  };
  util::InlineBuffer<BlockWork, kInlineBatch> blocks(num_located);
  size_t num_blocks = 0;
  for (size_t i = 0; i < num_located;) {
    size_t j = i + 1;
    while (j < num_located &&
           located[j].first.offset == located[i].first.offset) {
      j++;
    }
    blocks[num_blocks].begin = i;
    blocks[num_blocks].end = j;
    num_blocks++;
    i = j;
  }

  // Stage 3: resolve every distinct block against the cache in ONE
  // MultiLookup (each cache shard's mutex taken once per batch), then one
  // storage read per block that missed.
  Cache* cache = options_.block_cache.get();
  if (cache != nullptr) {
    util::InlineBuffer<Slice, kInlineBatch> cache_keys(num_blocks);
    util::InlineBuffer<Cache::Handle*, kInlineBatch> handles(num_blocks);
    for (size_t b = 0; b < num_blocks; b++) {
      EncodeCacheKey(cache_file_id_, located[blocks[b].begin].first.offset,
                     blocks[b].cache_key);
      cache_keys[b] = Slice(blocks[b].cache_key, kCacheKeySize);
      handles[b] = nullptr;
    }
    cache->MultiLookup(num_blocks, cache_keys.data(), handles.data());
    size_t num_hits = 0;
    for (size_t b = 0; b < num_blocks; b++) {
      if (handles[b] != nullptr) {
        num_hits++;
        blocks[b].ref.cache = cache;
        blocks[b].ref.handle = handles[b];
        blocks[b].ref.block =
            static_cast<const Block*>(cache->Value(handles[b]));
      }
    }
    ADCACHE_PERF_COUNTER_ADD(block_cache_hit_count, num_hits);
    ADCACHE_PERF_COUNTER_ADD(block_cache_miss_count, num_blocks - num_hits);
  }

  // Stage 4: search each block once for all of its keys, then hand out the
  // pins: the detachable block reference goes to the last found key, every
  // other found key takes its own cache pin (or a copy for uncached blocks).
  util::InlineBuffer<std::pair<MultiGetState*, Slice>, kInlineBatch> found(
      num_located);
  Block::Iter block_iter;  // one reusable iterator serves every block
  for (size_t b = 0; b < num_blocks; b++) {
    BlockWork& bw = blocks[b];
    if (bw.ref.block == nullptr) {
      bw.ref = ReadBlockMiss(
          read_options, located[bw.begin].first,
          cache != nullptr ? Slice(bw.cache_key, kCacheKeySize) : Slice());
    }
    if (bw.ref.block == nullptr) continue;  // IO error: keys stay kNotFound

    size_t num_found = 0;
    block_iter.Init(bw.ref.block, &icmp_);
    bool positioned = false;
    for (size_t j = bw.begin; j < bw.end; j++) {
      MultiGetState* s = located[j].second;
      // The batch is sorted and the iterator only ever moves forward, so
      // every entry behind the current position is smaller than this key:
      // a short forward scan replaces a fresh binary search per key
      // (clustered keys sit a few entries apart). A long gap falls back to
      // Seek; an exhausted iterator means the key is past the block's last
      // entry and stays kNotFound.
      if (!positioned) {
        block_iter.Seek(s->internal_key);
        positioned = true;
      } else if (block_iter.Valid() &&
                 icmp_.Compare(block_iter.key(), s->internal_key) < 0) {
        int steps = 0;
        while (block_iter.Valid() &&
               icmp_.Compare(block_iter.key(), s->internal_key) < 0) {
          if (++steps > 32) {
            block_iter.Seek(s->internal_key);
            break;
          }
          block_iter.Next();
        }
      }
      while (block_iter.Valid()) {
        ParsedInternalKey parsed;
        if (!ParseInternalKey(block_iter.key(), &parsed)) break;
        if (parsed.user_key != s->user_key) break;
        if (parsed.sequence <= s->snapshot) {
          if (parsed.type == kTypeDeletion) {
            s->result = LookupResult::kDeleted;
          } else {
            s->result = LookupResult::kFound;
            found[num_found++] = {s, block_iter.value()};
          }
          break;
        }
        block_iter.Next();  // entry too new for this snapshot; keep looking
      }
    }

    // Copy threshold: an extra cache pin costs hash+mutex round trips (Ref
    // now, Release when the value is dropped); below this size a plain
    // copy into the PinnableSlice is cheaper, and the caller's buffer keeps
    // its capacity across batches so repeat copies don't reallocate. Small
    // values never take a pin at all — the block's lookup pin is dropped in
    // one batched MultiRelease after the block loop.
    constexpr size_t kCopyThreshold = 512;
    for (size_t f = 0; f < num_found; f++) {
      MultiGetState* s = found[f].first;
      const Slice& v = found[f].second;
      bool last = f + 1 == num_found;
      if (bw.ref.cache != nullptr) {
        if (v.size() <= kCopyThreshold) {
          s->value->PinSelf(v);
          continue;
        }
        if (!last) bw.ref.cache->Ref(bw.ref.handle);
        s->value->PinSlice(v, &ReleaseCacheHandle, bw.ref.cache,
                           bw.ref.handle);
        if (last) {
          bw.ref.cache = nullptr;
          bw.ref.handle = nullptr;
          bw.ref.block = nullptr;
        }
      } else if (bw.ref.owned != nullptr) {
        if (!last) {
          s->value->PinSelf(v);
        } else {
          s->value->PinSlice(v, &DeleteOwnedBlock, bw.ref.owned, nullptr);
          bw.ref.owned = nullptr;
          bw.ref.block = nullptr;
        }
      } else {
        s->value->PinSelf(v);
      }
    }
  }

  // Every lookup pin not handed off above is dropped in one batched call:
  // each cache shard's mutex is taken once, versus a hash + lock + eviction
  // check per block if the BlockRef destructors released them one by one.
  if (cache != nullptr) {
    util::InlineBuffer<Cache::Handle*, kInlineBatch> to_release(num_blocks);
    size_t num_release = 0;
    for (size_t b = 0; b < num_blocks; b++) {
      if (blocks[b].ref.cache != nullptr) {
        to_release[num_release++] = blocks[b].ref.handle;
        blocks[b].ref.cache = nullptr;
        blocks[b].ref.handle = nullptr;
        blocks[b].ref.block = nullptr;
      }
    }
    if (num_release > 0) cache->MultiRelease(num_release, to_release.data());
  }
}

// ---------------------------------------------------------------------------
// Two-level iterator: index block -> data blocks.
// ---------------------------------------------------------------------------

class Table::Iter : public Iterator {
 public:
  Iter(const Table* table, const ReadOptions& read_options)
      : table_(table),
        read_options_(read_options),
        index_iter_(table->index_block_->NewIterator(&table->icmp_)) {}

  bool Valid() const override {
    return data_iter_ != nullptr && data_iter_->Valid();
  }

  void SeekToFirst() override {
    index_iter_->SeekToFirst();
    InitDataBlock();
    if (data_iter_ != nullptr) data_iter_->SeekToFirst();
    SkipEmptyBlocksForward();
  }

  void SeekToLast() override {
    index_iter_->SeekToLast();
    InitDataBlock();
    if (data_iter_ != nullptr) data_iter_->SeekToLast();
    SkipEmptyBlocksBackward();
  }

  void Seek(const Slice& target) override {
    index_iter_->Seek(target);
    InitDataBlock();
    if (data_iter_ != nullptr) data_iter_->Seek(target);
    SkipEmptyBlocksForward();
  }

  void Next() override {
    assert(Valid());
    data_iter_->Next();
    SkipEmptyBlocksForward();
  }

  void Prev() override {
    assert(Valid());
    data_iter_->Prev();
    SkipEmptyBlocksBackward();
  }

  Slice key() const override { return data_iter_->key(); }
  Slice value() const override { return data_iter_->value(); }
  Status status() const override {
    if (!status_.ok()) return status_;
    if (data_iter_ != nullptr && !data_iter_->status().ok()) {
      return data_iter_->status();
    }
    return index_iter_->status();
  }

 private:
  void InitDataBlock() {
    data_iter_.reset();
    block_ref_.Reset();
    if (!index_iter_->Valid()) return;
    Slice handle_value = index_iter_->value();
    BlockHandle handle;
    Status s = handle.DecodeFrom(&handle_value);
    if (!s.ok()) {
      status_ = s;
      return;
    }
    block_ref_ = table_->ReadBlock(read_options_, handle);
    if (block_ref_.block == nullptr) {
      status_ = block_ref_.status;
      return;
    }
    data_iter_.reset(block_ref_.block->NewIterator(&table_->icmp_));
  }

  void SkipEmptyBlocksForward() {
    while (data_iter_ == nullptr || !data_iter_->Valid()) {
      if (!index_iter_->Valid()) {
        data_iter_.reset();
        return;
      }
      index_iter_->Next();
      InitDataBlock();
      if (data_iter_ != nullptr) data_iter_->SeekToFirst();
    }
  }

  void SkipEmptyBlocksBackward() {
    while (data_iter_ == nullptr || !data_iter_->Valid()) {
      if (!index_iter_->Valid()) {
        data_iter_.reset();
        return;
      }
      index_iter_->Prev();
      InitDataBlock();
      if (data_iter_ != nullptr) data_iter_->SeekToLast();
    }
  }

  const Table* table_;
  ReadOptions read_options_;
  std::unique_ptr<Iterator> index_iter_;
  std::unique_ptr<Iterator> data_iter_;
  BlockRef block_ref_;
  Status status_;
};

Iterator* Table::NewIterator(const ReadOptions& read_options) const {
  return new Iter(this, read_options);
}

std::vector<Table::BlockInfo> Table::GetBlockInfos() const {
  std::vector<BlockInfo> infos;
  std::unique_ptr<Iterator> index_iter(index_block_->NewIterator(&icmp_));
  for (index_iter->SeekToFirst(); index_iter->Valid(); index_iter->Next()) {
    Slice handle_value = index_iter->value();
    BlockHandle handle;
    if (!handle.DecodeFrom(&handle_value).ok()) continue;
    infos.push_back(BlockInfo{index_iter->key().ToString(), handle});
  }
  return infos;
}

bool Table::IsBlockCached(const BlockHandle& handle) const {
  Cache* cache = options_.block_cache.get();
  if (cache == nullptr) return false;
  return cache->Contains(Slice(CacheKey(cache_file_id_, handle.offset)));
}

Status Table::PrefetchBlock(const BlockHandle& handle) {
  ReadOptions prefetch_options;
  prefetch_options.fill_block_cache = true;
  prefetch_options.count_block_reads = false;  // background I/O
  BlockRef ref = ReadBlock(prefetch_options, handle);
  return ref.block != nullptr ? Status::OK() : ref.status;
}

void InstallSecondaryCache(Options* options,
                           std::shared_ptr<SecondaryCache> secondary) {
  options->secondary_cache = secondary;
  if (options->block_cache == nullptr || secondary == nullptr) {
    return;
  }
  options->block_cache->SetEvictionCallback(
      [secondary](const Slice& key, void* value, size_t /*charge*/) {
        // Block-cache values are always Blocks (Table is the only
        // inserter). The entry is exclusively owned during the callback,
        // so its bytes are stable while Demote copies them.
        const auto* block = static_cast<const Block*>(value);
        secondary->Demote(key, block->contents());
      });
}

Status MaybeInstallSecondaryCacheFromEnv(Options* options,
                                         const std::string& dbname,
                                         Env* env) {
  if (options->secondary_cache != nullptr) {
    return Status::OK();  // creator already wired it
  }
  const std::optional<std::string> raw =
      util::OptionsFromEnv::String("ADCACHE_SECONDARY_CACHE");
  if (!raw.has_value()) {
    return Status::OK();
  }
  constexpr uint64_t kDefaultBudget = 32ull << 20;
  constexpr uint64_t kMinBudget = 8ull << 20;
  uint64_t budget = 0;
  const std::optional<uint64_t> bytes = util::OptionsFromEnv::ParseBytes(*raw);
  if (bytes.has_value()) {
    budget = *bytes;
  } else if (util::OptionsFromEnv::Flag("ADCACHE_SECONDARY_CACHE", false)) {
    budget = kDefaultBudget;
  }
  if (budget == 0) {
    return Status::OK();  // explicit "0"/"off" (or unparseable) disables
  }
  budget = std::max(budget, kMinBudget);
  Status s = env->CreateDirIfMissing(dbname);
  if (!s.ok()) {
    return s;
  }
  SlabSecondaryCacheOptions sopts;
  sopts.capacity = static_cast<size_t>(budget);
  std::shared_ptr<SecondaryCache> secondary;
  s = NewSlabSecondaryCache(env, dbname + "/secondary", sopts, &secondary);
  if (!s.ok()) {
    return s;
  }
  InstallSecondaryCache(options, std::move(secondary));
  return Status::OK();
}

}  // namespace adcache::lsm
