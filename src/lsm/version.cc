#include "lsm/version.h"

#include <algorithm>
#include <cassert>

#include "util/inline_buffer.h"

namespace adcache::lsm {

namespace {

bool AfterFile(const Slice& user_key, const FileMetaData& f) {
  return !user_key.empty() &&
         user_key.compare(ExtractUserKey(Slice(f.largest))) > 0;
}

bool BeforeFile(const Slice& user_key, const FileMetaData& f) {
  return !user_key.empty() &&
         user_key.compare(ExtractUserKey(Slice(f.smallest))) < 0;
}

/// Binary search for the first file whose largest key is >= the lookup key
/// (files sorted by smallest key, non-overlapping).
int FindFile(const FileList& files, const Slice& internal_key) {
  InternalKeyComparator icmp;
  int lo = 0;
  int hi = static_cast<int>(files.size());
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (icmp.Compare(Slice(files[static_cast<size_t>(mid)]->largest),
                     internal_key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

Table::LookupResult Version::Get(const ReadOptions& read_options,
                                 const Slice& user_key,
                                 SequenceNumber snapshot,
                                 PinnableSlice* value) {
  std::string lookup_key = MakeLookupKey(user_key, snapshot);

  // Level 0: files may overlap; search newest first (files_[0] is stored
  // newest-first).
  for (const auto& f : files_[0]) {
    if (AfterFile(user_key, *f) || BeforeFile(user_key, *f)) continue;
    SequenceNumber seq = 0;
    Table::LookupResult r =
        f->table->Get(read_options, user_key, snapshot, value, &seq);
    if (r != Table::LookupResult::kNotFound) return r;
  }

  // Deeper levels: at most one candidate file per level.
  for (int level = 1; level < num_levels(); level++) {
    const FileList& files = files_[static_cast<size_t>(level)];
    if (files.empty()) continue;
    int index = FindFile(files, Slice(lookup_key));
    if (index >= static_cast<int>(files.size())) continue;
    const auto& f = files[static_cast<size_t>(index)];
    if (BeforeFile(user_key, *f)) continue;
    Table::LookupResult r =
        f->table->Get(read_options, user_key, snapshot, value, nullptr);
    if (r != Table::LookupResult::kNotFound) return r;
  }
  return Table::LookupResult::kNotFound;
}

void Version::MultiGet(const ReadOptions& read_options,
                       Table::MultiGetState** pending, size_t n) {
  // Compacts `pending` in place, dropping states a table resolved.
  auto drop_resolved = [pending](size_t count) {
    size_t kept = 0;
    for (size_t i = 0; i < count; i++) {
      if (pending[i]->result == Table::LookupResult::kNotFound) {
        pending[kept++] = pending[i];
      }
    }
    return kept;
  };
  util::InlineBuffer<Table::MultiGetState*, 128> batch(n);

  // Level 0: files may overlap; search newest first, giving each file its
  // in-range slice of the still-unresolved batch. The batch is sorted, so
  // the slice is one contiguous run found with two binary searches instead
  // of two compares per key.
  for (const auto& f : files_[0]) {
    Slice smallest = ExtractUserKey(Slice(f->smallest));
    Slice largest = ExtractUserKey(Slice(f->largest));
    size_t lo = 0, hi = n;
    while (lo < hi) {  // lower bound: first key >= smallest
      size_t mid = lo + (hi - lo) / 2;
      if (pending[mid]->user_key.compare(smallest) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    hi = n;
    size_t cur = lo;
    while (cur < hi) {  // upper bound: first key > largest
      size_t mid = cur + (hi - cur) / 2;
      if (pending[mid]->user_key.compare(largest) <= 0) {
        cur = mid + 1;
      } else {
        hi = mid;
      }
    }
    size_t m = 0;
    for (size_t i = lo; i < hi; i++) batch[m++] = pending[i];
    if (m == 0) continue;
    f->table->MultiGet(read_options, batch.data(), m);
    n = drop_resolved(n);
    if (n == 0) return;
  }

  // Deeper levels: files are disjoint and the batch is sorted, so runs of
  // consecutive keys map to one candidate file each.
  for (int level = 1; level < num_levels(); level++) {
    const FileList& files = files_[static_cast<size_t>(level)];
    if (files.empty()) continue;
    size_t i = 0;
    while (i < n) {
      int index = FindFile(files, pending[i]->internal_key);
      if (index >= static_cast<int>(files.size())) break;  // rest are past
      const auto& f = files[static_cast<size_t>(index)];
      size_t m = 0;
      size_t j = i;
      // Every key not after f belongs to this file or the gap before it.
      for (; j < n && !AfterFile(pending[j]->user_key, *f); j++) {
        if (!BeforeFile(pending[j]->user_key, *f)) batch[m++] = pending[j];
      }
      if (m > 0) {
        f->table->MultiGet(read_options, batch.data(), m);
      }
      i = j;
    }
    n = drop_resolved(n);
    if (n == 0) return;
  }
}

void Version::AddIterators(const ReadOptions& read_options,
                           std::vector<Iterator*>* iters) const {
  for (const auto& f : files_[0]) {
    iters->push_back(f->table->NewIterator(read_options));
  }
  for (int level = 1; level < num_levels(); level++) {
    if (!files_[static_cast<size_t>(level)].empty()) {
      iters->push_back(NewLevelIterator(
          read_options, &files_[static_cast<size_t>(level)]));
    }
  }
}

void Version::GetOverlappingInputs(int level, const Slice& begin,
                                   const Slice& end, FileList* inputs) const {
  inputs->clear();
  for (const auto& f : files_[static_cast<size_t>(level)]) {
    Slice file_start = ExtractUserKey(Slice(f->smallest));
    Slice file_limit = ExtractUserKey(Slice(f->largest));
    bool before = !end.empty() && file_start.compare(end) > 0;
    bool after = !begin.empty() && file_limit.compare(begin) < 0;
    if (!before && !after) inputs->push_back(f);
  }
}

uint64_t Version::LevelBytes(int level) const {
  uint64_t total = 0;
  for (const auto& f : files_[static_cast<size_t>(level)]) {
    total += f->file_size;
  }
  return total;
}

int Version::NumSortedRuns() const {
  int runs = NumFiles(0);
  for (int level = 1; level < num_levels(); level++) {
    if (!files_[static_cast<size_t>(level)].empty()) runs++;
  }
  return runs;
}

int Version::NumNonEmptyLevels() const {
  int deepest = 0;
  for (int level = 0; level < num_levels(); level++) {
    if (!files_[static_cast<size_t>(level)].empty()) deepest = level + 1;
  }
  return deepest;
}

// ---------------------------------------------------------------------------
// Level (concatenating) iterator
// ---------------------------------------------------------------------------

namespace {

class LevelIterator : public Iterator {
 public:
  LevelIterator(const ReadOptions& read_options, const FileList* files)
      : read_options_(read_options), files_(files) {}

  bool Valid() const override {
    return table_iter_ != nullptr && table_iter_->Valid();
  }

  void SeekToFirst() override {
    index_ = 0;
    InitTableIterator();
    if (table_iter_ != nullptr) table_iter_->SeekToFirst();
    SkipForward();
  }

  void SeekToLast() override {
    index_ = files_->empty() ? 0 : files_->size() - 1;
    InitTableIterator();
    if (table_iter_ != nullptr) table_iter_->SeekToLast();
    SkipBackward();
  }

  void Seek(const Slice& target) override {
    // Binary search for the file that may contain target.
    InternalKeyComparator icmp;
    size_t lo = 0;
    size_t hi = files_->size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (icmp.Compare(Slice((*files_)[mid]->largest), target) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    index_ = lo;
    InitTableIterator();
    if (table_iter_ != nullptr) table_iter_->Seek(target);
    SkipForward();
  }

  void Next() override {
    assert(Valid());
    table_iter_->Next();
    SkipForward();
  }

  void Prev() override {
    assert(Valid());
    table_iter_->Prev();
    SkipBackward();
  }

  Slice key() const override { return table_iter_->key(); }
  Slice value() const override { return table_iter_->value(); }
  Status status() const override {
    if (!status_.ok()) return status_;
    return table_iter_ != nullptr ? table_iter_->status() : Status::OK();
  }

 private:
  void InitTableIterator() {
    CaptureStatus();
    if (index_ < files_->size()) {
      table_iter_.reset(
          (*files_)[index_]->table->NewIterator(read_options_));
    } else {
      table_iter_.reset();
    }
  }

  /// Errors must outlive the table iterator that produced them.
  void CaptureStatus() {
    if (status_.ok() && table_iter_ != nullptr &&
        !table_iter_->status().ok()) {
      status_ = table_iter_->status();
    }
  }

  void SkipForward() {
    while (table_iter_ == nullptr || !table_iter_->Valid()) {
      if (index_ + 1 >= files_->size()) {
        CaptureStatus();
        table_iter_.reset();
        return;
      }
      index_++;
      InitTableIterator();
      table_iter_->SeekToFirst();
    }
  }

  void SkipBackward() {
    while (table_iter_ == nullptr || !table_iter_->Valid()) {
      if (index_ == 0) {
        CaptureStatus();
        table_iter_.reset();
        return;
      }
      index_--;
      InitTableIterator();
      table_iter_->SeekToLast();
    }
  }

  ReadOptions read_options_;
  const FileList* files_;
  size_t index_ = 0;
  std::unique_ptr<Iterator> table_iter_;
  Status status_;
};

// ---------------------------------------------------------------------------
// Merging iterator (linear k-way merge; k is the number of sorted runs)
// ---------------------------------------------------------------------------

class MergingIterator : public Iterator {
 public:
  MergingIterator(const InternalKeyComparator* cmp,
                  std::vector<Iterator*> children)
      : cmp_(cmp) {
    for (Iterator* child : children) {
      children_.emplace_back(child);
    }
  }

  bool Valid() const override { return current_ != nullptr; }

  void SeekToFirst() override {
    for (auto& child : children_) child->SeekToFirst();
    FindSmallest();
    direction_ = kForward;
  }

  void SeekToLast() override {
    for (auto& child : children_) child->SeekToLast();
    FindLargest();
    direction_ = kReverse;
  }

  void Seek(const Slice& target) override {
    for (auto& child : children_) child->Seek(target);
    FindSmallest();
    direction_ = kForward;
  }

  void Next() override {
    assert(Valid());
    if (direction_ != kForward) {
      // Re-align all children to point past the current key.
      std::string current_key = key().ToString();
      for (auto& child : children_) {
        if (child.get() != current_) {
          child->Seek(Slice(current_key));
          if (child->Valid() &&
              cmp_->Compare(child->key(), Slice(current_key)) == 0) {
            child->Next();
          }
        }
      }
      direction_ = kForward;
    }
    current_->Next();
    FindSmallest();
  }

  void Prev() override {
    assert(Valid());
    if (direction_ != kReverse) {
      std::string current_key = key().ToString();
      for (auto& child : children_) {
        if (child.get() != current_) {
          child->Seek(Slice(current_key));
          if (child->Valid()) {
            child->Prev();
          } else {
            child->SeekToLast();
          }
        }
      }
      direction_ = kReverse;
    }
    current_->Prev();
    FindLargest();
  }

  Slice key() const override { return current_->key(); }
  Slice value() const override { return current_->value(); }
  Status status() const override {
    for (const auto& child : children_) {
      if (!child->status().ok()) return child->status();
    }
    return Status::OK();
  }

 private:
  enum Direction { kForward, kReverse };

  void FindSmallest() {
    Iterator* smallest = nullptr;
    for (auto& child : children_) {
      if (!child->Valid()) continue;
      if (smallest == nullptr ||
          cmp_->Compare(child->key(), smallest->key()) < 0) {
        smallest = child.get();
      }
    }
    current_ = smallest;
  }

  void FindLargest() {
    Iterator* largest = nullptr;
    for (auto& child : children_) {
      if (!child->Valid()) continue;
      if (largest == nullptr ||
          cmp_->Compare(child->key(), largest->key()) > 0) {
        largest = child.get();
      }
    }
    current_ = largest;
  }

  const InternalKeyComparator* cmp_;
  std::vector<std::unique_ptr<Iterator>> children_;
  Iterator* current_ = nullptr;
  Direction direction_ = kForward;
};

}  // namespace

Iterator* NewLevelIterator(const ReadOptions& read_options,
                           const FileList* files) {
  return new LevelIterator(read_options, files);
}

Iterator* NewMergingIterator(const InternalKeyComparator* cmp,
                             std::vector<Iterator*> children) {
  return new MergingIterator(cmp, std::move(children));
}

std::vector<std::string> PickSubcompactionBoundaries(
    const FileList& inputs0, const FileList& inputs1,
    int max_subcompactions) {
  std::vector<std::string> boundaries;
  if (max_subcompactions <= 1) return boundaries;

  // One anchor per data block (its last user key, weighted by the block's
  // on-disk bytes) from every input table's pinned index, plus a zero-weight
  // anchor at each file's smallest key so single-block files still
  // contribute interior candidates.
  struct Anchor {
    std::string user_key;
    uint64_t weight;
  };
  std::vector<Anchor> anchors;
  uint64_t total_weight = 0;
  auto collect = [&](const FileList& inputs) {
    for (const auto& f : inputs) {
      if (f == nullptr || f->table == nullptr) continue;
      anchors.push_back(
          Anchor{ExtractUserKey(Slice(f->smallest)).ToString(), 0});
      for (const Table::BlockInfo& info : f->table->GetBlockInfos()) {
        uint64_t w = std::max<uint64_t>(1, info.handle.size);
        anchors.push_back(
            Anchor{ExtractUserKey(Slice(info.last_internal_key)).ToString(),
                   w});
        total_weight += w;
      }
    }
  };
  collect(inputs0);
  collect(inputs1);
  if (anchors.size() < 2 || total_weight == 0) return boundaries;

  std::sort(anchors.begin(), anchors.end(),
            [](const Anchor& a, const Anchor& b) {
              return a.user_key < b.user_key;
            });
  const std::string& first_key = anchors.front().user_key;
  const std::string& last_key = anchors.back().user_key;

  // Byte-weighted quantiles: a split lands where the cumulative input bytes
  // cross the next 1/k fraction. Splits equal to the range's edges or to
  // the previous split are dropped — they would produce empty subranges.
  uint64_t cumulative = 0;
  int next_split = 1;
  for (const Anchor& anchor : anchors) {
    cumulative += anchor.weight;
    if (next_split >= max_subcompactions) break;
    uint64_t threshold = total_weight *
                         static_cast<uint64_t>(next_split) /
                         static_cast<uint64_t>(max_subcompactions);
    if (cumulative < threshold) continue;
    if (anchor.user_key <= first_key || anchor.user_key >= last_key) {
      continue;
    }
    if (!boundaries.empty() && anchor.user_key <= boundaries.back()) {
      continue;
    }
    boundaries.push_back(anchor.user_key);
    next_split++;
  }
  return boundaries;
}

}  // namespace adcache::lsm
