#ifndef ADCACHE_LSM_MEMTABLE_H_
#define ADCACHE_LSM_MEMTABLE_H_

#include <atomic>
#include <memory>
#include <string>

#include "lsm/dbformat.h"
#include "lsm/iterator.h"
#include "lsm/skiplist.h"
#include "util/arena.h"

namespace adcache::lsm {

/// In-memory write buffer: a skip list of length-prefixed
/// (internal key, value) records. Reference counted because readers pin a
/// snapshot of the memtable while it may be retired by a flush.
class MemTable {
 public:
  MemTable();

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  void Ref() { refs_.fetch_add(1, std::memory_order_relaxed); }
  void Unref() {
    if (refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) delete this;
  }

  /// Adds an entry. External synchronisation required (single writer).
  void Add(SequenceNumber seq, ValueType type, const Slice& user_key,
           const Slice& value);

  /// Point lookup: if the memtable holds a value or tombstone for
  /// `user_key` visible at `seq`, sets *found accordingly and returns true.
  /// Returns false if the memtable says nothing about the key. `*value`
  /// points into the arena — valid while the caller's reference pins the
  /// memtable; no copy is made.
  bool Get(const LookupKey& key, Slice* value, bool* is_deleted);
  /// Convenience overload building the seek key internally.
  bool Get(const Slice& user_key, SequenceNumber seq, Slice* value,
           bool* is_deleted) {
    return Get(LookupKey(user_key, seq), value, is_deleted);
  }
  /// Copying convenience overload.
  bool Get(const Slice& user_key, SequenceNumber seq, std::string* value,
           bool* is_deleted) {
    Slice v;
    if (!Get(user_key, seq, &v, is_deleted)) return false;
    if (!*is_deleted) value->assign(v.data(), v.size());
    return true;
  }

  /// Iterator over internal keys (caller deletes).
  Iterator* NewIterator();

  size_t ApproximateMemoryUsage() const { return arena_.MemoryUsage(); }
  uint64_t num_entries() const {
    return num_entries_.load(std::memory_order_relaxed);
  }

  /// Number of the oldest WAL file containing this memtable's entries
  /// (0 when WAL is disabled). Set once by the DB when the memtable becomes
  /// active; read by flush/manifest code to decide which WALs are obsolete.
  uint64_t wal_number() const { return wal_number_; }
  void set_wal_number(uint64_t n) { wal_number_ = n; }

 private:
  friend class MemTableIterator;

  struct KeyComparator {
    InternalKeyComparator comparator;
    /// Keys are length-prefixed internal keys stored in the arena.
    int operator()(const char* a, const char* b) const;
  };

  using Table = SkipList<const char*, KeyComparator>;

  ~MemTable() = default;  // only via Unref

  KeyComparator comparator_;
  Arena arena_;
  Table table_;
  std::atomic<int> refs_{0};
  std::atomic<uint64_t> num_entries_{0};
  uint64_t wal_number_ = 0;
};

}  // namespace adcache::lsm

#endif  // ADCACHE_LSM_MEMTABLE_H_
