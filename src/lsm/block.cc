#include "lsm/block.h"

#include <algorithm>

#include "util/coding.h"

namespace adcache::lsm {

Block::Block(std::string contents) : contents_(std::move(contents)) {
  if (contents_.size() < sizeof(uint32_t)) {
    malformed_ = true;
    return;
  }
  num_restarts_ =
      DecodeFixed32(contents_.data() + contents_.size() - sizeof(uint32_t));
  uint64_t trailer =
      (static_cast<uint64_t>(num_restarts_) + 1) * sizeof(uint32_t);
  if (trailer > contents_.size() || num_restarts_ == 0) {
    malformed_ = true;
    return;
  }
  restarts_offset_ = static_cast<uint32_t>(contents_.size() - trailer);
}

void Block::Iter::Init(const Block* block, const InternalKeyComparator* cmp) {
  block_ = block;
  cmp_ = cmp;
  ok_ = block != nullptr && !block->malformed_;
  current_ = 0;
  next_offset_ = 0;
  restart_index_ = 0;
  key_.clear();  // capacity survives re-targeting
  value_ = Slice();
  corrupted_ = !ok_;
}

void Block::Iter::SeekToFirst() {
  if (!ok_) return;
  SeekToRestartPoint(0);
  ParseNextKey();
}

void Block::Iter::SeekToLast() {
  if (!ok_) return;
  SeekToRestartPoint(block_->num_restarts_ - 1);
  while (ParseNextKey() && NextEntryOffset() < block_->restarts_offset_) {
  }
}

void Block::Iter::Seek(const Slice& target) {
  if (!ok_) return;
  // Binary search over restart points for the last restart with a key
  // < target, then scan linearly.
  uint32_t left = 0;
  uint32_t right = block_->num_restarts_ - 1;
  while (left < right) {
    uint32_t mid = (left + right + 1) / 2;
    Slice mid_key = KeyAtRestart(mid);
    if (corrupted_) return;
    if (cmp_->Compare(mid_key, target) < 0) {
      left = mid;
    } else {
      right = mid - 1;
    }
  }
  SeekToRestartPoint(left);
  while (ParseNextKey()) {
    if (cmp_->Compare(Slice(key_), target) >= 0) return;
  }
}

void Block::Iter::Next() {
  if (!ok_) return;
  ParseNextKey();
}

void Block::Iter::Prev() {
  if (!ok_) return;
  // Scan from the restart point preceding the current entry.
  const uint32_t original = current_;
  uint32_t restart = restart_index_;
  while (RestartOffset(restart) >= original) {
    if (restart == 0) {
      current_ = block_->restarts_offset_;  // invalid
      return;
    }
    restart--;
  }
  SeekToRestartPoint(restart);
  while (ParseNextKey() && NextEntryOffset() < original) {
  }
}

Status Block::Iter::status() const {
  return corrupted_ ? Status::Corruption("bad block entry") : Status::OK();
}

uint32_t Block::Iter::RestartOffset(uint32_t index) const {
  return DecodeFixed32(block_->contents_.data() + block_->restarts_offset_ +
                       index * sizeof(uint32_t));
}

void Block::Iter::SeekToRestartPoint(uint32_t index) {
  restart_index_ = index;
  key_.clear();
  value_ = Slice();
  next_offset_ = RestartOffset(index);
}

Slice Block::Iter::KeyAtRestart(uint32_t index) {
  uint32_t offset = RestartOffset(index);
  const char* p = block_->contents_.data() + offset;
  const char* limit = block_->contents_.data() + block_->restarts_offset_;
  uint32_t shared = 0, non_shared = 0, value_len = 0;
  p = GetVarint32Ptr(p, limit, &shared);
  if (p != nullptr) p = GetVarint32Ptr(p, limit, &non_shared);
  if (p != nullptr) p = GetVarint32Ptr(p, limit, &value_len);
  if (p == nullptr || shared != 0) {
    corrupted_ = true;
    return Slice();
  }
  return Slice(p, non_shared);
}

bool Block::Iter::ParseNextKey() {
  current_ = next_offset_;
  if (current_ >= block_->restarts_offset_) {
    current_ = block_->restarts_offset_;
    return false;
  }
  const char* p = block_->contents_.data() + current_;
  const char* limit = block_->contents_.data() + block_->restarts_offset_;
  uint32_t shared = 0, non_shared = 0, value_len = 0;
  p = GetVarint32Ptr(p, limit, &shared);
  if (p != nullptr) p = GetVarint32Ptr(p, limit, &non_shared);
  if (p != nullptr) p = GetVarint32Ptr(p, limit, &value_len);
  if (p == nullptr || shared > key_.size() ||
      p + non_shared + value_len > limit) {
    corrupted_ = true;
    current_ = block_->restarts_offset_;
    return false;
  }
  key_.resize(shared);
  key_.append(p, non_shared);
  value_ = Slice(p + non_shared, value_len);
  next_offset_ = static_cast<uint32_t>((p + non_shared + value_len) -
                                       block_->contents_.data());
  // Track the restart region we're in (needed by Prev).
  while (restart_index_ + 1 < block_->num_restarts_ &&
         RestartOffset(restart_index_ + 1) <= current_) {
    restart_index_++;
  }
  return true;
}

namespace {

class EmptyIterator : public Iterator {
 public:
  explicit EmptyIterator(Status s) : status_(std::move(s)) {}
  bool Valid() const override { return false; }
  void SeekToFirst() override {}
  void SeekToLast() override {}
  void Seek(const Slice&) override {}
  void Next() override {}
  void Prev() override {}
  Slice key() const override { return Slice(); }
  Slice value() const override { return Slice(); }
  Status status() const override { return status_; }

 private:
  Status status_;
};

}  // namespace

Iterator* NewEmptyIterator(const Status& status) {
  return new EmptyIterator(status);
}

Iterator* Block::NewIterator(const InternalKeyComparator* cmp) const {
  if (malformed_) {
    return NewEmptyIterator(Status::Corruption("malformed block"));
  }
  return new Iter(this, cmp);
}

}  // namespace adcache::lsm
