#ifndef ADCACHE_LSM_OPTIONS_H_
#define ADCACHE_LSM_OPTIONS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache.h"
#include "cache/secondary_cache.h"
#include "core/event_listener.h"
#include "util/env.h"
#include "util/thread_pool.h"

namespace adcache::lsm {

/// How the LSM-tree reorganises data.
enum class CompactionStyle {
  /// RocksDB-style leveled ("1-leveling") compaction: one sorted run per
  /// level below L0, levels growing by `level_size_ratio`. The paper's
  /// configuration (§5.1).
  kLeveled,
  /// Universal (tiered) compaction: all runs live in level 0; similar-sized
  /// adjacent runs are merged when the run count exceeds the L0 trigger.
  /// Fewer write-amplifying rewrites, more runs for reads to merge.
  kUniversal,
};

/// Database-wide configuration. Defaults mirror the paper's experimental
/// setup (§5.1) scaled to block granularity: 4 KB data blocks, 4 MB
/// SSTables, leveled ("1-leveling") compaction with size ratio 10, bloom
/// filters at 10 bits/key, L0 slowdown at 4 files and stop at 8.
struct Options {
  CompactionStyle compaction_style = CompactionStyle::kLeveled;
  /// Universal only: merge adjacent runs whose accumulated size is at least
  /// `universal_size_ratio` percent of the next run's size.
  int universal_size_ratio = 100;
  /// Universal only: start merging when this many runs accumulate.
  int universal_run_trigger = 6;
  /// Environment for all file I/O. Must outlive the DB. If null, a process
  /// wide POSIX env is used.
  Env* env = nullptr;

  /// Block cache for data blocks; may be null to disable block caching.
  std::shared_ptr<Cache> block_cache;

  /// Which implementation stores that build their own block cache
  /// (AdCacheStore, BlockOnlyStore, ...) should construct: mutex-per-shard
  /// LRU or the lock-free CLOCK table. Ignored when `block_cache` is set
  /// explicitly. Defaults from the ADCACHE_BLOCK_CACHE_IMPL env var so CI
  /// can rerun the suite against either backend.
  BlockCacheImpl block_cache_impl = DefaultBlockCacheImpl();

  /// Flash-backed secondary tier below the block cache; may be null (the
  /// default) to disable. Table read misses probe it before storage and
  /// promote hits back into `block_cache`; blocks evicted from
  /// `block_cache` are offered to it for demotion (see
  /// lsm::InstallSecondaryCache, which wires both directions). When null
  /// and the ADCACHE_SECONDARY_CACHE env var sets a byte budget, DB::Open /
  /// ShardedDB::Open construct a slab cache under `<dbname>/secondary`.
  std::shared_ptr<SecondaryCache> secondary_cache;

  size_t block_size = 4 * 1024;
  size_t table_file_size = 4 * 1024 * 1024;
  size_t memtable_size = 4 * 1024 * 1024;

  /// Leveled compaction: level i target = base * ratio^(i-1).
  uint64_t level1_size_base = 8 * 1024 * 1024;
  int level_size_ratio = 10;
  int num_levels = 7;

  /// L0 file-count triggers. At `l0_slowdown_trigger` files each write is
  /// delayed once by `slowdown_delay_micros` (bounded backpressure); at
  /// `l0_stop_trigger` writers block until compaction catches up.
  int l0_compaction_trigger = 4;
  int l0_slowdown_trigger = 4;
  int l0_stop_trigger = 8;

  /// Total memtables (one active + immutables awaiting flush). When the
  /// immutable list is full, writers stall until a background flush
  /// completes (RocksDB's max_write_buffer_number).
  int max_write_buffer_number = 4;

  /// Worker threads in the background maintenance pool that runs flushes
  /// and compactions. This is a *global* cap: a sharded store opens one
  /// pool of this size and every shard schedules onto it, so the total
  /// background thread count never scales with the shard count. Per-DB
  /// maintenance is single-flight (one job in progress per shard at a
  /// time); the pool lets different shards flush and compact in parallel.
  int max_background_jobs = 2;

  /// Shared background maintenance pool. When set, the DB schedules its
  /// flushes/compactions here and never shuts the pool down on Close (the
  /// owner — typically ShardedDB — does, after every user has closed).
  /// When null, the DB builds a private pool of `max_background_jobs`
  /// threads (grown to `max_subcompactions` when that is set higher),
  /// preserving the single-instance behaviour.
  std::shared_ptr<util::ThreadPool> background_pool;

  /// Maximum subcompactions per compaction: the compaction's key range is
  /// split into up to this many disjoint user-key subranges, each merged
  /// and built concurrently on the background pool, with all outputs
  /// installed in one atomic version edit. 0 (the default) resolves from
  /// the ADCACHE_SUBCOMPACTIONS env var, else auto-sizes from the pool
  /// (pool threads for a private DB, pool threads / shard count under
  /// ShardedDB so N shards cannot oversubscribe the shared pool). 1
  /// disables parallelism (the serial path). Universal compactions always
  /// run serially: their output must stay a single sorted run so L0 run
  /// accounting (triggers, NumSortedRuns) is preserved.
  int max_subcompactions = 0;

  /// Allow an immutable-memtable flush to run concurrently with a
  /// compaction in the same DB (flushes take the pool's high-priority
  /// queue). Disable to restore the legacy single-flight behaviour where
  /// one background job runs flush OR compaction, never both.
  bool overlap_flush_compaction = true;

  /// Sorted split points partitioning the key space into
  /// `shard_boundaries.size() + 1` key-range shards, each a full LSM
  /// instance (memtable + WAL + levels) behind the ShardedDB facade. Keys
  /// `< shard_boundaries[0]` route to shard 0. Empty (the default) keeps
  /// one instance — exactly today's single-DB behaviour. Consumed by
  /// ShardedDB::Open, ignored by a directly opened DB. The boundaries of
  /// an existing on-disk store must not change between opens: routing at
  /// read time must match routing at write time.
  std::vector<std::string> shard_boundaries;

  /// Which shard this DB instance serves (0 for an unsharded DB). Set by
  /// ShardedDB::Open; stamped into flush/compaction/write-stall event
  /// payloads so listeners can attribute maintenance work to shards.
  int shard_id = 0;

  /// Combine concurrently queued writers into one WAL record and one sync
  /// (group commit). Disable to force one WAL record + sync per batch —
  /// only useful as a baseline for write-throughput benchmarks.
  bool enable_group_commit = true;

  /// Upper bound on one commit group's payload bytes.
  size_t write_group_max_bytes = 1 << 20;

  /// Take read snapshots under the DB mutex with a per-memtable ref loop
  /// instead of the lock-free thread-local SuperVersion path. Only useful
  /// as a baseline for read-scaling benchmarks.
  bool mutex_read_snapshot = false;

  /// Microseconds a write is delayed (once) when L0 reaches the slowdown
  /// trigger. Charged to the env clock and slept when threads are real.
  uint64_t slowdown_delay_micros = 200;

  /// Bloom filter bits per key; 0 disables filters.
  int bloom_bits_per_key = 10;

  /// Restart interval for prefix-compressed blocks.
  int block_restart_interval = 16;

  /// Write-ahead logging (turn off for pure cache benchmarks).
  bool enable_wal = true;

  /// Leaper-style post-compaction prefetching (Yang et al., VLDB '20 — the
  /// block-cache mitigation the paper discusses in §2.2): when a compaction
  /// retires input files whose blocks were cached, the replacement blocks
  /// covering the same key ranges are read back into the block cache, and
  /// the dead input blocks are evicted immediately.
  bool leaper_prefetch = false;

  /// Charge this many CPU microseconds per key comparison batch in scans to
  /// the simulated clock (0 disables; only meaningful with a SimClock env).
  uint64_t cpu_charge_per_op_micros = 1;

  /// Listeners for flush/compaction/write-stall events. Invoked
  /// synchronously from maintenance and writer threads; see the threading
  /// contract in core/event_listener.h (the header is layering-neutral, so
  /// depending on it here does not pull in the core library).
  std::vector<std::shared_ptr<core::EventListener>> listeners;
};

/// Wires `secondary` into `options` in both directions: sets
/// `options->secondary_cache` (Table read misses probe it) and installs the
/// demotion hook on `options->block_cache` (evicted Blocks are serialised
/// and offered to the tier). Call before the cache sees traffic — eviction
/// callback installation is not synchronised. Whoever constructs the
/// secondary cache calls this; passing a pre-wired `options` further down
/// (e.g. ShardedDB -> per-shard DB) must not re-wire.
void InstallSecondaryCache(Options* options,
                           std::shared_ptr<SecondaryCache> secondary);

/// Env-var fallback used by DB::Open / ShardedDB::Open when
/// `options->secondary_cache` is unset: ADCACHE_SECONDARY_CACHE gives the
/// flash budget in bytes (k/m/g suffixes; bare "on"/"true"/"1" picks a
/// 32 MiB default, and budgets are clamped up to 8 MiB so a slab always
/// fits). Builds a slab cache under `<dbname>/secondary` on `env` and wires
/// it via InstallSecondaryCache. No-op when the variable is unset.
Status MaybeInstallSecondaryCacheFromEnv(Options* options,
                                         const std::string& dbname, Env* env);

class Snapshot;

struct ReadOptions {
  /// If non-null, read as of this snapshot (from DB::GetSnapshot) instead
  /// of the latest committed state.
  const Snapshot* snapshot = nullptr;
  /// If true, data blocks fetched by this read are admitted to the block
  /// cache (AdCache's block-admission control can turn this off per query).
  bool fill_block_cache = true;
  /// If true, storage fetches of data blocks count towards
  /// IoStats::block_reads (the paper's "SST reads"). Compactions pass false
  /// so background I/O does not pollute the cache-efficiency metric.
  bool count_block_reads = true;
  /// Reserved: the current table format carries no per-block checksum (only
  /// WAL and manifest records are CRC-protected), so this flag is accepted
  /// for API compatibility with RocksDB-style callers and ignored.
  bool verify_checksums = false;
  /// Optional per-query block-admission budget (paper §3.4: partial
  /// admission "can also be applied to the block cache, where the number of
  /// blocks ... is controlled"). When non-null, each block inserted into
  /// the block cache decrements the counter; at zero, further blocks are
  /// read without being admitted. The pointee must outlive the query.
  uint32_t* fill_block_budget = nullptr;
};

struct WriteOptions {
  /// Fsync the WAL before acknowledging the write. Implied off when
  /// `disable_wal` is set.
  bool sync = false;
  /// Skip the write-ahead log for this write: the data lives only in the
  /// memtable until the next flush, so it is lost if the process crashes
  /// first. Group commit never mixes WAL and no-WAL writers in one group.
  bool disable_wal = false;
};

}  // namespace adcache::lsm

#endif  // ADCACHE_LSM_OPTIONS_H_
