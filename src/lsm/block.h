#ifndef ADCACHE_LSM_BLOCK_H_
#define ADCACHE_LSM_BLOCK_H_

#include <cstdint>
#include <string>

#include "lsm/dbformat.h"
#include "lsm/iterator.h"
#include "util/slice.h"

namespace adcache::lsm {

/// Immutable, parsed block (owns its bytes). Created from BlockBuilder
/// output read back from an SSTable.
class Block {
 public:
  explicit Block(std::string contents);

  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  size_t size() const { return contents_.size(); }

  /// Iterator comparing internal keys. Caller deletes.
  Iterator* NewIterator(const InternalKeyComparator* cmp) const;

 private:
  class Iter;

  std::string contents_;
  uint32_t restarts_offset_ = 0;  // offset of the restart array
  uint32_t num_restarts_ = 0;
  bool malformed_ = false;
};

}  // namespace adcache::lsm

#endif  // ADCACHE_LSM_BLOCK_H_
