#ifndef ADCACHE_LSM_BLOCK_H_
#define ADCACHE_LSM_BLOCK_H_

#include <cstdint>
#include <string>

#include "lsm/dbformat.h"
#include "lsm/iterator.h"
#include "util/slice.h"

namespace adcache::lsm {

/// Immutable, parsed block (owns its bytes). Created from BlockBuilder
/// output read back from an SSTable.
class Block {
 public:
  class Iter;

  explicit Block(std::string contents);

  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  size_t size() const { return contents_.size(); }

  /// The raw serialised block bytes (exactly what Block was constructed
  /// from). Demotion to the secondary cache re-serialises a cached block by
  /// copying these; a Block built from the copy is equivalent.
  Slice contents() const { return Slice(contents_); }

  /// Iterator comparing internal keys. Caller deletes.
  Iterator* NewIterator(const InternalKeyComparator* cmp) const;

 private:
  std::string contents_;
  uint32_t restarts_offset_ = 0;  // offset of the restart array
  uint32_t num_restarts_ = 0;
  bool malformed_ = false;
};

/// Block iterator, stack-constructible and reusable: batched reads Init()
/// one instance per data block, amortizing the iterator (and its decoded-key
/// buffer) across a whole MultiGet batch instead of heap-allocating per
/// block. A default-constructed or malformed-block iterator is permanently
/// !Valid() and every motion is a no-op.
class Block::Iter final : public Iterator {
 public:
  Iter() = default;
  Iter(const Block* block, const InternalKeyComparator* cmp) {
    Init(block, cmp);
  }

  /// Re-targets the iterator at `block`, keeping the key buffer's capacity.
  void Init(const Block* block, const InternalKeyComparator* cmp);

  bool Valid() const override {
    return ok_ && current_ < block_->restarts_offset_;
  }
  void SeekToFirst() override;
  void SeekToLast() override;
  void Seek(const Slice& target) override;
  void Next() override;
  void Prev() override;
  Slice key() const override { return Slice(key_); }
  Slice value() const override { return value_; }
  Status status() const override;

 private:
  uint32_t RestartOffset(uint32_t index) const;
  void SeekToRestartPoint(uint32_t index);
  /// Offset of the entry after the current one.
  uint32_t NextEntryOffset() const { return next_offset_; }
  Slice KeyAtRestart(uint32_t index);
  /// Decodes the entry at next_offset_ into key_/value_. Returns false at
  /// block end or corruption.
  bool ParseNextKey();

  const Block* block_ = nullptr;
  const InternalKeyComparator* cmp_ = nullptr;
  bool ok_ = false;  // false: default-constructed or malformed block
  uint32_t current_ = 0;      // offset of current entry
  uint32_t next_offset_ = 0;  // offset of next entry
  uint32_t restart_index_ = 0;
  std::string key_;
  Slice value_;
  bool corrupted_ = false;
};

}  // namespace adcache::lsm

#endif  // ADCACHE_LSM_BLOCK_H_
