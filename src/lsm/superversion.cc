#include "lsm/superversion.h"

namespace adcache::lsm {

namespace {
// Distinct addresses for the thread-local slot markers; the values are
// never dereferenced.
char sv_in_use_marker;
char sv_obsolete_marker;
}  // namespace

void* const SuperVersion::kSVInUse = &sv_in_use_marker;
void* const SuperVersion::kSVObsolete = &sv_obsolete_marker;

}  // namespace adcache::lsm
