#include "lsm/sharded_db.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "lsm/dbformat.h"
#include "util/coding.h"
#include "util/options_env.h"

namespace adcache::lsm {

namespace {

/// First four bytes of the shard-topology file ("SHRD").
constexpr uint32_t kTopologyMagic = 0x53485244;

/// Index of the shard owning `key`: the number of split points <= key.
int ShardIndexFor(const std::vector<std::string>& boundaries,
                  const Slice& key) {
  auto it = std::upper_bound(
      boundaries.begin(), boundaries.end(), key,
      [](const Slice& k, const std::string& b) { return k.compare(b) < 0; });
  return static_cast<int>(it - boundaries.begin());
}

/// Concatenates per-shard user-key iterators in boundary order. Key-range
/// shards are disjoint and sorted, so exhausting shard i forward continues
/// at shard i+1's first key (and backward at shard i-1's last key) — no
/// heap merge is needed. Each child carries its own shard's read view.
class ShardConcatIterator : public Iterator {
 public:
  ShardConcatIterator(std::vector<std::unique_ptr<Iterator>> children,
                      const std::vector<std::string>* boundaries)
      : children_(std::move(children)), boundaries_(boundaries) {}

  bool Valid() const override {
    return cur_ >= 0 && children_[static_cast<size_t>(cur_)]->Valid();
  }

  void SeekToFirst() override { ForwardFrom(0); }

  // The engine's iterators are forward-only (DBIter declines SeekToLast and
  // Prev); the concatenating iterator keeps that contract rather than
  // pretending the facade can do more than its shards.
  void SeekToLast() override {
    cur_ = -1;
    status_ = Status::NotSupported("backward iteration");
  }

  void Seek(const Slice& target) override {
    int idx = ShardIndexFor(*boundaries_, target);
    children_[static_cast<size_t>(idx)]->Seek(target);
    if (children_[static_cast<size_t>(idx)]->Valid()) {
      cur_ = idx;
    } else {
      ForwardFrom(idx + 1);
    }
  }

  void Next() override {
    assert(Valid());
    children_[static_cast<size_t>(cur_)]->Next();
    if (!children_[static_cast<size_t>(cur_)]->Valid()) ForwardFrom(cur_ + 1);
  }

  void Prev() override {
    cur_ = -1;
    status_ = Status::NotSupported("backward iteration");
  }

  Slice key() const override {
    return children_[static_cast<size_t>(cur_)]->key();
  }
  Slice value() const override {
    return children_[static_cast<size_t>(cur_)]->value();
  }

  Status status() const override {
    if (!status_.ok()) return status_;
    for (const auto& child : children_) {
      Status s = child->status();
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

 private:
  /// Positions at the first valid child in [start, N), else invalidates.
  void ForwardFrom(int start) {
    for (int i = start; i < static_cast<int>(children_.size()); ++i) {
      children_[static_cast<size_t>(i)]->SeekToFirst();
      if (children_[static_cast<size_t>(i)]->Valid()) {
        cur_ = i;
        return;
      }
    }
    cur_ = -1;
  }

  std::vector<std::unique_ptr<Iterator>> children_;
  const std::vector<std::string>* boundaries_;  // owned by the ShardedDB
  int cur_ = -1;
  Status status_;  // sticky NotSupported after a backward call, like DBIter
};

}  // namespace

std::vector<std::string> ShardedDB::ResolveBoundaries(const Options& options) {
  std::vector<std::string> boundaries = options.shard_boundaries;
  if (boundaries.empty()) {
    boundaries = util::OptionsFromEnv::Csv("ADCACHE_SHARD_BOUNDARIES");
    if (boundaries.empty()) {
      // Evenly interpolated over the 2-byte key space: correct for any key
      // distribution (worst case some shards stay empty), balanced for keys
      // whose first two bytes spread out. Tests with prefixed keys should
      // set ADCACHE_SHARD_BOUNDARIES instead.
      int n = util::OptionsFromEnv::Int("ADCACHE_SHARDS", 0);
      for (int i = 1; i < n; ++i) {
        unsigned v = static_cast<unsigned>(
            (static_cast<uint64_t>(i) << 16) / static_cast<uint64_t>(n));
        std::string key;
        key.push_back(static_cast<char>(v >> 8));
        key.push_back(static_cast<char>(v & 0xff));
        boundaries.push_back(std::move(key));
      }
    }
  }
  std::sort(boundaries.begin(), boundaries.end());
  boundaries.erase(std::unique(boundaries.begin(), boundaries.end()),
                   boundaries.end());
  return boundaries;
}

std::string ShardedDB::TopologyFileName(const std::string& dbname) {
  return dbname + "/SHARDS";
}

Status ShardedDB::CheckOrWriteTopology(
    Env* env, const std::string& dbname,
    const std::vector<std::string>& boundaries) {
  const std::string fname = TopologyFileName(dbname);
  if (env->FileExists(fname)) {
    uint64_t size = 0;
    Status s = env->GetFileSize(fname, &size);
    if (!s.ok()) return s;
    std::unique_ptr<SequentialFile> file;
    s = env->NewSequentialFile(fname, &file);
    if (!s.ok()) return s;
    std::string scratch(size, '\0');
    Slice contents;
    s = file->Read(size, &contents, scratch.data());
    if (!s.ok()) return s;
    // Boundaries are arbitrary byte strings (the interpolated defaults are
    // binary), hence the length-prefixed encoding rather than a text list.
    uint32_t count = 0;
    std::vector<std::string> stored;
    bool ok = contents.size() >= 4 && DecodeFixed32(contents.data()) ==
                                          kTopologyMagic;
    if (ok) {
      contents.remove_prefix(4);
      ok = GetVarint32(&contents, &count);
    }
    for (uint32_t i = 0; ok && i < count; i++) {
      Slice b;
      ok = GetLengthPrefixedSlice(&contents, &b);
      if (ok) stored.emplace_back(b.data(), b.size());
    }
    if (!ok || !contents.empty()) {
      return Status::Corruption(fname + ": unreadable shard topology");
    }
    if (stored != boundaries) {
      return Status::InvalidArgument(
          dbname + ": shard topology mismatch: store was created with " +
          std::to_string(stored.size() + 1) + " shard(s), reopened with " +
          std::to_string(boundaries.size() + 1) +
          " (shard boundaries must not change between opens)");
    }
    return Status::OK();
  }
  // No topology file: a single-shard open of a store never created sharded.
  if (boundaries.empty()) return Status::OK();
  // First sharded open. An existing unsharded store at `dbname` (DB::Open
  // always leaves a MANIFEST there) must not be silently reinterpreted as a
  // shard parent — its data would vanish behind fresh empty shard-NNN dirs.
  if (env->FileExists(ManifestFileName(dbname))) {
    return Status::InvalidArgument(
        dbname +
        ": existing unsharded store cannot be reopened with shard "
        "boundaries");
  }
  Status s = env->CreateDirIfMissing(dbname);
  if (!s.ok()) return s;
  std::string record;
  PutFixed32(&record, kTopologyMagic);
  PutVarint32(&record, static_cast<uint32_t>(boundaries.size()));
  for (const std::string& b : boundaries) {
    PutLengthPrefixedSlice(&record, Slice(b));
  }
  std::unique_ptr<WritableFile> file;
  s = env->NewWritableFile(fname, &file);
  if (!s.ok()) return s;
  s = file->Append(Slice(record));
  if (s.ok()) s = file->Sync();
  Status close = file->Close();
  return s.ok() ? close : s;
}

Status ShardedDB::Open(const Options& options, const std::string& dbname,
                       std::unique_ptr<ShardedDB>* dbptr) {
  dbptr->reset();
  std::unique_ptr<ShardedDB> db(new ShardedDB());
  db->boundaries_ = ResolveBoundaries(options);
  db->options_ = options;
  db->options_.shard_boundaries = db->boundaries_;
  // `max_background_jobs` is the one global thread cap — N shards share ONE
  // pool of exactly that many threads, and subcompactions never grow it: a
  // K wider than the pool only adds ranges, which the claim loop drains on
  // whatever threads are free (the coordinator included).
  int subcompactions =
      options.max_subcompactions > 0
          ? options.max_subcompactions
          : util::OptionsFromEnv::Int("ADCACHE_SUBCOMPACTIONS", 0);
  db->pool_ = options.background_pool != nullptr
                  ? options.background_pool
                  : std::make_shared<util::ThreadPool>(
                        options.max_background_jobs);
  const size_t n = db->boundaries_.size() + 1;
  {
    // Pin the shard topology before any shard opens: reopening with changed
    // boundaries would mis-route keys and read as data loss. Also creates
    // the parent directory for the shard-NNN subdirs; a single-shard store
    // opens directly at `dbname`, keeping the unsharded layout.
    Env* env = options.env != nullptr ? options.env : DefaultDbEnv();
    Status s = CheckOrWriteTopology(env, dbname, db->boundaries_);
    if (!s.ok()) return s;
    // One env-var secondary tier shared by every shard (cache keys are
    // namespaced by CacheFileId, so one flash file set serves them all —
    // and mirrors the shared block cache the demotion hook is attached
    // to). Shards see it pre-set and skip their own env fallback.
    s = MaybeInstallSecondaryCacheFromEnv(&db->options_, dbname, env);
    if (!s.ok()) return s;
  }
  for (size_t i = 0; i < n; ++i) {
    Options shard_options = db->options_;
    shard_options.background_pool = db->pool_;
    shard_options.shard_id = static_cast<int>(i);
    shard_options.shard_boundaries.clear();
    // Auto subcompaction width splits the shared pool fairly across shards
    // so N concurrent compactions cannot each claim the whole pool; an
    // explicit setting is honoured as-is.
    shard_options.max_subcompactions =
        subcompactions > 0
            ? subcompactions
            : std::max<int>(1, static_cast<int>(db->pool_->num_threads() /
                                                n));
    std::string shard_name = dbname;
    if (n > 1) {
      char suffix[16];
      std::snprintf(suffix, sizeof(suffix), "/shard-%03zu", i);
      shard_name += suffix;
    }
    std::unique_ptr<DB> shard;
    Status s = DB::Open(shard_options, shard_name, &shard);
    if (!s.ok()) return s;  // already-opened shards close via their dtors
    db->shards_.push_back(std::move(shard));
  }
  *dbptr = std::move(db);
  return Status::OK();
}

ShardedDB::~ShardedDB() { Close(); }

Status ShardedDB::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  Status result;
  for (auto& shard : shards_) {
    Status s = shard->Close();
    if (result.ok()) result = s;
  }
  // Joins the workers if this facade created the pool (last reference);
  // with an injected pool this only drops our reference.
  pool_.reset();
  return result;
}

int ShardedDB::ShardFor(const Slice& key) const {
  return ShardIndexFor(boundaries_, key);
}

Status ShardedDB::Put(const WriteOptions& write_options, const Slice& key,
                      const Slice& value) {
  return shards_[static_cast<size_t>(ShardFor(key))]->Put(write_options, key,
                                                          value);
}

Status ShardedDB::Delete(const WriteOptions& write_options, const Slice& key) {
  return shards_[static_cast<size_t>(ShardFor(key))]->Delete(write_options,
                                                             key);
}

Status ShardedDB::Write(const WriteOptions& write_options,
                        const WriteBatch& batch) {
  if (shards_.size() == 1) return shards_[0]->Write(write_options, batch);
  std::vector<WriteBatch> sub_batches(shards_.size());
  for (const auto& op : batch.ops()) {
    WriteBatch& sub = sub_batches[static_cast<size_t>(ShardFor(op.key))];
    if (op.type == kTypeValue) {
      sub.Put(op.key, op.value);
    } else {
      sub.Delete(op.key);
    }
  }
  Status result;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (sub_batches[i].Count() == 0) continue;
    Status s = shards_[i]->Write(write_options, sub_batches[i]);
    if (result.ok()) result = s;
  }
  return result;
}

Status ShardedDB::Get(const ReadOptions& read_options, const Slice& key,
                      std::string* value) {
  return shards_[static_cast<size_t>(ShardFor(key))]->Get(read_options, key,
                                                          value);
}

Status ShardedDB::Get(const ReadOptions& read_options, const Slice& key,
                      PinnableSlice* value) {
  return shards_[static_cast<size_t>(ShardFor(key))]->Get(read_options, key,
                                                          value);
}

void ShardedDB::MultiGet(const ReadOptions& read_options, size_t n,
                         const Slice* keys, PinnableSlice* values,
                         Status* statuses) {
  if (shards_.size() == 1) {
    shards_[0]->MultiGet(read_options, n, keys, values, statuses);
    return;
  }
  // Scatter caller slots per shard, run each shard's sub-batch through the
  // single-DB MultiGet (one SuperVersion, per-file/per-block batching),
  // then write every result back to its original slot. Duplicate keys land
  // in the same shard's sub-batch and resolve there.
  std::vector<std::vector<size_t>> slots_per_shard(shards_.size());
  for (size_t i = 0; i < n; ++i) {
    slots_per_shard[static_cast<size_t>(ShardFor(keys[i]))].push_back(i);
  }
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    const std::vector<size_t>& slots = slots_per_shard[shard];
    if (slots.empty()) continue;
    std::vector<Slice> sub_keys;
    sub_keys.reserve(slots.size());
    for (size_t slot : slots) sub_keys.push_back(keys[slot]);
    std::vector<PinnableSlice> sub_values(slots.size());
    std::vector<Status> sub_statuses(slots.size());
    shards_[shard]->MultiGet(read_options, slots.size(), sub_keys.data(),
                             sub_values.data(), sub_statuses.data());
    for (size_t j = 0; j < slots.size(); ++j) {
      values[slots[j]] = std::move(sub_values[j]);
      statuses[slots[j]] = sub_statuses[j];
    }
  }
}

const Snapshot* ShardedDB::GetSnapshot() {
  if (shards_.size() == 1) return shards_[0]->GetSnapshot();
  return nullptr;  // cross-shard snapshots unsupported; see class comment
}

void ShardedDB::ReleaseSnapshot(const Snapshot* snapshot) {
  if (snapshot == nullptr) return;
  assert(shards_.size() == 1);
  shards_[0]->ReleaseSnapshot(snapshot);
}

Iterator* ShardedDB::NewIterator(const ReadOptions& read_options) {
  if (shards_.size() == 1) return shards_[0]->NewIterator(read_options);
  std::vector<std::unique_ptr<Iterator>> children;
  children.reserve(shards_.size());
  for (auto& shard : shards_) {
    children.emplace_back(shard->NewIterator(read_options));
  }
  return new ShardConcatIterator(std::move(children), &boundaries_);
}

DB::LsmShape ShardedDB::GetLsmShape() const {
  DB::LsmShape out;
  double entries_per_block_sum = 0;
  int shards_with_tables = 0;
  for (const auto& shard : shards_) {
    DB::LsmShape s = shard->GetLsmShape();
    out.num_levels_nonempty =
        std::max(out.num_levels_nonempty, s.num_levels_nonempty);
    out.l0_files += s.l0_files;
    out.sorted_runs += s.sorted_runs;
    out.imm_memtables += s.imm_memtables;
    out.compaction_count += s.compaction_count;
    out.flush_count += s.flush_count;
    out.prefetched_blocks += s.prefetched_blocks;
    if (s.files_per_level.size() > out.files_per_level.size()) {
      out.files_per_level.resize(s.files_per_level.size(), 0);
    }
    for (size_t i = 0; i < s.files_per_level.size(); ++i) {
      out.files_per_level[i] += s.files_per_level[i];
    }
    if (s.entries_per_block > 0) {
      entries_per_block_sum += s.entries_per_block;
      ++shards_with_tables;
    }
    out.live_entries += s.live_entries;
    out.filter_bytes += s.filter_bytes;
    out.avg_bloom_bits_per_key +=
        s.avg_bloom_bits_per_key * static_cast<double>(s.live_entries);
  }
  if (shards_with_tables > 0) {
    out.entries_per_block = entries_per_block_sum / shards_with_tables;
  }
  // Entry-weighted average over shards (accumulated as a weighted sum).
  out.avg_bloom_bits_per_key =
      out.live_entries == 0
          ? 0
          : out.avg_bloom_bits_per_key / static_cast<double>(out.live_entries);
  return out;
}

DB::MaintenanceStats ShardedDB::GetMaintenanceStats() const {
  DB::MaintenanceStats out;
  for (const auto& shard : shards_) {
    DB::MaintenanceStats s = shard->GetMaintenanceStats();
    out.flushes += s.flushes;
    out.compactions += s.compactions;
    out.write_groups += s.write_groups;
    out.grouped_writes += s.grouped_writes;
    out.wal_syncs += s.wal_syncs;
    out.stall_micros += s.stall_micros;
    out.slowdown_writes += s.slowdown_writes;
    out.subcompactions += s.subcompactions;
    out.compact_read_bytes += s.compact_read_bytes;
    out.compact_write_bytes += s.compact_write_bytes;
  }
  return out;
}

void ShardedDB::SetWriteBufferSize(size_t total_bytes) {
  size_t per_shard = total_bytes / shards_.size();
  for (auto& shard : shards_) {
    shard->SetWriteBufferSize(per_shard);
  }
}

size_t ShardedDB::write_buffer_size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->write_buffer_size();
  }
  return total;
}

size_t ShardedDB::WriteBufferUsage() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->WriteBufferUsage();
  }
  return total;
}

void ShardedDB::SetBloomBitsPerKey(int bits_per_key) {
  for (auto& shard : shards_) {
    shard->SetBloomBitsPerKey(bits_per_key);
  }
}

Status ShardedDB::FlushMemTable() {
  Status result;
  for (auto& shard : shards_) {
    Status s = shard->FlushMemTable();
    if (result.ok()) result = s;
  }
  return result;
}

Status ShardedDB::CompactAll() {
  Status result;
  for (auto& shard : shards_) {
    Status s = shard->CompactAll();
    if (result.ok()) result = s;
  }
  return result;
}

}  // namespace adcache::lsm
