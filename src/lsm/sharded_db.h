#ifndef ADCACHE_LSM_SHARDED_DB_H_
#define ADCACHE_LSM_SHARDED_DB_H_

#include <memory>
#include <string>
#include <vector>

#include "lsm/db.h"
#include "lsm/iterator.h"
#include "lsm/options.h"
#include "lsm/write_batch.h"
#include "util/pinnable_slice.h"
#include "util/thread_pool.h"

namespace adcache::lsm {

/// N key-range shards, each a full lsm::DB (own memtable, WAL, levels and
/// group-commit leader), behind one DB-shaped facade. Shard i owns the keys
/// in [boundaries[i-1], boundaries[i]) — `ShardFor` is an upper_bound over
/// the sorted split points from Options::shard_boundaries (or the
/// ADCACHE_SHARD_BOUNDARIES / ADCACHE_SHARDS env vars; see
/// ResolveBoundaries). With no boundaries (the default) there is exactly one
/// shard opened directly at `dbname`, preserving the single-DB on-disk
/// layout byte for byte; N > 1 stores place each shard under
/// `dbname/shard-NNN`. Boundaries of an existing store must not change
/// between opens (routing at read time must match routing at write time) —
/// this is enforced: an N > 1 store records its resolved boundaries in a
/// `dbname/SHARDS` topology file at first open, and Open fails with
/// InvalidArgument when the resolved boundaries differ from the recorded
/// ones, when a store recorded as sharded is reopened unsharded, or when an
/// existing unsharded store is reopened with shard boundaries.
///
/// All shards schedule flushes/compactions onto ONE shared
/// util::ThreadPool of Options::max_background_jobs threads (injected via
/// Options::background_pool or created here), so the background thread
/// count never scales with N; per-shard maintenance stays single-flight, so
/// up to min(N, max_background_jobs) shards flush/compact in parallel.
///
/// Cross-shard semantics (documented in DESIGN.md §9):
///  - Write(batch) spanning shards is split per shard; each sub-batch is
///    shard-atomic but the whole batch is not atomic across shards.
///  - GetSnapshot is supported only for N == 1 (returns nullptr otherwise);
///    cross-shard iterators take per-shard read views, not one atomic
///    cross-shard snapshot.
///  - MultiGet scatters per shard and re-merges into the caller's original
///    slot order, duplicates included.
///  - NewIterator concatenates the per-shard iterators in boundary order
///    (key ranges are disjoint and sorted, so no heap-merge is needed).
class ShardedDB {
 public:
  static Status Open(const Options& options, const std::string& dbname,
                     std::unique_ptr<ShardedDB>* dbptr);

  /// The effective split points for `options`: Options::shard_boundaries if
  /// non-empty, else the ADCACHE_SHARD_BOUNDARIES env var (comma-separated
  /// keys), else ADCACHE_SHARDS=N interpolated evenly over the 2-byte key
  /// space, else empty (one shard). Sorted and deduplicated.
  static std::vector<std::string> ResolveBoundaries(const Options& options);

  /// Path of the shard-topology file recording an N > 1 store's resolved
  /// boundaries ("<dbname>/SHARDS"). Single-shard stores write none,
  /// keeping the unsharded layout untouched.
  static std::string TopologyFileName(const std::string& dbname);

  ShardedDB(const ShardedDB&) = delete;
  ShardedDB& operator=(const ShardedDB&) = delete;
  ~ShardedDB();

  /// Closes every shard (draining its in-flight maintenance), then joins
  /// the shared pool if this facade created it. Idempotent.
  Status Close();

  Status Put(const WriteOptions& write_options, const Slice& key,
             const Slice& value);
  Status Delete(const WriteOptions& write_options, const Slice& key);
  /// Splits `batch` per shard and applies each sub-batch atomically in its
  /// shard. NOT atomic across shards (see class comment).
  Status Write(const WriteOptions& write_options, const WriteBatch& batch);
  Status Get(const ReadOptions& read_options, const Slice& key,
             std::string* value);
  Status Get(const ReadOptions& read_options, const Slice& key,
             PinnableSlice* value);
  /// Scatters keys per shard (each shard's sub-batch keeps one SuperVersion
  /// acquisition and all the single-DB MultiGet batching) and writes every
  /// result back to the caller's original slot, duplicates included.
  void MultiGet(const ReadOptions& read_options, size_t n, const Slice* keys,
                PinnableSlice* values, Status* statuses);

  /// Single-shard only: returns nullptr when N > 1 (cross-shard snapshots
  /// are unsupported; see class comment).
  const Snapshot* GetSnapshot();
  void ReleaseSnapshot(const Snapshot* snapshot);

  /// User-key iterator over all shards in key order. Caller deletes. Each
  /// shard contributes its own read view taken when this is called.
  Iterator* NewIterator(const ReadOptions& read_options);

  /// Aggregated across shards: counters sum, num_levels_nonempty is the
  /// max, files_per_level is element-wise summed, entries_per_block is
  /// averaged over shards that have tables.
  DB::LsmShape GetLsmShape() const;
  /// Field-wise sum across shards.
  DB::MaintenanceStats GetMaintenanceStats() const;

  Env* env() const { return shards_[0]->env(); }
  /// The facade-level options (with resolved shard_boundaries).
  const Options& options() const { return options_; }

  Status FlushMemTable();
  Status CompactAll();

  /// Splits a facade-level write-buffer budget evenly across shards and
  /// retargets each (DB::SetWriteBufferSize semantics per shard, including
  /// early rotation on shrink).
  void SetWriteBufferSize(size_t total_bytes);
  /// Sum of the per-shard write-buffer targets.
  size_t write_buffer_size() const;
  /// Sum of the shards' active + immutable memtable bytes.
  size_t WriteBufferUsage() const;
  /// Applies one bloom bits/key threshold to every shard's future tables.
  void SetBloomBitsPerKey(int bits_per_key);
  int bloom_bits_per_key() const { return shards_[0]->bloom_bits_per_key(); }

  /// The shared maintenance pool every shard schedules on.
  util::ThreadPool* background_pool() const { return pool_.get(); }

  int shard_count() const { return static_cast<int>(shards_.size()); }
  DB* shard(int i) const { return shards_[static_cast<size_t>(i)].get(); }
  const std::vector<std::string>& boundaries() const { return boundaries_; }

  /// Index of the shard owning `key`: upper_bound over boundaries_.
  int ShardFor(const Slice& key) const;

 private:
  ShardedDB() = default;

  /// Validates `boundaries` against the on-disk topology file (writing it
  /// on the first sharded open). See the class comment for the failure
  /// modes; creates `dbname` when a topology file must be written.
  static Status CheckOrWriteTopology(Env* env, const std::string& dbname,
                                     const std::vector<std::string>& boundaries);

  Options options_;
  std::vector<std::string> boundaries_;  // sorted; shards_.size() - 1 entries
  std::vector<std::unique_ptr<DB>> shards_;
  /// Shared with every shard. Reset (joining the workers if this facade
  /// created the pool and holds the last reference) after all shards close.
  std::shared_ptr<util::ThreadPool> pool_;
  bool closed_ = false;
};

}  // namespace adcache::lsm

#endif  // ADCACHE_LSM_SHARDED_DB_H_
