#ifndef ADCACHE_LSM_LOG_WRITER_H_
#define ADCACHE_LSM_LOG_WRITER_H_

#include <memory>

#include "util/env.h"
#include "util/slice.h"
#include "util/status.h"

namespace adcache::lsm {

/// Append-only record log used for the WAL and the manifest. Each record is
/// framed as: fixed32 checksum | fixed32 payload length | payload.
class LogWriter {
 public:
  explicit LogWriter(std::unique_ptr<WritableFile> dest)
      : dest_(std::move(dest)) {}

  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  Status AddRecord(const Slice& record);
  Status Sync() { return dest_->Sync(); }
  uint64_t FileSize() const { return dest_->Size(); }

 private:
  std::unique_ptr<WritableFile> dest_;
};

/// Sequential reader for LogWriter output. Tolerates a truncated final
/// record (crash mid-append) by reporting end-of-log.
class LogReader {
 public:
  explicit LogReader(std::unique_ptr<SequentialFile> src)
      : src_(std::move(src)) {}

  LogReader(const LogReader&) = delete;
  LogReader& operator=(const LogReader&) = delete;

  /// Reads the next record into *scratch and points *record at it. Returns
  /// false at end of log. Corrupt (bad checksum) records end the log.
  bool ReadRecord(Slice* record, std::string* scratch);

 private:
  std::unique_ptr<SequentialFile> src_;
};

}  // namespace adcache::lsm

#endif  // ADCACHE_LSM_LOG_WRITER_H_
