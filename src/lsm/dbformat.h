#ifndef ADCACHE_LSM_DBFORMAT_H_
#define ADCACHE_LSM_DBFORMAT_H_

#include <cstdint>
#include <string>

#include "util/coding.h"
#include "util/slice.h"

namespace adcache::lsm {

using SequenceNumber = uint64_t;

constexpr SequenceNumber kMaxSequenceNumber = (uint64_t{1} << 56) - 1;

enum ValueType : uint8_t {
  kTypeDeletion = 0x0,
  kTypeValue = 0x1,
};

/// Internal keys append an 8-byte trailer to the user key:
/// (sequence << 8) | type. Ordering is user key ascending, then sequence
/// descending (newer entries first), then type descending.
struct ParsedInternalKey {
  Slice user_key;
  SequenceNumber sequence;
  ValueType type;
};

inline uint64_t PackSequenceAndType(SequenceNumber seq, ValueType t) {
  return (seq << 8) | t;
}

inline void AppendInternalKey(std::string* result,
                              const ParsedInternalKey& key) {
  result->append(key.user_key.data(), key.user_key.size());
  PutFixed64(result, PackSequenceAndType(key.sequence, key.type));
}

inline std::string MakeInternalKey(const Slice& user_key, SequenceNumber seq,
                                   ValueType t) {
  std::string result;
  result.reserve(user_key.size() + 8);
  ParsedInternalKey pkey{user_key, seq, t};
  AppendInternalKey(&result, pkey);
  return result;
}

inline Slice ExtractUserKey(const Slice& internal_key) {
  return Slice(internal_key.data(), internal_key.size() - 8);
}

inline bool ParseInternalKey(const Slice& internal_key,
                             ParsedInternalKey* result) {
  if (internal_key.size() < 8) return false;
  uint64_t num = DecodeFixed64(internal_key.data() + internal_key.size() - 8);
  uint8_t t = static_cast<uint8_t>(num & 0xff);
  if (t > kTypeValue) return false;
  result->sequence = num >> 8;
  result->type = static_cast<ValueType>(t);
  result->user_key = ExtractUserKey(internal_key);
  return true;
}

/// Orders internal keys: user key ascending, sequence/type descending.
class InternalKeyComparator {
 public:
  int Compare(const Slice& a, const Slice& b) const {
    int r = ExtractUserKey(a).compare(ExtractUserKey(b));
    if (r != 0) return r;
    uint64_t anum = DecodeFixed64(a.data() + a.size() - 8);
    uint64_t bnum = DecodeFixed64(b.data() + b.size() - 8);
    if (anum > bnum) return -1;
    if (anum < bnum) return +1;
    return 0;
  }
};

/// A seek target: internal key with max sequence so the first entry at or
/// after `user_key` visible at `seq` is found.
inline std::string MakeLookupKey(const Slice& user_key, SequenceNumber seq) {
  return MakeInternalKey(user_key, seq, kTypeValue);
}

// File naming helpers.
std::string TableFileName(const std::string& dbname, uint64_t number);
std::string WalFileName(const std::string& dbname, uint64_t number);
std::string ManifestFileName(const std::string& dbname);

}  // namespace adcache::lsm

#endif  // ADCACHE_LSM_DBFORMAT_H_
