#ifndef ADCACHE_LSM_DBFORMAT_H_
#define ADCACHE_LSM_DBFORMAT_H_

#include <cstdint>
#include <string>

#include "util/coding.h"
#include "util/slice.h"

namespace adcache::lsm {

using SequenceNumber = uint64_t;

constexpr SequenceNumber kMaxSequenceNumber = (uint64_t{1} << 56) - 1;

enum ValueType : uint8_t {
  kTypeDeletion = 0x0,
  kTypeValue = 0x1,
};

/// Internal keys append an 8-byte trailer to the user key:
/// (sequence << 8) | type. Ordering is user key ascending, then sequence
/// descending (newer entries first), then type descending.
struct ParsedInternalKey {
  Slice user_key;
  SequenceNumber sequence;
  ValueType type;
};

inline uint64_t PackSequenceAndType(SequenceNumber seq, ValueType t) {
  return (seq << 8) | t;
}

inline void AppendInternalKey(std::string* result,
                              const ParsedInternalKey& key) {
  result->append(key.user_key.data(), key.user_key.size());
  PutFixed64(result, PackSequenceAndType(key.sequence, key.type));
}

inline std::string MakeInternalKey(const Slice& user_key, SequenceNumber seq,
                                   ValueType t) {
  std::string result;
  result.reserve(user_key.size() + 8);
  ParsedInternalKey pkey{user_key, seq, t};
  AppendInternalKey(&result, pkey);
  return result;
}

inline Slice ExtractUserKey(const Slice& internal_key) {
  return Slice(internal_key.data(), internal_key.size() - 8);
}

inline bool ParseInternalKey(const Slice& internal_key,
                             ParsedInternalKey* result) {
  if (internal_key.size() < 8) return false;
  uint64_t num = DecodeFixed64(internal_key.data() + internal_key.size() - 8);
  uint8_t t = static_cast<uint8_t>(num & 0xff);
  if (t > kTypeValue) return false;
  result->sequence = num >> 8;
  result->type = static_cast<ValueType>(t);
  result->user_key = ExtractUserKey(internal_key);
  return true;
}

/// Orders internal keys: user key ascending, sequence/type descending.
class InternalKeyComparator {
 public:
  int Compare(const Slice& a, const Slice& b) const {
    int r = ExtractUserKey(a).compare(ExtractUserKey(b));
    if (r != 0) return r;
    uint64_t anum = DecodeFixed64(a.data() + a.size() - 8);
    uint64_t bnum = DecodeFixed64(b.data() + b.size() - 8);
    if (anum > bnum) return -1;
    if (anum < bnum) return +1;
    return 0;
  }
};

/// A seek target: internal key with max sequence so the first entry at or
/// after `user_key` visible at `seq` is found.
inline std::string MakeLookupKey(const Slice& user_key, SequenceNumber seq) {
  return MakeInternalKey(user_key, seq, kTypeValue);
}

/// A point-lookup seek key built once per Get and shared by every layer:
/// `memtable_key()` is the skiplist entry form (varint32 length prefix +
/// internal key), `internal_key()` the SSTable form. Keys up to ~110 bytes
/// fit in the inline buffer, so the hot read path performs no allocation.
class LookupKey {
 public:
  LookupKey(const Slice& user_key, SequenceNumber seq) {
    size_t isize = user_key.size() + 8;
    size_t needed = isize + 5;  // + varint32 length prefix
    char* dst = needed <= sizeof(space_) ? space_ : (heap_ = new char[needed]);
    start_ = dst;
    dst = EncodeVarint32(dst, static_cast<uint32_t>(isize));
    kstart_ = dst;
    memcpy(dst, user_key.data(), user_key.size());
    dst += user_key.size();
    EncodeFixed64(dst, PackSequenceAndType(seq, kTypeValue));
    end_ = dst + 8;
  }

  ~LookupKey() { delete[] heap_; }

  LookupKey(const LookupKey&) = delete;
  LookupKey& operator=(const LookupKey&) = delete;

  /// varint32 length prefix + internal key (MemTable entry format).
  const char* memtable_key() const { return start_; }

  /// user key + 8-byte trailer.
  Slice internal_key() const {
    return Slice(kstart_, static_cast<size_t>(end_ - kstart_));
  }

  Slice user_key() const {
    return Slice(kstart_, static_cast<size_t>(end_ - kstart_) - 8);
  }

 private:
  const char* start_;
  const char* kstart_;
  const char* end_;
  char* heap_ = nullptr;
  char space_[128];
};

// File naming helpers.
std::string TableFileName(const std::string& dbname, uint64_t number);
std::string WalFileName(const std::string& dbname, uint64_t number);
std::string ManifestFileName(const std::string& dbname);

}  // namespace adcache::lsm

#endif  // ADCACHE_LSM_DBFORMAT_H_
