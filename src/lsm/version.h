#ifndef ADCACHE_LSM_VERSION_H_
#define ADCACHE_LSM_VERSION_H_

#include <memory>
#include <string>
#include <vector>

#include "lsm/dbformat.h"
#include "lsm/iterator.h"
#include "lsm/options.h"
#include "lsm/table.h"

namespace adcache::lsm {

/// Metadata for one on-disk SSTable. Holds the open Table reader so a
/// version pins every file it references.
struct FileMetaData {
  uint64_t number = 0;
  uint64_t file_size = 0;
  std::string smallest;  // internal key
  std::string largest;   // internal key
  std::shared_ptr<Table> table;
};

using FileList = std::vector<std::shared_ptr<FileMetaData>>;

/// An immutable snapshot of the LSM-tree's file layout: level 0 holds
/// overlapping sorted runs (newest first); levels >= 1 are each one sorted
/// run of non-overlapping files.
class Version {
 public:
  explicit Version(int num_levels) : files_(num_levels) {}

  /// Point lookup through the levels, newest data first. On kFound,
  /// `value` pins the data block the entry was read from (see Table::Get).
  Table::LookupResult Get(const ReadOptions& read_options,
                          const Slice& user_key, SequenceNumber snapshot,
                          PinnableSlice* value);

  /// Batched point lookup mirroring Get: `pending[0..n)` holds unresolved
  /// lookup states sorted ascending by user key. Level 0 files are searched
  /// newest first, each file receiving its in-range sub-batch in one
  /// Table::MultiGet call; deeper levels group runs of consecutive sorted
  /// keys that fall in the same file. Sets `result` per state; the array is
  /// scratch and may be reordered/compacted.
  void MultiGet(const ReadOptions& read_options,
                Table::MultiGetState** pending, size_t n);

  /// Copying convenience overload.
  Table::LookupResult Get(const ReadOptions& read_options,
                          const Slice& user_key, SequenceNumber snapshot,
                          std::string* value) {
    PinnableSlice pinned;
    Table::LookupResult r = Get(read_options, user_key, snapshot, &pinned);
    if (r == Table::LookupResult::kFound) {
      value->assign(pinned.data(), pinned.size());
    }
    return r;
  }

  /// Appends iterators covering every sorted run to `*iters` (one per L0
  /// file plus one concatenating iterator per deeper level).
  void AddIterators(const ReadOptions& read_options,
                    std::vector<Iterator*>* iters) const;

  /// Files at `level` overlapping [begin, end] (user-key bounds; empty
  /// slices mean unbounded).
  void GetOverlappingInputs(int level, const Slice& begin, const Slice& end,
                            FileList* inputs) const;

  int num_levels() const { return static_cast<int>(files_.size()); }
  const FileList& files(int level) const { return files_[level]; }
  uint64_t LevelBytes(int level) const;
  int NumFiles(int level) const {
    return static_cast<int>(files_[level].size());
  }
  /// Total sorted runs: L0 files count individually; each non-empty deeper
  /// level is one run.
  int NumSortedRuns() const;
  /// Deepest non-empty level + 1 (the paper's L).
  int NumNonEmptyLevels() const;

 private:
  friend class DB;  // builds new versions during flush/compaction/recovery

  /// files_[0] ordered newest-first by file number; deeper levels ordered by
  /// smallest key.
  std::vector<FileList> files_;
};

/// Picks user-key split points partitioning a compaction's input key range
/// into at most `max_subcompactions` disjoint subranges of roughly equal
/// input bytes, for parallel subcompactions. Anchors come from the inputs'
/// pinned index blocks (one candidate per data block, weighted by the
/// block's on-disk size) plus each file's smallest/largest bounds, so the
/// selection reads no data blocks. Returns at most `max_subcompactions - 1`
/// strictly increasing user keys; subrange i covers user keys in
/// [result[i-1], result[i]) with open outer edges. Splitting on whole user
/// keys guarantees no key's version chain is divided across subcompactions.
/// Returns empty (serial merge) when `max_subcompactions <= 1` or the
/// inputs are too small to yield distinct interior boundaries.
std::vector<std::string> PickSubcompactionBoundaries(
    const FileList& inputs0, const FileList& inputs1, int max_subcompactions);

/// Concatenating iterator over the non-overlapping files of one level.
Iterator* NewLevelIterator(const ReadOptions& read_options,
                           const FileList* files);

/// Merging iterator over `children` (takes ownership of each child).
Iterator* NewMergingIterator(const InternalKeyComparator* cmp,
                             std::vector<Iterator*> children);

}  // namespace adcache::lsm

#endif  // ADCACHE_LSM_VERSION_H_
