#include "lsm/dbformat.h"

#include <cstdio>

namespace adcache::lsm {

namespace {
std::string NumberedFileName(const std::string& dbname, uint64_t number,
                             const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "/%06llu.%s",
                static_cast<unsigned long long>(number), suffix);
  return dbname + buf;
}
}  // namespace

std::string TableFileName(const std::string& dbname, uint64_t number) {
  return NumberedFileName(dbname, number, "sst");
}

std::string WalFileName(const std::string& dbname, uint64_t number) {
  return NumberedFileName(dbname, number, "wal");
}

std::string ManifestFileName(const std::string& dbname) {
  return dbname + "/MANIFEST";
}

}  // namespace adcache::lsm
