#ifndef ADCACHE_LSM_TABLE_H_
#define ADCACHE_LSM_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "lsm/block.h"
#include "lsm/bloom.h"
#include "lsm/dbformat.h"
#include "lsm/iterator.h"
#include "lsm/options.h"
#include "lsm/table_format.h"
#include "util/env.h"
#include "util/pinnable_slice.h"

namespace adcache::lsm {

/// Immutable SSTable reader. The index and bloom filter are pinned in memory
/// at open (as RocksDB does for L0/L1 by default); data blocks go through
/// the shared block cache, keyed by (file number, block offset) — which is
/// exactly why compaction invalidates them (paper §2.2).
class Table {
 public:
  /// Outcome of a point lookup inside one table.
  enum class LookupResult {
    kNotFound,   // table says nothing about the key
    kFound,      // value retrieved
    kDeleted,    // tombstone: key is deleted, stop searching older tables
  };

  static Status Open(const Options& options,
                     std::unique_ptr<RandomAccessFile> file,
                     uint64_t file_number, Env* env,
                     std::unique_ptr<Table>* table);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  /// Point lookup visible at `snapshot`. On kFound, `value` pins the data
  /// block holding the entry (block-cache handle or privately owned block)
  /// and points straight into it — no copy of the value bytes is made.
  LookupResult Get(const ReadOptions& read_options, const Slice& user_key,
                   SequenceNumber snapshot, PinnableSlice* value,
                   SequenceNumber* entry_seq);

  /// Copying convenience overload.
  LookupResult Get(const ReadOptions& read_options, const Slice& user_key,
                   SequenceNumber snapshot, std::string* value,
                   SequenceNumber* entry_seq) {
    PinnableSlice pinned;
    LookupResult r = Get(read_options, user_key, snapshot, &pinned, entry_seq);
    if (r == LookupResult::kFound) {
      value->assign(pinned.data(), pinned.size());
    }
    return r;
  }

  /// Iterator over the table's internal keys. Caller deletes.
  Iterator* NewIterator(const ReadOptions& read_options) const;

  /// One data block as described by the pinned index.
  struct BlockInfo {
    std::string last_internal_key;  // keys in the block are <= this
    BlockHandle handle;
  };

  /// Enumerates the table's data blocks in key order.
  std::vector<BlockInfo> GetBlockInfos() const;

  /// True if the block at `handle` currently resides in the block cache.
  bool IsBlockCached(const BlockHandle& handle) const;

  /// Reads the block at `handle` into the block cache (Leaper-style
  /// post-compaction warm-up). The read is background I/O: it does not
  /// count toward the SST-read metric.
  Status PrefetchBlock(const BlockHandle& handle);

  uint64_t num_entries() const { return footer_.num_entries; }
  uint64_t file_number() const { return file_number_; }

  /// Encodes the block-cache key for (file_number, offset).
  static std::string CacheKey(uint64_t file_number, uint64_t offset);

 private:
  class Iter;

  /// Pins a data block: via the block cache when enabled, else privately.
  /// The pin can be detached into a PinnableSlice (see Table::Get), which
  /// then owns releasing the handle / deleting the block.
  struct BlockRef {
    const Block* block = nullptr;
    Cache* cache = nullptr;
    Cache::Handle* handle = nullptr;
    Block* owned = nullptr;
    Status status;

    BlockRef() = default;
    BlockRef(BlockRef&& o) noexcept { *this = std::move(o); }
    BlockRef& operator=(BlockRef&& o) noexcept;
    BlockRef(const BlockRef&) = delete;
    BlockRef& operator=(const BlockRef&) = delete;
    ~BlockRef() { Reset(); }
    void Reset();
  };

  Table(const Options& options, std::unique_ptr<RandomAccessFile> file,
        uint64_t file_number, Env* env);

  BlockRef ReadBlock(const ReadOptions& read_options,
                     const BlockHandle& handle) const;

  Options options_;
  std::unique_ptr<RandomAccessFile> file_;
  uint64_t file_number_;
  Env* env_;
  Footer footer_;
  std::unique_ptr<Block> index_block_;
  std::string filter_data_;
  std::unique_ptr<BloomFilterReader> filter_;
  InternalKeyComparator icmp_;
};

}  // namespace adcache::lsm

#endif  // ADCACHE_LSM_TABLE_H_
