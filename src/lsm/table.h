#ifndef ADCACHE_LSM_TABLE_H_
#define ADCACHE_LSM_TABLE_H_

#include <cassert>
#include <memory>
#include <string>
#include <vector>

#include "lsm/block.h"
#include "lsm/bloom.h"
#include "lsm/dbformat.h"
#include "lsm/iterator.h"
#include "lsm/options.h"
#include "lsm/table_format.h"
#include "util/env.h"
#include "util/pinnable_slice.h"

namespace adcache::lsm {

/// Immutable SSTable reader. The index and bloom filter are pinned in memory
/// at open (as RocksDB does for L0/L1 by default); data blocks go through
/// the shared block cache, keyed by (file number, block offset) — which is
/// exactly why compaction invalidates them (paper §2.2).
class Table {
 public:
  /// Outcome of a point lookup inside one table.
  enum class LookupResult {
    kNotFound,   // table says nothing about the key
    kFound,      // value retrieved
    kDeleted,    // tombstone: key is deleted, stop searching older tables
  };

  static Status Open(const Options& options,
                     std::unique_ptr<RandomAccessFile> file,
                     uint64_t file_number, Env* env,
                     std::unique_ptr<Table>* table);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  /// Point lookup visible at `snapshot`. On kFound, `value` pins the data
  /// block holding the entry (block-cache handle or privately owned block)
  /// and points straight into it — no copy of the value bytes is made.
  LookupResult Get(const ReadOptions& read_options, const Slice& user_key,
                   SequenceNumber snapshot, PinnableSlice* value,
                   SequenceNumber* entry_seq);

  /// Per-key state for a batched point lookup, threaded from DB::MultiGet
  /// through Version::MultiGet down to Table::MultiGet. The batch owner
  /// keeps states sorted ascending by user key (so index and data blocks
  /// are visited monotonically) and owns the internal_key storage, which
  /// must outlive the batch.
  struct MultiGetState {
    Slice user_key;
    Slice internal_key;  // user_key + (snapshot, kTypeValue) trailer
    SequenceNumber snapshot = 0;
    PinnableSlice* value = nullptr;
    LookupResult result = LookupResult::kNotFound;
  };

  /// Batched point lookup over `n` unresolved states sorted ascending by
  /// user key. The bloom filter is probed once for the whole batch, one
  /// shared index iterator walks forward over the sorted keys, keys landing
  /// in the same data block share a single block-cache lookup (coalesced
  /// into Cache::MultiLookup across distinct blocks) or one storage read,
  /// and each block iterator serves every key in its block. Sets `result`
  /// per state and pins `value` on kFound exactly like Get; kNotFound
  /// states may be retried against older tables by the caller.
  void MultiGet(const ReadOptions& read_options, MultiGetState* const* keys,
                size_t n);

  /// Copying convenience overload.
  LookupResult Get(const ReadOptions& read_options, const Slice& user_key,
                   SequenceNumber snapshot, std::string* value,
                   SequenceNumber* entry_seq) {
    PinnableSlice pinned;
    LookupResult r = Get(read_options, user_key, snapshot, &pinned, entry_seq);
    if (r == LookupResult::kFound) {
      value->assign(pinned.data(), pinned.size());
    }
    return r;
  }

  /// Iterator over the table's internal keys. Caller deletes.
  Iterator* NewIterator(const ReadOptions& read_options) const;

  /// One data block as described by the pinned index.
  struct BlockInfo {
    std::string last_internal_key;  // keys in the block are <= this
    BlockHandle handle;
  };

  /// Enumerates the table's data blocks in key order.
  std::vector<BlockInfo> GetBlockInfos() const;

  /// True if the block at `handle` currently resides in the block cache.
  bool IsBlockCached(const BlockHandle& handle) const;

  /// Reads the block at `handle` into the block cache (Leaper-style
  /// post-compaction warm-up). The read is background I/O: it does not
  /// count toward the SST-read metric.
  Status PrefetchBlock(const BlockHandle& handle);

  uint64_t num_entries() const { return footer_.num_entries; }
  uint64_t file_number() const { return file_number_; }
  /// Bits/key this table's filter was built with (footer v2 telemetry;
  /// 0 = no filter, legacy tables report 10 when a filter is present).
  int bloom_bits_per_key() const {
    return static_cast<int>(footer_.bloom_bits_per_key);
  }
  /// Pinned filter block size in bytes (0 without a filter).
  uint64_t filter_bytes() const { return footer_.filter_handle.size; }

  /// The file-number half of this table's block-cache keys. SST numbers
  /// are assigned per-DB, so when several key-range shards share one block
  /// cache the raw (file_number, offset) pair collides across shards; the
  /// owning shard's id is folded into the top bits to disambiguate.
  uint64_t cache_file_id() const { return cache_file_id_; }
  static uint64_t CacheFileId(int shard_id, uint64_t file_number) {
    // The packing leaves 16 bits for the shard and 48 for the file number;
    // out-of-range values would silently alias another shard's cache keys.
    // File numbers are fetch_add-allocated so neither bound is reachable in
    // practice, but guard the invariant rather than assume it.
    assert(shard_id >= 0 && shard_id < (1 << 16));
    assert(file_number < (uint64_t{1} << 48));
    return (static_cast<uint64_t>(static_cast<uint32_t>(shard_id)) << 48) |
           (file_number & ((uint64_t{1} << 48) - 1));
  }

  /// Encodes the block-cache key for (cache_file_id, offset).
  static std::string CacheKey(uint64_t file_number, uint64_t offset);

  /// Width of an encoded block-cache key (two fixed64s).
  static constexpr size_t kCacheKeySize = 16;

  /// Allocation-free CacheKey: encodes into a caller-provided 16-byte
  /// buffer. The hot read paths use this with stack storage.
  static void EncodeCacheKey(uint64_t file_number, uint64_t offset,
                             char (&buf)[kCacheKeySize]);

 private:
  class Iter;

  /// Pins a data block: via the block cache when enabled, else privately.
  /// The pin can be detached into a PinnableSlice (see Table::Get), which
  /// then owns releasing the handle / deleting the block.
  struct BlockRef {
    const Block* block = nullptr;
    Cache* cache = nullptr;
    Cache::Handle* handle = nullptr;
    Block* owned = nullptr;
    Status status;

    BlockRef() = default;
    BlockRef(BlockRef&& o) noexcept { *this = std::move(o); }
    BlockRef& operator=(BlockRef&& o) noexcept;
    BlockRef(const BlockRef&) = delete;
    BlockRef& operator=(const BlockRef&) = delete;
    ~BlockRef() { Reset(); }
    void Reset();
  };

  Table(const Options& options, std::unique_ptr<RandomAccessFile> file,
        uint64_t file_number, Env* env);

  BlockRef ReadBlock(const ReadOptions& read_options,
                     const BlockHandle& handle) const;
  /// The cache-miss tail of ReadBlock: storage read + optional cache fill.
  /// `cache_key` is the pre-encoded key (may be empty when no cache is
  /// configured).
  BlockRef ReadBlockMiss(const ReadOptions& read_options,
                         const BlockHandle& handle, Slice cache_key) const;

  Options options_;
  std::unique_ptr<RandomAccessFile> file_;
  uint64_t file_number_;
  uint64_t cache_file_id_;
  Env* env_;
  Footer footer_;
  std::unique_ptr<Block> index_block_;
  std::string filter_data_;
  std::unique_ptr<BloomFilterReader> filter_;
  InternalKeyComparator icmp_;
};

}  // namespace adcache::lsm

#endif  // ADCACHE_LSM_TABLE_H_
