#ifndef ADCACHE_LSM_TABLE_BUILDER_H_
#define ADCACHE_LSM_TABLE_BUILDER_H_

#include <memory>
#include <string>

#include "lsm/block_builder.h"
#include "lsm/bloom.h"
#include "lsm/options.h"
#include "lsm/table_format.h"
#include "util/env.h"

namespace adcache::lsm {

/// Writes an SSTable: prefix-compressed 4 KB data blocks, a per-file bloom
/// filter over user keys, an index block mapping last-key -> block handle,
/// and a fixed footer. Keys (internal) must be added in sorted order.
class TableBuilder {
 public:
  /// `bloom_bits_per_key` overrides options.bloom_bits_per_key for this
  /// table (the DB passes its live dynamic threshold at flush/compaction
  /// time); < 0 adopts the static option. 0 disables the filter. The bits
  /// actually used are recorded in the footer.
  TableBuilder(const Options& options, std::unique_ptr<WritableFile> file,
               int bloom_bits_per_key = -1);

  TableBuilder(const TableBuilder&) = delete;
  TableBuilder& operator=(const TableBuilder&) = delete;

  void Add(const Slice& internal_key, const Slice& value);

  /// Flushes remaining data, writes filter/index/footer.
  Status Finish();

  uint64_t NumEntries() const { return num_entries_; }
  /// Resolved bits/key this table's filter is being built with (0 = none).
  int bloom_bits_per_key() const { return bloom_bits_per_key_; }
  /// Bytes written so far (approximate file size while building).
  uint64_t FileSize() const { return offset_ + data_block_.CurrentSizeEstimate(); }
  Status status() const { return status_; }

 private:
  void FlushDataBlock();
  Status WriteBlock(const Slice& contents, BlockHandle* handle);

  Options options_;
  std::unique_ptr<WritableFile> file_;
  int bloom_bits_per_key_;
  BlockBuilder data_block_;
  BlockBuilder index_block_;
  BloomFilterBuilder filter_;
  uint64_t offset_ = 0;
  uint64_t num_entries_ = 0;
  std::string last_key_;
  bool pending_index_entry_ = false;
  BlockHandle pending_handle_;
  Status status_;
};

}  // namespace adcache::lsm

#endif  // ADCACHE_LSM_TABLE_BUILDER_H_
