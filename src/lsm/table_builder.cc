#include "lsm/table_builder.h"

#include <cassert>

#include "lsm/dbformat.h"

namespace adcache::lsm {

TableBuilder::TableBuilder(const Options& options,
                           std::unique_ptr<WritableFile> file,
                           int bloom_bits_per_key)
    : options_(options),
      file_(std::move(file)),
      bloom_bits_per_key_(bloom_bits_per_key >= 0
                              ? bloom_bits_per_key
                              : options.bloom_bits_per_key),
      data_block_(options.block_restart_interval),
      index_block_(1),
      filter_(bloom_bits_per_key_ > 0 ? bloom_bits_per_key_ : 10) {}

void TableBuilder::Add(const Slice& internal_key, const Slice& value) {
  if (!status_.ok()) return;
  assert(last_key_.empty() ||
         InternalKeyComparator().Compare(Slice(last_key_), internal_key) < 0);

  if (pending_index_entry_) {
    // First key of a new block: index the previous block by its last key.
    std::string handle_encoding;
    pending_handle_.EncodeTo(&handle_encoding);
    index_block_.Add(Slice(last_key_), Slice(handle_encoding));
    pending_index_entry_ = false;
  }

  if (bloom_bits_per_key_ > 0) {
    filter_.AddKey(ExtractUserKey(internal_key));
  }
  data_block_.Add(internal_key, value);
  last_key_.assign(internal_key.data(), internal_key.size());
  num_entries_++;

  if (data_block_.CurrentSizeEstimate() >= options_.block_size) {
    FlushDataBlock();
  }
}

void TableBuilder::FlushDataBlock() {
  if (data_block_.empty()) return;
  Slice contents = data_block_.Finish();
  status_ = WriteBlock(contents, &pending_handle_);
  data_block_.Reset();
  pending_index_entry_ = true;
}

Status TableBuilder::WriteBlock(const Slice& contents, BlockHandle* handle) {
  handle->offset = offset_;
  handle->size = contents.size();
  Status s = file_->Append(contents);
  if (s.ok()) offset_ += contents.size();
  return s;
}

Status TableBuilder::Finish() {
  FlushDataBlock();
  if (!status_.ok()) return status_;

  if (pending_index_entry_) {
    std::string handle_encoding;
    pending_handle_.EncodeTo(&handle_encoding);
    index_block_.Add(Slice(last_key_), Slice(handle_encoding));
    pending_index_entry_ = false;
  }

  Footer footer;
  footer.num_entries = num_entries_;
  footer.bloom_bits_per_key =
      bloom_bits_per_key_ > 0 ? static_cast<uint64_t>(bloom_bits_per_key_) : 0;

  if (bloom_bits_per_key_ > 0) {
    std::string filter_contents = filter_.Finish();
    status_ = WriteBlock(Slice(filter_contents), &footer.filter_handle);
    if (!status_.ok()) return status_;
  }

  Slice index_contents = index_block_.Finish();
  status_ = WriteBlock(index_contents, &footer.index_handle);
  if (!status_.ok()) return status_;

  std::string footer_encoding;
  footer.EncodeTo(&footer_encoding);
  status_ = file_->Append(footer_encoding);
  if (status_.ok()) offset_ += footer_encoding.size();
  if (status_.ok()) status_ = file_->Sync();
  if (status_.ok()) status_ = file_->Close();
  return status_;
}

}  // namespace adcache::lsm
