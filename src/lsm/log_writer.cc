#include "lsm/log_writer.h"

#include "util/coding.h"
#include "util/hash.h"

namespace adcache::lsm {

namespace {
constexpr uint32_t kChecksumSeed = 0x8f1bbcdc;
}  // namespace

Status LogWriter::AddRecord(const Slice& record) {
  std::string header;
  PutFixed32(&header, Hash(record.data(), record.size(), kChecksumSeed));
  PutFixed32(&header, static_cast<uint32_t>(record.size()));
  Status s = dest_->Append(header);
  if (s.ok()) s = dest_->Append(record);
  if (s.ok()) s = dest_->Flush();
  return s;
}

bool LogReader::ReadRecord(Slice* record, std::string* scratch) {
  char header[8];
  Slice header_slice;
  Status s = src_->Read(sizeof(header), &header_slice, header);
  if (!s.ok() || header_slice.size() < sizeof(header)) return false;
  uint32_t expected_crc = DecodeFixed32(header_slice.data());
  uint32_t length = DecodeFixed32(header_slice.data() + 4);

  scratch->resize(length);
  Slice payload;
  s = src_->Read(length, &payload, scratch->data());
  if (!s.ok() || payload.size() < length) return false;
  if (Hash(payload.data(), payload.size(), kChecksumSeed) != expected_crc) {
    return false;
  }
  *record = payload;
  return true;
}

}  // namespace adcache::lsm
