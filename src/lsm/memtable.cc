#include "lsm/memtable.h"

#include "util/coding.h"

namespace adcache::lsm {

namespace {

/// Decodes a length-prefixed slice starting at `p`.
Slice GetLengthPrefixed(const char* p) {
  uint32_t len = 0;
  const char* q = GetVarint32Ptr(p, p + 5, &len);
  return Slice(q, len);
}

}  // namespace

int MemTable::KeyComparator::operator()(const char* a, const char* b) const {
  return comparator.Compare(GetLengthPrefixed(a), GetLengthPrefixed(b));
}

MemTable::MemTable() : table_(comparator_, &arena_) {}

void MemTable::Add(SequenceNumber seq, ValueType type, const Slice& user_key,
                   const Slice& value) {
  // Record layout: varint32 internal_key_len | internal_key | varint32
  // value_len | value.
  size_t internal_key_size = user_key.size() + 8;
  size_t encoded_len = static_cast<size_t>(VarintLength(internal_key_size)) +
                       internal_key_size +
                       static_cast<size_t>(VarintLength(value.size())) +
                       value.size();
  char* buf = arena_.Allocate(encoded_len);
  std::string scratch;
  scratch.reserve(encoded_len);
  PutVarint32(&scratch, static_cast<uint32_t>(internal_key_size));
  scratch.append(user_key.data(), user_key.size());
  PutFixed64(&scratch, PackSequenceAndType(seq, type));
  PutVarint32(&scratch, static_cast<uint32_t>(value.size()));
  scratch.append(value.data(), value.size());
  memcpy(buf, scratch.data(), encoded_len);
  table_.Insert(buf);
  num_entries_.fetch_add(1, std::memory_order_relaxed);
}

bool MemTable::Get(const LookupKey& key, Slice* value, bool* is_deleted) {
  Table::Iterator iter(&table_);
  iter.Seek(key.memtable_key());
  if (!iter.Valid()) return false;

  const char* entry = iter.key();
  Slice internal_key = GetLengthPrefixed(entry);
  if (ExtractUserKey(internal_key) != key.user_key()) return false;

  ParsedInternalKey parsed;
  if (!ParseInternalKey(internal_key, &parsed)) return false;
  if (parsed.type == kTypeDeletion) {
    *is_deleted = true;
    return true;
  }
  const char* value_pos = internal_key.data() + internal_key.size();
  *value = GetLengthPrefixed(value_pos);
  *is_deleted = false;
  return true;
}

// Named at namespace scope so MemTable's friend declaration applies.
class MemTableIterator : public Iterator {
 public:
  explicit MemTableIterator(MemTable::Table* table, MemTable* mem)
      : iter_(table), mem_(mem) {
    mem_->Ref();
  }
  ~MemTableIterator() override { mem_->Unref(); }

  bool Valid() const override { return iter_.Valid(); }
  void SeekToFirst() override { iter_.SeekToFirst(); }
  void SeekToLast() override { iter_.SeekToLast(); }
  void Seek(const Slice& target) override {
    scratch_.clear();
    PutVarint32(&scratch_, static_cast<uint32_t>(target.size()));
    scratch_.append(target.data(), target.size());
    iter_.Seek(scratch_.data());
  }
  void Next() override { iter_.Next(); }
  void Prev() override { iter_.Prev(); }
  Slice key() const override { return GetLengthPrefixed(iter_.key()); }
  Slice value() const override {
    Slice k = GetLengthPrefixed(iter_.key());
    return GetLengthPrefixed(k.data() + k.size());
  }
  Status status() const override { return Status::OK(); }

 private:
  MemTable::Table::Iterator iter_;
  MemTable* mem_;
  std::string scratch_;
};

Iterator* MemTable::NewIterator() { return new MemTableIterator(&table_, this); }

}  // namespace adcache::lsm
