#include "lsm/db.h"

#include <algorithm>
#include <cassert>

#include "lsm/table_builder.h"
#include "util/coding.h"

namespace adcache::lsm {

namespace {

Env* DefaultEnv() {
  static Env* env = NewPosixEnv().release();
  return env;
}

// WAL record = one atomic batch:
//   fixed64 first_sequence | fixed32 count |
//   count x (type byte | varint key | varint value)
// Operation i commits at sequence first_sequence + i.
void EncodeWalBatch(std::string* dst, SequenceNumber first_seq,
                    const WriteBatch& batch) {
  PutFixed64(dst, first_seq);
  PutFixed32(dst, static_cast<uint32_t>(batch.Count()));
  for (const auto& op : batch.ops()) {
    dst->push_back(static_cast<char>(op.type));
    PutLengthPrefixedSlice(dst, Slice(op.key));
    PutLengthPrefixedSlice(dst, Slice(op.value));
  }
}

bool DecodeWalBatch(Slice record, SequenceNumber* first_seq,
                    WriteBatch* batch) {
  batch->Clear();
  if (record.size() < 12) return false;
  *first_seq = DecodeFixed64(record.data());
  uint32_t count = DecodeFixed32(record.data() + 8);
  record.remove_prefix(12);
  for (uint32_t i = 0; i < count; i++) {
    if (record.empty()) return false;
    uint8_t t = static_cast<uint8_t>(record[0]);
    if (t > kTypeValue) return false;
    record.remove_prefix(1);
    Slice key, value;
    if (!GetLengthPrefixedSlice(&record, &key) ||
        !GetLengthPrefixedSlice(&record, &value)) {
      return false;
    }
    if (t == kTypeDeletion) {
      batch->Delete(key);
    } else {
      batch->Put(key, value);
    }
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Open / recovery
// ---------------------------------------------------------------------------

DB::DB(const Options& options, std::string dbname, Env* env)
    : options_(options), dbname_(std::move(dbname)), env_(env) {
  compact_pointer_.assign(static_cast<size_t>(options_.num_levels), 0);
}

DB::~DB() {
  if (mem_ != nullptr) mem_->Unref();
}

Status DB::Open(const Options& options, const std::string& dbname,
                std::unique_ptr<DB>* dbptr) {
  Env* env = options.env != nullptr ? options.env : DefaultEnv();
  Status s = env->CreateDirIfMissing(dbname);
  if (!s.ok()) return s;

  auto db = std::unique_ptr<DB>(new DB(options, dbname, env));
  db->mem_ = new MemTable();
  db->mem_->Ref();
  db->current_ = std::make_shared<Version>(options.num_levels);

  s = db->Recover();
  if (!s.ok()) return s;
  *dbptr = std::move(db);
  return Status::OK();
}

Status DB::OpenTable(uint64_t number, uint64_t* file_size,
                     std::shared_ptr<Table>* table) {
  std::string fname = TableFileName(dbname_, number);
  std::unique_ptr<RandomAccessFile> file;
  Status s = env_->NewRandomAccessFile(fname, &file);
  if (!s.ok()) return s;
  *file_size = file->Size();
  std::unique_ptr<Table> t;
  s = Table::Open(options_, std::move(file), number, env_, &t);
  if (!s.ok()) return s;
  total_table_entries_ += t->num_entries();
  total_table_blocks_ +=
      std::max<uint64_t>(1, *file_size / options_.block_size);
  *table = std::shared_ptr<Table>(t.release());
  return Status::OK();
}

Status DB::Recover() {
  std::string manifest = ManifestFileName(dbname_);
  uint64_t recovered_wal = 0;
  if (env_->FileExists(manifest)) {
    std::unique_ptr<SequentialFile> file;
    Status s = env_->NewSequentialFile(manifest, &file);
    if (!s.ok()) return s;
    LogReader reader(std::move(file));
    // The manifest holds full snapshots; the last readable one wins.
    Slice record;
    std::string scratch;
    std::string last_snapshot;
    while (reader.ReadRecord(&record, &scratch)) {
      last_snapshot = record.ToString();
    }
    if (!last_snapshot.empty()) {
      Slice input(last_snapshot);
      if (input.size() < 28) return Status::Corruption("short manifest");
      next_file_number_ = DecodeFixed64(input.data());
      last_sequence_ = DecodeFixed64(input.data() + 8);
      recovered_wal = DecodeFixed64(input.data() + 16);
      uint32_t num_files = DecodeFixed32(input.data() + 24);
      input.remove_prefix(28);
      auto version = std::make_shared<Version>(options_.num_levels);
      for (uint32_t i = 0; i < num_files; i++) {
        if (input.size() < 20) return Status::Corruption("short manifest");
        uint32_t level = DecodeFixed32(input.data());
        uint64_t number = DecodeFixed64(input.data() + 4);
        uint64_t size = DecodeFixed64(input.data() + 12);
        input.remove_prefix(20);
        Slice smallest, largest;
        if (!GetLengthPrefixedSlice(&input, &smallest) ||
            !GetLengthPrefixedSlice(&input, &largest)) {
          return Status::Corruption("short manifest");
        }
        auto meta = std::make_shared<FileMetaData>();
        meta->number = number;
        meta->file_size = size;
        meta->smallest = smallest.ToString();
        meta->largest = largest.ToString();
        uint64_t actual_size = 0;
        s = OpenTable(number, &actual_size, &meta->table);
        if (!s.ok()) return s;
        if (level >= static_cast<uint32_t>(options_.num_levels)) {
          return Status::Corruption("bad level in manifest");
        }
        version->files_[level].push_back(std::move(meta));
      }
      // L0 newest first; deeper levels by smallest key.
      std::sort(version->files_[0].begin(), version->files_[0].end(),
                [](const auto& a, const auto& b) {
                  return a->number > b->number;
                });
      InternalKeyComparator icmp;
      for (int lvl = 1; lvl < options_.num_levels; lvl++) {
        auto& files = version->files_[static_cast<size_t>(lvl)];
        std::sort(files.begin(), files.end(),
                  [&icmp](const auto& a, const auto& b) {
                    return icmp.Compare(Slice(a->smallest),
                                        Slice(b->smallest)) < 0;
                  });
      }
      current_ = version;
    }
  }

  if (options_.enable_wal && recovered_wal != 0 &&
      env_->FileExists(WalFileName(dbname_, recovered_wal))) {
    Status s = ReplayWal(recovered_wal);
    if (!s.ok()) return s;
  }

  Status s = NewWal();
  if (!s.ok()) return s;
  return WriteManifestSnapshot();
}

Status DB::ReplayWal(uint64_t wal_number) {
  std::unique_ptr<SequentialFile> file;
  Status s = env_->NewSequentialFile(WalFileName(dbname_, wal_number), &file);
  if (!s.ok()) return s;
  LogReader reader(std::move(file));
  Slice record;
  std::string scratch;
  WriteBatch batch;
  while (reader.ReadRecord(&record, &scratch)) {
    SequenceNumber seq;
    if (!DecodeWalBatch(record, &seq, &batch)) break;
    for (const auto& op : batch.ops()) {
      mem_->Add(seq++, op.type, Slice(op.key), Slice(op.value));
    }
    if (seq - 1 > last_sequence_) last_sequence_ = seq - 1;
  }
  return Status::OK();
}

const Snapshot* DB::GetSnapshot() {
  std::lock_guard<std::mutex> l(mutex_);
  SequenceNumber seq = last_sequence_.load(std::memory_order_acquire);
  snapshots_.insert(seq);
  return new Snapshot(seq);
}

void DB::ReleaseSnapshot(const Snapshot* snapshot) {
  if (snapshot == nullptr) return;
  {
    std::lock_guard<std::mutex> l(mutex_);
    auto it = snapshots_.find(snapshot->sequence());
    if (it != snapshots_.end()) snapshots_.erase(it);
  }
  delete snapshot;
}

SequenceNumber DB::SmallestLiveSnapshot() const {
  std::lock_guard<std::mutex> l(mutex_);
  if (snapshots_.empty()) {
    return last_sequence_.load(std::memory_order_acquire);
  }
  return *snapshots_.begin();
}

Status DB::NewWal() {
  if (!options_.enable_wal) return Status::OK();
  uint64_t old_wal = wal_number_;
  wal_number_ = next_file_number_++;
  std::unique_ptr<WritableFile> file;
  Status s = env_->NewWritableFile(WalFileName(dbname_, wal_number_), &file);
  if (!s.ok()) return s;
  wal_ = std::make_unique<LogWriter>(std::move(file));
  if (old_wal != 0) {
    env_->RemoveFile(WalFileName(dbname_, old_wal));  // best effort
  }
  return Status::OK();
}

Status DB::WriteManifestSnapshot() {
  std::shared_ptr<const Version> version;
  {
    std::lock_guard<std::mutex> l(mutex_);
    version = current_;
  }
  std::string record;
  PutFixed64(&record, next_file_number_);
  PutFixed64(&record, last_sequence_.load());
  PutFixed64(&record, wal_number_);
  uint32_t num_files = 0;
  for (int lvl = 0; lvl < version->num_levels(); lvl++) {
    num_files += static_cast<uint32_t>(version->files(lvl).size());
  }
  PutFixed32(&record, num_files);
  for (int lvl = 0; lvl < version->num_levels(); lvl++) {
    for (const auto& f : version->files(lvl)) {
      PutFixed32(&record, static_cast<uint32_t>(lvl));
      PutFixed64(&record, f->number);
      PutFixed64(&record, f->file_size);
      PutLengthPrefixedSlice(&record, Slice(f->smallest));
      PutLengthPrefixedSlice(&record, Slice(f->largest));
    }
  }
  // Rewrite the manifest from scratch: snapshots are self-contained.
  std::unique_ptr<WritableFile> file;
  Status s = env_->NewWritableFile(ManifestFileName(dbname_), &file);
  if (!s.ok()) return s;
  LogWriter writer(std::move(file));
  s = writer.AddRecord(Slice(record));
  if (s.ok()) s = writer.Sync();
  return s;
}

// ---------------------------------------------------------------------------
// Writes
// ---------------------------------------------------------------------------

Status DB::Put(const WriteOptions& write_options, const Slice& key,
               const Slice& value) {
  WriteBatch batch;
  batch.Put(key, value);
  return Write(write_options, batch);
}

Status DB::Delete(const WriteOptions& write_options, const Slice& key) {
  WriteBatch batch;
  batch.Delete(key);
  return Write(write_options, batch);
}

Status DB::Write(const WriteOptions& write_options, const WriteBatch& batch) {
  if (batch.Count() == 0) return Status::OK();
  std::lock_guard<std::mutex> wl(write_mutex_);
  SequenceNumber first_seq =
      last_sequence_.load(std::memory_order_relaxed) + 1;

  if (options_.enable_wal) {
    std::string record;
    EncodeWalBatch(&record, first_seq, batch);
    Status s = wal_->AddRecord(Slice(record));
    if (s.ok() && write_options.sync) s = wal_->Sync();
    if (!s.ok()) return s;
  }

  SequenceNumber seq = first_seq;
  for (const auto& op : batch.ops()) {
    mem_->Add(seq++, op.type, Slice(op.key), Slice(op.value));
  }
  // Publish only after every entry is reachable in the memtable, so readers
  // never observe a half-applied batch.
  last_sequence_.store(seq - 1, std::memory_order_release);

  if (mem_->ApproximateMemoryUsage() >= options_.memtable_size) {
    Status s = FlushMemTableLocked();
    if (!s.ok()) return s;
    Status cs;
    while (MaybeCompactOnce(&cs)) {
      if (!cs.ok()) return cs;
    }
  }
  return Status::OK();
}

Status DB::FlushMemTable() {
  std::lock_guard<std::mutex> wl(write_mutex_);
  Status s = FlushMemTableLocked();
  if (!s.ok()) return s;
  Status cs;
  while (MaybeCompactOnce(&cs)) {
    if (!cs.ok()) return cs;
  }
  return Status::OK();
}

Status DB::FlushMemTableLocked() {
  if (mem_->num_entries() == 0) return Status::OK();

  uint64_t file_number = next_file_number_++;
  std::unique_ptr<WritableFile> file;
  Status s =
      env_->NewWritableFile(TableFileName(dbname_, file_number), &file);
  if (!s.ok()) return s;

  TableBuilder builder(options_, std::move(file));
  std::unique_ptr<Iterator> iter(mem_->NewIterator());
  auto meta = std::make_shared<FileMetaData>();
  meta->number = file_number;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    if (meta->smallest.empty()) meta->smallest = iter->key().ToString();
    meta->largest = iter->key().ToString();
    builder.Add(iter->key(), iter->value());
  }
  s = builder.Finish();
  if (!s.ok()) return s;

  s = OpenTable(file_number, &meta->file_size, &meta->table);
  if (!s.ok()) return s;

  // Install: new version with the file prepended to L0, fresh memtable.
  auto new_version = std::make_shared<Version>(options_.num_levels);
  {
    std::lock_guard<std::mutex> l(mutex_);
    new_version->files_ = current_->files_;
    new_version->files_[0].insert(new_version->files_[0].begin(),
                                  std::move(meta));
    current_ = new_version;
    MemTable* old_mem = mem_;
    mem_ = new MemTable();
    mem_->Ref();
    old_mem->Unref();
  }
  flush_count_++;

  s = NewWal();
  if (s.ok()) s = WriteManifestSnapshot();
  return s;
}

// ---------------------------------------------------------------------------
// Compaction
// ---------------------------------------------------------------------------

uint64_t DB::MaxBytesForLevel(int level) const {
  uint64_t result = options_.level1_size_base;
  for (int i = 1; i < level; i++) {
    result *= static_cast<uint64_t>(options_.level_size_ratio);
  }
  return result;
}

bool DB::IsBaseLevelForKey(const Version& v, int output_level,
                           const Slice& user_key) const {
  for (int lvl = output_level + 1; lvl < v.num_levels(); lvl++) {
    for (const auto& f : v.files(lvl)) {
      if (user_key.compare(ExtractUserKey(Slice(f->smallest))) >= 0 &&
          user_key.compare(ExtractUserKey(Slice(f->largest))) <= 0) {
        return false;
      }
    }
  }
  return true;
}

bool DB::MaybeCompactOnce(Status* s) {
  if (options_.compaction_style == CompactionStyle::kUniversal) {
    return UniversalCompactOnce(s);
  }
  *s = Status::OK();
  std::shared_ptr<const Version> base;
  {
    std::lock_guard<std::mutex> l(mutex_);
    base = current_;
  }

  int input_level = -1;
  FileList inputs0;
  if (base->NumFiles(0) >= options_.l0_compaction_trigger) {
    input_level = 0;
    inputs0 = base->files(0);
  } else {
    for (int lvl = 1; lvl < options_.num_levels - 1; lvl++) {
      if (base->LevelBytes(lvl) > MaxBytesForLevel(lvl)) {
        input_level = lvl;
        const FileList& files = base->files(lvl);
        size_t pick = compact_pointer_[static_cast<size_t>(lvl)] %
                      files.size();
        compact_pointer_[static_cast<size_t>(lvl)] = pick + 1;
        inputs0.push_back(files[pick]);
        break;
      }
    }
  }
  if (input_level < 0) return false;
  int output_level = input_level + 1;

  // Key range of the inputs (user keys).
  std::string smallest_user, largest_user;
  for (const auto& f : inputs0) {
    std::string s_user = ExtractUserKey(Slice(f->smallest)).ToString();
    std::string l_user = ExtractUserKey(Slice(f->largest)).ToString();
    if (smallest_user.empty() || s_user < smallest_user) {
      smallest_user = s_user;
    }
    if (largest_user.empty() || l_user > largest_user) largest_user = l_user;
  }

  FileList inputs1;
  base->GetOverlappingInputs(output_level, Slice(smallest_user),
                             Slice(largest_user), &inputs1);

  // Merge the inputs into new output-level files. Compaction reads bypass
  // the block cache and are excluded from the SST-read metric.
  ReadOptions compaction_reads;
  compaction_reads.fill_block_cache = false;
  compaction_reads.count_block_reads = false;
  std::vector<Iterator*> children;
  for (const auto& f : inputs0) {
    children.push_back(f->table->NewIterator(compaction_reads));
  }
  for (const auto& f : inputs1) {
    children.push_back(f->table->NewIterator(compaction_reads));
  }
  InternalKeyComparator icmp;
  std::unique_ptr<Iterator> merged(
      NewMergingIterator(&icmp, std::move(children)));

  FileList outputs;
  std::unique_ptr<TableBuilder> builder;
  std::shared_ptr<FileMetaData> out_meta;
  uint64_t out_number = 0;
  std::string current_user_key;
  bool has_current_user_key = false;
  const SequenceNumber smallest_snapshot = SmallestLiveSnapshot();
  SequenceNumber last_sequence_for_key = kMaxSequenceNumber;

  auto finish_output = [&]() -> Status {
    if (builder == nullptr) return Status::OK();
    Status fs = builder->Finish();
    if (!fs.ok()) return fs;
    fs = OpenTable(out_number, &out_meta->file_size, &out_meta->table);
    if (!fs.ok()) return fs;
    outputs.push_back(out_meta);
    builder.reset();
    out_meta.reset();
    return Status::OK();
  };

  for (merged->SeekToFirst(); merged->Valid(); merged->Next()) {
    Slice internal_key = merged->key();
    ParsedInternalKey parsed;
    if (!ParseInternalKey(internal_key, &parsed)) {
      *s = Status::Corruption("bad key during compaction");
      return false;
    }
    if (!has_current_user_key ||
        parsed.user_key != Slice(current_user_key)) {
      current_user_key = parsed.user_key.ToString();
      has_current_user_key = true;
      last_sequence_for_key = kMaxSequenceNumber;
    }
    bool drop = false;
    if (last_sequence_for_key <= smallest_snapshot) {
      // A newer entry for this key is itself visible to every live
      // snapshot, so this one can never be read again.
      drop = true;
    } else if (parsed.type == kTypeDeletion &&
               parsed.sequence <= smallest_snapshot &&
               IsBaseLevelForKey(*base, output_level, parsed.user_key)) {
      drop = true;  // tombstone with nothing underneath
    }
    last_sequence_for_key = parsed.sequence;
    if (drop) continue;

    if (builder == nullptr) {
      out_number = next_file_number_++;
      std::unique_ptr<WritableFile> file;
      *s = env_->NewWritableFile(TableFileName(dbname_, out_number), &file);
      if (!s->ok()) return false;
      builder = std::make_unique<TableBuilder>(options_, std::move(file));
      out_meta = std::make_shared<FileMetaData>();
      out_meta->number = out_number;
      out_meta->smallest = internal_key.ToString();
    }
    out_meta->largest = internal_key.ToString();
    builder->Add(internal_key, merged->value());
    if (builder->FileSize() >= options_.table_file_size) {
      *s = finish_output();
      if (!s->ok()) return false;
    }
  }
  *s = finish_output();
  if (!s->ok()) return false;

  // Leaper-style prefetch, step 1: note which key ranges of the retiring
  // input files were hot (their blocks resident in the block cache), and
  // evict those now-dead blocks.
  std::vector<std::pair<std::string, std::string>> hot_ranges;
  if (options_.leaper_prefetch && options_.block_cache != nullptr) {
    auto scan_inputs = [&](const FileList& inputs) {
      for (const auto& f : inputs) {
        std::string prev_last = f->smallest;
        for (const Table::BlockInfo& info : f->table->GetBlockInfos()) {
          if (f->table->IsBlockCached(info.handle)) {
            hot_ranges.emplace_back(prev_last, info.last_internal_key);
            options_.block_cache->Erase(
                Slice(Table::CacheKey(f->number, info.handle.offset)));
          }
          prev_last = info.last_internal_key;
        }
      }
    };
    scan_inputs(inputs0);
    scan_inputs(inputs1);
  }

  // Install the result.
  auto new_version = std::make_shared<Version>(options_.num_levels);
  {
    std::lock_guard<std::mutex> l(mutex_);
    new_version->files_ = current_->files_;
    auto remove_inputs = [](FileList* files, const FileList& inputs) {
      for (const auto& in : inputs) {
        files->erase(std::remove_if(files->begin(), files->end(),
                                    [&](const auto& f) {
                                      return f->number == in->number;
                                    }),
                     files->end());
      }
    };
    remove_inputs(&new_version->files_[static_cast<size_t>(input_level)],
                  inputs0);
    remove_inputs(&new_version->files_[static_cast<size_t>(output_level)],
                  inputs1);
    auto& out_files =
        new_version->files_[static_cast<size_t>(output_level)];
    for (const auto& f : outputs) out_files.push_back(f);
    std::sort(out_files.begin(), out_files.end(),
              [&icmp](const auto& a, const auto& b) {
                return icmp.Compare(Slice(a->smallest), Slice(b->smallest)) <
                       0;
              });
    current_ = new_version;
  }
  compaction_count_++;

  // Leaper-style prefetch, step 2: warm the block cache with the output
  // blocks that cover the previously-hot key ranges.
  if (!hot_ranges.empty()) {
    size_t budget = hot_ranges.size() * 2;  // cap background read volume
    for (const auto& f : outputs) {
      if (budget == 0) break;
      std::string prev_last = f->smallest;
      for (const Table::BlockInfo& info : f->table->GetBlockInfos()) {
        bool overlaps = false;
        for (const auto& [lo, hi] : hot_ranges) {
          if (icmp.Compare(Slice(prev_last), Slice(hi)) <= 0 &&
              icmp.Compare(Slice(lo), Slice(info.last_internal_key)) <= 0) {
            overlaps = true;
            break;
          }
        }
        if (overlaps && budget > 0) {
          if (f->table->PrefetchBlock(info.handle).ok()) {
            prefetched_blocks_++;
            budget--;
          }
        }
        prev_last = info.last_internal_key;
      }
    }
  }

  // Delete obsolete input files (readers holding the old version keep the
  // underlying bytes alive through the Table's file handle).
  for (const auto& f : inputs0) {
    env_->RemoveFile(TableFileName(dbname_, f->number));
  }
  for (const auto& f : inputs1) {
    env_->RemoveFile(TableFileName(dbname_, f->number));
  }

  *s = WriteManifestSnapshot();
  return s->ok();
}

bool DB::UniversalCompactOnce(Status* s) {
  *s = Status::OK();
  std::shared_ptr<const Version> base;
  {
    std::lock_guard<std::mutex> l(mutex_);
    base = current_;
  }
  const FileList& runs = base->files(0);
  if (static_cast<int>(runs.size()) < options_.universal_run_trigger) {
    return false;
  }

  // Accumulate adjacent runs from the newest while sizes stay within the
  // configured ratio of the accumulated total.
  size_t pick = 1;
  uint64_t accumulated = runs[0]->file_size;
  while (pick < runs.size()) {
    uint64_t next = runs[pick]->file_size;
    if (next <= accumulated *
                    static_cast<uint64_t>(options_.universal_size_ratio) /
                    100) {
      accumulated += next;
      pick++;
    } else {
      break;
    }
  }
  if (pick < 2) pick = runs.size();  // no ratio pick: merge everything
  FileList inputs(runs.begin(),
                  runs.begin() + static_cast<long>(pick));
  const bool full_merge = pick == runs.size();

  ReadOptions compaction_reads;
  compaction_reads.fill_block_cache = false;
  compaction_reads.count_block_reads = false;
  std::vector<Iterator*> children;
  for (const auto& f : inputs) {
    children.push_back(f->table->NewIterator(compaction_reads));
  }
  InternalKeyComparator icmp;
  std::unique_ptr<Iterator> merged(
      NewMergingIterator(&icmp, std::move(children)));

  // One output run (universal compaction never splits a run).
  std::unique_ptr<TableBuilder> builder;
  std::shared_ptr<FileMetaData> out_meta;
  uint64_t out_number = 0;
  std::string current_user_key;
  bool has_current_user_key = false;
  const SequenceNumber smallest_snapshot = SmallestLiveSnapshot();
  SequenceNumber last_sequence_for_key = kMaxSequenceNumber;

  for (merged->SeekToFirst(); merged->Valid(); merged->Next()) {
    Slice internal_key = merged->key();
    ParsedInternalKey parsed;
    if (!ParseInternalKey(internal_key, &parsed)) {
      *s = Status::Corruption("bad key during universal compaction");
      return false;
    }
    if (!has_current_user_key ||
        parsed.user_key != Slice(current_user_key)) {
      current_user_key = parsed.user_key.ToString();
      has_current_user_key = true;
      last_sequence_for_key = kMaxSequenceNumber;
    }
    bool drop = false;
    if (last_sequence_for_key <= smallest_snapshot) {
      drop = true;
    } else if (parsed.type == kTypeDeletion &&
               parsed.sequence <= smallest_snapshot && full_merge &&
               IsBaseLevelForKey(*base, 0, parsed.user_key)) {
      // A tombstone may only disappear when no older run can still hold
      // the key: with a full merge the only candidates are deeper levels.
      drop = true;
    }
    last_sequence_for_key = parsed.sequence;
    if (drop) continue;

    if (builder == nullptr) {
      out_number = next_file_number_++;
      std::unique_ptr<WritableFile> file;
      *s = env_->NewWritableFile(TableFileName(dbname_, out_number), &file);
      if (!s->ok()) return false;
      builder = std::make_unique<TableBuilder>(options_, std::move(file));
      out_meta = std::make_shared<FileMetaData>();
      out_meta->number = out_number;
      out_meta->smallest = internal_key.ToString();
    }
    out_meta->largest = internal_key.ToString();
    builder->Add(internal_key, merged->value());
  }
  if (builder != nullptr) {
    *s = builder->Finish();
    if (!s->ok()) return false;
    *s = OpenTable(out_number, &out_meta->file_size, &out_meta->table);
    if (!s->ok()) return false;
  }

  // Install: the merged run replaces the picked (newest) runs at the front.
  auto new_version = std::make_shared<Version>(options_.num_levels);
  {
    std::lock_guard<std::mutex> l(mutex_);
    new_version->files_ = current_->files_;
    auto& l0 = new_version->files_[0];
    l0.erase(l0.begin(), l0.begin() + static_cast<long>(pick));
    if (out_meta != nullptr) l0.insert(l0.begin(), out_meta);
    current_ = new_version;
  }
  compaction_count_++;

  for (const auto& f : inputs) {
    env_->RemoveFile(TableFileName(dbname_, f->number));
  }
  *s = WriteManifestSnapshot();
  return s->ok();
}

Status DB::CompactAll() {
  std::lock_guard<std::mutex> wl(write_mutex_);
  Status s;
  while (MaybeCompactOnce(&s)) {
    if (!s.ok()) return s;
  }
  return s;
}

// ---------------------------------------------------------------------------
// Reads
// ---------------------------------------------------------------------------

Status DB::Get(const ReadOptions& read_options, const Slice& key,
               std::string* value) {
  MemTable* mem;
  std::shared_ptr<const Version> version;
  SequenceNumber snapshot;
  {
    std::lock_guard<std::mutex> l(mutex_);
    snapshot = read_options.snapshot != nullptr
                   ? read_options.snapshot->sequence()
                   : last_sequence_.load(std::memory_order_acquire);
    mem = mem_;
    mem->Ref();
    version = current_;
  }

  Status result;
  bool deleted = false;
  if (mem->Get(key, snapshot, value, &deleted)) {
    result = deleted ? Status::NotFound() : Status::OK();
  } else {
    auto r = const_cast<Version*>(version.get())
                 ->Get(read_options, key, snapshot, value);
    switch (r) {
      case Table::LookupResult::kFound:
        result = Status::OK();
        break;
      case Table::LookupResult::kDeleted:
      case Table::LookupResult::kNotFound:
        result = Status::NotFound();
        break;
    }
  }
  mem->Unref();
  return result;
}

// ---------------------------------------------------------------------------
// DB iterator (user keys, snapshot-consistent, forward + backward-free)
// ---------------------------------------------------------------------------

namespace {

/// Wraps a merged internal-key iterator: deduplicates user keys (newest
/// visible entry wins), hides tombstones and sequence trailers. Forward
/// iteration only (scans in LSM benchmarks are forward); Prev/SeekToLast
/// report NotSupported.
class DBIter : public Iterator {
 public:
  DBIter(Iterator* internal, SequenceNumber snapshot, MemTable* mem,
         std::shared_ptr<const Version> version)
      : internal_(internal),
        snapshot_(snapshot),
        mem_(mem),
        version_(std::move(version)) {
    mem_->Ref();
  }

  ~DBIter() override { mem_->Unref(); }

  bool Valid() const override { return valid_; }

  void SeekToFirst() override {
    internal_->SeekToFirst();
    FindNextUserEntry();
  }

  void Seek(const Slice& target) override {
    internal_->Seek(Slice(MakeLookupKey(target, snapshot_)));
    FindNextUserEntry();
  }

  void Next() override {
    assert(valid_);
    // Skip the remaining (older) entries of the current user key.
    std::string current = key_;
    while (internal_->Valid()) {
      ParsedInternalKey parsed;
      if (!ParseInternalKey(internal_->key(), &parsed)) break;
      if (parsed.user_key != Slice(current)) break;
      internal_->Next();
    }
    FindNextUserEntry();
  }

  void SeekToLast() override {
    valid_ = false;
    status_ = Status::NotSupported("backward iteration");
  }
  void Prev() override {
    valid_ = false;
    status_ = Status::NotSupported("backward iteration");
  }

  Slice key() const override { return Slice(key_); }
  Slice value() const override { return Slice(value_); }
  Status status() const override {
    return status_.ok() ? internal_->status() : status_;
  }

 private:
  /// Advances to the newest visible, non-deleted entry of the next user key
  /// at or after the internal iterator's position.
  void FindNextUserEntry() {
    valid_ = false;
    std::string skip_user_key;
    bool skipping = false;
    while (internal_->Valid()) {
      ParsedInternalKey parsed;
      if (!ParseInternalKey(internal_->key(), &parsed)) {
        internal_->Next();
        continue;
      }
      if (parsed.sequence > snapshot_) {
        internal_->Next();
        continue;
      }
      if (skipping && parsed.user_key == Slice(skip_user_key)) {
        internal_->Next();
        continue;
      }
      if (parsed.type == kTypeDeletion) {
        skip_user_key = parsed.user_key.ToString();
        skipping = true;
        internal_->Next();
        continue;
      }
      key_ = parsed.user_key.ToString();
      value_ = internal_->value().ToString();
      valid_ = true;
      // Position internal_ after this entry for the next call.
      internal_->Next();
      // Skip older entries of the same user key now so Next() is simple.
      while (internal_->Valid()) {
        ParsedInternalKey p2;
        if (!ParseInternalKey(internal_->key(), &p2)) break;
        if (p2.user_key != Slice(key_)) break;
        internal_->Next();
      }
      return;
    }
  }

  std::unique_ptr<Iterator> internal_;
  SequenceNumber snapshot_;
  MemTable* mem_;
  std::shared_ptr<const Version> version_;
  bool valid_ = false;
  std::string key_;
  std::string value_;
  Status status_;
};

}  // namespace

Iterator* DB::NewIterator(const ReadOptions& read_options) {
  MemTable* mem;
  std::shared_ptr<const Version> version;
  SequenceNumber snapshot;
  {
    std::lock_guard<std::mutex> l(mutex_);
    snapshot = read_options.snapshot != nullptr
                   ? read_options.snapshot->sequence()
                   : last_sequence_.load(std::memory_order_acquire);
    mem = mem_;
    mem->Ref();
    version = current_;
  }
  std::vector<Iterator*> children;
  children.push_back(mem->NewIterator());
  version->AddIterators(read_options, &children);
  static InternalKeyComparator icmp;
  Iterator* merged = NewMergingIterator(&icmp, std::move(children));
  auto* iter = new DBIter(merged, snapshot, mem, version);
  mem->Unref();  // DBIter holds its own reference
  return iter;
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

DB::LsmShape DB::GetLsmShape() const {
  std::shared_ptr<const Version> version;
  {
    std::lock_guard<std::mutex> l(mutex_);
    version = current_;
  }
  LsmShape shape;
  shape.num_levels_nonempty = version->NumNonEmptyLevels();
  shape.l0_files = version->NumFiles(0);
  shape.sorted_runs = version->NumSortedRuns();
  shape.compaction_count = compaction_count_.load();
  shape.flush_count = flush_count_.load();
  shape.prefetched_blocks = prefetched_blocks_.load();
  for (int lvl = 0; lvl < version->num_levels(); lvl++) {
    shape.files_per_level.push_back(version->NumFiles(lvl));
  }
  uint64_t blocks = total_table_blocks_.load();
  shape.entries_per_block =
      blocks == 0 ? 0
                  : static_cast<double>(total_table_entries_.load()) /
                        static_cast<double>(blocks);
  return shape;
}

}  // namespace adcache::lsm
