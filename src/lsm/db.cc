#include "lsm/db.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <thread>

#include "lsm/table_builder.h"
#include "util/clock.h"
#include "util/coding.h"
#include "util/inline_buffer.h"
#include "util/options_env.h"
#include "util/perf_context.h"

namespace adcache::lsm {

Env* DefaultDbEnv() {
  static Env* env = NewPosixEnv().release();
  return env;
}

namespace {

// WAL record = one atomic commit group (>= 1 batches):
//   fixed64 first_sequence | fixed32 count |
//   count x (type byte | varint key | varint value)
// Operation i commits at sequence first_sequence + i.
void EncodeWalGroup(std::string* dst, SequenceNumber first_seq,
                    const std::vector<const WriteBatch*>& batches) {
  uint32_t count = 0;
  for (const WriteBatch* b : batches) {
    count += static_cast<uint32_t>(b->Count());
  }
  PutFixed64(dst, first_seq);
  PutFixed32(dst, count);
  for (const WriteBatch* b : batches) {
    for (const auto& op : b->ops()) {
      dst->push_back(static_cast<char>(op.type));
      PutLengthPrefixedSlice(dst, Slice(op.key));
      PutLengthPrefixedSlice(dst, Slice(op.value));
    }
  }
}

bool DecodeWalGroup(Slice record, SequenceNumber* first_seq,
                    WriteBatch* batch) {
  batch->Clear();
  if (record.size() < 12) return false;
  *first_seq = DecodeFixed64(record.data());
  uint32_t count = DecodeFixed32(record.data() + 8);
  record.remove_prefix(12);
  for (uint32_t i = 0; i < count; i++) {
    if (record.empty()) return false;
    uint8_t t = static_cast<uint8_t>(record[0]);
    if (t > kTypeValue) return false;
    record.remove_prefix(1);
    Slice key, value;
    if (!GetLengthPrefixedSlice(&record, &key) ||
        !GetLengthPrefixedSlice(&record, &value)) {
      return false;
    }
    if (t == kTypeDeletion) {
      batch->Delete(key);
    } else {
      batch->Put(key, value);
    }
  }
  return true;
}

/// Parses "NNNNNN.wal" (the basename produced by WalFileName).
bool ParseWalFileName(const std::string& name, uint64_t* number) {
  unsigned long long n = 0;
  char suffix[8] = {0};
  if (std::sscanf(name.c_str(), "%llu.%3s", &n, suffix) != 2) return false;
  if (std::string(suffix) != "wal") return false;
  *number = n;
  return true;
}

uint64_t WallMicros() {
  return SystemClock::Default()->NowMicros();
}

}  // namespace

// ---------------------------------------------------------------------------
// Open / recovery
// ---------------------------------------------------------------------------

DB::DB(const Options& options, std::string dbname, Env* env)
    : options_(options),
      dbname_(std::move(dbname)),
      env_(env),
      write_buffer_size_(options.memtable_size),
      bloom_bits_per_key_(options.bloom_bits_per_key) {
  compact_pointer_.assign(static_cast<size_t>(options_.num_levels), 0);
  local_sv_ =
      std::make_unique<util::ThreadLocalPtr>(&DB::SuperVersionUnrefHandler);
}

DB::~DB() {
  Close();
  // Reclaim the per-thread cached SuperVersions first (the ThreadLocalPtr
  // destructor clears every slot and unrefs parked copies), then drop the
  // DB's own reference. Memtable references held by the SuperVersion are
  // released through its Cleanup; the DB's direct refs below are separate.
  local_sv_.reset();
  UnrefSuperVersion(super_version_);
  super_version_ = nullptr;
  for (MemTable* m : imm_) m->Unref();
  imm_.clear();
  if (mem_ != nullptr) mem_->Unref();
}

Status DB::Close() {
  {
    std::unique_lock<std::mutex> l(mutex_);
    if (closed_) return bg_error_;
    shutting_down_ = true;
    // Drain the in-flight maintenance jobs (each re-checks shutting_down_
    // before starting another unit, so this wait is bounded by one flush
    // plus one compaction). Subcompaction helpers scheduled by an in-flight
    // compaction finish with it; helpers still queued when the job closes
    // exit without touching the DB (see RunCompactionMerge).
    while (BackgroundWorkScheduled()) bg_work_done_cv_.wait(l);
    closed_ = true;
  }
  // Owned pool: the reset destroys it, joining the workers (this DB's jobs
  // have drained). Shared pool: only drops this shard's reference — sibling
  // shards may still have jobs queued; the facade joins after all close.
  bg_pool_.reset();
  bg_work_done_cv_.notify_all();
  std::lock_guard<std::mutex> l(mutex_);
  return bg_error_;
}

Status DB::Open(const Options& options, const std::string& dbname,
                std::unique_ptr<DB>* dbptr) {
  Env* env = options.env != nullptr ? options.env : DefaultDbEnv();
  Status s = env->CreateDirIfMissing(dbname);
  if (!s.ok()) return s;

  auto db = std::unique_ptr<DB>(new DB(options, dbname, env));
  // Env-var secondary tier, before Recover opens any table (tables copy
  // options at open). A ShardedDB parent that built a shared secondary
  // cache pre-sets options.secondary_cache, making this a no-op.
  s = MaybeInstallSecondaryCacheFromEnv(&db->options_, dbname, env);
  if (!s.ok()) return s;
  db->mem_ = new MemTable();
  db->mem_->Ref();
  db->current_ = std::make_shared<Version>(options.num_levels);

  s = db->Recover();
  if (!s.ok()) return s;

  // Background maintenance starts only after recovery: everything above
  // runs single-threaded. `max_background_jobs` is a hard thread cap —
  // subcompactions never grow the pool; a K wider than the pool just means
  // more ranges than threads, and the claim loop drains the excess on
  // whatever threads exist (coordinator included). Auto fan-out (no
  // option, no env) follows the pool size.
  int subcompactions =
      options.max_subcompactions > 0
          ? options.max_subcompactions
          : util::OptionsFromEnv::Int("ADCACHE_SUBCOMPACTIONS", 0);
  db->bg_pool_ = options.background_pool != nullptr
                     ? options.background_pool
                     : std::make_shared<util::ThreadPool>(
                           options.max_background_jobs);
  if (subcompactions <= 0) subcompactions = db->bg_pool_->num_threads();
  db->max_subcompactions_ = std::max(1, subcompactions);
  {
    std::lock_guard<std::mutex> l(db->mutex_);
    db->InstallSuperVersionLocked();  // publish the initial read state
    db->MaybeScheduleMaintenance();  // recovered tree may be over-threshold
  }
  *dbptr = std::move(db);
  return Status::OK();
}

Status DB::OpenTable(uint64_t number, uint64_t* file_size,
                     std::shared_ptr<Table>* table) {
  std::string fname = TableFileName(dbname_, number);
  std::unique_ptr<RandomAccessFile> file;
  Status s = env_->NewRandomAccessFile(fname, &file);
  if (!s.ok()) return s;
  *file_size = file->Size();
  std::unique_ptr<Table> t;
  s = Table::Open(options_, std::move(file), number, env_, &t);
  if (!s.ok()) return s;
  total_table_entries_ += t->num_entries();
  total_table_blocks_ +=
      std::max<uint64_t>(1, *file_size / options_.block_size);
  *table = std::shared_ptr<Table>(t.release());
  return Status::OK();
}

Status DB::Recover() {
  std::string manifest = ManifestFileName(dbname_);
  uint64_t recovered_wal = 0;
  if (env_->FileExists(manifest)) {
    std::unique_ptr<SequentialFile> file;
    Status s = env_->NewSequentialFile(manifest, &file);
    if (!s.ok()) return s;
    LogReader reader(std::move(file));
    // The manifest holds full snapshots; the last readable one wins.
    Slice record;
    std::string scratch;
    std::string last_snapshot;
    while (reader.ReadRecord(&record, &scratch)) {
      last_snapshot = record.ToString();
    }
    if (!last_snapshot.empty()) {
      Slice input(last_snapshot);
      if (input.size() < 28) return Status::Corruption("short manifest");
      next_file_number_ = DecodeFixed64(input.data());
      last_sequence_ = DecodeFixed64(input.data() + 8);
      recovered_wal = DecodeFixed64(input.data() + 16);
      uint32_t num_files = DecodeFixed32(input.data() + 24);
      input.remove_prefix(28);
      auto version = std::make_shared<Version>(options_.num_levels);
      for (uint32_t i = 0; i < num_files; i++) {
        if (input.size() < 20) return Status::Corruption("short manifest");
        uint32_t level = DecodeFixed32(input.data());
        uint64_t number = DecodeFixed64(input.data() + 4);
        uint64_t size = DecodeFixed64(input.data() + 12);
        input.remove_prefix(20);
        Slice smallest, largest;
        if (!GetLengthPrefixedSlice(&input, &smallest) ||
            !GetLengthPrefixedSlice(&input, &largest)) {
          return Status::Corruption("short manifest");
        }
        auto meta = std::make_shared<FileMetaData>();
        meta->number = number;
        meta->file_size = size;
        meta->smallest = smallest.ToString();
        meta->largest = largest.ToString();
        uint64_t actual_size = 0;
        s = OpenTable(number, &actual_size, &meta->table);
        if (!s.ok()) return s;
        if (level >= static_cast<uint32_t>(options_.num_levels)) {
          return Status::Corruption("bad level in manifest");
        }
        version->files_[level].push_back(std::move(meta));
      }
      // L0 keeps the manifest's order verbatim: the manifest records the
      // version's L0 in recency order (newest first), and with flushes
      // overlapping compactions a compaction output can carry a HIGHER file
      // number than a later-flushed (newer) run — re-sorting by number here
      // would put stale data in front of fresh data. Deeper levels sort by
      // smallest key.
      InternalKeyComparator icmp;
      for (int lvl = 1; lvl < options_.num_levels; lvl++) {
        auto& files = version->files_[static_cast<size_t>(lvl)];
        std::sort(files.begin(), files.end(),
                  [&icmp](const auto& a, const auto& b) {
                    return icmp.Compare(Slice(a->smallest),
                                        Slice(b->smallest)) < 0;
                  });
      }
      current_ = version;
    }
  }

  // Replay every WAL at or after the manifest's oldest-live marker, oldest
  // first; anything older is flushed data whose deletion did not complete.
  uint64_t oldest_replayed = 0;
  if (options_.enable_wal) {
    std::vector<std::string> children;
    env_->GetChildren(dbname_, &children);  // best effort
    std::vector<uint64_t> live, dead;
    for (const std::string& child : children) {
      uint64_t number = 0;
      if (!ParseWalFileName(child, &number)) continue;
      if (number >= recovered_wal) {
        live.push_back(number);
      } else {
        dead.push_back(number);
      }
    }
    std::sort(live.begin(), live.end());
    for (uint64_t number : live) {
      Status s = ReplayWal(number);
      if (!s.ok()) return s;
      live_wal_files_.insert(number);
      if (number >= next_file_number_.load()) {
        next_file_number_ = number + 1;
      }
    }
    if (!live.empty()) oldest_replayed = live.front();
    for (uint64_t number : dead) {
      env_->RemoveFile(WalFileName(dbname_, number));  // best effort
    }
  }

  Status s = NewWalLocked();  // single-threaded here; mutex_ not required
  if (!s.ok()) return s;
  // The active memtable's coverage starts at the oldest replayed WAL (its
  // entries are not yet in any SST) or at the fresh one.
  mem_->set_wal_number(oldest_replayed != 0 ? oldest_replayed : wal_number_);
  return WriteManifestSnapshot();
}

Status DB::ReplayWal(uint64_t wal_number) {
  std::unique_ptr<SequentialFile> file;
  Status s = env_->NewSequentialFile(WalFileName(dbname_, wal_number), &file);
  if (!s.ok()) return s;
  LogReader reader(std::move(file));
  Slice record;
  std::string scratch;
  WriteBatch batch;
  while (reader.ReadRecord(&record, &scratch)) {
    SequenceNumber seq;
    if (!DecodeWalGroup(record, &seq, &batch)) break;
    for (const auto& op : batch.ops()) {
      mem_->Add(seq++, op.type, Slice(op.key), Slice(op.value));
    }
    if (seq - 1 > last_sequence_) last_sequence_ = seq - 1;
  }
  return Status::OK();
}

const Snapshot* DB::GetSnapshot() {
  std::lock_guard<std::mutex> l(mutex_);
  SequenceNumber seq = last_sequence_.load(std::memory_order_acquire);
  snapshots_.insert(seq);
  return new Snapshot(seq);
}

void DB::ReleaseSnapshot(const Snapshot* snapshot) {
  if (snapshot == nullptr) return;
  {
    std::lock_guard<std::mutex> l(mutex_);
    auto it = snapshots_.find(snapshot->sequence());
    if (it != snapshots_.end()) snapshots_.erase(it);
  }
  delete snapshot;
}

SequenceNumber DB::SmallestLiveSnapshot() const {
  std::lock_guard<std::mutex> l(mutex_);
  if (snapshots_.empty()) {
    return last_sequence_.load(std::memory_order_acquire);
  }
  return *snapshots_.begin();
}

Status DB::NewWalLocked() {
  if (!options_.enable_wal) return Status::OK();
  uint64_t number = next_file_number_.fetch_add(1);
  std::unique_ptr<WritableFile> file;
  Status s = env_->NewWritableFile(WalFileName(dbname_, number), &file);
  if (!s.ok()) return s;
  wal_ = std::make_unique<LogWriter>(std::move(file));
  wal_number_ = number;
  live_wal_files_.insert(number);
  return Status::OK();
}

Status DB::WriteManifestSnapshot() {
  // Gather a consistent state snapshot under the lock; build and write the
  // record outside it. With flush and compaction overlapped, both finish by
  // writing a snapshot; manifest_mutex_ serializes the whole
  // gather-build-write so two rewrites of the manifest file never
  // interleave (lock order: manifest_mutex_ -> mutex_). A snapshot gathered
  // later always sees a superset of installs, so the last writer wins with
  // a complete state.
  std::lock_guard<std::mutex> manifest_lock(manifest_mutex_);
  std::shared_ptr<const Version> version;
  uint64_t next_file_number;
  uint64_t last_sequence;
  uint64_t oldest_live_wal;
  {
    std::lock_guard<std::mutex> l(mutex_);
    version = current_;
    next_file_number = next_file_number_.load(std::memory_order_relaxed);
    last_sequence = last_sequence_.load(std::memory_order_acquire);
    if (!options_.enable_wal) {
      oldest_live_wal = 0;
    } else if (!imm_.empty()) {
      oldest_live_wal = imm_.front()->wal_number();
    } else {
      oldest_live_wal = mem_ != nullptr ? mem_->wal_number() : wal_number_;
    }
  }
  std::string record;
  PutFixed64(&record, next_file_number);
  PutFixed64(&record, last_sequence);
  PutFixed64(&record, oldest_live_wal);
  uint32_t num_files = 0;
  for (int lvl = 0; lvl < version->num_levels(); lvl++) {
    num_files += static_cast<uint32_t>(version->files(lvl).size());
  }
  PutFixed32(&record, num_files);
  for (int lvl = 0; lvl < version->num_levels(); lvl++) {
    for (const auto& f : version->files(lvl)) {
      PutFixed32(&record, static_cast<uint32_t>(lvl));
      PutFixed64(&record, f->number);
      PutFixed64(&record, f->file_size);
      PutLengthPrefixedSlice(&record, Slice(f->smallest));
      PutLengthPrefixedSlice(&record, Slice(f->largest));
    }
  }
  // Rewrite the manifest from scratch: snapshots are self-contained.
  std::unique_ptr<WritableFile> file;
  Status s = env_->NewWritableFile(ManifestFileName(dbname_), &file);
  if (!s.ok()) return s;
  LogWriter writer(std::move(file));
  s = writer.AddRecord(Slice(record));
  if (s.ok()) s = writer.Sync();
  return s;
}

// ---------------------------------------------------------------------------
// Writes: leader/follower group commit
// ---------------------------------------------------------------------------

Status DB::Put(const WriteOptions& write_options, const Slice& key,
               const Slice& value) {
  WriteBatch batch;
  batch.Put(key, value);
  return Write(write_options, batch);
}

Status DB::Delete(const WriteOptions& write_options, const Slice& key) {
  WriteBatch batch;
  batch.Delete(key);
  return Write(write_options, batch);
}

Status DB::Write(const WriteOptions& write_options, const WriteBatch& batch) {
  if (batch.Count() == 0) return Status::OK();
  return WriteImpl(write_options, &batch);
}

std::vector<DB::Writer*> DB::BuildWriteGroup(Writer* leader) {
  std::vector<Writer*> group{leader};
  if (!options_.enable_group_commit) return group;
  size_t bytes = leader->batch->ApproximateSize();
  // Don't make a tiny write wait on a huge group's WAL record.
  size_t max_bytes = options_.write_group_max_bytes;
  if (bytes <= 1024) {
    max_bytes = std::min<size_t>(max_bytes, bytes + (128 << 10));
  }
  for (auto it = writers_.begin() + 1; it != writers_.end(); ++it) {
    Writer* w = *it;
    if (w->batch == nullptr) break;  // memtable-switch request: own turn
    if (w->sync && !leader->sync) break;  // don't demote a sync write
    // One group is one WAL record carrying exactly the group's operations
    // (recovery replays record-sized sequence runs), so WAL and no-WAL
    // writers can never share a group.
    if (w->disable_wal != leader->disable_wal) break;
    bytes += w->batch->ApproximateSize();
    if (bytes > max_bytes) break;
    group.push_back(w);
  }
  return group;
}

Status DB::WriteImpl(const WriteOptions& write_options,
                     const WriteBatch* batch) {
  Writer w(batch, write_options.sync && !write_options.disable_wal,
           write_options.disable_wal);
  std::unique_lock<std::mutex> l(mutex_);
  if (closed_ || shutting_down_) return Status::IOError("DB closed");
  writers_.push_back(&w);
  while (!w.done && &w != writers_.front()) {
    w.cv.wait(l);
  }
  if (w.done) return w.status;  // a leader committed this batch for us

  // This thread is the leader: it owns the write path (WAL + active
  // memtable) until its group is popped from the queue.
  Status s = MakeRoomForWrite(&l, /*force_switch=*/batch == nullptr);
  size_t committed = 1;  // queue entries to pop (at least the leader)
  if (s.ok() && batch != nullptr) {
    std::vector<Writer*> group = BuildWriteGroup(&w);
    committed = group.size();
    std::vector<const WriteBatch*> batches;
    batches.reserve(group.size());
    bool sync = false;
    size_t count = 0;
    for (Writer* g : group) {
      batches.push_back(g->batch);
      sync |= g->sync;
      count += g->batch->Count();
    }
    SequenceNumber first_seq =
        last_sequence_.load(std::memory_order_relaxed) + 1;
    MemTable* mem = mem_;
    LogWriter* wal = wal_.get();

    // WAL append + memtable apply run without the lock: only this leader
    // touches them, and the next leader cannot start until the group is
    // popped below.
    l.unlock();
    if (options_.enable_wal && !w.disable_wal) {
      std::string record;
      EncodeWalGroup(&record, first_seq, batches);
      s = wal->AddRecord(Slice(record));
      if (s.ok() && sync) {
        ADCACHE_PERF_TIMER_GUARD(wal_sync_micros);
        s = wal->Sync();
        ADCACHE_PERF_COUNTER_ADD(wal_sync_count, 1);
        maint_.wal_syncs.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (s.ok()) {
      SequenceNumber seq = first_seq;
      for (const WriteBatch* b : batches) {
        for (const auto& op : b->ops()) {
          mem->Add(seq++, op.type, Slice(op.key), Slice(op.value));
        }
      }
      assert(seq == first_seq + count);
      // Publish only after every entry is reachable in the memtable, so
      // readers never observe a half-applied group.
      last_sequence_.store(first_seq + count - 1, std::memory_order_release);
      maint_.write_groups.fetch_add(1, std::memory_order_relaxed);
      maint_.grouped_writes.fetch_add(group.size(),
                                      std::memory_order_relaxed);
    }
    l.lock();
  }

  // Pop the committed group (its members are exactly the queue's first
  // `committed` entries), wake the followers, then promote a new leader.
  for (size_t i = 0; i < committed; i++) {
    Writer* done_writer = writers_.front();
    writers_.pop_front();
    if (done_writer != &w) {
      done_writer->status = s;
      done_writer->done = true;
      done_writer->cv.notify_one();
    }
  }
  if (!writers_.empty()) writers_.front()->cv.notify_one();
  return s;
}

void DB::SetStallConditionLocked(core::WriteStallCondition condition) {
  if (condition == stall_condition_) return;
  core::WriteStallInfo info;
  info.shard_id = options_.shard_id;
  info.prev_condition = stall_condition_;
  info.condition = condition;
  stall_condition_ = condition;
  // Listeners run with mutex_ held (the transition must be published
  // atomically with the state change); the contract in event_listener.h
  // requires them to be fast and re-entrancy free.
  NotifyListeners([&](core::EventListener* l) { l->OnWriteStallChange(info); });
}

Status DB::MakeRoomForWrite(std::unique_lock<std::mutex>* l,
                            bool force_switch) {
  bool allow_delay = !force_switch;
  while (true) {
    if (!bg_error_.ok()) {
      // Surface (and clear) the background failure so the caller can retry
      // once the underlying condition is fixed.
      Status s = bg_error_;
      bg_error_ = Status::OK();
      return s;
    }
    if (shutting_down_) return Status::IOError("DB closed");

    if (allow_delay &&
        current_->NumFiles(0) >= options_.l0_slowdown_trigger &&
        options_.slowdown_delay_micros > 0) {
      // Soft backpressure: delay this write once to let compaction gain
      // ground, instead of stalling for seconds at the stop trigger.
      SetStallConditionLocked(core::WriteStallCondition::kDelayed);
      l->unlock();
      env_->clock()->Charge(options_.slowdown_delay_micros);
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.slowdown_delay_micros));
      l->lock();
      allow_delay = false;
      maint_.slowdown_writes.fetch_add(1, std::memory_order_relaxed);
      ADCACHE_PERF_COUNTER_ADD(write_delay_count, 1);
      ADCACHE_PERF_COUNTER_ADD(write_stall_micros,
                               options_.slowdown_delay_micros);
      {
        core::WriteStallInfo stalled;
        stalled.shard_id = options_.shard_id;
        stalled.condition = core::WriteStallCondition::kDelayed;
        stalled.prev_condition = core::WriteStallCondition::kDelayed;
        stalled.duration_micros = options_.slowdown_delay_micros;
        NotifyListeners(
            [&](core::EventListener* el) { el->OnWriteStalled(stalled); });
      }
      continue;
    }
    if (!force_switch &&
        (mem_->num_entries() == 0 ||  // arena pre-allocation is not "full"
         mem_->ApproximateMemoryUsage() <
             write_buffer_size_.load(std::memory_order_relaxed))) {
      SetStallConditionLocked(core::WriteStallCondition::kNormal);
      return Status::OK();  // room in the active memtable
    }
    if (force_switch && mem_->num_entries() == 0) {
      SetStallConditionLocked(core::WriteStallCondition::kNormal);
      return Status::OK();  // nothing to switch out
    }
    bool imm_full = static_cast<int>(imm_.size()) >=
                    std::max(1, options_.max_write_buffer_number - 1);
    bool l0_stopped = current_->NumFiles(0) >= options_.l0_stop_trigger;
    if (imm_full || l0_stopped) {
      // Hard backpressure: wait for background maintenance to make room.
      MaybeScheduleMaintenance();
      if (BackgroundWorkScheduled() || !imm_.empty() ||
          VersionNeedsCompaction(*current_)) {
        SetStallConditionLocked(core::WriteStallCondition::kStopped);
        uint64_t start = WallMicros();
        bg_work_done_cv_.wait(*l);
        uint64_t stalled = WallMicros() - start;
        maint_.stall_micros.fetch_add(stalled, std::memory_order_relaxed);
        ADCACHE_PERF_COUNTER_ADD(write_stall_count, 1);
        ADCACHE_PERF_COUNTER_ADD(write_stall_micros, stalled);
        {
          core::WriteStallInfo stalled_info;
          stalled_info.shard_id = options_.shard_id;
          stalled_info.condition = core::WriteStallCondition::kStopped;
          stalled_info.prev_condition = core::WriteStallCondition::kStopped;
          stalled_info.duration_micros = stalled;
          NotifyListeners([&](core::EventListener* el) {
            el->OnWriteStalled(stalled_info);
          });
        }
        continue;
      }
      // No background work can make progress (misconfigured triggers or a
      // just-cleared error): fall through and switch anyway rather than
      // deadlocking.
    }
    Status s = SwitchMemTableLocked();
    if (!s.ok()) return s;
    force_switch = false;
  }
}

Status DB::SwitchMemTableLocked() {
  Status s = NewWalLocked();
  if (!s.ok()) return s;
  imm_.push_back(mem_);  // transfers our reference
  mem_ = new MemTable();
  mem_->Ref();
  mem_->set_wal_number(options_.enable_wal ? wal_number_ : 0);
  InstallSuperVersionLocked();
  MaybeScheduleMaintenance();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Background maintenance
// ---------------------------------------------------------------------------

bool DB::VersionNeedsCompaction(const Version& v) const {
  if (options_.compaction_style == CompactionStyle::kUniversal) {
    return v.NumFiles(0) >= options_.universal_run_trigger;
  }
  if (v.NumFiles(0) >= options_.l0_compaction_trigger) return true;
  for (int lvl = 1; lvl < options_.num_levels - 1; lvl++) {
    if (v.LevelBytes(lvl) > MaxBytesForLevel(lvl)) return true;
  }
  return false;
}

void DB::MaybeScheduleMaintenance() {
  if (shutting_down_ || closed_) return;
  if (!bg_error_.ok()) return;  // paused until the error is surfaced
  if (bg_pool_ == nullptr) return;  // still inside Open
  if (!options_.overlap_flush_compaction) {
    // Legacy single-flight: one job at a time runs flush OR compaction
    // (bg_flush_scheduled_ doubles as the combined-job flag).
    if (BackgroundWorkScheduled()) return;
    if (imm_.empty() && !VersionNeedsCompaction(*current_)) return;
    bg_flush_scheduled_ = true;
    bg_pool_->Schedule([this] { BackgroundCall(); });
    return;
  }
  // Overlapped mode: flush and compaction are scheduled independently and
  // may run concurrently in this DB. Flushes ride the pool's high-priority
  // queue so they never wait behind a long compaction (or its
  // subcompaction helpers) from any shard — a stalled writer is waiting on
  // exactly this flush.
  if (!bg_flush_scheduled_ && !imm_.empty()) {
    bg_flush_scheduled_ = true;
    bg_pool_->Schedule([this] { BackgroundFlushCall(); },
                       /*high_priority=*/true);
  }
  if (!bg_compact_scheduled_ && VersionNeedsCompaction(*current_)) {
    bg_compact_scheduled_ = true;
    bg_pool_->Schedule([this] { BackgroundCompactCall(); });
  }
}

void DB::BackgroundCall() {
  std::unique_lock<std::mutex> l(mutex_);
  if (!shutting_down_) {
    Status s;
    if (!imm_.empty()) {
      s = FlushOldestImm(&l);  // flushes take priority over compactions
    } else if (VersionNeedsCompaction(*current_)) {
      l.unlock();
      MaybeCompactOnce(&s);
      l.lock();
    }
    if (!s.ok() && bg_error_.ok()) bg_error_ = s;
  }
  bg_flush_scheduled_ = false;
  MaybeScheduleMaintenance();  // more work? chain another pass
  bg_work_done_cv_.notify_all();
}

void DB::BackgroundFlushCall() {
  std::unique_lock<std::mutex> l(mutex_);
  if (!shutting_down_ && !imm_.empty()) {
    Status s = FlushOldestImm(&l);
    if (!s.ok() && bg_error_.ok()) bg_error_ = s;
  }
  bg_flush_scheduled_ = false;
  MaybeScheduleMaintenance();  // more immutables (or a trigger)? chain
  bg_work_done_cv_.notify_all();
}

void DB::BackgroundCompactCall() {
  std::unique_lock<std::mutex> l(mutex_);
  if (!shutting_down_ && VersionNeedsCompaction(*current_)) {
    Status s;
    l.unlock();
    // Compaction inputs are pinned for the whole job: the picked
    // FileMetaData shared_ptrs (and the base version) keep every input
    // table open even as concurrent flushes install new versions.
    MaybeCompactOnce(&s);
    l.lock();
    if (!s.ok() && bg_error_.ok()) bg_error_ = s;
  }
  bg_compact_scheduled_ = false;
  MaybeScheduleMaintenance();  // still over threshold? chain another pass
  bg_work_done_cv_.notify_all();
}

Status DB::FlushOldestImm(std::unique_lock<std::mutex>* l) {
  MemTable* imm = imm_.front();
  if (imm->num_entries() == 0) {
    imm_.erase(imm_.begin());
    InstallSuperVersionLocked();
    l->unlock();
    imm->Unref();
    l->lock();
    return Status::OK();
  }
  uint64_t file_number = next_file_number_.fetch_add(1);

  core::FlushJobInfo job;
  job.shard_id = options_.shard_id;
  job.file_number = file_number;
  job.num_entries = imm->num_entries();
  job.num_imm_remaining = static_cast<int>(imm_.size()) - 1;
  const uint64_t flush_start = WallMicros();

  // Build the L0 table outside the lock: the immutable memtable is
  // read-only and pinned by the reference the imm_ list holds.
  l->unlock();
  NotifyListeners([&](core::EventListener* el) { el->OnFlushBegin(job); });
  Status s;
  auto meta = std::make_shared<FileMetaData>();
  meta->number = file_number;
  {
    std::unique_ptr<WritableFile> file;
    s = env_->NewWritableFile(TableFileName(dbname_, file_number), &file);
    if (s.ok()) {
      TableBuilder builder(options_, std::move(file),
                           bloom_bits_per_key_.load(std::memory_order_relaxed));
      std::unique_ptr<Iterator> iter(imm->NewIterator());
      for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
        if (meta->smallest.empty()) meta->smallest = iter->key().ToString();
        meta->largest = iter->key().ToString();
        builder.Add(iter->key(), iter->value());
      }
      s = builder.Finish();
    }
    if (s.ok()) s = OpenTable(file_number, &meta->file_size, &meta->table);
  }
  if (!s.ok()) {
    l->lock();
    return s;  // the memtable stays on imm_; retried after the error clears
  }

  // Install: new version with the file prepended to L0 (newest first).
  job.file_size = meta->file_size;
  auto new_version = std::make_shared<Version>(options_.num_levels);
  l->lock();
  new_version->files_ = current_->files_;
  new_version->files_[0].insert(new_version->files_[0].begin(),
                                std::move(meta));
  current_ = new_version;
  imm_.erase(imm_.begin());
  job.num_imm_remaining = static_cast<int>(imm_.size());
  InstallSuperVersionLocked();
  maint_.flushes.fetch_add(1, std::memory_order_relaxed);
  l->unlock();
  imm->Unref();
  job.duration_micros = WallMicros() - flush_start;
  NotifyListeners([&](core::EventListener* el) { el->OnFlushCompleted(job); });
  s = WriteManifestSnapshot();
  if (s.ok()) RemoveObsoleteWals();
  l->lock();
  return s;
}

void DB::RemoveObsoleteWals() {
  if (!options_.enable_wal) return;
  std::vector<uint64_t> dead;
  {
    std::lock_guard<std::mutex> l(mutex_);
    uint64_t oldest_live = !imm_.empty()
                               ? imm_.front()->wal_number()
                               : (mem_ != nullptr ? mem_->wal_number()
                                                  : wal_number_);
    for (auto it = live_wal_files_.begin(); it != live_wal_files_.end();) {
      if (*it < oldest_live) {
        dead.push_back(*it);
        it = live_wal_files_.erase(it);
      } else {
        break;  // the set is sorted
      }
    }
  }
  for (uint64_t number : dead) {
    env_->RemoveFile(WalFileName(dbname_, number));  // best effort
  }
}

Status DB::FlushMemTable() {
  // Route the memtable switch through the writer queue so it serialises
  // with in-flight group commits, then wait for maintenance to quiesce.
  Status s = WriteImpl(WriteOptions(), nullptr);
  if (!s.ok()) return s;
  std::unique_lock<std::mutex> l(mutex_);
  while (bg_error_.ok() && !shutting_down_ &&
         (BackgroundWorkScheduled() || !imm_.empty() ||
          VersionNeedsCompaction(*current_))) {
    MaybeScheduleMaintenance();
    bg_work_done_cv_.wait(l);
  }
  if (!bg_error_.ok()) {
    s = bg_error_;
    bg_error_ = Status::OK();
    return s;
  }
  return Status::OK();
}

Status DB::CompactAll() {
  std::unique_lock<std::mutex> l(mutex_);
  while (bg_error_.ok() && !shutting_down_ &&
         (BackgroundWorkScheduled() || !imm_.empty() ||
          VersionNeedsCompaction(*current_))) {
    MaybeScheduleMaintenance();
    bg_work_done_cv_.wait(l);
  }
  if (!bg_error_.ok()) {
    Status s = bg_error_;
    bg_error_ = Status::OK();
    return s;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Compaction
// ---------------------------------------------------------------------------

uint64_t DB::MaxBytesForLevel(int level) const {
  uint64_t result = options_.level1_size_base;
  for (int i = 1; i < level; i++) {
    result *= static_cast<uint64_t>(options_.level_size_ratio);
  }
  return result;
}

bool DB::IsBaseLevelForKey(const Version& v, int output_level,
                           const Slice& user_key) const {
  for (int lvl = output_level + 1; lvl < v.num_levels(); lvl++) {
    for (const auto& f : v.files(lvl)) {
      if (user_key.compare(ExtractUserKey(Slice(f->smallest))) >= 0 &&
          user_key.compare(ExtractUserKey(Slice(f->largest))) <= 0) {
        return false;
      }
    }
  }
  return true;
}

// Shared state for one leveled compaction split into K parallel
// subcompactions. The coordinator (BackgroundCompactCall's thread) and any
// pool helpers pull subrange indices from `next_range`; each subrange merges
// independently into its own output files and the coordinator installs all
// of them in one atomic version edit. Held in a shared_ptr so a helper that
// dequeues after the coordinator finished (it found no unclaimed ranges)
// can still observe `closed` and return without touching freed state.
struct DB::CompactionMergeJob {
  // Immutable once RunCompactionMerge starts; `base` and the FileMetaData
  // shared_ptrs pin every input table for the whole job even as concurrent
  // flushes install newer versions.
  std::shared_ptr<const Version> base;
  FileList inputs0;
  FileList inputs1;
  int input_level = 0;
  int output_level = 0;
  SequenceNumber smallest_snapshot = 0;
  std::vector<std::string> boundaries;  // interior user-key split points

  struct Result {
    Status status;
    FileList outputs;                     // key-ordered within the subrange
    std::vector<uint64_t> created_files;  // every table file this slot made
    uint64_t bytes_read = 0;
    uint64_t bytes_written = 0;
  };
  std::vector<Result> results;  // slot per subrange; threads touch only theirs

  std::atomic<size_t> next_range{0};  // claim counter
  std::atomic<bool> failed{false};    // any subrange failed: abort the rest

  std::mutex mu;
  std::condition_variable cv;
  int running_helpers = 0;  // helpers that registered and are processing
  bool closed = false;      // coordinator done; late helpers must bail
  Status error;             // first failure (set before `failed` is raised)

  size_t num_ranges() const { return boundaries.size() + 1; }
};

Status DB::RunOneSubcompaction(CompactionMergeJob* job, size_t index) {
  CompactionMergeJob::Result& result = job->results[index];
  const bool has_start = index > 0;
  const bool has_end = index < job->boundaries.size();

  core::SubcompactionJobInfo info;
  info.shard_id = options_.shard_id;
  info.subcompaction_index = static_cast<int>(index);
  info.num_subcompactions = static_cast<int>(job->num_ranges());
  info.output_level = job->output_level;
  const uint64_t sub_start = WallMicros();
  NotifyListeners(
      [&](core::EventListener* el) { el->OnSubcompactionBegin(info); });
  maint_.subcompactions.fetch_add(1, std::memory_order_relaxed);

  // Every subcompaction opens its own iterators over the shared pinned
  // inputs (Table readers are thread-safe; iterator state is not).
  ReadOptions compaction_reads;
  compaction_reads.fill_block_cache = false;
  compaction_reads.count_block_reads = false;
  std::vector<Iterator*> children;
  for (const auto& f : job->inputs0) {
    children.push_back(f->table->NewIterator(compaction_reads));
  }
  for (const auto& f : job->inputs1) {
    children.push_back(f->table->NewIterator(compaction_reads));
  }
  InternalKeyComparator icmp;
  std::unique_ptr<Iterator> merged(
      NewMergingIterator(&icmp, std::move(children)));

  std::unique_ptr<TableBuilder> builder;
  std::shared_ptr<FileMetaData> out_meta;
  uint64_t out_number = 0;
  std::string current_user_key;
  bool has_current_user_key = false;
  // Starting at kMaxSequenceNumber per subrange is safe: boundaries are
  // whole user keys, so the first entry this subrange sees for any key is
  // that key's newest version — exactly the serial loop's invariant.
  SequenceNumber last_sequence_for_key = kMaxSequenceNumber;

  auto finish_output = [&]() -> Status {
    if (builder == nullptr) return Status::OK();
    Status fs = builder->Finish();
    if (!fs.ok()) return fs;
    fs = OpenTable(out_number, &out_meta->file_size, &out_meta->table);
    if (!fs.ok()) return fs;
    result.bytes_written += out_meta->file_size;
    result.outputs.push_back(out_meta);
    builder.reset();
    out_meta.reset();
    return Status::OK();
  };

  if (has_start) {
    // Lands on the newest entry of the boundary key: kMaxSequenceNumber
    // sorts before every real sequence of the same user key.
    merged->Seek(Slice(MakeLookupKey(Slice(job->boundaries[index - 1]),
                                     kMaxSequenceNumber)));
  } else {
    merged->SeekToFirst();
  }
  Status s;
  for (; merged->Valid(); merged->Next()) {
    if (job->failed.load(std::memory_order_acquire)) {
      s = Status::IOError("subcompaction aborted: sibling failed");
      break;
    }
    Slice internal_key = merged->key();
    ParsedInternalKey parsed;
    if (!ParseInternalKey(internal_key, &parsed)) {
      s = Status::Corruption("bad key during compaction");
      break;
    }
    if (has_end && parsed.user_key.compare(Slice(job->boundaries[index])) >= 0) {
      break;  // the next subrange owns this key onward
    }
    result.bytes_read += internal_key.size() + merged->value().size();
    if (!has_current_user_key ||
        parsed.user_key != Slice(current_user_key)) {
      current_user_key.assign(parsed.user_key.data(), parsed.user_key.size());
      has_current_user_key = true;
      last_sequence_for_key = kMaxSequenceNumber;
    }
    bool drop = false;
    if (last_sequence_for_key <= job->smallest_snapshot) {
      // A newer entry for this key is itself visible to every live
      // snapshot, so this one can never be read again.
      drop = true;
    } else if (parsed.type == kTypeDeletion &&
               parsed.sequence <= job->smallest_snapshot &&
               IsBaseLevelForKey(*job->base, job->output_level,
                                 parsed.user_key)) {
      drop = true;  // tombstone with nothing underneath
    }
    last_sequence_for_key = parsed.sequence;
    if (drop) continue;

    if (builder == nullptr) {
      out_number = next_file_number_.fetch_add(1);
      result.created_files.push_back(out_number);
      std::unique_ptr<WritableFile> file;
      s = env_->NewWritableFile(TableFileName(dbname_, out_number), &file);
      if (!s.ok()) break;
      builder = std::make_unique<TableBuilder>(
          options_, std::move(file),
          bloom_bits_per_key_.load(std::memory_order_relaxed));
      out_meta = std::make_shared<FileMetaData>();
      out_meta->number = out_number;
      out_meta->smallest = internal_key.ToString();
    }
    out_meta->largest = internal_key.ToString();
    builder->Add(internal_key, merged->value());
    if (builder->FileSize() >= options_.table_file_size) {
      s = finish_output();
      if (!s.ok()) break;
    }
  }
  if (s.ok()) s = merged->status();
  if (s.ok()) s = finish_output();

  info.num_output_files = static_cast<int>(result.outputs.size());
  info.bytes_read = result.bytes_read;
  info.bytes_written = result.bytes_written;
  info.duration_micros = WallMicros() - sub_start;
  NotifyListeners(
      [&](core::EventListener* el) { el->OnSubcompactionCompleted(info); });
  return s;
}

void DB::ProcessSubcompactions(CompactionMergeJob* job) {
  const size_t n = job->num_ranges();
  while (true) {
    const size_t index =
        job->next_range.fetch_add(1, std::memory_order_relaxed);
    if (index >= n) return;
    if (job->failed.load(std::memory_order_acquire)) {
      job->results[index].status =
          Status::IOError("subcompaction aborted: sibling failed");
      continue;
    }
    Status s = RunOneSubcompaction(job, index);
    job->results[index].status = s;
    if (!s.ok()) {
      {
        // Record the root cause before raising the flag: threads that see
        // `failed` (acquire) and abort are then guaranteed to find the
        // real error, never an abort marker overwriting it.
        std::lock_guard<std::mutex> l(job->mu);
        if (job->error.ok()) job->error = s;
      }
      job->failed.store(true, std::memory_order_release);
    }
  }
}

Status DB::RunCompactionMerge(const std::shared_ptr<CompactionMergeJob>& job) {
  job->results.resize(job->num_ranges());
  // Helpers are pure accelerators: they claim unstarted subranges from the
  // shared counter, so the job completes even if every helper sits queued
  // behind other pool work — the coordinator claim-loops inline on this
  // thread (no pool-capacity deadlock). A helper that dequeues after the
  // coordinator closed the job returns without touching the DB.
  const size_t helper_count = job->num_ranges() - 1;
  if (bg_pool_ != nullptr) {
    for (size_t i = 0; i < helper_count; i++) {
      std::shared_ptr<CompactionMergeJob> shared = job;
      bg_pool_->Schedule([this, shared] {
        {
          std::lock_guard<std::mutex> l(shared->mu);
          if (shared->closed) return;  // job already finished without us
          shared->running_helpers++;
        }
        ProcessSubcompactions(shared.get());
        std::lock_guard<std::mutex> l(shared->mu);
        shared->running_helpers--;
        shared->cv.notify_all();
      });
    }
  }
  ProcessSubcompactions(job.get());
  {
    std::unique_lock<std::mutex> l(job->mu);
    job->closed = true;
    job->cv.wait(l, [&] { return job->running_helpers == 0; });
  }

  if (job->failed.load(std::memory_order_acquire)) {
    // Abort atomically: delete every file any subrange created so a failed
    // job leaves no partial outputs or orphaned temp SSTs behind.
    for (const auto& result : job->results) {
      for (uint64_t number : result.created_files) {
        env_->RemoveFile(TableFileName(dbname_, number));  // best effort
      }
    }
    std::lock_guard<std::mutex> l(job->mu);
    return job->error.ok() ? Status::IOError("compaction failed")
                           : job->error;
  }
  return Status::OK();
}

bool DB::MaybeCompactOnce(Status* s) {
  if (options_.compaction_style == CompactionStyle::kUniversal) {
    return UniversalCompactOnce(s);
  }
  *s = Status::OK();
  std::shared_ptr<const Version> base;
  {
    std::lock_guard<std::mutex> l(mutex_);
    base = current_;
  }

  int input_level = -1;
  FileList inputs0;
  if (base->NumFiles(0) >= options_.l0_compaction_trigger) {
    input_level = 0;
    inputs0 = base->files(0);
  } else {
    for (int lvl = 1; lvl < options_.num_levels - 1; lvl++) {
      if (base->LevelBytes(lvl) > MaxBytesForLevel(lvl)) {
        input_level = lvl;
        const FileList& files = base->files(lvl);
        size_t pick = compact_pointer_[static_cast<size_t>(lvl)] %
                      files.size();
        compact_pointer_[static_cast<size_t>(lvl)] = pick + 1;
        inputs0.push_back(files[pick]);
        break;
      }
    }
  }
  if (input_level < 0) return false;
  int output_level = input_level + 1;

  // Key range of the inputs (user keys).
  std::string smallest_user, largest_user;
  for (const auto& f : inputs0) {
    std::string s_user = ExtractUserKey(Slice(f->smallest)).ToString();
    std::string l_user = ExtractUserKey(Slice(f->largest)).ToString();
    if (smallest_user.empty() || s_user < smallest_user) {
      smallest_user = s_user;
    }
    if (largest_user.empty() || l_user > largest_user) largest_user = l_user;
  }

  FileList inputs1;
  base->GetOverlappingInputs(output_level, Slice(smallest_user),
                             Slice(largest_user), &inputs1);

  auto merge = std::make_shared<CompactionMergeJob>();
  merge->base = base;
  merge->inputs0 = inputs0;
  merge->inputs1 = inputs1;
  merge->input_level = input_level;
  merge->output_level = output_level;
  merge->smallest_snapshot = SmallestLiveSnapshot();
  merge->boundaries =
      PickSubcompactionBoundaries(inputs0, inputs1, max_subcompactions_);

  core::CompactionJobInfo job;
  job.shard_id = options_.shard_id;
  job.input_level = input_level;
  job.output_level = output_level;
  job.num_input_files = static_cast<int>(inputs0.size() + inputs1.size());
  job.num_subcompactions = static_cast<int>(merge->num_ranges());
  for (const auto& f : inputs0) job.input_bytes += f->file_size;
  for (const auto& f : inputs1) job.input_bytes += f->file_size;
  const uint64_t compact_start = WallMicros();
  NotifyListeners([&](core::EventListener* el) { el->OnCompactionBegin(job); });

  // Merge the inputs into new output-level files, one independent
  // subcompaction per key subrange. Compaction reads bypass the block
  // cache and are excluded from the SST-read metric.
  *s = RunCompactionMerge(merge);
  if (!s->ok()) return false;

  // Subranges are disjoint and ascending, so concatenating their outputs
  // in slot order yields the merged run already ordered by smallest key.
  FileList outputs;
  for (auto& result : merge->results) {
    for (auto& f : result.outputs) outputs.push_back(std::move(f));
  }
  InternalKeyComparator icmp;

  // Leaper-style prefetch, step 1: note which key ranges of the retiring
  // input files were hot (their blocks resident in the block cache), and
  // evict those now-dead blocks.
  std::vector<std::pair<std::string, std::string>> hot_ranges;
  if (options_.leaper_prefetch && options_.block_cache != nullptr) {
    auto scan_inputs = [&](const FileList& inputs) {
      for (const auto& f : inputs) {
        std::string prev_last = f->smallest;
        for (const Table::BlockInfo& info : f->table->GetBlockInfos()) {
          if (f->table->IsBlockCached(info.handle)) {
            hot_ranges.emplace_back(prev_last, info.last_internal_key);
            options_.block_cache->Erase(Slice(Table::CacheKey(
                f->table->cache_file_id(), info.handle.offset)));
          }
          prev_last = info.last_internal_key;
        }
      }
    };
    scan_inputs(inputs0);
    scan_inputs(inputs1);
  }

  // Install the result.
  auto new_version = std::make_shared<Version>(options_.num_levels);
  {
    std::lock_guard<std::mutex> l(mutex_);
    new_version->files_ = current_->files_;
    auto remove_inputs = [](FileList* files, const FileList& inputs) {
      for (const auto& in : inputs) {
        files->erase(std::remove_if(files->begin(), files->end(),
                                    [&](const auto& f) {
                                      return f->number == in->number;
                                    }),
                     files->end());
      }
    };
    remove_inputs(&new_version->files_[static_cast<size_t>(input_level)],
                  inputs0);
    remove_inputs(&new_version->files_[static_cast<size_t>(output_level)],
                  inputs1);
    auto& out_files =
        new_version->files_[static_cast<size_t>(output_level)];
    for (const auto& f : outputs) out_files.push_back(f);
    std::sort(out_files.begin(), out_files.end(),
              [&icmp](const auto& a, const auto& b) {
                return icmp.Compare(Slice(a->smallest), Slice(b->smallest)) <
                       0;
              });
    current_ = new_version;
    InstallSuperVersionLocked();
  }
  maint_.compactions.fetch_add(1, std::memory_order_relaxed);
  job.num_output_files = static_cast<int>(outputs.size());
  for (const auto& f : outputs) job.output_bytes += f->file_size;
  maint_.compact_read_bytes.fetch_add(job.input_bytes,
                                      std::memory_order_relaxed);
  maint_.compact_write_bytes.fetch_add(job.output_bytes,
                                       std::memory_order_relaxed);
  job.duration_micros = WallMicros() - compact_start;
  NotifyListeners(
      [&](core::EventListener* el) { el->OnCompactionCompleted(job); });

  // Leaper-style prefetch, step 2: warm the block cache with the output
  // blocks that cover the previously-hot key ranges.
  if (!hot_ranges.empty()) {
    size_t budget = hot_ranges.size() * 2;  // cap background read volume
    for (const auto& f : outputs) {
      if (budget == 0) break;
      std::string prev_last = f->smallest;
      for (const Table::BlockInfo& info : f->table->GetBlockInfos()) {
        bool overlaps = false;
        for (const auto& [lo, hi] : hot_ranges) {
          if (icmp.Compare(Slice(prev_last), Slice(hi)) <= 0 &&
              icmp.Compare(Slice(lo), Slice(info.last_internal_key)) <= 0) {
            overlaps = true;
            break;
          }
        }
        if (overlaps && budget > 0) {
          if (f->table->PrefetchBlock(info.handle).ok()) {
            prefetched_blocks_++;
            budget--;
          }
        }
        prev_last = info.last_internal_key;
      }
    }
  }

  // Delete obsolete input files (readers holding the old version keep the
  // underlying bytes alive through the Table's file handle).
  for (const auto& f : inputs0) {
    env_->RemoveFile(TableFileName(dbname_, f->number));
  }
  for (const auto& f : inputs1) {
    env_->RemoveFile(TableFileName(dbname_, f->number));
  }

  *s = WriteManifestSnapshot();
  return s->ok();
}

bool DB::UniversalCompactOnce(Status* s) {
  *s = Status::OK();
  std::shared_ptr<const Version> base;
  {
    std::lock_guard<std::mutex> l(mutex_);
    base = current_;
  }
  const FileList& runs = base->files(0);
  if (static_cast<int>(runs.size()) < options_.universal_run_trigger) {
    return false;
  }

  // Accumulate adjacent runs from the newest while sizes stay within the
  // configured ratio of the accumulated total.
  size_t pick = 1;
  uint64_t accumulated = runs[0]->file_size;
  while (pick < runs.size()) {
    uint64_t next = runs[pick]->file_size;
    if (next <= accumulated *
                    static_cast<uint64_t>(options_.universal_size_ratio) /
                    100) {
      accumulated += next;
      pick++;
    } else {
      break;
    }
  }
  if (pick < 2) pick = runs.size();  // no ratio pick: merge everything
  FileList inputs(runs.begin(),
                  runs.begin() + static_cast<long>(pick));
  const bool full_merge = pick == runs.size();

  core::CompactionJobInfo job;
  job.shard_id = options_.shard_id;
  job.input_level = 0;
  job.output_level = 0;
  job.num_input_files = static_cast<int>(inputs.size());
  for (const auto& f : inputs) job.input_bytes += f->file_size;
  const uint64_t compact_start = WallMicros();
  NotifyListeners([&](core::EventListener* el) { el->OnCompactionBegin(job); });

  ReadOptions compaction_reads;
  compaction_reads.fill_block_cache = false;
  compaction_reads.count_block_reads = false;
  std::vector<Iterator*> children;
  for (const auto& f : inputs) {
    children.push_back(f->table->NewIterator(compaction_reads));
  }
  InternalKeyComparator icmp;
  std::unique_ptr<Iterator> merged(
      NewMergingIterator(&icmp, std::move(children)));

  // One output run (universal compaction never splits a run).
  std::unique_ptr<TableBuilder> builder;
  std::shared_ptr<FileMetaData> out_meta;
  uint64_t out_number = 0;
  std::string current_user_key;
  bool has_current_user_key = false;
  const SequenceNumber smallest_snapshot = SmallestLiveSnapshot();
  SequenceNumber last_sequence_for_key = kMaxSequenceNumber;

  for (merged->SeekToFirst(); merged->Valid(); merged->Next()) {
    Slice internal_key = merged->key();
    ParsedInternalKey parsed;
    if (!ParseInternalKey(internal_key, &parsed)) {
      *s = Status::Corruption("bad key during universal compaction");
      return false;
    }
    if (!has_current_user_key ||
        parsed.user_key != Slice(current_user_key)) {
      current_user_key.assign(parsed.user_key.data(), parsed.user_key.size());
      has_current_user_key = true;
      last_sequence_for_key = kMaxSequenceNumber;
    }
    bool drop = false;
    if (last_sequence_for_key <= smallest_snapshot) {
      drop = true;
    } else if (parsed.type == kTypeDeletion &&
               parsed.sequence <= smallest_snapshot && full_merge &&
               IsBaseLevelForKey(*base, 0, parsed.user_key)) {
      // A tombstone may only disappear when no older run can still hold
      // the key: with a full merge the only candidates are deeper levels.
      drop = true;
    }
    last_sequence_for_key = parsed.sequence;
    if (drop) continue;

    if (builder == nullptr) {
      out_number = next_file_number_.fetch_add(1);
      std::unique_ptr<WritableFile> file;
      *s = env_->NewWritableFile(TableFileName(dbname_, out_number), &file);
      if (!s->ok()) return false;
      builder = std::make_unique<TableBuilder>(
          options_, std::move(file),
          bloom_bits_per_key_.load(std::memory_order_relaxed));
      out_meta = std::make_shared<FileMetaData>();
      out_meta->number = out_number;
      out_meta->smallest = internal_key.ToString();
    }
    out_meta->largest = internal_key.ToString();
    builder->Add(internal_key, merged->value());
  }
  if (builder != nullptr) {
    *s = builder->Finish();
    if (!s->ok()) return false;
    *s = OpenTable(out_number, &out_meta->file_size, &out_meta->table);
    if (!s->ok()) return false;
  }

  // Install: the merged run replaces the picked inputs at their position.
  // Inputs are matched by file number and the output spliced in where the
  // newest input sat — runs flushed while this compaction ran have been
  // prepended in front of that position and must stay newer than the
  // merged output.
  auto new_version = std::make_shared<Version>(options_.num_levels);
  {
    std::lock_guard<std::mutex> l(mutex_);
    new_version->files_ = current_->files_;
    auto& l0 = new_version->files_[0];
    auto is_input = [&](uint64_t number) {
      for (const auto& in : inputs) {
        if (in->number == number) return true;
      }
      return false;
    };
    FileList rebuilt;
    bool replaced = false;
    for (const auto& f : l0) {
      if (is_input(f->number)) {
        if (!replaced && out_meta != nullptr) rebuilt.push_back(out_meta);
        replaced = true;
        continue;
      }
      rebuilt.push_back(f);
    }
    l0 = std::move(rebuilt);
    current_ = new_version;
    InstallSuperVersionLocked();
  }
  maint_.compactions.fetch_add(1, std::memory_order_relaxed);
  if (out_meta != nullptr) {
    job.num_output_files = 1;
    job.output_bytes = out_meta->file_size;
  }
  maint_.compact_read_bytes.fetch_add(job.input_bytes,
                                      std::memory_order_relaxed);
  maint_.compact_write_bytes.fetch_add(job.output_bytes,
                                       std::memory_order_relaxed);
  job.duration_micros = WallMicros() - compact_start;
  NotifyListeners(
      [&](core::EventListener* el) { el->OnCompactionCompleted(job); });

  for (const auto& f : inputs) {
    env_->RemoveFile(TableFileName(dbname_, f->number));
  }
  *s = WriteManifestSnapshot();
  return s->ok();
}

// ---------------------------------------------------------------------------
// Reads: lock-free SuperVersion acquisition
// ---------------------------------------------------------------------------

void DB::InstallSuperVersionLocked() {
  auto* sv = new SuperVersion();
  sv->Init(mem_, imm_, current_);
  sv->version_number =
      super_version_number_.load(std::memory_order_relaxed) + 1;
  sv->Ref();  // the DB's own reference
  SuperVersion* old = super_version_;
  super_version_ = sv;
  super_version_number_.store(sv->version_number, std::memory_order_release);

  // Invalidate every thread's parked copy so idle threads don't pin the
  // retired memtables/version; each collected pointer carries the reference
  // its slot held. Slots mid-read (kSVInUse) are flipped to kSVObsolete
  // too — the reader's CompareAndSwap on return fails and it unrefs
  // directly.
  std::vector<void*> cached;
  local_sv_->Scrape(&cached, SuperVersion::kSVObsolete);
  for (void* ptr : cached) {
    // A slot can hold either marker: kSVInUse for a mid-read thread, and
    // kSVObsolete when it was scraped by a previous install and its thread
    // has not read since. Neither carries a reference.
    if (ptr != SuperVersion::kSVInUse && ptr != SuperVersion::kSVObsolete) {
      UnrefSuperVersion(static_cast<SuperVersion*>(ptr));
    }
  }
  UnrefSuperVersion(old);
}

void DB::SuperVersionUnrefHandler(void* ptr) {
  if (ptr == SuperVersion::kSVInUse || ptr == SuperVersion::kSVObsolete) {
    return;  // markers carry no reference
  }
  UnrefSuperVersion(static_cast<SuperVersion*>(ptr));
}

SuperVersion* DB::GetAndRefSuperVersion() {
  // Borrow this thread's parked copy. On the fast path the slot's parked
  // reference covers the whole read — no mutex, no atomic RMW at all.
  void* ptr = local_sv_->Swap(SuperVersion::kSVInUse);
  assert(ptr != SuperVersion::kSVInUse);  // reads do not nest
  auto* sv = static_cast<SuperVersion*>(ptr);
  if (sv != nullptr && ptr != SuperVersion::kSVObsolete &&
      sv->version_number ==
          super_version_number_.load(std::memory_order_acquire)) {
    return sv;
  }
  // Stale or absent: drop the parked reference (if any) and refresh.
  if (sv != nullptr && ptr != SuperVersion::kSVObsolete) {
    UnrefSuperVersion(sv);
  }
  std::lock_guard<std::mutex> l(mutex_);
  return super_version_->Ref();
}

void DB::ReturnAndCleanupSuperVersion(SuperVersion* sv) {
  // Park the reference back in the slot for the next read — unless an
  // install raced in (generation moved or the slot was scraped), in which
  // case release it here.
  if (sv->version_number ==
          super_version_number_.load(std::memory_order_acquire) &&
      local_sv_->CompareAndSwap(SuperVersion::kSVInUse, sv)) {
    return;
  }
  UnrefSuperVersion(sv);
}

SuperVersion* DB::AcquireReadState(SequenceNumber* seq) {
  if (options_.mutex_read_snapshot) {
    // Benchmark baseline: the pre-SuperVersion protocol — every read takes
    // the DB mutex and builds a heap snapshot with one ref per memtable.
    // The mutex serializes against installs, so the view and the sequence
    // are captured atomically with respect to flush/compaction.
    std::lock_guard<std::mutex> l(mutex_);
    auto* sv = new SuperVersion();
    sv->Init(mem_, imm_, current_);
    *seq = last_sequence_.load(std::memory_order_acquire);
    return sv->Ref();
  }
  // Lock-free path. The view must be acquired BEFORE the sequence: every
  // install's compaction GC'd only entries shadowed at the last_sequence_ of
  // its time, and acquiring the view synchronizes with the install that
  // produced it, so a sequence loaded afterwards is at least that large —
  // the view cannot have dropped anything this snapshot needs.
  //
  // The reverse hazard — the sequence admitting a write that lives in a
  // memtable this (cached) view predates — is closed by the generation
  // re-check: a memtable switch installs and bumps the generation before the
  // write's sequence is published, so observing such a sequence implies
  // observing the bumped generation, and we retry with a fresh view.
  for (;;) {
    SuperVersion* sv = GetAndRefSuperVersion();
    *seq = last_sequence_.load(std::memory_order_acquire);
    if (sv->version_number ==
        super_version_number_.load(std::memory_order_acquire)) {
      return sv;
    }
    ReturnAndCleanupSuperVersion(sv);
  }
}

void DB::ReleaseReadState(SuperVersion* sv) {
  if (options_.mutex_read_snapshot) {
    UnrefSuperVersion(sv);  // baseline copies are never parked
    return;
  }
  ReturnAndCleanupSuperVersion(sv);
}

namespace {
void UnrefSuperVersionCleanup(void* arg1, void* /*arg2*/) {
  UnrefSuperVersion(static_cast<SuperVersion*>(arg1));
}
}  // namespace

Status DB::GetImpl(const ReadOptions& read_options, const Slice& key,
                   SequenceNumber snapshot, SuperVersion* sv,
                   PinnableSlice* value) {
  LookupKey lkey(key, snapshot);  // built once, shared by every memtable
  for (MemTable* mem : sv->mems) {  // newest data first
    Slice v;
    bool deleted = false;
    ADCACHE_PERF_COUNTER_ADD(memtable_probe_count, 1);
    if (mem->Get(lkey, &v, &deleted)) {
      ADCACHE_PERF_COUNTER_ADD(memtable_hit_count, 1);
      if (deleted) return Status::NotFound();
      // The value bytes live in the memtable's arena: pin the SuperVersion
      // (which pins the memtable) instead of copying them out.
      sv->Ref();
      value->PinSlice(v, &UnrefSuperVersionCleanup, sv, nullptr);
      return Status::OK();
    }
  }
  auto r = const_cast<Version*>(sv->version.get())
               ->Get(read_options, key, snapshot, value);
  switch (r) {
    case Table::LookupResult::kFound:
      return Status::OK();
    case Table::LookupResult::kDeleted:
    case Table::LookupResult::kNotFound:
      break;
  }
  return Status::NotFound();
}

Status DB::Get(const ReadOptions& read_options, const Slice& key,
               PinnableSlice* value) {
  // AcquireReadState pairs the view with a consistent snapshot sequence
  // (see the ordering discussion there). An explicit snapshot overrides the
  // implicit one; it needs no ordering because registered snapshots are
  // protected from compaction GC via SmallestLiveSnapshot().
  SequenceNumber snapshot;
  SuperVersion* sv = AcquireReadState(&snapshot);
  if (read_options.snapshot != nullptr) {
    snapshot = read_options.snapshot->sequence();
  }
  Status s = GetImpl(read_options, key, snapshot, sv, value);
  ReleaseReadState(sv);
  return s;
}

Status DB::Get(const ReadOptions& read_options, const Slice& key,
               std::string* value) {
  PinnableSlice pinned;
  Status s = Get(read_options, key, &pinned);
  if (s.ok()) value->assign(pinned.data(), pinned.size());
  return s;
}

namespace {

/// Sort record for one batch key: the first 8 bytes after the batch-wide
/// common prefix, big-endian packed so integer `<` matches memcmp order.
/// Sorting these 16-byte records keeps the hot comparisons inside one
/// contiguous array instead of chasing every key's heap bytes; ties (equal
/// packed prefixes) fall back to a full key compare. Used for batches too
/// large for the packed-uint64 fast path below.
struct MultiGetSortKey {
  uint64_t prefix;
  uint32_t index;
};

/// Packs the first `take` (<= 7) bytes of `rest` big-endian into the top 56
/// bits; the caller owns the low byte. Integer `<` then matches memcmp
/// order on those bytes, with shorter keys sorting first.
inline uint64_t PackPrefix56(const char* rest, size_t take) {
  uint64_t prefix = 0;
  for (size_t j = 0; j < take; j++) {
    prefix |= static_cast<uint64_t>(static_cast<uint8_t>(rest[j]))
              << (56 - 8 * j);
  }
  return prefix;
}

}  // namespace

void DB::MultiGet(const ReadOptions& read_options, size_t n,
                  const Slice* keys, PinnableSlice* values,
                  Status* statuses) {
  if (n == 0) return;
  // One view + snapshot for the whole batch (same pairing rules as DB::Get).
  SequenceNumber snapshot;
  SuperVersion* sv = AcquireReadState(&snapshot);
  if (read_options.snapshot != nullptr) {
    snapshot = read_options.snapshot->sequence();
  }

  // Sort the batch by user key: duplicates become adjacent (and resolve
  // once), and the version/table layers can visit files and blocks
  // monotonically. All per-batch scratch below is stack-resident for
  // batches up to kInlineBatch; a batch performs no scratch allocations
  // beyond the internal-key buffer.
  constexpr size_t kInlineBatch = 128;
  size_t common_prefix = keys[0].size();
  for (size_t i = 1; i < n && common_prefix > 0; i++) {
    size_t limit = std::min(common_prefix, keys[i].size());
    size_t j = 0;
    while (j < limit && keys[i].data()[j] == keys[0].data()[j]) j++;
    common_prefix = j;
  }
  util::InlineBuffer<uint32_t, kInlineBatch> order(n);
  if (n <= 256) {
    // Fast path: 7 prefix bytes + the batch index packed into one uint64,
    // sorted with branchless integer compares. Keys that agree on those 7
    // bytes land in an index-ordered run; any such run holding distinct
    // keys is re-sorted with full compares (rare — exact duplicates are
    // the common cause and any stable order suffices for them).
    util::InlineBuffer<uint64_t, kInlineBatch> packed(n);
    for (uint32_t i = 0; i < n; i++) {
      const Slice& k = keys[i];
      size_t avail = k.size() - common_prefix;  // >= 0
      packed[i] = PackPrefix56(k.data() + common_prefix,
                               avail < 7 ? avail : 7) |
                  i;
    }
    std::sort(packed.data(), packed.data() + n);
    for (size_t i = 0; i < n;) {
      size_t j = i + 1;
      while (j < n && (packed[j] >> 8) == (packed[i] >> 8)) j++;
      if (j - i > 1) {
        bool distinct = false;
        for (size_t m = i + 1; m < j && !distinct; m++) {
          distinct = keys[packed[m] & 0xff] != keys[packed[i] & 0xff];
        }
        if (distinct) {
          std::sort(packed.data() + i, packed.data() + j,
                    [keys](uint64_t a, uint64_t b) {
                      return keys[a & 0xff].compare(keys[b & 0xff]) < 0;
                    });
        }
      }
      i = j;
    }
    for (size_t i = 0; i < n; i++) {
      order[i] = static_cast<uint32_t>(packed[i] & 0xff);
    }
  } else {
    util::InlineBuffer<MultiGetSortKey, kInlineBatch> records(n);
    for (uint32_t i = 0; i < n; i++) {
      const Slice& k = keys[i];
      size_t avail = k.size() - common_prefix;
      records[i] = MultiGetSortKey{
          PackPrefix56(k.data() + common_prefix, avail < 7 ? avail : 7), i};
    }
    std::sort(records.data(), records.data() + n,
              [keys](const MultiGetSortKey& a, const MultiGetSortKey& b) {
                if (a.prefix != b.prefix) return a.prefix < b.prefix;
                return keys[a.index].compare(keys[b.index]) < 0;
              });
    for (size_t i = 0; i < n; i++) order[i] = records[i].index;
  }

  // One lookup state per distinct key. The internal keys live back to back
  // in one exactly-sized buffer (stack-resident for small batches), so the
  // state slices stay stable.
  size_t ikey_total = 0;
  for (size_t i = 0; i < n; i++) ikey_total += keys[i].size() + 8;
  util::InlineBuffer<char, 4096> ikey_buf(ikey_total);
  size_t ikey_used = 0;
  util::InlineBuffer<Table::MultiGetState, kInlineBatch> states(n);
  util::InlineBuffer<uint32_t, kInlineBatch> primary_of(n);
  util::InlineBuffer<uint32_t, kInlineBatch> state_output(n);
  size_t num_states = 0;
  for (size_t oi = 0; oi < n; oi++) {
    uint32_t pos = order[oi];
    if (num_states > 0 && keys[pos] == keys[state_output[num_states - 1]]) {
      primary_of[pos] = state_output[num_states - 1];
      continue;
    }
    primary_of[pos] = pos;
    char* kstart = ikey_buf.data() + ikey_used;
    std::memcpy(kstart, keys[pos].data(), keys[pos].size());
    EncodeFixed64(kstart + keys[pos].size(),
                  PackSequenceAndType(snapshot, kTypeValue));
    ikey_used += keys[pos].size() + 8;
    Table::MultiGetState& s = states[num_states];
    s.user_key = Slice(kstart, keys[pos].size());
    s.internal_key = Slice(kstart, keys[pos].size() + 8);
    s.snapshot = snapshot;
    s.value = &values[pos];
    s.result = Table::LookupResult::kNotFound;
    state_output[num_states++] = pos;
  }

  // Probe the memtables (newest first) for every key; a memtable answer —
  // value or tombstone — finalizes that key.
  util::InlineBuffer<Table::MultiGetState*, kInlineBatch> pending(n);
  size_t num_pending = 0;
  for (size_t i = 0; i < num_states; i++) {
    bool resolved = false;
    for (MemTable* mem : sv->mems) {
      // An empty memtable holds nothing visible at our snapshot: entries
      // sequenced <= snapshot were published (with their entry-count
      // increment) before AcquireReadState's acquire read, so zero entries
      // now means zero entries ever mattered to this batch.
      if (mem->num_entries() == 0) continue;
      Slice v;
      bool deleted = false;
      ADCACHE_PERF_COUNTER_ADD(memtable_probe_count, 1);
      if (mem->Get(states[i].user_key, snapshot, &v, &deleted)) {
        ADCACHE_PERF_COUNTER_ADD(memtable_hit_count, 1);
        if (deleted) {
          states[i].result = Table::LookupResult::kDeleted;
        } else {
          // Arena-backed value: pin the SuperVersion, as GetImpl does.
          sv->Ref();
          states[i].result = Table::LookupResult::kFound;
          states[i].value->PinSlice(v, &UnrefSuperVersionCleanup, sv,
                                    nullptr);
        }
        resolved = true;
        break;
      }
    }
    if (!resolved) pending[num_pending++] = &states[i];
  }

  // The sorted remainder goes through the SSTables as one batch.
  if (num_pending > 0) {
    const_cast<Version*>(sv->version.get())
        ->MultiGet(read_options, pending.data(), num_pending);
  }

  for (size_t i = 0; i < num_states; i++) {
    statuses[state_output[i]] =
        states[i].result == Table::LookupResult::kFound ? Status::OK()
                                                        : Status::NotFound();
  }
  // Duplicates copy their primary's answer (the primary's pin stays with
  // the primary; a batch-local copy is cheaper than a second lookup).
  for (uint32_t i = 0; i < n; i++) {
    if (primary_of[i] == i) continue;
    statuses[i] = statuses[primary_of[i]];
    if (statuses[i].ok()) {
      values[i].PinSelf(values[primary_of[i]].slice());
    } else {
      values[i].Reset();
    }
  }
  ReleaseReadState(sv);
}

// ---------------------------------------------------------------------------
// DB iterator (user keys, snapshot-consistent, forward + backward-free)
// ---------------------------------------------------------------------------

namespace {

/// Wraps a merged internal-key iterator: deduplicates user keys (newest
/// visible entry wins), hides tombstones and sequence trailers. Forward
/// iteration only (scans in LSM benchmarks are forward); Prev/SeekToLast
/// report NotSupported.
class DBIter : public Iterator {
 public:
  /// Takes ownership of one SuperVersion reference, which pins every
  /// memtable and SSTable the internal iterator reads. A plain reference
  /// (not a thread-local parked one): the iterator may be destroyed on a
  /// different thread than the one that created it.
  DBIter(Iterator* internal, SequenceNumber snapshot, SuperVersion* sv)
      : internal_(internal), snapshot_(snapshot), sv_(sv) {}

  ~DBIter() override {
    internal_.reset();  // drop table/memtable iterators before the pin
    UnrefSuperVersion(sv_);
  }

  bool Valid() const override { return valid_; }

  void SeekToFirst() override {
    internal_->SeekToFirst();
    FindNextUserEntry();
  }

  void Seek(const Slice& target) override {
    internal_->Seek(Slice(MakeLookupKey(target, snapshot_)));
    FindNextUserEntry();
  }

  void Next() override {
    assert(valid_);
    // Skip the remaining (older) entries of the current user key.
    std::string current = key_;
    while (internal_->Valid()) {
      ParsedInternalKey parsed;
      if (!ParseInternalKey(internal_->key(), &parsed)) break;
      if (parsed.user_key != Slice(current)) break;
      internal_->Next();
    }
    FindNextUserEntry();
  }

  void SeekToLast() override {
    valid_ = false;
    status_ = Status::NotSupported("backward iteration");
  }
  void Prev() override {
    valid_ = false;
    status_ = Status::NotSupported("backward iteration");
  }

  Slice key() const override { return Slice(key_); }
  Slice value() const override { return Slice(value_); }
  Status status() const override {
    return status_.ok() ? internal_->status() : status_;
  }

 private:
  /// Advances to the newest visible, non-deleted entry of the next user key
  /// at or after the internal iterator's position.
  void FindNextUserEntry() {
    valid_ = false;
    std::string skip_user_key;
    bool skipping = false;
    while (internal_->Valid()) {
      ParsedInternalKey parsed;
      if (!ParseInternalKey(internal_->key(), &parsed)) {
        internal_->Next();
        continue;
      }
      if (parsed.sequence > snapshot_) {
        internal_->Next();
        continue;
      }
      if (skipping && parsed.user_key == Slice(skip_user_key)) {
        internal_->Next();
        continue;
      }
      if (parsed.type == kTypeDeletion) {
        skip_user_key = parsed.user_key.ToString();
        skipping = true;
        internal_->Next();
        continue;
      }
      key_ = parsed.user_key.ToString();
      value_ = internal_->value().ToString();
      valid_ = true;
      // Position internal_ after this entry for the next call.
      internal_->Next();
      // Skip older entries of the same user key now so Next() is simple.
      while (internal_->Valid()) {
        ParsedInternalKey p2;
        if (!ParseInternalKey(internal_->key(), &p2)) break;
        if (p2.user_key != Slice(key_)) break;
        internal_->Next();
      }
      return;
    }
  }

  std::unique_ptr<Iterator> internal_;
  SequenceNumber snapshot_;
  SuperVersion* sv_;
  bool valid_ = false;
  std::string key_;
  std::string value_;
  Status status_;
};

}  // namespace

Iterator* DB::NewIterator(const ReadOptions& read_options) {
  // Same view/sequence pairing as DB::Get (see AcquireReadState).
  SequenceNumber snapshot;
  SuperVersion* sv = AcquireReadState(&snapshot);
  if (read_options.snapshot != nullptr) {
    snapshot = read_options.snapshot->sequence();
  }
  sv->Ref();  // the iterator's own reference, released by ~DBIter
  std::vector<Iterator*> children;
  for (MemTable* mem : sv->mems) {
    children.push_back(mem->NewIterator());
  }
  sv->version->AddIterators(read_options, &children);
  static InternalKeyComparator icmp;
  Iterator* merged = NewMergingIterator(&icmp, std::move(children));
  auto* iter = new DBIter(merged, snapshot, sv);
  ReleaseReadState(sv);
  return iter;
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

DB::LsmShape DB::GetLsmShape() const {
  std::shared_ptr<const Version> version;
  int imm_count;
  {
    std::lock_guard<std::mutex> l(mutex_);
    version = current_;
    imm_count = static_cast<int>(imm_.size());
  }
  LsmShape shape;
  shape.num_levels_nonempty = version->NumNonEmptyLevels();
  shape.l0_files = version->NumFiles(0);
  shape.sorted_runs = version->NumSortedRuns();
  shape.imm_memtables = imm_count;
  shape.compaction_count = maint_.compactions.load(std::memory_order_relaxed);
  shape.flush_count = maint_.flushes.load(std::memory_order_relaxed);
  shape.prefetched_blocks = prefetched_blocks_.load();
  for (int lvl = 0; lvl < version->num_levels(); lvl++) {
    shape.files_per_level.push_back(version->NumFiles(lvl));
  }
  uint64_t blocks = total_table_blocks_.load();
  shape.entries_per_block =
      blocks == 0 ? 0
                  : static_cast<double>(total_table_entries_.load()) /
                        static_cast<double>(blocks);
  // Entry-weighted bloom telemetry over the live tree (each table records
  // the bits/key its filter was built with in its footer).
  double weighted_bits = 0;
  for (int lvl = 0; lvl < version->num_levels(); lvl++) {
    for (const auto& meta : version->files(lvl)) {
      if (meta == nullptr || meta->table == nullptr) continue;
      uint64_t entries = meta->table->num_entries();
      shape.live_entries += entries;
      shape.filter_bytes += meta->table->filter_bytes();
      weighted_bits += static_cast<double>(entries) *
                       static_cast<double>(meta->table->bloom_bits_per_key());
    }
  }
  shape.avg_bloom_bits_per_key =
      shape.live_entries == 0
          ? 0
          : weighted_bits / static_cast<double>(shape.live_entries);
  return shape;
}

void DB::SetWriteBufferSize(size_t bytes) {
  static constexpr size_t kMinWriteBuffer = 64 << 10;
  bytes = std::max(bytes, kMinWriteBuffer);
  size_t old = write_buffer_size_.exchange(bytes, std::memory_order_relaxed);
  if (bytes >= old) return;
  // Shrink: rotate early when the active memtable already exceeds the new
  // target, so the freed bytes come back now. Pre-check under mutex_ that a
  // switch is safe and non-blocking — a full immutable list would make the
  // switch request stall in MakeRoomForWrite, and this is typically the
  // controller thread.
  {
    std::lock_guard<std::mutex> l(mutex_);
    size_t max_imm = options_.max_write_buffer_number > 1
                         ? static_cast<size_t>(
                               options_.max_write_buffer_number - 1)
                         : 1;
    if (shutting_down_ || closed_ || mem_ == nullptr ||
        mem_->num_entries() == 0 ||
        mem_->ApproximateMemoryUsage() <= bytes ||
        imm_.size() >= max_imm) {
      return;
    }
  }
  // Route the switch through the writer queue (group-commit safe); see
  // FlushMemTable. A concurrent fill-up racing us at worst switches twice.
  WriteImpl(WriteOptions(), nullptr);
}

size_t DB::WriteBufferUsage() const {
  std::lock_guard<std::mutex> l(mutex_);
  size_t usage = mem_ != nullptr ? mem_->ApproximateMemoryUsage() : 0;
  for (const MemTable* m : imm_) {
    usage += m->ApproximateMemoryUsage();
  }
  return usage;
}

void DB::SetBloomBitsPerKey(int bits_per_key) {
  bits_per_key = std::clamp(bits_per_key, 0, 32);
  bloom_bits_per_key_.store(bits_per_key, std::memory_order_relaxed);
}

DB::MaintenanceStats DB::GetMaintenanceStats() const {
  MaintenanceStats stats;
  stats.flushes = maint_.flushes.load(std::memory_order_relaxed);
  stats.compactions = maint_.compactions.load(std::memory_order_relaxed);
  stats.write_groups = maint_.write_groups.load(std::memory_order_relaxed);
  stats.grouped_writes =
      maint_.grouped_writes.load(std::memory_order_relaxed);
  stats.wal_syncs = maint_.wal_syncs.load(std::memory_order_relaxed);
  stats.stall_micros = maint_.stall_micros.load(std::memory_order_relaxed);
  stats.slowdown_writes =
      maint_.slowdown_writes.load(std::memory_order_relaxed);
  stats.subcompactions =
      maint_.subcompactions.load(std::memory_order_relaxed);
  stats.compact_read_bytes =
      maint_.compact_read_bytes.load(std::memory_order_relaxed);
  stats.compact_write_bytes =
      maint_.compact_write_bytes.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace adcache::lsm
