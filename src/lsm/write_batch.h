#ifndef ADCACHE_LSM_WRITE_BATCH_H_
#define ADCACHE_LSM_WRITE_BATCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "lsm/dbformat.h"
#include "util/slice.h"

namespace adcache::lsm {

/// A group of updates applied atomically (one WAL record, consecutive
/// sequence numbers). Mirrors rocksdb::WriteBatch at the API level.
class WriteBatch {
 public:
  void Put(const Slice& key, const Slice& value) {
    ops_.push_back(Op{kTypeValue, key.ToString(), value.ToString()});
  }

  void Delete(const Slice& key) {
    ops_.push_back(Op{kTypeDeletion, key.ToString(), std::string()});
  }

  void Clear() { ops_.clear(); }
  size_t Count() const { return ops_.size(); }

  /// Approximate payload bytes (for group-commit sizing).
  size_t ApproximateSize() const {
    size_t total = 0;
    for (const auto& op : ops_) total += op.key.size() + op.value.size() + 2;
    return total;
  }

  struct Op {
    ValueType type;
    std::string key;
    std::string value;
  };
  const std::vector<Op>& ops() const { return ops_; }

 private:
  std::vector<Op> ops_;
};

}  // namespace adcache::lsm

#endif  // ADCACHE_LSM_WRITE_BATCH_H_
