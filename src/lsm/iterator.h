#ifndef ADCACHE_LSM_ITERATOR_H_
#define ADCACHE_LSM_ITERATOR_H_

#include "util/slice.h"
#include "util/status.h"

namespace adcache::lsm {

/// Forward/backward iterator over a sorted key-value sequence (block, table,
/// memtable or a merged view). Keys at this layer are *internal* keys unless
/// documented otherwise (the DB-level iterator exposes user keys).
class Iterator {
 public:
  Iterator() = default;
  Iterator(const Iterator&) = delete;
  Iterator& operator=(const Iterator&) = delete;
  virtual ~Iterator() = default;

  virtual bool Valid() const = 0;
  virtual void SeekToFirst() = 0;
  virtual void SeekToLast() = 0;
  /// Positions at the first entry with key >= target.
  virtual void Seek(const Slice& target) = 0;
  virtual void Next() = 0;
  virtual void Prev() = 0;

  /// REQUIRES: Valid().
  virtual Slice key() const = 0;
  virtual Slice value() const = 0;

  virtual Status status() const = 0;
};

/// An iterator over an empty sequence, optionally carrying an error.
Iterator* NewEmptyIterator(const Status& status = Status::OK());

}  // namespace adcache::lsm

#endif  // ADCACHE_LSM_ITERATOR_H_
