#ifndef ADCACHE_LSM_BLOCK_BUILDER_H_
#define ADCACHE_LSM_BLOCK_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/slice.h"

namespace adcache::lsm {

/// Builds a prefix-compressed block (leveldb format):
///   entry   := varint32 shared | varint32 non_shared | varint32 value_len
///              | key_delta | value
///   trailer := fixed32 restart_offset * num_restarts | fixed32 num_restarts
/// Keys must be added in sorted order. Every `restart_interval` entries a
/// full key is stored so readers can binary-search restart points.
class BlockBuilder {
 public:
  explicit BlockBuilder(int restart_interval);

  BlockBuilder(const BlockBuilder&) = delete;
  BlockBuilder& operator=(const BlockBuilder&) = delete;

  void Add(const Slice& key, const Slice& value);

  /// Appends the restart trailer and returns the finished block contents
  /// (valid until Reset).
  Slice Finish();

  void Reset();

  /// Bytes the block would occupy if finished now.
  size_t CurrentSizeEstimate() const;

  bool empty() const { return buffer_.empty(); }
  int num_entries() const { return counter_total_; }

 private:
  const int restart_interval_;
  std::string buffer_;
  std::vector<uint32_t> restarts_;
  int counter_ = 0;        // entries since last restart
  int counter_total_ = 0;  // entries in block
  bool finished_ = false;
  std::string last_key_;
};

}  // namespace adcache::lsm

#endif  // ADCACHE_LSM_BLOCK_BUILDER_H_
