#ifndef ADCACHE_WORKLOAD_GENERATOR_H_
#define ADCACHE_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <string>

#include "util/random.h"
#include "workload/workload_spec.h"
#include "workload/zipfian.h"

namespace adcache::workload {

/// Key/value shaping for the synthetic database. Defaults follow the paper
/// (24-byte keys, 1000-byte values) at a laptop-scale key count.
struct KeySpace {
  uint64_t num_keys = 50000;
  size_t key_size = 24;
  size_t value_size = 1000;

  /// Zero-padded ordered key for index i ("user00000000000000000042").
  std::string KeyAt(uint64_t index) const;
  /// Deterministic value filler for index i.
  std::string ValueFor(uint64_t index) const;
};

/// One operation drawn from a phase's mix.
struct Operation {
  enum class Type { kGet, kScan, kWrite };
  Type type;
  uint64_t key_index;
  uint64_t scan_length = 0;  // for kScan
};

/// Draws operations for one phase: op type by mix percentage, key by
/// (scrambled) Zipfian or uniform. Deterministic given a seed.
class OperationGenerator {
 public:
  OperationGenerator(const Phase& phase, const KeySpace& keys, uint64_t seed);

  Operation Next();

  const Phase& phase() const { return phase_; }

 private:
  uint64_t NextKeyIndex();

  Phase phase_;
  KeySpace keys_;
  Random op_rng_;
  std::unique_ptr<ScrambledZipfianGenerator> zipf_;
  std::unique_ptr<UniformGenerator> uniform_;
};

}  // namespace adcache::workload

#endif  // ADCACHE_WORKLOAD_GENERATOR_H_
