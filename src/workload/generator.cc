#include "workload/generator.h"

#include <cstdio>

namespace adcache::workload {

std::string KeySpace::KeyAt(uint64_t index) const {
  char buf[64];
  int digits = static_cast<int>(key_size) - 4;
  if (digits < 1) digits = 1;
  std::snprintf(buf, sizeof(buf), "user%0*llu", digits,
                static_cast<unsigned long long>(index));
  return std::string(buf);
}

std::string KeySpace::ValueFor(uint64_t index) const {
  std::string value(value_size, 'x');
  // Stamp the index so correctness tests can verify round trips.
  char buf[32];
  int n = std::snprintf(buf, sizeof(buf), "v%llu|",
                        static_cast<unsigned long long>(index));
  for (int i = 0; i < n && i < static_cast<int>(value.size()); i++) {
    value[static_cast<size_t>(i)] = buf[i];
  }
  return value;
}

OperationGenerator::OperationGenerator(const Phase& phase,
                                       const KeySpace& keys, uint64_t seed)
    : phase_(phase), keys_(keys), op_rng_(seed) {
  if (phase.skew > 0) {
    zipf_ = std::make_unique<ScrambledZipfianGenerator>(keys.num_keys,
                                                        phase.skew, seed + 1);
  } else {
    uniform_ = std::make_unique<UniformGenerator>(keys.num_keys, seed + 1);
  }
}

uint64_t OperationGenerator::NextKeyIndex() {
  return zipf_ != nullptr ? zipf_->Next() : uniform_->Next();
}

Operation OperationGenerator::Next() {
  uint64_t roll = op_rng_.Uniform(100);
  Operation op;
  op.key_index = NextKeyIndex();
  int64_t threshold = phase_.mix.get_pct;
  if (static_cast<int64_t>(roll) < threshold) {
    op.type = Operation::Type::kGet;
    return op;
  }
  threshold += phase_.mix.short_scan_pct;
  if (static_cast<int64_t>(roll) < threshold) {
    op.type = Operation::Type::kScan;
    op.scan_length = kShortScanLength;
    return op;
  }
  threshold += phase_.mix.long_scan_pct;
  if (static_cast<int64_t>(roll) < threshold) {
    op.type = Operation::Type::kScan;
    op.scan_length = kLongScanLength;
    return op;
  }
  op.type = Operation::Type::kWrite;
  return op;
}

}  // namespace adcache::workload
