#ifndef ADCACHE_WORKLOAD_RUNNER_H_
#define ADCACHE_WORKLOAD_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/kv_store.h"
#include "util/clock.h"
#include "workload/generator.h"
#include "workload/workload_spec.h"

namespace adcache::workload {

/// Measured outcome of one phase against one store.
struct PhaseResult {
  std::string phase;
  std::string strategy;
  uint64_t ops = 0;
  uint64_t point_ops = 0;
  uint64_t scan_ops = 0;
  uint64_t write_ops = 0;
  uint64_t scan_keys = 0;
  /// SST block reads performed during the phase (paper's SST-read metric).
  uint64_t block_reads = 0;
  /// Estimated hit rate h_est = 1 - IO_miss / IO_estimate (paper §3.5),
  /// computed uniformly for every strategy so block- and result-based
  /// caches are comparable.
  double hit_rate = 0;
  double qps = 0;
  uint64_t elapsed_sim_micros = 0;
  uint64_t elapsed_wall_micros = 0;
  core::CacheStatsSnapshot end_stats;
  /// Per-op wall-clock latency distributions (µs), populated only when
  /// RunnerOptions::record_latencies is set. Batched point lookups record
  /// one sample per MultiGet batch under point_latency.
  core::HistogramSnapshot point_latency;
  core::HistogramSnapshot scan_latency;
  core::HistogramSnapshot write_latency;
};

/// Serialises a result (including the p50/p95/p99 latency fields) as one
/// JSON object, for harnesses that post-process benchmark output.
std::string PhaseResultToJson(const PhaseResult& r);

/// Drives phases against a store, measuring I/O and (simulated or wall)
/// time. Deterministic for a given seed and SimClock environment.
class Runner {
 public:
  struct RunnerOptions {
    /// CPU cost charged to the simulated clock per operation (µs). Keeps
    /// cache-hit-only phases from reporting infinite throughput.
    uint64_t cpu_micros_per_op = 2;
    /// Additional CPU cost per scanned key (µs).
    uint64_t cpu_micros_per_scan_key = 0;
    int num_threads = 1;
    uint64_t seed = 42;
    /// When > 1, consecutive point lookups are buffered and issued through
    /// KvStore::MultiGet in batches of this size (flushed early by any
    /// intervening scan/write). 1 = plain Get loop.
    size_t multiget_batch = 1;
    /// Record per-op wall-clock latencies into PhaseResult's histograms.
    /// Off by default: it adds two clock reads per operation.
    bool record_latencies = false;
  };

  Runner(core::KvStore* store, const KeySpace& keys, Clock* clock);

  /// Sequentially inserts every key (the paper's database build), then
  /// flushes so reads start from a settled LSM shape.
  Status LoadDatabase();

  /// Executes `phase.num_ops` operations (split across threads) and
  /// returns the measurements.
  PhaseResult RunPhase(const Phase& phase, const RunnerOptions& options);

  /// Convenience single-threaded run with default options.
  PhaseResult RunPhase(const Phase& phase, uint64_t seed);

 private:
  core::KvStore* store_;
  KeySpace keys_;
  Clock* clock_;
};

/// Prints a fixed-width result row (used by every bench binary).
void PrintResultHeader();
void PrintResult(const PhaseResult& r);

}  // namespace adcache::workload

#endif  // ADCACHE_WORKLOAD_RUNNER_H_
