#ifndef ADCACHE_WORKLOAD_WORKLOAD_SPEC_H_
#define ADCACHE_WORKLOAD_WORKLOAD_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

namespace adcache::workload {

/// Operation mix for one workload phase, in percent (must sum to 100).
/// Mirrors the paper's Table 3 columns.
struct OpMix {
  int get_pct = 0;
  int short_scan_pct = 0;
  int long_scan_pct = 0;
  int write_pct = 0;
};

/// One phase of a (possibly dynamic) workload.
struct Phase {
  std::string name;
  OpMix mix;
  uint64_t num_ops = 10000;
  double skew = 0.9;  // Zipfian theta; <= 0 means uniform
};

/// Scan lengths used throughout the paper's evaluation (§5.2).
constexpr uint64_t kShortScanLength = 16;
constexpr uint64_t kLongScanLength = 64;

/// The four static workloads of Figure 7.
inline Phase PointLookupWorkload(uint64_t ops) {
  return Phase{"point_lookup", OpMix{100, 0, 0, 0}, ops, 0.9};
}
inline Phase ShortScanWorkload(uint64_t ops) {
  return Phase{"short_scan", OpMix{0, 100, 0, 0}, ops, 0.9};
}
inline Phase BalancedWorkload(uint64_t ops) {
  // 33% point lookups, 33% short scans, 33% writes (paper §5.2).
  return Phase{"balanced", OpMix{34, 33, 0, 33}, ops, 0.9};
}
inline Phase LongScanWorkload(uint64_t ops) {
  return Phase{"long_scan", OpMix{0, 0, 100, 0}, ops, 0.9};
}

/// The six dynamic phases A-F of Table 3, executed in order.
inline std::vector<Phase> Table3Phases(uint64_t ops_per_phase) {
  return {
      Phase{"A", OpMix{1, 1, 97, 1}, ops_per_phase, 0.9},
      Phase{"B", OpMix{1, 49, 49, 1}, ops_per_phase, 0.9},
      Phase{"C", OpMix{49, 49, 1, 1}, ops_per_phase, 0.9},
      Phase{"D", OpMix{25, 25, 1, 49}, ops_per_phase, 0.9},
      Phase{"E", OpMix{1, 49, 1, 49}, ops_per_phase, 0.9},
      Phase{"F", OpMix{1, 12, 12, 75}, ops_per_phase, 0.9},
  };
}

/// Figure 9's skewness micro-benchmark: 50% update, 25% get, 25% short scan.
inline Phase SkewWorkload(uint64_t ops, double skew) {
  return Phase{"skew", OpMix{25, 25, 0, 50}, ops, skew};
}

}  // namespace adcache::workload

#endif  // ADCACHE_WORKLOAD_WORKLOAD_SPEC_H_
