#include "workload/runner.h"

#include <atomic>
#include <cstdio>
#include <sstream>
#include <thread>

#include "core/io_estimator.h"
#include "util/histogram.h"
#include "util/perf_context.h"

namespace adcache::workload {

Runner::Runner(core::KvStore* store, const KeySpace& keys, Clock* clock)
    : store_(store), keys_(keys), clock_(clock) {}

Status Runner::LoadDatabase() {
  for (uint64_t i = 0; i < keys_.num_keys; i++) {
    Status s = store_->Put(Slice(keys_.KeyAt(i)), Slice(keys_.ValueFor(i)));
    if (!s.ok()) return s;
  }
  return store_->db()->FlushMemTable();
}

PhaseResult Runner::RunPhase(const Phase& phase, uint64_t seed) {
  RunnerOptions options;
  options.seed = seed;
  return RunPhase(phase, options);
}

PhaseResult Runner::RunPhase(const Phase& phase,
                             const RunnerOptions& options) {
  core::CacheStatsSnapshot before = store_->GetCacheStats();
  uint64_t sim_start = clock_->NowMicros();
  uint64_t wall_start = SystemClock::Default()->NowMicros();

  std::atomic<uint64_t> point_ops{0}, scan_ops{0}, write_ops{0}, scan_keys{0};

  // One histogram triple per thread; merged after the join, so recording is
  // contention-free.
  struct ThreadLatencies {
    Histogram point, scan, write;
  };
  const int num_threads = options.num_threads <= 1 ? 1 : options.num_threads;
  std::vector<ThreadLatencies> latencies(
      options.record_latencies ? static_cast<size_t>(num_threads) : 0);

  auto worker = [&](int thread_id) {
    Phase thread_phase = phase;
    thread_phase.num_ops =
        phase.num_ops / static_cast<uint64_t>(options.num_threads);
    OperationGenerator gen(thread_phase, keys_,
                           options.seed + static_cast<uint64_t>(thread_id) *
                                              0x9e3779b9);
    PinnableSlice value;
    std::vector<KvPair> results;

    // MultiGet batching: consecutive point lookups are buffered and issued
    // as one batch; scans and writes flush first to preserve ordering.
    const size_t batch_cap =
        options.multiget_batch > 1 ? options.multiget_batch : 1;
    std::vector<std::string> batch_keys;
    core::MultiGetBatch batch;
    if (batch_cap > 1) {
      batch_keys.reserve(batch_cap);
      batch.Reserve(batch_cap);
    }
    ThreadLatencies* lat = options.record_latencies
                               ? &latencies[static_cast<size_t>(thread_id)]
                               : nullptr;
    auto timed = [&](Histogram* hist, auto&& op_fn) {
      if (hist == nullptr) {
        op_fn();
        return;
      }
      uint64_t start = util::PerfNowMicros();
      op_fn();
      hist->Add(util::PerfNowMicros() - start);
    };

    auto flush_batch = [&]() {
      if (batch_keys.empty()) return;
      // Keys are added once the buffered strings have settled (push_back
      // above may move them); the batch borrows their bytes for one call.
      for (const std::string& k : batch_keys) batch.Add(Slice(k));
      timed(lat != nullptr ? &lat->point : nullptr,
            [&] { store_->MultiGet(&batch); });
      point_ops.fetch_add(batch.size(), std::memory_order_relaxed);
      // Clear releases block/memtable pins promptly; holding them across
      // operations would keep cache entries unevictable.
      batch.Clear();
      batch_keys.clear();
    };

    for (uint64_t i = 0; i < thread_phase.num_ops; i++) {
      Operation op = gen.Next();
      clock_->Charge(options.cpu_micros_per_op);
      switch (op.type) {
        case Operation::Type::kGet:
          if (batch_cap > 1) {
            batch_keys.push_back(keys_.KeyAt(op.key_index));
            if (batch_keys.size() >= batch_cap) flush_batch();
          } else {
            timed(lat != nullptr ? &lat->point : nullptr, [&] {
              store_->Get(Slice(keys_.KeyAt(op.key_index)), &value);
            });
            value.Reset();
            point_ops.fetch_add(1, std::memory_order_relaxed);
          }
          break;
        case Operation::Type::kScan: {
          flush_batch();
          timed(lat != nullptr ? &lat->scan : nullptr, [&] {
            store_->Scan(Slice(keys_.KeyAt(op.key_index)), op.scan_length,
                         &results);
          });
          clock_->Charge(options.cpu_micros_per_scan_key * results.size());
          scan_ops.fetch_add(1, std::memory_order_relaxed);
          scan_keys.fetch_add(results.size(), std::memory_order_relaxed);
          break;
        }
        case Operation::Type::kWrite:
          flush_batch();
          timed(lat != nullptr ? &lat->write : nullptr, [&] {
            store_->Put(Slice(keys_.KeyAt(op.key_index)),
                        Slice(keys_.ValueFor(op.key_index)));
          });
          write_ops.fetch_add(1, std::memory_order_relaxed);
          break;
      }
    }
    flush_batch();
  };

  if (options.num_threads <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> threads;
    for (int t = 0; t < options.num_threads; t++) {
      threads.emplace_back(worker, t);
    }
    for (auto& t : threads) t.join();
  }

  core::CacheStatsSnapshot after = store_->GetCacheStats();

  PhaseResult r;
  r.phase = phase.name;
  r.strategy = store_->Name();
  r.point_ops = point_ops.load();
  r.scan_ops = scan_ops.load();
  r.write_ops = write_ops.load();
  r.scan_keys = scan_keys.load();
  r.ops = r.point_ops + r.scan_ops + r.write_ops;
  // CounterDelta: the snapshots are gathered field-by-field with no global
  // lock, so a concurrent writer can make `after` appear behind `before`.
  r.block_reads = core::CounterDelta(after.block_reads, before.block_reads);
  r.elapsed_sim_micros = clock_->NowMicros() - sim_start;
  r.elapsed_wall_micros = SystemClock::Default()->NowMicros() - wall_start;
  r.end_stats = after;

  if (options.record_latencies) {
    Histogram point, scan, write;
    for (const ThreadLatencies& l : latencies) {
      point.Merge(l.point);
      scan.Merge(l.scan);
      write.Merge(l.write);
    }
    r.point_latency = core::MakeHistogramSnapshot(point);
    r.scan_latency = core::MakeHistogramSnapshot(scan);
    r.write_latency = core::MakeHistogramSnapshot(write);
  }

  // Uniform estimated hit rate (paper §3.5) over the phase's read traffic.
  core::WindowStats w;
  w.point_lookups = r.point_ops;
  w.scans = r.scan_ops;
  w.writes = r.write_ops;
  w.scan_keys = r.scan_keys;
  w.block_reads = r.block_reads;
  lsm::DB::LsmShape raw = store_->db()->GetLsmShape();
  core::LsmShapeParams shape;
  shape.num_levels = raw.num_levels_nonempty > 0 ? raw.num_levels_nonempty : 1;
  shape.l0_max_runs = store_->db()->options().l0_stop_trigger;
  shape.l0_files = raw.l0_files;
  shape.imm_memtables = raw.imm_memtables;
  shape.entries_per_block =
      raw.entries_per_block > 0 ? raw.entries_per_block : 4.0;
  // Live per-table filter telemetry, not the static option: once the
  // unified wall moves bits/key, the tree mixes thresholds and the static
  // value goes stale. The (dynamic) threshold stands in for an empty tree.
  shape.bloom_fpr = core::IoEstimator::BloomFprForBits(
      raw.live_entries > 0
          ? raw.avg_bloom_bits_per_key
          : static_cast<double>(store_->db()->bloom_bits_per_key()));
  r.hit_rate = core::IoEstimator::EstimateHitRate(w, shape);

  uint64_t elapsed =
      r.elapsed_sim_micros > 0 ? r.elapsed_sim_micros : r.elapsed_wall_micros;
  r.qps = elapsed == 0 ? 0
                       : static_cast<double>(r.ops) * 1e6 /
                             static_cast<double>(elapsed);
  return r;
}

std::string PhaseResultToJson(const PhaseResult& r) {
  std::ostringstream out;
  auto number = [&out](double v) {
    if (v != v || v > 1e300 || v < -1e300) {
      out << "null";  // JSON has no inf/nan
    } else {
      out << v;
    }
  };
  auto latency = [&](const char* name, const core::HistogramSnapshot& s) {
    out << "\"" << name << "\":{\"count\":" << s.count << ",\"p50\":";
    number(s.p50);
    out << ",\"p95\":";
    number(s.p95);
    out << ",\"p99\":";
    number(s.p99);
    out << "}";
  };
  out << "{\"strategy\":\"" << r.strategy << "\",\"phase\":\"" << r.phase
      << "\",\"ops\":" << r.ops << ",\"block_reads\":" << r.block_reads
      << ",\"hit_rate\":";
  number(r.hit_rate);
  out << ",\"qps\":";
  number(r.qps);
  out << ",\"latency_micros\":{";
  latency("point", r.point_latency);
  out << ",";
  latency("scan", r.scan_latency);
  out << ",";
  latency("write", r.write_latency);
  out << "}}";
  return out.str();
}

void PrintResultHeader() {
  std::printf("%-24s %-10s %10s %12s %10s %12s %10s\n", "strategy", "phase",
              "ops", "block_reads", "hit_rate", "qps", "sim_ms");
}

void PrintResult(const PhaseResult& r) {
  std::printf("%-24s %-10s %10llu %12llu %9.4f %12.0f %10llu\n",
              r.strategy.c_str(), r.phase.c_str(),
              static_cast<unsigned long long>(r.ops),
              static_cast<unsigned long long>(r.block_reads), r.hit_rate,
              r.qps,
              static_cast<unsigned long long>(r.elapsed_sim_micros / 1000));
}

}  // namespace adcache::workload
