#ifndef ADCACHE_WORKLOAD_ZIPFIAN_H_
#define ADCACHE_WORKLOAD_ZIPFIAN_H_

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace adcache::workload {

/// Zipfian generator over [0, n): item 0 is the most popular. `theta` is
/// the skew (paper default 0.9; the evaluation sweeps 0.6-1.2). Sampling is
/// exact inverse-CDF, valid for any theta > 0 including theta >= 1.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta, uint64_t seed);

  /// Next rank in [0, n), rank 0 most frequent.
  uint64_t Next();

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  std::vector<double> cdf_;
  Random rng_;
};

/// Scrambled Zipfian: Zipfian ranks hashed uniformly over the key space so
/// hot keys are scattered (YCSB semantics) rather than clustered at the low
/// end — this is what makes block-level caching carry cold keys alongside
/// hot ones (paper §5.4, skewness discussion).
class ScrambledZipfianGenerator {
 public:
  ScrambledZipfianGenerator(uint64_t n, double theta, uint64_t seed)
      : n_(n), zipf_(n, theta, seed) {}

  uint64_t Next();

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  ZipfianGenerator zipf_;
};

/// Uniform generator over [0, n) with the same interface.
class UniformGenerator {
 public:
  UniformGenerator(uint64_t n, uint64_t seed) : n_(n), rng_(seed) {}
  uint64_t Next() { return rng_.Uniform(n_); }

 private:
  uint64_t n_;
  Random rng_;
};

}  // namespace adcache::workload

#endif  // ADCACHE_WORKLOAD_ZIPFIAN_H_
