#include "workload/zipfian.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/hash.h"

namespace adcache::workload {

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; i++) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  // Inverse-CDF sampling over the exact Zipf distribution. Unlike the
  // classic YCSB closed form, this is valid for any theta > 0, including
  // theta >= 1 (the paper sweeps skewness up to 1.2).
  cdf_.resize(n_);
  double sum = 0;
  for (uint64_t i = 0; i < n_; i++) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta_);
    cdf_[i] = sum;
  }
  for (uint64_t i = 0; i < n_; i++) cdf_[i] /= sum;
}

uint64_t ZipfianGenerator::Next() {
  double u = rng_.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

uint64_t ScrambledZipfianGenerator::Next() {
  uint64_t rank = zipf_.Next();
  return Hash64(reinterpret_cast<const char*>(&rank), sizeof(rank),
                0x5bd1e995) %
         n_;
}

}  // namespace adcache::workload
