#ifndef ADCACHE_UTIL_INLINE_BUFFER_H_
#define ADCACHE_UTIL_INLINE_BUFFER_H_

#include <cstddef>
#include <memory>

namespace adcache {
namespace util {

/// A fixed-capacity scratch array that lives on the stack for the common
/// small case and falls back to one heap allocation for oversized inputs.
/// Batched-read paths (DB::MultiGet and friends) size every per-batch
/// scratch structure with this so a typical batch performs zero scratch
/// allocations. Elements are default-constructed; the buffer neither tracks
/// a length nor grows — callers manage their own counts.
template <typename T, size_t kInline>
class InlineBuffer {
 public:
  explicit InlineBuffer(size_t n) {
    if (n > kInline) {
      heap_ = std::make_unique<T[]>(n);
      ptr_ = heap_.get();
    } else {
      ptr_ = inline_;
    }
  }

  InlineBuffer(const InlineBuffer&) = delete;
  InlineBuffer& operator=(const InlineBuffer&) = delete;

  T* data() { return ptr_; }
  const T* data() const { return ptr_; }
  T& operator[](size_t i) { return ptr_[i]; }
  const T& operator[](size_t i) const { return ptr_[i]; }

 private:
  T inline_[kInline];
  std::unique_ptr<T[]> heap_;
  T* ptr_;
};

}  // namespace util
}  // namespace adcache

#endif  // ADCACHE_UTIL_INLINE_BUFFER_H_
