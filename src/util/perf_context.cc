#include "util/perf_context.h"

#include <cstring>
#include <sstream>

namespace adcache::util {

void PerfContext::Reset() { *this = PerfContext(); }

std::string PerfContext::ToString(bool exclude_zero_counters) const {
  std::ostringstream out;
  bool first = true;
  auto emit = [&](const char* name, uint64_t value) {
    if (exclude_zero_counters && value == 0) return;
    if (!first) out << ", ";
    out << name << " = " << value;
    first = false;
  };
  emit("memtable_probe_count", memtable_probe_count);
  emit("memtable_hit_count", memtable_hit_count);
  emit("block_cache_hit_count", block_cache_hit_count);
  emit("block_cache_miss_count", block_cache_miss_count);
  emit("block_cache_contains_count", block_cache_contains_count);
  emit("secondary_cache_hit_count", secondary_cache_hit_count);
  emit("block_read_count", block_read_count);
  emit("block_read_byte", block_read_byte);
  emit("bloom_sst_checked_count", bloom_sst_checked_count);
  emit("bloom_sst_negative_count", bloom_sst_negative_count);
  emit("range_cache_probe_count", range_cache_probe_count);
  emit("range_cache_hit_count", range_cache_hit_count);
  emit("admission_check_count", admission_check_count);
  emit("admission_admit_count", admission_admit_count);
  emit("wal_sync_count", wal_sync_count);
  emit("wal_sync_micros", wal_sync_micros);
  emit("write_delay_count", write_delay_count);
  emit("write_stall_count", write_stall_count);
  emit("write_stall_micros", write_stall_micros);
  return out.str();
}

}  // namespace adcache::util
