#include "util/arena.h"

#include <cassert>
#include <cstdint>

namespace adcache {

Arena::Arena() = default;

char* Arena::Allocate(size_t bytes) {
  assert(bytes > 0);
  if (bytes <= alloc_bytes_remaining_) {
    char* result = alloc_ptr_;
    alloc_ptr_ += bytes;
    alloc_bytes_remaining_ -= bytes;
    return result;
  }
  return AllocateFallback(bytes);
}

char* Arena::AllocateAligned(size_t bytes) {
  const size_t align = sizeof(void*);
  size_t current_mod = reinterpret_cast<uintptr_t>(alloc_ptr_) & (align - 1);
  size_t slop = (current_mod == 0 ? 0 : align - current_mod);
  size_t needed = bytes + slop;
  if (needed <= alloc_bytes_remaining_) {
    char* result = alloc_ptr_ + slop;
    alloc_ptr_ += needed;
    alloc_bytes_remaining_ -= needed;
    return result;
  }
  // AllocateFallback always returns pointer-aligned memory.
  return AllocateFallback(bytes);
}

char* Arena::AllocateFallback(size_t bytes) {
  if (bytes > kBlockSize / 4) {
    // Large allocations get their own block so we don't waste the remainder
    // of the current block.
    return AllocateNewBlock(bytes);
  }
  char* block = AllocateNewBlock(kBlockSize);
  alloc_ptr_ = block + bytes;
  alloc_bytes_remaining_ = kBlockSize - bytes;
  return block;
}

char* Arena::AllocateNewBlock(size_t block_bytes) {
  blocks_.push_back(std::make_unique<char[]>(block_bytes));
  memory_usage_.fetch_add(block_bytes + sizeof(char*),
                          std::memory_order_relaxed);
  return blocks_.back().get();
}

}  // namespace adcache
