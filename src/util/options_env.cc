#include "util/options_env.h"

#include <cctype>
#include <cstdlib>

namespace adcache::util {

namespace {

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

std::optional<std::string> OptionsFromEnv::String(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') {
    return std::nullopt;
  }
  return std::string(value);
}

int OptionsFromEnv::Int(const char* name, int default_value) {
  std::optional<std::string> value = String(name);
  if (!value.has_value()) {
    return default_value;
  }
  char* end = nullptr;
  long parsed = std::strtol(value->c_str(), &end, 10);
  if (end == value->c_str() || *end != '\0') {
    return default_value;
  }
  return static_cast<int>(parsed);
}

bool OptionsFromEnv::Flag(const char* name, bool default_value) {
  std::optional<std::string> value = String(name);
  if (!value.has_value()) {
    return default_value;
  }
  std::string v = ToLower(*value);
  if (v == "1" || v == "true" || v == "on" || v == "yes") {
    return true;
  }
  if (v == "0" || v == "false" || v == "off" || v == "no") {
    return false;
  }
  return default_value;
}

std::optional<uint64_t> OptionsFromEnv::ParseBytes(const std::string& text) {
  std::string v = ToLower(text);
  if (v.empty()) {
    return std::nullopt;
  }
  if (v == "off" || v == "false" || v == "no") {
    return 0;
  }
  uint64_t multiplier = 1;
  char suffix = v.back();
  if (suffix == 'k' || suffix == 'm' || suffix == 'g') {
    multiplier = suffix == 'k'   ? (uint64_t{1} << 10)
                 : suffix == 'm' ? (uint64_t{1} << 20)
                                 : (uint64_t{1} << 30);
    v.pop_back();
    if (v.empty()) {
      return std::nullopt;
    }
  }
  // strtoull would silently wrap "-5" to a huge positive count.
  if (!std::isdigit(static_cast<unsigned char>(v[0]))) {
    return std::nullopt;
  }
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0') {
    return std::nullopt;
  }
  return static_cast<uint64_t>(parsed) * multiplier;
}

uint64_t OptionsFromEnv::Bytes(const char* name, uint64_t default_value) {
  std::optional<std::string> value = String(name);
  if (!value.has_value()) {
    return default_value;
  }
  return ParseBytes(*value).value_or(default_value);
}

std::vector<std::string> OptionsFromEnv::Csv(const char* name) {
  std::vector<std::string> out;
  std::optional<std::string> value = String(name);
  if (!value.has_value()) {
    return out;
  }
  size_t start = 0;
  const std::string& v = *value;
  while (start <= v.size()) {
    size_t comma = v.find(',', start);
    if (comma == std::string::npos) {
      comma = v.size();
    }
    if (comma > start) {
      out.push_back(v.substr(start, comma - start));
    }
    start = comma + 1;
  }
  return out;
}

}  // namespace adcache::util
