#ifndef ADCACHE_UTIL_HISTOGRAM_H_
#define ADCACHE_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace adcache {

/// A log-bucketed histogram for latency/size distributions. Buckets grow
/// roughly geometrically so the structure is O(1) per Add and fixed size.
class Histogram {
 public:
  Histogram();

  void Clear();
  void Add(uint64_t value);
  void Merge(const Histogram& other);

  uint64_t num() const { return num_; }
  uint64_t min() const { return num_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Average() const;
  /// Value below which `p` (in [0,100]) percent of samples fall,
  /// interpolated within the bucket.
  double Percentile(double p) const;

  std::string ToString() const;

 private:
  static const std::vector<uint64_t>& BucketLimits();
  size_t BucketIndexFor(uint64_t value) const;

  uint64_t num_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
  double sum_ = 0;
  std::vector<uint64_t> buckets_;
};

}  // namespace adcache

#endif  // ADCACHE_UTIL_HISTOGRAM_H_
