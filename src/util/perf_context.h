#ifndef ADCACHE_UTIL_PERF_CONTEXT_H_
#define ADCACHE_UTIL_PERF_CONTEXT_H_

#include <chrono>
#include <cstdint>
#include <string>

namespace adcache::util {

/// Per-thread operation profile, modeled on RocksDB's PerfContext. Every
/// counter describes work done by the *calling thread* since the last
/// Reset(), so a caller can bracket a single Get/Put/Scan and attribute
/// exactly where it spent its effort: which caches answered, which bloom
/// filters fired, whether the write had to wait on a WAL sync or a stall.
///
/// Recording is gated by a thread-local PerfLevel (default kDisable): with
/// profiling off, every instrumentation site is one thread-local load and a
/// predictable branch — no atomics, no clock reads. Timer fields (the
/// `_micros` ones) additionally require kEnableTime, because reading the
/// clock is the expensive part.
struct PerfContext {
  // --- read path ---
  uint64_t memtable_probe_count = 0;   // memtables consulted (active + imm)
  uint64_t memtable_hit_count = 0;     // lookups answered by a memtable
  uint64_t block_cache_hit_count = 0;  // block-cache lookups that hit
  uint64_t block_cache_miss_count = 0; // block-cache lookups that missed
  uint64_t block_cache_contains_count = 0;  // advisory Contains() probes
  uint64_t secondary_cache_hit_count = 0;  // flash-tier hits (DRAM misses)
  uint64_t block_read_count = 0;       // data blocks read from storage
  uint64_t block_read_byte = 0;        // bytes of those block reads
  uint64_t bloom_sst_checked_count = 0;   // per-table bloom filter probes
  uint64_t bloom_sst_negative_count = 0;  // probes that skipped the table

  // --- AdCache layer ---
  uint64_t range_cache_probe_count = 0;  // range-cache (point or scan) probes
  uint64_t range_cache_hit_count = 0;    // probes answered by the range cache
  uint64_t admission_check_count = 0;    // admission-controller consultations
  uint64_t admission_admit_count = 0;    // consultations that admitted

  // --- write path ---
  uint64_t wal_sync_count = 0;       // WAL fsyncs performed by this thread
  uint64_t wal_sync_micros = 0;      // time inside those fsyncs (kEnableTime)
  uint64_t write_delay_count = 0;    // one-shot L0 slowdown delays taken
  uint64_t write_stall_count = 0;    // hard stop-stalls waited out
  uint64_t write_stall_micros = 0;   // wall time stalled or delayed

  void Reset();
  /// "name = value, ..." for all fields; zero fields skipped by default.
  std::string ToString(bool exclude_zero_counters = true) const;
};

/// How much a thread records into its PerfContext.
enum class PerfLevel : int {
  kDisable = 0,      // record nothing (default)
  kEnableCount = 1,  // record counters, skip anything needing a clock read
  kEnableTime = 2,   // record counters and timers
};

namespace perf_internal {
inline thread_local PerfLevel tls_perf_level = PerfLevel::kDisable;
inline thread_local PerfContext tls_perf_context{};
}  // namespace perf_internal

/// Sets the profiling level for the calling thread only.
inline void SetPerfLevel(PerfLevel level) {
  perf_internal::tls_perf_level = level;
}
inline PerfLevel GetPerfLevel() { return perf_internal::tls_perf_level; }

/// The calling thread's context. Always valid; contents only change while
/// the thread's level is above kDisable.
inline PerfContext* GetPerfContext() {
  return &perf_internal::tls_perf_context;
}

inline bool PerfCountEnabled() {
  return perf_internal::tls_perf_level >= PerfLevel::kEnableCount;
}
inline bool PerfTimeEnabled() {
  return perf_internal::tls_perf_level >= PerfLevel::kEnableTime;
}

/// Steady-clock microseconds for perf timers (monotonic; not SimClock —
/// PerfContext always measures real CPU-visible wall time).
inline uint64_t PerfNowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// RAII timer adding elapsed micros to `*field` at destruction. Reads the
/// clock only when the thread is at kEnableTime.
class PerfMicrosTimer {
 public:
  explicit PerfMicrosTimer(uint64_t* field)
      : field_(PerfTimeEnabled() ? field : nullptr),
        start_(field_ ? PerfNowMicros() : 0) {}
  ~PerfMicrosTimer() {
    if (field_ != nullptr) *field_ += PerfNowMicros() - start_;
  }
  PerfMicrosTimer(const PerfMicrosTimer&) = delete;
  PerfMicrosTimer& operator=(const PerfMicrosTimer&) = delete;

 private:
  uint64_t* field_;
  uint64_t start_;
};

}  // namespace adcache::util

/// Hot-path counter bump: one thread-local load + branch when disabled.
#define ADCACHE_PERF_COUNTER_ADD(field, amount)                    \
  do {                                                             \
    if (::adcache::util::PerfCountEnabled()) {                     \
      ::adcache::util::GetPerfContext()->field +=                  \
          static_cast<uint64_t>(amount);                           \
    }                                                              \
  } while (0)

/// Scope timer into a PerfContext `_micros` field; clock reads only happen
/// at PerfLevel::kEnableTime.
#define ADCACHE_PERF_TIMER_GUARD(field)                            \
  ::adcache::util::PerfMicrosTimer perf_timer_##field(             \
      &::adcache::util::GetPerfContext()->field)

#endif  // ADCACHE_UTIL_PERF_CONTEXT_H_
