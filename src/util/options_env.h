#ifndef ADCACHE_UTIL_OPTIONS_ENV_H_
#define ADCACHE_UTIL_OPTIONS_ENV_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace adcache::util {

/// Centralised parsing for the `ADCACHE_*` environment-variable knobs.
///
/// Every call site that used to hand-roll `std::getenv` + ad-hoc parsing
/// (block-cache impl selection, shard-count/boundary resolution, the
/// secondary-cache budget) goes through these typed getters instead, so the
/// accepted syntax is defined — and tested — in exactly one place.
///
/// Unset variables and empty strings both mean "not configured" and yield
/// the caller's default. Malformed values also fall back to the default
/// rather than aborting: env knobs are operator conveniences layered on top
/// of programmatic Options, and a typo should degrade to the built-in
/// behaviour, not crash the process.
class OptionsFromEnv {
 public:
  /// Raw string value, or nullopt when unset/empty.
  static std::optional<std::string> String(const char* name);

  /// Integer value; `default_value` when unset or not a valid integer.
  static int Int(const char* name, int default_value);

  /// Boolean flag. Accepts 1/true/on/yes (case-insensitive) as true and
  /// 0/false/off/no as false; anything else yields `default_value`.
  static bool Flag(const char* name, bool default_value);

  /// Byte count with an optional k/m/g (or K/M/G) binary suffix, e.g.
  /// "8388608", "8m", "512K". Returns `default_value` when unset or
  /// malformed. A plain "0" (or "off"/"false") is a valid zero.
  static uint64_t Bytes(const char* name, uint64_t default_value);

  /// Comma-separated list; empty segments are dropped. Returns an empty
  /// vector when unset.
  static std::vector<std::string> Csv(const char* name);

  /// Shared parsing core for Bytes(), exposed so tests can exercise the
  /// suffix grammar without mutating the process environment.
  static std::optional<uint64_t> ParseBytes(const std::string& text);
};

}  // namespace adcache::util

#endif  // ADCACHE_UTIL_OPTIONS_ENV_H_
