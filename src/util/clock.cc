#include "util/clock.h"

#include <chrono>

namespace adcache {

uint64_t SystemClock::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

SystemClock* SystemClock::Default() {
  static SystemClock* instance = new SystemClock();
  return instance;
}

}  // namespace adcache
