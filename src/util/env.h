#ifndef ADCACHE_UTIL_ENV_H_
#define ADCACHE_UTIL_ENV_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/clock.h"
#include "util/slice.h"
#include "util/status.h"

namespace adcache {

/// Counters describing storage-level activity. Shared by the Env, the table
/// readers and the caches; all fields are safe for concurrent update.
struct IoStats {
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};
  std::atomic<uint64_t> read_ops{0};
  std::atomic<uint64_t> write_ops{0};
  /// SST data-block reads that reached storage (i.e. block cache misses that
  /// were actually served from disk). This is the paper's "SST reads" metric.
  std::atomic<uint64_t> block_reads{0};
  /// Index/filter block reads that reached storage.
  std::atomic<uint64_t> meta_block_reads{0};

  void Reset() {
    bytes_read = 0;
    bytes_written = 0;
    read_ops = 0;
    write_ops = 0;
    block_reads = 0;
    meta_block_reads = 0;
  }
};

/// Sequential read-only file (WAL/manifest replay).
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;
  /// Reads up to `n` bytes into `scratch`; `*result` views the bytes read.
  virtual Status Read(size_t n, Slice* result, char* scratch) = 0;
  virtual Status Skip(uint64_t n) = 0;
};

/// Positional read-only file (SSTables).
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;
  virtual Status Read(uint64_t offset, size_t n, Slice* result,
                      char* scratch) const = 0;
  virtual uint64_t Size() const = 0;
};

/// Append-only writable file (WAL, SSTable under construction).
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(const Slice& data) = 0;
  virtual Status Flush() = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
  virtual uint64_t Size() const = 0;
};

/// Filesystem + time abstraction in the style of rocksdb::Env. Two concrete
/// backends exist: a POSIX one and an in-memory one whose reads charge
/// configurable latency to a simulated clock (see DESIGN.md).
class Env {
 public:
  virtual ~Env() = default;

  virtual Status NewSequentialFile(const std::string& fname,
                                   std::unique_ptr<SequentialFile>* result) = 0;
  virtual Status NewRandomAccessFile(
      const std::string& fname, std::unique_ptr<RandomAccessFile>* result) = 0;
  virtual Status NewWritableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* result) = 0;
  virtual Status RemoveFile(const std::string& fname) = 0;
  virtual Status CreateDirIfMissing(const std::string& dirname) = 0;
  virtual Status GetChildren(const std::string& dirname,
                             std::vector<std::string>* result) = 0;
  virtual bool FileExists(const std::string& fname) = 0;
  virtual Status GetFileSize(const std::string& fname, uint64_t* size) = 0;

  Clock* clock() const { return clock_; }
  IoStats* io_stats() { return &io_stats_; }

 protected:
  explicit Env(Clock* clock) : clock_(clock) {}

  Clock* clock_;
  IoStats io_stats_;
};

/// POSIX filesystem, wall-clock time.
std::unique_ptr<Env> NewPosixEnv();

/// Options for the in-memory simulated environment.
struct MemEnvOptions {
  /// Latency charged to the clock per positional read call (models one
  /// 4 KB NVMe read, direct I/O). 0 disables time charging.
  uint64_t read_latency_micros = 80;
  /// Latency charged per write/sync of up to 1 MB.
  uint64_t write_latency_micros = 20;
  /// Latency charged per WritableFile::Sync (models a device flush /
  /// FUA write). 0 keeps the historical behaviour of free syncs.
  uint64_t sync_latency_micros = 0;
  /// If true, every charged latency also sleeps the calling thread for the
  /// same duration. This "realises" the simulated device so that threads
  /// genuinely queue behind I/O — required for concurrency experiments
  /// (group commit only helps if a sync occupies the device for a while).
  bool realize_latency = false;
};

/// In-memory filesystem over the given clock (pass a SimClock for
/// deterministic benchmarking). The Env does not own the clock.
std::unique_ptr<Env> NewMemEnv(Clock* clock,
                               const MemEnvOptions& options = MemEnvOptions());

}  // namespace adcache

#endif  // ADCACHE_UTIL_ENV_H_
