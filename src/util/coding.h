#ifndef ADCACHE_UTIL_CODING_H_
#define ADCACHE_UTIL_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "util/slice.h"

namespace adcache {

// Little-endian fixed-width and varint encodings used throughout the storage
// layer (block format, WAL records, manifest). Matches the leveldb wire idiom.

void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);
void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);
/// Appends varint32 length followed by the bytes of `value`.
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);

uint32_t DecodeFixed32(const char* ptr);
uint64_t DecodeFixed64(const char* ptr);

/// Parses a varint32 from [p, limit); returns pointer past the value or
/// nullptr on malformed input.
const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* value);
const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* value);

/// Consuming variants: advance `input` past the parsed value. Return false on
/// malformed / truncated input.
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);
bool GetLengthPrefixedSlice(Slice* input, Slice* result);

/// Number of bytes VarintLength64 encoding of `v` occupies.
int VarintLength(uint64_t v);

inline void EncodeFixed32(char* buf, uint32_t value) {
  memcpy(buf, &value, sizeof(value));  // little-endian hosts only
}

inline void EncodeFixed64(char* buf, uint64_t value) {
  memcpy(buf, &value, sizeof(value));
}

/// Writes a varint32 into `dst` (which must have >= 5 bytes of room) and
/// returns the pointer one past the encoded value.
inline char* EncodeVarint32(char* dst, uint32_t v) {
  auto* ptr = reinterpret_cast<uint8_t*>(dst);
  while (v >= 128) {
    *(ptr++) = static_cast<uint8_t>(v | 128);
    v >>= 7;
  }
  *(ptr++) = static_cast<uint8_t>(v);
  return reinterpret_cast<char*>(ptr);
}

}  // namespace adcache

#endif  // ADCACHE_UTIL_CODING_H_
