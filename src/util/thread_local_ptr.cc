#include "util/thread_local_ptr.h"

#include <atomic>
#include <deque>
#include <mutex>
#include <utility>

namespace adcache::util {

namespace {

struct Entry {
  std::atomic<void*> ptr{nullptr};
};

/// Per-thread table of slots, one Entry per live ThreadLocalPtr id. A deque
/// so growth never relocates entries: Scrape can hold a raw reference to an
/// Entry while the owning thread appends new ones.
struct ThreadData {
  std::deque<Entry> entries;
  ThreadData* next = nullptr;
  ThreadData* prev = nullptr;
};

/// Process-wide registry: the circular list of live threads' tables plus id
/// allocation. Intentionally leaked so threads exiting after static
/// destruction can still unregister safely.
class StaticMeta {
 public:
  static StaticMeta& Instance() {
    static StaticMeta* meta = new StaticMeta();
    return *meta;
  }

  std::mutex mu;
  ThreadData head;  // dummy node of the circular thread list
  std::vector<ThreadLocalPtr::UnrefHandler> handlers;  // indexed by id
  std::vector<uint32_t> free_ids;

 private:
  StaticMeta() {
    head.next = &head;
    head.prev = &head;
  }
};

/// Registers the thread's table on first use; on thread exit, hands parked
/// values to their instances' handlers and unlinks.
struct ThreadDataHolder {
  ThreadData data;

  ThreadDataHolder() {
    StaticMeta& meta = StaticMeta::Instance();
    std::lock_guard<std::mutex> l(meta.mu);
    data.next = &meta.head;
    data.prev = meta.head.prev;
    meta.head.prev->next = &data;
    meta.head.prev = &data;
  }

  ~ThreadDataHolder() {
    StaticMeta& meta = StaticMeta::Instance();
    std::vector<std::pair<ThreadLocalPtr::UnrefHandler, void*>> pending;
    {
      std::lock_guard<std::mutex> l(meta.mu);
      for (size_t id = 0; id < data.entries.size(); id++) {
        void* p =
            data.entries[id].ptr.exchange(nullptr, std::memory_order_acq_rel);
        if (p != nullptr && id < meta.handlers.size() &&
            meta.handlers[id] != nullptr) {
          pending.emplace_back(meta.handlers[id], p);
        }
      }
      data.prev->next = data.next;
      data.next->prev = data.prev;
    }
    // Handlers run outside the lock: they may do arbitrary cleanup work.
    for (auto& [handler, p] : pending) handler(p);
  }
};

thread_local ThreadDataHolder tls;

std::atomic<void*>& SlotFor(uint32_t id) {
  ThreadData& data = tls.data;
  if (data.entries.size() <= id) {
    // Growth synchronizes with Scrape/instance-destruction readers, which
    // inspect entries.size() under the same lock.
    StaticMeta& meta = StaticMeta::Instance();
    std::lock_guard<std::mutex> l(meta.mu);
    while (data.entries.size() <= id) data.entries.emplace_back();
  }
  return data.entries[id].ptr;
}

}  // namespace

ThreadLocalPtr::ThreadLocalPtr(UnrefHandler handler) {
  StaticMeta& meta = StaticMeta::Instance();
  std::lock_guard<std::mutex> l(meta.mu);
  if (!meta.free_ids.empty()) {
    id_ = meta.free_ids.back();
    meta.free_ids.pop_back();
    meta.handlers[id_] = handler;
  } else {
    id_ = static_cast<uint32_t>(meta.handlers.size());
    meta.handlers.push_back(handler);
  }
}

ThreadLocalPtr::~ThreadLocalPtr() {
  StaticMeta& meta = StaticMeta::Instance();
  std::vector<std::pair<UnrefHandler, void*>> pending;
  {
    std::lock_guard<std::mutex> l(meta.mu);
    UnrefHandler handler = meta.handlers[id_];
    for (ThreadData* t = meta.head.next; t != &meta.head; t = t->next) {
      if (t->entries.size() <= id_) continue;
      void* p =
          t->entries[id_].ptr.exchange(nullptr, std::memory_order_acq_rel);
      if (p != nullptr && handler != nullptr) pending.emplace_back(handler, p);
    }
    meta.handlers[id_] = nullptr;
    meta.free_ids.push_back(id_);
  }
  for (auto& [handler, p] : pending) handler(p);
}

void* ThreadLocalPtr::Swap(void* v) {
  return SlotFor(id_).exchange(v, std::memory_order_acq_rel);
}

bool ThreadLocalPtr::CompareAndSwap(void* expected, void* v) {
  return SlotFor(id_).compare_exchange_strong(
      expected, v, std::memory_order_acq_rel, std::memory_order_relaxed);
}

void ThreadLocalPtr::Scrape(std::vector<void*>* collected, void* replacement) {
  StaticMeta& meta = StaticMeta::Instance();
  std::lock_guard<std::mutex> l(meta.mu);
  for (ThreadData* t = meta.head.next; t != &meta.head; t = t->next) {
    if (t->entries.size() <= id_) continue;
    void* p =
        t->entries[id_].ptr.exchange(replacement, std::memory_order_acq_rel);
    if (p != nullptr) collected->push_back(p);
  }
}

}  // namespace adcache::util
