#include "util/thread_pool.h"

#include <algorithm>

namespace adcache::util {

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; i++) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Schedule(std::function<void()> job, bool high_priority) {
  {
    std::lock_guard<std::mutex> l(mu_);
    if (shutting_down_) return false;
    (high_priority ? high_queue_ : queue_).push_back(std::move(job));
  }
  work_available_.notify_one();
  return true;
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> l(mu_);
  idle_.wait(l, [this] {
    return high_queue_.empty() && queue_.empty() && active_ == 0;
  });
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> l(mu_);
    if (shutting_down_) {
      // Another caller (or the destructor after an explicit Shutdown) got
      // here first; workers_ may already be joined.
    }
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

size_t ThreadPool::queued_jobs() const {
  std::lock_guard<std::mutex> l(mu_);
  return high_queue_.size() + queue_.size();
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> l(mu_);
  while (true) {
    work_available_.wait(l, [this] {
      return !high_queue_.empty() || !queue_.empty() || shutting_down_;
    });
    if (high_queue_.empty() && queue_.empty()) {
      if (shutting_down_) return;
      continue;
    }
    auto& source = high_queue_.empty() ? queue_ : high_queue_;
    std::function<void()> job = std::move(source.front());
    source.pop_front();
    active_++;
    l.unlock();
    job();
    l.lock();
    active_--;
    if (high_queue_.empty() && queue_.empty() && active_ == 0) {
      idle_.notify_all();
    }
  }
}

}  // namespace adcache::util
