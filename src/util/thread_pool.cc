#include "util/thread_pool.h"

#include <algorithm>

namespace adcache::util {

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; i++) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Schedule(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> l(mu_);
    if (shutting_down_) return false;
    queue_.push_back(std::move(job));
  }
  work_available_.notify_one();
  return true;
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> l(mu_);
  idle_.wait(l, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> l(mu_);
    if (shutting_down_) {
      // Another caller (or the destructor after an explicit Shutdown) got
      // here first; workers_ may already be joined.
    }
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

size_t ThreadPool::queued_jobs() const {
  std::lock_guard<std::mutex> l(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> l(mu_);
  while (true) {
    work_available_.wait(
        l, [this] { return !queue_.empty() || shutting_down_; });
    if (queue_.empty()) {
      if (shutting_down_) return;
      continue;
    }
    std::function<void()> job = std::move(queue_.front());
    queue_.pop_front();
    active_++;
    l.unlock();
    job();
    l.lock();
    active_--;
    if (queue_.empty() && active_ == 0) idle_.notify_all();
  }
}

}  // namespace adcache::util
