#ifndef ADCACHE_UTIL_ARENA_H_
#define ADCACHE_UTIL_ARENA_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

namespace adcache {

/// Arena provides fast bump allocation for memtable nodes. Memory is released
/// only when the arena is destroyed. Not thread-safe for allocation; the
/// memtable serialises writers.
class Arena {
 public:
  Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  ~Arena() = default;

  /// Returns a pointer to `bytes` bytes of uninitialised memory.
  char* Allocate(size_t bytes);

  /// Like Allocate but the result is aligned to pointer size.
  char* AllocateAligned(size_t bytes);

  /// Total memory footprint of the arena (for memtable size accounting).
  size_t MemoryUsage() const {
    return memory_usage_.load(std::memory_order_relaxed);
  }

 private:
  char* AllocateFallback(size_t bytes);
  char* AllocateNewBlock(size_t block_bytes);

  static constexpr size_t kBlockSize = 4096;

  char* alloc_ptr_ = nullptr;
  size_t alloc_bytes_remaining_ = 0;
  std::vector<std::unique_ptr<char[]>> blocks_;
  std::atomic<size_t> memory_usage_{0};
};

}  // namespace adcache

#endif  // ADCACHE_UTIL_ARENA_H_
