#ifndef ADCACHE_UTIL_THREAD_POOL_H_
#define ADCACHE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace adcache::util {

/// Fixed-size pool of background worker threads with a two-level priority
/// job queue, in the style of rocksdb's Env::Schedule. Used by lsm::DB for
/// flushes (high priority) and compactions (normal priority); generic
/// enough for any deferred work.
///
/// Shutdown semantics: the destructor (and Shutdown) stops accepting new
/// jobs, lets every already-queued job run to completion, and joins the
/// workers. Jobs must therefore not block forever on state that only the
/// caller of ~ThreadPool can advance.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `job` for execution on some worker thread. Jobs scheduled
  /// from the same thread at the same priority run in FIFO order;
  /// high-priority jobs always dispatch before queued normal-priority ones
  /// (they do not preempt a job already running). Returns false (dropping
  /// the job) after Shutdown has begun.
  bool Schedule(std::function<void()> job, bool high_priority = false);

  /// Blocks until the queue is empty and every worker is idle.
  void WaitIdle();

  /// Drains queued jobs and joins the workers. Idempotent; called by the
  /// destructor.
  void Shutdown();

  int num_threads() const { return static_cast<int>(workers_.size()); }
  /// Jobs queued but not yet picked up (diagnostic).
  size_t queued_jobs() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> high_queue_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int active_ = 0;
  bool shutting_down_ = false;
};

}  // namespace adcache::util

#endif  // ADCACHE_UTIL_THREAD_POOL_H_
