#include "util/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <thread>

namespace adcache {

namespace {

// ---------------------------------------------------------------------------
// POSIX backend
// ---------------------------------------------------------------------------

Status PosixError(const std::string& context, int err) {
  return Status::IOError(context + ": " + std::strerror(err));
}

class PosixSequentialFile : public SequentialFile {
 public:
  PosixSequentialFile(std::string fname, int fd, IoStats* stats)
      : fname_(std::move(fname)), fd_(fd), stats_(stats) {}
  ~PosixSequentialFile() override { ::close(fd_); }

  Status Read(size_t n, Slice* result, char* scratch) override {
    ssize_t r = ::read(fd_, scratch, n);
    if (r < 0) return PosixError(fname_, errno);
    stats_->bytes_read += static_cast<uint64_t>(r);
    stats_->read_ops++;
    *result = Slice(scratch, static_cast<size_t>(r));
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    if (::lseek(fd_, static_cast<off_t>(n), SEEK_CUR) < 0) {
      return PosixError(fname_, errno);
    }
    return Status::OK();
  }

 private:
  std::string fname_;
  int fd_;
  IoStats* stats_;
};

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string fname, int fd, uint64_t size,
                        IoStats* stats)
      : fname_(std::move(fname)), fd_(fd), size_(size), stats_(stats) {}
  ~PosixRandomAccessFile() override { ::close(fd_); }

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    ssize_t r = ::pread(fd_, scratch, n, static_cast<off_t>(offset));
    if (r < 0) return PosixError(fname_, errno);
    stats_->bytes_read += static_cast<uint64_t>(r);
    stats_->read_ops++;
    *result = Slice(scratch, static_cast<size_t>(r));
    return Status::OK();
  }

  uint64_t Size() const override { return size_; }

 private:
  std::string fname_;
  int fd_;
  uint64_t size_;
  IoStats* stats_;
};

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::string fname, int fd, IoStats* stats)
      : fname_(std::move(fname)), fd_(fd), stats_(stats) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const Slice& data) override {
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t w = ::write(fd_, p, left);
      if (w < 0) return PosixError(fname_, errno);
      p += w;
      left -= static_cast<size_t>(w);
    }
    size_ += data.size();
    stats_->bytes_written += data.size();
    stats_->write_ops++;
    return Status::OK();
  }

  Status Flush() override { return Status::OK(); }

  Status Sync() override {
    if (::fdatasync(fd_) < 0) return PosixError(fname_, errno);
    return Status::OK();
  }

  Status Close() override {
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) < 0) return PosixError(fname_, errno);
    return Status::OK();
  }

  uint64_t Size() const override { return size_; }

 private:
  std::string fname_;
  int fd_;
  uint64_t size_ = 0;
  IoStats* stats_;
};

class PosixEnv : public Env {
 public:
  PosixEnv() : Env(SystemClock::Default()) {}

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    int fd = ::open(fname.c_str(), O_RDONLY);
    if (fd < 0) return PosixError(fname, errno);
    *result = std::make_unique<PosixSequentialFile>(fname, fd, &io_stats_);
    return Status::OK();
  }

  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    int fd = ::open(fname.c_str(), O_RDONLY);
    if (fd < 0) return PosixError(fname, errno);
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      int err = errno;
      ::close(fd);
      return PosixError(fname, err);
    }
    *result = std::make_unique<PosixRandomAccessFile>(
        fname, fd, static_cast<uint64_t>(st.st_size), &io_stats_);
    return Status::OK();
  }

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    int fd = ::open(fname.c_str(), O_TRUNC | O_WRONLY | O_CREAT, 0644);
    if (fd < 0) return PosixError(fname, errno);
    *result = std::make_unique<PosixWritableFile>(fname, fd, &io_stats_);
    return Status::OK();
  }

  Status RemoveFile(const std::string& fname) override {
    if (::unlink(fname.c_str()) != 0) return PosixError(fname, errno);
    return Status::OK();
  }

  Status CreateDirIfMissing(const std::string& dirname) override {
    std::error_code ec;
    std::filesystem::create_directories(dirname, ec);
    if (ec) return Status::IOError(dirname + ": " + ec.message());
    return Status::OK();
  }

  Status GetChildren(const std::string& dirname,
                     std::vector<std::string>* result) override {
    result->clear();
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(dirname, ec)) {
      result->push_back(entry.path().filename().string());
    }
    if (ec) return Status::IOError(dirname + ": " + ec.message());
    return Status::OK();
  }

  bool FileExists(const std::string& fname) override {
    return ::access(fname.c_str(), F_OK) == 0;
  }

  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    struct stat st;
    if (::stat(fname.c_str(), &st) != 0) return PosixError(fname, errno);
    *size = static_cast<uint64_t>(st.st_size);
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// In-memory backend with simulated I/O latency
// ---------------------------------------------------------------------------

struct MemFile {
  std::string contents;
  mutable std::shared_mutex mu;
};

class MemFileTable {
 public:
  std::shared_ptr<MemFile> Find(const std::string& fname) {
    std::lock_guard<std::mutex> l(mu_);
    auto it = files_.find(fname);
    return it == files_.end() ? nullptr : it->second;
  }

  std::shared_ptr<MemFile> Create(const std::string& fname) {
    std::lock_guard<std::mutex> l(mu_);
    auto file = std::make_shared<MemFile>();
    files_[fname] = file;
    return file;
  }

  bool Remove(const std::string& fname) {
    std::lock_guard<std::mutex> l(mu_);
    return files_.erase(fname) > 0;
  }

  bool Exists(const std::string& fname) {
    std::lock_guard<std::mutex> l(mu_);
    return files_.count(fname) > 0;
  }

  std::vector<std::string> List(const std::string& dirname) {
    std::lock_guard<std::mutex> l(mu_);
    std::string prefix = dirname;
    if (!prefix.empty() && prefix.back() != '/') prefix += '/';
    std::vector<std::string> out;
    for (const auto& [name, file] : files_) {
      if (name.size() > prefix.size() && name.compare(0, prefix.size(),
                                                      prefix) == 0) {
        std::string rest = name.substr(prefix.size());
        if (rest.find('/') == std::string::npos) out.push_back(rest);
      }
    }
    return out;
  }

 private:
  std::mutex mu_;
  std::map<std::string, std::shared_ptr<MemFile>> files_;
};

// Charges `micros` of simulated latency and, when the env is configured to
// realise latency, occupies the calling thread for the same duration so
// concurrent threads queue behind the simulated device.
void ChargeIo(Clock* clock, const MemEnvOptions& opts, uint64_t micros) {
  if (micros == 0) return;
  clock->Charge(micros);
  if (opts.realize_latency) {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
}

class MemSequentialFile : public SequentialFile {
 public:
  MemSequentialFile(std::shared_ptr<MemFile> file, Clock* clock,
                    const MemEnvOptions& opts, IoStats* stats)
      : file_(std::move(file)), clock_(clock), opts_(opts), stats_(stats) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    std::shared_lock<std::shared_mutex> l(file_->mu);
    size_t avail = file_->contents.size() - std::min(pos_,
                                                     file_->contents.size());
    size_t r = std::min(n, avail);
    memcpy(scratch, file_->contents.data() + pos_, r);
    pos_ += r;
    stats_->bytes_read += r;
    stats_->read_ops++;
    ChargeIo(clock_, opts_, opts_.read_latency_micros);
    *result = Slice(scratch, r);
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    pos_ += n;
    return Status::OK();
  }

 private:
  std::shared_ptr<MemFile> file_;
  Clock* clock_;
  MemEnvOptions opts_;
  IoStats* stats_;
  size_t pos_ = 0;
};

class MemRandomAccessFile : public RandomAccessFile {
 public:
  MemRandomAccessFile(std::shared_ptr<MemFile> file, Clock* clock,
                      const MemEnvOptions& opts, IoStats* stats)
      : file_(std::move(file)), clock_(clock), opts_(opts), stats_(stats) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    std::shared_lock<std::shared_mutex> l(file_->mu);
    if (offset > file_->contents.size()) {
      return Status::IOError("read past end of file");
    }
    size_t r = std::min(n, file_->contents.size() -
                               static_cast<size_t>(offset));
    memcpy(scratch, file_->contents.data() + offset, r);
    stats_->bytes_read += r;
    stats_->read_ops++;
    ChargeIo(clock_, opts_, opts_.read_latency_micros);
    *result = Slice(scratch, r);
    return Status::OK();
  }

  uint64_t Size() const override {
    std::shared_lock<std::shared_mutex> l(file_->mu);
    return file_->contents.size();
  }

 private:
  std::shared_ptr<MemFile> file_;
  Clock* clock_;
  MemEnvOptions opts_;
  IoStats* stats_;
};

class MemWritableFile : public WritableFile {
 public:
  MemWritableFile(std::shared_ptr<MemFile> file, Clock* clock,
                  const MemEnvOptions& opts, IoStats* stats)
      : file_(std::move(file)), clock_(clock), opts_(opts), stats_(stats) {}

  Status Append(const Slice& data) override {
    std::unique_lock<std::shared_mutex> l(file_->mu);
    file_->contents.append(data.data(), data.size());
    stats_->bytes_written += data.size();
    stats_->write_ops++;
    ChargeIo(clock_, opts_, opts_.write_latency_micros);
    return Status::OK();
  }

  Status Flush() override { return Status::OK(); }
  Status Sync() override {
    ChargeIo(clock_, opts_, opts_.sync_latency_micros);
    return Status::OK();
  }
  Status Close() override { return Status::OK(); }

  uint64_t Size() const override {
    std::shared_lock<std::shared_mutex> l(file_->mu);
    return file_->contents.size();
  }

 private:
  std::shared_ptr<MemFile> file_;
  Clock* clock_;
  MemEnvOptions opts_;
  IoStats* stats_;
};

class MemEnv : public Env {
 public:
  MemEnv(Clock* clock, const MemEnvOptions& opts) : Env(clock), opts_(opts) {}

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    auto file = table_.Find(fname);
    if (file == nullptr) return Status::NotFound(fname);
    *result =
        std::make_unique<MemSequentialFile>(file, clock_, opts_, &io_stats_);
    return Status::OK();
  }

  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    auto file = table_.Find(fname);
    if (file == nullptr) return Status::NotFound(fname);
    *result =
        std::make_unique<MemRandomAccessFile>(file, clock_, opts_, &io_stats_);
    return Status::OK();
  }

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    auto file = table_.Create(fname);
    *result =
        std::make_unique<MemWritableFile>(file, clock_, opts_, &io_stats_);
    return Status::OK();
  }

  Status RemoveFile(const std::string& fname) override {
    if (!table_.Remove(fname)) return Status::NotFound(fname);
    return Status::OK();
  }

  Status CreateDirIfMissing(const std::string& /*dirname*/) override {
    return Status::OK();
  }

  Status GetChildren(const std::string& dirname,
                     std::vector<std::string>* result) override {
    *result = table_.List(dirname);
    return Status::OK();
  }

  bool FileExists(const std::string& fname) override {
    return table_.Exists(fname);
  }

  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    auto file = table_.Find(fname);
    if (file == nullptr) return Status::NotFound(fname);
    std::shared_lock<std::shared_mutex> l(file->mu);
    *size = file->contents.size();
    return Status::OK();
  }

 private:
  MemEnvOptions opts_;
  MemFileTable table_;
};

}  // namespace

std::unique_ptr<Env> NewPosixEnv() { return std::make_unique<PosixEnv>(); }

std::unique_ptr<Env> NewMemEnv(Clock* clock, const MemEnvOptions& options) {
  return std::make_unique<MemEnv>(clock, options);
}

}  // namespace adcache
