#ifndef ADCACHE_UTIL_PINNABLE_SLICE_H_
#define ADCACHE_UTIL_PINNABLE_SLICE_H_

#include <string>
#include <utility>

#include "util/slice.h"

namespace adcache {

/// A value that either owns its bytes (self-contained copy) or *pins* an
/// external resource — a block-cache handle, a SuperVersion — that keeps
/// externally-owned bytes alive. This lets a cache hit hand the caller a
/// pointer straight into the pinned block instead of memcpy-ing the data
/// into a temp buffer; the pin is released on Reset() / destruction.
///
/// The cleanup callback is stored inline (function pointer + two args), so
/// pinning allocates nothing. Move-only, mirroring rocksdb::PinnableSlice.
class PinnableSlice {
 public:
  using CleanupFunc = void (*)(void* arg1, void* arg2);

  PinnableSlice() = default;
  ~PinnableSlice() { Reset(); }

  PinnableSlice(PinnableSlice&& o) noexcept { *this = std::move(o); }
  PinnableSlice& operator=(PinnableSlice&& o) noexcept {
    if (this != &o) {
      Reset();
      buf_ = std::move(o.buf_);
      data_ = o.data_;
      cleanup_ = o.cleanup_;
      arg1_ = o.arg1_;
      arg2_ = o.arg2_;
      pinned_ = o.pinned_;
      o.pinned_ = false;
      o.cleanup_ = nullptr;
      o.data_ = Slice();
      o.buf_.clear();
    }
    return *this;
  }

  PinnableSlice(const PinnableSlice&) = delete;
  PinnableSlice& operator=(const PinnableSlice&) = delete;

  /// Points at externally-owned bytes; `cleanup(arg1, arg2)` runs when the
  /// pin is released and must keep `s` valid until then.
  void PinSlice(const Slice& s, CleanupFunc cleanup, void* arg1, void* arg2) {
    Reset();
    data_ = s;
    cleanup_ = cleanup;
    arg1_ = arg1;
    arg2_ = arg2;
    pinned_ = true;
  }

  /// Copies `s` into the internal buffer (no external pin).
  void PinSelf(const Slice& s) {
    Reset();
    buf_.assign(s.data(), s.size());
  }

  /// Releases any pin and empties the value.
  void Reset() {
    if (pinned_ && cleanup_ != nullptr) cleanup_(arg1_, arg2_);
    pinned_ = false;
    cleanup_ = nullptr;
    data_ = Slice();
    buf_.clear();
  }

  Slice slice() const { return pinned_ ? data_ : Slice(buf_); }
  const char* data() const { return slice().data(); }
  size_t size() const { return slice().size(); }
  bool empty() const { return slice().empty(); }
  bool IsPinned() const { return pinned_; }
  std::string ToString() const { return slice().ToString(); }

 private:
  std::string buf_;       // storage when self-contained
  Slice data_;            // view when pinned
  CleanupFunc cleanup_ = nullptr;
  void* arg1_ = nullptr;
  void* arg2_ = nullptr;
  bool pinned_ = false;
};

}  // namespace adcache

#endif  // ADCACHE_UTIL_PINNABLE_SLICE_H_
