#ifndef ADCACHE_UTIL_RANDOM_H_
#define ADCACHE_UTIL_RANDOM_H_

#include <cstdint>

namespace adcache {

/// A deterministic xorshift64* pseudo-random generator. Deliberately not
/// std::mt19937 so that every platform reproduces identical workload streams.
class Random {
 public:
  explicit Random(uint64_t seed) : state_(seed == 0 ? 0x9e3779b97f4a7c15ULL
                                                    : seed) {}

  uint64_t Next64() {
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545f4914f6cdd1dULL;
  }

  uint32_t Next() { return static_cast<uint32_t>(Next64() >> 32); }

  /// Uniform integer in [0, n). `n` must be > 0.
  uint64_t Uniform(uint64_t n) { return Next64() % n; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability 1/n.
  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

  /// Skewed: picks base-2 order of magnitude first, i.e. small values are
  /// exponentially more likely. Result in [0, 2^max_log).
  uint64_t Skewed(int max_log) {
    return Uniform(uint64_t{1} << Uniform(static_cast<uint64_t>(max_log + 1)));
  }

 private:
  uint64_t state_;
};

}  // namespace adcache

#endif  // ADCACHE_UTIL_RANDOM_H_
