#ifndef ADCACHE_UTIL_HASH_H_
#define ADCACHE_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>

#include "util/slice.h"

namespace adcache {

/// Murmur-style 32-bit hash over `[data, data+n)` with the given seed. Used by
/// bloom filters, the Count-Min sketch and cache sharding.
uint32_t Hash(const char* data, size_t n, uint32_t seed);

/// 64-bit mixing hash (xxhash-inspired finaliser) for sketch row seeds.
uint64_t Hash64(const char* data, size_t n, uint64_t seed);

inline uint32_t HashSlice(const Slice& s, uint32_t seed = 0xbc9f1d34) {
  return Hash(s.data(), s.size(), seed);
}

}  // namespace adcache

#endif  // ADCACHE_UTIL_HASH_H_
