#include "util/fault_injection_env.h"

namespace adcache {

namespace {
constexpr char kInjectedMsg[] = "injected fault";
}  // namespace

class FaultSequentialFile : public SequentialFile {
 public:
  FaultSequentialFile(std::unique_ptr<SequentialFile> base,
                      FaultInjectionEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    Status s = env_->MaybeReadFault();
    if (!s.ok()) return s;
    return base_->Read(n, result, scratch);
  }
  Status Skip(uint64_t n) override { return base_->Skip(n); }

 private:
  std::unique_ptr<SequentialFile> base_;
  FaultInjectionEnv* env_;
};

class FaultRandomAccessFile : public RandomAccessFile {
 public:
  FaultRandomAccessFile(std::unique_ptr<RandomAccessFile> base,
                        FaultInjectionEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    Status s = env_->MaybeReadFault();
    if (!s.ok()) return s;
    return base_->Read(offset, n, result, scratch);
  }
  uint64_t Size() const override { return base_->Size(); }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  FaultInjectionEnv* env_;
};

class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(std::unique_ptr<WritableFile> base,
                    FaultInjectionEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Append(const Slice& data) override {
    Status s = env_->MaybeWriteFault();
    if (!s.ok()) return s;
    return base_->Append(data);
  }
  Status Flush() override { return base_->Flush(); }
  Status Sync() override {
    Status s = env_->MaybeWriteFault();
    if (!s.ok()) return s;
    return base_->Sync();
  }
  Status Close() override { return base_->Close(); }
  uint64_t Size() const override { return base_->Size(); }

 private:
  std::unique_ptr<WritableFile> base_;
  FaultInjectionEnv* env_;
};

FaultInjectionEnv::FaultInjectionEnv(Env* base)
    : Env(base->clock()), base_(base) {}

Status FaultInjectionEnv::MaybeReadFault() {
  if (fail_all_.load(std::memory_order_relaxed)) {
    injected_failures_++;
    return Status::IOError(kInjectedMsg);
  }
  uint64_t n = reads_until_failure_.load(std::memory_order_relaxed);
  while (n > 0) {
    if (reads_until_failure_.compare_exchange_weak(n, n - 1)) {
      if (n == 1) {
        injected_failures_++;
        return Status::IOError(kInjectedMsg);
      }
      break;
    }
  }
  return Status::OK();
}

Status FaultInjectionEnv::MaybeWriteFault() {
  if (fail_all_.load(std::memory_order_relaxed)) {
    injected_failures_++;
    return Status::IOError(kInjectedMsg);
  }
  uint64_t n = writes_until_failure_.load(std::memory_order_relaxed);
  while (n > 0) {
    if (writes_until_failure_.compare_exchange_weak(n, n - 1)) {
      if (n == 1) {
        injected_failures_++;
        return Status::IOError(kInjectedMsg);
      }
      break;
    }
  }
  return Status::OK();
}

Status FaultInjectionEnv::NewSequentialFile(
    const std::string& fname, std::unique_ptr<SequentialFile>* result) {
  std::unique_ptr<SequentialFile> base_file;
  Status s = base_->NewSequentialFile(fname, &base_file);
  if (!s.ok()) return s;
  *result = std::make_unique<FaultSequentialFile>(std::move(base_file), this);
  return Status::OK();
}

Status FaultInjectionEnv::NewRandomAccessFile(
    const std::string& fname, std::unique_ptr<RandomAccessFile>* result) {
  std::unique_ptr<RandomAccessFile> base_file;
  Status s = base_->NewRandomAccessFile(fname, &base_file);
  if (!s.ok()) return s;
  *result =
      std::make_unique<FaultRandomAccessFile>(std::move(base_file), this);
  return Status::OK();
}

Status FaultInjectionEnv::NewWritableFile(
    const std::string& fname, std::unique_ptr<WritableFile>* result) {
  if (fail_creation_.load(std::memory_order_relaxed)) {
    injected_failures_++;
    return Status::IOError(kInjectedMsg);
  }
  std::unique_ptr<WritableFile> base_file;
  Status s = base_->NewWritableFile(fname, &base_file);
  if (!s.ok()) return s;
  *result = std::make_unique<FaultWritableFile>(std::move(base_file), this);
  return Status::OK();
}

Status FaultInjectionEnv::RemoveFile(const std::string& fname) {
  return base_->RemoveFile(fname);
}

Status FaultInjectionEnv::CreateDirIfMissing(const std::string& dirname) {
  return base_->CreateDirIfMissing(dirname);
}

Status FaultInjectionEnv::GetChildren(const std::string& dirname,
                                      std::vector<std::string>* result) {
  return base_->GetChildren(dirname, result);
}

bool FaultInjectionEnv::FileExists(const std::string& fname) {
  return base_->FileExists(fname);
}

Status FaultInjectionEnv::GetFileSize(const std::string& fname,
                                      uint64_t* size) {
  return base_->GetFileSize(fname, size);
}

}  // namespace adcache
