#ifndef ADCACHE_UTIL_SHARDED_COUNTER_H_
#define ADCACHE_UTIL_SHARDED_COUNTER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace adcache::util {

/// Monotonic counter sharded across cacheline-padded slots so concurrent
/// writers (e.g. per-read hit/miss bookkeeping on the lock-free read path)
/// do not serialize on one contended cacheline. Each thread is assigned a
/// slot round-robin on first use; Load() sums all slots.
///
/// Writes are relaxed; Load() is a racy-but-monotone sum, which is exactly
/// what windowed telemetry consumers difference anyway.
class ShardedCounter {
 public:
  ShardedCounter() = default;
  ShardedCounter(const ShardedCounter&) = delete;
  ShardedCounter& operator=(const ShardedCounter&) = delete;

  void Add(uint64_t n) {
    shards_[ThreadShard()].value.fetch_add(n, std::memory_order_relaxed);
  }
  void Inc() { Add(1); }

  uint64_t Load() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Zeroes all slots. Not atomic with respect to concurrent Add(); callers
  /// (tests, stats Reset) must quiesce writers if they need an exact zero.
  void Reset() {
    for (Shard& s : shards_) {
      s.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  // Power of two; ample for the core counts this targets. More shards only
  // cost idle padded slots.
  static constexpr size_t kShards = 16;

  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };

  static size_t ThreadShard() {
    static std::atomic<size_t> next{0};
    thread_local size_t shard =
        next.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
    return shard;
  }

  Shard shards_[kShards];
};

}  // namespace adcache::util

#endif  // ADCACHE_UTIL_SHARDED_COUNTER_H_
