#ifndef ADCACHE_UTIL_CLOCK_H_
#define ADCACHE_UTIL_CLOCK_H_

#include <atomic>
#include <cstdint>
#include <memory>

namespace adcache {

/// Abstract time source. The storage engine charges all I/O and CPU costs to
/// a Clock so that benchmarks can run against deterministic simulated time
/// (see DESIGN.md: substitution for the paper's NVMe testbed).
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in microseconds (monotonic).
  virtual uint64_t NowMicros() const = 0;

  /// Charges `micros` of elapsed cost. Real clocks ignore this (the wall
  /// clock advances by itself); the simulated clock advances its counter.
  virtual void Charge(uint64_t micros) = 0;
};

/// Wall-clock backed implementation; Charge is a no-op.
class SystemClock : public Clock {
 public:
  uint64_t NowMicros() const override;
  void Charge(uint64_t /*micros*/) override {}

  /// Process-wide default instance.
  static SystemClock* Default();
};

/// Deterministic virtual clock: time advances only via Charge (thread-safe).
class SimClock : public Clock {
 public:
  uint64_t NowMicros() const override {
    return now_.load(std::memory_order_relaxed);
  }
  void Charge(uint64_t micros) override {
    now_.fetch_add(micros, std::memory_order_relaxed);
  }
  void Reset() { now_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> now_{0};
};

}  // namespace adcache

#endif  // ADCACHE_UTIL_CLOCK_H_
