#ifndef ADCACHE_UTIL_THREAD_LOCAL_PTR_H_
#define ADCACHE_UTIL_THREAD_LOCAL_PTR_H_

#include <cstdint>
#include <vector>

namespace adcache::util {

/// A per-(instance, thread) pointer slot in the style of RocksDB's
/// ThreadLocalPtr. Unlike a plain `thread_local` variable, every
/// ThreadLocalPtr *instance* owns an independent slot in every thread, so
/// per-object thread-local caches work when many objects coexist (e.g.
/// several open DBs each caching a SuperVersion per reader thread).
///
/// Swap/CompareAndSwap touch only the calling thread's own slot (no shared
/// cacheline in the steady state). Scrape lets the owner atomically replace
/// every thread's slot (invalidation); the per-instance handler is invoked
/// for any value still parked in a slot when its thread exits or when the
/// instance is destroyed, so refcounted values cached in slots are never
/// leaked by short-lived threads.
///
/// The handler runs outside all internal locks and must not call back into
/// ThreadLocalPtr.
class ThreadLocalPtr {
 public:
  using UnrefHandler = void (*)(void* ptr);

  explicit ThreadLocalPtr(UnrefHandler handler = nullptr);
  /// Clears every thread's slot, passing each non-null value to the handler.
  ~ThreadLocalPtr();

  ThreadLocalPtr(const ThreadLocalPtr&) = delete;
  ThreadLocalPtr& operator=(const ThreadLocalPtr&) = delete;

  /// Atomically replaces the calling thread's slot; returns the old value.
  void* Swap(void* v);

  /// Atomically installs `v` in the calling thread's slot iff it currently
  /// holds `expected`.
  bool CompareAndSwap(void* expected, void* v);

  /// Atomically replaces *every* thread's slot with `replacement`,
  /// appending the previous non-null values to `collected`. Sentinel values
  /// the caller may store (e.g. "in use" markers) are collected too — the
  /// caller filters them.
  void Scrape(std::vector<void*>* collected, void* replacement);

 private:
  uint32_t id_;
};

}  // namespace adcache::util

#endif  // ADCACHE_UTIL_THREAD_LOCAL_PTR_H_
